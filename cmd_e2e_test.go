package eca_test

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBinariesEndToEnd builds the real ecad and ecactl binaries, starts the
// daemon with the car-rental scenario, drives it with the client, and
// checks the stats — the full deployment story of the README.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	ecad := filepath.Join(dir, "ecad")
	ecactl := filepath.Join(dir, "ecactl")
	for bin, pkg := range map[string]string{ecad: "./cmd/ecad", ecactl: "./cmd/ecactl"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	// Pick a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	daemon := exec.Command(ecad, "-addr", addr, "-travel")
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	base := "http://" + addr
	// Wait for readiness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/engine/stats")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ecad did not come up")
		}
		time.Sleep(50 * time.Millisecond)
	}

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(ecactl, append([]string{"-s", base}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("ecactl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	run("book", "John Doe", "Munich", "Paris")
	stats := run("stats")
	for _, want := range []string{"rules 1", "instances_created 1", "instances_completed 1", "notifications 1"} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats missing %q:\n%s", want, stats)
		}
	}

	// Register a second rule through the client and fire it.
	ruleFile := filepath.Join(dir, "rule.xml")
	ruleXML := `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
	    xmlns:t="http://t/" id="cli-rule">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`
	if err := os.WriteFile(ruleFile, []byte(ruleXML), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := run("register", ruleFile); !strings.Contains(out, "cli-rule") {
		t.Fatalf("register output = %q", out)
	}
	evFile := filepath.Join(dir, "event.xml")
	if err := os.WriteFile(evFile, []byte(`<t:e xmlns:t="http://t/" x="9"/>`), 0o644); err != nil {
		t.Fatal(err)
	}
	run("event", evFile)
	stats = run("stats")
	if !strings.Contains(stats, "rules 2") || !strings.Contains(stats, "notifications 2") {
		t.Errorf("after cli rule:\n%s", stats)
	}
	fmt.Fprintln(os.Stderr, "binary e2e OK")
}
