package eca_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
)

// TestClusterKillAndTakeover is the clustering smoke test: it boots three
// real ecad nodes as a cluster (consistent-hash rule sharding, vocabulary
// event forwarding, ring journal replication n1→n2→n3→n1), registers six
// rules through one node so they shard across all three, fires their
// events, SIGKILLs one rule-owning node, and proves the failover: the dead
// node's follower takes the partition over (cluster_takeovers_total ≥ 1)
// and every registered rule still fires when its event is re-sent to a
// survivor.
//
// Set ECA_E2E_CLUSTER_DATADIR to pin the per-node journal dirs to a known
// parent (CI archives them as artifacts on failure); by default temp dirs
// are used.
func TestClusterKillAndTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	ecad := filepath.Join(dir, "ecad")
	ecactl := filepath.Join(dir, "ecactl")
	for bin, pkg := range map[string]string{ecad: "./cmd/ecad", ecactl: "./cmd/ecactl"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	dataParent := os.Getenv("ECA_E2E_CLUSTER_DATADIR")
	if dataParent == "" {
		dataParent = filepath.Join(dir, "data")
	} else if err := os.RemoveAll(dataParent); err != nil {
		t.Fatal(err)
	}

	ids := []string{"n1", "n2", "n3"}
	addrs := make(map[string]string, len(ids))
	bases := make(map[string]string, len(ids))
	var peerList []string
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[id] = ln.Addr().String()
		ln.Close()
		bases[id] = "http://" + addrs[id]
		peerList = append(peerList, id+"="+bases[id])
	}
	peers := strings.Join(peerList, ",")

	daemons := map[string]*exec.Cmd{}
	startNode := func(id string) {
		t.Helper()
		daemon := exec.Command(ecad,
			"-addr", addrs[id], "-node-id", id, "-peers", peers,
			"-data-dir", filepath.Join(dataParent, id), "-fsync", "always",
			"-probe-interval", "200ms", "-peer-down-after", "2",
			"-log-format", "json")
		daemon.Stdout = os.Stderr
		daemon.Stderr = os.Stderr
		if err := daemon.Start(); err != nil {
			t.Fatal(err)
		}
		daemons[id] = daemon
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(bases[id] + "/engine/stats")
			if err == nil {
				resp.Body.Close()
				return
			}
			if time.Now().After(deadline) {
				daemon.Process.Kill()
				daemon.Wait()
				t.Fatalf("%s did not come up", id)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	for _, id := range ids {
		startNode(id)
	}
	defer func() {
		for _, d := range daemons {
			d.Process.Kill()
			d.Wait()
		}
	}()
	get := func(base, path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// Pick two rule ids per node using the same hash ring the daemons use,
	// so the shard layout is known: n2 (the victim) is guaranteed to own
	// rules, and so are the survivors.
	ring := cluster.NewRing(ids)
	ruleOwner := map[string]string{}
	var ruleIDs []string
	need := map[string]int{"n1": 2, "n2": 2, "n3": 2}
	for i := 0; len(ruleIDs) < 6; i++ {
		id := fmt.Sprintf("er-%d", i)
		owner := ring.Owner(id)
		if need[owner] == 0 {
			continue
		}
		need[owner]--
		ruleOwner[id] = owner
		ruleIDs = append(ruleIDs, id)
	}

	// Register every rule through n1 — ecactl addressed via ECA_ENDPOINT,
	// no -s flag. Each rule has its own event vocabulary (t:ev-<id>).
	for _, id := range ruleIDs {
		ruleFile := filepath.Join(dir, id+".xml")
		ruleXML := `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml" xmlns:t="http://t/" id="` + id + `">
		  <eca:event><t:ev-` + id + ` x="$X"/></eca:event>
		  <eca:action><t:pong x="$X"/></eca:action>
		</eca:rule>`
		if err := os.WriteFile(ruleFile, []byte(ruleXML), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(ecactl, "register", ruleFile)
		cmd.Env = append(os.Environ(), "ECA_ENDPOINT="+bases["n1"])
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("ecactl register %s: %v\n%s", id, err, out)
		}
	}
	// Every rule must live on exactly the node the ring assigns.
	for _, id := range ruleIDs {
		_, body := get(bases[ruleOwner[id]], "/engine/rules?format=ids")
		if !strings.Contains(body, id) {
			t.Fatalf("rule %s not on its owner %s: %q", id, ruleOwner[id], body)
		}
	}

	fireAll := func(via string) {
		t.Helper()
		for _, id := range ruleIDs {
			ev := `<t:ev-` + id + ` xmlns:t="http://t/" x="7"/>`
			resp, err := http.Post(bases[via]+"/events", "application/xml", strings.NewReader(ev))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	// firings sums each rule's firing count across the given nodes.
	firings := func(nodes ...string) map[string]int {
		t.Helper()
		total := map[string]int{}
		for _, nd := range nodes {
			_, body := get(bases[nd], "/engine/rules")
			var listing struct {
				Rules []engine.RuleInfo `json:"rules"`
			}
			if err := json.Unmarshal([]byte(body), &listing); err != nil {
				t.Fatalf("%s rule listing: %v\n%s", nd, err, body)
			}
			for _, info := range listing.Rules {
				total[info.ID] += info.Firings
			}
		}
		return total
	}
	allFired := func(counts map[string]int) bool {
		for _, id := range ruleIDs {
			if counts[id] == 0 {
				return false
			}
		}
		return true
	}

	// Before the kill: fire every event via n1 until each rule has fired
	// once (vocabulary gossip needs a probe round to converge).
	deadline := time.Now().Add(20 * time.Second)
	for {
		fireAll("n1")
		time.Sleep(200 * time.Millisecond)
		if allFired(firings(ids...)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rules never all fired pre-kill: %v", firings(ids...))
		}
	}

	// With all three nodes up, the federated metrics view on any node
	// must be lint-clean and carry every node's samples under its node
	// label (the admitted-events counter exists on all of them by now).
	status, fed := get(bases["n1"], "/cluster/metrics")
	if status != 200 {
		t.Fatalf("/cluster/metrics status = %d: %s", status, fed)
	}
	if err := obs.LintExposition(strings.NewReader(fed)); err != nil {
		t.Fatalf("/cluster/metrics not lint-clean: %v\n%s", err, fed)
	}
	fedExp, err := obs.ParseExposition(strings.NewReader(fed))
	if err != nil {
		t.Fatalf("/cluster/metrics parse: %v", err)
	}
	if nodes := fedExp.LabelValues("node"); len(nodes) != 3 {
		t.Fatalf("/cluster/metrics federates %v, want all of %v", nodes, ids)
	}
	for _, id := range ids {
		if _, ok := fedExp.Value("events_admitted_total", map[string]string{"node": id}); !ok {
			t.Fatalf("no events_admitted_total sample for node %s in federation:\n%s", id, fed)
		}
	}

	// Wait for n2's partition to be mirrored on its follower n3 before
	// killing it, or there is nothing to take over.
	deadline = time.Now().Add(15 * time.Second)
	for {
		_, body := get(bases["n3"], "/cluster/status")
		var st cluster.Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("cluster status: %v\n%s", err, body)
		}
		replicated := false
		for _, p := range st.Peers {
			if p.ID == "n2" && p.Replica != nil && p.Replica.Rules >= 2 {
				replicated = true
			}
		}
		if replicated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n2's journal never reached its follower: %s", body)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// SIGKILL the rule-owning victim: no shutdown hooks run.
	if err := daemons["n2"].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemons["n2"].Wait()
	delete(daemons, "n2")

	// The follower must notice the death (2 failed probes at 200ms) and
	// take the partition over.
	deadline = time.Now().Add(20 * time.Second)
	for {
		_, metrics := get(bases["n3"], "/metrics")
		if strings.Contains(metrics, "cluster_takeovers_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n3 never took n2's partition over")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Re-fire everything through a survivor: every rule — including the
	// two the dead node owned — must fire on the surviving nodes.
	deadline = time.Now().Add(20 * time.Second)
	pre := firings("n1", "n3")
	for {
		fireAll("n1")
		time.Sleep(200 * time.Millisecond)
		post := firings("n1", "n3")
		progressed := true
		for _, id := range ruleIDs {
			if post[id] <= pre[id] {
				progressed = false
			}
		}
		if progressed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rules did not all fire after takeover: pre %v post %v", pre, firings("n1", "n3"))
		}
	}

	// The health document of a survivor reports the cluster view: the dead
	// peer down, the takeover counted.
	_, health := get(bases["n3"], "/healthz")
	var h struct {
		Cluster *cluster.Status `json:"cluster"`
	}
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("healthz: %v\n%s", err, health)
	}
	if h.Cluster == nil || h.Cluster.Takeovers != 1 {
		t.Errorf("survivor healthz cluster section = %+v", h.Cluster)
	}
}
