package eca_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// TestMultiTenantKillAndRestart is the multi-tenancy smoke test over the
// real binaries: ecad boots with -data-dir and a rate quota on one
// tenant, two tenants register rules that match the *same* event shape
// (ecactl -tenant for one, the ECA_TENANT environment variable for the
// other), and interleaved events must fire only within their own space.
// The quota-limited tenant is driven to a 429 quota_exceeded while the
// other tenant keeps admitting, then the daemon is SIGKILLed and
// restarted over the same data dir: both tenants' rules must recover
// into their own spaces and fresh events must again fire tenant-locally.
//
// Set ECA_E2E_TENANT_DATADIR to pin the data dir to a known path (CI
// uses this to archive the journal on failure); by default a temp dir.
func TestMultiTenantKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	ecad := filepath.Join(dir, "ecad")
	ecactl := filepath.Join(dir, "ecactl")
	for bin, pkg := range map[string]string{ecad: "./cmd/ecad", ecactl: "./cmd/ecactl"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	dataDir := os.Getenv("ECA_E2E_TENANT_DATADIR")
	if dataDir == "" {
		dataDir = filepath.Join(dir, "data")
	} else if err := os.RemoveAll(dataDir); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	startDaemon := func() *exec.Cmd {
		t.Helper()
		// rate=0.001,burst=2 admits exactly two acme events per process
		// lifetime as far as this test is concerned: replenishment is a
		// token every ~17 minutes, far beyond the test horizon.
		daemon := exec.Command(ecad, "-addr", addr, "-data-dir", dataDir,
			"-fsync", "always", "-log-format", "json",
			"-tenant-quotas", "acme:rate=0.001,burst=2")
		daemon.Stdout = os.Stderr
		daemon.Stderr = os.Stderr
		if err := daemon.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/engine/stats")
			if err == nil {
				resp.Body.Close()
				return daemon
			}
			if time.Now().After(deadline) {
				daemon.Process.Kill()
				daemon.Wait()
				t.Fatal("ecad did not come up")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	postEvent := func(tenant, xml string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/events", strings.NewReader(xml))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/xml")
		if tenant != "" {
			req.Header.Set(protocol.TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	// completedRules fetches the completed instances visible in one
	// tenant's trace space and returns their rule ids.
	completedRules := func(tenant string) []string {
		t.Helper()
		code, body := get("/debug/traces?state=completed&limit=100&tenant=" + tenant)
		if code != 200 {
			t.Fatalf("/debug/traces?tenant=%s = %d: %s", tenant, code, body)
		}
		var list struct {
			Instances []obs.InstanceTrace `json:"instances"`
		}
		if err := json.Unmarshal([]byte(body), &list); err != nil {
			t.Fatalf("traces JSON: %v\n%s", err, body)
		}
		rules := make([]string, 0, len(list.Instances))
		for _, in := range list.Instances {
			rules = append(rules, in.Rule)
		}
		return rules
	}
	waitCompleted := func(tenant, rule string, n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			rules := completedRules(tenant)
			for _, r := range rules {
				if r != rule {
					t.Fatalf("tenant %s fired foreign rule %q (want only %q)", tenant, r, rule)
				}
			}
			if len(rules) == n {
				return
			}
			if len(rules) > n || time.Now().After(deadline) {
				t.Fatalf("tenant %s completed instances = %v, want %d × %q", tenant, rules, n, rule)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	daemon := startDaemon()

	// Both tenants' rules match the same t:ping event shape, so any
	// isolation leak would fire the other tenant's rule too.
	ruleXML := func(id string) string {
		return `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml" xmlns:t="http://t/" id="` + id + `">
		  <eca:event><t:ping x="$X"/></eca:event>
		  <eca:action><t:pong fired-by="` + id + `" x="$X"/></eca:action>
		</eca:rule>`
	}
	for tenant, id := range map[string]string{"acme": "r-acme", "beta": "r-beta"} {
		file := filepath.Join(dir, id+".xml")
		if err := os.WriteFile(file, []byte(ruleXML(id)), 0o644); err != nil {
			t.Fatal(err)
		}
		var cmd *exec.Cmd
		if tenant == "acme" {
			cmd = exec.Command(ecactl, "-s", base, "-tenant", tenant, "register", file)
		} else {
			// The other tenant goes through the ECA_TENANT env default so
			// the whole flag > env resolution chain is exercised end to end.
			cmd = exec.Command(ecactl, "-s", base, "register", file)
			cmd.Env = append(os.Environ(), "ECA_TENANT="+tenant)
		}
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("ecactl register (%s): %v\n%s", tenant, err, out)
		}
	}
	for tenant, want := range map[string]string{"acme": "r-acme", "beta": "r-beta"} {
		other := "r-beta"
		if tenant == "beta" {
			other = "r-acme"
		}
		_, body := get("/engine/rules?format=ids&tenant=" + tenant)
		if !strings.Contains(body, want) || strings.Contains(body, other) {
			t.Fatalf("tenant %s rule listing = %q, want only %s", tenant, body, want)
		}
	}

	// Interleave events: two per tenant admit, then acme's token bucket
	// is dry — its third event must be shed as quota_exceeded while
	// beta's third still admits.
	event := `<t:ping xmlns:t="http://t/" x="7"/>`
	for i, tenant := range []string{"acme", "beta", "acme", "beta"} {
		if code, body := postEvent(tenant, event); code != http.StatusOK {
			t.Fatalf("event %d (%s) = %d: %s", i, tenant, code, body)
		}
	}
	code, body := postEvent("acme", event)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota acme event = %d: %s", code, body)
	}
	var shed struct {
		Error  string `json:"error"`
		Tenant string `json:"tenant"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(body), &shed); err != nil {
		t.Fatalf("quota body JSON: %v\n%s", err, body)
	}
	if shed.Error != "quota_exceeded" || shed.Tenant != "acme" || shed.Reason != "rate" {
		t.Fatalf("quota body = %+v", shed)
	}
	if code, body := postEvent("beta", event); code != http.StatusOK {
		t.Fatalf("beta event after acme quota = %d: %s", code, body)
	}

	waitCompleted("acme", "r-acme", 2)
	waitCompleted("beta", "r-beta", 3)

	// The per-tenant admission and shed counters must reconcile with
	// what was actually accepted and rejected above.
	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	assertSample := func(name string, labels []string, value string) {
		t.Helper()
		for _, line := range strings.Split(metrics, "\n") {
			if !strings.HasPrefix(line, name+"{") || !strings.HasSuffix(line, " "+value) {
				continue
			}
			ok := true
			for _, l := range labels {
				if !strings.Contains(line, l) {
					ok = false
				}
			}
			if ok {
				return
			}
		}
		t.Errorf("/metrics missing %s{%s} %s", name, strings.Join(labels, ","), value)
	}
	assertSample("events_admitted_total", []string{`tenant="acme"`}, "2")
	assertSample("events_admitted_total", []string{`tenant="beta"`}, "3")
	assertSample("events_shed_total", []string{`tenant="acme"`, `reason="quota"`}, "1")

	// Die hard: no shutdown hooks, recovery must come from the journal.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	daemon = startDaemon()
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// Both tenants' rules must have been replayed into their own spaces.
	for tenant, want := range map[string]string{"acme": "r-acme", "beta": "r-beta"} {
		other := "r-beta"
		if tenant == "beta" {
			other = "r-acme"
		}
		_, body := get("/engine/rules?format=ids&tenant=" + tenant)
		if !strings.Contains(body, want) || strings.Contains(body, other) {
			t.Fatalf("after restart, tenant %s rule listing = %q, want only %s", tenant, body, want)
		}
	}
	code, health := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	var h struct {
		Tenants []struct {
			ID    string `json:"id"`
			Rules int    `json:"rules"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, health)
	}
	rulesByTenant := map[string]int{}
	for _, th := range h.Tenants {
		rulesByTenant[th.ID] = th.Rules
	}
	if rulesByTenant["acme"] != 1 || rulesByTenant["beta"] != 1 {
		t.Errorf("/healthz tenants = %+v", h.Tenants)
	}

	// Fresh traffic lands in the right space after recovery, and acme's
	// token bucket is back to its burst allowance.
	for _, tenant := range []string{"acme", "beta"} {
		if code, body := postEvent(tenant, event); code != http.StatusOK {
			t.Fatalf("post-restart event (%s) = %d: %s", tenant, code, body)
		}
	}
	waitCompleted("acme", "r-acme", 1)
	waitCompleted("beta", "r-beta", 1)
}
