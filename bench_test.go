// Benchmarks regenerating the paper's evaluation, one benchmark per figure
// plus the scaling series recorded in EXPERIMENTS.md. The paper (a
// prototype/demonstration paper) reports no absolute numbers; what must
// reproduce is each figure's artifact and message flow — asserted by
// TestReproduceAllFigures and the engine integration tests — while the
// benchmarks put costs against every step of the architecture.
//
// Run with: go test -bench=. -benchmem
package eca_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/ontology"
	"repro/internal/protocol"
	"repro/internal/rdf"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/snoop"
	"repro/internal/system"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xq"
)

// TestReproduceAllFigures asserts every figure of the paper regenerates
// without error (content assertions live in the per-package tests).
func TestReproduceAllFigures(t *testing.T) {
	for _, n := range bench.Figures() {
		n := n
		t.Run(fmt.Sprintf("fig%d", n), func(t *testing.T) {
			if err := bench.RunFigure(n, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllSeriesRun smoke-tests every performance series end to end
// (testing.B variants run as benchmarks below).
func TestAllSeriesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("series are not short")
	}
	for _, s := range bench.Series() {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			if err := bench.RunSeries(s, io.Discard); err != nil {
				t.Fatalf("series %s: %v", s, err)
			}
		})
	}
}

// --- per-figure benchmarks -----------------------------------------------------

// BenchmarkFig1Ontology: describing + validating the sample rule against
// the rule/language ontology.
func BenchmarkFig1Ontology(b *testing.B) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rule, err := ruleml.ParseString(travel.RuleXML("http://x/store", "http://x/xq"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ontology.Base()
		ontology.DescribeRegistry(g, sys.GRH)
		ontology.DescribeLanguage(g, grh.Descriptor{
			Language: services.XQueryNS + "-opaque",
			Kinds:    []ruleml.ComponentKind{ruleml.QueryComponent},
			Endpoint: "http://x/",
		})
		ontology.DescribeRule(g, rule)
		if err := ontology.Validate(g, rule.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2HierarchyQuery: the Fig. 2 language-family closure walk.
func BenchmarkFig2HierarchyQuery(b *testing.B) {
	sys, _ := system.NewLocal(system.Config{})
	g := ontology.Base()
	ontology.DescribeRegistry(g, sys.GRH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := len(ontology.LanguagesInFamily(g, ontology.ClassLanguage)); n < 6 {
			b.Fatalf("languages = %d", n)
		}
	}
}

// BenchmarkFig4RuleParsing: parsing + validating the sample rule document.
func BenchmarkFig4RuleParsing(b *testing.B) {
	src := travel.RuleXML("http://x/store", "http://x/xq")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rule, err := ruleml.ParseString(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := ruleml.Validate(rule, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Registration: registering a rule's event component through
// the GRH at the atomic matcher.
func BenchmarkFig5Registration(b *testing.B) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rule := ruleml.MustParse(fmt.Sprintf(`<eca:rule xmlns:eca="%s" xmlns:t="http://t/" id="r%d">
		  <eca:event><t:e%d x="$X"/></eca:event>
		  <eca:action><t:a x="$X"/></eca:action>
		</eca:rule>`, protocol.ECANS, i, i))
		if err := sys.Engine.Register(rule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Detection: matching one event against a registered pattern
// and creating the rule instance (event + trivial action).
func BenchmarkFig6Detection(b *testing.B) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="r">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(rule); err != nil {
		b.Fatal(err)
	}
	payload := xmltree.NewElement("http://t/", "e")
	payload.SetAttr("", "x", "1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Stream.Publish(events.Event{Payload: payload})
	}
	if len(sys.Notifier.Sent()) != b.N {
		b.Fatalf("fired %d, want %d", len(sys.Notifier.Sent()), b.N)
	}
}

// BenchmarkFig7RequestEncoding: marshalling a query request envelope with
// input bindings to the wire format and back.
func BenchmarkFig7RequestEncoding(b *testing.B) {
	expr := xmltree.NewElement(services.XQueryNS, "query")
	expr.AppendText(`for $c in doc('cars')//car return $c`)
	req := &protocol.Request{
		Kind: protocol.Query, RuleID: "car-rental", Component: "query[1]",
		Language:   services.XQueryNS,
		Expression: expr,
		Bindings: bindings.NewRelation(
			bindings.MustTuple("Person", bindings.Str("John Doe"), "Dest", bindings.Str("Paris")),
		),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := protocol.EncodeRequest(req).String()
		doc, err := xmltree.ParseString(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := protocol.DecodeRequest(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8FrameworkAwareQuery: the first query component — a
// framework-aware XQuery evaluation binding OwnCar per input tuple.
func BenchmarkFig8FrameworkAwareQuery(b *testing.B) {
	store := services.NewDocStore()
	travel.LoadStore(store)
	svc := services.NewXQueryService(store, nil)
	expr := xmltree.NewElement(services.XQueryNS, "query")
	expr.AppendText(`for $c in doc('` + travel.CarsDoc + `')//owner[@name=$Person]/car return $c/model/text()`)
	req := &protocol.Request{
		Kind: protocol.Query, RuleID: "r", Component: "query[1]", Expression: expr,
		Bindings: bindings.NewRelation(bindings.MustTuple("Person", bindings.Str("John Doe"))),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := svc.Handle(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Rows[0].Results) != 2 {
			b.Fatalf("results = %d", len(a.Rows[0].Results))
		}
	}
}

// BenchmarkFig9OpaquePerTuple: the framework-unaware protocol — per-tuple
// HTTP GET with variable substitution and result re-wrapping.
func BenchmarkFig9OpaquePerTuple(b *testing.B) {
	srv := httptest.NewServer(services.NewOpaqueXMLStore(xmltree.MustParse(travel.ClassesXML), nil))
	defer srv.Close()
	g := grh.New()
	comp := grh.Component{
		Rule: "r",
		Comp: ruleml.Component{
			Kind: ruleml.QueryComponent, ID: "query[2]", Opaque: true,
			Language: "raw", Service: srv.URL,
			Text: `//entry[@model='$OwnCar']/@class`,
		},
		Bindings: bindings.NewRelation(
			bindings.MustTuple("OwnCar", bindings.Str("VW Golf")),
			bindings.MustTuple("OwnCar", bindings.Str("VW Passat")),
		),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := g.Dispatch(protocol.Query, comp)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Rows) != 2 {
			b.Fatalf("rows = %d", len(a.Rows))
		}
	}
}

// BenchmarkFig10LogAnswersGeneration: the raw XQuery node generating the
// log:answers structure, decoded by the GRH.
func BenchmarkFig10LogAnswersGeneration(b *testing.B) {
	store := services.NewDocStore()
	travel.LoadStore(store)
	srv := httptest.NewServer(services.NewOpaqueXQueryNode(store, travel.Namespaces()))
	defer srv.Close()
	g := grh.New()
	comp := grh.Component{
		Rule: "r",
		Comp: ruleml.Component{
			Kind: ruleml.QueryComponent, ID: "query[3]", Opaque: true,
			Language: "raw", Service: srv.URL,
			Text: `<log:answers xmlns:log="` + protocol.LogNS + `">{for $c in doc('` + travel.AvailDoc +
				`')//city[@name='$Dest']/car return <log:answer><log:variable name="Class">{string($c/@class)}</log:variable></log:answer>}</log:answers>`,
		},
		Bindings: bindings.NewRelation(bindings.MustTuple("Dest", bindings.Str("Paris"))),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := g.Dispatch(protocol.Query, comp)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Rows) != 2 {
			b.Fatalf("rows = %d", len(a.Rows))
		}
	}
}

// BenchmarkFig11Join: the natural join eliminating tuples whose class is
// not available at the destination.
func BenchmarkFig11Join(b *testing.B) {
	owned := bindings.NewRelation(
		bindings.MustTuple("Person", bindings.Str("John Doe"), "OwnCar", bindings.Str("VW Golf"), "Class", bindings.Str("C")),
		bindings.MustTuple("Person", bindings.Str("John Doe"), "OwnCar", bindings.Str("VW Passat"), "Class", bindings.Str("B")),
	)
	avail := bindings.NewRelation(
		bindings.MustTuple("Class", bindings.Str("B"), "Avail", bindings.Str("Opel Astra")),
		bindings.MustTuple("Class", bindings.Str("D"), "Avail", bindings.Str("Renault Espace")),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if owned.Join(avail).Size() != 1 {
			b.Fatal("join shape changed")
		}
	}
}

// BenchmarkFig3EndToEnd: one complete car-rental firing, local and
// distributed deployments.
func BenchmarkFig3EndToEnd(b *testing.B) {
	for _, mode := range []string{"local", "distributed"} {
		b.Run(mode, func(b *testing.B) {
			sc, cleanup, err := travel.NewScenario(system.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			if mode == "distributed" {
				srv := httptest.NewServer(sc.Mux(xmltree.MustParse(travel.ClassesXML), travel.Namespaces()))
				defer srv.Close()
				if err := sc.Distribute(srv.URL); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Book("John Doe", "Munich", "Paris")
			}
			if len(sc.Notifier.Sent()) != b.N {
				b.Fatalf("fired %d, want %d", len(sc.Notifier.Sent()), b.N)
			}
		})
	}
}

// --- scaling-series benchmarks ----------------------------------------------------

// BenchmarkAtomicMatch: event matching vs. registered pattern count.
func BenchmarkAtomicMatch(b *testing.B) {
	for _, m := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("patterns=%d", m), func(b *testing.B) {
			matcher := events.NewMatcher()
			for i := 0; i < m; i++ {
				matcher.Register(fmt.Sprintf("k%d", i),
					events.MustPattern(fmt.Sprintf(`<e%d x="$X"/>`, i)),
					func(events.Detection) {})
			}
			payload := xmltree.NewElement("", "e0")
			payload.SetAttr("", "x", "1")
			ev := events.Event{Payload: payload}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matcher.OnEvent(ev)
			}
		})
	}
}

// BenchmarkSnoopSeq: sequence detection by parameter context.
func BenchmarkSnoopSeq(b *testing.B) {
	for _, ctx := range []snoop.ParamContext{snoop.Recent, snoop.Chronicle, snoop.Continuous, snoop.Cumulative} {
		b.Run(ctx.String(), func(b *testing.B) {
			e := &snoop.Seq{
				L: &snoop.Atomic{Pattern: events.MustPattern(`<a k="$K"/>`)},
				R: &snoop.Atomic{Pattern: events.MustPattern(`<b k="$K"/>`)},
			}
			det, err := snoop.NewDetector(e, ctx, func(snoop.Occurrence) {})
			if err != nil {
				b.Fatal(err)
			}
			names := []string{"a", "b"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				el := xmltree.NewElement("", names[i%2])
				el.SetAttr("", "k", fmt.Sprint((i/2)%8))
				det.Feed(events.Event{Payload: el, Seq: uint64(i + 1), Time: time.Unix(int64(i), 0)})
			}
		})
	}
}

// BenchmarkNaturalJoin: join cost vs. relation size (linear output).
func BenchmarkNaturalJoin(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			mk := func(payload string) *bindings.Relation {
				r := bindings.NewRelation()
				for i := 0; i < n; i++ {
					r.Add(bindings.MustTuple(
						"K", bindings.Str(fmt.Sprintf("k%d", i%(n/2+1))),
						payload, bindings.Str(fmt.Sprintf("v%d", i)),
					))
				}
				return r
			}
			r, s := mk("A"), mk("B")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Join(s)
			}
		})
	}
}

// BenchmarkDatalogTC: transitive closure on chains.
func BenchmarkDatalogTC(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			src := ""
			for i := 0; i < n-1; i++ {
				src += fmt.Sprintf("e(n%d, n%d).\n", i, i+1)
			}
			src += "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- e(X, Y), tc(Y, Z).\n"
			prog := datalog.MustParse(src)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Eval(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkXQueryEval: FLWOR evaluation on the cars document.
func BenchmarkXQueryEval(b *testing.B) {
	store := services.NewDocStore()
	travel.LoadStore(store)
	q := xq.MustCompile(`for $c in doc('` + travel.CarsDoc + `')//owner[@name=$Person]/car return $c/model/text()`)
	ctx := &xq.Context{Docs: store.Resolver(), Vars: map[string]xq.Sequence{"Person": {"John Doe"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Eval(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXPathEval: path + predicate evaluation.
func BenchmarkXPathEval(b *testing.B) {
	doc := xmltree.MustParse(travel.CarsXML)
	e := xpath.MustCompile(`//owner[@name='John Doe']/car[year>2004]/model`)
	ctx := &xpath.Context{Node: doc}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRDFQuery: basic-graph-pattern matching on the language registry
// graph.
func BenchmarkRDFQuery(b *testing.B) {
	sys, _ := system.NewLocal(system.Config{})
	g := ontology.Base()
	ontology.DescribeRegistry(g, sys.GRH)
	pats := []rdf.Pattern{
		{S: rdf.V("L"), P: rdf.T(rdf.NewIRI(ontology.NS + "implementedBy")), O: rdf.V("S")},
		{S: rdf.V("S"), P: rdf.T(rdf.NewIRI(rdf.RDFType)), O: rdf.T(ontology.ClassService)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Query(pats).Size() < 6 {
			b.Fatal("registry graph shrank")
		}
	}
}

// BenchmarkEventPatternMatch: single pattern match against one event.
func BenchmarkEventPatternMatch(b *testing.B) {
	p := events.MustPattern(`<t:booking xmlns:t="` + travel.NS + `" person="$Person" to="$Dest"/>`)
	ev := events.New(travel.Booking("John Doe", "Munich", "Paris"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.Match(ev)) != 1 {
			b.Fatal("no match")
		}
	}
}
