package eca_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDistributedTracingEndToEnd boots the real ecad binary in
// distributed mode with the car-rental scenario, fires a booking, and
// asserts the observability contract end to end: /metrics parses under
// the exposition-format linter (including the runtime gauges), and
// /debug/traces?id= returns the stitched trace whose remote dispatches
// carry server-side parse/evaluate/encode spans. This is the CI smoke
// test for distributed rule-instance tracing.
func TestDistributedTracingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	ecad := filepath.Join(dir, "ecad")
	ecactl := filepath.Join(dir, "ecactl")
	for bin, pkg := range map[string]string{ecad: "./cmd/ecad", ecactl: "./cmd/ecactl"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	daemon := exec.Command(ecad, "-addr", addr, "-travel", "-distribute", "-log-format", "json", "-log-level", "debug")
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/engine/stats")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ecad did not come up")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out, err := exec.Command(ecactl, "-s", base, "book", "John Doe", "Munich", "Paris").CombinedOutput()
	if err != nil {
		t.Fatalf("ecactl book: %v\n%s", err, out)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	// (a) /metrics parses cleanly under the exposition linter and carries
	// the runtime gauges and the new phase/queue families.
	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if err := obs.LintExposition(strings.NewReader(string(metrics))); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v", err)
	}
	for _, want := range []string{"go_goroutines", "go_heap_inuse_bytes", "service_phase_seconds_bucket"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// (b) find the booking instance (it completes asynchronously after
	// ecactl returns) and fetch its stitched trace by id.
	var id string
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, body := get("/debug/traces?state=completed&limit=1")
		if code != 200 {
			t.Fatalf("/debug/traces = %d", code)
		}
		var list struct {
			Instances []obs.InstanceTrace `json:"instances"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			t.Fatalf("traces JSON: %v\n%s", err, body)
		}
		if len(list.Instances) == 1 {
			id = list.Instances[0].ID
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no completed instance: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	code, body := get("/debug/traces?id=" + url.QueryEscape(id))
	if code != 200 {
		t.Fatalf("/debug/traces?id=%s = %d: %s", id, code, body)
	}
	var tr obs.InstanceTrace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	if tr.ID != id || tr.State != "completed" {
		t.Fatalf("trace = %+v", tr)
	}
	stitched := 0
	for _, sp := range tr.Spans {
		if sp.Mode != "grh" {
			continue
		}
		if len(sp.Children) == 0 {
			continue
		}
		stitched++
		phases := map[string]bool{}
		for _, c := range sp.Children {
			if c.Mode != "server" {
				t.Errorf("child of %s has mode %q, want server", sp.Component, c.Mode)
			}
			phases[c.Stage] = true
		}
		for _, p := range []string{"parse", "evaluate", "encode"} {
			if !phases[p] {
				t.Errorf("span %s missing server phase %s: %+v", sp.Component, p, sp.Children)
			}
		}
	}
	if stitched == 0 {
		t.Fatalf("no client span carries stitched server spans: %s", body)
	}
}
