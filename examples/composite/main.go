// Composite demonstrates composite event detection with the SNOOP event
// algebra (Section 4.2): rules whose event components are sequences,
// negations and conjunctions over atomic events, with logical join
// variables across the constituents.
//
// Rule 1 (churn): a booking followed by a cancellation *by the same person*
// triggers a retention offer.
//
// Rule 2 (no-show watch): a booking with NEITHER a check-in NOR a
// cancellation before boarding triggers a reminder — SNOOP negation with a
// nested disjunction as the guarded event:
// NOT(checkin ∨ cancellation)[booking, boarding], joined on the person.
//
// Run with: go run ./examples/composite
package main

import (
	"fmt"
	"log"

	eca "repro"
)

const ecaNS = "http://www.semwebtech.org/languages/2006/eca-ml"
const snoopNS = "http://www.semwebtech.org/languages/2006/snoop"
const airNS = "http://example.org/airline"

const churnRule = `<eca:rule xmlns:eca="` + ecaNS + `"
    xmlns:snoop="` + snoopNS + `" xmlns:air="` + airNS + `" id="churn">
  <eca:event>
    <snoop:seq context="chronicle">
      <snoop:event><air:booking person="$P" flight="$F"/></snoop:event>
      <snoop:event><air:cancellation person="$P"/></snoop:event>
    </snoop:seq>
  </eca:event>
  <eca:action>
    <air:retention-offer person="$P" flight="$F"/>
  </eca:action>
</eca:rule>`

const noShowRule = `<eca:rule xmlns:eca="` + ecaNS + `"
    xmlns:snoop="` + snoopNS + `" xmlns:air="` + airNS + `" id="no-show">
  <eca:event>
    <snoop:not context="continuous">
      <snoop:event><air:booking person="$P" flight="$F"/></snoop:event>
      <snoop:or>
        <snoop:event><air:checkin person="$P"/></snoop:event>
        <snoop:event><air:cancellation person="$P"/></snoop:event>
      </snoop:or>
      <snoop:event><air:boarding flight="$F"/></snoop:event>
    </snoop:not>
  </eca:event>
  <eca:action>
    <air:reminder person="$P" flight="$F"/>
  </eca:action>
</eca:rule>`

func main() {
	sys, err := eca.NewLocal(eca.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys.Notifier.OnSend(func(n eca.Notification) {
		fmt.Printf("→ %s\n", n.Message)
	})
	for _, src := range []string{churnRule, noShowRule} {
		rule, err := eca.ParseRule(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Engine.Register(rule); err != nil {
			log.Fatal(err)
		}
	}

	pub := func(name string, attrs ...string) {
		src := `<air:` + name + ` xmlns:air="` + airNS + `"`
		for i := 0; i+1 < len(attrs); i += 2 {
			src += ` ` + attrs[i] + `="` + attrs[i+1] + `"`
		}
		src += `/>`
		doc, err := eca.ParseXML(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("event: %s\n", doc.Root())
		sys.Stream.Publish(eca.NewEvent(doc))
	}

	fmt.Println("--- John books LH101 and cancels: churn fires (same-person join) ---")
	pub("booking", "person", "John", "flight", "LH101")
	pub("booking", "person", "Mary", "flight", "LH101")
	pub("cancellation", "person", "John")

	fmt.Println("\n--- Mary checks in, John cancelled, Tom does neither: reminder only for Tom ---")
	pub("booking", "person", "Tom", "flight", "LH101")
	pub("checkin", "person", "Mary")
	pub("boarding", "flight", "LH101")

	st := sys.Engine.Stats()
	fmt.Printf("\nengine stats: %d instances, %d completed\n", st.InstancesCreated, st.InstancesCompleted)
}
