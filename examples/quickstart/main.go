// Quickstart: the smallest useful ECA deployment — one in-process system,
// one rule, three events. The rule watches sensor readings and informs an
// operator when a value exceeds a threshold:
//
//	ON  m:reading(sensor=$S, value=$V)
//	IF  $V > 100
//	DO  m:alert(sensor=$S, value=$V)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	eca "repro"
)

const ruleXML = `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
    xmlns:m="http://example.org/monitoring" id="overheat">
  <eca:event>
    <m:reading sensor="$S" value="$V"/>
  </eca:event>
  <eca:test>$V > 100</eca:test>
  <eca:action>
    <m:alert sensor="$S" value="$V"/>
  </eca:action>
</eca:rule>`

func main() {
	// 1. Wire the engine, the Generic Request Handler and the component
	//    services in-process.
	sys, err := eca.NewLocal(eca.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Print every message the action executor "sends".
	sys.Notifier.OnSend(func(n eca.Notification) {
		fmt.Printf("ALERT  %s\n", n.Message)
	})

	// 3. Register the rule: its event component goes to the atomic event
	//    matcher, the test is evaluated locally, the action is executed
	//    once per surviving tuple.
	rule, err := eca.ParseRule(ruleXML)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Engine.Register(rule); err != nil {
		log.Fatal(err)
	}

	// 4. Publish events.
	for _, r := range []struct {
		sensor string
		value  string
	}{
		{"boiler-1", "95"},
		{"boiler-2", "130"},
		{"boiler-1", "250"},
	} {
		doc, err := eca.ParseXML(
			`<m:reading xmlns:m="http://example.org/monitoring" sensor="` + r.sensor + `" value="` + r.value + `"/>`)
		if err != nil {
			log.Fatal(err)
		}
		sys.Stream.Publish(eca.NewEvent(doc))
	}

	st := sys.Engine.Stats()
	fmt.Printf("\n%d instances created, %d fired, %d filtered out by the test\n",
		st.InstancesCreated, st.InstancesCompleted, st.InstancesDied)
}
