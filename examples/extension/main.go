// Extension demonstrates the framework's central claim — "combining
// arbitrary event detection, query and action languages" — by deploying a
// component language the engine has never heard of: a sliding-window
// counting language (internal/winlang). The recipe is exactly the paper's:
//
//  1. give the language a namespace URI,
//  2. implement a service that accepts registration requests and posts
//     log:answers detection messages,
//  3. register the service in the GRH under the URI.
//
// No engine, GRH or rule-markup changes — a rule simply writes its event
// component in the new namespace:
//
//	ON   at least 3 failed logins by the same user within 10s
//	DO   lock the account
//
// Run with: go run ./examples/extension
package main

import (
	"fmt"
	"log"
	"time"

	eca "repro"
	"repro/internal/grh"
	"repro/internal/ruleml"
	"repro/internal/winlang"
	"repro/internal/xmltree"
)

const secNS = "http://example.org/security"

const lockoutRule = `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
    xmlns:win="` + winlang.NS + `" xmlns:sec="` + secNS + `" id="lockout">
  <eca:event>
    <win:atleast n="3" within="10s">
      <sec:failed-login user="$U"/>
    </win:atleast>
  </eca:event>
  <eca:action>
    <sec:lock-account user="$U"/>
  </eca:action>
</eca:rule>`

func main() {
	sys, err := eca.NewLocal(eca.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys.Notifier.OnSend(func(n eca.Notification) {
		fmt.Printf("ACTION  %s\n", n.Message)
	})

	// Step 2+3: implement and register the new language's service. This is
	// ALL it takes — the engine and GRH stay untouched.
	winService := winlang.NewService(sys.Stream, sys.Engine.OnDetection)
	defer winService.Close()
	if err := sys.GRH.Register(grh.Descriptor{
		Language:       winlang.NS,
		Name:           "sliding-window counting language",
		Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
		FrameworkAware: true,
		Local:          winService,
	}); err != nil {
		log.Fatal(err)
	}

	rule, err := eca.ParseRule(lockoutRule)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Engine.Register(rule); err != nil {
		log.Fatal(err)
	}

	fail := func(user string, at int64) {
		e := xmltree.NewElement(secNS, "failed-login")
		e.SetAttr("", "user", user)
		fmt.Printf("event: failed login by %s (t=%ds)\n", user, at)
		sys.Stream.Publish(eca.Event{Payload: e, Time: time.Unix(at, 0)})
	}

	fmt.Println("--- mallory hammers the login, peppered with alice's one typo ---")
	fail("mallory", 1)
	fail("alice", 2)
	fail("mallory", 3)
	fail("mallory", 5) // third within 10s → lock
	fail("alice", 50)  // far apart: never locks
	fail("alice", 200)

	st := sys.Engine.Stats()
	fmt.Printf("\nstats: %d instances, %d fired — only mallory got locked\n",
		st.InstancesCreated, st.InstancesCompleted)
}
