// Federation exercises the full heterogeneity story of the framework in a
// single rule evaluated over a distributed deployment: every component uses
// a different language and a different service, all behind real HTTP
// endpoints speaking the eca:request / log:answers wire protocol.
//
//	ON      snoop:seq( order($Cust, $Item) ; payment($Cust) )   — SNOOP
//	AND     supplier(Item, Supplier)                            — Datalog
//	AND     $Stock := warehouse levels for the item              — XQuery
//	IF      $Stock > 0                                          — test
//	DO      ship(...)  and  record the shipment in the store    — 2 actions
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	eca "repro"
	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

const (
	ecaNS   = "http://www.semwebtech.org/languages/2006/eca-ml"
	snoopNS = "http://www.semwebtech.org/languages/2006/snoop"
	xqNS    = "http://www.semwebtech.org/languages/2006/xquery"
	dlNS    = "http://www.semwebtech.org/languages/2006/datalog"
	storeNS = "http://www.semwebtech.org/languages/2006/xmlstore"
	shopNS  = "http://example.org/shop"
)

const ruleXML = `<eca:rule xmlns:eca="` + ecaNS + `"
    xmlns:snoop="` + snoopNS + `" xmlns:xq="` + xqNS + `"
    xmlns:shop="` + shopNS + `" xmlns:store="` + storeNS + `" id="fulfil">

  <!-- SNOOP: an order followed by a payment from the same customer -->
  <eca:event>
    <snoop:seq context="chronicle">
      <snoop:event><shop:order customer="$Cust" item="$Item"/></snoop:event>
      <snoop:event><shop:payment customer="$Cust"/></snoop:event>
    </snoop:seq>
  </eca:event>

  <!-- Datalog: which supplier carries the item (LP-style, extends tuples) -->
  <eca:query binds="Supplier">
    <eca:opaque language="` + dlNS + `">supplier(Item, Supplier)</eca:opaque>
  </eca:query>

  <!-- XQuery: current stock at that supplier's warehouse -->
  <eca:variable name="Stock">
    <eca:query>
      <xq:query>for $w in doc('warehouse.xml')//stock[@supplier=$Supplier and @item=$Item]
        return $w/@units</xq:query>
    </eca:query>
  </eca:variable>

  <!-- test: in stock? -->
  <eca:test>$Stock > 0</eca:test>

  <!-- two actions: ship, and record the shipment in the store -->
  <eca:action>
    <shop:ship customer="$Cust" item="$Item" supplier="$Supplier" units="1"/>
  </eca:action>
  <eca:action>
    <store:insert doc="shipments.xml"><shipment cust="$Cust" item="$Item" via="$Supplier"/></store:insert>
  </eca:action>
</eca:rule>`

func main() {
	supplierDB := datalog.MustParse(`
		carries(acme, widget). carries(acme, sprocket).
		carries(globex, sprocket). carries(globex, gizmo).
		supplier(Item, S) :- carries(S, Item).
	`)
	sys, err := eca.NewLocal(eca.Config{Datalog: supplierDB})
	if err != nil {
		log.Fatal(err)
	}
	sys.Store.Put("warehouse.xml", xmltree.MustParse(`<warehouse>
		<stock supplier="acme" item="widget" units="3"/>
		<stock supplier="acme" item="sprocket" units="0"/>
		<stock supplier="globex" item="sprocket" units="7"/>
		<stock supplier="globex" item="gizmo" units="0"/>
	</warehouse>`))
	sys.Store.Put("shipments.xml", xmltree.MustParse(`<shipments/>`))

	// Distribute: all component traffic over HTTP (Fig. 3).
	srv := httptest.NewServer(sys.Mux(nil, travel.Namespaces()))
	defer srv.Close()
	if err := sys.Distribute(srv.URL); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("services federated at %s\n\n", srv.URL)

	sys.Notifier.OnSend(func(n eca.Notification) {
		fmt.Printf("SHIP  %s\n", n.Message)
	})
	rule, err := ruleml.ParseString(ruleXML)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Engine.Register(rule); err != nil {
		log.Fatal(err)
	}

	pub := func(src string) {
		doc, err := eca.ParseXML(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("event: %s\n", doc.Root())
		sys.Stream.Publish(eca.NewEvent(doc))
	}
	// A sprocket is carried by acme (0 in stock) and globex (7): exactly
	// one shipment goes out. A gizmo is out of stock everywhere: none.
	pub(`<shop:order xmlns:shop="` + shopNS + `" customer="alice" item="sprocket"/>`)
	pub(`<shop:payment xmlns:shop="` + shopNS + `" customer="alice"/>`)
	pub(`<shop:order xmlns:shop="` + shopNS + `" customer="bob" item="gizmo"/>`)
	pub(`<shop:payment xmlns:shop="` + shopNS + `" customer="bob"/>`)

	doc, _ := sys.Store.Get("shipments.xml")
	fmt.Printf("\nshipments.xml after evaluation:\n%s\n", xmltree.Indent(doc))
	st := sys.Engine.Stats()
	fmt.Printf("stats: %d instances, %d fired, %d eliminated\n",
		st.InstancesCreated, st.InstancesCompleted, st.InstancesDied)
}
