package protocol

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bindings"
	"repro/internal/xmltree"
)

// arbRelation wraps a relation for quick.Generator.
type arbRelation struct{ R *bindings.Relation }

// Generate builds relations over random variable names and all value kinds.
func (arbRelation) Generate(rng *rand.Rand, size int) reflect.Value {
	names := []string{"Person", "Dest", "OwnCar", "Class", "N"}
	mkValue := func() bindings.Value {
		switch rng.Intn(5) {
		case 0:
			return bindings.Str(randWord(rng))
		case 1:
			return bindings.Num(float64(rng.Intn(2000)-1000) / 4)
		case 2:
			return bindings.Boolean(rng.Intn(2) == 0)
		case 3:
			return bindings.Ref("http://example.org/" + randWord(rng))
		default:
			e := xmltree.NewElement("", "v")
			e.SetAttr("", "k", randWord(rng))
			e.AppendText(randWord(rng))
			return bindings.Fragment(e)
		}
	}
	r := bindings.NewRelation()
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		t := bindings.Tuple{}
		for _, name := range names {
			if rng.Intn(2) == 0 {
				t[name] = mkValue()
			}
		}
		r.Add(t)
	}
	return reflect.ValueOf(arbRelation{r})
}

func randWord(rng *rand.Rand) string {
	letters := "abcdefg <>&\"'π"
	n := 1 + rng.Intn(8)
	out := make([]rune, n)
	runes := []rune(letters)
	for i := range out {
		out[i] = runes[rng.Intn(len(runes))]
	}
	return string(out)
}

// Property: any relation survives encode → serialize → parse → decode.
func TestQuickAnswersWireRoundTrip(t *testing.T) {
	f := func(ar arbRelation) bool {
		enc := EncodeAnswers(NewAnswer("r", "c", ar.R))
		doc, err := xmltree.ParseString(enc.String())
		if err != nil {
			t.Logf("serialize: %v", err)
			return false
		}
		dec, err := DecodeAnswers(doc)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return dec.Relation().Equal(ar.R)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: requests round-trip including kind, ids and bindings.
func TestQuickRequestWireRoundTrip(t *testing.T) {
	kinds := []RequestKind{RegisterEvent, UnregisterEvent, Query, Test, Action}
	f := func(ar arbRelation, kindIdx uint8, rule, comp string) bool {
		req := &Request{
			Kind:       kinds[int(kindIdx)%len(kinds)],
			RuleID:     sanitize(rule),
			Component:  sanitize(comp),
			Language:   "http://lang/x",
			Expression: xmltree.NewElement("http://lang/x", "expr"),
			Bindings:   ar.R,
		}
		doc, err := xmltree.ParseString(EncodeRequest(req).String())
		if err != nil {
			return false
		}
		dec, err := DecodeRequest(doc)
		if err != nil {
			return false
		}
		return dec.Kind == req.Kind &&
			dec.RuleID == req.RuleID &&
			dec.Component == req.Component &&
			dec.Bindings.Equal(req.Bindings)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize keeps attribute values parseable (strip control chars that XML
// 1.0 forbids entirely).
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 0x20 && r != 0xFFFD {
			out = append(out, r)
		}
	}
	return string(out)
}
