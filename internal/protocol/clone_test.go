package protocol

import (
	"testing"
	"time"

	"repro/internal/bindings"
	"repro/internal/xmltree"
)

// TestAnswerClone: the clone must share no mutable memory with the
// original — rows, tuples, values (XML node trees included), results and
// trace spans. The GRH answer cache depends on this isolation.
func TestAnswerClone(t *testing.T) {
	frag := xmltree.MustParse(`<car><model>VW Golf</model></car>`).Root()
	orig := &Answer{
		RuleID:      "travel",
		Component:   "query[1]",
		TraceID:     "travel#1",
		TraceParent: "event[1]",
		Trace:       []TraceSpan{{Phase: "evaluate", Duration: time.Millisecond}},
		Rows: []AnswerRow{{
			Tuple: bindings.Tuple{
				"Car": bindings.Fragment(frag),
				"X":   bindings.Str("1"),
			},
			Results: []bindings.Value{bindings.Fragment(frag.Clone()), bindings.Str("r")},
		}},
	}
	c := orig.Clone()

	// Scalar fields copied.
	if c.RuleID != orig.RuleID || c.Component != orig.Component || c.TraceID != orig.TraceID {
		t.Fatal("clone lost scalar fields")
	}
	// Mutate the clone in every aliasing-prone spot.
	c.Rows[0].Tuple["Car"].Node().Children = nil
	c.Rows[0].Tuple["New"] = bindings.Str("junk")
	c.Rows[0].Results[0].Node().Children = nil
	c.Rows[0].Results = append(c.Rows[0].Results[:1], bindings.Str("other"))
	c.Trace[0].Phase = "mutated"
	c.Rows = append(c.Rows, AnswerRow{})

	if got := orig.Rows[0].Tuple["Car"].Node().TextContent(); got != "VW Golf" {
		t.Errorf("original tuple fragment text = %q after clone mutation, want %q", got, "VW Golf")
	}
	if _, ok := orig.Rows[0].Tuple["New"]; ok {
		t.Error("tuple map aliased: clone's added variable visible in original")
	}
	if got := orig.Rows[0].Results[0].Node().TextContent(); got != "VW Golf" {
		t.Errorf("original result fragment text = %q after clone mutation, want %q", got, "VW Golf")
	}
	if got := orig.Rows[0].Results[1].AsString(); got != "r" {
		t.Errorf("original results slice aliased: second result = %q, want %q", got, "r")
	}
	if orig.Trace[0].Phase != "evaluate" {
		t.Error("trace spans aliased")
	}
	if len(orig.Rows) != 1 {
		t.Error("rows slice aliased")
	}

	// Nil handling.
	var nilAnswer *Answer
	if nilAnswer.Clone() != nil {
		t.Error("nil answer should clone to nil")
	}
	empty := (&Answer{RuleID: "r"}).Clone()
	if empty.RuleID != "r" || empty.Rows != nil || empty.Trace != nil {
		t.Error("empty answer clone should stay empty")
	}
}
