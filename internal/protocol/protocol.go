// Package protocol defines the XML wire format the ECA engine, the Generic
// Request Handler and the component-language services exchange, following
// Section 4.4 of the paper: requests carry a component expression plus the
// relevant input variable bindings; answers come back as <log:answers>
// messages holding tuples of variable bindings and/or functional results.
package protocol

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/bindings"
	"repro/internal/xmltree"
)

// Namespace URIs of the framework's own markup. They follow the REWERSE
// resource-naming style used in the paper.
const (
	// ECANS is the namespace of the ECA rule markup language (eca:rule,
	// eca:event, eca:query, eca:test, eca:action, eca:variable, eca:opaque)
	// and of the request envelopes.
	ECANS = "http://www.semwebtech.org/languages/2006/eca-ml"
	// LogNS is the namespace of answer markup: log:answers, log:answer,
	// log:variable and log:result.
	LogNS = "http://www.semwebtech.org/languages/2006/logic-ml"
)

// Trace-context propagation headers. The GRH stamps both on every
// outbound HTTP dispatch; framework-aware service handlers echo them in
// the optional <log:trace> element of their answer so the client can
// stitch server-side spans under the dispatch's client span. Services
// that ignore the headers remain fully protocol-conformant.
const (
	// TraceIDHeader carries the rule-instance id ("<rule>#<n>").
	TraceIDHeader = "X-ECA-Trace-Id"
	// ParentSpanHeader carries the client-side span the dispatch belongs
	// to — the component id within the rule, e.g. "query[2]".
	ParentSpanHeader = "X-ECA-Parent-Span"
	// TenantHeader names the tenant a request acts within, on client
	// calls (POST /engine/rules, POST /events) and on cluster
	// forwarding hops alike. Absent means the node's default tenant.
	TenantHeader = "X-ECA-Tenant"
)

// RequestKind enumerates the request envelopes the GRH sends to services.
type RequestKind string

// The request kinds.
const (
	// RegisterEvent submits an event component for continuous detection;
	// answers arrive asynchronously as detection messages.
	RegisterEvent RequestKind = "register-event"
	// UnregisterEvent withdraws a previously registered event component.
	UnregisterEvent RequestKind = "unregister-event"
	// Query evaluates a query component against the service's data.
	Query RequestKind = "query"
	// Test evaluates a test component over the input bindings.
	Test RequestKind = "test"
	// Action executes an action component once per input tuple.
	Action RequestKind = "action"
)

// Request is the envelope the GRH sends to a component language service:
// which rule and component it concerns, the component expression itself
// (in the component's own language), and the relevant input bindings.
type Request struct {
	Kind      RequestKind
	RuleID    string
	Component string // component id within the rule, e.g. "query[2]"
	// Language is the namespace URI of the component language, used by the
	// GRH for dispatch and echoed to services for self-description.
	Language string
	// Expression is the component expression element (e.g. <eca:event>…,
	// an <evt:…> operator tree, or an <eca:opaque> fragment).
	Expression *xmltree.Node
	// Bindings are the input variable bindings relevant to the component.
	Bindings *bindings.Relation
	// ReplyTo is the URL detection answers should be posted to; only
	// meaningful for RegisterEvent requests sent to remote services.
	ReplyTo string
	// Tenant is the namespace the request acts within. Empty means the
	// default tenant, which keeps the wire format of tenant-unaware
	// deployments byte-identical.
	Tenant string
}

// AnswerRow is one <log:answer> element: a tuple of variable bindings plus
// any functional results (<log:result> contents) produced for that tuple.
type AnswerRow struct {
	Tuple   bindings.Tuple
	Results []bindings.Value
}

// TraceSpan is one server-side timing phase a framework-aware service
// reports back in the optional <log:trace> element of its answer: how
// long the service spent parsing the request, evaluating the component
// expression and encoding the answer markup, with the binding-relation
// sizes it saw. Older clients ignore the element; older services simply
// never send it.
type TraceSpan struct {
	// Phase is "parse", "evaluate" or "encode".
	Phase string
	// Start is when the phase began (optional; zero when the service
	// chose not to report wall-clock times).
	Start time.Time
	// Duration is the phase's elapsed time.
	Duration time.Duration
	// TuplesIn / TuplesOut are the binding-relation sizes around the
	// phase (0 where not meaningful, e.g. TuplesOut of "parse").
	TuplesIn  int
	TuplesOut int
}

// Answer is the envelope a service returns (or posts asynchronously, for
// event detection): the produced tuples of variable bindings, and for
// functional-style services the per-tuple results to be bound by the
// surrounding <eca:variable>.
type Answer struct {
	RuleID    string
	Component string
	// Rows holds one row per <log:answer> element, in message order.
	Rows []AnswerRow

	// TraceID echoes the X-ECA-Trace-Id the service received with the
	// request; set only when the answer carries a <log:trace> element.
	TraceID string
	// TraceParent echoes the X-ECA-Parent-Span header (the client-side
	// component span the server spans nest under).
	TraceParent string
	// Trace holds the server-side spans of the optional <log:trace>
	// answer-markup extension, in phase order.
	Trace []TraceSpan

	// AdmittedAt / PublishedAt carry the lifecycle timestamps of the
	// event occurrence behind a detection answer (zero for answers not
	// born from an admitted event, e.g. query/test replies). They ride
	// as optional attributes on <log:answers> so remote detection posts
	// keep the admit→action clock running across nodes; the monotonic
	// component is lost on the wire, which is acceptable at the
	// millisecond latencies the lifecycle histograms measure.
	AdmittedAt  time.Time
	PublishedAt time.Time
}

// NewAnswer builds an answer whose rows are the tuples of rel (results
// empty), the common case for LP-style services.
func NewAnswer(ruleID, component string, rel *bindings.Relation) *Answer {
	a := &Answer{RuleID: ruleID, Component: component}
	if rel != nil {
		for _, t := range rel.Tuples() {
			a.Rows = append(a.Rows, AnswerRow{Tuple: t})
		}
	}
	return a
}

// Clone returns a deep copy of the answer: rows, tuples, values (XML
// fragments included) and trace spans share no memory with the original.
// The GRH answer cache relies on this to hand every rule instance an
// independent copy — a cached relation must never be aliased across
// instances.
func (a *Answer) Clone() *Answer {
	if a == nil {
		return nil
	}
	b := *a
	if a.Trace != nil {
		b.Trace = append([]TraceSpan(nil), a.Trace...)
	}
	if a.Rows != nil {
		b.Rows = make([]AnswerRow, len(a.Rows))
		for i, r := range a.Rows {
			var nr AnswerRow
			if r.Tuple != nil {
				nr.Tuple = make(bindings.Tuple, len(r.Tuple))
				for k, v := range r.Tuple {
					nr.Tuple[k] = v.Clone()
				}
			}
			if r.Results != nil {
				nr.Results = make([]bindings.Value, len(r.Results))
				for j, v := range r.Results {
					nr.Results[j] = v.Clone()
				}
			}
			b.Rows[i] = nr
		}
	}
	return &b
}

// Relation collects the answer tuples (without results) into a relation.
func (a *Answer) Relation() *bindings.Relation {
	rel := bindings.NewRelation()
	for _, r := range a.Rows {
		rel.Add(r.Tuple)
	}
	return rel
}

// HasResults reports whether any row carries functional results.
func (a *Answer) HasResults() bool {
	for _, r := range a.Rows {
		if len(r.Results) > 0 {
			return true
		}
	}
	return false
}

// --- value encoding ---------------------------------------------------------

// EncodeValue renders a binding value as the content of a log:variable or
// log:result element, returning the child nodes and the type attribute.
func EncodeValue(v bindings.Value) (children []*xmltree.Node, typ string) {
	switch v.Kind() {
	case bindings.XML:
		return []*xmltree.Node{v.Node().Clone()}, "xml"
	case bindings.Number:
		return []*xmltree.Node{xmltree.NewText(v.AsString())}, "number"
	case bindings.Bool:
		return []*xmltree.Node{xmltree.NewText(v.AsString())}, "boolean"
	case bindings.URI:
		return []*xmltree.Node{xmltree.NewText(v.AsString())}, "uri"
	default:
		return []*xmltree.Node{xmltree.NewText(v.AsString())}, "string"
	}
}

// DecodeValue reconstructs a binding value from the children of a
// log:variable or log:result element and its type attribute. An element
// child yields an XML value regardless of the declared type; otherwise the
// text content is interpreted per the type attribute (default "string").
func DecodeValue(children []*xmltree.Node, typ string) (bindings.Value, error) {
	var elem *xmltree.Node
	text := ""
	for _, c := range children {
		switch c.Kind {
		case xmltree.ElementNode:
			if elem != nil {
				// Multiple fragments: wrap is the caller's job; treat the
				// first as the value to keep decoding total.
				continue
			}
			elem = c
		case xmltree.TextNode:
			text += c.Text
		}
	}
	if elem != nil {
		return bindings.Fragment(elem.Clone()), nil
	}
	switch typ {
	case "number":
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return bindings.Value{}, fmt.Errorf("protocol: bad number %q: %w", text, err)
		}
		return bindings.Num(f), nil
	case "boolean":
		switch text {
		case "true", "1":
			return bindings.Boolean(true), nil
		case "false", "0":
			return bindings.Boolean(false), nil
		default:
			return bindings.Value{}, fmt.Errorf("protocol: bad boolean %q", text)
		}
	case "uri":
		return bindings.Ref(text), nil
	default:
		return bindings.Str(text), nil
	}
}

// --- answers markup ----------------------------------------------------------

// EncodeAnswers renders an Answer as a <log:answers> element:
//
//	<log:answers rule="R" component="C">
//	  <log:answer>
//	    <log:variable name="X" type="string">…</log:variable>
//	    <log:result>…</log:result>
//	  </log:answer>…
//	</log:answers>
func EncodeAnswers(a *Answer) *xmltree.Node {
	root := xmltree.NewElement(LogNS, "answers")
	root.SetAttr("xmlns", "log", LogNS)
	if a.RuleID != "" {
		root.SetAttr("", "rule", a.RuleID)
	}
	if a.Component != "" {
		root.SetAttr("", "component", a.Component)
	}
	if !a.AdmittedAt.IsZero() {
		root.SetAttr("", "admitted", a.AdmittedAt.UTC().Format(time.RFC3339Nano))
	}
	if !a.PublishedAt.IsZero() {
		root.SetAttr("", "published", a.PublishedAt.UTC().Format(time.RFC3339Nano))
	}
	if len(a.Trace) > 0 {
		root.Append(EncodeTraceElement(a.TraceID, a.TraceParent, a.Trace))
	}
	for _, row := range a.Rows {
		ans := xmltree.NewElement(LogNS, "answer")
		for _, name := range row.Tuple.Vars() {
			children, typ := EncodeValue(row.Tuple[name])
			v := xmltree.NewElement(LogNS, "variable")
			v.SetAttr("", "name", name)
			v.SetAttr("", "type", typ)
			for _, c := range children {
				v.Append(c)
			}
			ans.Append(v)
		}
		for _, rv := range row.Results {
			children, typ := EncodeValue(rv)
			r := xmltree.NewElement(LogNS, "result")
			r.SetAttr("", "type", typ)
			for _, c := range children {
				r.Append(c)
			}
			ans.Append(r)
		}
		root.Append(ans)
	}
	return root
}

// EncodeTraceElement renders the optional <log:trace> extension, used
// both by EncodeAnswers and by service handlers that append the element
// to an already-encoded answer:
//
//	<log:trace traceId="travel#7" parent="query[1]">
//	  <log:span phase="parse" start="…" duration-ns="8300" tuples-in="2"/>
//	  <log:span phase="evaluate" duration-ns="412000" tuples-in="2" tuples-out="4"/>
//	  <log:span phase="encode" duration-ns="5100" tuples-out="4"/>
//	</log:trace>
func EncodeTraceElement(traceID, parent string, spans []TraceSpan) *xmltree.Node {
	tr := xmltree.NewElement(LogNS, "trace")
	if traceID != "" {
		tr.SetAttr("", "traceId", traceID)
	}
	if parent != "" {
		tr.SetAttr("", "parent", parent)
	}
	for _, s := range spans {
		sp := xmltree.NewElement(LogNS, "span")
		sp.SetAttr("", "phase", s.Phase)
		if !s.Start.IsZero() {
			sp.SetAttr("", "start", s.Start.UTC().Format(time.RFC3339Nano))
		}
		sp.SetAttr("", "duration-ns", strconv.FormatInt(s.Duration.Nanoseconds(), 10))
		if s.TuplesIn > 0 {
			sp.SetAttr("", "tuples-in", strconv.Itoa(s.TuplesIn))
		}
		if s.TuplesOut > 0 {
			sp.SetAttr("", "tuples-out", strconv.Itoa(s.TuplesOut))
		}
		tr.Append(sp)
	}
	return tr
}

// decodeTrace parses a <log:trace> element. It is deliberately lenient —
// the extension is optional, so a malformed attribute degrades to a zero
// field instead of failing the whole answer.
func decodeTrace(a *Answer, n *xmltree.Node) {
	a.TraceID = n.AttrValue("", "traceId")
	a.TraceParent = n.AttrValue("", "parent")
	for _, sp := range n.ChildElementsNamed(LogNS, "span") {
		s := TraceSpan{Phase: sp.AttrValue("", "phase")}
		if v := sp.AttrValue("", "start"); v != "" {
			if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
				s.Start = t
			}
		}
		if ns, err := strconv.ParseInt(sp.AttrValue("", "duration-ns"), 10, 64); err == nil {
			s.Duration = time.Duration(ns)
		}
		s.TuplesIn, _ = strconv.Atoi(sp.AttrValue("", "tuples-in"))
		s.TuplesOut, _ = strconv.Atoi(sp.AttrValue("", "tuples-out"))
		a.Trace = append(a.Trace, s)
	}
}

// DecodeAnswers parses a <log:answers> element back into an Answer.
func DecodeAnswers(n *xmltree.Node) (*Answer, error) {
	n = n.Root()
	if n == nil || n.Name.Space != LogNS || n.Name.Local != "answers" {
		return nil, fmt.Errorf("protocol: expected log:answers, got %v", nodeName(n))
	}
	a := &Answer{
		RuleID:    n.AttrValue("", "rule"),
		Component: n.AttrValue("", "component"),
	}
	// Lifecycle timestamps are optional and lenient: a malformed value
	// degrades to zero (no lifecycle accounting) rather than failing the
	// answer.
	if v := n.AttrValue("", "admitted"); v != "" {
		if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
			a.AdmittedAt = t
		}
	}
	if v := n.AttrValue("", "published"); v != "" {
		if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
			a.PublishedAt = t
		}
	}
	if tr := n.FirstChildElement(LogNS, "trace"); tr != nil {
		decodeTrace(a, tr)
	}
	for _, ansEl := range n.ChildElementsNamed(LogNS, "answer") {
		row := AnswerRow{Tuple: bindings.Tuple{}}
		for _, c := range ansEl.ChildElements() {
			if c.Name.Space != LogNS {
				continue
			}
			switch c.Name.Local {
			case "variable":
				name := c.AttrValue("", "name")
				if name == "" {
					return nil, fmt.Errorf("protocol: log:variable without name")
				}
				v, err := DecodeValue(c.Children, c.AttrValue("", "type"))
				if err != nil {
					return nil, fmt.Errorf("protocol: variable %s: %w", name, err)
				}
				row.Tuple[bindings.Intern(name)] = v
			case "result":
				v, err := DecodeValue(c.Children, c.AttrValue("", "type"))
				if err != nil {
					return nil, fmt.Errorf("protocol: result: %w", err)
				}
				row.Results = append(row.Results, v)
			}
		}
		a.Rows = append(a.Rows, row)
	}
	return a, nil
}

// --- request envelope ---------------------------------------------------------

// EncodeRequest renders a Request as an <eca:request> element:
//
//	<eca:request kind="query" rule="R" component="C" language="URI">
//	  <eca:expression>…component expression…</eca:expression>
//	  <log:answers>…input bindings…</log:answers>
//	</eca:request>
func EncodeRequest(r *Request) *xmltree.Node {
	root := xmltree.NewElement(ECANS, "request")
	root.SetAttr("xmlns", "eca", ECANS)
	root.SetAttr("", "kind", string(r.Kind))
	root.SetAttr("", "rule", r.RuleID)
	root.SetAttr("", "component", r.Component)
	if r.Language != "" {
		root.SetAttr("", "language", r.Language)
	}
	if r.ReplyTo != "" {
		root.SetAttr("", "replyTo", r.ReplyTo)
	}
	if r.Tenant != "" {
		root.SetAttr("", "tenant", r.Tenant)
	}
	expr := xmltree.NewElement(ECANS, "expression")
	if r.Expression != nil {
		expr.Append(r.Expression.Clone())
	}
	root.Append(expr)
	root.Append(EncodeAnswers(NewAnswer("", "", r.Bindings)))
	return root
}

// DecodeRequest parses an <eca:request> element back into a Request.
func DecodeRequest(n *xmltree.Node) (*Request, error) {
	n = n.Root()
	if n == nil || n.Name.Space != ECANS || n.Name.Local != "request" {
		return nil, fmt.Errorf("protocol: expected eca:request, got %v", nodeName(n))
	}
	r := &Request{
		Kind:      RequestKind(n.AttrValue("", "kind")),
		RuleID:    n.AttrValue("", "rule"),
		Component: n.AttrValue("", "component"),
		Language:  n.AttrValue("", "language"),
		ReplyTo:   n.AttrValue("", "replyTo"),
		Tenant:    n.AttrValue("", "tenant"),
		Bindings:  bindings.NewRelation(),
	}
	switch r.Kind {
	case RegisterEvent, UnregisterEvent, Query, Test, Action:
	default:
		return nil, fmt.Errorf("protocol: unknown request kind %q", n.AttrValue("", "kind"))
	}
	if expr := n.FirstChildElement(ECANS, "expression"); expr != nil {
		if kids := expr.ChildElements(); len(kids) > 0 {
			r.Expression = kids[0]
		}
	}
	if answers := n.FirstChildElement(LogNS, "answers"); answers != nil {
		a, err := DecodeAnswers(answers)
		if err != nil {
			return nil, err
		}
		r.Bindings = a.Relation()
	}
	return r, nil
}

func nodeName(n *xmltree.Node) string {
	if n == nil {
		return "nothing"
	}
	return n.Name.String()
}
