package protocol

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bindings"
	"repro/internal/xmltree"
)

func TestTraceElementRoundtrip(t *testing.T) {
	start := time.Date(2026, 8, 6, 12, 0, 0, 123456789, time.UTC)
	a := &Answer{
		RuleID:      "travel",
		Component:   "query[1]",
		TraceID:     "travel#7",
		TraceParent: "query[1]",
		Trace: []TraceSpan{
			{Phase: "parse", Start: start, Duration: 8300 * time.Nanosecond, TuplesIn: 2},
			{Phase: "evaluate", Duration: 412 * time.Microsecond, TuplesIn: 2, TuplesOut: 4},
			{Phase: "encode", Duration: 5100 * time.Nanosecond, TuplesOut: 4},
		},
		Rows: []AnswerRow{{Tuple: bindings.MustTuple("X", bindings.Str("v"))}},
	}
	doc := EncodeAnswers(a)
	wire := doc.String()
	if !strings.Contains(wire, "trace") || !strings.Contains(wire, `traceId="travel#7"`) {
		t.Fatalf("wire missing log:trace: %s", wire)
	}

	got, err := DecodeAnswers(xmltree.MustParse(wire))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.TraceID != "travel#7" || got.TraceParent != "query[1]" {
		t.Errorf("trace context = %q/%q", got.TraceID, got.TraceParent)
	}
	if len(got.Trace) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Trace))
	}
	p := got.Trace[0]
	if p.Phase != "parse" || !p.Start.Equal(start) || p.Duration != 8300*time.Nanosecond || p.TuplesIn != 2 || p.TuplesOut != 0 {
		t.Errorf("parse span = %+v", p)
	}
	ev := got.Trace[1]
	if ev.Phase != "evaluate" || !ev.Start.IsZero() || ev.Duration != 412*time.Microsecond || ev.TuplesOut != 4 {
		t.Errorf("evaluate span = %+v", ev)
	}
	// The tuple rows survive alongside the extension.
	if len(got.Rows) != 1 || !got.Rows[0].Tuple.Equal(a.Rows[0].Tuple) {
		t.Errorf("rows = %+v", got.Rows)
	}
}

func TestAnswersWithoutTraceUnchanged(t *testing.T) {
	a := NewAnswer("r", "query[1]", bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))))
	wire := EncodeAnswers(a).String()
	if strings.Contains(wire, "trace") {
		t.Fatalf("untraced answer grew a trace element: %s", wire)
	}
	got, err := DecodeAnswers(xmltree.MustParse(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "" || len(got.Trace) != 0 {
		t.Errorf("phantom trace decoded: %+v", got)
	}
}

// TestTraceElementInvisibleToRowDecoding feeds an answer document whose
// log:trace element an old decoder would never look at, and checks the
// current decoder treats the rows identically with and without it —
// i.e. the extension changes nothing about the answer-markup semantics.
func TestTraceElementInvisibleToRowDecoding(t *testing.T) {
	with := `<log:answers xmlns:log="` + LogNS + `" rule="r" component="query[1]">
	  <log:trace traceId="r#1"><log:span phase="evaluate" duration-ns="10"/></log:trace>
	  <log:answer><log:variable name="X" type="string">a</log:variable></log:answer>
	</log:answers>`
	without := `<log:answers xmlns:log="` + LogNS + `" rule="r" component="query[1]">
	  <log:answer><log:variable name="X" type="string">a</log:variable></log:answer>
	</log:answers>`
	aw, err := DecodeAnswers(xmltree.MustParse(with))
	if err != nil {
		t.Fatal(err)
	}
	ao, err := DecodeAnswers(xmltree.MustParse(without))
	if err != nil {
		t.Fatal(err)
	}
	if len(aw.Rows) != 1 || len(ao.Rows) != 1 || !aw.Rows[0].Tuple.Equal(ao.Rows[0].Tuple) {
		t.Errorf("rows differ with trace element: %+v vs %+v", aw.Rows, ao.Rows)
	}
	if aw.TraceID != "r#1" || len(aw.Trace) != 1 || aw.Trace[0].Phase != "evaluate" {
		t.Errorf("trace not decoded: %+v", aw)
	}
}

// TestDecodeTraceLenient: malformed attributes degrade to zero fields
// rather than failing the answer.
func TestDecodeTraceLenient(t *testing.T) {
	doc := `<log:answers xmlns:log="` + LogNS + `" rule="r">
	  <log:trace><log:span phase="parse" start="not-a-time" duration-ns="NaN" tuples-in="many"/></log:trace>
	</log:answers>`
	a, err := DecodeAnswers(xmltree.MustParse(doc))
	if err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
	if len(a.Trace) != 1 {
		t.Fatalf("spans = %d", len(a.Trace))
	}
	s := a.Trace[0]
	if s.Phase != "parse" || !s.Start.IsZero() || s.Duration != 0 || s.TuplesIn != 0 {
		t.Errorf("span = %+v, want zero fields", s)
	}
}
