package protocol

import (
	"testing"

	"repro/internal/bindings"
	"repro/internal/xmltree"
)

func TestAnswersRoundTrip(t *testing.T) {
	rel := bindings.NewRelation(
		bindings.MustTuple("Person", bindings.Str("John Doe"), "Dest", bindings.Str("Paris")),
		bindings.MustTuple("Person", bindings.Str("Jane"), "N", bindings.Num(7)),
	)
	a := NewAnswer("rule-1", "event", rel)
	enc := EncodeAnswers(a)
	// It must serialize and reparse as valid XML.
	doc, err := xmltree.ParseString(enc.String())
	if err != nil {
		t.Fatalf("serialized answers do not parse: %v", err)
	}
	dec, err := DecodeAnswers(doc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.RuleID != "rule-1" || dec.Component != "event" {
		t.Errorf("ids = %q, %q", dec.RuleID, dec.Component)
	}
	if !dec.Relation().Equal(rel) {
		t.Errorf("relation round trip:\nwant %s\ngot %s", rel, dec.Relation())
	}
}

func TestAnswersWithResults(t *testing.T) {
	frag := xmltree.MustParse(`<car>Golf</car>`).Root()
	a := &Answer{
		RuleID: "r",
		Rows: []AnswerRow{
			{Tuple: bindings.MustTuple("Person", bindings.Str("John"))},
			{
				Tuple:   bindings.MustTuple("Person", bindings.Str("John")),
				Results: []bindings.Value{bindings.Fragment(frag), bindings.Str("Passat")},
			},
		},
	}
	enc := EncodeAnswers(a)
	dec, err := DecodeAnswers(xmltree.MustParse(enc.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (duplicate tuples with distinct results must survive)", len(dec.Rows))
	}
	if !dec.HasResults() {
		t.Fatal("results lost")
	}
	rs := dec.Rows[1].Results
	if len(rs) != 2 {
		t.Fatalf("results = %d, want 2", len(rs))
	}
	if rs[0].Kind() != bindings.XML || rs[0].AsString() != "Golf" {
		t.Errorf("result[0] = %v", rs[0])
	}
	if rs[1].AsString() != "Passat" {
		t.Errorf("result[1] = %v", rs[1])
	}
	if len(dec.Rows[0].Results) != 0 {
		t.Errorf("row 0 should have no results")
	}
}

func TestValueTypesRoundTrip(t *testing.T) {
	vals := []bindings.Value{
		bindings.Str("plain"),
		bindings.Str(""),
		bindings.Num(3.25),
		bindings.Num(-42),
		bindings.Boolean(true),
		bindings.Boolean(false),
		bindings.Ref("http://example.org/res#1"),
		bindings.Fragment(xmltree.MustParse(`<e a="1"><f/></e>`).Root()),
	}
	for _, v := range vals {
		children, typ := EncodeValue(v)
		got, err := DecodeValue(children, typ)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if got.Kind() != v.Kind() || !got.Equal(v) {
			t.Errorf("round trip %v (%v) -> %v (%v)", v, v.Kind(), got, got.Kind())
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	if _, err := DecodeValue([]*xmltree.Node{xmltree.NewText("abc")}, "number"); err == nil {
		t.Error("bad number should error")
	}
	if _, err := DecodeValue([]*xmltree.Node{xmltree.NewText("maybe")}, "boolean"); err == nil {
		t.Error("bad boolean should error")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	expr := xmltree.MustParse(`<q:query xmlns:q="http://example.org/xq">doc('cars')//car</q:query>`).Root()
	req := &Request{
		Kind:       Query,
		RuleID:     "rule-7",
		Component:  "query[1]",
		Language:   "http://example.org/xq",
		Expression: expr,
		Bindings: bindings.NewRelation(
			bindings.MustTuple("Person", bindings.Str("John Doe")),
		),
	}
	enc := EncodeRequest(req)
	dec, err := DecodeRequest(xmltree.MustParse(enc.String()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != Query || dec.RuleID != "rule-7" || dec.Component != "query[1]" || dec.Language != "http://example.org/xq" {
		t.Errorf("header = %+v", dec)
	}
	if !xmltree.EqualIgnoringWhitespace(dec.Expression, expr) {
		t.Errorf("expression round trip:\nwant %s\ngot  %s", expr, dec.Expression)
	}
	if !dec.Bindings.Equal(req.Bindings) {
		t.Errorf("bindings round trip:\nwant %s\ngot %s", req.Bindings, dec.Bindings)
	}
}

func TestDecodeRequestRejectsUnknownKind(t *testing.T) {
	doc := xmltree.MustParse(`<eca:request xmlns:eca="` + ECANS + `" kind="bogus" rule="r" component="c"/>`)
	if _, err := DecodeRequest(doc); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestDecodeAnswersRejectsWrongRoot(t *testing.T) {
	doc := xmltree.MustParse(`<wrong/>`)
	if _, err := DecodeAnswers(doc); err == nil {
		t.Error("wrong root should error")
	}
	doc2 := xmltree.MustParse(`<log:answer xmlns:log="` + LogNS + `"/>`)
	if _, err := DecodeAnswers(doc2); err == nil {
		t.Error("answer (not answers) should error")
	}
}

func TestVariableWithoutNameRejected(t *testing.T) {
	doc := xmltree.MustParse(`<log:answers xmlns:log="` + LogNS + `"><log:answer><log:variable>x</log:variable></log:answer></log:answers>`)
	if _, err := DecodeAnswers(doc); err == nil {
		t.Error("nameless variable should error")
	}
}

func TestEmptyAnswersMeansNoTuples(t *testing.T) {
	// An empty log:answers message (no answer elements) is how a service
	// reports "no results": the relation becomes empty and downstream
	// joins eliminate the rule instance.
	a := NewAnswer("r", "c", bindings.NewRelation())
	dec, err := DecodeAnswers(xmltree.MustParse(EncodeAnswers(a).String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Rows) != 0 || !dec.Relation().Empty() {
		t.Errorf("expected empty answer, got %d rows", len(dec.Rows))
	}
}
