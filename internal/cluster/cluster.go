// Package cluster is the multi-node layer of the engine: a static peer
// list of ecad replicas among which registered rules are partitioned by
// consistent hash on rule id, incoming events are forwarded to the
// replicas whose rules can match them (by event vocabulary), and each
// node streams its write-ahead journal (internal/store) to a designated
// follower so the follower can take the partition over — replaying the
// mirrored journal through the regular crash-recovery path — when health
// probes declare the primary dead. See docs/CLUSTERING.md for the
// topology, the replication wire format and the failover runbook.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/store"
	"repro/internal/xmltree"
)

// OriginHeader marks a request forwarded by a peer: the value is the
// forwarding node's id. A node never re-forwards a request carrying it,
// which makes forwarding loop-free by construction.
const OriginHeader = "X-ECA-Cluster-Origin"

// Defaults for Options.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultDownAfter     = 3
	DefaultHTTPTimeout   = 5 * time.Second
)

// shipFlush is how often buffered replication records are flushed to the
// follower even when the batch is small.
const shipFlush = 100 * time.Millisecond

// Peer names one cluster member: a stable node id and the base URL of its
// HTTP surface (system.Mux).
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Options configures a cluster node.
type Options struct {
	// NodeID is this node's id; it must appear in Peers.
	NodeID string
	// Peers is the full static member list, including this node.
	Peers []Peer
	// ReplicateTo is the peer id this node streams its journal to. Empty
	// picks the successor in sorted node-id order (a ring a→b→c→a);
	// "none" disables replication even when a durable store is present.
	ReplicateTo string
	// ProbeInterval is the health-probe cadence; DefaultProbeInterval when
	// zero.
	ProbeInterval time.Duration
	// DownAfter is how many consecutive probe failures declare a peer
	// down; DefaultDownAfter when zero.
	DownAfter int
	// HTTPTimeout bounds every forwarded or probe request;
	// DefaultHTTPTimeout when zero.
	HTTPTimeout time.Duration
	// Obs receives cluster metrics and forwarded-hop trace spans; nil runs
	// the layer uninstrumented.
	Obs *obs.Hub
	// Log receives structured cluster logging; nil disables it.
	Log *obs.Logger
}

// Hooks are the narrow slices of the host system the cluster layer calls
// back into. RegisterRecovered and PublishRecovered are the same two-phase
// recovery callbacks System.Recover uses for crash recovery, reused here
// for partition takeover.
type Hooks struct {
	// LocalRules returns the rules currently registered on this node, for
	// vocabulary advertisement and ownership listings.
	LocalRules func() []*ruleml.Rule
	// RegisterRecovered registers one rule taken over from a dead peer
	// through the engine's regular validation path, restoring its id and
	// registration time into the tenant's space it was journaled under
	// (wire form; "" = default tenant).
	RegisterRecovered func(tenant, id string, doc *xmltree.Node, registered time.Time) error
	// PublishRecovered re-publishes one orphaned event (accepted by the
	// dead peer, never dispatched) on the local stream, into its tenant's
	// space.
	PublishRecovered func(tenant string, doc *xmltree.Node) error
}

// peerState is this node's view of one remote peer.
type peerState struct {
	id  string
	url string
	// up is the probed liveness; peers start optimistically up so events
	// are routed conservatively until the first probe settles the view.
	up       bool
	everSeen bool // a probe has succeeded at least once
	fails    int
	lastSeen time.Time
	// vocab/wildcard advertise which event terms the peer's rules match,
	// learned from its /cluster/status; vocabKnown is false until the
	// first successful probe (then routing is conservative: forward).
	vocab      map[string]bool
	wildcard   bool
	vocabKnown bool
	// learned are terms this node routed to the peer at registration time,
	// authoritative only until the next probe refresh.
	learned map[string]bool
}

type metrics struct {
	forwarded      *obs.CounterVec // cluster_forwarded_events_total{peer}
	forwardErrs    *obs.CounterVec // cluster_forward_errors_total{peer,reason}
	replicated     *obs.Counter    // cluster_replicated_records_total
	peerUp         *obs.GaugeVec   // cluster_peer_up{peer}
	takeovers      *obs.Counter    // cluster_takeovers_total
	federationErrs *obs.CounterVec // cluster_federation_errors_total{peer}
}

func newMetrics(h *obs.Hub) metrics {
	r := h.Metrics()
	return metrics{
		forwarded:      r.CounterVec("cluster_forwarded_events_total", "Events forwarded to a peer replica, by peer id.", "peer"),
		forwardErrs:    r.CounterVec("cluster_forward_errors_total", "Forwarding failures, by peer id and reason (shed = peer answered 429 overloaded, quota = peer answered 429 tenant quota, error = hard failure).", "peer", "reason"),
		replicated:     r.Counter("cluster_replicated_records_total", "Journal records acknowledged by this node's replication follower."),
		peerUp:         r.GaugeVec("cluster_peer_up", "Probed peer liveness (1 = up, 0 = down), by peer id.", "peer"),
		takeovers:      r.Counter("cluster_takeovers_total", "Partitions taken over from peers declared dead."),
		federationErrs: r.CounterVec("cluster_federation_errors_total", "Peer /metrics scrapes that failed during /cluster/metrics federation, by peer id.", "peer"),
	}
}

// Node is one cluster member's view of the cluster. Safe for concurrent
// use.
type Node struct {
	id       string
	selfURL  string
	opts     Options
	ring     *Ring
	hooks    Hooks
	store    *store.Store // nil: no journal to replicate
	follower string       // peer id we ship our journal to; "" = disabled
	client   *http.Client
	met      metrics
	hub      *obs.Hub
	log      *obs.Logger

	mu        sync.Mutex
	peers     map[string]*peerState     // every peer but self
	replicas  map[string]*store.Replica // primaries whose journals we mirror
	takenOver map[string]bool
	takeovers int

	idSeq   atomic.Uint64
	repLost atomic.Bool
	recs    chan store.RepRecord
	stop    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

// New builds a cluster node. st may be nil (no durable store): sharding
// and forwarding still work, but this node replicates nothing outbound.
func New(o Options, hooks Hooks, st *store.Store) (*Node, error) {
	if o.NodeID == "" {
		return nil, errors.New("cluster: node id required")
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.DownAfter <= 0 {
		o.DownAfter = DefaultDownAfter
	}
	if o.HTTPTimeout <= 0 {
		o.HTTPTimeout = DefaultHTTPTimeout
	}
	ids := make([]string, 0, len(o.Peers))
	var selfURL string
	seen := map[string]bool{}
	for _, p := range o.Peers {
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer needs id and url, got %+v", p)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		ids = append(ids, p.ID)
		if p.ID == o.NodeID {
			selfURL = p.URL
		}
	}
	if selfURL == "" {
		return nil, fmt.Errorf("cluster: node id %q not in the peer list", o.NodeID)
	}
	ring := NewRing(ids)
	n := &Node{
		id:        o.NodeID,
		selfURL:   strings.TrimRight(selfURL, "/"),
		opts:      o,
		ring:      ring,
		hooks:     hooks,
		store:     st,
		client:    &http.Client{Timeout: o.HTTPTimeout},
		met:       newMetrics(o.Obs),
		hub:       o.Obs,
		log:       o.Log,
		peers:     map[string]*peerState{},
		replicas:  map[string]*store.Replica{},
		takenOver: map[string]bool{},
		recs:      make(chan store.RepRecord, 4096),
		stop:      make(chan struct{}),
	}
	for _, p := range o.Peers {
		if p.ID == n.id {
			continue
		}
		n.peers[p.ID] = &peerState{id: p.ID, url: strings.TrimRight(p.URL, "/"), up: true,
			vocab: map[string]bool{}, learned: map[string]bool{}}
		n.met.peerUp.With(p.ID).Set(1)
	}
	switch o.ReplicateTo {
	case "none":
		n.follower = ""
	case "":
		n.follower = ring.Successor(n.id)
	default:
		if _, ok := n.peers[o.ReplicateTo]; !ok {
			return nil, fmt.Errorf("cluster: -replicate-to %q is not a peer", o.ReplicateTo)
		}
		n.follower = o.ReplicateTo
	}
	return n, nil
}

// ID returns this node's id.
func (n *Node) ID() string { return n.id }

// Follower returns the peer id this node replicates its journal to, if any.
func (n *Node) Follower() string {
	if n.store == nil {
		return ""
	}
	return n.follower
}

// Start launches the health prober and, when a durable store and a
// follower are configured, the journal shipper. Call it once, after crash
// recovery has replayed the local store (the shipper's first act is a full
// base sync of the live mirror, which must include recovered state).
func (n *Node) Start() {
	n.once.Do(func() {
		n.wg.Add(1)
		go n.probeLoop()
		if n.store != nil && n.follower != "" {
			n.store.SetReplicationSink(func(r store.RepRecord) {
				select {
				case n.recs <- r:
				default:
					// Shipper is behind and the buffer is full: drop and
					// flag, the shipper re-bases from ReplicationState.
					n.repLost.Store(true)
				}
			})
			n.wg.Add(1)
			go n.shipLoop()
		}
	})
}

// Close stops the prober and shipper. Safe to call more than once.
func (n *Node) Close() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	n.wg.Wait()
}

// --- placement ---------------------------------------------------------------------

// Owner returns the node id owning a rule id on the consistent-hash ring.
func (n *Node) Owner(ruleID string) string { return n.ring.Owner(ruleID) }

// AssignID mints a cluster-unique rule id for a registration that arrived
// without one. The id must exist before hashing decides the owner, so the
// engine's local rule-N counter cannot be used: ids are derived from this
// node's id, a local counter and the document, giving stable sharding and
// no cross-node collisions.
func (n *Node) AssignID(doc *xmltree.Node) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%s", n.id, n.idSeq.Add(1), doc.String())))
	return "r-" + hex.EncodeToString(sum[:6])
}

// --- rule registration forwarding --------------------------------------------------

// ErrPeerDown reports a forward target that probes have declared dead.
var ErrPeerDown = errors.New("cluster: peer down")

// ForwardRule posts the rule document to its owner's /engine/rules and
// relays the owner's status code and response body. tenant is the rule
// space the registration targets (wire form; "" = default), carried on
// the hop's X-ECA-Tenant header so the owner registers into the same
// space. On success the rule's event vocabulary is learned into the
// routing table immediately, without waiting for the next probe of the
// owner. The caller must have stamped rule.Doc with the rule's id.
// Returns ErrPeerDown (wrapped) when the owner is currently declared
// dead — the caller then falls back to registering locally so the
// cluster stays writable during failover.
func (n *Node) ForwardRule(tenant string, rule *ruleml.Rule, owner string) (int, string, error) {
	n.mu.Lock()
	ps, ok := n.peers[owner]
	up := ok && ps.up
	n.mu.Unlock()
	if !ok {
		return 0, "", fmt.Errorf("cluster: unknown owner %q", owner)
	}
	if !up {
		return 0, "", fmt.Errorf("%w: %s", ErrPeerDown, owner)
	}
	tr := n.hub.Traces().Begin("cluster:" + rule.ID)
	start := time.Now()
	status, body, err := n.post(ps.url+"/engine/rules", rule.Doc.String(), tr.ID(), tenant)
	tr.AddSpan(obs.Span{Stage: "forward", Component: owner, Language: "register",
		Mode: "cluster", TuplesOut: 1, Start: start, Duration: time.Since(start), Err: errString(err)})
	if err != nil {
		tr.Finish("died")
		return 0, "", fmt.Errorf("cluster: forwarding rule %s to %s: %w", rule.ID, owner, err)
	}
	tr.Finish("completed")
	if status >= 200 && status < 300 {
		n.mu.Lock()
		for _, term := range EventVocabulary(rule) {
			ps.learned[term] = true
		}
		if len(EventVocabulary(rule)) == 0 {
			ps.wildcard = true // opaque event pattern: owner must see everything
		}
		n.mu.Unlock()
		n.log.Info("cluster: rule forwarded to owner", "rule", rule.ID, "owner", owner)
	}
	return status, body, nil
}

// --- event routing -----------------------------------------------------------------

// RouteResult summarizes one RouteEvent decision.
type RouteResult struct {
	// Local reports whether the event must also be published on this node.
	Local bool
	// Forwarded lists peers that accepted the event.
	Forwarded []string
	// Shed lists peers that answered 429 (overloaded) even after the
	// Retry-After grace — the event was load-shed, not lost to a failure.
	Shed []string
	// Failed lists peers that hard-failed (connection error or 5xx).
	Failed []string
}

// RouteEvent decides which replicas must see the event — every peer whose
// advertised (or registration-learned) vocabulary matches the event's root
// element, every peer whose vocabulary is not yet known, and this node if
// its own rules match (or nobody else does) — and forwards it to each
// remote target, one hop, with the origin header set so targets never
// re-forward. tenant is the event's rule space (wire form; "" = default),
// carried on each hop's X-ECA-Tenant header so remote matching stays
// inside the same space. Forwarded hops carry an X-ECA-Trace-Id and are
// recorded as cluster-mode trace spans.
func (n *Node) RouteEvent(tenant string, doc *xmltree.Node) RouteResult {
	term := EventTerm(doc)
	selfMatch := n.localMatches(term)
	n.mu.Lock()
	var targets []*peerState
	for _, ps := range n.peers {
		if !ps.up {
			continue
		}
		if !ps.vocabKnown || ps.wildcard || ps.vocab[term] || ps.learned[term] {
			targets = append(targets, ps)
		}
	}
	n.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	res := RouteResult{Local: selfMatch || len(targets) == 0}
	if len(targets) == 0 {
		return res
	}
	body := doc.String()
	tr := n.hub.Traces().Begin("cluster:" + term)
	for _, ps := range targets {
		start := time.Now()
		outcome, err := n.forwardEvent(ps, body, tr.ID(), tenant)
		tr.AddSpan(obs.Span{Stage: "forward", Component: ps.id, Language: term,
			Mode: "cluster", TuplesOut: 1, Start: start, Duration: time.Since(start), Err: errString(err)})
		switch outcome {
		case forwardOK:
			res.Forwarded = append(res.Forwarded, ps.id)
			n.met.forwarded.With(ps.id).Inc()
		case forwardShed:
			res.Shed = append(res.Shed, ps.id)
			n.met.forwardErrs.With(ps.id, "shed").Inc()
			n.log.Warn("cluster: peer shed forwarded event", "peer", ps.id, "term", term)
		case forwardQuota:
			// The peer's 429 named the tenant's quota, not its own load:
			// retrying on another peer would hit the same quota, so the
			// shed is final but metered under its own reason.
			res.Shed = append(res.Shed, ps.id)
			n.met.forwardErrs.With(ps.id, "quota").Inc()
			n.log.Warn("cluster: peer rejected forwarded event on tenant quota",
				"peer", ps.id, "term", term, "tenant", tenant)
		case forwardFailed:
			res.Failed = append(res.Failed, ps.id)
			n.met.forwardErrs.With(ps.id, "error").Inc()
			n.log.Warn("cluster: event forward failed", "peer", ps.id, "term", term, "error", errString(err))
		}
	}
	if len(res.Forwarded) > 0 {
		tr.Finish("completed")
	} else {
		tr.Finish("died")
	}
	return res
}

type forwardOutcome int

const (
	forwardOK forwardOutcome = iota
	forwardShed
	forwardQuota
	forwardFailed
)

// forwardEvent posts the event to one peer. A 429 is shed load, not a hard
// failure: the documented Retry-After is honored once (bounded to a
// second) before giving up for this event — a distinction the overload
// body shape of /events exists to make possible. The final 429's body is
// inspected to tell a global-overload shed from a per-tenant quota
// rejection, which is metered under its own reason.
func (n *Node) forwardEvent(ps *peerState, body, traceID, tenant string) (forwardOutcome, error) {
	status, respBody, err := n.postEvent(ps, body, traceID, tenant)
	if err != nil {
		return forwardFailed, err
	}
	if status == http.StatusTooManyRequests {
		time.Sleep(retryAfter(respBody.retryAfter))
		status, respBody, err = n.postEvent(ps, body, traceID, tenant)
		if err != nil {
			return forwardFailed, err
		}
		if status == http.StatusTooManyRequests {
			if shedReason(respBody.text) == "quota" {
				return forwardQuota, nil
			}
			return forwardShed, nil
		}
	}
	if status < 200 || status > 299 {
		return forwardFailed, fmt.Errorf("HTTP %d: %s", status, strings.TrimSpace(respBody.text))
	}
	return forwardOK, nil
}

// shedReason classifies a 429 body: "quota" when the peer named a tenant
// quota ({"error": "quota_exceeded", ...}), "shed" for the global
// overload shape (or anything unparsable — the conservative reading).
func shedReason(body string) string {
	var resp struct {
		Error string `json:"error"`
	}
	if json.Unmarshal([]byte(body), &resp) == nil && resp.Error == "quota_exceeded" {
		return "quota"
	}
	return "shed"
}

type eventResponse struct {
	text       string
	retryAfter string
}

func (n *Node) postEvent(ps *peerState, body, traceID, tenant string) (int, eventResponse, error) {
	req, err := http.NewRequest(http.MethodPost, ps.url+"/events", strings.NewReader(body))
	if err != nil {
		return 0, eventResponse{}, err
	}
	req.Header.Set("Content-Type", "application/xml")
	req.Header.Set(OriginHeader, n.id)
	if traceID != "" {
		req.Header.Set(protocol.TraceIDHeader, traceID)
	}
	if tenant != "" {
		req.Header.Set(protocol.TenantHeader, tenant)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, eventResponse{}, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, eventResponse{text: string(data), retryAfter: resp.Header.Get("Retry-After")}, nil
}

// retryAfter parses a Retry-After seconds value, bounded to [100ms, 1s] so
// a forwarding hop never stalls its caller for long.
func retryAfter(v string) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

func (n *Node) post(url, body, traceID, tenant string) (int, string, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/xml")
	req.Header.Set(OriginHeader, n.id)
	if traceID != "" {
		req.Header.Set(protocol.TraceIDHeader, traceID)
	}
	if tenant != "" {
		req.Header.Set(protocol.TenantHeader, tenant)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, string(data), nil
}

// localMatches reports whether any locally registered rule's event
// vocabulary matches the term (or is a wildcard).
func (n *Node) localMatches(term string) bool {
	if n.hooks.LocalRules == nil {
		return true
	}
	for _, r := range n.hooks.LocalRules() {
		vocab := EventVocabulary(r)
		if len(vocab) == 0 {
			return true
		}
		for _, t := range vocab {
			if t == term {
				return true
			}
		}
	}
	return false
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
