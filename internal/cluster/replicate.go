package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// --- health probing and takeover ---------------------------------------------------

// probeLoop GETs every peer's /cluster/status on a ticker. A successful
// probe refreshes the peer's advertised vocabulary (replacing what was
// learned at registration time); DownAfter consecutive failures of a peer
// that has been seen alive declare it down, and if this node holds a
// replica of the dead peer's journal, it takes the partition over.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		ids := make([]string, 0, len(n.peers))
		for id := range n.peers {
			ids = append(ids, id)
		}
		n.mu.Unlock()
		sort.Strings(ids)
		for _, id := range ids {
			n.probe(id)
		}
	}
}

func (n *Node) probe(id string) {
	n.mu.Lock()
	ps, ok := n.peers[id]
	if !ok {
		n.mu.Unlock()
		return
	}
	url := ps.url
	n.mu.Unlock()

	st, err := n.fetchStatus(url)
	n.mu.Lock()
	if err != nil {
		ps.fails++
		fails, wasUp, seen := ps.fails, ps.up, ps.everSeen
		if fails >= n.opts.DownAfter && ps.up {
			ps.up = false
			n.met.peerUp.With(id).Set(0)
		}
		nowDown := !ps.up
		n.mu.Unlock()
		if wasUp && nowDown {
			n.log.Warn("cluster: peer declared down", "peer", id, "fails", fails)
			if seen {
				n.maybeTakeover(id)
			}
		}
		return
	}
	ps.fails = 0
	ps.lastSeen = time.Now()
	ps.everSeen = true
	if !ps.up {
		n.log.Info("cluster: peer back up", "peer", id)
	}
	ps.up = true
	n.met.peerUp.With(id).Set(1)
	vocab := map[string]bool{}
	for _, term := range st.Vocab {
		vocab[term] = true
	}
	ps.vocab = vocab
	ps.wildcard = st.Wildcard
	ps.vocabKnown = true
	// The probe is authoritative: registration-time hints served their
	// purpose between probes.
	ps.learned = map[string]bool{}
	n.mu.Unlock()
}

func (n *Node) fetchStatus(url string) (*Status, error) {
	resp, err := n.client.Get(url + "/cluster/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// maybeTakeover recovers a dead peer's partition from its mirrored journal:
// every replicated rule is re-registered through the engine's regular
// validation path and every orphaned event re-published — the identical
// two-phase shape as crash recovery (System.Recover), fed from the replica
// instead of the local store. Runs once per peer death.
func (n *Node) maybeTakeover(id string) {
	n.mu.Lock()
	rep := n.replicas[id]
	done := n.takenOver[id]
	if rep == nil || done {
		n.mu.Unlock()
		return
	}
	n.takenOver[id] = true
	n.mu.Unlock()

	tr := n.hub.Traces().Begin("cluster:takeover:" + id)
	start := time.Now()
	stats, err := rep.RecoverTenants(n.hooks.RegisterRecovered, n.hooks.PublishRecovered)
	rules, events := rep.Counts()
	tr.AddSpan(obs.Span{Stage: "takeover", Component: id, Mode: "cluster",
		TuplesIn: rules + events, TuplesOut: stats.Rules + stats.Events,
		Start: start, Duration: time.Since(start), Err: errString(err)})
	tr.Finish("completed")

	n.mu.Lock()
	n.takeovers++
	n.mu.Unlock()
	n.met.takeovers.Inc()
	n.log.Info("cluster: partition taken over", "peer", id,
		"rules", stats.Rules, "events", stats.Events, "skipped", stats.Skipped)
}

// --- journal shipping (primary side) -----------------------------------------------

// shipLoop streams this node's journal to its follower. The stream always
// opens (and re-opens after any inconsistency: follower restart, buffer
// overflow, lost acknowledgement) with a base sync — the live mirror as of
// a sequence number, from Store.ReplicationState — followed by incremental
// frames in sequence order. The follower acknowledges its last applied
// sequence after every batch; shipping resumes from there.
func (n *Node) shipLoop() {
	defer n.wg.Done()
	var (
		pending  []store.RepRecord
		acked    uint64
		needBase = true
	)
	t := time.NewTicker(shipFlush)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case r := <-n.recs:
			pending = append(pending, r)
			if len(pending) < 256 {
				continue // keep batching until the flush tick
			}
		case <-t.C:
		}
		if n.repLost.Swap(false) {
			needBase = true
		}
		if needBase {
			frames, seq, err := n.store.ReplicationState()
			if err != nil {
				continue
			}
			got, err := n.postJournal(true, seq, flatten(frames))
			if err != nil || got != seq {
				continue // follower unreachable or refused; retry next tick
			}
			acked = seq
			needBase = false
			n.met.replicated.Add(int64(len(frames)))
		}
		// Drop what the follower already has.
		for len(pending) > 0 && pending[0].Seq <= acked {
			pending = pending[1:]
		}
		if len(pending) == 0 {
			continue
		}
		if pending[0].Seq != acked+1 {
			needBase = true // records were lost between base and buffer
			continue
		}
		frames := make([][]byte, len(pending))
		for i, r := range pending {
			frames[i] = r.Frame
		}
		got, err := n.postJournal(false, pending[0].Seq, flatten(frames))
		if err != nil {
			continue // keep pending, retry on the next tick
		}
		if got > acked {
			n.met.replicated.Add(int64(got - acked))
			acked = got
		}
		if got != pending[len(pending)-1].Seq {
			needBase = true // follower lost state mid-stream
		}
	}
}

func flatten(frames [][]byte) []byte {
	return bytes.Join(frames, nil)
}

// postJournal ships one batch to the follower's /cluster/journal and
// returns the follower's acknowledged sequence.
func (n *Node) postJournal(full bool, seq uint64, body []byte) (uint64, error) {
	n.mu.Lock()
	ps := n.peers[n.follower]
	n.mu.Unlock()
	if ps == nil {
		return 0, fmt.Errorf("cluster: no follower %q", n.follower)
	}
	url := ps.url + "/cluster/journal?from=" + n.id
	if full {
		url += fmt.Sprintf("&full=1&seq=%d", seq)
	} else {
		url += fmt.Sprintf("&first=%d", seq)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(OriginHeader, n.id)
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: follower answered HTTP %d", resp.StatusCode)
	}
	var ack struct {
		Acked uint64 `json:"acked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, err
	}
	return ack.Acked, nil
}

// --- HTTP handlers (both sides) ----------------------------------------------------

// JournalHandler is POST /cluster/journal: the replication ingest endpoint.
// The body is a batch of journal frames; query parameters say where it
// belongs: from=<primary id>, and either full=1&seq=N (a base sync as of
// sequence N) or first=N (incremental frames numbered consecutively from
// N). The response acknowledges the replica's last applied sequence —
// after a gap or a torn batch the primary reads it and resends or re-bases.
func (n *Node) JournalHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST journal frames", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	from := q.Get("from")
	if from == "" || from == n.id {
		http.Error(w, "journal batch needs a valid from=<peer id>", http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	rep := n.replicas[from]
	if rep == nil {
		rep = store.NewReplica()
		n.replicas[from] = rep
	}
	n.mu.Unlock()

	var (
		last uint64
		err  error
	)
	if q.Get("full") == "1" {
		seq, perr := parseSeq(q.Get("seq"))
		if perr != nil {
			http.Error(w, perr.Error(), http.StatusBadRequest)
			return
		}
		last, err = rep.ApplyBase(seq, r.Body)
	} else {
		first, perr := parseSeq(q.Get("first"))
		if perr != nil {
			http.Error(w, perr.Error(), http.StatusBadRequest)
			return
		}
		last, err = rep.Apply(first, r.Body)
	}
	if err != nil {
		// Gaps and torn batches are protocol business as usual: the
		// acknowledgement below tells the primary where to resume.
		n.log.Warn("cluster: replication batch incomplete", "from", from, "error", err.Error())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Acked uint64 `json:"acked"`
	}{last})
}

func parseSeq(s string) (uint64, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, fmt.Errorf("cluster: bad sequence %q", s)
	}
	return v, nil
}

// --- status ------------------------------------------------------------------------

// ReplicaStatus describes one mirrored peer journal held by this node.
type ReplicaStatus struct {
	Rules   int    `json:"rules"`
	Events  int    `json:"events"`
	LastSeq uint64 `json:"last_seq"`
}

// PeerStatus is this node's probed view of one peer.
type PeerStatus struct {
	ID        string         `json:"id"`
	URL       string         `json:"url"`
	Up        bool           `json:"up"`
	Fails     int            `json:"fails,omitempty"`
	LastSeen  time.Time      `json:"last_seen,omitempty"`
	Replica   *ReplicaStatus `json:"replica,omitempty"`
	TakenOver bool           `json:"taken_over,omitempty"`
}

// Status is the GET /cluster/status document (and the cluster section of
// /healthz): the node's identity, what it owns and advertises, where it
// replicates, and its view of every peer. Peers probe each other with it —
// Vocab/Wildcard drive event routing.
type Status struct {
	Node        string       `json:"node"`
	Rules       []string     `json:"rules"`
	Vocab       []string     `json:"vocab"`
	Wildcard    bool         `json:"wildcard"`
	ReplicateTo string       `json:"replicate_to,omitempty"`
	Takeovers   int          `json:"takeovers"`
	Peers       []PeerStatus `json:"peers"`
}

// Status snapshots this node's cluster view.
func (n *Node) Status() Status {
	st := Status{Node: n.id, ReplicateTo: n.Follower()}
	if n.hooks.LocalRules != nil {
		vocab := map[string]bool{}
		for _, r := range n.hooks.LocalRules() {
			st.Rules = append(st.Rules, r.ID)
			terms := EventVocabulary(r)
			if len(terms) == 0 {
				st.Wildcard = true
				continue
			}
			for _, t := range terms {
				vocab[t] = true
			}
		}
		sort.Strings(st.Rules)
		for t := range vocab {
			st.Vocab = append(st.Vocab, t)
		}
		sort.Strings(st.Vocab)
	}
	n.mu.Lock()
	st.Takeovers = n.takeovers
	for _, ps := range n.peers {
		p := PeerStatus{ID: ps.id, URL: ps.url, Up: ps.up, Fails: ps.fails, LastSeen: ps.lastSeen, TakenOver: n.takenOver[ps.id]}
		if rep := n.replicas[ps.id]; rep != nil {
			rules, events := rep.Counts()
			p.Replica = &ReplicaStatus{Rules: rules, Events: events, LastSeq: rep.LastSeq()}
		}
		st.Peers = append(st.Peers, p)
	}
	n.mu.Unlock()
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	return st
}

// StatusHandler is GET /cluster/status.
func (n *Node) StatusHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET the cluster status", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.Status())
}
