package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// newFederationNode builds a node whose hub carries one counter and
// whose peer list contains the given peer URLs (self is a placeholder
// URL — the handler never scrapes itself over HTTP).
func newFederationNode(t *testing.T, peerURLs map[string]string) (*Node, *obs.Hub) {
	t.Helper()
	hub := obs.NewHub()
	hub.Metrics().Counter("events_admitted_total", "Events accepted.").Add(11)
	peers := []Peer{{ID: "n1", URL: "http://self.invalid"}}
	for id, url := range peerURLs {
		peers = append(peers, Peer{ID: id, URL: url})
	}
	n, err := New(Options{NodeID: "n1", Peers: peers, Obs: hub}, Hooks{}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n, hub
}

func TestClusterMetricsFederation(t *testing.T) {
	peerReg := obs.NewRegistry()
	peerReg.Counter("events_admitted_total", "Events accepted.").Add(5)
	peerReg.Histogram("event_e2e_seconds", "E2E latency.", nil).Observe(0.02)
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		peerReg.WritePrometheus(w)
	}))
	defer peerSrv.Close()

	n, _ := newFederationNode(t, map[string]string{"n2": peerSrv.URL})
	rec := httptest.NewRecorder()
	n.MetricsHandler(rec, httptest.NewRequest("GET", "/cluster/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if err := obs.LintExposition(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatalf("federated exposition not lint-clean: %v\n%s", err, rec.Body)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nodes := exp.LabelValues("node")
	if len(nodes) != 2 || nodes[0] != "n1" || nodes[1] != "n2" {
		t.Fatalf("nodes = %v, want [n1 n2]", nodes)
	}
	if v, ok := exp.Value("events_admitted_total", map[string]string{"node": "n1"}); !ok || v != 11 {
		t.Errorf("self counter = %v,%v want 11", v, ok)
	}
	if v, ok := exp.Value("events_admitted_total", map[string]string{"node": "n2"}); !ok || v != 5 {
		t.Errorf("peer counter = %v,%v want 5", v, ok)
	}
	if got := exp.Sum("events_admitted_total", nil); got != 16 {
		t.Errorf("fleet total = %v want 16", got)
	}
	// Peer histograms federate with their bucket layout intact.
	d := exp.HistogramDist("event_e2e_seconds", map[string]string{"node": "n2"})
	if d.Count != 1 || d.Sum != 0.02 {
		t.Errorf("peer histogram dist = count %d sum %v", d.Count, d.Sum)
	}
}

func TestClusterMetricsFederationSkipsFailingPeer(t *testing.T) {
	// n2 refuses connections (closed server); the view must still serve
	// n1's samples and count the scrape failure.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	n, hub := newFederationNode(t, map[string]string{"n2": deadURL})
	rec := httptest.NewRecorder()
	n.MetricsHandler(rec, httptest.NewRequest("GET", "/cluster/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if err := obs.LintExposition(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatalf("exposition not lint-clean: %v", err)
	}
	if !strings.Contains(rec.Body.String(), `node="n1"`) {
		t.Fatalf("self samples missing:\n%s", rec.Body)
	}
	if strings.Contains(rec.Body.String(), `node="n2"`) {
		t.Fatalf("dead peer samples present:\n%s", rec.Body)
	}
	if got := hub.Metrics().CounterVec("cluster_federation_errors_total", "", "peer").With("n2").Value(); got != 1 {
		t.Errorf("federation error counter = %d want 1", got)
	}

	rec = httptest.NewRecorder()
	n.MetricsHandler(rec, httptest.NewRequest("POST", "/cluster/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d want 405", rec.Code)
	}
}
