package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
)

// peerMetricsLimit bounds how much of a peer's /metrics body the
// federation handler will read — a peer cannot balloon the merged
// response past its share.
const peerMetricsLimit = 4 << 20

// MetricsHandler serves GET /cluster/metrics: the fleet-wide metrics
// view. This node's own registry and the /metrics exposition of every
// peer currently probed up are parsed, stamped with a node label and
// merged into a single lint-clean exposition — naive concatenation
// would repeat TYPE comments per family, which the format forbids.
// Peers that fail to scrape are skipped (and counted in
// cluster_federation_errors_total) rather than failing the whole view;
// a down node's samples simply disappear from the federation, which is
// itself the signal dashboards key off. One scrape fans out one GET per
// live peer, so federation cost scales with cluster size, not rule
// count.
func (n *Node) MetricsHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET the federated cluster metrics", http.StatusMethodNotAllowed)
		return
	}
	parts := make([]*obs.Exposition, 0, 1+len(n.peers))
	var buf bytes.Buffer
	n.hub.Metrics().WritePrometheus(&buf)
	self, err := obs.ParseExposition(&buf)
	if err != nil {
		// Our own registry failing to parse is a bug, not an operational
		// condition; surface it instead of serving a partial fleet view.
		http.Error(w, "local exposition: "+err.Error(), http.StatusInternalServerError)
		return
	}
	self.AddLabel("node", n.id)
	parts = append(parts, self)
	for _, ps := range n.peersSnapshot() {
		if !ps.up {
			continue
		}
		exp, err := n.scrapePeer(ps.url)
		if err != nil {
			n.met.federationErrs.With(ps.id).Inc()
			n.log.Warn("cluster: peer metrics scrape failed", "peer", ps.id, "error", err.Error())
			continue
		}
		exp.AddLabel("node", ps.id)
		parts = append(parts, exp)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.MergeExpositions(parts...).WritePrometheus(w)
}

// scrapePeer fetches and parses one peer's /metrics.
func (n *Node) scrapePeer(baseURL string) (*obs.Exposition, error) {
	resp, err := n.client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return obs.ParseExposition(io.LimitReader(resp.Body, peerMetricsLimit))
}

// peersSnapshot copies the peer table under the lock so federation can
// iterate it without holding up probing.
func (n *Node) peersSnapshot() []peerState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]peerState, 0, len(n.peers))
	for _, ps := range n.peers {
		out = append(out, peerState{id: ps.id, url: ps.url, up: ps.up})
	}
	return out
}
