package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/store"
	"repro/internal/xmltree"
)

const (
	ecaNS   = "http://www.semwebtech.org/languages/2006/eca-ml"
	snoopNS = "http://www.semwebtech.org/languages/2006/snoop"
	testNS  = "http://t/"
)

func pingRule(id string) *ruleml.Rule {
	return ruleml.MustParse(`<eca:rule xmlns:eca="` + ecaNS + `" xmlns:t="` + testNS + `" id="` + id + `">` +
		`<eca:event><t:ping x="$X"/></eca:event>` +
		`<eca:action><t:pong x="$X"/></eca:action></eca:rule>`)
}

func snoopRule(id string) *ruleml.Rule {
	return ruleml.MustParse(`<eca:rule xmlns:eca="` + ecaNS + `" xmlns:snoop="` + snoopNS + `" xmlns:t="` + testNS + `" id="` + id + `">` +
		`<eca:event><snoop:or><t:alarm/><t:warning/></snoop:or></eca:event>` +
		`<eca:action><t:pong/></eca:action></eca:rule>`)
}

func opaqueEventRule(id string) *ruleml.Rule {
	return ruleml.MustParse(`<eca:rule xmlns:eca="` + ecaNS + `" xmlns:t="` + testNS + `" id="` + id + `">` +
		`<eca:event><eca:opaque language="x">anything goes</eca:opaque></eca:event>` +
		`<eca:action><t:pong/></eca:action></eca:rule>`)
}

func TestEventVocabulary(t *testing.T) {
	got := EventVocabulary(pingRule("r"))
	if len(got) != 1 || got[0] != "{"+testNS+"}ping" {
		t.Errorf("plain pattern vocabulary = %v", got)
	}
	// Snoop operators are structure, not vocabulary: only the domain
	// elements underneath count.
	got = EventVocabulary(snoopRule("r"))
	want := []string{"{" + testNS + "}alarm", "{" + testNS + "}warning"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("snoop pattern vocabulary = %v, want %v", got, want)
	}
	// Opaque event components cannot be introspected: nil means wildcard.
	if got = EventVocabulary(opaqueEventRule("r")); got != nil {
		t.Errorf("opaque pattern vocabulary = %v, want nil", got)
	}
	if got = EventVocabulary(nil); got != nil {
		t.Errorf("nil rule vocabulary = %v, want nil", got)
	}
}

func TestEventTerm(t *testing.T) {
	doc := xmltree.MustParse(`<t:ping xmlns:t="` + testNS + `" x="1"/>`)
	if got := EventTerm(doc); got != "{"+testNS+"}ping" {
		t.Errorf("EventTerm = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	peers := []Peer{{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}}
	if _, err := New(Options{NodeID: "ghost", Peers: peers}, Hooks{}, nil); err == nil {
		t.Error("node id missing from peer list accepted")
	}
	if _, err := New(Options{NodeID: "a", Peers: append(peers, Peer{ID: "a", URL: "http://a2"})}, Hooks{}, nil); err == nil {
		t.Error("duplicate peer id accepted")
	}
	if _, err := New(Options{NodeID: "a", Peers: peers, ReplicateTo: "ghost"}, Hooks{}, nil); err == nil {
		t.Error("unknown replication target accepted")
	}
	n, err := New(Options{NodeID: "a", Peers: peers}, Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Successor of a in {a, b} is b — but without a store there is nothing
	// to replicate.
	if got := n.Follower(); got != "" {
		t.Errorf("store-less node follower = %q, want \"\"", got)
	}
}

func TestAssignIDUniqueAndStablePrefix(t *testing.T) {
	n, err := New(Options{NodeID: "a", Peers: []Peer{{ID: "a", URL: "http://a"}}}, Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParse(`<e/>`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := n.AssignID(doc)
		if !strings.HasPrefix(id, "r-") {
			t.Fatalf("assigned id %q lacks r- prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate assigned id %q", id)
		}
		seen[id] = true
	}
}

func TestRetryAfterBounds(t *testing.T) {
	cases := map[string]time.Duration{
		"":    100 * time.Millisecond,
		"0":   100 * time.Millisecond,
		"bad": 100 * time.Millisecond,
		"1":   time.Second,
		"30":  time.Second, // bounded: a forwarding hop never stalls long
	}
	for in, want := range cases {
		if got := retryAfter(in); got != want {
			t.Errorf("retryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

// recordingPeer is an httptest peer that records forwarded requests.
type recordingPeer struct {
	mu     sync.Mutex
	reqs   []*http.Request
	bodies []string
	status int
	header http.Header
	srv    *httptest.Server
}

func newRecordingPeer(status int) *recordingPeer {
	p := &recordingPeer{status: status, header: http.Header{}}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		p.mu.Lock()
		p.reqs = append(p.reqs, r)
		p.bodies = append(p.bodies, buf.String())
		p.mu.Unlock()
		for k, vs := range p.header {
			for _, v := range vs {
				w.Header().Set(k, v)
			}
		}
		w.WriteHeader(p.status)
	}))
	return p
}

func (p *recordingPeer) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.reqs)
}

func (p *recordingPeer) last() (*http.Request, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.reqs) == 0 {
		return nil, ""
	}
	return p.reqs[len(p.reqs)-1], p.bodies[len(p.bodies)-1]
}

// threeNode builds node "a" with remote peers b and c backed by the given
// servers. Probing is not started: tests poke peer state directly.
func threeNode(t *testing.T, b, c *recordingPeer, hooks Hooks) *Node {
	t.Helper()
	n, err := New(Options{
		NodeID: "a",
		Peers: []Peer{
			{ID: "a", URL: "http://127.0.0.1:1"},
			{ID: "b", URL: b.srv.URL},
			{ID: "c", URL: c.srv.URL},
		},
		ReplicateTo: "none",
		Obs:         obs.NewHub(),
	}, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRouteEventByVocabulary(t *testing.T) {
	b := newRecordingPeer(http.StatusAccepted)
	defer b.srv.Close()
	c := newRecordingPeer(http.StatusAccepted)
	defer c.srv.Close()
	n := threeNode(t, b, c, Hooks{LocalRules: func() []*ruleml.Rule { return nil }})

	n.mu.Lock()
	n.peers["b"].vocabKnown = true
	n.peers["b"].vocab = map[string]bool{"{" + testNS + "}ping": true}
	n.peers["c"].vocabKnown = true // knows its vocabulary: empty
	n.mu.Unlock()

	res := n.RouteEvent("", xmltree.MustParse(`<t:ping xmlns:t="` + testNS + `" x="1"/>`))
	if len(res.Forwarded) != 1 || res.Forwarded[0] != "b" {
		t.Fatalf("Forwarded = %v, want [b]", res.Forwarded)
	}
	if res.Local {
		t.Error("event routed locally although only b matches")
	}
	if c.count() != 0 {
		t.Errorf("peer c received %d requests, want 0", c.count())
	}
	req, body := b.last()
	if req.Header.Get(OriginHeader) != "a" {
		t.Errorf("forwarded request origin = %q, want a", req.Header.Get(OriginHeader))
	}
	if req.Header.Get(protocol.TraceIDHeader) == "" {
		t.Error("forwarded request carries no trace id")
	}
	if !strings.Contains(body, "ping") {
		t.Errorf("forwarded body = %q", body)
	}

	// No peer matches: the event stays local so it is never dropped.
	res = n.RouteEvent("", xmltree.MustParse(`<t:nobody xmlns:t="` + testNS + `"/>`))
	if !res.Local || len(res.Forwarded) != 0 {
		t.Errorf("unmatched event route = %+v, want local only", res)
	}
}

func TestRouteEventConservativeBeforeFirstProbe(t *testing.T) {
	b := newRecordingPeer(http.StatusAccepted)
	defer b.srv.Close()
	c := newRecordingPeer(http.StatusAccepted)
	defer c.srv.Close()
	n := threeNode(t, b, c, Hooks{})

	// Vocabulary unknown everywhere: forward to every up peer rather than
	// risk losing the event.
	res := n.RouteEvent("", xmltree.MustParse(`<t:ping xmlns:t="` + testNS + `"/>`))
	if len(res.Forwarded) != 2 {
		t.Errorf("Forwarded = %v, want both peers", res.Forwarded)
	}
	// No LocalRules hook means local matching cannot be ruled out.
	if !res.Local {
		t.Error("hook-less node must keep events local too")
	}
}

func TestRouteEventShedAfterRetry(t *testing.T) {
	b := newRecordingPeer(http.StatusTooManyRequests)
	defer b.srv.Close()
	b.header.Set("Retry-After", "0") // keep the test fast: bounded to 100ms
	c := newRecordingPeer(http.StatusAccepted)
	defer c.srv.Close()
	n := threeNode(t, b, c, Hooks{LocalRules: func() []*ruleml.Rule { return nil }})
	n.mu.Lock()
	n.peers["b"].vocabKnown, n.peers["b"].vocab = true, map[string]bool{"{" + testNS + "}ping": true}
	n.peers["c"].vocabKnown = true
	n.mu.Unlock()

	res := n.RouteEvent("", xmltree.MustParse(`<t:ping xmlns:t="` + testNS + `"/>`))
	if len(res.Shed) != 1 || res.Shed[0] != "b" {
		t.Fatalf("Shed = %v, want [b]", res.Shed)
	}
	if len(res.Failed) != 0 {
		t.Errorf("429 counted as hard failure: %v", res.Failed)
	}
	if b.count() != 2 {
		t.Errorf("peer b received %d requests, want 2 (initial + one retry)", b.count())
	}
}

func TestForwardRulePeerDown(t *testing.T) {
	b := newRecordingPeer(http.StatusOK)
	defer b.srv.Close()
	c := newRecordingPeer(http.StatusOK)
	defer c.srv.Close()
	n := threeNode(t, b, c, Hooks{})
	n.mu.Lock()
	n.peers["b"].up = false
	n.mu.Unlock()

	if _, _, err := n.ForwardRule("", pingRule("r1"), "b"); !errors.Is(err, ErrPeerDown) {
		t.Errorf("forward to down peer: err = %v, want ErrPeerDown", err)
	}
	if _, _, err := n.ForwardRule("", pingRule("r1"), "ghost"); err == nil {
		t.Error("forward to unknown owner accepted")
	}
}

func TestForwardRuleLearnsVocabulary(t *testing.T) {
	b := newRecordingPeer(http.StatusCreated)
	defer b.srv.Close()
	c := newRecordingPeer(http.StatusAccepted)
	defer c.srv.Close()
	n := threeNode(t, b, c, Hooks{LocalRules: func() []*ruleml.Rule { return nil }})
	n.mu.Lock()
	n.peers["b"].vocabKnown = true // empty vocabulary as of the last probe
	n.peers["c"].vocabKnown = true
	n.mu.Unlock()

	status, _, err := n.ForwardRule("", pingRule("r1"), "b")
	if err != nil || status != http.StatusCreated {
		t.Fatalf("ForwardRule = %d, %v", status, err)
	}
	req, body := b.last()
	if got := req.Header.Get(OriginHeader); got != "a" {
		t.Errorf("forwarded registration origin = %q", got)
	}
	if !strings.Contains(body, `id="r1"`) {
		t.Errorf("forwarded rule body = %q", body)
	}

	// The owner's new vocabulary is routable immediately, before the next
	// probe refreshes it.
	res := n.RouteEvent("", xmltree.MustParse(`<t:ping xmlns:t="` + testNS + `"/>`))
	if len(res.Forwarded) != 1 || res.Forwarded[0] != "b" {
		t.Errorf("Forwarded = %v, want [b] via learned vocabulary", res.Forwarded)
	}
}

// journalPost drives the JournalHandler like the primary's shipper does.
func journalPost(t *testing.T, n *Node, query string, body []byte) (int, uint64) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/cluster/journal?"+query, bytes.NewReader(body))
	w := httptest.NewRecorder()
	n.JournalHandler(w, req)
	if w.Code != http.StatusOK {
		return w.Code, 0
	}
	var ack struct {
		Acked uint64 `json:"acked"`
	}
	if err := jsonDecode(w.Body, &ack); err != nil {
		t.Fatalf("bad ack body: %v", err)
	}
	return w.Code, ack.Acked
}

func TestJournalHandlerProtocol(t *testing.T) {
	// Frames come from a real primary store so the wire format is exactly
	// the journal's.
	s, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var stream []store.RepRecord
	s.SetReplicationSink(func(r store.RepRecord) { stream = append(stream, r) })
	s.RuleRegistered("r1", pingRule("r1").Doc, time.Now())
	s.RuleRegistered("r2", snoopRule("r2").Doc, time.Now())
	baseFrames, baseSeq, err := s.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	s.RuleRegistered("r3", pingRule("r3").Doc, time.Now())

	n, err := New(Options{NodeID: "b", Peers: []Peer{
		{ID: "a", URL: "http://127.0.0.1:1"}, {ID: "b", URL: "http://127.0.0.1:2"},
	}, ReplicateTo: "none"}, Hooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Bad requests first: no from, from=self, wrong method.
	if code, _ := journalPost(t, n, "first=1", nil); code != http.StatusBadRequest {
		t.Errorf("missing from: HTTP %d", code)
	}
	if code, _ := journalPost(t, n, "from=b&first=1", nil); code != http.StatusBadRequest {
		t.Errorf("from=self: HTTP %d", code)
	}
	w := httptest.NewRecorder()
	n.JournalHandler(w, httptest.NewRequest(http.MethodGet, "/cluster/journal", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET journal: HTTP %d", w.Code)
	}

	// Base sync as of baseSeq, then the incremental r3 frame.
	code, acked := journalPost(t, n, urlSeq("full=1&seq", baseSeq)+"&from=a", flatten(baseFrames))
	if code != http.StatusOK || acked != baseSeq {
		t.Fatalf("base sync: HTTP %d acked %d, want %d", code, acked, baseSeq)
	}
	inc := stream[len(stream)-1]
	code, acked = journalPost(t, n, urlSeq("first", inc.Seq)+"&from=a", inc.Frame)
	if code != http.StatusOK || acked != inc.Seq {
		t.Fatalf("incremental: HTTP %d acked %d, want %d", code, acked, inc.Seq)
	}

	// A gap is business as usual: HTTP 200, acknowledgement unchanged, so
	// the primary knows where to resume.
	code, acked = journalPost(t, n, urlSeq("first", inc.Seq+7)+"&from=a", inc.Frame)
	if code != http.StatusOK || acked != inc.Seq {
		t.Errorf("gap: HTTP %d acked %d, want %d", code, acked, inc.Seq)
	}

	st := n.Status()
	var ps *PeerStatus
	for i := range st.Peers {
		if st.Peers[i].ID == "a" {
			ps = &st.Peers[i]
		}
	}
	if ps == nil || ps.Replica == nil {
		t.Fatalf("status has no replica entry for a: %+v", st.Peers)
	}
	if ps.Replica.Rules != 3 || ps.Replica.LastSeq != inc.Seq {
		t.Errorf("replica status = %+v, want 3 rules at seq %d", ps.Replica, inc.Seq)
	}
}

// TestShipAndTakeover wires a real primary store to a follower node over
// HTTP: the shipper base-syncs and streams increments, and when the
// primary is declared dead the follower replays the mirror through the
// takeover hooks.
func TestShipAndTakeover(t *testing.T) {
	var (
		followerMu sync.Mutex
		follower   *Node
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		followerMu.Lock()
		f := follower
		followerMu.Unlock()
		switch r.URL.Path {
		case "/cluster/journal":
			f.JournalHandler(w, r)
		case "/cluster/status":
			f.StatusHandler(w, r)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	peers := []Peer{{ID: "a", URL: "http://127.0.0.1:1"}, {ID: "b", URL: srv.URL}}
	var (
		recovered struct {
			sync.Mutex
			rules  []string
			events []string
		}
	)
	f, err := New(Options{NodeID: "b", Peers: peers, ReplicateTo: "none"}, Hooks{
		RegisterRecovered: func(tenant, id string, doc *xmltree.Node, at time.Time) error {
			recovered.Lock()
			defer recovered.Unlock()
			recovered.rules = append(recovered.rules, id)
			return nil
		},
		PublishRecovered: func(tenant string, doc *xmltree.Node) error {
			recovered.Lock()
			defer recovered.Unlock()
			recovered.events = append(recovered.events, doc.Root().Name.Local)
			return nil
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	followerMu.Lock()
	follower = f
	followerMu.Unlock()

	st, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	primary, err := New(Options{NodeID: "a", Peers: peers, ProbeInterval: time.Hour}, Hooks{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := primary.Follower(); got != "b" {
		t.Fatalf("primary follower = %q, want b (sorted successor)", got)
	}

	st.RuleRegistered("r1", pingRule("r1").Doc, time.Now())
	primary.Start()
	defer primary.Close()
	st.RuleRegistered("r2", snoopRule("r2").Doc, time.Now())
	if _, err := st.AppendEvent(xmltree.MustParse(`<orphan/>`)); err != nil {
		t.Fatal(err)
	}

	// The shipper flushes on its own clock; wait for the mirror to catch up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.mu.Lock()
		rep := f.replicas["a"]
		f.mu.Unlock()
		if rep != nil {
			if rules, events := rep.Counts(); rules == 2 && events == 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("follower mirror never caught up to 2 rules + 1 event")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Primary dies: the prober would call maybeTakeover; drive it directly.
	f.maybeTakeover("a")
	recovered.Lock()
	rules, events := append([]string{}, recovered.rules...), append([]string{}, recovered.events...)
	recovered.Unlock()
	if len(rules) != 2 || rules[0] != "r1" || rules[1] != "r2" {
		t.Errorf("recovered rules = %v, want [r1 r2] in registration order", rules)
	}
	if len(events) != 1 || events[0] != "orphan" {
		t.Errorf("recovered events = %v, want [orphan]", events)
	}
	if got := f.Status().Takeovers; got != 1 {
		t.Errorf("takeovers = %d, want 1", got)
	}

	// A second death report must not replay the partition again.
	f.maybeTakeover("a")
	recovered.Lock()
	again := len(recovered.rules)
	recovered.Unlock()
	if again != 2 {
		t.Errorf("takeover ran twice: %d rule registrations", again)
	}
}

// --- small helpers ------------------------------------------------------------------

func jsonDecode(r *bytes.Buffer, v any) error {
	return json.NewDecoder(r).Decode(v)
}

func urlSeq(key string, v uint64) string {
	return key + "=" + strconv.FormatUint(v, 10)
}
