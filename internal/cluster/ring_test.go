package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"})
	b := NewRing([]string{"n3", "n1", "n2", "n1"}) // order and duplicates must not matter
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("rule-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs between equivalent rings: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Owner(fmt.Sprintf("r-%d", i))]++
	}
	for _, n := range r.Nodes() {
		if counts[n] == 0 {
			t.Errorf("node %s owns no keys: %v", n, counts)
		}
		// With 64 virtual points per node the split should be roughly even;
		// accept anything within a factor of ~2.5 of the fair share.
		if counts[n] < 400 || counts[n] > 2500 {
			t.Errorf("node %s owns %d of 3000 keys, suspiciously unbalanced: %v", n, counts[n], counts)
		}
	}
}

func TestRingOwnerEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil).Owner("x"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	one := NewRing([]string{"solo"})
	for _, k := range []string{"a", "b", "c"} {
		if one.Owner(k) != "solo" {
			t.Errorf("single-node ring owner of %q = %q", k, one.Owner(k))
		}
	}
}

func TestRingSuccessorChain(t *testing.T) {
	r := NewRing([]string{"b", "c", "a"})
	want := map[string]string{"a": "b", "b": "c", "c": "a"}
	for n, s := range want {
		if got := r.Successor(n); got != s {
			t.Errorf("Successor(%s) = %q, want %q", n, got, s)
		}
	}
	if got := r.Successor("ghost"); got != "" {
		t.Errorf("Successor of unknown node = %q, want \"\"", got)
	}
	if got := NewRing([]string{"solo"}).Successor("solo"); got != "" {
		t.Errorf("single-node successor = %q, want \"\"", got)
	}
}
