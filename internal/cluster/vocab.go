package cluster

import (
	"sort"

	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/snoop"
	"repro/internal/xmltree"
)

// Event routing matches an incoming event's root element against the event
// vocabulary of the cluster's rules: the set of domain-level element names
// appearing in each rule's event component pattern. A node advertises its
// local vocabulary on /cluster/status, so peers learn where each term
// lives and forward events only to the replicas that can match them.

// EventVocabulary returns the domain element names ({space}local, Clark
// notation) appearing in the rule's event component pattern. Elements in
// the framework namespaces (eca:, snoop:) are operators and wrappers, not
// vocabulary. An opaque event component — raw text the router cannot
// introspect — returns nil, a wildcard: the rule's owner must see every
// event.
func EventVocabulary(rule *ruleml.Rule) []string {
	if rule == nil || rule.Event.Expression == nil {
		return nil
	}
	seen := map[string]bool{}
	rule.Event.Expression.Descendants(func(n *xmltree.Node) bool {
		switch n.Name.Space {
		case protocol.ECANS, snoop.NS:
			return true // structural, keep descending
		}
		seen[n.Name.String()] = true
		return true
	})
	terms := make([]string, 0, len(seen))
	for t := range seen {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// EventTerm returns the vocabulary term of an event payload: its root
// element's name in Clark notation.
func EventTerm(doc *xmltree.Node) string {
	root := doc.Root()
	if root == nil {
		return ""
	}
	return root.Name.String()
}
