package cluster

import (
	"hash/fnv"
	"sort"
)

// ringPoints is the number of virtual points each node contributes to the
// consistent-hash ring. More points smooth the partition sizes; 64 keeps
// the worst-case imbalance for small clusters under a few percent while the
// ring stays tiny.
const ringPoints = 64

// Ring is a consistent-hash ring over the cluster's node ids. Rule ids
// hash onto the ring and are owned by the first node point at or after
// their hash, so adding or removing one node moves only ~1/N of the key
// space — registered rules never migrate implicitly, but new registrations
// land on the new topology.
type Ring struct {
	points []ringPoint
	nodes  []string // sorted, distinct
}

type ringPoint struct {
	hash uint32
	node string
}

// NewRing builds a ring over the given node ids (duplicates are ignored).
func NewRing(nodes []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < ringPoints; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n, byte(i)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func ringHash(s string, salt byte) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	h.Write([]byte{0, salt})
	return h.Sum32()
}

// Owner returns the node owning key — the first ring point clockwise from
// the key's hash. An empty ring owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key, 0xff)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Successor returns the next node after the given one in sorted id order,
// wrapping around — the default choice of replication follower, so that a
// ring of nodes a→b→c→a pairs every primary with exactly one follower.
// A cluster of one (or an unknown node) has no successor.
func (r *Ring) Successor(node string) string {
	if len(r.nodes) < 2 {
		return ""
	}
	i := sort.SearchStrings(r.nodes, node)
	if i == len(r.nodes) || r.nodes[i] != node {
		return ""
	}
	return r.nodes[(i+1)%len(r.nodes)]
}

// Nodes returns the distinct node ids on the ring, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}
