package rdf

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode"
)

// ParseTurtle reads a Turtle-subset document into a slice of triples.
// Supported syntax: @prefix and @base directives, IRIs in angle brackets,
// prefixed names, the "a" keyword, plain/language-tagged/datatyped string
// literals, integer/decimal/boolean shorthand literals, blank node labels
// (_:x) and anonymous blank nodes ([]), and the ";" / "," abbreviations.
func ParseTurtle(r io.Reader) ([]Triple, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rdf: read turtle: %w", err)
	}
	p := &turtleParser{src: string(src), prefixes: map[string]string{}}
	return p.parse()
}

// ParseTurtleString is ParseTurtle over a string.
func ParseTurtleString(s string) ([]Triple, error) {
	return ParseTurtle(strings.NewReader(s))
}

// MustParseTurtle parses static Turtle data, panicking on error.
func MustParseTurtle(s string) []Triple {
	ts, err := ParseTurtleString(s)
	if err != nil {
		panic(err)
	}
	return ts
}

type turtleParser struct {
	src      string
	pos      int
	line     int
	prefixes map[string]string
	base     string
	bnodeSeq int
	triples  []Triple
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("rdf: turtle line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parse() ([]Triple, error) {
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return p.triples, nil
		}
		if p.peekWord("@prefix") {
			if err := p.parsePrefix(); err != nil {
				return nil, err
			}
			continue
		}
		if p.peekWord("@base") {
			if err := p.parseBase(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.parseStatement(); err != nil {
			return nil, err
		}
	}
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '#' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c == '\n' {
			p.line++
			p.pos++
			continue
		}
		if unicode.IsSpace(rune(c)) {
			p.pos++
			continue
		}
		return
	}
}

func (p *turtleParser) peekWord(w string) bool {
	return strings.HasPrefix(p.src[p.pos:], w)
}

func (p *turtleParser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *turtleParser) parsePrefix() error {
	p.pos += len("@prefix")
	p.skipWS()
	end := strings.IndexByte(p.src[p.pos:], ':')
	if end < 0 {
		return p.errf("@prefix without ':'")
	}
	name := strings.TrimSpace(p.src[p.pos : p.pos+end])
	p.pos += end + 1
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	return p.expect('.')
}

func (p *turtleParser) parseBase() error {
	p.pos += len("@base")
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.base = iri
	return p.expect('.')
}

func (p *turtleParser) parseIRIRef() (string, error) {
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return "", p.errf("expected IRI")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, ":") {
		iri = p.base + iri
	}
	return iri, nil
}

// parseStatement parses: subject predicateObjectList '.'
func (p *turtleParser) parseStatement() error {
	subj, err := p.parseTerm(true)
	if err != nil {
		return err
	}
	if err := p.parsePredicateObjectList(subj); err != nil {
		return err
	}
	return p.expect('.')
}

func (p *turtleParser) parsePredicateObjectList(subj Term) error {
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseTerm(false)
			if err != nil {
				return err
			}
			p.triples = append(p.triples, Triple{subj, pred, obj})
			p.skipWS()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ';' {
			p.pos++
			p.skipWS()
			// A ';' may be trailing before '.' or ']'.
			if p.pos < len(p.src) && (p.src[p.pos] == '.' || p.src[p.pos] == ']') {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) parsePredicate() (Term, error) {
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == 'a' {
		if p.pos+1 >= len(p.src) || unicode.IsSpace(rune(p.src[p.pos+1])) {
			p.pos++
			return NewIRI(RDFType), nil
		}
	}
	t, err := p.parseTerm(false)
	if err != nil {
		return Term{}, err
	}
	if t.Kind != IRI {
		return Term{}, p.errf("predicate must be an IRI, got %s", t)
	}
	return t, nil
}

// parseTerm parses an IRI, prefixed name, blank node, literal or [].
// subjectPos restricts literals from appearing as subjects.
func (p *turtleParser) parseTerm(subjectPos bool) (Term, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("unexpected end of input")
	}
	c := p.src[p.pos]
	switch {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '"':
		if subjectPos {
			return Term{}, p.errf("literal cannot be a subject")
		}
		return p.parseLiteral()
	case strings.HasPrefix(p.src[p.pos:], "_:"):
		p.pos += 2
		label := p.parseName()
		if label == "" {
			return Term{}, p.errf("blank node without label")
		}
		return NewBlank(label), nil
	case c == '[':
		p.pos++
		p.skipWS()
		p.bnodeSeq++
		b := NewBlank(fmt.Sprintf("anon%d", p.bnodeSeq))
		if p.pos < len(p.src) && p.src[p.pos] == ']' {
			p.pos++
			return b, nil
		}
		if err := p.parsePredicateObjectList(b); err != nil {
			return Term{}, err
		}
		if err := p.expect(']'); err != nil {
			return Term{}, err
		}
		return b, nil
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		if subjectPos {
			return Term{}, p.errf("literal cannot be a subject")
		}
		return p.parseNumber()
	default:
		// true / false / prefixed name
		if p.peekWord("true") {
			p.pos += 4
			return NewTypedLiteral("true", XSDNS+"boolean"), nil
		}
		if p.peekWord("false") {
			p.pos += 5
			return NewTypedLiteral("false", XSDNS+"boolean"), nil
		}
		return p.parsePrefixedName()
	}
}

func (p *turtleParser) parseLiteral() (Term, error) {
	// p.src[p.pos] == '"'
	p.pos++
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\\' && p.pos+1 < len(p.src) {
			p.pos++
			switch p.src[p.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, p.errf("unknown escape \\%s", string(p.src[p.pos]))
			}
			p.pos++
			continue
		}
		if c == '"' {
			p.pos++
			// Optional @lang or ^^<datatype>.
			if p.pos < len(p.src) && p.src[p.pos] == '@' {
				p.pos++
				lang := p.parseName()
				return NewLangLiteral(b.String(), lang), nil
			}
			if strings.HasPrefix(p.src[p.pos:], "^^") {
				p.pos += 2
				dt, err := p.parseTerm(false)
				if err != nil {
					return Term{}, err
				}
				if dt.Kind != IRI {
					return Term{}, p.errf("datatype must be an IRI")
				}
				return NewTypedLiteral(b.String(), dt.Value), nil
			}
			return NewLiteral(b.String()), nil
		}
		if c == '\n' {
			return Term{}, p.errf("newline in literal")
		}
		b.WriteByte(c)
		p.pos++
	}
	return Term{}, p.errf("unterminated literal")
}

func (p *turtleParser) parseNumber() (Term, error) {
	start := p.pos
	if p.src[p.pos] == '+' || p.src[p.pos] == '-' {
		p.pos++
	}
	dots := 0
	for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
		if p.src[p.pos] == '.' {
			// A '.' followed by non-digit terminates the statement.
			if p.pos+1 >= len(p.src) || p.src[p.pos+1] < '0' || p.src[p.pos+1] > '9' {
				break
			}
			dots++
		}
		p.pos++
	}
	text := p.src[start:p.pos]
	if text == "" || text == "+" || text == "-" {
		return Term{}, p.errf("bad number")
	}
	if dots > 0 {
		return NewTypedLiteral(text, XSDNS+"decimal"), nil
	}
	return NewTypedLiteral(text, XSDNS+"integer"), nil
}

func (p *turtleParser) parsePrefixedName() (Term, error) {
	prefix := p.parseName()
	if p.pos >= len(p.src) || p.src[p.pos] != ':' {
		return Term{}, p.errf("expected a term, found %q", peekSnippet(p.src, p.pos))
	}
	p.pos++
	local := p.parseName()
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	return NewIRI(ns + local), nil
}

func (p *turtleParser) parseName() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' {
			p.pos++
			continue
		}
		// Allow '.' inside names but not at the end (it ends statements).
		if c == '.' && p.pos+1 < len(p.src) {
			n := rune(p.src[p.pos+1])
			if unicode.IsLetter(n) || unicode.IsDigit(n) || n == '_' {
				p.pos++
				continue
			}
		}
		break
	}
	return p.src[start:p.pos]
}

func peekSnippet(s string, pos int) string {
	end := pos + 12
	if end > len(s) {
		end = len(s)
	}
	return s[pos:end]
}

// WriteTurtle serializes triples as Turtle, one statement per line, using
// the given prefix map (prefix → namespace IRI) for compact names.
func WriteTurtle(w io.Writer, triples []Triple, prefixes map[string]string) error {
	type pfx struct{ name, ns string }
	var pl []pfx
	for n, ns := range prefixes {
		pl = append(pl, pfx{n, ns})
	}
	// Longest namespace first so the most specific prefix wins.
	sort.Slice(pl, func(i, j int) bool { return len(pl[i].ns) > len(pl[j].ns) })
	names := make([]string, 0, len(pl))
	for _, x := range pl {
		names = append(names, x.name)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "@prefix %s: <%s> .\n", n, prefixes[n]); err != nil {
			return err
		}
	}
	term := func(t Term) string {
		if t.Kind == IRI {
			for _, x := range pl {
				if rest, ok := strings.CutPrefix(t.Value, x.ns); ok && validLocal(rest) {
					return x.name + ":" + rest
				}
			}
		}
		return t.String()
	}
	for _, t := range triples {
		if _, err := fmt.Fprintf(w, "%s %s %s .\n", term(t.S), term(t.P), term(t.O)); err != nil {
			return err
		}
	}
	return nil
}

func validLocal(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
			return false
		}
	}
	return true
}
