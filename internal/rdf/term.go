// Package rdf implements the Semantic-Web substrate of the framework: an
// in-memory RDF triple store with pattern matching, a Turtle-subset parser
// and serializer, and basic-graph-pattern queries that produce tuples of
// variable bindings compatible with the ECA engine's join semantics.
//
// The rule and language ontology of the paper (Fig. 1 and Fig. 2) is
// represented as RDF resources in such a store (see internal/ontology).
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates RDF term variants.
type TermKind int

// The term kinds.
const (
	// IRI is an IRI reference term.
	IRI TermKind = iota
	// Literal is a literal term with optional language tag or datatype.
	Literal
	// Blank is a blank node with a local label.
	Blank
)

// Well-known vocabulary IRIs.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"

	// RDFType is rdf:type, written "a" in Turtle.
	RDFType = RDFNS + "type"
	// RDFSSubClassOf is rdfs:subClassOf.
	RDFSSubClassOf = RDFSNS + "subClassOf"
	// RDFSLabel is rdfs:label.
	RDFSLabel = RDFSNS + "label"
)

// Term is one RDF term. The zero Term is not valid; construct terms with
// NewIRI, NewLiteral, NewLangLiteral, NewTypedLiteral or NewBlank.
type Term struct {
	Kind     TermKind
	Value    string // IRI, literal lexical form, or blank label
	Lang     string // language tag for literals
	Datatype string // datatype IRI for literals
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(s string) Term { return Term{Kind: Literal, Value: s} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(s, lang string) Term { return Term{Kind: Literal, Value: s, Lang: lang} }

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(s, datatype string) Term {
	return Term{Kind: Literal, Value: s, Datatype: datatype}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

func escapeLiteral(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
	return r.Replace(s)
}

// Triple is one RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}
