package rdf

import (
	"strings"
	"testing"

	"repro/internal/bindings"
)

func TestTermStringRendering(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://u/"), "<http://u/>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("plain"), `"plain"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("5", XSDNS+"integer"), `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral(`quote " and \ slash`), `"quote \" and \\ slash"`},
		{NewLiteral("line\nbreak"), `"line\nbreak"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String = %s, want %s", got, c.want)
		}
	}
	tr := Triple{NewIRI("s"), NewIRI("p"), NewLiteral("o")}
	if got := tr.String(); got != `<s> <p> "o" .` {
		t.Errorf("triple = %s", got)
	}
}

func TestTermPredicates(t *testing.T) {
	if !NewIRI("u").IsIRI() || NewLiteral("x").IsIRI() {
		t.Error("IsIRI")
	}
	if !NewLiteral("x").IsLiteral() || NewIRI("u").IsLiteral() {
		t.Error("IsLiteral")
	}
}

func TestSubClassClosureWithCycle(t *testing.T) {
	g := NewGraph()
	sub := NewIRI(RDFSSubClassOf)
	a, b, c := NewIRI("A"), NewIRI("B"), NewIRI("C")
	g.Add(Triple{b, sub, a})
	g.Add(Triple{c, sub, b})
	g.Add(Triple{a, sub, c}) // cycle
	closure := g.SubClassClosure(a)
	if len(closure) != 3 {
		t.Errorf("cyclic closure = %v", closure)
	}
}

func TestWriteTurtlePrefixSelection(t *testing.T) {
	triples := []Triple{
		{NewIRI("http://x/ns#alpha"), NewIRI("http://x/ns#p"), NewIRI("http://x/ns#more/deep")},
	}
	var b strings.Builder
	if err := WriteTurtle(&b, triples, map[string]string{"x": "http://x/ns#"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "x:alpha x:p") {
		t.Errorf("prefixed names missing: %s", out)
	}
	// "more/deep" contains '/', not a valid local name → full IRI.
	if !strings.Contains(out, "<http://x/ns#more/deep>") {
		t.Errorf("invalid local should stay full IRI: %s", out)
	}
}

func TestQueryPredicateVariable(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParseTurtle(`
		@prefix x: <http://x/> .
		x:s x:p1 "a" .
		x:s x:p2 "b" .
	`))
	rel := g.Query([]Pattern{{T(NewIRI("http://x/s")), V("P"), V("O")}})
	if rel.Size() != 2 {
		t.Fatalf("rel = %s", rel)
	}
}

func TestQueryRepeatedVariableInOnePattern(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParseTurtle(`
		@prefix x: <http://x/> .
		x:a x:knows x:a .
		x:a x:knows x:b .
	`))
	rel := g.Query([]Pattern{{V("X"), T(NewIRI("http://x/knows")), V("X")}})
	if rel.Size() != 1 || rel.Tuples()[0]["X"].AsString() != "http://x/a" {
		t.Fatalf("self-knows = %s", rel)
	}
}

func TestTermToValueTyping(t *testing.T) {
	if v := TermToValue(NewTypedLiteral("5", XSDNS+"integer")); v.Kind() != bindings.Number {
		t.Errorf("integer → %v", v.Kind())
	}
	if v := TermToValue(NewTypedLiteral("true", XSDNS+"boolean")); v.Kind() != bindings.Bool {
		t.Errorf("boolean → %v", v.Kind())
	}
	if v := TermToValue(NewBlank("n")); v.AsString() != "_:n" {
		t.Errorf("blank → %v", v)
	}
	if v := TermToValue(NewLangLiteral("x", "en")); v.Kind() != bindings.String {
		t.Errorf("lang literal → %v", v.Kind())
	}
}

func TestAddAllAndDuplicates(t *testing.T) {
	g := NewGraph()
	tr := Triple{NewIRI("s"), NewIRI("p"), NewLiteral("o")}
	g.AddAll([]Triple{tr, tr, tr})
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
	if g.Add(tr) {
		t.Error("re-add should report false")
	}
}

func TestBaseDirective(t *testing.T) {
	ts := MustParseTurtle(`
		@base <http://base/> .
		@prefix x: <http://x/> .
		<rel> x:p <http://abs/iri> .
	`)
	if len(ts) != 1 {
		t.Fatalf("triples = %v", ts)
	}
	if ts[0].S.Value != "http://base/rel" {
		t.Errorf("base resolution = %s", ts[0].S.Value)
	}
	if ts[0].O.Value != "http://abs/iri" {
		t.Errorf("absolute IRI modified = %s", ts[0].O.Value)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	ts := MustParseTurtle(`
		# a leading comment
		@prefix x: <http://x/> . # trailing comment
		x:a x:b x:c . # another
	`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d", len(ts))
	}
}
