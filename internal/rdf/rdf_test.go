package rdf

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bindings"
)

const sampleTurtle = `
@prefix eca: <http://www.semwebtech.org/ontology/2006/eca#> .
@prefix lang: <http://www.semwebtech.org/languages/2006/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

lang:snoop a eca:EventLanguage ;
    rdfs:label "SNOOP" ;
    eca:implementedBy lang:snoop-service .

lang:xquery a eca:QueryLanguage ;
    rdfs:label "XQuery" ;
    eca:implementedBy lang:saxon-service .

eca:EventLanguage rdfs:subClassOf eca:ComponentLanguage .
eca:QueryLanguage rdfs:subClassOf eca:ComponentLanguage .

lang:snoop-service eca:endpoint "http://localhost:8081/snoop" ;
    eca:frameworkAware true ;
    eca:priority 2 .
`

func loadSample(t *testing.T) *Graph {
	t.Helper()
	ts, err := ParseTurtleString(sampleTurtle)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph()
	g.AddAll(ts)
	return g
}

func TestParseTurtleBasics(t *testing.T) {
	g := loadSample(t)
	if g.Len() != 11 {
		t.Errorf("triple count = %d, want 11\n%v", g.Len(), g.Triples())
	}
	snoop := NewIRI("http://www.semwebtech.org/languages/2006/snoop")
	typ := NewIRI(RDFType)
	evLang := NewIRI("http://www.semwebtech.org/ontology/2006/eca#EventLanguage")
	if !g.Contains(Triple{snoop, typ, evLang}) {
		t.Error("snoop a EventLanguage missing")
	}
	label := NewIRI(RDFSLabel)
	got := g.Match(&snoop, &label, nil)
	if len(got) != 1 || got[0].O.Value != "SNOOP" {
		t.Errorf("label = %v", got)
	}
}

func TestParseTurtleLiterals(t *testing.T) {
	ts := MustParseTurtle(`
		@prefix x: <http://x/> .
		x:a x:str "hello" ;
			x:esc "a\"b\nc" ;
			x:lang "bonjour"@fr ;
			x:typed "5"^^<http://www.w3.org/2001/XMLSchema#integer> ;
			x:int 42 ;
			x:neg -7 ;
			x:dec 3.14 ;
			x:yes true ;
			x:no false .
	`)
	byPred := map[string]Term{}
	for _, tr := range ts {
		byPred[tr.P.Value] = tr.O
	}
	if byPred["http://x/str"].Value != "hello" {
		t.Errorf("str = %v", byPred["http://x/str"])
	}
	if byPred["http://x/esc"].Value != "a\"b\nc" {
		t.Errorf("esc = %q", byPred["http://x/esc"].Value)
	}
	if byPred["http://x/lang"].Lang != "fr" {
		t.Errorf("lang = %v", byPred["http://x/lang"])
	}
	if byPred["http://x/typed"].Datatype != XSDNS+"integer" {
		t.Errorf("typed = %v", byPred["http://x/typed"])
	}
	if byPred["http://x/int"].Value != "42" || byPred["http://x/int"].Datatype != XSDNS+"integer" {
		t.Errorf("int = %v", byPred["http://x/int"])
	}
	if byPred["http://x/neg"].Value != "-7" {
		t.Errorf("neg = %v", byPred["http://x/neg"])
	}
	if byPred["http://x/dec"].Value != "3.14" || byPred["http://x/dec"].Datatype != XSDNS+"decimal" {
		t.Errorf("dec = %v", byPred["http://x/dec"])
	}
	if byPred["http://x/yes"].Value != "true" {
		t.Errorf("yes = %v", byPred["http://x/yes"])
	}
}

func TestParseTurtleBlankNodes(t *testing.T) {
	ts := MustParseTurtle(`
		@prefix x: <http://x/> .
		_:b1 x:p x:o .
		x:s x:q [ x:r "inner" ] .
		x:s x:empty [] .
	`)
	if len(ts) != 4 {
		t.Fatalf("triples = %d, want 4: %v", len(ts), ts)
	}
	var anon Term
	for _, tr := range ts {
		if tr.P.Value == "http://x/q" {
			anon = tr.O
		}
	}
	if anon.Kind != Blank {
		t.Fatalf("object of x:q should be blank, got %v", anon)
	}
	found := false
	for _, tr := range ts {
		if tr.S == anon && tr.P.Value == "http://x/r" && tr.O.Value == "inner" {
			found = true
		}
	}
	if !found {
		t.Error("nested blank node triple missing")
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`x:a x:b x:c .`,                            // undeclared prefix
		`@prefix x: <http://x/> . x:a x:b `,        // missing object/dot
		`@prefix x: <http://x/> . "lit" x:b x:c .`, // literal subject
		`@prefix x: <http://x/> . x:a "notpred" x:c .`,
		`@prefix x: <http://x/> . x:a x:b "unterminated .`,
		`@prefix x: <http://x/ . `, // unterminated IRI... actually terminated by > missing
	}
	for _, src := range bad {
		if _, err := ParseTurtleString(src); err == nil {
			t.Errorf("ParseTurtleString(%q): expected error", src)
		}
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	g := loadSample(t)
	var b strings.Builder
	err := WriteTurtle(&b, g.Triples(), map[string]string{
		"eca":  "http://www.semwebtech.org/ontology/2006/eca#",
		"lang": "http://www.semwebtech.org/languages/2006/",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ParseTurtleString(b.String())
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, b.String())
	}
	g2 := NewGraph()
	g2.AddAll(ts)
	if g2.Len() != g.Len() {
		t.Fatalf("round trip: %d triples, want %d\n%s", g2.Len(), g.Len(), b.String())
	}
	for _, tr := range g.Triples() {
		if !g2.Contains(tr) {
			t.Errorf("round trip lost %v", tr)
		}
	}
}

func TestMatchWildcards(t *testing.T) {
	g := loadSample(t)
	typ := NewIRI(RDFType)
	all := g.Match(nil, &typ, nil)
	if len(all) != 2 {
		t.Errorf("rdf:type triples = %d, want 2", len(all))
	}
	if n := len(g.Match(nil, nil, nil)); n != g.Len() {
		t.Errorf("full wildcard = %d, want %d", n, g.Len())
	}
}

func TestRemove(t *testing.T) {
	g := NewGraph()
	tr := Triple{NewIRI("s"), NewIRI("p"), NewLiteral("o")}
	g.Add(tr)
	if !g.Remove(tr) || g.Len() != 0 {
		t.Error("remove failed")
	}
	if g.Remove(tr) {
		t.Error("double remove should report false")
	}
	if len(g.Match(nil, nil, nil)) != 0 {
		t.Error("index not cleaned")
	}
}

func TestSubClassClosure(t *testing.T) {
	g := loadSample(t)
	comp := NewIRI("http://www.semwebtech.org/ontology/2006/eca#ComponentLanguage")
	closure := g.SubClassClosure(comp)
	if len(closure) != 3 {
		t.Errorf("closure size = %d, want 3 (self + 2 subclasses): %v", len(closure), closure)
	}
}

func TestQueryBGP(t *testing.T) {
	g := loadSample(t)
	ecaNS := "http://www.semwebtech.org/ontology/2006/eca#"
	// Find every language with its implementing service endpoint:
	// ?L eca:implementedBy ?S . ?S eca:endpoint ?E
	rel := g.Query([]Pattern{
		{V("L"), T(NewIRI(ecaNS + "implementedBy")), V("S")},
		{V("S"), T(NewIRI(ecaNS + "endpoint")), V("E")},
	})
	if rel.Size() != 1 {
		t.Fatalf("query size = %d, want 1 (only snoop-service has an endpoint)\n%s", rel.Size(), rel)
	}
	tup := rel.Tuples()[0]
	if tup["E"].AsString() != "http://localhost:8081/snoop" {
		t.Errorf("E = %v", tup["E"])
	}
	if tup["L"].Kind() != bindings.URI {
		t.Errorf("L should be a URI, got %v", tup["L"].Kind())
	}
}

func TestQueryJoinVariable(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParseTurtle(`
		@prefix x: <http://x/> .
		x:a x:knows x:b . x:b x:knows x:c . x:c x:knows x:a .
		x:a x:age 30 . x:b x:age 30 . x:c x:age 40 .
	`))
	// Same-age pairs that know each other.
	rel := g.Query([]Pattern{
		{V("P"), T(NewIRI("http://x/knows")), V("Q")},
		{V("P"), T(NewIRI("http://x/age")), V("A")},
		{V("Q"), T(NewIRI("http://x/age")), V("A")},
	})
	if rel.Size() != 1 {
		t.Fatalf("rel = %s", rel)
	}
	tup := rel.Tuples()[0]
	if tup["P"].AsString() != "http://x/a" || tup["Q"].AsString() != "http://x/b" {
		t.Errorf("pair = %v", tup)
	}
	if n, _ := tup["A"].AsNumber(); n != 30 {
		t.Errorf("A = %v", tup["A"])
	}
}

func TestQueryNoMatch(t *testing.T) {
	g := loadSample(t)
	rel := g.Query([]Pattern{
		{V("X"), T(NewIRI("http://nosuch/pred")), V("Y")},
	})
	if !rel.Empty() {
		t.Error("expected empty relation")
	}
}

func TestQueryConstantPattern(t *testing.T) {
	g := loadSample(t)
	// Fully ground pattern acts as an assertion.
	snoop := NewIRI("http://www.semwebtech.org/languages/2006/snoop")
	rel := g.Query([]Pattern{
		{T(snoop), T(NewIRI(RDFSLabel)), T(NewLiteral("SNOOP"))},
	})
	if rel.Size() != 1 || len(rel.Tuples()[0]) != 0 {
		t.Errorf("ground query = %s", rel)
	}
}

func TestConcurrentGraphAccess(t *testing.T) {
	g := NewGraph()
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func(n int) {
			for j := 0; j < 100; j++ {
				g.Add(Triple{NewIRI("s"), NewIRI("p"), NewLiteral(strings.Repeat("x", n+1))})
				g.Match(nil, nil, nil)
			}
			done <- true
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if g.Len() != 8 {
		t.Errorf("len = %d, want 8", g.Len())
	}
}

// Property: term string rendering of literals survives a Turtle round trip.
func TestQuickLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\x00") || !validUTF8(s) {
			return true
		}
		src := "@prefix x: <http://x/> .\nx:a x:p " + NewLiteral(s).String() + " ."
		ts, err := ParseTurtleString(src)
		if err != nil || len(ts) != 1 {
			return false
		}
		return ts[0].O.Value == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func validUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}
