package rdf

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/bindings"
)

// Graph is an in-memory RDF graph with subject/predicate/object indexes.
// It is safe for concurrent use.
type Graph struct {
	mu      sync.RWMutex
	triples map[Triple]struct{}
	bySubj  map[Term][]Triple
	byPred  map[Term][]Triple
	byObj   map[Term][]Triple
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		triples: map[Triple]struct{}{},
		bySubj:  map[Term][]Triple{},
		byPred:  map[Term][]Triple{},
		byObj:   map[Term][]Triple{},
	}
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new.
func (g *Graph) Add(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.triples[t]; ok {
		return false
	}
	g.triples[t] = struct{}{}
	g.bySubj[t.S] = append(g.bySubj[t.S], t)
	g.byPred[t.P] = append(g.byPred[t.P], t)
	g.byObj[t.O] = append(g.byObj[t.O], t)
	return true
}

// AddAll inserts a batch of triples.
func (g *Graph) AddAll(ts []Triple) {
	for _, t := range ts {
		g.Add(t)
	}
}

// Remove deletes a triple if present and reports whether it was there.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.triples[t]; !ok {
		return false
	}
	delete(g.triples, t)
	g.bySubj[t.S] = removeTriple(g.bySubj[t.S], t)
	g.byPred[t.P] = removeTriple(g.byPred[t.P], t)
	g.byObj[t.O] = removeTriple(g.byObj[t.O], t)
	return true
}

func removeTriple(ts []Triple, t Triple) []Triple {
	for i := range ts {
		if ts[i] == t {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

// Len returns the number of triples.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.triples)
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.triples[t]
	return ok
}

// Triples returns all triples in a deterministic order.
func (g *Graph) Triples() []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Triple, 0, len(g.triples))
	for t := range g.triples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Match returns the triples matching the given terms; nil pointers act as
// wildcards. The most selective available index is used.
func (g *Graph) Match(s, p, o *Term) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var candidates []Triple
	switch {
	case s != nil:
		candidates = g.bySubj[*s]
	case o != nil:
		candidates = g.byObj[*o]
	case p != nil:
		candidates = g.byPred[*p]
	default:
		candidates = make([]Triple, 0, len(g.triples))
		for t := range g.triples {
			candidates = append(candidates, t)
		}
	}
	var out []Triple
	for _, t := range candidates {
		if (s == nil || t.S == *s) && (p == nil || t.P == *p) && (o == nil || t.O == *o) {
			out = append(out, t)
		}
	}
	return out
}

// SubClassClosure returns the set of classes reachable from class via zero
// or more rdfs:subClassOf steps — the language-family hierarchy walk used
// for Fig. 2 queries ("is SNOOP an event language?").
func (g *Graph) SubClassClosure(class Term) map[Term]bool {
	seen := map[Term]bool{class: true}
	queue := []Term{class}
	sub := NewIRI(RDFSSubClassOf)
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, t := range g.Match(nil, &sub, &c) {
			if !seen[t.S] {
				seen[t.S] = true
				queue = append(queue, t.S)
			}
		}
	}
	return seen
}

// --- basic graph pattern queries ----------------------------------------------

// PatternTerm is a term or a variable in a triple pattern. Exactly one of
// Var and Term is meaningful: a non-empty Var makes it a variable.
type PatternTerm struct {
	Var  string
	Term Term
}

// V returns a variable pattern term.
func V(name string) PatternTerm { return PatternTerm{Var: name} }

// T returns a constant pattern term.
func T(t Term) PatternTerm { return PatternTerm{Term: t} }

// Pattern is one triple pattern of a basic graph pattern.
type Pattern struct {
	S, P, O PatternTerm
}

// Query evaluates a basic graph pattern against the graph and returns the
// tuples of variable bindings, ECA-framework style: variables repeated
// across patterns act as join variables. Variables bind IRI terms to URI
// values and literals to string/typed values.
func (g *Graph) Query(patterns []Pattern) *bindings.Relation {
	rel := bindings.Unit()
	for _, p := range patterns {
		rel = g.stepJoin(rel, p)
		if rel.Empty() {
			return rel
		}
	}
	return rel
}

func (g *Graph) stepJoin(rel *bindings.Relation, p Pattern) *bindings.Relation {
	out := bindings.NewRelation()
	for _, tup := range rel.Tuples() {
		s := resolve(p.S, tup)
		pr := resolve(p.P, tup)
		o := resolve(p.O, tup)
		for _, t := range g.Match(s, pr, o) {
			n := tup.Clone()
			if !bindPattern(n, p.S, t.S) || !bindPattern(n, p.P, t.P) || !bindPattern(n, p.O, t.O) {
				continue
			}
			out.Add(n)
		}
	}
	return out
}

// resolve turns a pattern term into a concrete term filter, using an
// existing binding when the variable is already bound. Variables bound to
// literal values are left as wildcards so the lenient Value.Equal check in
// bindPattern decides (exact Term equality would wrongly distinguish, e.g.,
// a plain "5" from an xsd:integer 5); URI bindings filter exactly.
func resolve(pt PatternTerm, tup bindings.Tuple) *Term {
	if pt.Var == "" {
		t := pt.Term
		return &t
	}
	if v, ok := tup[pt.Var]; ok && v.Kind() == bindings.URI {
		t := valueToTerm(v)
		return &t
	}
	return nil
}

func bindPattern(tup bindings.Tuple, pt PatternTerm, t Term) bool {
	if pt.Var == "" {
		return true
	}
	v := TermToValue(t)
	if old, ok := tup[pt.Var]; ok {
		return old.Equal(v)
	}
	tup[pt.Var] = v
	return true
}

// TermToValue converts an RDF term to a binding value: IRIs become URI
// references, blanks become URI references with the _: prefix, literals
// become strings (numeric XSD types become numbers).
func TermToValue(t Term) bindings.Value {
	switch t.Kind {
	case IRI:
		return bindings.Ref(t.Value)
	case Blank:
		return bindings.Ref("_:" + t.Value)
	default:
		switch t.Datatype {
		case XSDNS + "integer", XSDNS + "decimal", XSDNS + "double", XSDNS + "float", XSDNS + "int", XSDNS + "long":
			if f, ok := bindings.Str(t.Value).AsNumber(); ok {
				return bindings.Num(f)
			}
		case XSDNS + "boolean":
			return bindings.Boolean(t.Value == "true" || t.Value == "1")
		}
		return bindings.Str(t.Value)
	}
}

// valueToTerm converts a binding value back to an RDF term for filtering.
func valueToTerm(v bindings.Value) Term {
	switch v.Kind() {
	case bindings.URI:
		if rest, ok := strings.CutPrefix(v.AsString(), "_:"); ok {
			return NewBlank(rest)
		}
		return NewIRI(v.AsString())
	case bindings.Number:
		return NewTypedLiteral(v.AsString(), XSDNS+"integer")
	case bindings.Bool:
		return NewTypedLiteral(v.AsString(), XSDNS+"boolean")
	default:
		return NewLiteral(v.AsString())
	}
}
