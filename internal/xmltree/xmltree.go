// Package xmltree provides a namespace-aware XML document model used
// throughout the ECA framework: rule documents, protocol messages, events,
// query results and bound XML fragments are all represented as *Node trees.
//
// The model is deliberately small: a Node is a document, element, text,
// comment or processing instruction. Element and attribute names carry the
// resolved namespace URI (not the prefix); serialization re-derives prefixes
// from in-scope xmlns declarations, synthesizing them where necessary, so
// trees can be built programmatically without thinking about prefixes.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind discriminates the node variants of the document model.
type Kind int

// The node kinds of the document model.
const (
	// DocumentNode is the root of a parsed document; its children are the
	// top-level nodes (comments, processing instructions and exactly one
	// element for well-formed documents).
	DocumentNode Kind = iota
	// ElementNode is an XML element with a name, attributes and children.
	ElementNode
	// TextNode is character data; Text holds the unescaped content.
	TextNode
	// CommentNode is an XML comment; Text holds the comment body.
	CommentNode
	// ProcInstNode is a processing instruction; Name.Local holds the
	// target and Text the instruction body.
	ProcInstNode
	// AttrNode is a synthetic attribute node as used by XPath's attribute
	// axis: Name is the attribute name, Text its value and Parent the
	// owning element. Attribute nodes are created on demand (see
	// Node.AttrNodes) and never appear in Children.
	AttrNode
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcInstNode:
		return "procinst"
	case AttrNode:
		return "attribute"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Name identifies an element or attribute. Space is the resolved namespace
// URI ("" for no namespace); Local is the local part of the name.
type Name struct {
	Space string
	Local string
}

// String renders the name in Clark notation ({uri}local) when namespaced.
func (n Name) String() string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// Attr is a single attribute. Namespace declarations (xmlns and xmlns:p)
// appear in the attribute list with Space "xmlns" for prefixed declarations
// and the name {,"xmlns"} for default-namespace declarations, mirroring the
// encoding/xml token representation.
type Attr struct {
	Name  Name
	Value string
}

// IsNamespaceDecl reports whether the attribute is an xmlns declaration.
func (a Attr) IsNamespaceDecl() bool {
	return a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns")
}

// Node is one node of the document model. Fields are used according to Kind;
// see the Kind constants. Parent is maintained by the parse and mutation
// helpers in this package and is nil for roots.
type Node struct {
	Kind     Kind
	Name     Name
	Attrs    []Attr
	Text     string
	Children []*Node
	Parent   *Node
}

// NewDocument returns an empty document node.
func NewDocument() *Node { return &Node{Kind: DocumentNode} }

// NewElement returns an element node with the given namespace URI and local
// name and the given children appended (attribute-free; use SetAttr).
func NewElement(space, local string, children ...*Node) *Node {
	e := &Node{Kind: ElementNode, Name: Name{Space: space, Local: local}}
	for _, c := range children {
		e.Append(c)
	}
	return e
}

// NewText returns a text node with the given character data.
func NewText(s string) *Node { return &Node{Kind: TextNode, Text: s} }

// NewComment returns a comment node.
func NewComment(s string) *Node { return &Node{Kind: CommentNode, Text: s} }

// Append adds c as the last child of n and sets its parent pointer.
// It returns n to allow chaining during tree construction.
func (n *Node) Append(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// AppendText appends a text node with the given content and returns n.
func (n *Node) AppendText(s string) *Node { return n.Append(NewText(s)) }

// SetAttr sets (or replaces) an attribute on an element and returns n.
func (n *Node) SetAttr(space, local, value string) *Node {
	name := Name{Space: space, Local: local}
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute (empty Space matches
// unprefixed attributes) and whether it is present.
func (n *Node) Attr(space, local string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue returns the value of the named attribute or "" if absent.
func (n *Node) AttrValue(space, local string) string {
	v, _ := n.Attr(space, local)
	return v
}

// AttrNodes materializes the element's non-namespace attributes as synthetic
// AttrNode nodes whose Parent is n. Repeated calls create fresh nodes.
func (n *Node) AttrNodes() []*Node {
	var out []*Node
	for _, a := range n.Attrs {
		if a.IsNamespaceDecl() {
			continue
		}
		out = append(out, &Node{Kind: AttrNode, Name: a.Name, Text: a.Value, Parent: n})
	}
	return out
}

// Root returns the first element child of a document node, or n itself if n
// is already an element, or nil otherwise.
func (n *Node) Root() *Node {
	if n == nil {
		return nil
	}
	if n.Kind == ElementNode {
		return n
	}
	if n.Kind == DocumentNode {
		for _, c := range n.Children {
			if c.Kind == ElementNode {
				return c
			}
		}
	}
	return nil
}

// ChildElements returns the element children of n in document order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first child element with the given name, or
// nil. An empty space matches any namespace when local is also matched.
func (n *Node) FirstChildElement(space, local string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name.Local == local && (space == "*" || c.Name.Space == space) {
			return c
		}
	}
	return nil
}

// ChildElementsNamed returns all child elements with the given name.
// A space of "*" matches any namespace.
func (n *Node) ChildElementsNamed(space, local string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name.Local == local && (space == "*" || c.Name.Space == space) {
			out = append(out, c)
		}
	}
	return out
}

// Descendants calls f for every descendant-or-self element of n in document
// order, stopping early if f returns false.
func (n *Node) Descendants(f func(*Node) bool) {
	var walk func(*Node) bool
	walk = func(x *Node) bool {
		if x.Kind == ElementNode {
			if !f(x) {
				return false
			}
		}
		for _, c := range x.Children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(n)
}

// TextContent returns the concatenation of all descendant text nodes,
// the string-value of the node in XPath terms.
func (n *Node) TextContent() string {
	if n == nil {
		return ""
	}
	if n.Kind == TextNode || n.Kind == AttrNode {
		return n.Text
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(x *Node) {
		if x.Kind == TextNode {
			b.WriteString(x.Text)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// Clone returns a deep copy of n with a nil parent.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if n.Attrs != nil {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, ch := range n.Children {
		c.Append(ch.Clone())
	}
	return c
}

// Equal reports deep structural equality of two trees: same kinds, resolved
// names, attribute sets (order-insensitive, xmlns declarations ignored),
// text content, and children in order. Prefix spelling never matters because
// names hold resolved URIs.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text {
		return false
	}
	if !attrsEqual(a.Attrs, b.Attrs) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// EqualIgnoringWhitespace is like Equal but skips whitespace-only text nodes
// on both sides, so indented and compact serializations compare equal.
func EqualIgnoringWhitespace(a, b *Node) bool {
	return Equal(stripWS(a), stripWS(b))
}

func stripWS(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if n.Attrs != nil {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, ch := range n.Children {
		if ch.Kind == TextNode && strings.TrimSpace(ch.Text) == "" {
			continue
		}
		c.Append(stripWS(ch))
	}
	return c
}

func attrsEqual(a, b []Attr) bool {
	am := map[Name]string{}
	bm := map[Name]string{}
	for _, x := range a {
		if !x.IsNamespaceDecl() {
			am[x.Name] = x.Value
		}
	}
	for _, x := range b {
		if !x.IsNamespaceDecl() {
			bm[x.Name] = x.Value
		}
	}
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}

// Parse reads a complete XML document from r into a document node.
// Element and attribute namespaces are resolved to URIs; the original xmlns
// declarations are retained in the attribute lists.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	doc := NewDocument()
	cur := doc
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			e := &Node{Kind: ElementNode, Name: internName(t.Name.Space, t.Name.Local)}
			for _, a := range t.Attr {
				e.Attrs = append(e.Attrs, Attr{Name: internName(a.Name.Space, a.Name.Local), Value: a.Value})
			}
			cur.Append(e)
			cur = e
		case xml.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element </%s>", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			cur.Append(NewText(string(t)))
		case xml.Comment:
			cur.Append(NewComment(string(t)))
		case xml.ProcInst:
			cur.Append(&Node{Kind: ProcInstNode, Name: Name{Local: t.Target}, Text: string(t.Inst)})
		case xml.Directive:
			// DOCTYPE and similar directives are not part of the model.
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("xmltree: parse: unexpected end of input inside <%s>", cur.Name.Local)
	}
	if doc.Root() == nil {
		return nil, fmt.Errorf("xmltree: parse: document has no root element")
	}
	return doc, nil
}

// ParseString parses a document from a string. See Parse.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// MustParse parses a document from a string and panics on error. It is
// intended for static documents in tests and examples.
func MustParse(s string) *Node {
	doc, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return doc
}

// scope tracks in-scope namespace prefix declarations during serialization.
type scope struct {
	parent  *scope
	uriToPx map[string]string
	pxToURI map[string]string
	defNS   string
	hasDef  bool
	counter *int
}

func newScope() *scope {
	n := 0
	return &scope{uriToPx: map[string]string{}, pxToURI: map[string]string{}, counter: &n}
}

func (s *scope) child() *scope {
	return &scope{parent: s, uriToPx: map[string]string{}, pxToURI: map[string]string{}, counter: s.counter}
}

func (s *scope) lookupPrefix(uri string) (string, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if p, ok := sc.uriToPx[uri]; ok {
			// A nearer scope may have rebound the prefix to another URI.
			if u, ok2 := s.lookupURI(p); ok2 && u == uri {
				return p, true
			}
		}
	}
	return "", false
}

func (s *scope) lookupURI(prefix string) (string, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if u, ok := sc.pxToURI[prefix]; ok {
			return u, true
		}
	}
	return "", false
}

func (s *scope) defaultNS() string {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.hasDef {
			return sc.defNS
		}
	}
	return ""
}

func (s *scope) declare(prefix, uri string) {
	s.uriToPx[uri] = prefix
	s.pxToURI[prefix] = uri
}

func (s *scope) fresh(uri string) string {
	for {
		*s.counter++
		p := fmt.Sprintf("ns%d", *s.counter)
		if _, taken := s.lookupURI(p); !taken {
			s.declare(p, uri)
			return p
		}
	}
}

// Write serializes the tree rooted at n to w as XML. Namespace prefixes are
// taken from xmlns declarations present in the attribute lists; names in
// namespaces with no in-scope declaration get synthesized ns1, ns2, …
// declarations on the element that first needs them.
func (n *Node) Write(w io.Writer) error {
	var b strings.Builder
	writeNode(&b, n, newScope())
	_, err := io.WriteString(w, b.String())
	return err
}

// String serializes the tree rooted at n to a string. Errors cannot occur
// when writing to an in-memory buffer, so none are returned.
func (n *Node) String() string {
	var b strings.Builder
	writeNode(&b, n, newScope())
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, sc *scope) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			writeNode(b, c, sc)
		}
	case TextNode:
		escapeText(b, n.Text)
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Text)
		b.WriteString("-->")
	case ProcInstNode:
		b.WriteString("<?")
		b.WriteString(n.Name.Local)
		if n.Text != "" {
			b.WriteString(" ")
			b.WriteString(n.Text)
		}
		b.WriteString("?>")
	case ElementNode:
		writeElement(b, n, sc)
	}
}

func writeElement(b *strings.Builder, n *Node, parent *scope) {
	sc := parent.child()
	// First pass: absorb explicit xmlns declarations.
	for _, a := range n.Attrs {
		if a.Name.Space == "xmlns" {
			sc.declare(a.Name.Local, a.Value)
		} else if a.Name.Space == "" && a.Name.Local == "xmlns" {
			sc.hasDef = true
			sc.defNS = a.Value
		}
	}
	// Determine extra declarations needed for the element and its attributes.
	type decl struct{ prefix, uri string }
	var extra []decl
	need := func(uri string, forAttr bool) string {
		if uri == "" {
			return ""
		}
		if !forAttr && sc.defaultNS() == uri {
			return ""
		}
		if p, ok := sc.lookupPrefix(uri); ok && p != "" {
			return p
		}
		p := sc.fresh(uri)
		extra = append(extra, decl{p, uri})
		return p
	}
	// Elements in no namespace under a default namespace need an override.
	if n.Name.Space == "" && sc.defaultNS() != "" {
		sc.hasDef = true
		sc.defNS = ""
		extra = append(extra, decl{"", ""})
	}
	ePrefix := need(n.Name.Space, false)

	b.WriteString("<")
	if ePrefix != "" {
		b.WriteString(ePrefix)
		b.WriteString(":")
	}
	b.WriteString(n.Name.Local)

	var attrs []string
	for _, a := range n.Attrs {
		var name string
		switch {
		case a.Name.Space == "xmlns":
			name = "xmlns:" + a.Name.Local
		case a.Name.Space == "" && a.Name.Local == "xmlns":
			name = "xmlns"
		case a.Name.Space == "":
			name = a.Name.Local
		default:
			name = need(a.Name.Space, true) + ":" + a.Name.Local
		}
		var v strings.Builder
		escapeAttr(&v, a.Value)
		attrs = append(attrs, name+`="`+v.String()+`"`)
	}
	var decls []string
	for _, d := range extra {
		if d.prefix == "" {
			decls = append(decls, fmt.Sprintf(`xmlns=%q`, d.uri))
		} else {
			decls = append(decls, fmt.Sprintf(`xmlns:%s=%q`, d.prefix, d.uri))
		}
	}
	sort.Strings(decls)
	for _, d := range decls {
		b.WriteString(" ")
		b.WriteString(d)
	}
	for _, a := range attrs {
		b.WriteString(" ")
		b.WriteString(a)
	}

	if len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteString(">")
	for _, c := range n.Children {
		writeNode(b, c, sc)
	}
	b.WriteString("</")
	if ePrefix != "" {
		b.WriteString(ePrefix)
		b.WriteString(":")
	}
	b.WriteString(n.Name.Local)
	b.WriteString(">")
}

// escapeText writes s with the markup-significant characters &, < and >
// replaced by entity references. Whitespace (including newlines) passes
// through literally, unlike encoding/xml's EscapeText.
func escapeText(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteRune(r)
		}
	}
}

// escapeAttr writes s escaped for use inside a double-quoted attribute value.
// Tab, newline and carriage return are escaped numerically so they survive
// attribute-value normalization on reparse.
func escapeAttr(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\t':
			b.WriteString("&#x9;")
		case '\n':
			b.WriteString("&#xA;")
		case '\r':
			b.WriteString("&#xD;")
		default:
			b.WriteRune(r)
		}
	}
}

// Indent returns a copy of the tree re-indented for human display: element
// children are placed on their own lines with two-space indentation, and
// whitespace-only text nodes are normalized. Mixed content (elements with
// non-whitespace text children) is left untouched.
func Indent(n *Node) *Node {
	c := stripWS(n)
	indentInto(c, 0)
	return c
}

func indentInto(n *Node, depth int) {
	if n.Kind == DocumentNode {
		for _, c := range n.Children {
			indentInto(c, depth)
		}
		return
	}
	if n.Kind != ElementNode || len(n.Children) == 0 {
		return
	}
	for _, c := range n.Children {
		if c.Kind == TextNode {
			return // mixed content: leave as is
		}
	}
	var out []*Node
	pad := "\n" + strings.Repeat("  ", depth+1)
	for _, c := range n.Children {
		out = append(out, NewText(pad), c)
		indentInto(c, depth+1)
	}
	out = append(out, NewText("\n"+strings.Repeat("  ", depth)))
	n.Children = nil
	for _, c := range out {
		n.Append(c)
	}
}
