package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	doc, err := ParseString(`<a><b x="1">hi</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root.Name.Local != "a" {
		t.Fatalf("root = %v, want a", root.Name)
	}
	kids := root.ChildElements()
	if len(kids) != 2 {
		t.Fatalf("got %d child elements, want 2", len(kids))
	}
	if kids[0].Name.Local != "b" || kids[1].Name.Local != "c" {
		t.Fatalf("children = %v, %v", kids[0].Name, kids[1].Name)
	}
	if v, ok := kids[0].Attr("", "x"); !ok || v != "1" {
		t.Fatalf("attr x = %q, %v", v, ok)
	}
	if got := kids[0].TextContent(); got != "hi" {
		t.Fatalf("text = %q", got)
	}
}

func TestParseNamespaces(t *testing.T) {
	doc, err := ParseString(`<eca:rule xmlns:eca="http://example.org/eca" xmlns:q="http://example.org/q">
		<eca:event q:lang="xq"/>
	</eca:rule>`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root.Name.Space != "http://example.org/eca" || root.Name.Local != "rule" {
		t.Fatalf("root name = %v", root.Name)
	}
	ev := root.FirstChildElement("http://example.org/eca", "event")
	if ev == nil {
		t.Fatal("event child not found")
	}
	if v := ev.AttrValue("http://example.org/q", "lang"); v != "xq" {
		t.Fatalf("q:lang = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a>`,
		`<a></b>`,
		`just text`,
		`<a></a></a>`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []string{
		`<a><b x="1">hi</b><c/></a>`,
		`<e:r xmlns:e="u1"><e:x a="1"/><y xmlns="u2"><z/></y></e:r>`,
		`<a>mixed <b/> content</a>`,
		`<a><!--note--><b/></a>`,
		`<a x="&lt;&amp;&quot;"/>`,
		`<root xmlns="d"><child/></root>`,
	}
	for _, c := range cases {
		doc, err := ParseString(c)
		if err != nil {
			t.Fatalf("parse %q: %v", c, err)
		}
		out := doc.String()
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", out, c, err)
		}
		if !Equal(doc, doc2) {
			t.Errorf("round trip changed tree:\n in: %s\nout: %s", c, out)
		}
	}
}

func TestSerializeSynthesizedPrefix(t *testing.T) {
	// Build a tree programmatically with no xmlns declarations at all.
	e := NewElement("http://example.org/v", "msg")
	e.SetAttr("http://example.org/w", "id", "7")
	e.Append(NewElement("http://example.org/v", "body").AppendText("x"))
	s := e.String()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	r := doc.Root()
	if r.Name != (Name{"http://example.org/v", "msg"}) {
		t.Fatalf("name = %v in %q", r.Name, s)
	}
	if v := r.AttrValue("http://example.org/w", "id"); v != "7" {
		t.Fatalf("attr = %q in %q", v, s)
	}
	b := r.FirstChildElement("http://example.org/v", "body")
	if b == nil || b.TextContent() != "x" {
		t.Fatalf("body missing in %q", s)
	}
}

func TestEqualIgnoresPrefixSpelling(t *testing.T) {
	a := MustParse(`<p:x xmlns:p="u"><p:y/></p:x>`)
	b := MustParse(`<q:x xmlns:q="u"><q:y/></q:x>`)
	if !Equal(a.Root(), b.Root()) {
		t.Error("trees with different prefixes for same URI should be Equal")
	}
}

func TestEqualIgnoringWhitespace(t *testing.T) {
	a := MustParse("<a>\n  <b/>\n</a>")
	b := MustParse("<a><b/></a>")
	if Equal(a, b) {
		t.Error("Equal should see the whitespace difference")
	}
	if !EqualIgnoringWhitespace(a, b) {
		t.Error("EqualIgnoringWhitespace should ignore it")
	}
}

func TestEqualAttributeOrder(t *testing.T) {
	a := MustParse(`<a x="1" y="2"/>`)
	b := MustParse(`<a y="2" x="1"/>`)
	if !Equal(a, b) {
		t.Error("attribute order must not matter")
	}
	c := MustParse(`<a x="1" y="3"/>`)
	if Equal(a, c) {
		t.Error("different attribute values must not be Equal")
	}
}

func TestClone(t *testing.T) {
	orig := MustParse(`<a x="1"><b>t</b></a>`)
	c := orig.Clone()
	if !Equal(orig, c) {
		t.Fatal("clone differs")
	}
	c.Root().SetAttr("", "x", "2")
	c.Root().ChildElements()[0].Children[0].Text = "u"
	if orig.Root().AttrValue("", "x") != "1" {
		t.Error("mutating clone affected original attribute")
	}
	if orig.Root().TextContent() != "t" {
		t.Error("mutating clone affected original text")
	}
}

func TestTextContentNested(t *testing.T) {
	doc := MustParse(`<a>one<b>two<c>three</c></b>four</a>`)
	if got := doc.Root().TextContent(); got != "onetwothreefour" {
		t.Fatalf("TextContent = %q", got)
	}
}

func TestDescendants(t *testing.T) {
	doc := MustParse(`<a><b><c/></b><d/></a>`)
	var names []string
	doc.Descendants(func(n *Node) bool {
		names = append(names, n.Name.Local)
		return true
	})
	want := "a b c d"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("descendants = %q, want %q", got, want)
	}
	// Early stop.
	names = nil
	doc.Descendants(func(n *Node) bool {
		names = append(names, n.Name.Local)
		return n.Name.Local != "b"
	})
	if got := strings.Join(names, " "); got != "a b" {
		t.Fatalf("early-stopped descendants = %q", got)
	}
}

func TestIndent(t *testing.T) {
	doc := MustParse(`<a><b><c/></b></a>`)
	s := Indent(doc).String()
	if !strings.Contains(s, "\n  <b>") {
		t.Errorf("indent output lacks newline-indented child: %q", s)
	}
	re, err := ParseString(s)
	if err != nil {
		t.Fatalf("indented output does not reparse: %v", err)
	}
	if !EqualIgnoringWhitespace(doc, re) {
		t.Error("indenting changed logical content")
	}
}

func TestIndentPreservesMixedContent(t *testing.T) {
	doc := MustParse(`<a>hello <b>world</b></a>`)
	s := Indent(doc).String()
	re := MustParse(s)
	if got := re.Root().TextContent(); got != "hello world" {
		t.Fatalf("mixed content mangled: %q (serialized %q)", got, s)
	}
}

func TestAttrEscaping(t *testing.T) {
	e := NewElement("", "a")
	e.SetAttr("", "v", `x<y>&"z`)
	doc := MustParse(e.String())
	if got := doc.Root().AttrValue("", "v"); got != `x<y>&"z` {
		t.Fatalf("attr escaping round-trip = %q", got)
	}
}

func TestTextEscaping(t *testing.T) {
	e := NewElement("", "a").AppendText(`1 < 2 & 3 > 2`)
	doc := MustParse(e.String())
	if got := doc.Root().TextContent(); got != `1 < 2 & 3 > 2` {
		t.Fatalf("text escaping round-trip = %q", got)
	}
}

func TestDefaultNamespaceOverride(t *testing.T) {
	// An element in no namespace nested under a default namespace must be
	// serialized with an xmlns="" override.
	root := NewElement("u", "outer")
	root.SetAttr("", "xmlns", "u")
	root.Append(NewElement("", "plain"))
	doc := MustParse(root.String())
	p := doc.Root().ChildElements()[0]
	if p.Name.Space != "" {
		t.Fatalf("inner element acquired namespace %q in %q", p.Name.Space, root.String())
	}
}

// Property: any tree built from a restricted alphabet of names and texts
// round-trips through serialize+parse to an Equal tree.
func TestQuickRoundTrip(t *testing.T) {
	gen := func(seedBytes []byte) bool {
		n := buildArbitrary(seedBytes)
		s := NewDocument().Append(n).String()
		doc, err := ParseString(s)
		if err != nil {
			t.Logf("serialized: %q", s)
			return false
		}
		return Equal(n, doc.Root())
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// buildArbitrary deterministically grows a small element tree from a byte
// seed. Names come from a fixed alphabet so namespaces collide and nest.
func buildArbitrary(seed []byte) *Node {
	names := []Name{{"", "a"}, {"", "b"}, {"u1", "x"}, {"u2", "y"}, {"u1", "z"}}
	texts := []string{"", "t", "hello & <world>", "  ", "π"}
	i := 0
	next := func(n int) int {
		if len(seed) == 0 {
			return 0
		}
		v := int(seed[i%len(seed)])
		i++
		return v % n
	}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		e := &Node{Kind: ElementNode, Name: names[next(len(names))]}
		if next(2) == 0 {
			e.SetAttr("", "k", texts[next(len(texts))])
		}
		if next(3) == 0 {
			e.SetAttr("u2", "m", "v")
		}
		kids := next(3)
		if depth > 3 {
			kids = 0
		}
		for j := 0; j < kids; j++ {
			if next(4) == 0 {
				// Avoid adjacent text nodes: they merge on reparse.
				lastIsText := len(e.Children) > 0 && e.Children[len(e.Children)-1].Kind == TextNode
				if tx := texts[next(len(texts))]; tx != "" && !lastIsText {
					e.AppendText(tx)
				}
			} else {
				e.Append(build(depth + 1))
			}
		}
		return e
	}
	return build(0)
}
