package xmltree

import "sync"

// internedNames canonicalizes QNames seen while parsing. Documents flowing
// through the engine repeat the same handful of element and attribute names
// (eca:rule, log:variable, …) in every event and answer; sharing one Name
// value per QName keeps parse from re-allocating the strings and makes the
// many Name comparisons in path evaluation compare shared backings.
// (This package cannot use bindings.Intern — bindings imports xmltree.)
var internedNames sync.Map // Name → Name

func internName(space, local string) Name {
	n := Name{Space: space, Local: local}
	if v, ok := internedNames.Load(n); ok {
		return v.(Name)
	}
	v, _ := internedNames.LoadOrStore(n, n)
	return v.(Name)
}
