package xmltree

import (
	"strings"
	"testing"
)

func TestKindAndNameString(t *testing.T) {
	for k, want := range map[Kind]string{
		DocumentNode: "document", ElementNode: "element", TextNode: "text",
		CommentNode: "comment", ProcInstNode: "procinst", AttrNode: "attribute",
	} {
		if k.String() != want {
			t.Errorf("Kind = %q, want %q", k.String(), want)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind should include its number")
	}
	if (Name{Local: "x"}).String() != "x" {
		t.Error("plain name")
	}
	if (Name{Space: "u", Local: "x"}).String() != "{u}x" {
		t.Error("clark notation")
	}
}

func TestCommentAndProcInstRoundTrip(t *testing.T) {
	doc := MustParse(`<?xml version="1.0"?><a><!-- a comment --><?target data?></a>`)
	s := doc.String()
	if !strings.Contains(s, "<!-- a comment -->") || !strings.Contains(s, "<?target data?>") {
		t.Errorf("serialized = %q", s)
	}
	re, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, c := range re.Root().Children {
		kinds = append(kinds, c.Kind)
	}
	if len(kinds) != 2 || kinds[0] != CommentNode || kinds[1] != ProcInstNode {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestAttrNodes(t *testing.T) {
	e := MustParse(`<a x="1" xmlns:p="u" p:y="2"/>`).Root()
	attrs := e.AttrNodes()
	if len(attrs) != 2 {
		t.Fatalf("attr nodes = %d (xmlns must be excluded)", len(attrs))
	}
	if attrs[0].Kind != AttrNode || attrs[0].Parent != e {
		t.Errorf("attr node = %+v", attrs[0])
	}
	if attrs[0].TextContent() != "1" {
		t.Errorf("attr text = %q", attrs[0].TextContent())
	}
}

func TestRootCases(t *testing.T) {
	if (*Node)(nil).Root() != nil {
		t.Error("nil root")
	}
	el := NewElement("", "x")
	if el.Root() != el {
		t.Error("element is its own root")
	}
	if NewText("t").Root() != nil {
		t.Error("text has no root")
	}
	doc := NewDocument()
	doc.Append(NewComment("c"))
	if doc.Root() != nil {
		t.Error("document without element has no root")
	}
}

func TestFirstChildElementWildcards(t *testing.T) {
	doc := MustParse(`<r><a xmlns="u1"/><a/></r>`)
	r := doc.Root()
	if n := r.FirstChildElement("*", "a"); n == nil || n.Name.Space != "u1" {
		t.Errorf("wildcard first = %v", n)
	}
	if n := r.FirstChildElement("", "a"); n == nil || n.Name.Space != "" {
		t.Errorf("no-ns first = %v", n)
	}
	if got := len(r.ChildElementsNamed("*", "a")); got != 2 {
		t.Errorf("wildcard named = %d", got)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	e := NewElement("", "x")
	e.SetAttr("", "k", "1")
	e.SetAttr("", "k", "2")
	if len(e.Attrs) != 1 || e.AttrValue("", "k") != "2" {
		t.Errorf("attrs = %v", e.Attrs)
	}
}

func TestTextContentNilSafe(t *testing.T) {
	if (*Node)(nil).TextContent() != "" {
		t.Error("nil TextContent")
	}
	if (Attr{Name: Name{Space: "xmlns", Local: "p"}}).IsNamespaceDecl() != true {
		t.Error("xmlns:p is a decl")
	}
	if (Attr{Name: Name{Local: "xmlns"}}).IsNamespaceDecl() != true {
		t.Error("xmlns is a decl")
	}
	if (Attr{Name: Name{Local: "x"}}).IsNamespaceDecl() {
		t.Error("x is not a decl")
	}
}

func TestPrefixRebinding(t *testing.T) {
	// The same prefix bound to different URIs at different depths.
	doc := MustParse(`<p:a xmlns:p="u1"><p:b xmlns:p="u2"/><p:c/></p:a>`)
	root := doc.Root()
	if root.Name.Space != "u1" {
		t.Fatalf("root ns = %q", root.Name.Space)
	}
	kids := root.ChildElements()
	if kids[0].Name.Space != "u2" || kids[1].Name.Space != "u1" {
		t.Fatalf("child spaces = %q, %q", kids[0].Name.Space, kids[1].Name.Space)
	}
	// Round trip preserves the resolution.
	re := MustParse(doc.String())
	if !Equal(doc, re) {
		t.Errorf("rebinding round trip:\n%s\n%s", doc, re)
	}
}

func TestCloneNil(t *testing.T) {
	if (*Node)(nil).Clone() != nil {
		t.Error("nil Clone")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad XML")
		}
	}()
	MustParse("<unclosed")
}
