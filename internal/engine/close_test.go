package engine_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bindings"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
)

// slowActionGRH wires a GRH whose action service sleeps briefly and
// counts executions, so drain tests have real in-flight work to wait on.
func slowActionGRH(t *testing.T, delay time.Duration) (*grh.GRH, func() int) {
	t.Helper()
	g := grh.New()
	var mu sync.Mutex
	executed := 0
	if err := g.Register(grh.Descriptor{
		Language:       services.ActionNS,
		Kinds:          []ruleml.ComponentKind{ruleml.ActionComponent},
		FrameworkAware: true,
		Local: grh.ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
			time.Sleep(delay)
			mu.Lock()
			executed += req.Bindings.Size()
			mu.Unlock()
			return &protocol.Answer{}, nil
		}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(grh.Descriptor{
		Language:       services.MatcherNS,
		Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
		FrameworkAware: true,
		Local: grh.ServiceFunc(func(*protocol.Request) (*protocol.Answer, error) {
			return &protocol.Answer{}, nil
		}),
	}); err != nil {
		t.Fatal(err)
	}
	g.SetDefault(ruleml.EventComponent, services.MatcherNS)
	g.SetDefault(ruleml.ActionComponent, services.ActionNS)
	return g, func() int {
		mu.Lock()
		defer mu.Unlock()
		return executed
	}
}

func simpleRule(t *testing.T, id string) *ruleml.Rule {
	t.Helper()
	return ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="` + id + `">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`)
}

// TestCloseDrainsUnderLoad: Close must let every admitted instance run
// to completion while concurrent feeders keep hammering OnDetection, and
// every detection must be either fully evaluated or cleanly dropped —
// never half-run.
func TestCloseDrainsUnderLoad(t *testing.T) {
	g, executed := slowActionGRH(t, 200*time.Microsecond)
	e := engine.New(g, engine.WithWorkers(4))
	if err := e.Register(simpleRule(t, "drain")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				e.OnDetection(&protocol.Answer{
					RuleID: "drain",
					Rows: []protocol.AnswerRow{
						{Tuple: bindings.MustTuple("X", bindings.Num(float64(w*1000 + i)))},
					},
				})
			}
		}(w)
	}
	// Close while the feeders are still publishing.
	time.Sleep(2 * time.Millisecond)
	e.Close()
	wg.Wait()

	st := e.Stats()
	if st.InstancesCreated == 0 {
		t.Fatal("no instances admitted before Close — test proves nothing")
	}
	if st.InstancesCompleted+st.InstancesDied != st.InstancesCreated {
		t.Fatalf("drain incomplete: created=%d completed=%d died=%d",
			st.InstancesCreated, st.InstancesCompleted, st.InstancesDied)
	}
	if got := executed(); got != st.InstancesCompleted {
		t.Errorf("actions executed = %d, want %d (one per completed instance)", got, st.InstancesCompleted)
	}

	// Detections after Close are dropped, not queued.
	before := e.Stats().InstancesCreated
	e.OnDetection(&protocol.Answer{
		RuleID: "drain",
		Rows:   []protocol.AnswerRow{{Tuple: bindings.MustTuple("X", bindings.Num(1))}},
	})
	if after := e.Stats().InstancesCreated; after != before {
		t.Errorf("detection after Close created an instance (%d → %d)", before, after)
	}
}

// TestCloseStopsWorkerGoroutines: the worker pool's goroutines must exit
// on Close instead of leaking forever (the jobs channel used to never be
// closed).
func TestCloseStopsWorkerGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	g, _ := slowActionGRH(t, 0)
	e := engine.New(g, engine.WithWorkers(8))
	if err := e.Register(simpleRule(t, "leak")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.OnDetection(&protocol.Answer{
			RuleID: "leak",
			Rows:   []protocol.AnswerRow{{Tuple: bindings.MustTuple("X", bindings.Num(float64(i)))}},
		})
	}
	e.Close()

	// The 8 workers must be gone; poll briefly to let the scheduler
	// retire them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close — worker pool leaked", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseIdempotentAndConcurrent: double and concurrent Close calls
// must all return only after the drain finished.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	g, _ := slowActionGRH(t, 100*time.Microsecond)
	e := engine.New(g, engine.WithWorkers(2))
	if err := e.Register(simpleRule(t, "twice")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.OnDetection(&protocol.Answer{
			RuleID: "twice",
			Rows:   []protocol.AnswerRow{{Tuple: bindings.MustTuple("X", bindings.Num(float64(i)))}},
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
			st := e.Stats()
			if st.InstancesCompleted+st.InstancesDied != st.InstancesCreated {
				t.Errorf("Close returned before drain: %+v", st)
			}
		}()
	}
	wg.Wait()
	e.Close() // and once more, synchronously
}

// TestCloseSynchronousEngine: Close on a workerless engine still gates
// OnDetection and returns immediately.
func TestCloseSynchronousEngine(t *testing.T) {
	g, executed := slowActionGRH(t, 0)
	e := engine.New(g)
	if err := e.Register(simpleRule(t, "sync")); err != nil {
		t.Fatal(err)
	}
	e.OnDetection(&protocol.Answer{
		RuleID: "sync",
		Rows:   []protocol.AnswerRow{{Tuple: bindings.MustTuple("X", bindings.Num(1))}},
	})
	e.Close()
	e.OnDetection(&protocol.Answer{
		RuleID: "sync",
		Rows:   []protocol.AnswerRow{{Tuple: bindings.MustTuple("X", bindings.Num(2))}},
	})
	if got := executed(); got != 1 {
		t.Errorf("executed = %d, want 1 (post-Close detection dropped)", got)
	}
	if st := e.Stats(); st.InstancesCreated != 1 {
		t.Errorf("stats = %+v", st)
	}
}
