package engine

// Regression tests for extendWithResults: answer rows must be matched to
// input tuples by Tuple.Equal, not by projKey alone — Value.Key collides
// by design (XML fragments key by text content), and services may echo
// fewer variables than they were sent.

import (
	"testing"

	"repro/internal/bindings"
	"repro/internal/protocol"
	"repro/internal/xmltree"
)

func resultStrings(rel *bindings.Relation, variable string) map[string]string {
	out := map[string]string{}
	for _, t := range rel.Tuples() {
		key := ""
		for _, v := range t.Vars() {
			if v != variable {
				key += v + "=" + t[v].String() + ";"
			}
		}
		out[key] += t[variable].AsString() + ","
	}
	return out
}

// TestExtendWithResultsKeyCollision: two input tuples whose values share
// a join key (equal text content, different XML structure) must each
// receive their own results — key-only matching hands both tuples the
// merged result list.
func TestExtendWithResultsKeyCollision(t *testing.T) {
	fragA := bindings.Fragment(xmltree.MustParse(`<m><inner/>x</m>`).Root())
	fragB := bindings.Fragment(xmltree.MustParse(`<n>x</n>`).Root())
	if fragA.Key() != fragB.Key() {
		t.Fatal("test premise broken: fragments no longer share a join key")
	}
	tA := bindings.Tuple{"M": fragA}
	tB := bindings.Tuple{"M": fragB}
	full := bindings.NewRelation(tA, tB)

	a := &protocol.Answer{Rows: []protocol.AnswerRow{
		{Tuple: tA, Results: []bindings.Value{bindings.Str("for-A")}},
		{Tuple: tB, Results: []bindings.Value{bindings.Str("for-B")}},
	}}
	out := extendWithResults(full, full, a, "R")
	if out.Size() != 2 {
		t.Fatalf("extended relation has %d tuples, want 2:\n%s", out.Size(), out)
	}
	for _, tu := range out.Tuples() {
		want := "for-B"
		if xmltree.EqualIgnoringWhitespace(tu["M"].Node(), fragA.Node()) {
			want = "for-A"
		}
		if got := tu["R"].AsString(); got != want {
			t.Errorf("tuple %s bound R=%q, want %q — results crossed over on a key collision", tu, got, want)
		}
	}
}

// TestExtendWithResultsUnechoedBindings: a service that returns results
// without echoing the input bindings (empty answer tuples) must still
// attach them to every input tuple instead of silently dropping the
// relation.
func TestExtendWithResultsUnechoedBindings(t *testing.T) {
	full := bindings.NewRelation(
		bindings.MustTuple("X", bindings.Str("1")),
		bindings.MustTuple("X", bindings.Str("2")),
	)
	a := &protocol.Answer{Rows: []protocol.AnswerRow{
		{Tuple: bindings.Tuple{}, Results: []bindings.Value{bindings.Str("r")}},
	}}
	out := extendWithResults(full, full, a, "R")
	if out.Size() != 2 {
		t.Fatalf("extended relation has %d tuples, want 2 (unechoed results apply to every tuple):\n%s", out.Size(), out)
	}
	for _, tu := range out.Tuples() {
		if got := tu["R"].AsString(); got != "r" {
			t.Errorf("tuple %s bound R=%q, want %q", tu, got, "r")
		}
	}
}

// TestExtendWithResultsPartialEcho: a service echoing only a subset of
// the projected variables attaches its results to exactly the compatible
// input tuples.
func TestExtendWithResultsPartialEcho(t *testing.T) {
	t1 := bindings.MustTuple("X", bindings.Str("a"), "Y", bindings.Str("1"))
	t2 := bindings.MustTuple("X", bindings.Str("a"), "Y", bindings.Str("2"))
	t3 := bindings.MustTuple("X", bindings.Str("b"), "Y", bindings.Str("3"))
	full := bindings.NewRelation(t1, t2, t3)

	a := &protocol.Answer{Rows: []protocol.AnswerRow{
		{Tuple: bindings.MustTuple("X", bindings.Str("a")), Results: []bindings.Value{bindings.Str("ra")}},
	}}
	out := extendWithResults(full, full, a, "R")
	if out.Size() != 2 {
		t.Fatalf("extended relation has %d tuples, want 2 (X=a tuples only):\n%s", out.Size(), out)
	}
	for _, tu := range out.Tuples() {
		if tu["X"].AsString() != "a" {
			t.Errorf("tuple %s should have been dropped (no results for X=b)", tu)
		}
		if got := tu["R"].AsString(); got != "ra" {
			t.Errorf("tuple %s bound R=%q, want %q", tu, got, "ra")
		}
	}
}

// TestExtendWithResultsExactEchoUnchanged pins the ordinary path: a
// full-echo answer extends each tuple with exactly its own results.
func TestExtendWithResultsExactEchoUnchanged(t *testing.T) {
	t1 := bindings.MustTuple("X", bindings.Str("1"))
	t2 := bindings.MustTuple("X", bindings.Str("2"))
	full := bindings.NewRelation(t1, t2)
	a := &protocol.Answer{Rows: []protocol.AnswerRow{
		{Tuple: t1, Results: []bindings.Value{bindings.Str("r1a"), bindings.Str("r1b")}},
		{Tuple: t2, Results: []bindings.Value{bindings.Str("r2")}},
	}}
	out := extendWithResults(full, full, a, "R")
	if out.Size() != 3 {
		t.Fatalf("extended relation has %d tuples, want 3:\n%s", out.Size(), out)
	}
	got := resultStrings(out, "R")
	if got[`X="1";`] != "r1a,r1b," && got[`X="1";`] != "r1b,r1a," {
		t.Errorf("X=1 results = %q, want r1a and r1b", got[`X="1";`])
	}
	if got[`X="2";`] != "r2," {
		t.Errorf("X=2 results = %q, want r2", got[`X="2";`])
	}
}
