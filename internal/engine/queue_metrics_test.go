package engine_test

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
)

func newNoopGRH(t *testing.T) *grh.GRH {
	t.Helper()
	g := grh.New()
	noop := grh.ServiceFunc(func(*protocol.Request) (*protocol.Answer, error) {
		return &protocol.Answer{}, nil
	})
	for ns, kind := range map[string]ruleml.ComponentKind{
		services.MatcherNS: ruleml.EventComponent,
		services.ActionNS:  ruleml.ActionComponent,
	} {
		if err := g.Register(grh.Descriptor{
			Language: ns, Kinds: []ruleml.ComponentKind{kind},
			FrameworkAware: true, Local: noop,
		}); err != nil {
			t.Fatal(err)
		}
		g.SetDefault(kind, ns)
	}
	return g
}

// TestWorkerQueueMetrics: the worker pool reports queue depth and
// queue-wait observations, and detections feed the event-stage latency
// histogram.
func TestWorkerQueueMetrics(t *testing.T) {
	hub := obs.NewHub()
	e := engine.New(newNoopGRH(t), engine.WithObs(hub), engine.WithWorkers(2))
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="q">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`)
	if err := e.Register(rule); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		e.OnDetection(&protocol.Answer{RuleID: "q", Rows: []protocol.AnswerRow{
			{Tuple: bindings.MustTuple("X", bindings.Num(float64(i)))},
		}})
	}
	e.Wait()

	wait := hub.Metrics().Histogram("engine_queue_wait_seconds", "", nil)
	if got := wait.Count(); got != n {
		t.Errorf("engine_queue_wait_seconds count = %d, want %d", got, n)
	}
	ev := hub.Metrics().HistogramVec("engine_step_seconds", "", nil, "kind").With("event")
	if got := ev.Count(); got != n {
		t.Errorf("engine_step_seconds{kind=event} count = %d, want %d", got, n)
	}
	// The depth gauge exists and has drained back to a small value.
	depth := hub.Metrics().Gauge("engine_queue_depth", "")
	if d := depth.Value(); d < 0 || d > 8 {
		t.Errorf("engine_queue_depth after drain = %v", d)
	}
	e.Close()
}

// TestEngineStructuredLogging: WithLog emits instance-scoped records
// whose trace_id matches the recorded trace.
func TestEngineStructuredLogging(t *testing.T) {
	hub := obs.NewHub()
	var buf bytes.Buffer
	e := engine.New(newNoopGRH(t), engine.WithObs(hub),
		engine.WithLog(obs.NewLogger(&buf, "json", slog.LevelDebug)))
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="sl">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`)
	if err := e.Register(rule); err != nil {
		t.Fatal(err)
	}
	e.OnDetection(&protocol.Answer{RuleID: "sl", Rows: []protocol.AnswerRow{
		{Tuple: bindings.MustTuple("X", bindings.Str("1"))},
	}})
	e.Wait()

	traces := hub.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	id := traces[0].ID
	out := buf.String()
	for _, msg := range []string{"rule registered", "rule instance created", "action executed", "rule instance completed"} {
		if !strings.Contains(out, msg) {
			t.Errorf("log missing %q:\n%s", msg, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, "rule instance") && !strings.Contains(line, `"trace_id":"`+id+`"`) {
			t.Errorf("instance record without trace_id %q: %s", id, line)
		}
	}
}
