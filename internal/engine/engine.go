// Package engine implements the ECA engine of Section 4: it registers
// rules, submits their event components for detection through the Generic
// Request Handler (Fig. 5), receives detection messages (Fig. 6), creates
// rule instances with the detected variable bindings, and drives each
// instance through its query, test and action components with the
// tuple-of-bindings join semantics of Section 3 (Figs. 7–11).
package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/xmltree"
)

// ErrDuplicateRule reports a Register of an id that is already live.
// Callers replaying rules from durable storage (where a startup rule may
// legitimately collide with a recovered one) match it with errors.Is.
var ErrDuplicateRule = errors.New("already registered")

// ErrBadExpression reports a Register rejected because a component
// expression failed registration-time compilation. The HTTP layer matches
// it with errors.Is to answer 400 (client error in the rule document)
// rather than 422.
var ErrBadExpression = errors.New("component expression does not compile")

// Journal receives durable notifications of rule life-cycle changes; the
// store subsystem implements it to write the write-ahead journal. Both
// methods are called outside the engine lock, after the change took
// effect. A nil Journal is never called.
type Journal interface {
	// RuleRegistered reports a successful registration: the assigned rule
	// id, the original ECA-ML document (nil when the rule was built
	// programmatically) and the registration time.
	RuleRegistered(id string, doc *xmltree.Node, at time.Time)
	// RuleUnregistered reports a withdrawal.
	RuleUnregistered(id string)
}

// Logger receives human-readable evaluation traces; the ecabench harness
// uses it to print the message flows of the paper's figures.
type Logger interface {
	Logf(format string, args ...any)
}

// LoggerFunc adapts a function to the Logger interface.
type LoggerFunc func(format string, args ...any)

// Logf calls f.
func (f LoggerFunc) Logf(format string, args ...any) { f(format, args...) }

// Stats counts engine activity.
type Stats struct {
	RulesRegistered    int
	InstancesCreated   int
	InstancesCompleted int
	InstancesDied      int // relation became empty before the actions
	ActionRuns         int // action component dispatches (per instance per action)
}

// Engine is the ECA engine. Safe for concurrent use; rule instances run
// synchronously on the goroutine delivering the detection message, so a
// single-threaded event feed yields deterministic evaluation order.
type Engine struct {
	grh      *grh.GRH
	analyzer ruleml.Analyzer
	replyTo  string
	tenant   string // wire form of the owning tenant; "" = default
	log      Logger
	slog     *obs.Logger
	hub      *obs.Hub
	tr       *obs.Recorder
	met      metrics
	journal  Journal

	mu     sync.Mutex
	rules  map[string]*RuleState
	seq    int
	stats  Stats
	closed bool

	// Worker pool for asynchronous instance evaluation (WithWorkers).
	jobs      chan instanceJob
	inFlight  sync.WaitGroup
	workers   sync.WaitGroup
	closeOnce sync.Once
}

type instanceJob struct {
	rs  *RuleState
	rel *bindings.Relation
	tr  *obs.Instance
	lc  lifecycle
	enq time.Time // when the job entered the queue, for the wait histogram
}

// lifecycle carries the admission-side timestamps of the event behind a
// rule instance, threaded from POST /events through detection to the
// action ack so the stage histograms cover the whole pipeline. All
// fields are zero for instances not born from an admitted event
// (recovery replay, act:raise republication, periodic SNOOP
// occurrences), which are excluded from lifecycle accounting.
type lifecycle struct {
	admitted  time.Time // admission layer accepted the event
	published time.Time // event stream published it
	detected  time.Time // detection answer reached the engine
}

func (lc lifecycle) observable() bool {
	return !lc.admitted.IsZero() && !lc.published.IsZero() && !lc.detected.IsZero()
}

// metrics are the engine's observability instruments; all nil-safe, so an
// uninstrumented engine pays only nil receiver checks on the hot path.
type metrics struct {
	instances   *obs.CounterVec   // engine_instances{state=created|completed|died}
	rules       *obs.Gauge        // engine_rules{tenant}, bound to this engine's tenant
	detections  *obs.Counter      // engine_detections_total
	actionRuns  *obs.Counter      // engine_action_runs_total
	instanceSec *obs.Histogram    // engine_instance_seconds
	stepSec     *obs.HistogramVec // engine_step_seconds{kind}
	queueDepth  *obs.Gauge        // engine_queue_depth{tenant}, bound to this engine's tenant
	queueWait   *obs.Histogram    // engine_queue_wait_seconds
	lifecycle   *obs.HistogramVec // event_lifecycle_seconds{stage,tenant}
	e2e         *obs.HistogramVec // event_e2e_seconds{rule,tenant}
}

// newMetrics registers the engine instruments. Counters are shared across
// per-tenant engines (increments are additive), but the gauges would
// clobber one another — each Set would overwrite the other tenants'
// values — so engine_rules and engine_queue_depth carry a tenant label and
// each engine binds its own child. The tenant label holds the wire form:
// empty for the default tenant, keeping single-tenant scrapes unchanged.
func newMetrics(h *obs.Hub, tenant string) metrics {
	r := h.Metrics()
	return metrics{
		instances:   r.CounterVec("engine_instances", "Rule instances by life-cycle state (created, completed, died).", "state"),
		rules:       r.GaugeVec("engine_rules", "Currently registered rules by tenant (empty label = default tenant).", "tenant").With(tenant),
		detections:  r.Counter("engine_detections_total", "Event detection messages received."),
		actionRuns:  r.Counter("engine_action_runs_total", "Action component dispatches."),
		instanceSec: r.Histogram("engine_instance_seconds", "End-to-end rule-instance evaluation latency (detection to last action).", nil),
		stepSec:     r.HistogramVec("engine_step_seconds", "Per-component evaluation latency by component kind.", nil, "kind"),
		queueDepth:  r.GaugeVec("engine_queue_depth", "Rule instances waiting in the worker-pool queue, by tenant (empty label = default tenant).", "tenant").With(tenant),
		queueWait:   r.Histogram("engine_queue_wait_seconds", "Time rule instances spend queued before a worker picks them up.", nil),
		lifecycle:   r.HistogramVec("event_lifecycle_seconds", "Admitted-event latency by lifecycle stage: admit (admission to stream publish), detect (publish to engine receipt), dispatch (receipt through the query/test steps, queue wait included), action (action dispatch to ack). Completed instances only; the stages are contiguous, so their sums reconcile with event_e2e_seconds.", nil, "stage", "tenant"),
		e2e:         r.HistogramVec("event_e2e_seconds", "End-to-end admitted-event latency (admission to action ack) by rule. Completed instances only.", nil, "rule", "tenant"),
	}
}

// RuleState is the engine's bookkeeping for one registered rule.
type RuleState struct {
	Rule *ruleml.Rule
	// Registered is when the rule was registered (restored from the
	// journal after crash recovery).
	Registered time.Time
	// Firings counts completed instances (actions executed).
	Firings int
	// Died counts instances whose relation became empty.
	Died int
}

// RuleInfo is a race-free snapshot of one rule's bookkeeping, as served
// by GET /engine/rules.
type RuleInfo struct {
	ID         string    `json:"id"`
	Registered time.Time `json:"registered"`
	Firings    int       `json:"firings"`
	Died       int       `json:"died"`
	// Owner is the cluster node holding the rule; set by the serving layer
	// on clustered deployments, absent (omitted) on single-node ones.
	Owner string `json:"owner,omitempty"`
	// Tenant is the namespace the rule belongs to, in wire form: absent
	// (omitted) for the default tenant, so single-tenant listings are
	// byte-identical to pre-tenant ones.
	Tenant string `json:"tenant,omitempty"`
}

// Option configures the engine.
type Option func(*Engine)

// WithAnalyzer overrides the variable analyzer used for rule validation.
func WithAnalyzer(a ruleml.Analyzer) Option { return func(e *Engine) { e.analyzer = a } }

// WithReplyTo sets the detection callback URL passed to remote event
// services on registration.
func WithReplyTo(url string) Option { return func(e *Engine) { e.replyTo = url } }

// WithTenant scopes the engine to one tenant's rule space: the tenant
// (in wire form — empty string means the default tenant) is stamped onto
// every GRH dispatch, raised event, rule listing, trace and per-tenant
// metric the engine produces. The zero value preserves pre-tenant
// behaviour byte-for-byte.
func WithTenant(tenant string) Option { return func(e *Engine) { e.tenant = tenant } }

// WithLogger installs an evaluation trace logger.
func WithLogger(l Logger) Option { return func(e *Engine) { e.log = l } }

// WithLog installs a structured logger: engine life-cycle events are
// emitted as leveled records carrying trace_id and rule fields, alongside
// (not replacing) the human-readable Logger traces the bench figures
// replay. A nil logger is a no-op.
func WithLog(l *obs.Logger) Option { return func(e *Engine) { e.slog = l } }

// WithObs installs the observability hub: engine counters and histograms
// go to its metrics registry, rule-instance spans to its trace recorder.
func WithObs(h *obs.Hub) Option { return func(e *Engine) { e.hub = h } }

// WithJournal installs the durable journal hook: every successful
// Register/Unregister is reported to j after it takes effect, so a
// restarted engine can recover its rule set (see internal/store).
func WithJournal(j Journal) Option { return func(e *Engine) { e.journal = j } }

// WithWorkers evaluates rule instances asynchronously on n worker
// goroutines instead of on the detection-delivering goroutine. Useful when
// component services are remote: instances then overlap their HTTP round
// trips. Call Wait to drain in-flight instances, Close to drain and stop
// the workers for good.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			return
		}
		e.jobs = make(chan instanceJob, 4*n)
		e.workers.Add(n)
		for i := 0; i < n; i++ {
			go func() {
				defer e.workers.Done()
				for j := range e.jobs {
					e.met.queueDepth.Set(float64(len(e.jobs)))
					e.met.queueWait.Observe(obs.Since(j.enq))
					e.runInstance(j.rs, j.rel, j.tr, j.lc)
					e.inFlight.Done()
				}
			}()
		}
	}
}

// New builds an engine over a Generic Request Handler.
func New(g *grh.GRH, opts ...Option) *Engine {
	e := &Engine{grh: g, rules: map[string]*RuleState{}}
	for _, o := range opts {
		o(e)
	}
	e.met = newMetrics(e.hub, e.tenant)
	e.tr = e.hub.Traces()
	return e
}

// Wait blocks until every instance accepted so far has finished evaluating.
func (e *Engine) Wait() { e.inFlight.Wait() }

// QueueDepth returns the number of rule instances waiting in the
// worker-pool queue (always 0 for synchronous engines). The health
// endpoint reports it alongside admission pressure.
func (e *Engine) QueueDepth() int {
	if e == nil || e.jobs == nil {
		return 0
	}
	return len(e.jobs)
}

// Close shuts the engine down gracefully: detections arriving after
// Close are dropped, every in-flight rule instance (synchronous or on
// the worker pool) drains to completion, and the worker goroutines exit
// so nothing leaks. Safe to call multiple times and concurrently with
// OnDetection; concurrent callers all block until the drain finishes.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.closeOnce.Do(func() {
		e.inFlight.Wait()
		if e.jobs != nil {
			close(e.jobs)
			e.workers.Wait()
		}
	})
}

// admitInstance reserves one in-flight instance slot unless the engine
// is closed; the reservation is released when the instance finishes
// evaluating. Reserving under the same lock that Close takes makes the
// closed-check/Add pair atomic, so Close's drain observes every admitted
// instance and no instance is admitted after the drain began.
func (e *Engine) admitInstance() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.stats.InstancesCreated++
	e.inFlight.Add(1)
	return true
}

func (e *Engine) logf(format string, args ...any) {
	if e.log != nil {
		e.log.Logf(format, args...)
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Rules returns the registered rule ids, sorted.
func (e *Engine) Rules() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.rules))
	for id := range e.rules {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RuleState returns the bookkeeping for a rule id.
func (e *Engine) RuleState(id string) (*RuleState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rules[id]
	return rs, ok
}

// RuleInfos returns a snapshot of every registered rule's bookkeeping,
// sorted by id.
func (e *Engine) RuleInfos() []RuleInfo {
	e.mu.Lock()
	out := make([]RuleInfo, 0, len(e.rules))
	for id, rs := range e.rules {
		out = append(out, RuleInfo{ID: id, Registered: rs.Registered, Firings: rs.Firings, Died: rs.Died, Tenant: e.tenant})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegisteredRules returns the parsed rules currently registered, sorted by
// id — the cluster layer reads them to advertise this node's event
// vocabulary. The *ruleml.Rule values are shared, not copied: callers must
// treat them as read-only.
func (e *Engine) RegisteredRules() []*ruleml.Rule {
	e.mu.Lock()
	out := make([]*ruleml.Rule, 0, len(e.rules))
	for _, rs := range e.rules {
		out = append(out, rs.Rule)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetRegistered back-dates a rule's registration time; crash recovery uses
// it to restore the original registration instant from the journal.
func (e *Engine) SetRegistered(id string, at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rs, ok := e.rules[id]; ok {
		rs.Registered = at
	}
}

// Register validates the rule and registers its event component with the
// appropriate detection service via the GRH (Fig. 5). Rules without an id
// are assigned rule-N.
func (e *Engine) Register(rule *ruleml.Rule) error {
	if err := ruleml.Validate(rule, e.analyzer); err != nil {
		return err
	}
	// Compile-once: warm the expression cache and reject rules whose
	// component expressions do not compile, so the failure surfaces here
	// (a 400 naming the component) instead of on every matching event.
	if err := services.PrecompileRule(rule); err != nil {
		return fmt.Errorf("engine: rule %q: %w: %w", rule.ID, ErrBadExpression, err)
	}
	e.mu.Lock()
	if rule.ID == "" {
		// Skip ids already taken — a recovered rule set may occupy
		// rule-N slots from a previous run of the sequence.
		for {
			e.seq++
			rule.ID = fmt.Sprintf("rule-%d", e.seq)
			if _, taken := e.rules[rule.ID]; !taken {
				break
			}
		}
	}
	if _, dup := e.rules[rule.ID]; dup {
		e.mu.Unlock()
		return fmt.Errorf("engine: rule %q %w", rule.ID, ErrDuplicateRule)
	}
	registered := time.Now()
	e.rules[rule.ID] = &RuleState{Rule: rule, Registered: registered}
	e.stats.RulesRegistered++
	e.met.rules.Set(float64(len(e.rules)))
	e.mu.Unlock()

	e.logf("register rule %s: submitting event component %s (language %s) to GRH",
		rule.ID, rule.Event.ID, orDefault(rule.Event.Language, "atomic"))
	e.slog.Info("rule registered", obs.FieldRule, rule.ID,
		obs.FieldComponent, rule.Event.ID, "language", orDefault(rule.Event.Language, "atomic"))
	_, err := e.grh.Dispatch(protocol.RegisterEvent, grh.Component{
		Rule:     rule.ID,
		Comp:     rule.Event,
		Bindings: bindings.NewRelation(),
		ReplyTo:  e.replyTo,
		Tenant:   e.tenant,
	})
	if err != nil {
		e.mu.Lock()
		delete(e.rules, rule.ID)
		e.stats.RulesRegistered--
		e.met.rules.Set(float64(len(e.rules)))
		e.mu.Unlock()
		e.slog.Error("rule registration failed", obs.FieldRule, rule.ID, "error", err.Error())
		return fmt.Errorf("engine: registering event component of %s: %w", rule.ID, err)
	}
	if e.journal != nil {
		e.journal.RuleRegistered(rule.ID, rule.Doc, registered)
	}
	return nil
}

// Unregister withdraws a rule and its event registration.
func (e *Engine) Unregister(id string) error {
	e.mu.Lock()
	rs, ok := e.rules[id]
	if ok {
		delete(e.rules, id)
		e.met.rules.Set(float64(len(e.rules)))
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("engine: no rule %q", id)
	}
	if e.journal != nil {
		e.journal.RuleUnregistered(id)
	}
	_, err := e.grh.Dispatch(protocol.UnregisterEvent, grh.Component{
		Rule:     id,
		Comp:     rs.Rule.Event,
		Bindings: bindings.NewRelation(),
		Tenant:   e.tenant,
	})
	return err
}

// OnDetection is the entry point for event detection messages (Fig. 6):
// the local sink of in-process event services, and the HTTP callback
// handler target in distributed deployments. One rule instance is created
// per answer tuple — and, when the event component binds an
// <eca:variable>, one per functional result of each tuple, per the
// Fig. 8 semantics. Detections arriving after Close are dropped.
func (e *Engine) OnDetection(a *protocol.Answer) {
	e.met.detections.Inc()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.logf("detection for rule %q dropped: engine closed", a.RuleID)
		return
	}
	rs, ok := e.rules[a.RuleID]
	e.mu.Unlock()
	if !ok {
		e.logf("detection for unknown rule %q dropped", a.RuleID)
		return
	}
	lc := lifecycle{admitted: a.AdmittedAt, published: a.PublishedAt, detected: time.Now()}
	for _, row := range a.Rows {
		tuples := []bindings.Tuple{row.Tuple}
		if rs.Rule.Event.Variable != "" && len(row.Results) > 0 {
			// Fig. 8 functional-result semantics: every result yields
			// its own binding of the event variable, hence its own rule
			// instance — not just the first result.
			tuples = tuples[:0]
			for _, res := range row.Results {
				t := row.Tuple.Clone()
				t[rs.Rule.Event.Variable] = res
				tuples = append(tuples, t)
			}
		}
		for _, tuple := range tuples {
			evStart := time.Now()
			if !e.admitInstance() {
				e.logf("rule %s: detection dropped: engine closed", a.RuleID)
				e.slog.Warn("detection dropped", obs.FieldRule, a.RuleID, "reason", "closed")
				return
			}
			e.met.instances.With("created").Inc()
			tr := e.tr.Begin(a.RuleID)
			if e.tenant != "" {
				tr.SetTenant(e.tenant)
			}
			tr.AddSpan(obs.Span{
				Stage:     string(ruleml.EventComponent),
				Component: a.Component,
				Language:  rs.Rule.Event.Language,
				Mode:      "detection",
				TuplesOut: 1,
				Start:     evStart,
			})
			e.logf("rule %s: event %s detected, instance created with %s",
				a.RuleID, a.Component, tuple)
			e.slog.Info("rule instance created", obs.FieldTraceID, tr.ID(),
				obs.FieldRule, a.RuleID, obs.FieldComponent, a.Component)
			// The "event" step latency is the engine-side cost of turning
			// one detected tuple into an admitted rule instance; the
			// detection itself happened in the event service.
			e.met.stepSec.With(string(ruleml.EventComponent)).Observe(obs.Since(evStart))
			rel := bindings.NewRelation(tuple)
			if e.jobs != nil {
				e.jobs <- instanceJob{rs, rel, tr, lc, time.Now()}
				e.met.queueDepth.Set(float64(len(e.jobs)))
				continue
			}
			e.runInstance(rs, rel, tr, lc)
			e.inFlight.Done()
		}
	}
}

// runInstance drives one rule instance through its steps and actions.
func (e *Engine) runInstance(rs *RuleState, rel *bindings.Relation, tr *obs.Instance, lc lifecycle) {
	rule := rs.Rule
	start := time.Now()
	il := e.slog.With(obs.FieldTraceID, tr.ID(), obs.FieldRule, rule.ID)
	for _, step := range rule.Steps {
		sp := obs.Span{
			Stage:     string(step.Kind),
			Component: step.ID,
			Language:  step.Language,
			Mode:      "grh",
			TuplesIn:  rel.Size(),
			Start:     time.Now(),
		}
		if step.Kind == ruleml.TestComponent && e.isLocalTest(step) {
			sp.Mode = "local"
		}
		next, err := e.evalStep(rule, step, rel, tr, &sp)
		sp.Duration = time.Since(sp.Start)
		e.met.stepSec.With(string(step.Kind)).Observe(sp.Duration.Seconds())
		if err != nil {
			sp.Err = err.Error()
			tr.AddSpan(sp)
			e.logf("rule %s: %s failed: %v — instance aborted", rule.ID, step.ID, err)
			il.Error("step failed", obs.FieldComponent, step.ID, "error", err.Error())
			e.died(rs, tr, start, il)
			return
		}
		rel = next
		sp.TuplesOut = rel.Size()
		tr.AddSpan(sp)
		e.logf("rule %s: after %s: %d tuple(s)", rule.ID, step.ID, rel.Size())
		il.Debug("step evaluated", obs.FieldComponent, step.ID,
			"kind", string(step.Kind), "tuples", rel.Size())
		if rel.Empty() {
			e.logf("rule %s: relation empty after %s — instance eliminated", rule.ID, step.ID)
			e.died(rs, tr, start, il)
			return
		}
	}
	stepsDone := time.Now()
	for _, action := range rule.Actions {
		sp := obs.Span{
			Stage:     string(ruleml.ActionComponent),
			Component: action.ID,
			Language:  action.Language,
			Mode:      "grh",
			TuplesIn:  rel.Size(),
			Start:     time.Now(),
		}
		answer, err := e.grh.Dispatch(protocol.Action, grh.Component{
			Rule:     rule.ID,
			Comp:     action,
			Bindings: rel,
			Trace:    tr,
			Tenant:   e.tenant,
		})
		sp.Duration = time.Since(sp.Start)
		e.met.stepSec.With(string(ruleml.ActionComponent)).Observe(sp.Duration.Seconds())
		e.met.actionRuns.Inc()
		e.mu.Lock()
		e.stats.ActionRuns++
		e.mu.Unlock()
		if err != nil {
			sp.Err = err.Error()
			tr.AddSpan(sp)
			e.logf("rule %s: action %s failed: %v", rule.ID, action.ID, err)
			il.Error("action failed", obs.FieldComponent, action.ID, "error", err.Error())
			e.died(rs, tr, start, il)
			return
		}
		sp.TuplesOut = rel.Size()
		sp.Children = serverSpans(answer)
		tr.AddSpan(sp)
		e.logf("rule %s: action %s executed for %d tuple(s)", rule.ID, action.ID, rel.Size())
		il.Debug("action executed", obs.FieldComponent, action.ID, "tuples", rel.Size())
	}
	ack := time.Now()
	e.mu.Lock()
	rs.Firings++
	e.stats.InstancesCompleted++
	e.mu.Unlock()
	e.met.instances.With("completed").Inc()
	e.met.instanceSec.Observe(ack.Sub(start).Seconds())
	e.observeLifecycle(rule.ID, tr, lc, stepsDone, ack)
	tr.Finish("completed")
	il.Info("rule instance completed", "seconds", ack.Sub(start).Seconds())
}

// observeLifecycle records the admit→action stage histograms of a
// completed instance and attaches a lifecycle span (one child per
// stage) to its trace, making the trace id the exemplar that explains
// the histogram's tail. The four stages are contiguous — admit
// (admission→publish), detect (publish→engine receipt), dispatch
// (receipt→last step, worker-queue wait included) and action
// (steps→ack) — so their sums reconcile with event_e2e_seconds.
// Negative spans can only arise from wall-clock skew on cross-node
// detections and are clamped to zero.
func (e *Engine) observeLifecycle(ruleID string, tr *obs.Instance, lc lifecycle, stepsDone, ack time.Time) {
	if !lc.observable() {
		return
	}
	stages := [...]struct {
		name       string
		start, end time.Time
	}{
		{"admit", lc.admitted, lc.published},
		{"detect", lc.published, lc.detected},
		{"dispatch", lc.detected, stepsDone},
		{"action", stepsDone, ack},
	}
	id := tr.ID()
	span := obs.Span{
		Stage:    "lifecycle",
		Mode:     "engine",
		Start:    lc.admitted,
		Duration: maxDuration(0, ack.Sub(lc.admitted)),
	}
	for _, s := range stages {
		d := maxDuration(0, s.end.Sub(s.start))
		e.met.lifecycle.With(s.name, e.tenant).ObserveExemplar(d.Seconds(), id)
		span.Children = append(span.Children, obs.Span{Stage: s.name, Mode: "engine", Start: s.start, Duration: d})
	}
	e.met.e2e.With(ruleID, e.tenant).ObserveExemplar(span.Duration.Seconds(), id)
	tr.AddSpan(span)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// serverSpans converts the service-side trace piggybacked on an answer
// (the log:trace element) into child spans of the client-side dispatch
// span. Answers from services that do not emit log:trace yield nil.
func serverSpans(a *protocol.Answer) []obs.Span {
	if a == nil || len(a.Trace) == 0 {
		return nil
	}
	out := make([]obs.Span, 0, len(a.Trace))
	for _, s := range a.Trace {
		out = append(out, obs.Span{
			Stage:     s.Phase,
			Mode:      "server",
			TuplesIn:  s.TuplesIn,
			TuplesOut: s.TuplesOut,
			Start:     s.Start,
			Duration:  s.Duration,
		})
	}
	return out
}

func (e *Engine) died(rs *RuleState, tr *obs.Instance, start time.Time, il *obs.Logger) {
	e.mu.Lock()
	rs.Died++
	e.stats.InstancesDied++
	e.mu.Unlock()
	e.met.instances.With("died").Inc()
	e.met.instanceSec.Observe(time.Since(start).Seconds())
	tr.Finish("died")
	il.Info("rule instance died", "seconds", time.Since(start).Seconds())
}

// evalStep evaluates one query or test component against the instance
// relation. tr rides along on the dispatch so the GRH can propagate the
// instance's trace context to remote services; when the service answers
// with its own phase spans, they are stitched into sp as children.
func (e *Engine) evalStep(rule *ruleml.Rule, step ruleml.Component, rel *bindings.Relation, tr *obs.Instance, sp *obs.Span) (*bindings.Relation, error) {
	if step.Kind == ruleml.TestComponent && e.isLocalTest(step) {
		// Section 4.5: the test component is in general evaluated locally.
		return services.EvalTest(step.Text, rel)
	}
	// Only the relevant bindings travel to the service (Section 4.4): the
	// variables the component's expression references.
	analyze := e.analyzer
	if analyze == nil {
		analyze = ruleml.DefaultAnalyzer
	}
	uses := analyze(step).Uses
	input := rel.Project(uses...)
	kind := protocol.Query
	if step.Kind == ruleml.TestComponent {
		kind = protocol.Test
	}
	answer, err := e.grh.Dispatch(kind, grh.Component{
		Rule:     rule.ID,
		Comp:     step,
		Bindings: input,
		Trace:    tr,
		Tenant:   e.tenant,
	})
	if err != nil {
		return nil, err
	}
	sp.Children = serverSpans(answer)
	if step.Variable != "" {
		// <eca:variable>: each functional result yields a separate
		// binding of the variable, Cartesian with the matching input
		// tuples (Fig. 8).
		return extendWithResults(rel, input, answer, step.Variable), nil
	}
	// Plain component: natural join with the answer tuples (Fig. 11).
	return rel.Join(answer.Relation()), nil
}

func (e *Engine) isLocalTest(step ruleml.Component) bool {
	if !step.Opaque || step.Service != "" {
		return false
	}
	return step.Language == "" || step.Language == services.TestNS
}

// extendWithResults implements the eca:variable semantics: for every tuple
// of the full relation, the functional results produced for its projection
// become separate bindings of the variable.
//
// Answer rows are matched to input tuples by Tuple.Equal over the projected
// variables; the projKey index only narrows the search. Key equality alone
// is not enough — Value.Key collides by design (XML fragments key by text
// content alone), so two different input tuples can share a key, and key-only
// matching would hand one tuple the other's results. Rows echoing fewer
// variables than they were sent (an empty or partial echo) fall back to a
// compatibility scan, attaching their results to every input tuple they
// agree with.
func extendWithResults(full, projected *bindings.Relation, a *protocol.Answer, variable string) *bindings.Relation {
	vars := projected.Vars()
	type echo struct {
		tuple   bindings.Tuple // row tuple projected onto vars
		results []bindings.Value
	}
	buckets := map[string][]*echo{}
	var echoes []*echo
	for _, row := range a.Rows {
		rt := projectTuple(row.Tuple, vars)
		k := projKey(rt, vars)
		var e *echo
		for _, b := range buckets[k] {
			if b.tuple.Equal(rt) {
				e = b
				break
			}
		}
		if e == nil {
			e = &echo{tuple: rt}
			buckets[k] = append(buckets[k], e)
			echoes = append(echoes, e)
		}
		e.results = append(e.results, row.Results...)
	}
	return full.Extend(variable, func(t bindings.Tuple) []bindings.Value {
		proj := projectTuple(t, vars)
		for _, e := range buckets[projKey(proj, vars)] {
			if e.tuple.Equal(proj) {
				return e.results
			}
		}
		var out []bindings.Value
		for _, e := range echoes {
			if len(e.tuple) < len(proj) && e.tuple.Compatible(proj) {
				out = append(out, e.results...)
			}
		}
		return out
	})
}

// projectTuple restricts a tuple to the given variables (absent ones are
// simply missing, as in Relation.Project).
func projectTuple(t bindings.Tuple, vars []string) bindings.Tuple {
	p := make(bindings.Tuple, len(vars))
	for _, v := range vars {
		if val, ok := t[v]; ok {
			p[v] = val
		}
	}
	return p
}

// projKey canonicalizes a tuple's projection onto vars. It uses the same
// \x00/\x01 separator scheme as Tuple.key in internal/bindings, so a
// value containing spaces or brackets can never collide with a
// differently-split tuple (e.g. {A="x B=y"} vs {A="x", B="y"}).
func projKey(t bindings.Tuple, vars []string) string {
	parts := make([]string, 0, len(vars))
	for _, v := range vars {
		if val, ok := t[v]; ok {
			parts = append(parts, v+"\x00"+val.Key())
		}
	}
	return strings.Join(parts, "\x01")
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
