package engine_test

import (
	"sync"
	"testing"

	"repro/internal/bindings"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/system"
	"repro/internal/xmltree"
)

// TestAsyncWorkers: with a worker pool, detections queue and Wait drains.
func TestAsyncWorkers(t *testing.T) {
	g := grh.New()
	var mu sync.Mutex
	executed := 0
	g.Register(grh.Descriptor{
		Language:       services.ActionNS,
		Kinds:          []ruleml.ComponentKind{ruleml.ActionComponent},
		FrameworkAware: true,
		Local: grh.ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
			mu.Lock()
			executed += req.Bindings.Size()
			mu.Unlock()
			return &protocol.Answer{}, nil
		}),
	})
	g.Register(grh.Descriptor{
		Language:       services.MatcherNS,
		Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
		FrameworkAware: true,
		Local: grh.ServiceFunc(func(*protocol.Request) (*protocol.Answer, error) {
			return &protocol.Answer{}, nil
		}),
	})
	g.SetDefault(ruleml.EventComponent, services.MatcherNS)
	g.SetDefault(ruleml.ActionComponent, services.ActionNS)

	e := engine.New(g, engine.WithWorkers(4))
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="async">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`)
	if err := e.Register(rule); err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				e.OnDetection(&protocol.Answer{
					RuleID: "async",
					Rows: []protocol.AnswerRow{
						{Tuple: bindings.MustTuple("X", bindings.Num(float64(w*1000+i)))},
					},
				})
			}
		}(w)
	}
	wg.Wait()
	e.Wait()
	st := e.Stats()
	if st.InstancesCreated != n || st.InstancesCompleted != n {
		t.Fatalf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if executed != n {
		t.Fatalf("executed = %d", executed)
	}
}

// TestAsyncEndToEnd: the full car-rental system with a worker pool produces
// the same results as the synchronous engine.
func TestAsyncEndToEnd(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Swap in an async engine and repoint detection delivery through it.
	async := engine.New(sys.GRH, engine.WithWorkers(8))
	sys.Engine = async
	// NewLocal wired the services' Deliverer to the original engine; build
	// a fresh matcher delivering to the async one.
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="r">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`)
	deliver := &services.Deliverer{Local: async.OnDetection}
	matcher := services.NewEventMatcher(sys.Stream, deliver)
	defer matcher.Close()
	if err := sys.GRH.Register(grh.Descriptor{
		Language:       services.MatcherNS,
		Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
		FrameworkAware: true,
		Local:          matcher,
	}); err != nil {
		t.Fatal(err)
	}
	if err := async.Register(rule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		payload := xmltree.NewElement("http://t/", "e")
		payload.SetAttr("", "x", "1")
		sys.Stream.Publish(eventsNew(payload))
	}
	async.Wait()
	if got := len(sys.Notifier.Sent()); got != 100 {
		t.Fatalf("notifications = %d", got)
	}
}
