package engine

// Regression tests for the Fig. 8 functional-result semantics: these live
// in the engine package (not engine_test) to pin the unexported projKey
// scheme alongside the end-to-end behavior.

import (
	"sync"
	"testing"

	"repro/internal/bindings"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
)

// recorder wires a minimal GRH: a no-op event matcher and an action
// service capturing the relation each action execution received.
func recorderGRH(t *testing.T) (*grh.GRH, func() []*bindings.Relation) {
	t.Helper()
	g := grh.New()
	var mu sync.Mutex
	var got []*bindings.Relation
	if err := g.Register(grh.Descriptor{
		Language:       services.ActionNS,
		Kinds:          []ruleml.ComponentKind{ruleml.ActionComponent},
		FrameworkAware: true,
		Local: grh.ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
			mu.Lock()
			got = append(got, req.Bindings)
			mu.Unlock()
			return &protocol.Answer{}, nil
		}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(grh.Descriptor{
		Language:       services.MatcherNS,
		Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
		FrameworkAware: true,
		Local: grh.ServiceFunc(func(*protocol.Request) (*protocol.Answer, error) {
			return &protocol.Answer{}, nil
		}),
	}); err != nil {
		t.Fatal(err)
	}
	g.SetDefault(ruleml.EventComponent, services.MatcherNS)
	g.SetDefault(ruleml.ActionComponent, services.ActionNS)
	return g, func() []*bindings.Relation {
		mu.Lock()
		defer mu.Unlock()
		return got
	}
}

// TestMultiResultDetection: a detection answer whose row carries several
// functional results must create one rule instance per result (Fig. 8),
// not just bind the first result.
func TestMultiResultDetection(t *testing.T) {
	g, actions := recorderGRH(t)
	e := New(g)
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="multi">
	  <eca:variable name="Evt">
	    <eca:event><t:ping from="$F"/></eca:event>
	  </eca:variable>
	  <eca:action><t:echo f="$F">$Evt</t:echo></eca:action>
	</eca:rule>`)
	if err := e.Register(rule); err != nil {
		t.Fatal(err)
	}
	e.OnDetection(&protocol.Answer{
		RuleID:    "multi",
		Component: "event[1]",
		Rows: []protocol.AnswerRow{{
			Tuple:   bindings.MustTuple("F", bindings.Str("alice")),
			Results: []bindings.Value{bindings.Str("occ1"), bindings.Str("occ2"), bindings.Str("occ3")},
		}},
	})
	st := e.Stats()
	if st.InstancesCreated != 3 || st.InstancesCompleted != 3 {
		t.Fatalf("stats = %+v, want 3 instances (one per functional result)", st)
	}
	seen := map[string]bool{}
	for _, rel := range actions() {
		for _, tup := range rel.Tuples() {
			if tup["F"].AsString() != "alice" {
				t.Errorf("tuple lost the event bindings: %v", tup)
			}
			seen[tup["Evt"].AsString()] = true
		}
	}
	for _, want := range []string{"occ1", "occ2", "occ3"} {
		if !seen[want] {
			t.Errorf("no instance bound Evt=%q (saw %v)", want, seen)
		}
	}
}

// TestProjKeyNoCollision pins the canonical projection key: a value
// containing spaces must not collide with a differently-split tuple.
func TestProjKeyNoCollision(t *testing.T) {
	vars := []string{"A", "B"}
	t1 := bindings.MustTuple("A", bindings.Str("x B=y"))
	t2 := bindings.MustTuple("A", bindings.Str("x"), "B", bindings.Str("y"))
	if projKey(t1, vars) == projKey(t2, vars) {
		t.Fatalf("projKey collision: %q", projKey(t1, vars))
	}
}

// TestExtendWithResultsCollision: functional results must land on
// exactly the input tuples that produced them, even when one tuple's
// value embeds what looks like another tuple's rendering ({A="x B=y"}
// vs {A="x", B="y"}).
func TestExtendWithResultsCollision(t *testing.T) {
	tricky := bindings.MustTuple("A", bindings.Str("x B=y"))
	split := bindings.MustTuple("A", bindings.Str("x"), "B", bindings.Str("y"))
	full := bindings.NewRelation(tricky, split)
	projected := full.Project("A", "B")
	answer := &protocol.Answer{Rows: []protocol.AnswerRow{
		{Tuple: tricky, Results: []bindings.Value{bindings.Str("r-tricky")}},
		{Tuple: split, Results: []bindings.Value{bindings.Str("r-split-1"), bindings.Str("r-split-2")}},
	}}
	out := extendWithResults(full, projected, answer, "V")
	if out.Size() != 3 {
		t.Fatalf("extended relation:\n%s\nwant 3 tuples (1 + 2), got %d — results leaked across colliding keys", out, out.Size())
	}
	for _, tup := range out.Tuples() {
		v := tup["V"].AsString()
		_, isSplit := tup["B"]
		if isSplit && v == "r-tricky" {
			t.Errorf("split tuple received the tricky tuple's result: %v", tup)
		}
		if !isSplit && v != "r-tricky" {
			t.Errorf("tricky tuple received a foreign result: %v", tup)
		}
	}
}
