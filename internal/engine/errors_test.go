package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/system"
	"repro/internal/xmltree"
)

// failingService returns an error for every request of the given kind.
type failingService struct{ kind protocol.RequestKind }

func (f failingService) Handle(req *protocol.Request) (*protocol.Answer, error) {
	if req.Kind == f.kind {
		return nil, fmt.Errorf("synthetic %s failure", f.kind)
	}
	return &protocol.Answer{}, nil
}

func wiring(t *testing.T, queryFails, actionFails bool) (*engine.Engine, *[]string) {
	t.Helper()
	g := grh.New()
	var logLines []string
	ok := grh.ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		return protocol.NewAnswer(req.RuleID, req.Component, req.Bindings), nil
	})
	reg := func(lang string, kind ruleml.ComponentKind, svc grh.Service) {
		if err := g.Register(grh.Descriptor{Language: lang, Kinds: []ruleml.ComponentKind{kind}, FrameworkAware: true, Local: svc}); err != nil {
			t.Fatal(err)
		}
	}
	reg(services.MatcherNS, ruleml.EventComponent, ok)
	if queryFails {
		reg(services.XQueryNS, ruleml.QueryComponent, failingService{protocol.Query})
	} else {
		reg(services.XQueryNS, ruleml.QueryComponent, ok)
	}
	if actionFails {
		reg(services.ActionNS, ruleml.ActionComponent, failingService{protocol.Action})
	} else {
		reg(services.ActionNS, ruleml.ActionComponent, ok)
	}
	g.SetDefault(ruleml.EventComponent, services.MatcherNS)
	g.SetDefault(ruleml.QueryComponent, services.XQueryNS)
	g.SetDefault(ruleml.ActionComponent, services.ActionNS)
	e := engine.New(g, engine.WithLogger(engine.LoggerFunc(func(format string, args ...any) {
		logLines = append(logLines, fmt.Sprintf(format, args...))
	})))
	return e, &logLines
}

const errRule = `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
    xmlns:t="http://t/" xmlns:xq="http://www.semwebtech.org/languages/2006/xquery" id="err">
  <eca:event><t:e x="$X"/></eca:event>
  <eca:query binds="Y"><xq:query>irrelevant($X)</xq:query></eca:query>
  <eca:action><t:a x="$X"/></eca:action>
</eca:rule>`

func detect(e *engine.Engine) {
	e.OnDetection(&protocol.Answer{
		RuleID: "err",
		Rows:   []protocol.AnswerRow{{Tuple: bindings.MustTuple("X", bindings.Str("1"))}},
	})
}

func TestQueryFailureAbortsInstance(t *testing.T) {
	e, logs := wiring(t, true, false)
	if err := e.Register(ruleml.MustParse(errRule)); err != nil {
		t.Fatal(err)
	}
	detect(e)
	st := e.Stats()
	if st.InstancesDied != 1 || st.InstancesCompleted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	joined := strings.Join(*logs, "\n")
	if !strings.Contains(joined, "instance aborted") {
		t.Errorf("logs lack abort notice:\n%s", joined)
	}
}

func TestActionFailureCountsAsDied(t *testing.T) {
	e, _ := wiring(t, false, true)
	if err := e.Register(ruleml.MustParse(errRule)); err != nil {
		t.Fatal(err)
	}
	detect(e)
	st := e.Stats()
	if st.InstancesDied != 1 || st.ActionRuns != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDetectionForUnknownRuleDropped(t *testing.T) {
	e, logs := wiring(t, false, false)
	e.OnDetection(&protocol.Answer{RuleID: "ghost", Rows: []protocol.AnswerRow{{Tuple: bindings.Tuple{}}}})
	if e.Stats().InstancesCreated != 0 {
		t.Error("ghost detection created an instance")
	}
	if !strings.Contains(strings.Join(*logs, "\n"), "unknown rule") {
		t.Error("drop not logged")
	}
}

func TestRegisterFailsWhenEventServiceUnavailable(t *testing.T) {
	g := grh.New() // nothing registered at all
	e := engine.New(g)
	err := e.Register(ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="x">
	  <eca:event><t:e/></eca:event>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`))
	if err == nil {
		t.Fatal("registration should fail without an event service")
	}
	// The failed rule must not linger.
	if len(e.Rules()) != 0 {
		t.Errorf("rules = %v", e.Rules())
	}
}

func TestRulesAndRuleState(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b-rule", "a-rule"} {
		r := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="` + id + `">
		  <eca:event><t:e/></eca:event>
		  <eca:action><t:a/></eca:action>
		</eca:rule>`)
		if err := sys.Engine.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Join(sys.Engine.Rules(), ","); got != "a-rule,b-rule" {
		t.Errorf("rules = %q (sorted)", got)
	}
	sys.Stream.Publish(eventsNew(xmltree.NewElement("http://t/", "e")))
	rs, ok := sys.Engine.RuleState("a-rule")
	if !ok || rs.Firings != 1 {
		t.Errorf("rule state = %+v, %v", rs, ok)
	}
	if _, ok := sys.Engine.RuleState("nope"); ok {
		t.Error("unknown rule state should be absent")
	}
}

// TestMultiRowDetectionCreatesInstances: one detection message with N
// answer tuples creates N independent rule instances (Fig. 6: "one or more
// instances … according to the number of answer elements").
func TestMultiRowDetectionCreatesInstances(t *testing.T) {
	e, _ := wiring(t, false, false)
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="err">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`)
	if err := e.Register(rule); err != nil {
		t.Fatal(err)
	}
	e.OnDetection(&protocol.Answer{
		RuleID: "err",
		Rows: []protocol.AnswerRow{
			{Tuple: bindings.MustTuple("X", bindings.Str("1"))},
			{Tuple: bindings.MustTuple("X", bindings.Str("2"))},
			{Tuple: bindings.MustTuple("X", bindings.Str("3"))},
		},
	})
	st := e.Stats()
	if st.InstancesCreated != 3 || st.InstancesCompleted != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAutoAssignedRuleIDs: rules without ids get rule-N.
func TestAutoAssignedRuleIDs(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/">
		  <eca:event><t:e/></eca:event>
		  <eca:action><t:a/></eca:action>
		</eca:rule>`)
		if err := sys.Engine.Register(r); err != nil {
			t.Fatal(err)
		}
		if r.ID == "" {
			t.Fatal("no id assigned")
		}
	}
	if got := strings.Join(sys.Engine.Rules(), ","); got != "rule-1,rule-2" {
		t.Errorf("auto ids = %q", got)
	}
}

// TestCustomEngineAnalyzer: WithAnalyzer feeds both validation and
// projection.
func TestCustomEngineAnalyzer(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	analyzer := func(c ruleml.Component) ruleml.VarAnalysis {
		a := ruleml.DefaultAnalyzer(c)
		if c.Kind == ruleml.QueryComponent {
			a.Binds = append(a.Binds, "Anything")
		}
		return a
	}
	e := engine.New(sys.GRH, engine.WithAnalyzer(analyzer))
	r := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `"
	    xmlns:t="http://t/" xmlns:xq="` + services.XQueryNS + `" id="c">
	  <eca:event><t:e/></eca:event>
	  <eca:query><xq:query>()</xq:query></eca:query>
	  <eca:action><t:a x="$Anything"/></eca:action>
	</eca:rule>`)
	if err := e.Register(r); err != nil {
		t.Fatalf("custom analyzer should allow $Anything: %v", err)
	}
}
