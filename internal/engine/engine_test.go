package engine_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/events"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/system"
	"repro/internal/xmltree"
)

// TestCarRentalEndToEnd reproduces the complete running example of the
// paper (Figs. 4–11): registration, detection, the three query components
// (framework-aware, framework-unaware opaque, log:answers-generating), the
// natural join, and the per-tuple action.
func TestCarRentalEndToEnd(t *testing.T) {
	sc, cleanup, err := travel.NewScenario(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	// Fig. 5: the event component is registered with the atomic matcher.
	if sc.Matcher.Registrations() != 1 {
		t.Fatalf("matcher registrations = %d, want 1", sc.Matcher.Registrations())
	}

	// Fig. 6: the booking event occurs.
	sc.Book("John Doe", "Munich", "Paris")

	sent := sc.Notifier.Sent()
	if len(sent) != 1 {
		t.Fatalf("notifications = %d, want exactly 1 (only the class-B tuple survives)\n%+v", len(sent), sent)
	}
	msg := sent[0].Message
	if msg.Name.Local != "inform" || msg.Name.Space != travel.NS {
		t.Errorf("message = %s", msg)
	}
	checks := map[string]string{
		"person": "John Doe",
		"ownCar": "VW Passat",
		"class":  "B",
		"car":    "Opel Astra",
	}
	for attr, want := range checks {
		if got := msg.AttrValue("", attr); got != want {
			t.Errorf("inform/@%s = %q, want %q", attr, got, want)
		}
	}

	st := sc.Engine.Stats()
	if st.InstancesCreated != 1 || st.InstancesCompleted != 1 || st.InstancesDied != 0 {
		t.Errorf("stats = %+v", st)
	}

	// A booking to a city with no matching classes dies at the join.
	sc.Notifier.Reset()
	sc.Book("Jane Roe", "Berlin", "Rome") // Twingo is class A; Rome offers A and C
	sent = sc.Notifier.Sent()
	if len(sent) != 1 {
		t.Fatalf("Rome notifications = %d, want 1 (Twingo/A matches Fiat Panda/A)\n%+v", len(sent), sent)
	}
	if got := sent[0].Message.AttrValue("", "car"); got != "Fiat Panda" {
		t.Errorf("Rome car = %q", got)
	}

	// An unknown person binds no OwnCar: the instance is eliminated at the
	// first eca:variable (zero functional results), no message is sent.
	sc.Notifier.Reset()
	sc.Book("Nobody", "A", "B")
	if n := len(sc.Notifier.Sent()); n != 0 {
		t.Errorf("unknown person produced %d notifications", n)
	}
	st = sc.Engine.Stats()
	if st.InstancesDied == 0 {
		t.Error("expected a died instance for unknown person")
	}
}

// TestFig8TwoTuples pins the intermediate cardinality of Fig. 8: after the
// OwnCar variable is bound, the instance relation has exactly two tuples.
func TestFig8TwoTuples(t *testing.T) {
	var afterQuery1 []string
	logger := engineLogCapture(&afterQuery1, "after query[1]")
	sc, cleanup, err := travel.NewScenario(system.Config{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	sc.Book("John Doe", "Munich", "Paris")
	if len(afterQuery1) != 1 || !strings.Contains(afterQuery1[0], "2 tuple(s)") {
		t.Fatalf("after query[1] trace = %v, want 2 tuples", afterQuery1)
	}
}

func engineLogCapture(dst *[]string, substr string) systemLogger {
	return systemLogger{dst: dst, substr: substr}
}

type systemLogger struct {
	dst    *[]string
	substr string
}

func (l systemLogger) Logf(format string, args ...any) {
	line := strings.TrimSpace(fmt.Sprintf(format, args...))
	if strings.Contains(line, l.substr) {
		*l.dst = append(*l.dst, line)
	}
}

// eventsNew wraps an element as an event occurrence.
func eventsNew(payload *xmltree.Node) events.Event { return events.New(payload) }

// TestDatalogQueryComponent runs a rule whose query component is LP-style:
// the Datalog service extends the bindings by matching.
func TestDatalogQueryComponent(t *testing.T) {
	prog := datalog.MustParse(`
		owns("John Doe", "VW Golf").
		owns("John Doe", "VW Passat").
		owns("Jane Roe", "Twingo").
	`)
	sys, err := system.NewLocal(system.Config{Datalog: prog})
	if err != nil {
		t.Fatal(err)
	}
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `"
	    xmlns:t="http://t/" id="dl">
	  <eca:event><t:booking person="$Person"/></eca:event>
	  <eca:query binds="Car">
	    <eca:opaque language="` + services.DatalogNS + `">owns(Person, Car)</eca:opaque>
	  </eca:query>
	  <eca:action><t:offer person="$Person" car="$Car"/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	ev := xmltree.NewElement("http://t/", "booking")
	ev.SetAttr("", "person", "John Doe")
	sys.Stream.Publish(eventsNew(ev))
	sent := sys.Notifier.Sent()
	if len(sent) != 2 {
		t.Fatalf("offers = %d, want 2 (one per owned car)\n%v", len(sent), sent)
	}
	cars := map[string]bool{}
	for _, s := range sent {
		cars[s.Message.AttrValue("", "car")] = true
	}
	if !cars["VW Golf"] || !cars["VW Passat"] {
		t.Errorf("cars = %v", cars)
	}
}

// TestLocalTestComponent checks the σ semantics of the test component.
func TestLocalTestComponent(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="tst">
	  <eca:event><t:reading sensor="$S" value="$V"/></eca:event>
	  <eca:test>$V > 100</eca:test>
	  <eca:action><t:alert sensor="$S" value="$V"/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	pub := func(s, v string) {
		e := xmltree.NewElement("http://t/", "reading")
		e.SetAttr("", "sensor", s)
		e.SetAttr("", "value", v)
		sys.Stream.Publish(eventsNew(e))
	}
	pub("t1", "99")
	pub("t2", "101")
	pub("t3", "250")
	sent := sys.Notifier.Sent()
	if len(sent) != 2 {
		t.Fatalf("alerts = %d, want 2\n%v", len(sent), sent)
	}
	st := sys.Engine.Stats()
	if st.InstancesDied != 1 {
		t.Errorf("died = %d, want 1 (the 99 reading)", st.InstancesDied)
	}
}

// TestEventBoundToVariable checks binding the detected event itself via
// <eca:variable> around the event component.
func TestEventBoundToVariable(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="ev">
	  <eca:variable name="Evt">
	    <eca:event><t:ping from="$F"/></eca:event>
	  </eca:variable>
	  <eca:action><t:echo from="$F">$Evt</t:echo></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	e := xmltree.NewElement("http://t/", "ping")
	e.SetAttr("", "from", "me")
	sys.Stream.Publish(eventsNew(e))
	sent := sys.Notifier.Sent()
	if len(sent) != 1 {
		t.Fatalf("echo = %v", sent)
	}
	inner := sent[0].Message.ChildElements()
	if len(inner) != 1 || inner[0].Name.Local != "ping" {
		t.Errorf("event fragment not spliced: %s", sent[0].Message)
	}
}

// TestDistributedDeployment runs the same car-rental flow with every
// component service behind a real HTTP endpoint (Fig. 3).
func TestDistributedDeployment(t *testing.T) {
	sc, cleanup, err := travel.NewScenario(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	srv := httptest.NewServer(sc.Mux(xmltree.MustParse(travel.ClassesXML), travel.Namespaces()))
	defer srv.Close()
	if err := sc.Distribute(srv.URL); err != nil {
		t.Fatal(err)
	}
	// Re-register a second copy of the rule; its components now travel
	// over HTTP.
	rule, err := ruleml.ParseString(travel.RuleXML(sc.StoreURL, sc.XQueryURL))
	if err != nil {
		t.Fatal(err)
	}
	rule.ID = "car-rental-remote"
	if err := sc.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	sc.Notifier.Reset()
	sc.Book("John Doe", "Munich", "Paris")
	sent := sc.Notifier.Sent()
	// Both rules (local wiring + remote wiring) fire once each.
	if len(sent) != 2 {
		t.Fatalf("notifications = %d, want 2\n%v", len(sent), sent)
	}
	for _, s := range sent {
		if s.Message.AttrValue("", "car") != "Opel Astra" {
			t.Errorf("car = %q", s.Message.AttrValue("", "car"))
		}
	}
}

// TestRegistrationErrors covers rejection paths.
func TestRegistrationErrors(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Unbound variable in action.
	bad := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="bad">
	  <eca:event><t:e/></eca:event>
	  <eca:action><t:a x="$Free"/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(bad); err == nil {
		t.Error("unbound action variable should be rejected")
	}
	// Duplicate id.
	ok := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="dup">
	  <eca:event><t:e/></eca:event>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(ok); err != nil {
		t.Fatal(err)
	}
	dup := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="dup">
	  <eca:event><t:e/></eca:event>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(dup); err == nil {
		t.Error("duplicate rule id should be rejected")
	}
}

// TestUnregisterStopsDetection verifies rule withdrawal.
func TestUnregisterStopsDetection(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="u">
	  <eca:event><t:e/></eca:event>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	sys.Stream.Publish(eventsNew(xmltree.NewElement("http://t/", "e")))
	if len(sys.Notifier.Sent()) != 1 {
		t.Fatal("rule should fire before unregistration")
	}
	if err := sys.Engine.Unregister("u"); err != nil {
		t.Fatal(err)
	}
	sys.Stream.Publish(eventsNew(xmltree.NewElement("http://t/", "e")))
	if len(sys.Notifier.Sent()) != 1 {
		t.Error("rule fired after unregistration")
	}
	if err := sys.Engine.Unregister("u"); err == nil {
		t.Error("double unregister should error")
	}
}

// TestRuleChaining: an act:raise action publishes a new event that triggers
// a second rule.
func TestRuleChaining(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `"
	    xmlns:t="http://t/" xmlns:act="` + services.ActionNS + `" id="chain-1">
	  <eca:event><t:order id="$Id"/></eca:event>
	  <eca:action><act:raise><t:invoice order="$Id"/></act:raise></eca:action>
	</eca:rule>`)
	r2 := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="chain-2">
	  <eca:event><t:invoice order="$O"/></eca:event>
	  <eca:action><t:mail order="$O"/></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(r1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Engine.Register(r2); err != nil {
		t.Fatal(err)
	}
	e := xmltree.NewElement("http://t/", "order")
	e.SetAttr("", "id", "42")
	sys.Stream.Publish(eventsNew(e))
	sent := sys.Notifier.Sent()
	if len(sent) != 1 || sent[0].Message.Name.Local != "mail" || sent[0].Message.AttrValue("", "order") != "42" {
		t.Fatalf("chained rule output = %v", sent)
	}
}

// TestStoreUpdateAction: actions on the database level (store:insert).
func TestStoreUpdateAction(t *testing.T) {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Store.Put("log.xml", xmltree.MustParse(`<log/>`))
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `"
	    xmlns:t="http://t/" xmlns:store="` + services.StoreNS + `" id="st">
	  <eca:event><t:sale item="$I" amount="$A"/></eca:event>
	  <eca:action><store:insert doc="log.xml"><entry item="$I" amount="$A"/></store:insert></eca:action>
	</eca:rule>`)
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	e := xmltree.NewElement("http://t/", "sale")
	e.SetAttr("", "item", "golf").SetAttr("", "amount", "3")
	sys.Stream.Publish(eventsNew(e))
	doc, _ := sys.Store.Get("log.xml")
	entries := doc.Root().ChildElementsNamed("", "entry")
	if len(entries) != 1 || entries[0].AttrValue("", "item") != "golf" {
		t.Fatalf("store update = %s", doc)
	}
}
