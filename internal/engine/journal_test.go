package engine_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/xmltree"
)

// fakeJournal records the engine's durable hook calls.
type fakeJournal struct {
	mu         sync.Mutex
	registered []string
	docs       map[string]*xmltree.Node
	removed    []string
}

func (j *fakeJournal) RuleRegistered(id string, doc *xmltree.Node, at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.docs == nil {
		j.docs = map[string]*xmltree.Node{}
	}
	j.registered = append(j.registered, id)
	j.docs[id] = doc
	if at.IsZero() {
		panic("zero registration time")
	}
}

func (j *fakeJournal) RuleUnregistered(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.removed = append(j.removed, id)
}

func eventOnlyGRH(t *testing.T, failRegistration bool) *grh.GRH {
	t.Helper()
	g := grh.New()
	if err := g.Register(grh.Descriptor{
		Language:       services.MatcherNS,
		Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
		FrameworkAware: true,
		Local: grh.ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
			if failRegistration && req.Kind == protocol.RegisterEvent {
				return nil, errors.New("boom")
			}
			return &protocol.Answer{}, nil
		}),
	}); err != nil {
		t.Fatal(err)
	}
	g.SetDefault(ruleml.EventComponent, services.MatcherNS)
	return g
}

// The journal hook fires after a successful Register and Unregister, with
// the original rule document.
func TestJournalHookOnRegisterUnregister(t *testing.T) {
	j := &fakeJournal{}
	e := engine.New(eventOnlyGRH(t, false), engine.WithJournal(j))
	rule := simpleRule(t, "jr")
	if err := e.Register(rule); err != nil {
		t.Fatal(err)
	}
	if len(j.registered) != 1 || j.registered[0] != "jr" || j.docs["jr"] == nil {
		t.Fatalf("journal after register: %+v", j)
	}
	if err := e.Unregister("jr"); err != nil {
		t.Fatal(err)
	}
	if len(j.removed) != 1 || j.removed[0] != "jr" {
		t.Fatalf("journal after unregister: %+v", j.removed)
	}
}

// A registration the GRH rejects must not reach the journal — it never
// took effect.
func TestJournalNotCalledOnFailedRegistration(t *testing.T) {
	j := &fakeJournal{}
	e := engine.New(eventOnlyGRH(t, true), engine.WithJournal(j))
	if err := e.Register(simpleRule(t, "nope")); err == nil {
		t.Fatal("want registration error")
	}
	if len(j.registered) != 0 {
		t.Fatalf("journal recorded a failed registration: %+v", j.registered)
	}
}

// Auto-assigned ids must skip slots occupied by recovered rules: after
// "rule-1" and "rule-2" are restored with explicit ids, the next id-less
// registration gets "rule-3", not a duplicate-id error.
func TestAutoIDSkipsRecoveredSlots(t *testing.T) {
	e := engine.New(eventOnlyGRH(t, false))
	for _, id := range []string{"rule-1", "rule-2"} {
		if err := e.Register(simpleRule(t, id)); err != nil {
			t.Fatal(err)
		}
	}
	anon := simpleRule(t, "ignored")
	anon.ID = ""
	if err := e.Register(anon); err != nil {
		t.Fatal(err)
	}
	if anon.ID != "rule-3" {
		t.Errorf("assigned id = %q, want rule-3", anon.ID)
	}
}

// Registering a live id reports ErrDuplicateRule so durable deployments
// can treat a startup rule that was already recovered as benign.
func TestDuplicateRegistrationIsErrDuplicateRule(t *testing.T) {
	e := engine.New(eventOnlyGRH(t, false))
	if err := e.Register(simpleRule(t, "dup")); err != nil {
		t.Fatal(err)
	}
	err := e.Register(simpleRule(t, "dup"))
	if !errors.Is(err, engine.ErrDuplicateRule) {
		t.Fatalf("err = %v, want ErrDuplicateRule", err)
	}
}

// RuleInfos reports registration times and instance counters.
func TestRuleInfos(t *testing.T) {
	e := engine.New(eventOnlyGRH(t, false))
	if err := e.Register(simpleRule(t, "a")); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(simpleRule(t, "b")); err != nil {
		t.Fatal(err)
	}
	old := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	e.SetRegistered("a", old)
	infos := e.RuleInfos()
	if len(infos) != 2 || infos[0].ID != "a" || infos[1].ID != "b" {
		t.Fatalf("infos = %+v", infos)
	}
	if !infos[0].Registered.Equal(old) {
		t.Errorf("a registered = %v, want %v", infos[0].Registered, old)
	}
	if infos[1].Registered.IsZero() {
		t.Error("b has zero registration time")
	}
}
