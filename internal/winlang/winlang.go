// Package winlang is a sliding-window counting event language — an event
// component language that is NOT part of the paper, implemented to
// demonstrate the framework's central claim: a new language plugs into the
// engine by registering one more service under its namespace URI, with no
// engine or GRH changes.
//
// An expression
//
//	<win:atleast xmlns:win="…/winlang" n="3" within="10s">
//	  <shop:failed-login user="$U"/>
//	</win:atleast>
//
// occurs when the n-th event matching the pattern (with compatible variable
// bindings — $U above makes the count per-user) arrives within the trailing
// window. Each detection consumes the contributing events, so overlapping
// windows do not re-fire (tumbling-on-detection semantics).
package winlang

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/xmltree"
)

// NS is the language's namespace URI; event components in this namespace
// are dispatched to the window service.
const NS = "http://www.semwebtech.org/languages/2006/winlang"

// Expr is a compiled window expression.
type Expr struct {
	N       int
	Within  time.Duration
	Pattern *events.Pattern
}

// Parse builds an expression from its markup.
func Parse(n *xmltree.Node) (*Expr, error) {
	root := n.Root()
	if root == nil || root.Name.Space != NS || root.Name.Local != "atleast" {
		return nil, fmt.Errorf("winlang: expected win:atleast, got %v", root)
	}
	count, err := strconv.Atoi(root.AttrValue("", "n"))
	if err != nil || count < 1 {
		return nil, fmt.Errorf("winlang: win:atleast needs a positive integer n attribute")
	}
	within, err := time.ParseDuration(root.AttrValue("", "within"))
	if err != nil || within <= 0 {
		return nil, fmt.Errorf("winlang: win:atleast needs a positive within duration: %v", err)
	}
	kids := root.ChildElements()
	if len(kids) != 1 {
		return nil, fmt.Errorf("winlang: win:atleast must wrap exactly one pattern element")
	}
	p, err := events.NewPattern(kids[0])
	if err != nil {
		return nil, err
	}
	return &Expr{N: count, Within: within, Pattern: p}, nil
}

// Detection is one window detection: the joined bindings and the
// contributing events.
type Detection struct {
	Bindings     bindings.Tuple
	Constituents []events.Event
}

// Detector evaluates one window expression over a stream. Not safe for
// concurrent use; the Service wraps it with a mutex.
type Detector struct {
	expr *Expr
	sink func(Detection)
	// buckets groups pending matches by binding compatibility key.
	buckets map[string][]match
}

type match struct {
	tuple bindings.Tuple
	event events.Event
}

// NewDetector builds a detector delivering to sink.
func NewDetector(e *Expr, sink func(Detection)) *Detector {
	return &Detector{expr: e, sink: sink, buckets: map[string][]match{}}
}

// Feed processes one event.
func (d *Detector) Feed(ev events.Event) {
	tuples := d.expr.Pattern.Match(ev)
	if len(tuples) == 0 {
		return
	}
	cutoff := ev.Time.Add(-d.expr.Within)
	for _, t := range tuples {
		key := bucketKey(t)
		// Expire out-of-window matches.
		kept := d.buckets[key][:0]
		for _, m := range d.buckets[key] {
			if m.event.Time.After(cutoff) {
				kept = append(kept, m)
			}
		}
		kept = append(kept, match{t, ev})
		if len(kept) >= d.expr.N {
			det := Detection{Bindings: bindings.Tuple{}}
			for _, m := range kept {
				det.Bindings = det.Bindings.Merge(m.tuple)
				det.Constituents = append(det.Constituents, m.event)
			}
			d.sink(det)
			kept = kept[:0] // consume
		}
		d.buckets[key] = kept
	}
}

// bucketKey canonicalizes a tuple's bindings so only compatible matches
// count together (per-user, per-item, … windows).
func bucketKey(t bindings.Tuple) string {
	key := ""
	for _, v := range t.Vars() {
		key += v + "\x00" + t[v].Key() + "\x01"
	}
	return key
}

// Service exposes the language as an event detection service implementing
// grh.Service, exactly like the bundled SNOOP service.
type Service struct {
	deliver *protocolDeliverer
	mu      sync.Mutex
	dets    map[string]*Detector
	cancel  func()
}

// protocolDeliverer is the minimal delivery contract (mirrors
// services.Deliverer without importing it, keeping this package showcase-
// minimal: Local receives detection answers).
type protocolDeliverer struct {
	Local func(*protocol.Answer)
}

// NewService subscribes a window service to the stream, delivering
// detection answers to sink.
func NewService(stream *events.Stream, sink func(*protocol.Answer)) *Service {
	s := &Service{deliver: &protocolDeliverer{Local: sink}, dets: map[string]*Detector{}}
	s.cancel = stream.Subscribe(s.onEvent)
	return s
}

// Close unsubscribes from the stream.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

func (s *Service) onEvent(ev events.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.dets {
		d.Feed(ev)
	}
}

// Handle implements grh.Service.
func (s *Service) Handle(req *protocol.Request) (*protocol.Answer, error) {
	key := req.RuleID + "/" + req.Component
	switch req.Kind {
	case protocol.RegisterEvent:
		expr, err := ParseCached(req.Expression)
		if err != nil {
			return nil, err
		}
		ruleID, component := req.RuleID, req.Component
		det := NewDetector(expr, func(d Detection) {
			a := &protocol.Answer{RuleID: ruleID, Component: component}
			row := protocol.AnswerRow{Tuple: d.Bindings}
			for _, c := range d.Constituents {
				row.Results = append(row.Results, bindings.Fragment(c.Payload.Clone()))
			}
			a.Rows = append(a.Rows, row)
			s.deliver.Local(a)
		})
		s.mu.Lock()
		s.dets[key] = det
		s.mu.Unlock()
		return &protocol.Answer{RuleID: ruleID, Component: component}, nil
	case protocol.UnregisterEvent:
		s.mu.Lock()
		delete(s.dets, key)
		s.mu.Unlock()
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	default:
		return nil, fmt.Errorf("winlang: unsupported request kind %q", req.Kind)
	}
}

var _ grh.Service = (*Service)(nil)
