package winlang

import (
	"repro/internal/compilecache"
	"repro/internal/xmltree"
)

// Lang is the compile-cache language label for window expressions
// (compile_seconds{language="winlang"}).
const Lang = "winlang"

// ParseCached is Parse memoized through the process-wide compile cache,
// keyed by the expression's serialized markup. The returned *Expr is
// shared between callers and read-only after parse.
func ParseCached(n *xmltree.Node) (*Expr, error) {
	src := n.String()
	v, err := compilecache.Default.Get(Lang, src, func(string) (any, error) {
		e, err := Parse(n)
		if err != nil {
			return nil, err
		}
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Expr), nil
}
