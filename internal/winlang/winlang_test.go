package winlang

import (
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/protocol"
	"repro/internal/xmltree"
)

func expr(t *testing.T, src string) *Expr {
	t.Helper()
	e, err := Parse(xmltree.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ev(name string, sec int64, attrs ...string) events.Event {
	e := xmltree.NewElement("", name)
	for i := 0; i+1 < len(attrs); i += 2 {
		e.SetAttr("", attrs[i], attrs[i+1])
	}
	return events.Event{Payload: e, Seq: uint64(sec), Time: time.Unix(sec, 0)}
}

const threeIn10 = `<win:atleast xmlns:win="` + NS + `" n="3" within="10s"><f user="$U"/></win:atleast>`

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<wrong/>`,
		`<win:atleast xmlns:win="` + NS + `" n="0" within="5s"><f/></win:atleast>`,
		`<win:atleast xmlns:win="` + NS + `" n="x" within="5s"><f/></win:atleast>`,
		`<win:atleast xmlns:win="` + NS + `" n="2" within="-1s"><f/></win:atleast>`,
		`<win:atleast xmlns:win="` + NS + `" n="2" within="5s"></win:atleast>`,
		`<win:atleast xmlns:win="` + NS + `" n="2" within="5s"><a/><b/></win:atleast>`,
	}
	for _, src := range bad {
		if _, err := Parse(xmltree.MustParse(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestWindowCounting(t *testing.T) {
	var got []Detection
	d := NewDetector(expr(t, threeIn10), func(x Detection) { got = append(got, x) })
	d.Feed(ev("f", 1, "user", "alice"))
	d.Feed(ev("f", 3, "user", "alice"))
	if len(got) != 0 {
		t.Fatal("two events must not fire n=3")
	}
	d.Feed(ev("f", 5, "user", "alice"))
	if len(got) != 1 {
		t.Fatalf("detections = %d", len(got))
	}
	if got[0].Bindings["U"].AsString() != "alice" || len(got[0].Constituents) != 3 {
		t.Errorf("detection = %+v", got[0])
	}
	// Consumed: the next event starts a fresh count.
	d.Feed(ev("f", 6, "user", "alice"))
	if len(got) != 1 {
		t.Fatal("window must be consumed after detection")
	}
}

func TestWindowExpiry(t *testing.T) {
	var got []Detection
	d := NewDetector(expr(t, threeIn10), func(x Detection) { got = append(got, x) })
	d.Feed(ev("f", 1, "user", "bob"))
	d.Feed(ev("f", 2, "user", "bob"))
	d.Feed(ev("f", 30, "user", "bob")) // first two expired
	if len(got) != 0 {
		t.Fatalf("expired events counted: %+v", got)
	}
	d.Feed(ev("f", 31, "user", "bob"))
	d.Feed(ev("f", 32, "user", "bob"))
	if len(got) != 1 {
		t.Fatalf("detections = %d", len(got))
	}
}

func TestPerBindingBuckets(t *testing.T) {
	var got []Detection
	d := NewDetector(expr(t, threeIn10), func(x Detection) { got = append(got, x) })
	// Interleaved users: only alice reaches 3.
	d.Feed(ev("f", 1, "user", "alice"))
	d.Feed(ev("f", 2, "user", "eve"))
	d.Feed(ev("f", 3, "user", "alice"))
	d.Feed(ev("f", 4, "user", "eve"))
	d.Feed(ev("f", 5, "user", "alice"))
	if len(got) != 1 || got[0].Bindings["U"].AsString() != "alice" {
		t.Fatalf("detections = %+v", got)
	}
}

func TestServiceLifecycle(t *testing.T) {
	stream := events.NewStream()
	var answers []*protocol.Answer
	s := NewService(stream, func(a *protocol.Answer) { answers = append(answers, a) })
	defer s.Close()
	exprNode := xmltree.MustParse(threeIn10).Root()
	if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: "r", Component: "e", Expression: exprNode}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := xmltree.NewElement("", "f")
		p.SetAttr("", "user", "alice")
		stream.Publish(events.New(p))
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	row := answers[0].Rows[0]
	if row.Tuple["U"].AsString() != "alice" || len(row.Results) != 3 {
		t.Errorf("row = %+v", row)
	}
	if _, err := s.Handle(&protocol.Request{Kind: protocol.UnregisterEvent, RuleID: "r", Component: "e"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(&protocol.Request{Kind: protocol.Query}); err == nil {
		t.Error("query should be rejected")
	}
}
