// Package travel holds the application domain of the paper's running
// example (Section 4): the car-rental company's vocabulary, the Web
// documents the rule queries (a customer-cars document, a car-class
// mapping, per-city availability), the full Fig. 4 rule, and the
// travel:booking event. Values match the paper: John Doe books a flight
// Munich → Paris; he owns a Golf (class C) and a Passat (class B); Paris
// has cars of classes B and D available; the natural join leaves class B.
package travel

import (
	"net/http/httptest"

	"repro/internal/events"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/system"
	"repro/internal/xmltree"
)

// NS is the travel domain namespace: its atomic events (travel:booking,
// travel:cancellation) and actions (travel:inform).
const NS = "http://www.semwebtech.org/domains/2006/travel"

// Document URIs in the example's document store.
const (
	// CarsDoc lists each customer's own cars (queried by the first,
	// framework-aware XQuery component — Fig. 7/8).
	CarsDoc = "http://example.org/data/cars.xml"
	// AvailDoc lists the cars available per destination city (queried by
	// the log:answers-generating component — Fig. 10).
	AvailDoc = "http://example.org/data/availability.xml"
)

// CarsXML is the customer-cars document: John Doe owns two cars.
const CarsXML = `<owners>
  <owner name="John Doe">
    <car><model>VW Golf</model><year>2003</year></car>
    <car><model>VW Passat</model><year>2005</year></car>
  </owner>
  <owner name="Jane Roe">
    <car><model>Twingo</model><year>2007</year></car>
  </owner>
</owners>`

// ClassesXML maps car models to rental classes; it lives in the
// framework-UNaware XML store (the eXist stand-in of Fig. 9).
const ClassesXML = `<classes>
  <entry model="VW Golf" class="C"/>
  <entry model="VW Passat" class="B"/>
  <entry model="Twingo" class="A"/>
</classes>`

// AvailabilityXML lists the cars available per city: Paris offers classes
// B and D.
const AvailabilityXML = `<availability>
  <city name="Paris">
    <car class="B"><name>Opel Astra</name></car>
    <car class="D"><name>Renault Espace</name></car>
  </city>
  <city name="Rome">
    <car class="A"><name>Fiat Panda</name></car>
    <car class="C"><name>VW Golf</name></car>
  </city>
</availability>`

// Booking builds a travel:booking event element.
func Booking(person, from, to string) *xmltree.Node {
	e := xmltree.NewElement(NS, "booking")
	e.SetAttr("xmlns", "travel", NS)
	e.SetAttr("", "person", person)
	e.SetAttr("", "from", from)
	e.SetAttr("", "to", to)
	return e
}

// Cancellation builds a travel:cancellation event element.
func Cancellation(person string) *xmltree.Node {
	e := xmltree.NewElement(NS, "cancellation")
	e.SetAttr("xmlns", "travel", NS)
	e.SetAttr("", "person", person)
	return e
}

// RuleXML renders the complete Fig. 4 car-rental rule. opaqueStoreURL is
// the endpoint of the framework-unaware class store (Fig. 9) and
// opaqueXQueryURL the raw XQuery node generating log:answers (Fig. 10);
// the remaining components go through the registry.
func RuleXML(opaqueStoreURL, opaqueXQueryURL string) string {
	return `<eca:rule xmlns:eca="` + protocol.ECANS + `"
    xmlns:travel="` + NS + `"
    xmlns:xq="` + services.XQueryNS + `"
    id="car-rental">

  <!-- ON a booking by a person ... -->
  <eca:event>
    <travel:booking person="$Person" to="$Dest"/>
  </eca:event>

  <!-- ... query the person's own cars (framework-aware XQuery, Fig. 7/8) -->
  <eca:variable name="OwnCar">
    <eca:query>
      <xq:query>for $c in doc('` + CarsDoc + `')//owner[@name=$Person]/car
        return $c/model/text()</xq:query>
    </eca:query>
  </eca:variable>

  <!-- ... map each car to its class (framework-UNaware HTTP GET, Fig. 9) -->
  <eca:variable name="Class">
    <eca:query>
      <eca:opaque language="` + services.XQueryNS + `-opaque"
                  uri="` + opaqueStoreURL + `">//entry[@model='$OwnCar']/@class</eca:opaque>
    </eca:query>
  </eca:variable>

  <!-- ... cars available at the destination, as generated log:answers (Fig. 10) -->
  <eca:query binds="Class Avail">
    <eca:opaque language="` + services.XQueryNS + `-opaque"
                uri="` + opaqueXQueryURL + `">` +
		`&lt;log:answers xmlns:log="` + protocol.LogNS + `"&gt;{` +
		`for $c in doc('` + AvailDoc + `')//city[@name='$Dest']/car ` +
		`return &lt;log:answer&gt;` +
		`&lt;log:variable name="Class"&gt;{string($c/@class)}&lt;/log:variable&gt;` +
		`&lt;log:variable name="Avail"&gt;{$c/name/text()}&lt;/log:variable&gt;` +
		`&lt;/log:answer&gt;}&lt;/log:answers&gt;</eca:opaque>
  </eca:query>

  <!-- ... inform the customer about suitable cars (one message per tuple) -->
  <eca:action>
    <travel:inform person="$Person" ownCar="$OwnCar" class="$Class" car="$Avail"/>
  </eca:action>
</eca:rule>`
}

// Namespaces is the prefix map offered to query services for this domain.
func Namespaces() map[string]string {
	return map[string]string{
		"travel": NS,
		"log":    protocol.LogNS,
	}
}

// LoadStore populates a document store with the example's documents.
func LoadStore(store *services.DocStore) {
	store.Put(CarsDoc, xmltree.MustParse(CarsXML))
	store.Put(AvailDoc, xmltree.MustParse(AvailabilityXML))
}

// Scenario is a fully wired car-rental deployment: a local system loaded
// with the example documents plus the two framework-unaware HTTP nodes.
type Scenario struct {
	*system.System
	// StoreURL is the framework-unaware XPath store endpoint (classes).
	StoreURL string
	// XQueryURL is the raw XQuery node endpoint (availability).
	XQueryURL string
	// Rule is the registered car-rental rule id.
	Rule string
}

// Book publishes a booking event on the scenario's stream.
func (s *Scenario) Book(person, from, to string) events.Event {
	return s.Stream.Publish(events.New(Booking(person, from, to)))
}

// NewScenario wires the full running example: a local system with the
// example documents, the two framework-unaware HTTP nodes on loopback
// listeners, and the car-rental rule registered. Call the returned cleanup
// to release the listeners.
func NewScenario(cfg system.Config) (*Scenario, func(), error) {
	if cfg.Namespaces == nil {
		cfg.Namespaces = Namespaces()
	}
	sys, err := system.NewLocal(cfg)
	if err != nil {
		return nil, nil, err
	}
	LoadStore(sys.Store)

	classStore := services.NewOpaqueXMLStore(xmltree.MustParse(ClassesXML), nil).SetObs(cfg.Obs)
	srvClasses := httptest.NewServer(classStore)
	srvXQuery := httptest.NewServer(services.NewOpaqueXQueryNode(sys.Store, cfg.Namespaces).SetObs(cfg.Obs))
	cleanup := func() {
		srvClasses.Close()
		srvXQuery.Close()
	}

	rule, err := ruleml.ParseString(RuleXML(srvClasses.URL, srvXQuery.URL))
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if err := sys.Engine.Register(rule); err != nil {
		cleanup()
		return nil, nil, err
	}
	return &Scenario{
		System:    sys,
		StoreURL:  srvClasses.URL,
		XQueryURL: srvXQuery.URL,
		Rule:      rule.ID,
	}, cleanup, nil
}
