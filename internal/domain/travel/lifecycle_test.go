package travel

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/system"
)

// TestLifecycleStageSumsReconcileWithE2E drives bookings through the
// real HTTP admission path (POST /events stamps the admission time the
// lifecycle clock starts from) and checks the SLO instrumentation
// end to end: every completed instance contributes one observation per
// lifecycle stage, the four contiguous stage sums reconcile with the
// event_e2e_seconds total within 10%, and the histogram's exemplar
// points at a recorded trace carrying the lifecycle span.
func TestLifecycleStageSumsReconcileWithE2E(t *testing.T) {
	hub := obs.NewHub()
	sc, cleanup, err := NewScenario(system.Config{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	srv := httptest.NewServer(sc.Mux(nil, Namespaces()))
	defer srv.Close()

	const n = 25
	booking := Booking("John Doe", "Munich", "Paris").String()
	for i := 0; i < n; i++ {
		resp, err := http.Post(srv.URL+"/events", "application/xml", strings.NewReader(booking))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /events status = %d", resp.StatusCode)
		}
	}

	// Instances run synchronously on the handler goroutine here, but a
	// worker-pool engine would ack asynchronously — poll until every
	// completion is in the exposition rather than assuming.
	scrape := func() *obs.Exposition {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		exp, err := obs.ParseExposition(resp.Body)
		if err != nil {
			t.Fatalf("parse /metrics: %v", err)
		}
		return exp
	}
	var exp *obs.Exposition
	deadline := time.Now().Add(5 * time.Second)
	for {
		exp = scrape()
		if exp.HistogramDist("event_e2e_seconds", nil).Count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("e2e completions never reached %d: %d", n, exp.HistogramDist("event_e2e_seconds", nil).Count)
		}
		time.Sleep(50 * time.Millisecond)
	}

	e2e := exp.HistogramDist("event_e2e_seconds", map[string]string{"rule": sc.Rule})
	if e2e.Count != n {
		t.Fatalf("event_e2e_seconds{rule=%q} count = %d, want %d", sc.Rule, e2e.Count, n)
	}
	var stageSum float64
	for _, stage := range []string{"admit", "detect", "dispatch", "action"} {
		d := exp.HistogramDist("event_lifecycle_seconds", map[string]string{"stage": stage})
		if d.Count != n {
			t.Fatalf("event_lifecycle_seconds{stage=%q} count = %d, want %d", stage, d.Count, n)
		}
		stageSum += d.Sum
	}
	if diff := math.Abs(stageSum - e2e.Sum); diff > 0.10*e2e.Sum {
		t.Errorf("stage sums %.6fs vs e2e %.6fs: off by %.1f%%, want within 10%%",
			stageSum, e2e.Sum, 100*diff/e2e.Sum)
	}

	// The histogram's exemplar must name a recorded trace, and that trace
	// must carry the lifecycle span with its four stage children — the
	// drill-down path from an SLO breach to the instance that caused it.
	ex, ok := hub.Metrics().HistogramVec("event_e2e_seconds", "", nil, "rule").With(sc.Rule).Exemplar()
	if !ok {
		t.Fatal("event_e2e_seconds carries no exemplar")
	}
	found := false
	for _, tr := range hub.Traces().Snapshot() {
		if tr.ID != ex.TraceID {
			continue
		}
		found = true
		if len(tr.Spans) == 0 {
			t.Fatalf("exemplar trace %s has no spans", tr.ID)
		}
		last := tr.Spans[len(tr.Spans)-1]
		if last.Stage != "lifecycle" || len(last.Children) != 4 {
			t.Errorf("exemplar trace %s last span = %s with %d children, want lifecycle with 4",
				tr.ID, last.Stage, len(last.Children))
		}
	}
	if !found {
		t.Errorf("exemplar trace id %q not in the recorder", ex.TraceID)
	}
}
