package travel

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/services"
	"repro/internal/system"
)

// TestCarRentalFiringProducesSpanChain fires the running example once and
// checks the rule-instance trace: the Fig. 4 rule evaluates as
// event → query[1] → query[2] → query[3] → action[1], with the tuple counts
// of the paper (2 own cars → 2 classes → 1 surviving class-B tuple).
func TestCarRentalFiringProducesSpanChain(t *testing.T) {
	hub := obs.NewHub()
	sc, cleanup, err := NewScenario(system.Config{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	sc.Book("John Doe", "Munich", "Paris")
	if got := len(sc.Notifier.Sent()); got != 1 {
		t.Fatalf("notifications = %d, want 1", got)
	}

	traces := hub.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("instance traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Rule != sc.Rule || tr.State != "completed" {
		t.Errorf("trace rule=%q state=%q", tr.Rule, tr.State)
	}

	type step struct {
		stage, component, mode string
		in, out                int
	}
	want := []step{
		{"event", "event[1]", "detection", 0, 1},
		{"query", "query[1]", "grh", 1, 2},
		{"query", "query[2]", "grh", 2, 2},
		{"query", "query[3]", "grh", 2, 1},
		{"action", "action[1]", "grh", 1, 1},
	}
	if len(tr.Spans) != len(want) {
		t.Fatalf("spans = %d, want %d:\n%+v", len(tr.Spans), len(want), tr.Spans)
	}
	for i, w := range want {
		s := tr.Spans[i]
		if s.Stage != w.stage || s.Component != w.component || s.Mode != w.mode {
			t.Errorf("span %d = %s/%s/%s, want %s/%s/%s", i, s.Stage, s.Component, s.Mode, w.stage, w.component, w.mode)
		}
		if s.TuplesIn != w.in || s.TuplesOut != w.out {
			t.Errorf("span %d tuples = %d→%d, want %d→%d", i, s.TuplesIn, s.TuplesOut, w.in, w.out)
		}
		if s.Err != "" {
			t.Errorf("span %d unexpected error %q", i, s.Err)
		}
	}

	// The firing must also have moved the key metric families.
	reg := hub.Metrics()
	if v := reg.CounterVec("engine_instances", "", "state").With("created").Value(); v != 1 {
		t.Errorf("engine_instances{created} = %d", v)
	}
	if v := reg.CounterVec("engine_instances", "", "state").With("completed").Value(); v != 1 {
		t.Errorf("engine_instances{completed} = %d", v)
	}
	// query[2] mediates per-tuple (2 GETs) and query[3] once.
	if v := reg.CounterVec("service_requests_total", "", "kind").With("opaque-store").Value(); v != 2 {
		t.Errorf("service_requests_total{opaque-store} = %d", v)
	}
	if v := reg.CounterVec("service_requests_total", "", "kind").With("opaque-xquery").Value(); v != 1 {
		t.Errorf("service_requests_total{opaque-xquery} = %d", v)
	}
	h := reg.HistogramVec("grh_dispatch_seconds", "", nil, "language", "mode").With(services.XQueryNS+"-opaque", "opaque")
	if h.Count() == 0 {
		t.Error("grh_dispatch_seconds{mode=opaque} recorded no observations")
	}
}
