package travel

import (
	"strings"
	"testing"

	"repro/internal/ruleml"
	"repro/internal/system"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestDocumentsParse(t *testing.T) {
	for name, src := range map[string]string{
		"cars": CarsXML, "classes": ClassesXML, "availability": AvailabilityXML,
	} {
		if _, err := xmltree.ParseString(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPaperValues(t *testing.T) {
	// The data must encode the paper's example exactly: John Doe owns two
	// cars of classes C and B; Paris offers B and D.
	cars := xmltree.MustParse(CarsXML)
	models, err := xpath.MustCompile(`//owner[@name='John Doe']/car/model`).EvalNodes(&xpath.Context{Node: cars})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].TextContent() != "VW Golf" || models[1].TextContent() != "VW Passat" {
		t.Fatalf("john's cars = %v", models)
	}
	classes := xmltree.MustParse(ClassesXML)
	for model, class := range map[string]string{"VW Golf": "C", "VW Passat": "B"} {
		got, err := xpath.MustCompile(`string(//entry[@model='` + model + `']/@class)`).EvalString(&xpath.Context{Node: classes})
		if err != nil || got != class {
			t.Errorf("class(%s) = %q, %v", model, got, err)
		}
	}
	avail := xmltree.MustParse(AvailabilityXML)
	parisClasses, err := xpath.MustCompile(`//city[@name='Paris']/car/@class`).EvalNodes(&xpath.Context{Node: avail})
	if err != nil {
		t.Fatal(err)
	}
	if len(parisClasses) != 2 || parisClasses[0].TextContent() != "B" || parisClasses[1].TextContent() != "D" {
		t.Fatalf("paris classes = %v", parisClasses)
	}
}

func TestEventBuilders(t *testing.T) {
	b := Booking("John Doe", "Munich", "Paris")
	if b.Name.Space != NS || b.AttrValue("", "to") != "Paris" {
		t.Errorf("booking = %s", b)
	}
	// The element must serialize with its declared prefix and reparse.
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root().Name != b.Name {
		t.Errorf("round trip = %v", doc.Root().Name)
	}
	c := Cancellation("Jane")
	if c.Name.Local != "cancellation" || c.AttrValue("", "person") != "Jane" {
		t.Errorf("cancellation = %s", c)
	}
}

func TestRuleXMLParsesAndValidates(t *testing.T) {
	rule, err := ruleml.ParseString(RuleXML("http://store/", "http://xq/"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ruleml.Validate(rule, nil); err != nil {
		t.Fatal(err)
	}
	if rule.ID != "car-rental" || len(rule.Steps) != 3 || len(rule.Actions) != 1 {
		t.Errorf("structure = id=%q steps=%d actions=%d", rule.ID, len(rule.Steps), len(rule.Actions))
	}
	// Opaque components point at the endpoints we passed.
	if rule.Steps[1].Service != "http://store/" || rule.Steps[2].Service != "http://xq/" {
		t.Errorf("endpoints = %q, %q", rule.Steps[1].Service, rule.Steps[2].Service)
	}
}

func TestScenarioMultipleBookings(t *testing.T) {
	sc, cleanup, err := NewScenario(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	sc.Book("John Doe", "Munich", "Paris")
	sc.Book("John Doe", "Munich", "Paris")
	sc.Book("Jane Roe", "Berlin", "Paris") // Twingo is class A; Paris has B and D → no offer
	sent := sc.Notifier.Sent()
	if len(sent) != 2 {
		t.Fatalf("offers = %d, want 2\n%v", len(sent), sent)
	}
	for _, n := range sent {
		if n.Message.AttrValue("", "person") != "John Doe" {
			t.Errorf("offer to %q", n.Message.AttrValue("", "person"))
		}
	}
	st := sc.Engine.Stats()
	if st.InstancesCreated != 3 || st.InstancesDied != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLoadStore(t *testing.T) {
	sc, cleanup, err := NewScenario(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	uris := sc.Store.URIs()
	if len(uris) != 2 || !strings.Contains(uris[0], "availability") {
		t.Errorf("store uris = %v", uris)
	}
}
