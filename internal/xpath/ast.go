package xpath

import (
	"fmt"
	"strings"
)

// Expr is a compiled XPath expression. Compile once with Compile, then
// evaluate against any context; compiled expressions are immutable and safe
// for concurrent use.
type Expr struct {
	root exprNode
	src  string
}

// String returns the source text the expression was compiled from.
func (e *Expr) String() string { return e.src }

// exprNode is a node of the expression AST.
type exprNode interface {
	eval(ctx *evalCtx) (object, error)
}

// axis enumerates the supported XPath axes.
type axis int

const (
	axisChild axis = iota
	axisDescendant
	axisDescendantOrSelf
	axisSelf
	axisParent
	axisAncestor
	axisAncestorOrSelf
	axisAttribute
	axisFollowingSibling
	axisPrecedingSibling
	axisFollowing
	axisPreceding
)

var axisNames = map[string]axis{
	"child":              axisChild,
	"descendant":         axisDescendant,
	"descendant-or-self": axisDescendantOrSelf,
	"self":               axisSelf,
	"parent":             axisParent,
	"ancestor":           axisAncestor,
	"ancestor-or-self":   axisAncestorOrSelf,
	"attribute":          axisAttribute,
	"following-sibling":  axisFollowingSibling,
	"preceding-sibling":  axisPrecedingSibling,
	"following":          axisFollowing,
	"preceding":          axisPreceding,
}

func (a axis) String() string {
	for n, ax := range axisNames {
		if ax == a {
			return n
		}
	}
	return fmt.Sprintf("axis(%d)", int(a))
}

// testKind discriminates node tests.
type testKind int

const (
	testName       testKind = iota // QName or NCName
	testAny                        // *
	testNSWildcard                 // prefix:*
	testNodeType                   // node(), text(), comment()
)

// nodeTest selects nodes on an axis.
type nodeTest struct {
	kind     testKind
	prefix   string // as written; resolved at evaluation time
	local    string
	nodeType string // "node", "text", "comment"
}

func (t nodeTest) String() string {
	switch t.kind {
	case testAny:
		return "*"
	case testNSWildcard:
		return t.prefix + ":*"
	case testNodeType:
		return t.nodeType + "()"
	default:
		if t.prefix != "" {
			return t.prefix + ":" + t.local
		}
		return t.local
	}
}

// step is one location step: axis::test[pred]...
type step struct {
	axis  axis
	test  nodeTest
	preds []exprNode
}

// pathExpr is a location path, optionally rooted at a filter expression
// (FilterExpr '/' RelativeLocationPath).
type pathExpr struct {
	absolute bool     // starts with '/'
	start    exprNode // nil: context node (or root if absolute)
	steps    []step
}

// filterExpr is PrimaryExpr Predicate* without a trailing path.
type filterExpr struct {
	primary exprNode
	preds   []exprNode
}

// binaryExpr covers or/and/=/!=/</<=/>/>=/+/-/*/div/mod and '|'.
type binaryExpr struct {
	op    string
	left  exprNode
	right exprNode
}

// negExpr is unary minus.
type negExpr struct{ operand exprNode }

// literalExpr is a string literal.
type literalExpr struct{ val string }

// numberExpr is a numeric literal.
type numberExpr struct{ val float64 }

// varExpr is a variable reference $name.
type varExpr struct{ name string }

// funcExpr is a core-library function call.
type funcExpr struct {
	name string
	args []exprNode
}

func (p *pathExpr) describe() string {
	var b strings.Builder
	if p.absolute {
		b.WriteString("/")
	}
	for i, s := range p.steps {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(s.axis.String())
		b.WriteString("::")
		b.WriteString(s.test.String())
	}
	return b.String()
}
