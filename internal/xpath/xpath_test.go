package xpath

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

const carsDoc = `<garage owner="John Doe">
  <car vin="1" year="2003"><model>Golf</model><class>C</class></car>
  <car vin="2" year="2005"><model>Passat</model><class>B</class></car>
  <bike>BMX</bike>
</garage>`

func ctxFor(doc string) *Context {
	return &Context{Node: xmltree.MustParse(doc)}
}

func evalStr(t *testing.T, ctx *Context, expr string) string {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	s, err := e.EvalString(ctx)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return s
}

func evalNum(t *testing.T, ctx *Context, expr string) float64 {
	t.Helper()
	e := MustCompile(expr)
	n, err := e.EvalNumber(ctx)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return n
}

func evalBool(t *testing.T, ctx *Context, expr string) bool {
	t.Helper()
	b, err := MustCompile(expr).EvalBool(ctx)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return b
}

func evalNodes(t *testing.T, ctx *Context, expr string) NodeSet {
	t.Helper()
	ns, err := MustCompile(expr).EvalNodes(ctx)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return ns
}

func TestPathsAndPredicates(t *testing.T) {
	ctx := ctxFor(carsDoc)
	cases := []struct {
		expr string
		want string // concatenated text of result nodes, "|"-separated
	}{
		{`/garage/car/model`, "Golf|Passat"},
		{`//model`, "Golf|Passat"},
		{`/garage/car[1]/model`, "Golf"},
		{`/garage/car[2]/model`, "Passat"},
		{`/garage/car[last()]/model`, "Passat"},
		{`/garage/car[class='B']/model`, "Passat"},
		{`/garage/car[@vin='1']/model`, "Golf"},
		{`/garage/car[@year>2004]/model`, "Passat"},
		{`/garage/*[position()=3]`, "BMX"},
		{`//car[model='Golf']/class`, "C"},
		{`/garage/car/class | /garage/bike`, "C|B|BMX"},
		{`//car[not(class='B')]/model`, "Golf"},
		{`/garage/car[position()<2]/model`, "Golf"},
		{`//text()[normalize-space(.)='BMX']`, "BMX"},
		{`/garage/car[1]/following-sibling::car/model`, "Passat"},
		{`/garage/car[2]/preceding-sibling::car/model`, "Golf"},
		{`//model/parent::car/@vin`, "1|2"},
		{`//class/ancestor::garage/@owner`, "John Doe"},
		{`//model/ancestor-or-self::model`, "Golf|Passat"},
		{`/garage/car/self::car/model`, "Golf|Passat"},
		{`//car/descendant::text()[.='Golf']`, "Golf"},
		{`/descendant-or-self::node()/model`, "Golf|Passat"},
		{`//car/@*`, "1|2003|2|2005"},
	}
	for _, c := range cases {
		ns := evalNodes(t, ctx, c.expr)
		var parts []string
		for _, n := range ns {
			parts = append(parts, strings.TrimSpace(n.TextContent()))
		}
		if got := strings.Join(parts, "|"); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestParentDeduplication(t *testing.T) {
	// Both cars share one parent; the step must deduplicate.
	ns := evalNodes(t, ctxFor(carsDoc), `//car/..`)
	if len(ns) != 1 || ns[0].Name.Local != "garage" {
		t.Fatalf("//car/.. = %d nodes (%v)", len(ns), ns)
	}
}

func TestRelativePath(t *testing.T) {
	doc := xmltree.MustParse(carsDoc)
	car := doc.Root().ChildElementsNamed("", "car")[0]
	ctx := &Context{Node: car}
	if got := evalStr(t, ctx, `model`); got != "Golf" {
		t.Errorf("relative model = %q", got)
	}
	if got := evalStr(t, ctx, `.//class`); got != "C" {
		t.Errorf(".//class = %q", got)
	}
	if got := evalStr(t, ctx, `../bike`); got != "BMX" {
		t.Errorf("../bike = %q", got)
	}
	if got := evalStr(t, ctx, `@vin`); got != "1" {
		t.Errorf("@vin = %q", got)
	}
}

func TestNamespaceTests(t *testing.T) {
	doc := `<t:trip xmlns:t="http://example.org/travel" xmlns:c="http://example.org/cars">
		<t:booking person="John"/><c:car>Golf</c:car></t:trip>`
	ctx := ctxFor(doc)
	ctx.Namespaces = map[string]string{
		"tr": "http://example.org/travel",
		"ca": "http://example.org/cars",
	}
	if got := evalStr(t, ctx, `/tr:trip/tr:booking/@person`); got != "John" {
		t.Errorf("ns path = %q", got)
	}
	if got := evalStr(t, ctx, `/tr:trip/ca:car`); got != "Golf" {
		t.Errorf("ns path = %q", got)
	}
	if n := evalNodes(t, ctx, `/tr:trip/ca:*`); len(n) != 1 {
		t.Errorf("ns wildcard matched %d", len(n))
	}
	// Unprefixed names must not match namespaced elements (XPath 1.0).
	if n := evalNodes(t, ctx, `/trip`); len(n) != 0 {
		t.Errorf("unprefixed test matched namespaced element")
	}
	// …unless a DefaultNS is configured (our documented extension).
	ctx.DefaultNS = "http://example.org/travel"
	if got := evalStr(t, ctx, `/trip/booking/@person`); got != "John" {
		t.Errorf("DefaultNS path = %q", got)
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	ctx := ctxFor(`<n><a>2</a><b>3</b></n>`)
	cases := []struct {
		expr string
		want float64
	}{
		{`1 + 2 * 3`, 7},
		{`(1 + 2) * 3`, 9},
		{`10 div 4`, 2.5},
		{`10 mod 3`, 1},
		{`-2 + 5`, 3},
		{`- - 3`, 3},
		{`/n/a + /n/b`, 5},
		{`count(//a) + count(//b)`, 2},
		{`sum(/n/*)`, 5},
	}
	for _, c := range cases {
		if got := evalNum(t, ctx, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	bools := []struct {
		expr string
		want bool
	}{
		{`1 < 2`, true},
		{`2 <= 2`, true},
		{`3 > 4`, false},
		{`'a' = 'a'`, true},
		{`'a' != 'b'`, true},
		{`1 = '1'`, true},
		{`true() and false()`, false},
		{`true() or false()`, true},
		{`not(false())`, true},
		{`/n/a = 2`, true},
		{`/n/a < /n/b`, true},
		{`/n/* = 3`, true},  // existential: some node equals 3
		{`/n/* != 3`, true}, // existential: some node differs from 3
		{`/n/c = 1`, false}, // empty node-set never equals
		{`boolean(/n/a)`, true},
		{`boolean(/n/zzz)`, false},
		{`/n/a = true()`, true}, // node-set vs boolean via boolean()
	}
	for _, c := range bools {
		if got := evalBool(t, ctx, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	ctx := ctxFor(`<x>  hello   world </x>`)
	cases := []struct {
		expr string
		want string
	}{
		{`concat('a', 'b', 'c')`, "abc"},
		{`substring('12345', 2, 3)`, "234"},
		{`substring('12345', 2)`, "2345"},
		{`substring('12345', 1.5, 2.6)`, "234"}, // spec example
		{`substring-before('1999/04/01', '/')`, "1999"},
		{`substring-after('1999/04/01', '/')`, "04/01"},
		{`normalize-space(/x)`, "hello world"},
		{`translate('bar', 'abc', 'ABC')`, "BAr"},
		{`translate('--aaa--', 'abc-', 'ABC')`, "AAA"},
		{`string(1 div 0)`, "Infinity"},
		{`string(0 div 0)`, "NaN"},
		{`string(12)`, "12"},
		{`string(12.5)`, "12.5"},
		{`substring('πθ', 2, 1)`, "θ"},
	}
	for _, c := range cases {
		if got := evalStr(t, ctx, c.expr); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	if l := evalNum(t, ctx, `string-length('πθ')`); l != 2 {
		t.Errorf("string-length = %v", l)
	}
	if !evalBool(t, ctx, `starts-with('database', 'data')`) {
		t.Error("starts-with failed")
	}
	if !evalBool(t, ctx, `contains('database', 'tab')`) {
		t.Error("contains failed")
	}
}

func TestNumberFunctions(t *testing.T) {
	ctx := ctxFor(`<x>3.7</x>`)
	cases := []struct {
		expr string
		want float64
	}{
		{`floor(3.7)`, 3},
		{`ceiling(3.2)`, 4},
		{`round(3.5)`, 4},
		{`round(-3.5)`, -3}, // XPath rounds half towards +inf
		{`number(/x)`, 3.7},
		{`floor(number(/x))`, 3},
	}
	for _, c := range cases {
		if got := evalNum(t, ctx, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	if n := evalNum(t, ctx, `number('zzz')`); !math.IsNaN(n) {
		t.Errorf("number('zzz') = %v, want NaN", n)
	}
}

func TestNameFunctions(t *testing.T) {
	ctx := ctxFor(`<a><b x="1"/></a>`)
	if got := evalStr(t, ctx, `local-name(/a/b)`); got != "b" {
		t.Errorf("local-name = %q", got)
	}
	if got := evalStr(t, ctx, `name(/a/b/@x)`); got != "x" {
		t.Errorf("name of attr = %q", got)
	}
	doc := `<p:a xmlns:p="u"><p:b/></p:a>`
	nctx := ctxFor(doc)
	nctx.Namespaces = map[string]string{"q": "u"}
	if got := evalStr(t, nctx, `namespace-uri(/q:a/q:b)`); got != "u" {
		t.Errorf("namespace-uri = %q", got)
	}
	if got := evalStr(t, nctx, `name(/q:a)`); got != "q:a" {
		t.Errorf("name with registered prefix = %q", got)
	}
}

func TestVariables(t *testing.T) {
	ctx := ctxFor(carsDoc)
	ctx.Vars = map[string]Object{
		"Class":   "B",
		"MinYear": 2004.0,
		"Flag":    true,
	}
	if got := evalStr(t, ctx, `//car[class=$Class]/model`); got != "Passat" {
		t.Errorf("var predicate = %q", got)
	}
	if got := evalStr(t, ctx, `//car[@year >= $MinYear]/model`); got != "Passat" {
		t.Errorf("numeric var = %q", got)
	}
	if !evalBool(t, ctx, `$Flag`) {
		t.Error("bool var")
	}
	// Node-set variables participate in paths.
	cars := evalNodes(t, ctx, `//car`)
	ctx.Vars["Cars"] = cars
	if got := evalNum(t, ctx, `count($Cars)`); got != 2 {
		t.Errorf("count($Cars) = %v", got)
	}
	if got := evalStr(t, ctx, `$Cars[2]/model`); got != "Passat" {
		t.Errorf("$Cars[2]/model = %q", got)
	}
	if got := evalStr(t, ctx, `$Cars/model`); got != "Golf" {
		t.Errorf("$Cars/model first = %q", got)
	}
	// Unbound variable is an error.
	if _, err := MustCompile(`$Nope`).Eval(ctx); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestFilterExprWithPath(t *testing.T) {
	ctx := ctxFor(carsDoc)
	if got := evalStr(t, ctx, `(//car)[2]/model`); got != "Passat" {
		t.Errorf("(//car)[2]/model = %q", got)
	}
	if got := evalNum(t, ctx, `count((//car | //bike))`); got != 3 {
		t.Errorf("union count = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,
		`/garage/`,
		`foo(`,
		`[1]`,
		`@`,
		`1 +`,
		`'unterminated`,
		`$`,
		`//car[`,
		`count(1, 2)`, // arity checked at eval, parse ok → see below
		`unknownaxis::x`,
	}
	for _, src := range bad {
		e, err := Compile(src)
		if err != nil {
			continue
		}
		// Some errors only surface at evaluation.
		if _, err := e.Eval(ctxFor(`<a/>`)); err == nil {
			t.Errorf("Compile(%q) and Eval both succeeded, expected an error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	ctx := ctxFor(`<a/>`)
	bad := []string{
		`count('x')`,
		`sum('x')`,
		`nosuchfn()`,
		`'str'/a`, // path over non-node-set
		`(1)[1]`,  // predicate over non-node-set
		`1 | 2`,   // union of non-node-sets
	}
	for _, src := range bad {
		e, err := Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		if _, err := e.Eval(ctx); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestOperatorNamesAsElementNames(t *testing.T) {
	// and/or/div/mod are legal element names in operand position.
	ctx := ctxFor(`<r><and>1</and><or>2</or><div>3</div><mod>4</mod></r>`)
	if got := evalNum(t, ctx, `/r/and + /r/or + /r/div + /r/mod`); got != 10 {
		t.Errorf("operator-named elements sum = %v", got)
	}
}

func TestConcurrentEvaluation(t *testing.T) {
	e := MustCompile(`//car[class='B']/model`)
	ctx1 := ctxFor(carsDoc)
	done := make(chan string, 16)
	for i := 0; i < 16; i++ {
		go func() {
			s, _ := e.EvalString(ctx1)
			done <- s
		}()
	}
	for i := 0; i < 16; i++ {
		if got := <-done; got != "Passat" {
			t.Fatalf("concurrent eval = %q", got)
		}
	}
}

// Property: boolean(not(e)) == !boolean(e) for arbitrary comparison results.
func TestQuickNotInvolution(t *testing.T) {
	ctx := ctxFor(carsDoc)
	f := func(a, b int8) bool {
		lhs := evalBoolQ(ctx, "not("+itoa(int(a))+" < "+itoa(int(b))+")")
		rhs := !evalBoolQ(ctx, itoa(int(a))+" < "+itoa(int(b)))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: string(number(x)) round-trips integers.
func TestQuickNumberStringRoundTrip(t *testing.T) {
	ctx := ctxFor(`<a/>`)
	f := func(n int16) bool {
		return evalStrQ(ctx, "string(number('"+itoa(int(n))+"'))") == itoa(int(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

func evalBoolQ(ctx *Context, src string) bool {
	b, err := MustCompile(src).EvalBool(ctx)
	if err != nil {
		panic(err)
	}
	return b
}

func evalStrQ(ctx *Context, src string) string {
	s, err := MustCompile(src).EvalString(ctx)
	if err != nil {
		panic(err)
	}
	return s
}
