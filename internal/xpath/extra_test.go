package xpath

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestNameFunctionEdgeCases(t *testing.T) {
	ctx := ctxFor(`<a><b/></a>`)
	// Empty node-set argument → empty string.
	if got := evalStr(t, ctx, `name(/nothing)`); got != "" {
		t.Errorf("name(empty) = %q", got)
	}
	if got := evalStr(t, ctx, `local-name(/nothing)`); got != "" {
		t.Errorf("local-name(empty) = %q", got)
	}
	// No-argument versions use the context node.
	doc := xmltree.MustParse(`<root/>`)
	c2 := &Context{Node: doc.Root()}
	if got, _ := MustCompile(`name()`).EvalString(c2); got != "root" {
		t.Errorf("name() = %q", got)
	}
	// Non-node-set argument is an error.
	if _, err := MustCompile(`name('x')`).Eval(ctx); err == nil {
		t.Error("name(string) should fail")
	}
}

func TestStringFunctionNoArg(t *testing.T) {
	doc := xmltree.MustParse(`<v>42</v>`)
	c := &Context{Node: doc.Root()}
	if got, _ := MustCompile(`string()`).EvalString(c); got != "42" {
		t.Errorf("string() = %q", got)
	}
	if got, _ := MustCompile(`string-length()`).EvalNumber(c); got != 2 {
		t.Errorf("string-length() = %v", got)
	}
	if got, _ := MustCompile(`normalize-space()`).EvalString(c); got != "42" {
		t.Errorf("normalize-space() = %q", got)
	}
	if got, _ := MustCompile(`number()`).EvalNumber(c); got != 42 {
		t.Errorf("number() = %v", got)
	}
}

func TestTranslateDuplicatesAndDrops(t *testing.T) {
	ctx := ctxFor(`<a/>`)
	// Duplicate source char: first mapping wins.
	if got := evalStr(t, ctx, `translate('aaa', 'aa', 'bc')`); got != "bbb" {
		t.Errorf("translate dup = %q", got)
	}
}

func TestNumberFormatting(t *testing.T) {
	if FormatNumber(math.NaN()) != "NaN" {
		t.Error("NaN")
	}
	if FormatNumber(math.Inf(-1)) != "-Infinity" {
		t.Error("-Infinity")
	}
	if FormatNumber(-0.5) != "-0.5" {
		t.Error("-0.5")
	}
	if FormatNumber(1e21) == "" {
		t.Error("big numbers render")
	}
}

func TestExprStringReturnsSource(t *testing.T) {
	src := `//car[@year>2004]/model`
	if MustCompile(src).String() != src {
		t.Error("String() should return the source")
	}
}

func TestDescendantOrSelfAbbrevOnAttrs(t *testing.T) {
	ctx := ctxFor(`<a><b x="1"><c x="2"/></b></a>`)
	ns := evalNodes(t, ctx, `//@x`)
	if len(ns) != 2 {
		t.Fatalf("//@x = %d", len(ns))
	}
}

func TestUnionDeduplicates(t *testing.T) {
	ctx := ctxFor(`<a><b/></a>`)
	if got := evalNum(t, ctx, `count(//b | //b)`); got != 1 {
		t.Errorf("union dedup = %v", got)
	}
}

func TestBareSlashSelectsRoot(t *testing.T) {
	doc := xmltree.MustParse(`<a><b/></a>`)
	ctx := &Context{Node: doc.Root().ChildElements()[0]} // context deep in tree
	ns := evalNodes(t, ctx, `/`)
	if len(ns) != 1 || ns[0].Kind != xmltree.DocumentNode {
		t.Fatalf("/ = %v", ns)
	}
}

func TestCustomFunctions(t *testing.T) {
	ctx := ctxFor(`<a/>`)
	ctx.Functions = map[string]func(*Context, []Object) (Object, error){
		"double": func(_ *Context, args []Object) (Object, error) {
			return toNumber(args[0]) * 2, nil
		},
	}
	if got := evalNum(t, ctx, `double(21)`); got != 42 {
		t.Errorf("custom fn = %v", got)
	}
	// Custom functions shadow nothing else; unknown still errors.
	if _, err := MustCompile(`nosuch()`).Eval(ctx); err == nil {
		t.Error("unknown fn should fail")
	}
}

func TestArityErrors(t *testing.T) {
	ctx := ctxFor(`<a/>`)
	bad := []string{
		`concat('a')`,
		`substring('a')`,
		`not()`,
		`translate('a','b')`,
		`position(1)`,
	}
	for _, src := range bad {
		e, err := Compile(src)
		if err != nil {
			continue // some are parse errors, fine
		}
		if _, err := e.Eval(ctx); err == nil {
			t.Errorf("%s should fail arity check", src)
		}
	}
}

func TestStartsWithEndsWith(t *testing.T) {
	ctx := ctxFor(`<a/>`)
	if !evalBool(t, ctx, `ends-with('database', 'base')`) {
		t.Error("ends-with")
	}
}

func TestNodeTypeTests(t *testing.T) {
	ctx := ctxFor(`<a>t<!--c--><b/></a>`)
	if got := evalNum(t, ctx, `count(/a/node())`); got != 3 {
		t.Errorf("node() = %v", got)
	}
	if got := evalNum(t, ctx, `count(/a/comment())`); got != 1 {
		t.Errorf("comment() = %v", got)
	}
	if got := evalNum(t, ctx, `count(/a/text())`); got != 1 {
		t.Errorf("text() = %v", got)
	}
}

func TestFollowingAndPrecedingAxes(t *testing.T) {
	doc := `<r><a><a1/></a><b><b1/><b2/></b><c><c1/></c></r>`
	ctx := ctxFor(doc)
	// following of b1: b2 (sibling subtree) then c and c1 (ancestor's
	// following siblings' subtrees). a/a1 are preceding; r is an ancestor.
	var names []string
	for _, n := range evalNodes(t, ctx, `//b1/following::*`) {
		names = append(names, n.Name.Local)
	}
	if got := strings.Join(names, " "); got != "b2 c c1" {
		t.Errorf("following = %q", got)
	}
	names = nil
	for _, n := range evalNodes(t, ctx, `//c1/preceding::*`) {
		names = append(names, n.Name.Local)
	}
	// preceding excludes ancestors (r, c); order here is reverse-ish
	// within the implementation; compare as sets.
	want := map[string]bool{"a": true, "a1": true, "b": true, "b1": true, "b2": true}
	if len(names) != len(want) {
		t.Fatalf("preceding = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected preceding node %q", n)
		}
	}
}

func TestLexerErrorMessages(t *testing.T) {
	_, err := Compile(`//a[# ]`)
	if err == nil || !strings.Contains(err.Error(), "position") {
		t.Errorf("error = %v", err)
	}
}

func TestNegativeNumbersAndPrecedence(t *testing.T) {
	ctx := ctxFor(`<a/>`)
	if got := evalNum(t, ctx, `-3 * -2`); got != 6 {
		t.Errorf("neg mult = %v", got)
	}
	if got := evalNum(t, ctx, `2 + 3 mod 2`); got != 3 {
		t.Errorf("mod precedence = %v", got)
	}
	if !evalBool(t, ctx, `1 < 2 = true()`) {
		t.Error("comparison chains bind left")
	}
}
