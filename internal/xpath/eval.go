package xpath

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// NodeSet is an XPath node-set result, in the order produced by evaluation
// (document order for forward axes).
type NodeSet []*xmltree.Node

// Object is an XPath value: one of NodeSet, float64, string or bool.
type Object any

// object is the internal alias used by the evaluator.
type object = Object

// Context supplies everything an expression evaluation needs besides the
// expression itself.
type Context struct {
	// Node is the context node. For absolute paths the document root is
	// located by following Parent pointers.
	Node *xmltree.Node
	// Vars resolves $name references. Values must be NodeSet, float64,
	// string or bool. May be nil.
	Vars map[string]Object
	// Namespaces maps the prefixes usable in name tests (q:elem) to
	// namespace URIs. May be nil. Unprefixed name tests match names in no
	// namespace unless DefaultNS is set.
	Namespaces map[string]string
	// DefaultNS, when non-empty, is the namespace URI unprefixed element
	// name tests match against (a deviation from strict XPath 1.0 that the
	// query components use so domain documents with a default namespace
	// can be queried without prefixing every step).
	DefaultNS string
	// Functions adds or overrides functions for this context; it is
	// consulted before the core library. The XQuery-lite interpreter uses
	// it to provide doc(). May be nil.
	Functions map[string]func(ctx *Context, args []Object) (Object, error)
}

// evalCtx is the per-evaluation state: the dynamic context position/size
// plus caches shared across the whole evaluation.
type evalCtx struct {
	node *xmltree.Node
	pos  int // 1-based context position
	size int
	env  *Context
	// attrCache memoizes synthesized attribute nodes so repeated attribute
	// axis traversals of one element yield identical node pointers.
	attrCache map[*xmltree.Node][]*xmltree.Node
}

func (c *evalCtx) with(n *xmltree.Node, pos, size int) *evalCtx {
	return &evalCtx{node: n, pos: pos, size: size, env: c.env, attrCache: c.attrCache}
}

func (c *evalCtx) attrs(n *xmltree.Node) []*xmltree.Node {
	if a, ok := c.attrCache[n]; ok {
		return a
	}
	a := n.AttrNodes()
	c.attrCache[n] = a
	return a
}

// Eval evaluates the expression and returns the result object.
func (e *Expr) Eval(ctx *Context) (Object, error) {
	ec := &evalCtx{node: ctx.Node, pos: 1, size: 1, env: ctx, attrCache: map[*xmltree.Node][]*xmltree.Node{}}
	return e.root.eval(ec)
}

// EvalNodes evaluates the expression and returns its node-set result; it is
// an error if the expression yields a non-node-set.
func (e *Expr) EvalNodes(ctx *Context) (NodeSet, error) {
	o, err := e.Eval(ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := o.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: %q evaluated to %s, not a node-set", e.src, typeName(o))
	}
	return ns, nil
}

// EvalString evaluates the expression and converts the result to a string
// per the XPath string() rules.
func (e *Expr) EvalString(ctx *Context) (string, error) {
	o, err := e.Eval(ctx)
	if err != nil {
		return "", err
	}
	return toString(o), nil
}

// EvalBool evaluates the expression and converts the result to a boolean
// per the XPath boolean() rules.
func (e *Expr) EvalBool(ctx *Context) (bool, error) {
	o, err := e.Eval(ctx)
	if err != nil {
		return false, err
	}
	return toBool(o), nil
}

// EvalNumber evaluates the expression and converts the result to a number
// per the XPath number() rules (NaN on unparsable strings).
func (e *Expr) EvalNumber(ctx *Context) (float64, error) {
	o, err := e.Eval(ctx)
	if err != nil {
		return 0, err
	}
	return toNumber(o), nil
}

// --- conversions ------------------------------------------------------------

func typeName(o object) string {
	switch o.(type) {
	case NodeSet:
		return "node-set"
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "boolean"
	default:
		return fmt.Sprintf("%T", o)
	}
}

func toString(o object) string {
	switch v := o.(type) {
	case NodeSet:
		if len(v) == 0 {
			return ""
		}
		return v[0].TextContent()
	case float64:
		return formatNumber(v)
	case string:
		return v
	case bool:
		if v {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// FormatNumber renders a float per the XPath string(number) rules:
// integral values without a decimal point, NaN and infinities by name.
func FormatNumber(f float64) string { return formatNumber(f) }

func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

func toNumber(o object) float64 {
	switch v := o.(type) {
	case NodeSet:
		return stringToNumber(toString(v))
	case float64:
		return v
	case string:
		return stringToNumber(v)
	case bool:
		if v {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}

func stringToNumber(s string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

func toBool(o object) bool {
	switch v := o.(type) {
	case NodeSet:
		return len(v) > 0
	case float64:
		return v != 0 && !math.IsNaN(v)
	case string:
		return v != ""
	case bool:
		return v
	default:
		return false
	}
}

// --- expression evaluation ---------------------------------------------------

func (e *literalExpr) eval(*evalCtx) (object, error) { return e.val, nil }
func (e *numberExpr) eval(*evalCtx) (object, error)  { return e.val, nil }

func (e *varExpr) eval(c *evalCtx) (object, error) {
	if c.env.Vars != nil {
		if v, ok := c.env.Vars[e.name]; ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("xpath: unbound variable $%s", e.name)
}

func (e *negExpr) eval(c *evalCtx) (object, error) {
	v, err := e.operand.eval(c)
	if err != nil {
		return nil, err
	}
	return -toNumber(v), nil
}

func (e *binaryExpr) eval(c *evalCtx) (object, error) {
	// Short-circuit boolean operators.
	switch e.op {
	case "and":
		l, err := e.left.eval(c)
		if err != nil {
			return nil, err
		}
		if !toBool(l) {
			return false, nil
		}
		r, err := e.right.eval(c)
		if err != nil {
			return nil, err
		}
		return toBool(r), nil
	case "or":
		l, err := e.left.eval(c)
		if err != nil {
			return nil, err
		}
		if toBool(l) {
			return true, nil
		}
		r, err := e.right.eval(c)
		if err != nil {
			return nil, err
		}
		return toBool(r), nil
	}
	l, err := e.left.eval(c)
	if err != nil {
		return nil, err
	}
	r, err := e.right.eval(c)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case "|":
		ln, ok1 := l.(NodeSet)
		rn, ok2 := r.(NodeSet)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("xpath: operands of | must be node-sets, got %s and %s", typeName(l), typeName(r))
		}
		return unionNodeSets(ln, rn), nil
	case "+", "-", "*", "div", "mod":
		a, b := toNumber(l), toNumber(r)
		switch e.op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "div":
			return a / b, nil
		default:
			return math.Mod(a, b), nil
		}
	case "=", "!=":
		return compareEq(l, r, e.op == "!="), nil
	case "<", "<=", ">", ">=":
		return compareRel(l, r, e.op), nil
	}
	return nil, fmt.Errorf("xpath: unknown operator %q", e.op)
}

// compareEq implements the XPath 1.0 =/!= semantics including existential
// node-set comparison.
func compareEq(l, r object, negate bool) bool {
	eq := func(a, b object) bool {
		_, ab := a.(bool)
		_, bb := b.(bool)
		if ab || bb {
			return toBool(a) == toBool(b)
		}
		_, an := a.(float64)
		_, bn := b.(float64)
		if an || bn {
			return toNumber(a) == toNumber(b)
		}
		return toString(a) == toString(b)
	}
	// When either operand is a boolean, the other is converted with
	// boolean() and compared once — even if it is a node-set.
	if _, ok := l.(bool); ok {
		return (toBool(l) == toBool(r)) != negate
	}
	if _, ok := r.(bool); ok {
		return (toBool(l) == toBool(r)) != negate
	}
	ln, lIsSet := l.(NodeSet)
	rn, rIsSet := r.(NodeSet)
	switch {
	case lIsSet && rIsSet:
		for _, a := range ln {
			for _, b := range rn {
				if (a.TextContent() == b.TextContent()) != negate {
					return true
				}
			}
		}
		return false
	case lIsSet:
		for _, a := range ln {
			if eq(a.TextContent(), r) != negate {
				return true
			}
		}
		return false
	case rIsSet:
		for _, b := range rn {
			if eq(l, b.TextContent()) != negate {
				return true
			}
		}
		return false
	default:
		return eq(l, r) != negate
	}
}

// compareRel implements </<=/>/>= with numeric comparison and existential
// node-set semantics.
func compareRel(l, r object, op string) bool {
	cmp := func(a, b float64) bool {
		switch op {
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		default:
			return a >= b
		}
	}
	ln, lIsSet := l.(NodeSet)
	rn, rIsSet := r.(NodeSet)
	switch {
	case lIsSet && rIsSet:
		for _, a := range ln {
			for _, b := range rn {
				if cmp(stringToNumber(a.TextContent()), stringToNumber(b.TextContent())) {
					return true
				}
			}
		}
		return false
	case lIsSet:
		for _, a := range ln {
			if cmp(stringToNumber(a.TextContent()), toNumber(r)) {
				return true
			}
		}
		return false
	case rIsSet:
		for _, b := range rn {
			if cmp(toNumber(l), stringToNumber(b.TextContent())) {
				return true
			}
		}
		return false
	default:
		return cmp(toNumber(l), toNumber(r))
	}
}

func unionNodeSets(a, b NodeSet) NodeSet {
	seen := make(map[*xmltree.Node]bool, len(a)+len(b))
	out := make(NodeSet, 0, len(a)+len(b))
	for _, s := range [2]NodeSet{a, b} {
		for _, n := range s {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

func (e *filterExpr) eval(c *evalCtx) (object, error) {
	v, err := e.primary.eval(c)
	if err != nil {
		return nil, err
	}
	if len(e.preds) == 0 {
		return v, nil
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: predicate applied to %s, not a node-set", typeName(v))
	}
	for _, pred := range e.preds {
		ns, err = filterByPredicate(c, ns, pred)
		if err != nil {
			return nil, err
		}
	}
	return ns, nil
}

func filterByPredicate(c *evalCtx, ns NodeSet, pred exprNode) (NodeSet, error) {
	var out NodeSet
	for i, n := range ns {
		pc := c.with(n, i+1, len(ns))
		v, err := pred.eval(pc)
		if err != nil {
			return nil, err
		}
		if num, isNum := v.(float64); isNum {
			if float64(i+1) == num {
				out = append(out, n)
			}
			continue
		}
		if toBool(v) {
			out = append(out, n)
		}
	}
	return out, nil
}

func (e *pathExpr) eval(c *evalCtx) (object, error) {
	var current NodeSet
	switch {
	case e.start != nil:
		v, err := e.start.eval(c)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: path applied to %s, not a node-set", typeName(v))
		}
		current = ns
	case e.absolute:
		current = NodeSet{documentRoot(c.node)}
	default:
		current = NodeSet{c.node}
	}
	for _, s := range e.steps {
		next, err := evalStep(c, current, s)
		if err != nil {
			return nil, err
		}
		current = next
	}
	return current, nil
}

func documentRoot(n *xmltree.Node) *xmltree.Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

func evalStep(c *evalCtx, input NodeSet, s step) (NodeSet, error) {
	var out NodeSet
	seen := map[*xmltree.Node]bool{}
	for _, ctx := range input {
		candidates := axisNodes(c, ctx, s.axis)
		var matched NodeSet
		for _, n := range candidates {
			if matchTest(c, n, s.axis, s.test) {
				matched = append(matched, n)
			}
		}
		for _, pred := range s.preds {
			var err error
			matched, err = filterByPredicate(c, matched, pred)
			if err != nil {
				return nil, err
			}
		}
		for _, n := range matched {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out, nil
}

func axisNodes(c *evalCtx, n *xmltree.Node, a axis) NodeSet {
	switch a {
	case axisChild:
		return NodeSet(n.Children)
	case axisDescendant, axisDescendantOrSelf:
		var out NodeSet
		if a == axisDescendantOrSelf {
			out = append(out, n)
		}
		var walk func(*xmltree.Node)
		walk = func(x *xmltree.Node) {
			for _, ch := range x.Children {
				out = append(out, ch)
				walk(ch)
			}
		}
		walk(n)
		return out
	case axisSelf:
		return NodeSet{n}
	case axisParent:
		if n.Parent != nil {
			return NodeSet{n.Parent}
		}
		return nil
	case axisAncestor, axisAncestorOrSelf:
		var out NodeSet
		if a == axisAncestorOrSelf {
			out = append(out, n)
		}
		for p := n.Parent; p != nil; p = p.Parent {
			out = append(out, p)
		}
		return out
	case axisAttribute:
		return NodeSet(c.attrs(n))
	case axisFollowingSibling, axisPrecedingSibling:
		if n.Parent == nil {
			return nil
		}
		sibs := n.Parent.Children
		idx := -1
		for i, s := range sibs {
			if s == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil
		}
		var out NodeSet
		if a == axisFollowingSibling {
			out = append(out, sibs[idx+1:]...)
		} else {
			for i := idx - 1; i >= 0; i-- {
				out = append(out, sibs[i])
			}
		}
		return out
	case axisFollowing:
		// All nodes after n in document order, excluding descendants:
		// for each ancestor-or-self, the subtrees of its following
		// siblings.
		var out NodeSet
		for cur := n; cur != nil && cur.Parent != nil; cur = cur.Parent {
			sibs := cur.Parent.Children
			idx := -1
			for i, s := range sibs {
				if s == cur {
					idx = i
					break
				}
			}
			for _, sib := range sibs[idx+1:] {
				out = append(out, sib)
				out = append(out, axisNodes(c, sib, axisDescendant)...)
			}
		}
		return out
	case axisPreceding:
		// All nodes before n in document order, excluding ancestors.
		var out NodeSet
		for cur := n; cur != nil && cur.Parent != nil; cur = cur.Parent {
			sibs := cur.Parent.Children
			idx := -1
			for i, s := range sibs {
				if s == cur {
					idx = i
					break
				}
			}
			for i := idx - 1; i >= 0; i-- {
				out = append(out, sibs[i])
				out = append(out, axisNodes(c, sibs[i], axisDescendant)...)
			}
		}
		return out
	default:
		return nil
	}
}

func matchTest(c *evalCtx, n *xmltree.Node, a axis, t nodeTest) bool {
	principalElement := a != axisAttribute
	switch t.kind {
	case testNodeType:
		switch t.nodeType {
		case "node":
			return true
		case "text":
			return n.Kind == xmltree.TextNode
		case "comment":
			return n.Kind == xmltree.CommentNode
		case "processing-instruction":
			return n.Kind == xmltree.ProcInstNode
		}
		return false
	case testAny:
		if principalElement {
			return n.Kind == xmltree.ElementNode
		}
		return n.Kind == xmltree.AttrNode
	case testNSWildcard:
		uri, ok := c.env.Namespaces[t.prefix]
		if !ok {
			return false
		}
		if principalElement {
			return n.Kind == xmltree.ElementNode && n.Name.Space == uri
		}
		return n.Kind == xmltree.AttrNode && n.Name.Space == uri
	default: // testName
		var uri string
		if t.prefix != "" {
			u, ok := c.env.Namespaces[t.prefix]
			if !ok {
				return false
			}
			uri = u
		} else if principalElement {
			uri = c.env.DefaultNS
		}
		if principalElement {
			return n.Kind == xmltree.ElementNode && n.Name.Local == t.local && n.Name.Space == uri
		}
		return n.Kind == xmltree.AttrNode && n.Name.Local == t.local && n.Name.Space == uri
	}
}

func (e *funcExpr) eval(c *evalCtx) (object, error) {
	if c.env.Functions != nil {
		if custom, ok := c.env.Functions[e.name]; ok {
			args := make([]object, len(e.args))
			for i, a := range e.args {
				v, err := a.eval(c)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			return custom(c.env, args)
		}
	}
	fn, ok := coreFunctions[e.name]
	if !ok {
		return nil, fmt.Errorf("xpath: unknown function %s()", e.name)
	}
	if fn.minArgs > len(e.args) || (fn.maxArgs >= 0 && len(e.args) > fn.maxArgs) {
		return nil, fmt.Errorf("xpath: %s() called with %d arguments", e.name, len(e.args))
	}
	args := make([]object, len(e.args))
	for i, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn.impl(c, args)
}
