package xpath

import (
	"fmt"
	"strconv"
)

// Compile parses an XPath expression into an immutable, reusable Expr.
func Compile(src string) (*Expr, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens, src: src}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after expression", p.peek().kind)
	}
	return &Expr{root: root, src: src}, nil
}

// MustCompile is Compile panicking on error, for static expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	tokens []token
	pos    int
	src    string
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.tokens) {
		return p.tokens[p.pos+1]
	}
	return p.tokens[len(p.tokens)-1]
}
func (p *parser) advance() token {
	t := p.tokens[p.pos]
	if p.pos < len(p.tokens)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokenKind) bool {
	if p.peek().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, found %s", k, p.peek().kind)
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Src: p.src, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// acceptOpName consumes a tokName with one of the given spellings when it
// appears in operator position, returning the spelling.
func (p *parser) acceptOpName(names ...string) (string, bool) {
	if p.peek().kind != tokName {
		return "", false
	}
	for _, n := range names {
		if p.peek().text == n {
			p.advance()
			return n, true
		}
	}
	return "", false
}

// parseExpr := OrExpr
func (p *parser) parseExpr() (exprNode, error) { return p.parseOr() }

func (p *parser) parseOr() (exprNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOpName("or"); !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{"or", left, right}
	}
}

func (p *parser) parseAnd() (exprNode, error) {
	left, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOpName("and"); !ok {
			return left, nil
		}
		right, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{"and", left, right}
	}
}

func (p *parser) parseEquality() (exprNode, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokEq:
			op = "="
		case tokNeq:
			op = "!="
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op, left, right}
	}
}

func (p *parser) parseRelational() (exprNode, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokLt:
			op = "<"
		case tokLte:
			op = "<="
		case tokGt:
			op = ">"
		case tokGte:
			op = ">="
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op, left, right}
	}
}

func (p *parser) parseAdditive() (exprNode, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op, left, right}
	}
}

func (p *parser) parseMultiplicative() (exprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		if p.peek().kind == tokStar {
			op = "*"
			p.advance()
		} else if name, ok := p.acceptOpName("div", "mod"); ok {
			op = name
		} else {
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op, left, right}
	}
}

func (p *parser) parseUnary() (exprNode, error) {
	if p.accept(tokMinus) {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negExpr{operand}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (exprNode, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		right, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{"|", left, right}
	}
	return left, nil
}

// nodeTypeNames are the node tests that look like function calls.
var nodeTypeNames = map[string]bool{"node": true, "text": true, "comment": true, "processing-instruction": true}

// startsFilterExpr decides whether the upcoming tokens begin a FilterExpr
// (primary expression) rather than a location path.
func (p *parser) startsFilterExpr() bool {
	switch p.peek().kind {
	case tokVariable, tokString, tokNumber, tokLParen:
		return true
	case tokName:
		// FunctionName '(' — but node-type tests and axis names are path syntax.
		if p.peek2().kind == tokLParen && !nodeTypeNames[p.peek().text] {
			return true
		}
	}
	return false
}

// parsePath := LocationPath | FilterExpr (('/'|'//') RelativeLocationPath)?
func (p *parser) parsePath() (exprNode, error) {
	if p.startsFilterExpr() {
		primary, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var preds []exprNode
		for p.peek().kind == tokLBracket {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			preds = append(preds, pred)
		}
		fe := exprNode(&filterExpr{primary, preds})
		if p.peek().kind != tokSlash && p.peek().kind != tokSlashSlash {
			return fe, nil
		}
		pe := &pathExpr{start: fe}
		if p.accept(tokSlashSlash) {
			pe.steps = append(pe.steps, step{axis: axisDescendantOrSelf, test: nodeTest{kind: testNodeType, nodeType: "node"}})
		} else {
			p.advance() // '/'
		}
		if err := p.parseRelativePath(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	return p.parseLocationPath()
}

func (p *parser) parseLocationPath() (exprNode, error) {
	pe := &pathExpr{}
	switch p.peek().kind {
	case tokSlash:
		p.advance()
		pe.absolute = true
		if !p.startsStep() {
			return pe, nil // bare "/" selects the root
		}
	case tokSlashSlash:
		p.advance()
		pe.absolute = true
		pe.steps = append(pe.steps, step{axis: axisDescendantOrSelf, test: nodeTest{kind: testNodeType, nodeType: "node"}})
	}
	if err := p.parseRelativePath(pe); err != nil {
		return nil, err
	}
	return pe, nil
}

func (p *parser) startsStep() bool {
	switch p.peek().kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *parser) parseRelativePath(pe *pathExpr) error {
	for {
		s, err := p.parseStep()
		if err != nil {
			return err
		}
		pe.steps = append(pe.steps, s)
		if p.accept(tokSlashSlash) {
			pe.steps = append(pe.steps, step{axis: axisDescendantOrSelf, test: nodeTest{kind: testNodeType, nodeType: "node"}})
			continue
		}
		if p.accept(tokSlash) {
			continue
		}
		return nil
	}
}

func (p *parser) parseStep() (step, error) {
	switch p.peek().kind {
	case tokDot:
		p.advance()
		return step{axis: axisSelf, test: nodeTest{kind: testNodeType, nodeType: "node"}}, nil
	case tokDotDot:
		p.advance()
		return step{axis: axisParent, test: nodeTest{kind: testNodeType, nodeType: "node"}}, nil
	}
	s := step{axis: axisChild}
	if p.accept(tokAt) {
		s.axis = axisAttribute
	} else if p.peek().kind == tokName && p.peek2().kind == tokColonColon {
		ax, ok := axisNames[p.peek().text]
		if !ok {
			return step{}, p.errf("unknown axis %q", p.peek().text)
		}
		p.advance()
		p.advance()
		s.axis = ax
	}
	test, err := p.parseNodeTest()
	if err != nil {
		return step{}, err
	}
	s.test = test
	for p.peek().kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return step{}, err
		}
		s.preds = append(s.preds, pred)
	}
	return s, nil
}

func (p *parser) parseNodeTest() (nodeTest, error) {
	switch p.peek().kind {
	case tokStar:
		p.advance()
		return nodeTest{kind: testAny}, nil
	case tokName:
		name := p.advance().text
		if nodeTypeNames[name] && p.peek().kind == tokLParen {
			p.advance()
			if _, err := p.expect(tokRParen); err != nil {
				return nodeTest{}, err
			}
			return nodeTest{kind: testNodeType, nodeType: name}, nil
		}
		if p.accept(tokColon) {
			if p.accept(tokStar) {
				return nodeTest{kind: testNSWildcard, prefix: name}, nil
			}
			local, err := p.expect(tokName)
			if err != nil {
				return nodeTest{}, err
			}
			return nodeTest{kind: testName, prefix: name, local: local.text}, nil
		}
		return nodeTest{kind: testName, local: name}, nil
	default:
		return nodeTest{}, p.errf("expected a node test, found %s", p.peek().kind)
	}
}

func (p *parser) parsePredicate() (exprNode, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parsePrimary() (exprNode, error) {
	switch p.peek().kind {
	case tokVariable:
		return &varExpr{p.advance().text}, nil
	case tokString:
		return &literalExpr{p.advance().text}, nil
	case tokNumber:
		t := p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &numberExpr{f}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		name := p.advance().text
		if p.accept(tokColon) {
			local, err := p.expect(tokName)
			if err != nil {
				return nil, err
			}
			name = name + ":" + local.text
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var args []exprNode
		if p.peek().kind != tokRParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokComma) {
					break
				}
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &funcExpr{name, args}, nil
	default:
		return nil, p.errf("expected an expression, found %s", p.peek().kind)
	}
}
