package xpath

import (
	"fmt"

	"repro/internal/compilecache"
)

// Lang is the compile-cache language label for XPath expressions
// (compile_seconds{language="xpath"}).
const Lang = "xpath"

// SyntaxError is the error Compile returns for malformed expressions. Pos
// is a byte offset into Src; embedding compilers (internal/xq carves XPath
// spans out of XQuery-lite source) translate it into their own coordinate
// space instead of re-parsing the message.
type SyntaxError struct {
	Src string // the expression source handed to Compile
	Pos int    // byte offset into Src where compilation failed
	Msg string // what went wrong
}

// Error renders the historical message shape.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %q: position %d: %s", e.Src, e.Pos, e.Msg)
}

func compileAny(src string) (any, error) {
	e, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// CompileCached is Compile memoized through the process-wide compile cache
// (compilecache.Default): the first call for a source string parses it,
// later calls from any goroutine share the same immutable *Expr.
func CompileCached(src string) (*Expr, error) {
	v, err := compilecache.Default.Get(Lang, src, compileAny)
	if err != nil {
		return nil, err
	}
	return v.(*Expr), nil
}
