package xpath

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/xmltree"
)

// function describes one core-library function: arity bounds and
// implementation. maxArgs of -1 means variadic.
type function struct {
	minArgs int
	maxArgs int
	impl    func(c *evalCtx, args []object) (object, error)
}

// coreFunctions is the XPath 1.0 core function library (minus the id() and
// lang() functions, which need DTD/xml:lang infrastructure the framework
// does not use).
var coreFunctions map[string]function

func init() {
	coreFunctions = map[string]function{
		// Node-set functions.
		"position": {0, 0, func(c *evalCtx, _ []object) (object, error) {
			return float64(c.pos), nil
		}},
		"last": {0, 0, func(c *evalCtx, _ []object) (object, error) {
			return float64(c.size), nil
		}},
		"count": {1, 1, func(_ *evalCtx, args []object) (object, error) {
			ns, ok := args[0].(NodeSet)
			if !ok {
				return nil, fmt.Errorf("xpath: count() needs a node-set, got %s", typeName(args[0]))
			}
			return float64(len(ns)), nil
		}},
		"name": {0, 1, func(c *evalCtx, args []object) (object, error) {
			n, err := argNode(c, args)
			if err != nil || n == nil {
				return "", err
			}
			// Without prefix bookkeeping the expanded name is the most
			// useful rendering; unprefixed names come out unchanged.
			if n.Name.Space == "" {
				return n.Name.Local, nil
			}
			for p, uri := range c.env.Namespaces {
				if uri == n.Name.Space {
					return p + ":" + n.Name.Local, nil
				}
			}
			return n.Name.Local, nil
		}},
		"local-name": {0, 1, func(c *evalCtx, args []object) (object, error) {
			n, err := argNode(c, args)
			if err != nil || n == nil {
				return "", err
			}
			return n.Name.Local, nil
		}},
		"namespace-uri": {0, 1, func(c *evalCtx, args []object) (object, error) {
			n, err := argNode(c, args)
			if err != nil || n == nil {
				return "", err
			}
			return n.Name.Space, nil
		}},
		// String functions.
		"string": {0, 1, func(c *evalCtx, args []object) (object, error) {
			if len(args) == 0 {
				return c.node.TextContent(), nil
			}
			return toString(args[0]), nil
		}},
		"concat": {2, -1, func(_ *evalCtx, args []object) (object, error) {
			var b strings.Builder
			for _, a := range args {
				b.WriteString(toString(a))
			}
			return b.String(), nil
		}},
		"starts-with": {2, 2, func(_ *evalCtx, args []object) (object, error) {
			return strings.HasPrefix(toString(args[0]), toString(args[1])), nil
		}},
		"ends-with": {2, 2, func(_ *evalCtx, args []object) (object, error) {
			// XPath 2.0 convenience widely assumed by rule authors.
			return strings.HasSuffix(toString(args[0]), toString(args[1])), nil
		}},
		"contains": {2, 2, func(_ *evalCtx, args []object) (object, error) {
			return strings.Contains(toString(args[0]), toString(args[1])), nil
		}},
		"substring-before": {2, 2, func(_ *evalCtx, args []object) (object, error) {
			s, sep := toString(args[0]), toString(args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return s[:i], nil
			}
			return "", nil
		}},
		"substring-after": {2, 2, func(_ *evalCtx, args []object) (object, error) {
			s, sep := toString(args[0]), toString(args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return s[i+len(sep):], nil
			}
			return "", nil
		}},
		"substring": {2, 3, func(_ *evalCtx, args []object) (object, error) {
			s := []rune(toString(args[0]))
			start := math.Round(toNumber(args[1]))
			length := math.Inf(1)
			if len(args) == 3 {
				length = math.Round(toNumber(args[2]))
			}
			if math.IsNaN(start) || math.IsNaN(length) {
				return "", nil
			}
			var out []rune
			for i, r := range s {
				pos := float64(i + 1)
				if pos >= start && pos < start+length {
					out = append(out, r)
				}
			}
			return string(out), nil
		}},
		"string-length": {0, 1, func(c *evalCtx, args []object) (object, error) {
			if len(args) == 0 {
				return float64(len([]rune(c.node.TextContent()))), nil
			}
			return float64(len([]rune(toString(args[0])))), nil
		}},
		"normalize-space": {0, 1, func(c *evalCtx, args []object) (object, error) {
			s := ""
			if len(args) == 0 {
				s = c.node.TextContent()
			} else {
				s = toString(args[0])
			}
			return strings.Join(strings.Fields(s), " "), nil
		}},
		"translate": {3, 3, func(_ *evalCtx, args []object) (object, error) {
			s := toString(args[0])
			from := []rune(toString(args[1]))
			to := []rune(toString(args[2]))
			m := map[rune]rune{}
			drop := map[rune]bool{}
			for i, r := range from {
				if _, dup := m[r]; dup || drop[r] {
					continue
				}
				if i < len(to) {
					m[r] = to[i]
				} else {
					drop[r] = true
				}
			}
			var b strings.Builder
			for _, r := range s {
				if drop[r] {
					continue
				}
				if t, ok := m[r]; ok {
					b.WriteRune(t)
				} else {
					b.WriteRune(r)
				}
			}
			return b.String(), nil
		}},
		// Boolean functions.
		"boolean": {1, 1, func(_ *evalCtx, args []object) (object, error) {
			return toBool(args[0]), nil
		}},
		"not": {1, 1, func(_ *evalCtx, args []object) (object, error) {
			return !toBool(args[0]), nil
		}},
		"true": {0, 0, func(_ *evalCtx, _ []object) (object, error) {
			return true, nil
		}},
		"false": {0, 0, func(_ *evalCtx, _ []object) (object, error) {
			return false, nil
		}},
		// Number functions.
		"number": {0, 1, func(c *evalCtx, args []object) (object, error) {
			if len(args) == 0 {
				return stringToNumber(c.node.TextContent()), nil
			}
			return toNumber(args[0]), nil
		}},
		"sum": {1, 1, func(_ *evalCtx, args []object) (object, error) {
			ns, ok := args[0].(NodeSet)
			if !ok {
				return nil, fmt.Errorf("xpath: sum() needs a node-set, got %s", typeName(args[0]))
			}
			total := 0.0
			for _, n := range ns {
				total += stringToNumber(n.TextContent())
			}
			return total, nil
		}},
		"floor": {1, 1, func(_ *evalCtx, args []object) (object, error) {
			return math.Floor(toNumber(args[0])), nil
		}},
		"ceiling": {1, 1, func(_ *evalCtx, args []object) (object, error) {
			return math.Ceil(toNumber(args[0])), nil
		}},
		"round": {1, 1, func(_ *evalCtx, args []object) (object, error) {
			f := toNumber(args[0])
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return f, nil
			}
			return math.Floor(f + 0.5), nil
		}},
	}
}

// argNode resolves the optional node-set argument of name()/local-name()/
// namespace-uri(): the first node of the argument, or the context node.
func argNode(c *evalCtx, args []object) (*xmltree.Node, error) {
	if len(args) == 0 {
		return c.node, nil
	}
	ns, ok := args[0].(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: expected a node-set argument, got %s", typeName(args[0]))
	}
	if len(ns) == 0 {
		return nil, nil
	}
	return ns[0], nil
}
