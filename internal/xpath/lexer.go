// Package xpath implements an XPath 1.0 subset over xmltree documents:
// location paths with the major axes, predicates with positional semantics,
// the four XPath value types (node-set, string, number, boolean), variables
// ($x), the core function library, and the arithmetic, comparison and
// boolean operators with XPath's coercion rules.
//
// It is the path-expression engine used by the XQuery-lite interpreter
// (internal/xq), the test component evaluator and the atomic event matcher.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF  tokenKind = iota
	tokName           // NCName or QName part
	tokNumber
	tokString
	tokVariable // $name
	tokSlash
	tokSlashSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokAt
	tokDot
	tokDotDot
	tokComma
	tokStar
	tokPipe
	tokPlus
	tokMinus
	tokEq
	tokNeq
	tokLt
	tokLte
	tokGt
	tokGte
	tokColonColon
	tokColon
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of expression", tokName: "name", tokNumber: "number",
		tokString: "string", tokVariable: "variable", tokSlash: "/",
		tokSlashSlash: "//", tokLBracket: "[", tokRBracket: "]",
		tokLParen: "(", tokRParen: ")", tokAt: "@", tokDot: ".",
		tokDotDot: "..", tokComma: ",", tokStar: "*", tokPipe: "|",
		tokPlus: "+", tokMinus: "-", tokEq: "=", tokNeq: "!=",
		tokLt: "<", tokLte: "<=", tokGt: ">", tokGte: ">=",
		tokColonColon: "::", tokColon: ":",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes an XPath expression. Disambiguation of '*' (multiply vs
// wildcard) and of the operator names and/or/div/mod is grammar-directed:
// the parser interprets them by syntactic position.
type lexer struct {
	src string
	pos int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var tokens []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		tokens = append(tokens, t)
		if t.kind == tokEOF {
			return tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{tokEOF, "", start}, nil
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "//":
		l.pos += 2
		return token{tokSlashSlash, "//", start}, nil
	case two == "..":
		l.pos += 2
		return token{tokDotDot, "..", start}, nil
	case two == "::":
		l.pos += 2
		return token{tokColonColon, "::", start}, nil
	case two == "!=":
		l.pos += 2
		return token{tokNeq, "!=", start}, nil
	case two == "<=":
		l.pos += 2
		return token{tokLte, "<=", start}, nil
	case two == ">=":
		l.pos += 2
		return token{tokGte, ">=", start}, nil
	}
	switch c {
	case '/':
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '@':
		l.pos++
		return token{tokAt, "@", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '|':
		l.pos++
		return token{tokPipe, "|", start}, nil
	case '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case '<':
		l.pos++
		return token{tokLt, "<", start}, nil
	case '>':
		l.pos++
		return token{tokGt, ">", start}, nil
	case '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case ':':
		l.pos++
		return token{tokColon, ":", start}, nil
	case '$':
		l.pos++
		name := l.ncName()
		if name == "" {
			return token{}, &SyntaxError{Src: l.src, Pos: start, Msg: "'$' not followed by a name"}
		}
		return token{tokVariable, name, start}, nil
	case '"', '\'':
		quote := c
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], quote)
		if end < 0 {
			return token{}, &SyntaxError{Src: l.src, Pos: start, Msg: "unterminated string literal"}
		}
		s := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{tokString, s, start}, nil
	case '.':
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.number(start)
		}
		l.pos++
		return token{tokDot, ".", start}, nil
	}
	if isDigit(c) {
		return l.number(start)
	}
	if isNameStart(rune(c)) {
		name := l.ncName()
		return token{tokName, name, start}, nil
	}
	return token{}, &SyntaxError{Src: l.src, Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}

func (l *lexer) number(start int) (token, error) {
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}

func (l *lexer) ncName() string {
	start := l.pos
	if l.pos >= len(l.src) || !isNameStart(rune(l.src[l.pos])) {
		return ""
	}
	l.pos++
	for l.pos < len(l.src) && isNameChar(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
