package datalog

import "repro/internal/compilecache"

// QueryLang is the compile-cache language label for Datalog goals
// (compile_seconds{language="datalog"}).
const QueryLang = "datalog"

func parseQueryAny(src string) (any, error) {
	a, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// ParseQueryCached is ParseQuery memoized through the process-wide compile
// cache. The returned Atom is shared between callers: treat it as read-only
// and copy Args before mutating (DatalogService.Handle already does).
func ParseQueryCached(src string) (Atom, error) {
	v, err := compilecache.Default.Get(QueryLang, src, parseQueryAny)
	if err != nil {
		return Atom{}, err
	}
	return v.(Atom), nil
}
