package datalog

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bindings"
)

const family = `
% The classic ancestor program.
parent(john, mary).
parent(mary, sue).
parent(mary, tom).
parent(bob, john).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
`

func evalProgram(t *testing.T, src string) *Database {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db, err := p.Eval()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAncestor(t *testing.T) {
	db := evalProgram(t, family)
	anc := db.Facts("ancestor", 2)
	if len(anc) != 9 {
		t.Fatalf("ancestor facts = %d, want 9:\n%v", len(anc), anc)
	}
	rel := db.Query(Atom{"ancestor", []Term{S("bob"), V("Y")}})
	if rel.Size() != 4 {
		t.Errorf("bob's descendants = %d, want 4\n%s", rel.Size(), rel)
	}
	// Ground query.
	if db.Query(Atom{"ancestor", []Term{S("bob"), S("sue")}}).Size() != 1 {
		t.Error("bob should be an ancestor of sue")
	}
	if db.Query(Atom{"ancestor", []Term{S("sue"), S("bob")}}).Size() != 0 {
		t.Error("sue is not an ancestor of bob")
	}
}

func TestRepeatedVariableInQuery(t *testing.T) {
	db := evalProgram(t, `
		likes(a, b). likes(b, a). likes(c, c).
	`)
	rel := db.Query(Atom{"likes", []Term{V("X"), V("X")}})
	if rel.Size() != 1 || rel.Tuples()[0]["X"].AsString() != "c" {
		t.Errorf("self-likes = %s", rel)
	}
}

func TestComparisons(t *testing.T) {
	db := evalProgram(t, `
		person(alice, 30).
		person(bob, 15).
		person(carol, 65).
		adult(X) :- person(X, A), A >= 18.
		senior(X) :- person(X, A), A >= 65.
		minor(X) :- person(X, A), A < 18.
		notbob(X) :- person(X, _A), X != bob.
	`)
	if got := names(db, "adult"); got != "alice carol" {
		t.Errorf("adults = %q", got)
	}
	if got := names(db, "senior"); got != "carol" {
		t.Errorf("seniors = %q", got)
	}
	if got := names(db, "minor"); got != "bob" {
		t.Errorf("minors = %q", got)
	}
	if got := names(db, "notbob"); got != "alice carol" {
		t.Errorf("notbob = %q", got)
	}
}

func names(db *Database, pred string) string {
	var out []string
	for _, f := range db.Facts(pred, 1) {
		out = append(out, f.Args[0].Const.AsString())
	}
	return strings.Join(out, " ")
}

func TestStratifiedNegation(t *testing.T) {
	db := evalProgram(t, `
		node(a). node(b). node(c).
		edge(a, b).
		connected(X, Y) :- edge(X, Y).
		isolated(X) :- node(X), not hasedge(X).
		hasedge(X) :- edge(X, _Y).
		hasedge(Y) :- edge(_X, Y).
	`)
	if got := names(db, "isolated"); got != "c" {
		t.Errorf("isolated = %q", got)
	}
}

func TestNegationBeforeBindingLiteral(t *testing.T) {
	// The negated literal textually precedes the positive literal that
	// binds its variable; evaluation must reorder.
	db := evalProgram(t, `
		p(a). p(b).
		q(a).
		r(X) :- not q(X), p(X).
	`)
	if got := names(db, "r"); got != "b" {
		t.Errorf("r = %q", got)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	p := MustParse(`
		p(a).
		win(X) :- move(X, Y), not win(Y).
		move(a, a).
	`)
	if _, err := p.Eval(); err == nil {
		t.Fatal("negation through recursion must be rejected")
	}
}

func TestUnsafeRulesRejected(t *testing.T) {
	cases := []string{
		`p(X) :- q(Y).`,                 // head var unbound
		`p(X).`,                         // non-ground fact
		`p(a). r(X) :- p(a), X < 3.`,    // cmp var unbound
		`p(a). r(a) :- p(a), not q(X).`, // negated var unbound
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := prog.Validate(); err == nil {
			t.Errorf("Validate(%q) should fail", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`p(a)`,  // missing dot
		`p(a.`,  // bad paren
		`P(a).`, // uppercase predicate
		`p("unterminated).`,
		`p() :- .`, // empty body literal
		`:- p(a).`, // missing head
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestZeroArityPredicates(t *testing.T) {
	db := evalProgram(t, `
		go().
		ready() :- go().
	`)
	if db.Query(Atom{Pred: "ready"}).Size() != 1 {
		t.Error("ready() should be derivable")
	}
}

func TestStringsAndNumbersAsConstants(t *testing.T) {
	db := evalProgram(t, `
		car("John Doe", "VW Golf", 2003).
		car("John Doe", "VW Passat", 2005).
		recent(M) :- car(_P, M, Y), Y > 2004.
	`)
	rel := db.Query(Atom{"recent", []Term{V("M")}})
	if rel.Size() != 1 || rel.Tuples()[0]["M"].AsString() != "VW Passat" {
		t.Errorf("recent = %s", rel)
	}
}

func TestQueryAllConjunction(t *testing.T) {
	db := evalProgram(t, `
		owns(john, golf). owns(john, passat).
		class(golf, c). class(passat, b).
		avail(paris, b). avail(paris, d).
	`)
	rel := db.QueryAll([]Atom{
		{"owns", []Term{S("john"), V("Car")}},
		{"class", []Term{V("Car"), V("Class")}},
		{"avail", []Term{S("paris"), V("Class")}},
	})
	if rel.Size() != 1 {
		t.Fatalf("conjunctive query = %s", rel)
	}
	if rel.Tuples()[0]["Car"].AsString() != "passat" {
		t.Errorf("car = %v", rel.Tuples()[0])
	}
}

func TestFactsFromRelation(t *testing.T) {
	rel := bindings.NewRelation(
		bindings.MustTuple("Person", bindings.Str("John"), "Dest", bindings.Str("Paris")),
		bindings.MustTuple("Person", bindings.Str("Jane")), // missing Dest: skipped
	)
	facts := FactsFromRelation("input", []string{"Person", "Dest"}, rel)
	if len(facts) != 1 {
		t.Fatalf("facts = %v", facts)
	}
	if facts[0].String() != `input("John", "Paris").` {
		t.Errorf("fact = %s", facts[0])
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	p := MustParse(family)
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if len(p2.Rules) != len(p.Rules) {
		t.Fatalf("rules = %d, want %d", len(p2.Rules), len(p.Rules))
	}
	db1, _ := p.Eval()
	db2, _ := p2.Eval()
	if db1.Size() != db2.Size() {
		t.Errorf("models differ: %d vs %d", db1.Size(), db2.Size())
	}
}

// Property: transitive closure via Datalog equals direct graph reachability.
func TestQuickTransitiveClosure(t *testing.T) {
	f := func(edges []uint8) bool {
		if len(edges) > 24 {
			edges = edges[:24]
		}
		type edge struct{ a, b int }
		var es []edge
		var b strings.Builder
		for i := 0; i+1 < len(edges); i += 2 {
			a, c := int(edges[i]%6), int(edges[i+1]%6)
			es = append(es, edge{a, c})
			fmt.Fprintf(&b, "e(n%d, n%d).\n", a, c)
		}
		if len(es) == 0 {
			return true
		}
		b.WriteString("tc(X, Y) :- e(X, Y).\ntc(X, Z) :- e(X, Y), tc(Y, Z).\n")
		prog, err := Parse(b.String())
		if err != nil {
			return false
		}
		db, err := prog.Eval()
		if err != nil {
			return false
		}
		// Reference: BFS reachability.
		adj := map[int][]int{}
		for _, e := range es {
			adj[e.a] = append(adj[e.a], e.b)
		}
		reach := map[[2]int]bool{}
		for s := 0; s < 6; s++ {
			stack := append([]int(nil), adj[s]...)
			seen := map[int]bool{}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[n] {
					continue
				}
				seen[n] = true
				reach[[2]int{s, n}] = true
				stack = append(stack, adj[n]...)
			}
		}
		if len(db.Facts("tc", 2)) != len(reach) {
			return false
		}
		for pair := range reach {
			got := db.Query(Atom{"tc", []Term{S(fmt.Sprintf("n%d", pair[0])), S(fmt.Sprintf("n%d", pair[1]))}})
			if got.Size() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
