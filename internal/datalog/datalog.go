// Package datalog implements a Datalog engine: parser, safety and
// stratification checks, and semi-naive bottom-up evaluation with stratified
// negation and comparison built-ins.
//
// In the ECA framework it is the archetype of the Logic-Programming-style
// component languages of Section 3 ("languages match free variables", like
// Datalog, F-Logic, XPathLog, Xcerpt): a query extends the incoming tuples
// of variable bindings by matching. The service wrapper in
// internal/services exposes it through the Generic Request Handler.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bindings"
)

// Term is a constant or variable. Variables start with an upper-case letter
// or underscore, per Prolog convention.
type Term struct {
	// Var is the variable name, or "" for constants.
	Var string
	// Const is the constant value (meaningful when Var is "").
	Const bindings.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term from a binding value.
func C(v bindings.Value) Term { return Term{Const: v} }

// S returns a string-constant term.
func S(s string) Term { return C(bindings.Str(s)) }

// N returns a numeric-constant term.
func N(f float64) Term { return C(bindings.Num(f)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in Datalog syntax.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.Kind() == bindings.Number || t.Const.Kind() == bindings.Bool {
		return t.Const.AsString()
	}
	s := t.Const.AsString()
	if isPlainName(s) {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

func isPlainName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z', r == '_':
			if i == 0 {
				return false // would parse back as a variable
			}
		case r >= '0' && r <= '9', r == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// String renders the atom in Datalog syntax.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// key identifies a predicate by name and arity.
func (a Atom) key() predKey { return predKey{a.Pred, len(a.Args)} }

type predKey struct {
	name  string
	arity int
}

func (k predKey) String() string { return fmt.Sprintf("%s/%d", k.name, k.arity) }

// Literal is a body literal: an atom, a negated atom, or a comparison
// built-in (Cmp is one of = != < <= > >=).
type Literal struct {
	Atom    Atom
	Negated bool
	// Cmp marks comparison built-ins; Atom.Args then holds the two
	// operands and Atom.Pred is unused.
	Cmp string
}

// String renders the literal in Datalog syntax.
func (l Literal) String() string {
	if l.Cmp != "" {
		return l.Atom.Args[0].String() + " " + l.Cmp + " " + l.Atom.Args[1].String()
	}
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is head :- body. A rule with an empty body is a fact (the head must
// then be ground).
type Rule struct {
	Head Atom
	Body []Literal
}

// String renders the rule in Datalog syntax.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a set of rules and facts.
type Program struct {
	Rules []Rule
}

// String renders the program, facts first.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Validate checks range restriction (safety) and stratifiability:
//   - every variable in a rule head, in a negated literal or in a comparison
//     must occur in a positive, non-built-in body literal;
//   - facts must be ground;
//   - negation must not occur in a recursive cycle.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := checkSafety(r); err != nil {
			return err
		}
	}
	if _, err := p.stratify(); err != nil {
		return err
	}
	return nil
}

func checkSafety(r Rule) error {
	positive := map[string]bool{}
	for _, l := range r.Body {
		if l.Negated || l.Cmp != "" {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.IsVar() {
				positive[t.Var] = true
			}
		}
	}
	need := func(t Term, where string) error {
		if t.IsVar() && !positive[t.Var] {
			return fmt.Errorf("datalog: unsafe rule %s: variable %s in %s is not bound by a positive body literal", r, t.Var, where)
		}
		return nil
	}
	for _, t := range r.Head.Args {
		if err := need(t, "the head"); err != nil {
			return err
		}
	}
	for _, l := range r.Body {
		if l.Negated || l.Cmp != "" {
			for _, t := range l.Atom.Args {
				if err := need(t, l.String()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// stratify computes a stratification: a map from predicate key to stratum
// such that positive dependencies stay within ≤ and negative dependencies
// strictly increase. An error is returned when negation is involved in a
// cycle.
func (p *Program) stratify() (map[predKey]int, error) {
	strata := map[predKey]int{}
	keys := map[predKey]bool{}
	for _, r := range p.Rules {
		keys[r.Head.key()] = true
		for _, l := range r.Body {
			if l.Cmp == "" {
				keys[l.Atom.key()] = true
			}
		}
	}
	n := len(keys)
	// Iterative relaxation; more than n·n updates implies a negative cycle.
	for iter := 0; ; iter++ {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.key()
			for _, l := range r.Body {
				if l.Cmp != "" {
					continue
				}
				b := l.Atom.key()
				min := strata[b]
				if l.Negated {
					min++
				}
				if strata[h] < min {
					strata[h] = min
					changed = true
				}
			}
		}
		if !changed {
			return strata, nil
		}
		if iter > n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
		}
	}
}

// --- evaluation ----------------------------------------------------------------

// factKey canonicalizes a ground atom for set membership.
func factKey(a Atom) string {
	parts := make([]string, len(a.Args)+1)
	parts[0] = a.Pred
	for i, t := range a.Args {
		parts[i+1] = t.Const.Key()
	}
	return strings.Join(parts, "\x00")
}

// database is a set of ground atoms grouped by predicate, with per-argument
// value indexes so body literals with a bound argument join in expected
// constant time per matching fact.
type database struct {
	facts map[predKey][]Atom
	seen  map[string]bool
	byArg map[argKey][]Atom
}

type argKey struct {
	pred predKey
	pos  int
	val  string // bindings.Value.Key()
}

func newDatabase() *database {
	return &database{facts: map[predKey][]Atom{}, seen: map[string]bool{}, byArg: map[argKey][]Atom{}}
}

func (db *database) add(a Atom) bool {
	k := factKey(a)
	if db.seen[k] {
		return false
	}
	db.seen[k] = true
	db.facts[a.key()] = append(db.facts[a.key()], a)
	for i, t := range a.Args {
		ak := argKey{a.key(), i, t.Const.Key()}
		db.byArg[ak] = append(db.byArg[ak], a)
	}
	return true
}

func (db *database) contains(a Atom) bool { return db.seen[factKey(a)] }

// candidates returns the facts possibly unifying with the literal pattern
// under env, using the most selective available argument index.
func (db *database) candidates(pat Atom, env map[string]bindings.Value) []Atom {
	best := db.facts[pat.key()]
	indexed := false
	for i, t := range pat.Args {
		var v bindings.Value
		if t.IsVar() {
			bound, ok := env[t.Var]
			if !ok {
				continue
			}
			v = bound
		} else {
			v = t.Const
		}
		bucket := db.byArg[argKey{pat.key(), i, v.Key()}]
		if !indexed || len(bucket) < len(best) {
			best = bucket
			indexed = true
		}
	}
	return best
}

// Eval computes the minimal model of the program (with stratified negation)
// and returns the resulting fact database for querying. Evaluation is
// semi-naive within each stratum: rule bodies are re-joined only against
// facts newly derived in the previous iteration.
func (p *Program) Eval() (*Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, _ := p.stratify()
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	db := newDatabase()
	for s := 0; s <= maxStratum; s++ {
		var layer []Rule
		for _, r := range p.Rules {
			if strata[r.Head.key()] == s {
				layer = append(layer, r)
			}
		}
		evalStratum(db, layer)
	}
	return &Database{db: db}, nil
}

func evalStratum(db *database, rules []Rule) {
	// Facts first.
	var delta []Atom
	for _, r := range rules {
		if len(r.Body) == 0 {
			if db.add(r.Head) {
				delta = append(delta, r.Head)
			}
		}
	}
	// Initial round: evaluate every rule against the full database (facts
	// from lower strata are already present).
	for _, r := range rules {
		if len(r.Body) == 0 {
			continue
		}
		for _, a := range deriveAll(db, r, nil) {
			if db.add(a) {
				delta = append(delta, a)
			}
		}
	}
	// Semi-naive iteration.
	for len(delta) > 0 {
		var next []Atom
		for _, r := range rules {
			if len(r.Body) == 0 {
				continue
			}
			for _, a := range deriveAll(db, r, delta) {
				if db.add(a) {
					next = append(next, a)
				}
			}
		}
		delta = next
	}
}

// deriveAll computes the heads derivable from rule r. When delta is
// non-nil the evaluation is semi-naive: each positive body literal in turn
// is seeded from the delta facts, and the remaining literals join against
// the full database through the argument indexes.
//
// Body literals are evaluated positives-first so that negations and
// comparisons — pure filters — see all their variables bound, regardless of
// how the rule author ordered the body.
func deriveAll(db *database, r Rule, delta []Atom) []Atom {
	var positives []Literal
	var filters []Literal
	for _, l := range r.Body {
		if !l.Negated && l.Cmp == "" {
			positives = append(positives, l)
		} else {
			filters = append(filters, l)
		}
	}
	var out []Atom
	// walk joins the positive literals from index i (skipping the seeded
	// one), then applies the filters, then emits the head.
	var walk func(i, seeded int, env map[string]bindings.Value)
	walk = func(i, seeded int, env map[string]bindings.Value) {
		if i == len(positives) {
			for _, l := range filters {
				if l.Cmp != "" {
					if !evalCmp(l, env) {
						return
					}
					continue
				}
				if db.contains(substAtom(l.Atom, env)) {
					return
				}
			}
			out = append(out, substAtom(r.Head, env))
			return
		}
		if i == seeded {
			walk(i+1, seeded, env)
			return
		}
		for _, f := range db.candidates(positives[i].Atom, env) {
			if env2, ok := unify(positives[i].Atom, f, env); ok {
				walk(i+1, seeded, env2)
			}
		}
	}
	if delta == nil {
		walk(0, -1, map[string]bindings.Value{})
		return out
	}
	for seeded, l := range positives {
		key := l.Atom.key()
		for _, f := range delta {
			if f.key() != key {
				continue
			}
			if env, ok := unify(l.Atom, f, map[string]bindings.Value{}); ok {
				walk(0, seeded, env)
			}
		}
	}
	return out
}

func substAtom(a Atom, env map[string]bindings.Value) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			if v, ok := env[t.Var]; ok {
				args[i] = C(v)
				continue
			}
		}
		args[i] = t
	}
	return Atom{a.Pred, args}
}

// unify matches a (possibly non-ground) atom against a ground fact,
// extending env; it returns a fresh env on success.
func unify(pat, fact Atom, env map[string]bindings.Value) (map[string]bindings.Value, bool) {
	out := env
	copied := false
	for i, t := range pat.Args {
		fv := fact.Args[i].Const
		if t.IsVar() {
			if old, ok := out[t.Var]; ok {
				if !old.Equal(fv) {
					return nil, false
				}
				continue
			}
			if !copied {
				n := make(map[string]bindings.Value, len(out)+1)
				for k, v := range out {
					n[k] = v
				}
				out = n
				copied = true
			}
			out[t.Var] = fv
			continue
		}
		if !t.Const.Equal(fv) {
			return nil, false
		}
	}
	return out, true
}

func evalCmp(l Literal, env map[string]bindings.Value) bool {
	get := func(t Term) (bindings.Value, bool) {
		if t.IsVar() {
			v, ok := env[t.Var]
			return v, ok
		}
		return t.Const, true
	}
	a, ok1 := get(l.Atom.Args[0])
	b, ok2 := get(l.Atom.Args[1])
	if !ok1 || !ok2 {
		return false
	}
	switch l.Cmp {
	case "=":
		return a.Equal(b)
	case "!=":
		return !a.Equal(b)
	}
	x, okA := a.AsNumber()
	y, okB := b.AsNumber()
	if okA && okB {
		switch l.Cmp {
		case "<":
			return x < y
		case "<=":
			return x <= y
		case ">":
			return x > y
		case ">=":
			return x >= y
		}
		return false
	}
	// Fall back to lexicographic comparison for non-numeric operands.
	switch l.Cmp {
	case "<":
		return a.AsString() < b.AsString()
	case "<=":
		return a.AsString() <= b.AsString()
	case ">":
		return a.AsString() > b.AsString()
	case ">=":
		return a.AsString() >= b.AsString()
	}
	return false
}

// Database is the materialized model of an evaluated program.
type Database struct {
	db *database
}

// Query matches a single goal atom against the database and returns the
// tuples of variable bindings for the atom's variables. Repeated variables
// in the goal act as join (equality) constraints.
func (d *Database) Query(goal Atom) *bindings.Relation {
	rel := bindings.NewRelation()
	for _, f := range d.db.candidates(goal, nil) {
		if env, ok := unify(goal, f, map[string]bindings.Value{}); ok {
			t := bindings.Tuple{}
			for k, v := range env {
				t[k] = v
			}
			rel.Add(t)
		}
	}
	return rel
}

// QueryAll conjunctively matches several goal atoms (a read-only BGP over
// the materialized model) and returns the joined bindings.
func (d *Database) QueryAll(goals []Atom) *bindings.Relation {
	rel := bindings.Unit()
	for _, g := range goals {
		rel = rel.Join(d.Query(g))
		if rel.Empty() {
			break
		}
	}
	return rel
}

// Facts returns all derived facts for a predicate, sorted, mainly for tests
// and debugging.
func (d *Database) Facts(pred string, arity int) []Atom {
	fs := append([]Atom(nil), d.db.facts[predKey{pred, arity}]...)
	sort.Slice(fs, func(i, j int) bool { return fs[i].String() < fs[j].String() })
	return fs
}

// Size returns the total number of derived facts.
func (d *Database) Size() int { return len(d.db.seen) }
