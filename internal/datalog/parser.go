package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/bindings"
)

// Parse reads a Datalog program. Syntax:
//
//	parent(john, mary).                 % fact
//	ancestor(X, Y) :- parent(X, Y).    % rule
//	ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
//	adult(X) :- person(X, Age), Age >= 18.
//	orphan(X) :- person(X, _A), not parent(_P, X).  % stratified negation
//
// Identifiers starting with an upper-case letter or '_' are variables;
// lower-case identifiers, numbers and double-quoted strings are constants.
// '%' starts a comment to end of line.
func Parse(src string) (*Program, error) {
	p := &dlParser{src: src}
	prog := &Program{}
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			break
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// MustParse parses a static program, panicking on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseQuery parses a single goal atom such as "ancestor(X, mary)"
// (an optional leading "?-" and trailing "." are accepted).
func ParseQuery(src string) (Atom, error) {
	src = strings.TrimSpace(src)
	src = strings.TrimPrefix(src, "?-")
	src = strings.TrimSuffix(strings.TrimSpace(src), ".")
	p := &dlParser{src: src}
	a, err := p.parseAtom()
	if err != nil {
		return Atom{}, err
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return Atom{}, fmt.Errorf("datalog: trailing input after query atom: %q", p.src[p.pos:])
	}
	return a, nil
}

type dlParser struct {
	src  string
	pos  int
	line int
}

func (p *dlParser) errf(format string, args ...any) error {
	return fmt.Errorf("datalog: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *dlParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '%' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c == '\n' {
			p.line++
			p.pos++
			continue
		}
		if unicode.IsSpace(rune(c)) {
			p.pos++
			continue
		}
		return
	}
}

func (p *dlParser) parseRule() (Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return Rule{}, err
	}
	p.skipWS()
	if strings.HasPrefix(p.src[p.pos:], ":-") {
		p.pos += 2
		var body []Literal
		for {
			l, err := p.parseLiteral()
			if err != nil {
				return Rule{}, err
			}
			body = append(body, l)
			p.skipWS()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect('.'); err != nil {
			return Rule{}, err
		}
		return Rule{head, body}, nil
	}
	if err := p.expect('.'); err != nil {
		return Rule{}, err
	}
	return Rule{Head: head}, nil
}

func (p *dlParser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q, found %q", string(c), peekAt(p.src, p.pos))
	}
	p.pos++
	return nil
}

func (p *dlParser) parseLiteral() (Literal, error) {
	p.skipWS()
	if strings.HasPrefix(p.src[p.pos:], "not") {
		after := p.pos + 3
		if after < len(p.src) && unicode.IsSpace(rune(p.src[after])) {
			p.pos = after
			a, err := p.parseAtom()
			if err != nil {
				return Literal{}, err
			}
			return Literal{Atom: a, Negated: true}, nil
		}
	}
	if p.pos < len(p.src) && p.src[p.pos] == '!' && !strings.HasPrefix(p.src[p.pos:], "!=") {
		p.pos++
		a, err := p.parseAtom()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Atom: a, Negated: true}, nil
	}
	// Either a regular atom or a comparison "term op term".
	save := p.pos
	t, err := p.parseTerm()
	if err == nil {
		p.skipWS()
		for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
			if strings.HasPrefix(p.src[p.pos:], op) {
				p.pos += len(op)
				u, err := p.parseTerm()
				if err != nil {
					return Literal{}, err
				}
				return Literal{Atom: Atom{Args: []Term{t, u}}, Cmp: op}, nil
			}
		}
	}
	p.pos = save
	a, err := p.parseAtom()
	if err != nil {
		return Literal{}, err
	}
	return Literal{Atom: a}, nil
}

func (p *dlParser) parseAtom() (Atom, error) {
	p.skipWS()
	name := p.parseIdent()
	if name == "" {
		return Atom{}, p.errf("expected a predicate name, found %q", peekAt(p.src, p.pos))
	}
	if r := rune(name[0]); unicode.IsUpper(r) || r == '_' {
		return Atom{}, p.errf("predicate name %q must not start with an upper-case letter", name)
	}
	if err := p.expect('('); err != nil {
		return Atom{}, err
	}
	var args []Term
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ')' {
		p.pos++
		return Atom{name, nil}, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return Atom{}, err
	}
	return Atom{name, args}, nil
}

func (p *dlParser) parseTerm() (Term, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("expected a term")
	}
	c := p.src[p.pos]
	switch {
	case c == '"':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
				switch p.src[p.pos] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(p.src[p.pos])
				}
				p.pos++
				continue
			}
			if p.src[p.pos] == '"' {
				p.pos++
				return S(b.String()), nil
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		return Term{}, p.errf("unterminated string")
	case c == '-' || (c >= '0' && c <= '9'):
		start := p.pos
		if c == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			if p.src[p.pos] == '.' {
				if p.pos+1 >= len(p.src) || p.src[p.pos+1] < '0' || p.src[p.pos+1] > '9' {
					break
				}
			}
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return Term{}, p.errf("bad number %q", p.src[start:p.pos])
		}
		return N(f), nil
	default:
		name := p.parseIdent()
		if name == "" {
			return Term{}, p.errf("expected a term, found %q", peekAt(p.src, p.pos))
		}
		if r := rune(name[0]); unicode.IsUpper(r) || r == '_' {
			return V(name), nil
		}
		return S(name), nil
	}
}

func (p *dlParser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func peekAt(s string, pos int) string {
	end := pos + 10
	if end > len(s) {
		end = len(s)
	}
	if pos >= len(s) {
		return "end of input"
	}
	return s[pos:end]
}

// FactsFromRelation converts a relation into ground facts of the given
// predicate, one argument per listed variable — how the service wrapper
// feeds the incoming ECA variable bindings into a Datalog program.
func FactsFromRelation(pred string, vars []string, rel *bindings.Relation) []Rule {
	var out []Rule
	for _, t := range rel.Tuples() {
		args := make([]Term, 0, len(vars))
		ok := true
		for _, v := range vars {
			val, bound := t[v]
			if !bound {
				ok = false
				break
			}
			args = append(args, C(val))
		}
		if ok {
			out = append(out, Rule{Head: Atom{pred, args}})
		}
	}
	return out
}
