package services

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xq"
)

// XQueryService is the framework-aware functional query service of Section
// 4.3 — the stand-in for the wrapped Saxon XQuery node. For every input
// tuple it evaluates the query with the tuple's variables bound and returns
// the result items as functional results (one <log:answer> per input tuple).
type XQueryService struct {
	store      *DocStore
	namespaces map[string]string
}

// NewXQueryService creates the service over a document store. The
// namespace map is offered to queries for prefixed name tests.
func NewXQueryService(store *DocStore, namespaces map[string]string) *XQueryService {
	return &XQueryService{store: store, namespaces: namespaces}
}

// Handle implements grh.Service for query components.
func (s *XQueryService) Handle(req *protocol.Request) (*protocol.Answer, error) {
	if req.Kind != protocol.Query {
		return nil, fmt.Errorf("xqueryd: unsupported request kind %q", req.Kind)
	}
	text, err := queryText(req.Expression)
	if err != nil {
		return nil, fmt.Errorf("xqueryd: %w", err)
	}
	q, err := xq.CompileCached(text)
	if err != nil {
		return nil, fmt.Errorf("xqueryd: %w", err)
	}
	a := &protocol.Answer{RuleID: req.RuleID, Component: req.Component}
	for _, t := range req.Bindings.Tuples() {
		ctx := &xq.Context{
			Docs:       s.store.Resolver(),
			Vars:       tupleToXQVars(t),
			Namespaces: s.namespaces,
		}
		seq, err := q.Eval(ctx)
		if err != nil {
			return nil, fmt.Errorf("xqueryd: %w", err)
		}
		row := protocol.AnswerRow{Tuple: t}
		for _, item := range seq {
			row.Results = append(row.Results, itemToValue(item))
		}
		a.Rows = append(a.Rows, row)
	}
	return a, nil
}

// queryText extracts the query source from the expression element: either
// the text content of a marked-up <xq:query> element or the wrapped opaque
// text.
func queryText(expr *xmltree.Node) (string, error) {
	if expr == nil {
		return "", fmt.Errorf("query component without expression")
	}
	if s, ok := unwrapOpaque(expr); ok {
		return s, nil
	}
	s := strings.TrimSpace(expr.TextContent())
	if s == "" {
		return "", fmt.Errorf("empty query expression")
	}
	return s, nil
}

func tupleToXQVars(t bindings.Tuple) map[string]xq.Sequence {
	vars := make(map[string]xq.Sequence, len(t))
	for name, v := range t {
		switch v.Kind() {
		case bindings.XML:
			vars[name] = xq.Sequence{v.Node()}
		case bindings.Number:
			f, _ := v.AsNumber()
			vars[name] = xq.Sequence{f}
		case bindings.Bool:
			vars[name] = xq.Sequence{v.AsBool()}
		default:
			vars[name] = xq.Sequence{v.AsString()}
		}
	}
	return vars
}

func itemToValue(item xq.Item) bindings.Value {
	switch v := item.(type) {
	case *xmltree.Node:
		if v.Kind == xmltree.AttrNode || v.Kind == xmltree.TextNode {
			return bindings.Str(v.TextContent())
		}
		return bindings.Fragment(v.Clone())
	case float64:
		return bindings.Num(v)
	case bool:
		return bindings.Boolean(v)
	default:
		return bindings.Str(xq.ItemString(item))
	}
}

// DatalogService is the LP-style query service of Section 3: queries are
// goal atoms over a Datalog rulebase; variables shared with the input
// bindings act as constants, fresh variables extend the tuples — the
// "languages match free variables" behaviour.
type DatalogService struct {
	mu sync.RWMutex
	db *datalog.Database
	// program retained for AddFacts re-evaluation.
	program *datalog.Program
}

// NewDatalogService evaluates the rulebase once and serves queries over the
// materialized model.
func NewDatalogService(program *datalog.Program) (*DatalogService, error) {
	db, err := program.Eval()
	if err != nil {
		return nil, err
	}
	return &DatalogService{db: db, program: program}, nil
}

// AddFacts extends the rulebase and re-materializes the model.
func (s *DatalogService) AddFacts(facts []datalog.Rule) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.program.Rules = append(s.program.Rules, facts...)
	db, err := s.program.Eval()
	if err != nil {
		return err
	}
	s.db = db
	return nil
}

// Handle implements grh.Service for query components. The expression text
// is a goal atom, e.g. "owns(Person, Car)"; argument variables whose names
// are bound in an input tuple are substituted before matching.
func (s *DatalogService) Handle(req *protocol.Request) (*protocol.Answer, error) {
	if req.Kind != protocol.Query {
		return nil, fmt.Errorf("datalogd: unsupported request kind %q", req.Kind)
	}
	text, err := queryText(req.Expression)
	if err != nil {
		return nil, fmt.Errorf("datalogd: %w", err)
	}
	goal, err := datalog.ParseQueryCached(text)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	db := s.db
	s.mu.RUnlock()
	a := &protocol.Answer{RuleID: req.RuleID, Component: req.Component}
	for _, t := range req.Bindings.Tuples() {
		bound := goal
		bound.Args = make([]datalog.Term, len(goal.Args))
		for i, arg := range goal.Args {
			if arg.IsVar() {
				if v, ok := t[arg.Var]; ok {
					bound.Args[i] = datalog.C(v)
					continue
				}
			}
			bound.Args[i] = arg
		}
		for _, res := range db.Query(bound).Tuples() {
			a.Rows = append(a.Rows, protocol.AnswerRow{Tuple: t.Merge(res)})
		}
	}
	return a, nil
}

// TestEvaluator evaluates test components: boolean comparison expressions
// over the bound variables, in XPath syntax (e.g. "$Class != ” and $N >
// 3"). Per Section 4.5 tests are "in general evaluated locally" — the
// engine embeds this evaluator, and it is also exposed as a service for
// rules that address a test language explicitly.
type TestEvaluator struct{}

// Handle implements grh.Service for test components: the answer contains
// exactly the input tuples satisfying the condition.
func (TestEvaluator) Handle(req *protocol.Request) (*protocol.Answer, error) {
	if req.Kind != protocol.Test {
		return nil, fmt.Errorf("testd: unsupported request kind %q", req.Kind)
	}
	text, err := queryText(req.Expression)
	if err != nil {
		return nil, fmt.Errorf("testd: %w", err)
	}
	keep, err := EvalTest(text, req.Bindings)
	if err != nil {
		return nil, err
	}
	return protocol.NewAnswer(req.RuleID, req.Component, keep), nil
}

// EvalTest filters a relation by a boolean XPath condition over the bound
// variables (σ of Section 3).
func EvalTest(cond string, rel *bindings.Relation) (*bindings.Relation, error) {
	expr, err := xpath.CompileCached(cond)
	if err != nil {
		return nil, fmt.Errorf("test: %w", err)
	}
	dummy := xmltree.NewDocument()
	var evalErr error
	out := rel.Select(func(t bindings.Tuple) bool {
		if evalErr != nil {
			return false
		}
		vars := make(map[string]xpath.Object, len(t))
		for name, v := range t {
			switch v.Kind() {
			case bindings.XML:
				vars[name] = xpath.NodeSet{v.Node()}
			case bindings.Number:
				f, _ := v.AsNumber()
				vars[name] = f
			case bindings.Bool:
				vars[name] = v.AsBool()
			default:
				vars[name] = v.AsString()
			}
		}
		ok, err := expr.EvalBool(&xpath.Context{Node: dummy, Vars: vars})
		if err != nil {
			evalErr = fmt.Errorf("test %q: %w", cond, err)
			return false
		}
		return ok
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// OpaqueXMLStore is the framework-UNaware query node of Fig. 9 (the eXist
// stand-in): it is only an http.Handler — GET ?query=<xpath> evaluates the
// query against its document and returns a plain <results> document. It
// knows nothing of eca:request or log:answers; the GRH mediates.
type OpaqueXMLStore struct {
	doc        *xmltree.Node
	namespaces map[string]string
	requests   *obs.Counter
}

// NewOpaqueXMLStore serves queries against one document.
func NewOpaqueXMLStore(doc *xmltree.Node, namespaces map[string]string) *OpaqueXMLStore {
	return &OpaqueXMLStore{doc: doc, namespaces: namespaces}
}

// SetObs counts this node's raw GETs into service_requests_total
// {kind="opaque-store"} on the hub; returns the receiver for chaining.
func (s *OpaqueXMLStore) SetObs(h *obs.Hub) *OpaqueXMLStore {
	s.requests = opaqueRequestCounter(h, "opaque-store")
	return s
}

// ServeHTTP implements the raw query protocol.
func (s *OpaqueXMLStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	q := r.URL.Query().Get("query")
	if q == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	expr, err := xpath.CompileCached(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := expr.Eval(&xpath.Context{Node: s.doc, Namespaces: s.namespaces})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	out := xmltree.NewElement("", "results")
	switch v := res.(type) {
	case xpath.NodeSet:
		for _, n := range v {
			if n.Kind == xmltree.AttrNode || n.Kind == xmltree.TextNode {
				out.Append(xmltree.NewElement("", "value").AppendText(n.TextContent()))
			} else {
				out.Append(n.Clone())
			}
		}
	default:
		out.Append(xmltree.NewElement("", "value").AppendText(fmt.Sprintf("%v", v)))
	}
	w.Header().Set("Content-Type", "application/xml")
	fmt.Fprint(w, out.String())
}

// OpaqueXQueryNode is a framework-unaware XQuery endpoint addressed
// directly by URL: GET ?query=<xquery> evaluates the query against its
// document store and returns the raw result sequence. A query whose result
// is a log:answers document reproduces the Fig. 10 trick — a plain XQuery
// engine "faking" framework awareness by generating the answer markup
// itself.
type OpaqueXQueryNode struct {
	store      *DocStore
	namespaces map[string]string
	requests   *obs.Counter
}

// NewOpaqueXQueryNode serves raw XQuery-lite over a document store.
func NewOpaqueXQueryNode(store *DocStore, namespaces map[string]string) *OpaqueXQueryNode {
	return &OpaqueXQueryNode{store: store, namespaces: namespaces}
}

// SetObs counts this node's raw GETs into service_requests_total
// {kind="opaque-xquery"} on the hub; returns the receiver for chaining.
func (s *OpaqueXQueryNode) SetObs(h *obs.Hub) *OpaqueXQueryNode {
	s.requests = opaqueRequestCounter(h, "opaque-xquery")
	return s
}

// opaqueRequestCounter resolves the shared service_requests_total family
// for a framework-unaware node.
func opaqueRequestCounter(h *obs.Hub, kind string) *obs.Counter {
	return h.Metrics().CounterVec("service_requests_total", "Requests handled by component language services, by request kind.", "kind").With(kind)
}

// ServeHTTP implements the raw query protocol.
func (s *OpaqueXQueryNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	qs := r.URL.Query().Get("query")
	if qs == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	q, err := xq.CompileCached(qs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := q.Eval(&xq.Context{Docs: s.store.Resolver(), Namespaces: s.namespaces})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	if len(seq) == 1 {
		if n, ok := seq[0].(*xmltree.Node); ok && n.Kind == xmltree.ElementNode {
			fmt.Fprint(w, n.String())
			return
		}
	}
	out := xmltree.NewElement("", "results")
	for _, item := range seq {
		if n, ok := item.(*xmltree.Node); ok && n.Kind == xmltree.ElementNode {
			out.Append(n.Clone())
		} else {
			out.Append(xmltree.NewElement("", "value").AppendText(xq.ItemString(item)))
		}
	}
	fmt.Fprint(w, out.String())
}

var (
	_ grh.Service = (*XQueryService)(nil)
	_ grh.Service = (*DatalogService)(nil)
	_ grh.Service = TestEvaluator{}
)
