package services

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/events"
	"repro/internal/protocol"
	"repro/internal/snoop"
	"repro/internal/xmltree"
)

func TestDocStore(t *testing.T) {
	s := NewDocStore()
	s.Put("a.xml", xmltree.MustParse(`<a/>`))
	s.Put("b.xml", xmltree.MustParse(`<b/>`))
	if _, ok := s.Get("a.xml"); !ok {
		t.Error("a.xml missing")
	}
	if uris := s.URIs(); len(uris) != 2 || uris[0] != "a.xml" {
		t.Errorf("uris = %v", uris)
	}
	if _, err := s.Resolver()("nope"); err == nil {
		t.Error("resolver should fail for unknown uri")
	}
	if err := s.Update("a.xml", func(d *xmltree.Node) error {
		d.Root().Append(xmltree.NewElement("", "child"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Get("a.xml")
	if len(doc.Root().ChildElements()) != 1 {
		t.Error("update lost")
	}
	if err := s.Update("nope", func(*xmltree.Node) error { return nil }); err == nil {
		t.Error("update of unknown doc should fail")
	}
}

func TestEventMatcherService(t *testing.T) {
	stream := events.NewStream()
	var got []*protocol.Answer
	m := NewEventMatcher(stream, &Deliverer{Local: func(a *protocol.Answer) { got = append(got, a) }})
	defer m.Close()

	reg := &protocol.Request{
		Kind: protocol.RegisterEvent, RuleID: "r1", Component: "event[1]",
		Expression: xmltree.MustParse(`<t:booking xmlns:t="http://t/" person="$P"/>`).Root(),
	}
	if _, err := m.Handle(reg); err != nil {
		t.Fatal(err)
	}
	if m.Registrations() != 1 {
		t.Fatalf("registrations = %d", m.Registrations())
	}
	e := xmltree.NewElement("http://t/", "booking")
	e.SetAttr("", "person", "John")
	stream.Publish(events.New(e))
	if len(got) != 1 || got[0].RuleID != "r1" || len(got[0].Rows) != 1 {
		t.Fatalf("detections = %+v", got)
	}
	if got[0].Rows[0].Tuple["P"].AsString() != "John" {
		t.Errorf("binding = %v", got[0].Rows[0].Tuple)
	}
	// The matched event travels as a functional result.
	if len(got[0].Rows[0].Results) != 1 || got[0].Rows[0].Results[0].Kind() != bindings.XML {
		t.Errorf("event payload missing from results: %v", got[0].Rows[0].Results)
	}
	// Unregister.
	if _, err := m.Handle(&protocol.Request{Kind: protocol.UnregisterEvent, RuleID: "r1", Component: "event[1]"}); err != nil {
		t.Fatal(err)
	}
	if m.Registrations() != 0 {
		t.Error("unregister failed")
	}
	// Unsupported kind.
	if _, err := m.Handle(&protocol.Request{Kind: protocol.Query}); err == nil {
		t.Error("query to matcher should fail")
	}
}

func TestEventMatcherRemoteDelivery(t *testing.T) {
	var received []*protocol.Answer
	cb := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc, _ := xmltree.Parse(r.Body)
		a, err := protocol.DecodeAnswers(doc)
		if err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		received = append(received, a)
	}))
	defer cb.Close()
	stream := events.NewStream()
	m := NewEventMatcher(stream, &Deliverer{})
	defer m.Close()
	m.Handle(&protocol.Request{
		Kind: protocol.RegisterEvent, RuleID: "r", Component: "event[1]", ReplyTo: cb.URL,
		Expression: xmltree.MustParse(`<e/>`).Root(),
	})
	stream.Publish(events.New(xmltree.NewElement("", "e")))
	if len(received) != 1 || received[0].RuleID != "r" {
		t.Fatalf("remote detections = %+v", received)
	}
}

func TestSnoopServiceHandle(t *testing.T) {
	stream := events.NewStream()
	var got []*protocol.Answer
	s := NewSnoopService(stream, &Deliverer{Local: func(a *protocol.Answer) { got = append(got, a) }})
	defer s.Close()
	expr := xmltree.MustParse(`<snoop:seq xmlns:snoop="` + snoop.NS + `" context="chronicle">
		<snoop:event><a p="$P"/></snoop:event>
		<snoop:event><b p="$P"/></snoop:event>
	</snoop:seq>`).Root()
	if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: "r", Component: "event[1]", Expression: expr}); err != nil {
		t.Fatal(err)
	}
	if s.Registrations() != 1 {
		t.Fatal("no detector registered")
	}
	pub := func(name, p string) {
		e := xmltree.NewElement("", name)
		e.SetAttr("", "p", p)
		stream.Publish(events.New(e))
	}
	pub("a", "x")
	pub("b", "y") // incompatible join variable
	pub("b", "x") // completes the sequence
	if len(got) != 1 {
		t.Fatalf("snoop detections = %+v", got)
	}
	row := got[0].Rows[0]
	if row.Tuple["P"].AsString() != "x" {
		t.Errorf("binding = %v", row.Tuple)
	}
	if len(row.Results) != 2 {
		t.Errorf("constituents = %d, want 2", len(row.Results))
	}
	// Bad context and bad expression.
	bad := xmltree.MustParse(`<snoop:seq xmlns:snoop="` + snoop.NS + `" context="zap">
		<snoop:event><a/></snoop:event><snoop:event><b/></snoop:event></snoop:seq>`).Root()
	if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: "r2", Component: "e", Expression: bad}); err == nil {
		t.Error("bad context should fail")
	}
	s.Handle(&protocol.Request{Kind: protocol.UnregisterEvent, RuleID: "r", Component: "event[1]"})
	if s.Registrations() != 0 {
		t.Error("unregister failed")
	}
}

func TestXQueryServicePerTuple(t *testing.T) {
	store := NewDocStore()
	store.Put("cars", xmltree.MustParse(`<o><owner n="a"><car>golf</car></owner><owner n="b"><car>polo</car><car>lupo</car></owner></o>`))
	svc := NewXQueryService(store, nil)
	expr := xmltree.NewElement(XQueryNS, "query")
	expr.AppendText(`for $c in doc('cars')//owner[@n=$N]/car return $c/text()`)
	a, err := svc.Handle(&protocol.Request{
		Kind: protocol.Query, RuleID: "r", Component: "q",
		Expression: expr,
		Bindings: bindings.NewRelation(
			bindings.MustTuple("N", bindings.Str("a")),
			bindings.MustTuple("N", bindings.Str("b")),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	counts := map[string]int{}
	for _, r := range a.Rows {
		counts[r.Tuple["N"].AsString()] = len(r.Results)
	}
	if counts["a"] != 1 || counts["b"] != 2 {
		t.Errorf("result counts = %v", counts)
	}
	// Errors: bad query, wrong kind.
	bad := xmltree.NewElement(XQueryNS, "query")
	bad.AppendText(`for $c in`)
	if _, err := svc.Handle(&protocol.Request{Kind: protocol.Query, Expression: bad, Bindings: bindings.NewRelation()}); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := svc.Handle(&protocol.Request{Kind: protocol.Action, Expression: expr, Bindings: bindings.NewRelation()}); err == nil {
		t.Error("wrong kind should fail")
	}
}

func TestDatalogServiceExtendsBindings(t *testing.T) {
	prog := datalog.MustParse(`
		class("VW Golf", c).
		class("VW Passat", b).
	`)
	svc, err := NewDatalogService(prog)
	if err != nil {
		t.Fatal(err)
	}
	expr := xmltree.NewElement(DatalogNS, "query")
	expr.AppendText(`class(OwnCar, Class)`)
	a, err := svc.Handle(&protocol.Request{
		Kind: protocol.Query, RuleID: "r", Component: "q",
		Expression: expr,
		Bindings:   bindings.NewRelation(bindings.MustTuple("OwnCar", bindings.Str("VW Golf"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 {
		t.Fatalf("rows = %+v", a.Rows)
	}
	if a.Rows[0].Tuple["Class"].AsString() != "c" {
		t.Errorf("class = %v", a.Rows[0].Tuple)
	}
	// AddFacts re-materializes.
	if err := svc.AddFacts(datalog.FactsFromRelation("class", []string{"M", "C"}, bindings.NewRelation(
		bindings.MustTuple("M", bindings.Str("Twingo"), "C", bindings.Str("a")),
	))); err != nil {
		t.Fatal(err)
	}
	a, _ = svc.Handle(&protocol.Request{
		Kind: protocol.Query, Expression: expr,
		Bindings: bindings.NewRelation(bindings.MustTuple("OwnCar", bindings.Str("Twingo"))),
	})
	if len(a.Rows) != 1 || a.Rows[0].Tuple["Class"].AsString() != "a" {
		t.Errorf("after AddFacts: %+v", a.Rows)
	}
}

func TestTestEvaluator(t *testing.T) {
	rel := bindings.NewRelation(
		bindings.MustTuple("N", bindings.Num(5), "S", bindings.Str("keep")),
		bindings.MustTuple("N", bindings.Num(50), "S", bindings.Str("drop")),
	)
	out, err := EvalTest(`$N < 10 and $S = 'keep'`, rel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 {
		t.Fatalf("filtered = %s", out)
	}
	// Through the service interface.
	expr := xmltree.NewElement(TestNS, "test")
	expr.AppendText(`$N >= 10`)
	a, err := TestEvaluator{}.Handle(&protocol.Request{Kind: protocol.Test, Expression: expr, Bindings: rel})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || a.Rows[0].Tuple["S"].AsString() != "drop" {
		t.Errorf("rows = %+v", a.Rows)
	}
	// Bad condition.
	if _, err := EvalTest(`$N <`, rel); err == nil {
		t.Error("bad condition should fail")
	}
	if _, err := EvalTest(`$Missing > 1`, rel); err == nil {
		t.Error("unbound variable in test should fail")
	}
}

func TestActionExecutorShapes(t *testing.T) {
	store := NewDocStore()
	store.Put("log", xmltree.MustParse(`<log><old flag="x"/></log>`))
	stream := events.NewStream()
	var sent []*xmltree.Node
	var raised []events.Event
	stream.Subscribe(func(ev events.Event) { raised = append(raised, ev) })
	ex := NewActionExecutor(store, stream, func(n *xmltree.Node, t bindings.Tuple) { sent = append(sent, n) })

	rel := bindings.NewRelation(
		bindings.MustTuple("P", bindings.Str("john"), "C", bindings.Str("golf")),
		bindings.MustTuple("P", bindings.Str("jane"), "C", bindings.Str("polo")),
	)
	run := func(src string) error {
		t.Helper()
		expr := xmltree.MustParse(src).Root()
		_, err := ex.Handle(&protocol.Request{Kind: protocol.Action, RuleID: "r", Component: "a", Expression: expr, Bindings: rel})
		return err
	}
	// Bare domain action → message per tuple.
	if err := run(`<t:inform xmlns:t="http://t/" person="$P" car="$C"/>`); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 2 || sent[0].AttrValue("", "person") != "john" {
		t.Fatalf("sent = %v", sent)
	}
	// act:raise → event per tuple.
	if err := run(`<act:raise xmlns:act="` + ActionNS + `"><t:followup xmlns:t="http://t/" p="$P"/></act:raise>`); err != nil {
		t.Fatal(err)
	}
	if len(raised) != 2 || raised[0].Payload.Name.Local != "followup" {
		t.Fatalf("raised = %v", raised)
	}
	// store:insert → element per tuple.
	if err := run(`<store:insert xmlns:store="` + StoreNS + `" doc="log"><entry p="$P"/></store:insert>`); err != nil {
		t.Fatal(err)
	}
	doc, _ := store.Get("log")
	if n := len(doc.Root().ChildElementsNamed("", "entry")); n != 2 {
		t.Fatalf("inserted = %d", n)
	}
	// store:delete with variable in selector.
	if err := run(`<store:delete xmlns:store="` + StoreNS + `" doc="log" select="//entry[@p='$P']"/>`); err != nil {
		t.Fatal(err)
	}
	doc, _ = store.Get("log")
	if n := len(doc.Root().ChildElementsNamed("", "entry")); n != 0 {
		t.Fatalf("after delete = %d entries", n)
	}
	if ex.Executed() != 8 {
		t.Errorf("executed = %d, want 8 (4 actions × 2 tuples)", ex.Executed())
	}
	// Error shapes.
	if err := run(`<act:raise xmlns:act="` + ActionNS + `"/>`); err == nil {
		t.Error("raise without payload should fail")
	}
	if err := run(`<store:insert xmlns:store="` + StoreNS + `" doc="nope"><x/></store:insert>`); err == nil {
		t.Error("insert into unknown doc should fail")
	}
}

func TestInstantiateSplicesFragments(t *testing.T) {
	frag := xmltree.MustParse(`<car vin="1"><model>Golf</model></car>`).Root()
	tpl := xmltree.MustParse(`<msg to="$P"><body>Your car: $M</body><attach>$F</attach></msg>`).Root()
	tup := bindings.MustTuple(
		"P", bindings.Str("john"),
		"M", bindings.Str("Golf"),
		"F", bindings.Fragment(frag),
	)
	out := Instantiate(tpl, tup)
	if out.AttrValue("", "to") != "john" {
		t.Errorf("attr = %q", out.AttrValue("", "to"))
	}
	if got := out.FirstChildElement("", "body").TextContent(); got != "Your car: Golf" {
		t.Errorf("body = %q", got)
	}
	attach := out.FirstChildElement("", "attach")
	if len(attach.ChildElements()) != 1 || attach.ChildElements()[0].Name.Local != "car" {
		t.Errorf("fragment not spliced: %s", attach)
	}
}

func TestOpaqueXMLStoreHTTP(t *testing.T) {
	store := NewOpaqueXMLStore(xmltree.MustParse(`<classes><entry model="Golf" class="C"/></classes>`), nil)
	srv := httptest.NewServer(store)
	defer srv.Close()
	get := func(q string) (int, string) {
		resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	code, body := get(`//entry[@model='Golf']/@class`)
	if code != 200 || !strings.Contains(body, "<value>C</value>") {
		t.Errorf("GET = %d %q", code, body)
	}
	code, body = get(`count(//entry)`)
	if code != 200 || !strings.Contains(body, "1") {
		t.Errorf("count = %d %q", code, body)
	}
	if code, _ := get(`//entry[`); code != 400 {
		t.Errorf("bad query = %d", code)
	}
	resp, _ := http.Get(srv.URL)
	if resp.StatusCode != 400 {
		t.Errorf("missing query = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestOpaqueXQueryNodeHTTP(t *testing.T) {
	store := NewDocStore()
	store.Put("avail", xmltree.MustParse(`<a><car class="B"><name>Astra</name></car><car class="D"><name>Espace</name></car></a>`))
	srv := httptest.NewServer(NewOpaqueXQueryNode(store, map[string]string{"log": protocol.LogNS}))
	defer srv.Close()
	q := `<log:answers xmlns:log="` + protocol.LogNS + `">{for $c in doc('avail')//car return <log:answer><log:variable name="Class">{string($c/@class)}</log:variable></log:answer>}</log:answers>`
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	doc, err := xmltree.ParseString(string(body))
	if err != nil {
		t.Fatalf("response not XML: %v\n%s", err, body)
	}
	a, err := protocol.DecodeAnswers(doc)
	if err != nil {
		t.Fatalf("response not log:answers: %v", err)
	}
	if len(a.Rows) != 2 {
		t.Errorf("rows = %d", len(a.Rows))
	}
}

func TestHandlerWireProtocol(t *testing.T) {
	echo := func(req *protocol.Request) (*protocol.Answer, error) {
		if req.RuleID == "fail" {
			return nil, fmt.Errorf("synthetic failure")
		}
		return protocol.NewAnswer(req.RuleID, req.Component, req.Bindings), nil
	}
	srv := httptest.NewServer(Handler(serviceFunc(echo)))
	defer srv.Close()
	req := &protocol.Request{
		Kind: protocol.Query, RuleID: "r", Component: "q",
		Expression: xmltree.NewElement("http://l/", "q"),
		Bindings:   bindings.NewRelation(bindings.MustTuple("X", bindings.Num(1))),
	}
	resp, err := http.Post(srv.URL, "application/xml", strings.NewReader(protocol.EncodeRequest(req).String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	a, err := protocol.DecodeAnswers(xmltree.MustParse(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 {
		t.Errorf("rows = %+v", a.Rows)
	}
	// GET rejected.
	getResp, _ := http.Get(srv.URL)
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", getResp.StatusCode)
	}
	getResp.Body.Close()
	// Service error → 422.
	req.RuleID = "fail"
	resp2, _ := http.Post(srv.URL, "application/xml", strings.NewReader(protocol.EncodeRequest(req).String()))
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("failure status = %d", resp2.StatusCode)
	}
	resp2.Body.Close()
	// Garbage body → 400.
	resp3, _ := http.Post(srv.URL, "application/xml", strings.NewReader("not xml"))
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage status = %d", resp3.StatusCode)
	}
	resp3.Body.Close()
}

type serviceFunc func(*protocol.Request) (*protocol.Answer, error)

func (f serviceFunc) Handle(r *protocol.Request) (*protocol.Answer, error) { return f(r) }
