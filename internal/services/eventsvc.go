package services

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/snoop"
)

// EventMatcher is the Atomic Event Matcher service of Section 4.2: rule
// event components consisting of a single atomic event pattern are
// registered here; every matching event on the stream produces a detection
// message delivered through the Deliverer.
type EventMatcher struct {
	matcher *events.Matcher
	deliver *Deliverer
	mu      sync.Mutex
	cancel  func()
}

// NewEventMatcher creates the service and subscribes it to the stream.
func NewEventMatcher(stream *events.Stream, deliver *Deliverer) *EventMatcher {
	m := &EventMatcher{matcher: events.NewMatcher(), deliver: deliver}
	m.cancel = stream.Subscribe(m.matcher.OnEvent)
	return m
}

// Close unsubscribes the service from its stream.
func (m *EventMatcher) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cancel != nil {
		m.cancel()
		m.cancel = nil
	}
}

// Registrations returns the number of live registrations.
func (m *EventMatcher) Registrations() int { return m.matcher.Len() }

// Handle implements grh.Service: register-event and unregister-event.
func (m *EventMatcher) Handle(req *protocol.Request) (*protocol.Answer, error) {
	key := req.RuleID + "/" + req.Component
	switch req.Kind {
	case protocol.RegisterEvent:
		if req.Expression == nil {
			return nil, fmt.Errorf("eventmatcher: registration without a pattern")
		}
		p, err := events.NewPattern(req.Expression)
		if err != nil {
			return nil, err
		}
		ruleID, component, replyTo := req.RuleID, req.Component, req.ReplyTo
		m.matcher.Register(key, p, func(d events.Detection) {
			a := &protocol.Answer{
				RuleID:      ruleID,
				Component:   component,
				AdmittedAt:  d.Event.AdmittedAt,
				PublishedAt: d.Event.Time,
			}
			for _, t := range d.Bindings {
				a.Rows = append(a.Rows, protocol.AnswerRow{
					Tuple:   t,
					Results: []bindings.Value{bindings.Fragment(d.Event.Payload.Clone())},
				})
			}
			// Delivery failures are the subscriber's problem, not the
			// stream's; detection must go on for other rules.
			_ = m.deliver.Deliver(a, replyTo)
		})
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	case protocol.UnregisterEvent:
		m.matcher.Unregister(key)
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	default:
		return nil, fmt.Errorf("eventmatcher: unsupported request kind %q", req.Kind)
	}
}

// SnoopService is the composite event detection service: event components
// in the SNOOP markup (snoop.NS) build detector graphs fed from the stream.
// The parameter context is taken from the expression's context attribute
// (default chronicle, the common choice for workflow-style rules).
type SnoopService struct {
	deliver *Deliverer
	mu      sync.Mutex
	dets    map[string]*snoop.Detector
	lastSeq uint64
	cancel  func()
	hub     *obs.Hub
}

// NewSnoopService creates the service and subscribes it to the stream.
func NewSnoopService(stream *events.Stream, deliver *Deliverer) *SnoopService {
	s := &SnoopService{deliver: deliver, dets: map[string]*snoop.Detector{}}
	s.cancel = stream.Subscribe(s.onEvent)
	return s
}

// SetObs instruments every detector registered from now on with the hub's
// snoop counters.
func (s *SnoopService) SetObs(h *obs.Hub) {
	s.mu.Lock()
	s.hub = h
	s.mu.Unlock()
}

// Close unsubscribes the service from its stream.
func (s *SnoopService) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

func (s *SnoopService) onEvent(ev events.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSeq = ev.Seq
	for _, d := range s.dets {
		d.Feed(ev)
	}
}

// Advance moves every detector's clock forward, firing elapsed periodic
// occurrences (snoop.Periodic) even while the stream is quiet. Call it from
// a ticker, or use StartTicker.
func (s *SnoopService) Advance(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.dets {
		d.Advance(now, s.lastSeq)
	}
}

// StartTicker advances the detectors' clocks every interval until the
// returned stop function is called.
func (s *SnoopService) StartTicker(interval time.Duration) (stop func()) {
	t := time.NewTicker(interval)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case now := <-t.C:
				s.Advance(now)
			case <-done:
				return
			}
		}
	}()
	return func() {
		t.Stop()
		close(done)
	}
}

// Registrations returns the number of live detectors.
func (s *SnoopService) Registrations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dets)
}

// Handle implements grh.Service.
func (s *SnoopService) Handle(req *protocol.Request) (*protocol.Answer, error) {
	key := req.RuleID + "/" + req.Component
	switch req.Kind {
	case protocol.RegisterEvent:
		if req.Expression == nil {
			return nil, fmt.Errorf("snoopd: registration without an expression")
		}
		expr, err := snoop.ParseXML(req.Expression)
		if err != nil {
			return nil, err
		}
		ctx := snoop.Chronicle
		if cs := req.Expression.AttrValue("", "context"); cs != "" {
			ctx, err = snoop.ParseContext(cs)
			if err != nil {
				return nil, err
			}
		}
		ruleID, component, replyTo := req.RuleID, req.Component, req.ReplyTo
		det, err := snoop.NewDetector(expr, ctx, func(o snoop.Occurrence) {
			a := &protocol.Answer{RuleID: ruleID, Component: component}
			row := protocol.AnswerRow{Tuple: o.Bindings}
			for _, c := range o.Constituents {
				row.Results = append(row.Results, bindings.Fragment(c.Payload.Clone()))
				// A composite occurrence completes with its terminator, so
				// the lifecycle clock starts at the newest admission among
				// the constituent events.
				if c.AdmittedAt.After(a.AdmittedAt) {
					a.AdmittedAt = c.AdmittedAt
				}
				if c.Time.After(a.PublishedAt) {
					a.PublishedAt = c.Time
				}
			}
			a.Rows = append(a.Rows, row)
			_ = s.deliver.Deliver(a, replyTo)
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		if s.hub != nil {
			det.SetObs(s.hub)
		}
		s.dets[key] = det
		s.mu.Unlock()
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	case protocol.UnregisterEvent:
		s.mu.Lock()
		delete(s.dets, key)
		s.mu.Unlock()
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	default:
		return nil, fmt.Errorf("snoopd: unsupported request kind %q", req.Kind)
	}
}

// Ensure interface satisfaction.
var (
	_ grh.Service = (*EventMatcher)(nil)
	_ grh.Service = (*SnoopService)(nil)
)
