package services

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bindings"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/snoop"
)

// DetectorOption configures the event services' detection fan-out.
type DetectorOption func(*detectorOpts)

type detectorOpts struct {
	pool       *DetectorPool
	tenant     string
	tenantOnly bool
}

// WithDetectorPool shards the service's detectors across the pool's
// partition workers: each registration is pinned to one worker by rule
// key, independent detectors evaluate in parallel, and a slow delivery
// endpoint stalls only its own partition. Without a pool the service
// evaluates inline on the stream's dispatch goroutine — the synchronous
// historical behaviour. The pool may be shared by several services; its
// lifetime is the caller's (close it after unsubscribing the services).
func WithDetectorPool(p *DetectorPool) DetectorOption {
	return func(o *detectorOpts) { o.pool = p }
}

// WithTenantFilter restricts the service to events published under one
// tenant: events whose Tenant differs are ignored before any detector
// state is touched (SNOOP detectors are stateful and order-sensitive, so
// cross-tenant events must never feed them). The empty string is a valid
// filter — it is the default tenant's wire form, which also matches
// events published by tenant-unaware code. Services built without this
// option observe every event, the pre-tenancy behaviour.
func WithTenantFilter(tenant string) DetectorOption {
	return func(o *detectorOpts) { o.tenant, o.tenantOnly = tenant, true }
}

// EventMatcher is the Atomic Event Matcher service of Section 4.2: rule
// event components consisting of a single atomic event pattern are
// registered here; every matching event on the stream produces a detection
// message delivered through the Deliverer.
//
// With a DetectorPool the registered patterns are sharded across the
// pool's workers (one events.Matcher per partition, patterns pinned by
// rule key), so matching and delivery parallelize across partitions while
// each pattern still sees the stream in order.
type EventMatcher struct {
	matchers   []*events.Matcher // one per partition; [0] only when inline
	pool       *DetectorPool     // nil = inline evaluation on the stream goroutine
	deliver    *Deliverer
	tenant     string // accepted event tenant when tenantOnly
	tenantOnly bool
	mu         sync.Mutex
	cancel     func()
}

// NewEventMatcher creates the service and subscribes it to the stream.
func NewEventMatcher(stream *events.Stream, deliver *Deliverer, opts ...DetectorOption) *EventMatcher {
	var o detectorOpts
	for _, opt := range opts {
		opt(&o)
	}
	m := &EventMatcher{deliver: deliver, pool: o.pool, tenant: o.tenant, tenantOnly: o.tenantOnly}
	n := 1
	if m.pool != nil {
		n = m.pool.Workers()
	}
	for i := 0; i < n; i++ {
		m.matchers = append(m.matchers, events.NewMatcher())
	}
	m.cancel = stream.Subscribe(m.onEvent)
	return m
}

// onEvent routes one stream event into the matcher shards: inline when no
// pool is configured, otherwise one ordered task per partition that holds
// at least one pattern. The stream's ordered dispatch calls onEvent in Seq
// order and partitionWorker queues preserve enqueue order, so every
// pattern observes a totally ordered feed.
func (m *EventMatcher) onEvent(ev events.Event) {
	if m.tenantOnly && ev.Tenant != m.tenant {
		return
	}
	if m.pool == nil {
		m.matchers[0].OnEvent(ev)
		return
	}
	for i, shard := range m.matchers {
		if shard.Len() == 0 {
			continue
		}
		shard := shard
		m.pool.Enqueue(i, func() { shard.OnEvent(ev) })
	}
}

// Close unsubscribes the service from its stream.
func (m *EventMatcher) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cancel != nil {
		m.cancel()
		m.cancel = nil
	}
}

// Registrations returns the number of live registrations.
func (m *EventMatcher) Registrations() int {
	n := 0
	for _, shard := range m.matchers {
		n += shard.Len()
	}
	return n
}

// shardFor pins a registration key to its matcher shard.
func (m *EventMatcher) shardFor(key string) *events.Matcher {
	if m.pool == nil {
		return m.matchers[0]
	}
	return m.matchers[m.pool.Pick(key)]
}

// Handle implements grh.Service: register-event and unregister-event.
func (m *EventMatcher) Handle(req *protocol.Request) (*protocol.Answer, error) {
	key := req.RuleID + "/" + req.Component
	switch req.Kind {
	case protocol.RegisterEvent:
		if req.Expression == nil {
			return nil, fmt.Errorf("eventmatcher: registration without a pattern")
		}
		p, err := events.NewPattern(req.Expression)
		if err != nil {
			return nil, err
		}
		ruleID, component, replyTo := req.RuleID, req.Component, req.ReplyTo
		m.shardFor(key).Register(key, p, func(d events.Detection) {
			a := &protocol.Answer{
				RuleID:      ruleID,
				Component:   component,
				AdmittedAt:  d.Event.AdmittedAt,
				PublishedAt: d.Event.Time,
			}
			for _, t := range d.Bindings {
				a.Rows = append(a.Rows, protocol.AnswerRow{
					Tuple:   t,
					Results: []bindings.Value{bindings.Fragment(d.Event.Payload.Clone())},
				})
			}
			// Delivery failures are the subscriber's problem, not the
			// stream's; detection must go on for other rules.
			_ = m.deliver.Deliver(a, replyTo)
		})
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	case protocol.UnregisterEvent:
		m.shardFor(key).Unregister(key)
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	default:
		return nil, fmt.Errorf("eventmatcher: unsupported request kind %q", req.Kind)
	}
}

// snoopEntry is one registered SNOOP detector plus its delivery context.
// pend buffers the occurrences emitted during a Feed/Advance call so
// delivery happens after the detector step, outside every lock — the
// service-wide mutex is never held across deliver.Deliver's (potentially
// slow, synchronous, HTTP) call. pend is only touched by whoever is
// legitimately feeding the detector: the feedMu holder inline, the pinned
// partition worker when pooled.
type snoopEntry struct {
	key     string
	det     *snoop.Detector
	worker  int
	replyTo string
	pend    []*protocol.Answer
}

// pendingDeliveries swaps out and returns the answers buffered by the last
// Feed/Advance. Must be called under the same serialization that fed the
// detector.
func (e *snoopEntry) pendingDeliveries() []*protocol.Answer {
	out := e.pend
	e.pend = nil
	return out
}

// SnoopService is the composite event detection service: event components
// in the SNOOP markup (snoop.NS) build detector graphs fed from the stream.
// The parameter context is taken from the expression's context attribute
// (default chronicle, the common choice for workflow-style rules).
//
// Concurrency contract: a snoop.Detector is not safe for concurrent use
// and is order-sensitive, so every detector is fed from exactly one
// serialization domain — the stream's ordered dispatch goroutine (inline
// mode, serialized with Advance by feedMu) or the partition worker it is
// pinned to for life (pool mode, where Advance ticks are routed through
// the same worker queues). The service-wide mutex guards only the
// registry; it is never held across Feed or delivery.
type SnoopService struct {
	deliver    *Deliverer
	pool       *DetectorPool // nil = inline evaluation on the stream goroutine
	tenant     string        // accepted event tenant when tenantOnly
	tenantOnly bool

	mu       sync.Mutex // registry only: dets, byWorker, hub, cancel
	dets     map[string]*snoopEntry
	byWorker [][]*snoopEntry // copy-on-write partition → entries index
	hub      *obs.Hub
	cancel   func()

	feedMu  sync.Mutex // inline mode: serializes Feed/Advance across goroutines
	lastSeq atomic.Uint64
}

// NewSnoopService creates the service and subscribes it to the stream.
func NewSnoopService(stream *events.Stream, deliver *Deliverer, opts ...DetectorOption) *SnoopService {
	var o detectorOpts
	for _, opt := range opts {
		opt(&o)
	}
	s := &SnoopService{deliver: deliver, pool: o.pool, tenant: o.tenant, tenantOnly: o.tenantOnly, dets: map[string]*snoopEntry{}}
	n := 1
	if s.pool != nil {
		n = s.pool.Workers()
	}
	s.byWorker = make([][]*snoopEntry, n)
	s.cancel = stream.Subscribe(s.onEvent)
	return s
}

// SetObs instruments every detector registered from now on with the hub's
// snoop counters.
func (s *SnoopService) SetObs(h *obs.Hub) {
	s.mu.Lock()
	s.hub = h
	s.mu.Unlock()
}

// Close unsubscribes the service from its stream.
func (s *SnoopService) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

// partition returns the current entry list of one partition (copy-on-write
// snapshot, safe to iterate without the registry lock).
func (s *SnoopService) partition(w int) []*snoopEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byWorker[w]
}

// rebuildLocked recomputes the copy-on-write partition index. Caller holds
// s.mu.
func (s *SnoopService) rebuildLocked() {
	byWorker := make([][]*snoopEntry, len(s.byWorker))
	for _, e := range s.dets {
		byWorker[e.worker] = append(byWorker[e.worker], e)
	}
	s.byWorker = byWorker
}

// feedEntries runs one detector step (a Feed or an Advance) over the
// entries and then delivers every occurrence it emitted. The caller
// guarantees it owns the entries' serialization domain; no lock is held
// across step or Deliver.
func (s *SnoopService) feedEntries(entries []*snoopEntry, step func(*snoop.Detector)) {
	for _, e := range entries {
		step(e.det)
		for _, a := range e.pendingDeliveries() {
			// Delivery failures are the subscriber's problem; detection
			// goes on for the remaining rules.
			_ = s.deliver.Deliver(a, e.replyTo)
		}
	}
}

func (s *SnoopService) onEvent(ev events.Event) {
	if s.tenantOnly && ev.Tenant != s.tenant {
		return
	}
	s.lastSeq.Store(ev.Seq)
	if s.pool == nil {
		entries := s.partition(0)
		s.feedMu.Lock()
		defer s.feedMu.Unlock()
		s.feedEntries(entries, func(d *snoop.Detector) { d.Feed(ev) })
		return
	}
	for w := 0; w < s.pool.Workers(); w++ {
		entries := s.partition(w)
		if len(entries) == 0 {
			continue
		}
		s.pool.Enqueue(w, func() {
			s.feedEntries(entries, func(d *snoop.Detector) { d.Feed(ev) })
		})
	}
}

// Advance moves every detector's clock forward, firing elapsed periodic
// occurrences (snoop.Periodic) even while the stream is quiet. Call it from
// a ticker, or use StartTicker. In pool mode the tick is routed through the
// partition workers so it serializes with each detector's event feed.
func (s *SnoopService) Advance(now time.Time) {
	seq := s.lastSeq.Load()
	if s.pool == nil {
		entries := s.partition(0)
		s.feedMu.Lock()
		defer s.feedMu.Unlock()
		s.feedEntries(entries, func(d *snoop.Detector) { d.Advance(now, seq) })
		return
	}
	for w := 0; w < s.pool.Workers(); w++ {
		entries := s.partition(w)
		if len(entries) == 0 {
			continue
		}
		s.pool.Enqueue(w, func() {
			s.feedEntries(entries, func(d *snoop.Detector) { d.Advance(now, seq) })
		})
	}
}

// StartTicker advances the detectors' clocks every interval until the
// returned stop function is called.
func (s *SnoopService) StartTicker(interval time.Duration) (stop func()) {
	t := time.NewTicker(interval)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case now := <-t.C:
				s.Advance(now)
			case <-done:
				return
			}
		}
	}()
	return func() {
		t.Stop()
		close(done)
	}
}

// Registrations returns the number of live detectors.
func (s *SnoopService) Registrations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dets)
}

// Handle implements grh.Service.
func (s *SnoopService) Handle(req *protocol.Request) (*protocol.Answer, error) {
	key := req.RuleID + "/" + req.Component
	switch req.Kind {
	case protocol.RegisterEvent:
		if req.Expression == nil {
			return nil, fmt.Errorf("snoopd: registration without an expression")
		}
		expr, err := snoop.ParseXML(req.Expression)
		if err != nil {
			return nil, err
		}
		ctx := snoop.Chronicle
		if cs := req.Expression.AttrValue("", "context"); cs != "" {
			ctx, err = snoop.ParseContext(cs)
			if err != nil {
				return nil, err
			}
		}
		entry := &snoopEntry{key: key, replyTo: req.ReplyTo}
		if s.pool != nil {
			entry.worker = s.pool.Pick(key)
		}
		ruleID, component := req.RuleID, req.Component
		det, err := snoop.NewDetector(expr, ctx, func(o snoop.Occurrence) {
			a := &protocol.Answer{RuleID: ruleID, Component: component}
			row := protocol.AnswerRow{Tuple: o.Bindings}
			for _, c := range o.Constituents {
				row.Results = append(row.Results, bindings.Fragment(c.Payload.Clone()))
				// A composite occurrence completes with its terminator, so
				// the lifecycle clock starts at the newest admission among
				// the constituent events.
				if c.AdmittedAt.After(a.AdmittedAt) {
					a.AdmittedAt = c.AdmittedAt
				}
				if c.Time.After(a.PublishedAt) {
					a.PublishedAt = c.Time
				}
			}
			a.Rows = append(a.Rows, row)
			// Buffered, not delivered: the feeding goroutine drains pend
			// after the detector step, outside every lock.
			entry.pend = append(entry.pend, a)
		})
		if err != nil {
			return nil, err
		}
		entry.det = det
		s.mu.Lock()
		if s.hub != nil {
			det.SetObs(s.hub)
		}
		s.dets[key] = entry
		s.rebuildLocked()
		s.mu.Unlock()
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	case protocol.UnregisterEvent:
		s.mu.Lock()
		delete(s.dets, key)
		s.rebuildLocked()
		s.mu.Unlock()
		return &protocol.Answer{RuleID: req.RuleID, Component: req.Component}, nil
	default:
		return nil, fmt.Errorf("snoopd: unsupported request kind %q", req.Kind)
	}
}

// Ensure interface satisfaction.
var (
	_ grh.Service = (*EventMatcher)(nil)
	_ grh.Service = (*SnoopService)(nil)
)
