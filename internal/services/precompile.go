package services

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/datalog"
	"repro/internal/ruleml"
	"repro/internal/winlang"
	"repro/internal/xpath"
	"repro/internal/xq"
)

// Registration-time precompilation: the engine compiles every component
// expression it can when a rule is registered, so (a) the compile cache is
// warm before the first event fires and (b) a rule whose expression does
// not even compile is rejected at POST /engine/rules with a 400 naming the
// component, instead of failing as a service 500 on every matching event.
//
// Only expressions the engine can interpret are checked: components that
// pin a Service URI are opaque endpoints (Fig. 9/10) whose text may be in
// any language and is often completed by per-tuple variable substitution,
// and unknown language namespaces belong to services the engine cannot
// introspect. Both are skipped — registration stays permissive exactly
// where the paper's framework is.

// Precompiler checks (and typically caches) one component's expression for
// a custom language; it gets the expression text and the component itself.
type Precompiler func(text string, c ruleml.Component) error

var (
	precompilersMu sync.RWMutex
	precompilers   = map[string]Precompiler{}
)

// RegisterPrecompiler installs a registration-time expression check for a
// language namespace, extending PrecompileComponent to custom services.
// A nil fn removes the entry.
func RegisterPrecompiler(languageNS string, fn Precompiler) {
	precompilersMu.Lock()
	defer precompilersMu.Unlock()
	if fn == nil {
		delete(precompilers, languageNS)
		return
	}
	precompilers[languageNS] = fn
}

func lookupPrecompiler(languageNS string) (Precompiler, bool) {
	precompilersMu.RLock()
	defer precompilersMu.RUnlock()
	fn, ok := precompilers[languageNS]
	return fn, ok
}

// PrecompileRule compiles every checkable component expression of the rule
// into the shared compile cache, returning the first failure wrapped with
// the offending component's ID (e.g. "query[2]").
func PrecompileRule(r *ruleml.Rule) error {
	for _, c := range r.Components() {
		if err := PrecompileComponent(c); err != nil {
			return fmt.Errorf("component %s: %w", c.ID, err)
		}
	}
	return nil
}

// PrecompileComponent compiles one component's expression if its language
// is one the engine interprets (or has a registered Precompiler for);
// components with pinned services or unknown languages are skipped.
func PrecompileComponent(c ruleml.Component) error {
	if c.Service != "" {
		return nil // opaque endpoint: text may not even be an expression
	}
	text := componentText(c)
	if fn, ok := lookupPrecompiler(c.Language); ok {
		return fn(text, c)
	}
	switch c.Kind {
	case ruleml.QueryComponent:
		switch c.Language {
		case XQueryNS:
			if text == "" {
				return fmt.Errorf("empty %s expression", c.Kind)
			}
			_, err := xq.CompileCached(text)
			return err
		case DatalogNS:
			if text == "" {
				return fmt.Errorf("empty %s expression", c.Kind)
			}
			_, err := datalog.ParseQueryCached(text)
			return err
		}
	case ruleml.TestComponent:
		if c.Language == "" || c.Language == TestNS {
			if text == "" {
				return fmt.Errorf("empty %s expression", c.Kind)
			}
			_, err := xpath.CompileCached(text)
			return err
		}
	case ruleml.EventComponent:
		if c.Language == winlang.NS && c.Expression != nil {
			_, err := winlang.ParseCached(c.Expression)
			return err
		}
	}
	// Unknown language or a kind (actions, atomic events) whose text is
	// completed per tuple: leave it to the owning service.
	return nil
}

// componentText extracts the expression source the services will compile:
// the opaque text, or the text content of the expression element.
func componentText(c ruleml.Component) string {
	if c.Opaque {
		return strings.TrimSpace(c.Text)
	}
	if c.Expression == nil {
		return ""
	}
	if s, ok := unwrapOpaque(c.Expression); ok {
		return s
	}
	return strings.TrimSpace(c.Expression.TextContent())
}
