package services

import (
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/protocol"
	"repro/internal/snoop"
	"repro/internal/xmltree"
)

// TestSnoopServicePeriodicAdvance: P(start, 10s, stop) fires on Advance
// even with no events flowing.
func TestSnoopServicePeriodicAdvance(t *testing.T) {
	stream := events.NewStream()
	var got []*protocol.Answer
	s := NewSnoopService(stream, &Deliverer{Local: func(a *protocol.Answer) { got = append(got, a) }})
	defer s.Close()
	expr := xmltree.MustParse(`<snoop:periodic interval="10s" xmlns:snoop="` + snoop.NS + `">
		<snoop:event><start/></snoop:event>
		<snoop:event><stop/></snoop:event>
	</snoop:periodic>`).Root()
	if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: "r", Component: "e", Expression: expr}); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	stream.Publish(events.Event{Payload: xmltree.NewElement("", "start"), Time: base})
	if len(got) != 0 {
		t.Fatal("nothing should fire at start")
	}
	s.Advance(base.Add(25 * time.Second))
	if len(got) != 2 {
		t.Fatalf("periodic occurrences = %d, want 2", len(got))
	}
	stream.Publish(events.Event{Payload: xmltree.NewElement("", "stop"), Time: base.Add(26 * time.Second)})
	s.Advance(base.Add(100 * time.Second))
	if len(got) != 2 {
		t.Fatalf("fired after stop: %d", len(got))
	}
}

func TestSnoopServiceTicker(t *testing.T) {
	stream := events.NewStream()
	fired := make(chan struct{}, 16)
	s := NewSnoopService(stream, &Deliverer{Local: func(*protocol.Answer) { fired <- struct{}{} }})
	defer s.Close()
	expr := xmltree.MustParse(`<snoop:periodic interval="5ms" xmlns:snoop="` + snoop.NS + `">
		<snoop:event><start/></snoop:event>
		<snoop:event><stop/></snoop:event>
	</snoop:periodic>`).Root()
	if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: "r", Component: "e", Expression: expr}); err != nil {
		t.Fatal(err)
	}
	stream.Publish(events.New(xmltree.NewElement("", "start")))
	stop := s.StartTicker(2 * time.Millisecond)
	defer stop()
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("ticker never fired the periodic event")
	}
}
