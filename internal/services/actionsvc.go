package services

import (
	"fmt"
	"sync"

	"repro/internal/bindings"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ActionExecutor is the domain action service of Section 4.5: "for each
// tuple of variable bindings, the action component is executed". It
// supports three shapes of action expression:
//
//   - a bare domain element (e.g. <travel:inform person="$Person"
//     car="$Avail"/>): instantiated per tuple and handed to the message
//     sink — "explicit message sending";
//   - <act:raise> wrapping a domain element: the instantiated element is
//     published as a new event on the stream, letting rules trigger rules;
//   - <store:insert doc="uri"> / <store:delete doc="uri" select="…">:
//     "commands on the database level" against the document store.
type ActionExecutor struct {
	store  *DocStore
	stream *events.Stream
	sink   func(*xmltree.Node, bindings.Tuple)

	mu       sync.Mutex
	executed int
}

// NewActionExecutor builds the executor. Any of store, stream and sink may
// be nil; using an action shape whose target is missing is an error.
func NewActionExecutor(store *DocStore, stream *events.Stream, sink func(*xmltree.Node, bindings.Tuple)) *ActionExecutor {
	return &ActionExecutor{store: store, stream: stream, sink: sink}
}

// Executed returns the total number of per-tuple action executions.
func (a *ActionExecutor) Executed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.executed
}

// Handle implements grh.Service for action components.
func (a *ActionExecutor) Handle(req *protocol.Request) (*protocol.Answer, error) {
	if req.Kind != protocol.Action {
		return nil, fmt.Errorf("actiond: unsupported request kind %q", req.Kind)
	}
	if req.Expression == nil {
		return nil, fmt.Errorf("actiond: action component without expression")
	}
	for _, t := range req.Bindings.Tuples() {
		if err := a.execute(req.Expression, req.Tenant, t); err != nil {
			return nil, fmt.Errorf("actiond: %w", err)
		}
		a.mu.Lock()
		a.executed++
		a.mu.Unlock()
	}
	return protocol.NewAnswer(req.RuleID, req.Component, req.Bindings), nil
}

func (a *ActionExecutor) execute(expr *xmltree.Node, tenant string, t bindings.Tuple) error {
	switch {
	case expr.Name.Space == ActionNS && expr.Name.Local == "raise":
		kids := expr.ChildElements()
		if len(kids) != 1 {
			return fmt.Errorf("act:raise must wrap exactly one event element")
		}
		if a.stream == nil {
			return fmt.Errorf("act:raise: no event stream attached")
		}
		// Detached: raising is ordered but never waits for delivery. On a
		// synchronous engine the raise is reentrant (we are inside a
		// stream dispatch) and must not wait for itself; on a worker-pool
		// engine a blocking publish could deadlock against a full worker
		// queue whose workers are themselves waiting to publish.
		// The raised event stays in the raising rule's tenant, so a rule
		// can trigger rules of its own tenant but never another's.
		ev := events.New(Instantiate(kids[0], t))
		ev.Tenant = tenant
		a.stream.PublishDetached(ev)
		return nil
	case expr.Name.Space == ActionNS && expr.Name.Local == "send":
		kids := expr.ChildElements()
		if len(kids) != 1 {
			return fmt.Errorf("act:send must wrap exactly one message element")
		}
		return a.send(kids[0], t)
	case expr.Name.Space == StoreNS && expr.Name.Local == "insert":
		doc := expr.AttrValue("", "doc")
		kids := expr.ChildElements()
		if doc == "" || len(kids) != 1 {
			return fmt.Errorf("store:insert needs a doc attribute and exactly one element")
		}
		if a.store == nil {
			return fmt.Errorf("store:insert: no document store attached")
		}
		inst := Instantiate(kids[0], t)
		return a.store.Update(doc, func(d *xmltree.Node) error {
			root := d.Root()
			if root == nil {
				return fmt.Errorf("document %q has no root element", doc)
			}
			root.Append(inst)
			return nil
		})
	case expr.Name.Space == StoreNS && expr.Name.Local == "delete":
		doc := expr.AttrValue("", "doc")
		sel := expr.AttrValue("", "select")
		if doc == "" || sel == "" {
			return fmt.Errorf("store:delete needs doc and select attributes")
		}
		if a.store == nil {
			return fmt.Errorf("store:delete: no document store attached")
		}
		// Substitution yields per-tuple source text, so the cache's negative
		// entries matter here: a bad selector is compiled (and rejected) once.
		selector := grh.SubstituteVars(sel, t)
		compiled, err := xpath.CompileCached(selector)
		if err != nil {
			return fmt.Errorf("store:delete select: %w", err)
		}
		return a.store.Update(doc, func(d *xmltree.Node) error {
			ns, err := compiled.EvalNodes(&xpath.Context{Node: d})
			if err != nil {
				return err
			}
			for _, n := range ns {
				removeChild(n)
			}
			return nil
		})
	default:
		// Bare domain action: message sending.
		return a.send(expr, t)
	}
}

func (a *ActionExecutor) send(msg *xmltree.Node, t bindings.Tuple) error {
	if a.sink == nil {
		return fmt.Errorf("send: no message sink attached")
	}
	a.sink(Instantiate(msg, t), t)
	return nil
}

func removeChild(n *xmltree.Node) {
	p := n.Parent
	if p == nil {
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			n.Parent = nil
			return
		}
	}
}

// Instantiate deep-copies an action or event template, substituting $Var
// references in attribute values and text content with the tuple's values.
// An attribute or text that is exactly "$Var" bound to an XML value splices
// the fragment's string-value into attributes and the fragment itself into
// element content.
func Instantiate(template *xmltree.Node, t bindings.Tuple) *xmltree.Node {
	out := &xmltree.Node{Kind: template.Kind, Name: template.Name, Text: template.Text}
	for _, a := range template.Attrs {
		v := a.Value
		if !a.IsNamespaceDecl() {
			v = grh.SubstituteVars(v, t)
		}
		out.Attrs = append(out.Attrs, xmltree.Attr{Name: a.Name, Value: v})
	}
	for _, c := range template.Children {
		switch c.Kind {
		case xmltree.TextNode:
			txt := c.Text
			if name, ok := exactVar(txt); ok {
				if v, bound := t[name]; bound && v.Kind() == bindings.XML {
					out.Append(v.Node().Clone())
					continue
				}
			}
			out.Append(xmltree.NewText(grh.SubstituteVars(txt, t)))
		case xmltree.ElementNode:
			out.Append(Instantiate(c, t))
		default:
			out.Append(c.Clone())
		}
	}
	return out
}

func exactVar(s string) (string, bool) {
	s = trimSpace(s)
	if len(s) > 1 && s[0] == '$' {
		for i := 1; i < len(s); i++ {
			c := s[i]
			if !(c == '_' || c == '-' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				return "", false
			}
		}
		return s[1:], true
	}
	return "", false
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t' || s[start] == '\n' || s[start] == '\r') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t' || s[end-1] == '\n' || s[end-1] == '\r') {
		end--
	}
	return s[start:end]
}

var _ grh.Service = (*ActionExecutor)(nil)
