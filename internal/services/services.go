// Package services implements the component language services of the
// paper's service-oriented architecture (Fig. 3): the Atomic Event Matcher
// and SNOOP detection services (event components), the XQuery-lite query
// service (framework-aware, the Saxon stand-in), a framework-unaware
// XML store queried by raw HTTP GET (the eXist stand-in of Fig. 9), a
// Datalog query service (LP-style), a test evaluator and action executors.
//
// Each service has an in-process core implementing grh.Service plus an
// http.Handler wrapper speaking the eca:request/log:answers wire protocol,
// so the same code runs embedded (tests, quickstart) and distributed
// (cmd/ecad, the Fig. 3 architecture).
package services

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/xmltree"
)

// Language namespace URIs of the bundled component languages. SNOOP's is
// snoop.NS; atomic event patterns are domain-level and need none.
const (
	// XQueryNS identifies the XQuery-lite query language.
	XQueryNS = "http://www.semwebtech.org/languages/2006/xquery"
	// DatalogNS identifies the Datalog (LP-style) query language.
	DatalogNS = "http://www.semwebtech.org/languages/2006/datalog"
	// TestNS identifies the comparison-test language.
	TestNS = "http://www.semwebtech.org/languages/2006/test"
	// StoreNS identifies the XML-store update action language.
	StoreNS = "http://www.semwebtech.org/languages/2006/xmlstore"
	// MatcherNS identifies the Atomic Event Matcher (the registry default
	// for event components whose expression is a bare domain pattern).
	MatcherNS = "http://www.semwebtech.org/languages/2006/atomic-events"
	// ActionNS identifies the domain action executor (the default for
	// action components whose expression is a bare domain action).
	ActionNS = "http://www.semwebtech.org/languages/2006/actions"
)

// DocStore is a named collection of XML documents shared by query services
// and update actions — the "Web resources" of the running example. Safe for
// concurrent use.
type DocStore struct {
	mu   sync.RWMutex
	docs map[string]*xmltree.Node
}

// NewDocStore returns an empty store.
func NewDocStore() *DocStore {
	return &DocStore{docs: map[string]*xmltree.Node{}}
}

// Put stores (or replaces) a document under a URI.
func (s *DocStore) Put(uri string, doc *xmltree.Node) {
	s.mu.Lock()
	s.docs[uri] = doc
	s.mu.Unlock()
}

// Get returns the document stored under uri.
func (s *DocStore) Get(uri string) (*xmltree.Node, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[uri]
	return d, ok
}

// URIs lists the stored document URIs, sorted.
func (s *DocStore) URIs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for u := range s.docs {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Resolver adapts the store to the xq doc() resolver signature.
func (s *DocStore) Resolver() func(uri string) (*xmltree.Node, error) {
	return func(uri string) (*xmltree.Node, error) {
		d, ok := s.Get(uri)
		if !ok {
			return nil, fmt.Errorf("services: no document %q in store", uri)
		}
		return d, nil
	}
}

// Update applies f to the document under uri while holding the store lock,
// for read-modify-write action executions.
func (s *DocStore) Update(uri string, f func(doc *xmltree.Node) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[uri]
	if !ok {
		return fmt.Errorf("services: no document %q in store", uri)
	}
	return f(d)
}

// --- HTTP plumbing ------------------------------------------------------------------

// Handler wraps a framework-aware service core as an http.Handler speaking
// the wire protocol: POST eca:request, 200 log:answers.
func Handler(svc grh.Service) http.Handler { return NewHandler(svc, nil, nil) }

// InstrumentedHandler is Handler plus observability: every decoded
// request counts into service_requests_total{kind} (and failures into
// service_errors_total{kind}) on the given hub. A nil hub disables
// instrumentation.
func InstrumentedHandler(svc grh.Service, hub *obs.Hub) http.Handler {
	return NewHandler(svc, hub, nil)
}

// NewHandler is the full wire-protocol handler: request counters and
// per-phase latency histograms on hub, structured request logging on lg
// (both optional), and — the server half of distributed rule-instance
// tracing — when the request carries an X-ECA-Trace-Id header, the
// handler times its own phases (request parse, expression evaluation,
// answer-markup encoding, with tuples in/out) and piggybacks them as a
// log:trace element in the answer envelope so the GRH stitches them
// under the dispatch's client span. Requests without the header get the
// plain PR-1-shaped answer, byte-identical to before.
func NewHandler(svc grh.Service, hub *obs.Hub, lg *obs.Logger) http.Handler {
	reg := hub.Metrics()
	requests := reg.CounterVec("service_requests_total", "Requests handled by component language services, by request kind.", "kind")
	errors := reg.CounterVec("service_errors_total", "Requests a component language service failed to handle, by request kind.", "kind")
	seconds := reg.HistogramVec("service_request_seconds", "Component service request handling latency by request kind.", nil, "kind")
	phases := reg.HistogramVec("service_phase_seconds", "Server-side request phase latency (parse, evaluate, encode), by phase.", nil, "phase")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST an eca:request document", http.StatusMethodNotAllowed)
			return
		}
		traceID := r.Header.Get(protocol.TraceIDHeader)
		parent := r.Header.Get(protocol.ParentSpanHeader)
		rlog := lg
		if traceID != "" {
			rlog = rlog.With(obs.FieldTraceID, traceID)
		}
		parseStart := time.Now()
		doc, err := xmltree.Parse(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			rlog.Error("service request rejected", "reason", "xml", "error", err.Error())
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := protocol.DecodeRequest(doc)
		if err != nil {
			rlog.Error("service request rejected", "reason", "envelope", "error", err.Error())
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		parseDur := time.Since(parseStart)
		phases.With("parse").Observe(parseDur.Seconds())
		tuplesIn := req.Bindings.Size()
		kind := string(req.Kind)
		requests.With(kind).Inc()
		rlog = rlog.With(obs.FieldRule, req.RuleID, obs.FieldComponent, req.Component)

		evalStart := time.Now()
		a, err := svc.Handle(req)
		evalDur := time.Since(evalStart)
		seconds.With(kind).Observe(evalDur.Seconds())
		phases.With("evaluate").Observe(evalDur.Seconds())
		if err != nil {
			errors.With(kind).Inc()
			rlog.Error("service request failed", "kind", kind, "error", err.Error())
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}

		encStart := time.Now()
		envelope := protocol.EncodeAnswers(a)
		body := envelope.String()
		encDur := time.Since(encStart)
		phases.With("encode").Observe(encDur.Seconds())
		if traceID != "" {
			// The encode span's own cost is known only after encoding, so
			// the log:trace element is appended to the already-built
			// envelope rather than threaded through EncodeAnswers.
			envelope.Append(protocol.EncodeTraceElement(traceID, parent, []protocol.TraceSpan{
				{Phase: "parse", Start: parseStart, Duration: parseDur, TuplesIn: tuplesIn},
				{Phase: "evaluate", Start: evalStart, Duration: evalDur, TuplesIn: tuplesIn, TuplesOut: len(a.Rows)},
				{Phase: "encode", Start: encStart, Duration: encDur, TuplesOut: len(a.Rows)},
			}))
			body = envelope.String()
		}
		rlog.Debug("service request handled", "kind", kind,
			"tuples_in", tuplesIn, "tuples_out", len(a.Rows))
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, body)
	})
}

// deliverClient is the fallback HTTP client for remote detection
// deliveries: like the GRH's, it is bounded (never http.DefaultClient,
// which has no timeout).
var deliverClient = &http.Client{Timeout: grh.DefaultTimeout}

// Deliverer posts asynchronous detection answers either to a local sink or
// to a remote ReplyTo URL, depending on how the event component was
// registered.
type Deliverer struct {
	// Local receives answers for registrations without a ReplyTo.
	Local func(*protocol.Answer)
	// Client is used for remote deliveries; a shared client with
	// grh.DefaultTimeout when nil.
	Client *http.Client
	// Obs receives delivery counters (service_detections_total); nil
	// disables instrumentation.
	Obs *obs.Hub

	once          sync.Once
	localDetected *obs.Counter
	httpDetected  *obs.Counter
}

// Deliver routes one detection answer.
func (d *Deliverer) Deliver(a *protocol.Answer, replyTo string) error {
	d.once.Do(func() {
		vec := d.Obs.Metrics().CounterVec("service_detections_total", "Detection answers delivered by event services, by transport.", "transport")
		d.localDetected = vec.With("local")
		d.httpDetected = vec.With("http")
	})
	if replyTo == "" {
		d.localDetected.Inc()
	} else {
		d.httpDetected.Inc()
	}
	if replyTo == "" {
		if d.Local == nil {
			return fmt.Errorf("services: no local detection sink configured")
		}
		d.Local(a)
		return nil
	}
	client := d.Client
	if client == nil {
		client = deliverClient
	}
	body := protocol.EncodeAnswers(a).String()
	resp, err := client.Post(replyTo, "application/xml", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("services: deliver to %s: %w", replyTo, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("services: deliver to %s: HTTP %d", replyTo, resp.StatusCode)
	}
	return nil
}

// unwrapOpaque extracts the expression text when the GRH wrapped an opaque
// component, else returns ok=false.
func unwrapOpaque(expr *xmltree.Node) (string, bool) {
	if expr != nil && expr.Name.Space == protocol.ECANS && expr.Name.Local == "opaque" {
		return strings.TrimSpace(expr.TextContent()), true
	}
	return "", false
}
