package services

import (
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/events"
	"repro/internal/protocol"
	"repro/internal/xmltree"
)

func TestDelivererErrors(t *testing.T) {
	// No local sink and no replyTo → error.
	d := &Deliverer{}
	if err := d.Deliver(&protocol.Answer{}, ""); err == nil {
		t.Error("missing local sink should error")
	}
	// Unreachable replyTo → error, but no panic.
	if err := d.Deliver(&protocol.Answer{}, "http://127.0.0.1:1/detect"); err == nil {
		t.Error("unreachable replyTo should error")
	}
}

func TestEventMatcherSurvivesDeadReplyTo(t *testing.T) {
	// A registration pointing at a dead callback must not break detection
	// for other rules.
	stream := events.NewStream()
	var local int
	m := NewEventMatcher(stream, &Deliverer{Local: func(*protocol.Answer) { local++ }})
	defer m.Close()
	m.Handle(&protocol.Request{
		Kind: protocol.RegisterEvent, RuleID: "dead", Component: "e",
		ReplyTo:    "http://127.0.0.1:1/none",
		Expression: xmltree.MustParse(`<e/>`).Root(),
	})
	m.Handle(&protocol.Request{
		Kind: protocol.RegisterEvent, RuleID: "alive", Component: "e",
		Expression: xmltree.MustParse(`<e/>`).Root(),
	})
	stream.Publish(events.New(xmltree.NewElement("", "e")))
	if local != 1 {
		t.Fatalf("local deliveries = %d (dead remote must not block)", local)
	}
}

func TestQueryTextErrors(t *testing.T) {
	if _, err := queryText(nil); err == nil {
		t.Error("nil expression should fail")
	}
	empty := xmltree.NewElement(XQueryNS, "query")
	if _, err := queryText(empty); err == nil {
		t.Error("empty expression should fail")
	}
}

func TestDatalogServiceBadGoal(t *testing.T) {
	svc, err := NewDatalogService(datalog.MustParse(`p(a).`))
	if err != nil {
		t.Fatal(err)
	}
	expr := xmltree.NewElement(DatalogNS, "query")
	expr.AppendText(`P(a)`) // uppercase predicate: parse error
	if _, err := svc.Handle(&protocol.Request{Kind: protocol.Query, Expression: expr, Bindings: bindings.NewRelation()}); err == nil {
		t.Error("bad goal should fail")
	}
	if _, err := svc.Handle(&protocol.Request{Kind: protocol.Action, Expression: expr, Bindings: bindings.NewRelation()}); err == nil {
		t.Error("wrong kind should fail")
	}
}

func TestXQueryServiceNamespaces(t *testing.T) {
	store := NewDocStore()
	store.Put("d", xmltree.MustParse(`<t:r xmlns:t="http://t/"><t:v>7</t:v></t:r>`))
	svc := NewXQueryService(store, map[string]string{"q": "http://t/"})
	expr := xmltree.NewElement(XQueryNS, "query")
	expr.AppendText(`doc('d')//q:v/text()`)
	a, err := svc.Handle(&protocol.Request{
		Kind: protocol.Query, Expression: expr,
		Bindings: bindings.NewRelation(bindings.Tuple{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || len(a.Rows[0].Results) != 1 || a.Rows[0].Results[0].AsString() != "7" {
		t.Fatalf("rows = %+v", a.Rows)
	}
}

func TestInstantiateKeepsNamespaceDecls(t *testing.T) {
	tpl := xmltree.MustParse(`<t:msg xmlns:t="http://t/" to="$P"/>`).Root()
	out := Instantiate(tpl, bindings.MustTuple("P", bindings.Str("$weird & value")))
	if got := out.AttrValue("", "to"); got != "$weird & value" {
		t.Errorf("substitution = %q", got)
	}
	// xmlns decl untouched, serialization valid.
	if _, err := xmltree.ParseString(out.String()); err != nil {
		t.Errorf("instantiated message does not serialize: %v", err)
	}
}

func TestActionExecutorMissingSink(t *testing.T) {
	ex := NewActionExecutor(nil, nil, nil)
	expr := xmltree.MustParse(`<m to="$P"/>`).Root()
	_, err := ex.Handle(&protocol.Request{
		Kind: protocol.Action, Expression: expr,
		Bindings: bindings.NewRelation(bindings.MustTuple("P", bindings.Str("x"))),
	})
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Errorf("err = %v", err)
	}
}

func TestStoreDeleteBadSelector(t *testing.T) {
	store := NewDocStore()
	store.Put("d", xmltree.MustParse(`<d/>`))
	ex := NewActionExecutor(store, nil, nil)
	expr := xmltree.MustParse(`<store:delete xmlns:store="` + StoreNS + `" doc="d" select="//x["/>`).Root()
	_, err := ex.Handle(&protocol.Request{
		Kind: protocol.Action, Expression: expr,
		Bindings: bindings.NewRelation(bindings.Tuple{}),
	})
	if err == nil {
		t.Error("bad selector should fail")
	}
}
