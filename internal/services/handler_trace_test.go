package services

import (
	"bytes"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/xmltree"
)

func testRequestBody(t *testing.T) *strings.Reader {
	t.Helper()
	req := &protocol.Request{
		Kind: protocol.Test, RuleID: "r", Component: "test[1]",
		Expression: xmltree.MustParse(`<eca:opaque xmlns:eca="` + protocol.ECANS + `">$X != "b"</eca:opaque>`).Root(),
		Bindings: bindings.NewRelation(
			bindings.MustTuple("X", bindings.Str("a")),
			bindings.MustTuple("X", bindings.Str("b")),
		),
	}
	return strings.NewReader(protocol.EncodeRequest(req).String())
}

func TestHandlerEmitsServerTrace(t *testing.T) {
	hub := obs.NewHub()
	var logBuf bytes.Buffer
	lg := obs.NewLogger(&logBuf, "json", slog.LevelDebug)
	h := NewHandler(TestEvaluator{}, hub, lg)

	r := httptest.NewRequest("POST", "/services/test", testRequestBody(t))
	r.Header.Set(protocol.TraceIDHeader, "r#42")
	r.Header.Set(protocol.ParentSpanHeader, "test[1]")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}

	a, err := protocol.DecodeAnswers(xmltree.MustParse(rec.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceID != "r#42" || a.TraceParent != "test[1]" {
		t.Errorf("echoed trace context = %q/%q", a.TraceID, a.TraceParent)
	}
	phases := map[string]protocol.TraceSpan{}
	for _, s := range a.Trace {
		phases[s.Phase] = s
	}
	if len(phases) != 3 {
		t.Fatalf("server spans = %+v, want parse/evaluate/encode", a.Trace)
	}
	if p := phases["parse"]; p.TuplesIn != 2 || p.Start.IsZero() {
		t.Errorf("parse span = %+v", p)
	}
	if ev := phases["evaluate"]; ev.TuplesIn != 2 || ev.TuplesOut != 1 {
		t.Errorf("evaluate span = %+v (test should keep 1 of 2 tuples)", ev)
	}
	if len(a.Rows) != 1 {
		t.Errorf("rows = %+v", a.Rows)
	}

	// Phase histogram observed once per phase.
	vec := hub.Metrics().HistogramVec("service_phase_seconds", "", nil, "phase")
	for _, phase := range []string{"parse", "evaluate", "encode"} {
		if n := vec.With(phase).Count(); n != 1 {
			t.Errorf("service_phase_seconds{phase=%q} count = %d, want 1", phase, n)
		}
	}

	// Every structured log line for the request carries the trace id.
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if !strings.Contains(line, `"trace_id":"r#42"`) {
			t.Errorf("log line missing trace_id: %s", line)
		}
	}
	if !strings.Contains(logBuf.String(), "service request handled") {
		t.Errorf("missing request log:\n%s", logBuf.String())
	}
}

func TestHandlerWithoutTraceHeaderStaysPlain(t *testing.T) {
	h := NewHandler(TestEvaluator{}, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/services/test", testRequestBody(t)))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if strings.Contains(rec.Body.String(), "trace") {
		t.Errorf("untraced request got a trace element: %s", rec.Body)
	}
	a, err := protocol.DecodeAnswers(xmltree.MustParse(rec.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceID != "" || len(a.Trace) != 0 || len(a.Rows) != 1 {
		t.Errorf("answer = %+v", a)
	}
}
