package services

import (
	"hash/fnv"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// DefaultPartitionQueue is the per-worker task queue capacity when the
// caller does not choose one. A full queue blocks the stream's ordered
// dispatch stage — and through it the publishing POST /events handlers,
// which keep holding admission slots until the publish completes, so
// sustained detector overload surfaces as -max-pending-events 429s at the
// edge rather than unbounded memory growth.
const DefaultPartitionQueue = 256

// DetectorPool fans event detection out across a fixed set of partition
// workers. Each detector (a SNOOP graph or an atomic-pattern matcher
// shard) is pinned to one worker by FNV hash of its rule key at
// registration time, so a detector's events are always processed by the
// same goroutine, in the order they were enqueued — the stream's ordered
// dispatch enqueues in Seq order, hence every detector still observes a
// totally ordered event feed while independent detectors evaluate in
// parallel and one rule's slow delivery endpoint cannot stall another
// partition's detection.
type DetectorPool struct {
	workers []*partitionWorker
	wg      sync.WaitGroup
	close   sync.Once
}

type partitionWorker struct {
	tasks  chan func()
	events *obs.Counter // snoop_partition_events_total{partition}
	depth  *obs.Gauge   // snoop_partition_queue_depth{partition}
}

// NewDetectorPool starts workers goroutines with bounded task queues of
// the given capacity (DefaultPartitionQueue when <= 0). The hub's metrics
// registry receives per-partition counters; a nil hub runs uninstrumented.
func NewDetectorPool(workers, queue int, h *obs.Hub) *DetectorPool {
	if workers < 1 {
		workers = 1
	}
	if queue <= 0 {
		queue = DefaultPartitionQueue
	}
	reg := h.Metrics()
	eventsVec := reg.CounterVec("snoop_partition_events_total",
		"Detection tasks enqueued to partition workers, per partition (one task per event per partition with pinned detectors).", "partition")
	depthVec := reg.GaugeVec("snoop_partition_queue_depth",
		"Detection tasks waiting in each partition worker's queue.", "partition")
	p := &DetectorPool{}
	for i := 0; i < workers; i++ {
		w := &partitionWorker{
			tasks:  make(chan func(), queue),
			events: eventsVec.With(strconv.Itoa(i)),
			depth:  depthVec.With(strconv.Itoa(i)),
		}
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range w.tasks {
				w.depth.Set(float64(len(w.tasks)))
				task()
			}
		}()
	}
	return p
}

// Workers returns the partition count.
func (p *DetectorPool) Workers() int { return len(p.workers) }

// Pick pins a rule key to a partition: FNV-1a of the key modulo the
// worker count. The pin is stable for the detector's lifetime, which is
// what guarantees its ordered feed.
func (p *DetectorPool) Pick(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % len(p.workers)
}

// Enqueue hands a task to the given worker, blocking while its queue is
// full (the documented back-pressure contract). Tasks enqueued by one
// goroutine run in enqueue order on the worker's goroutine.
func (p *DetectorPool) Enqueue(worker int, task func()) {
	w := p.workers[worker]
	w.events.Inc()
	w.tasks <- task
	w.depth.Set(float64(len(w.tasks)))
}

// Close stops the workers after draining every queued task. Callers must
// stop producing first (unsubscribe the services from their stream and
// stop Advance tickers); enqueueing after Close panics.
func (p *DetectorPool) Close() {
	p.close.Do(func() {
		for _, w := range p.workers {
			close(w.tasks)
		}
	})
	p.wg.Wait()
}
