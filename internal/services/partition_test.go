package services

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/snoop"
	"repro/internal/xmltree"
)

// keysOnDistinctWorkers finds n rule ids whose registry keys (ruleID +
// "/e") land on n distinct partitions of the pool.
func keysOnDistinctWorkers(t *testing.T, p *DetectorPool, n int) []string {
	t.Helper()
	seen := map[int]string{}
	for i := 0; i < 10_000 && len(seen) < n; i++ {
		id := fmt.Sprintf("r%d", i)
		w := p.Pick(id + "/e")
		if _, ok := seen[w]; !ok {
			seen[w] = id
		}
	}
	if len(seen) < n {
		t.Fatalf("could not find %d distinct partitions", n)
	}
	out := make([]string, 0, n)
	for _, id := range seen {
		out = append(out, id)
	}
	return out
}

func TestDetectorPoolPickStable(t *testing.T) {
	p := NewDetectorPool(4, 8, nil)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("workers = %d", p.Workers())
	}
	for _, k := range []string{"a", "b/c", "rule-17/event[1]"} {
		if p.Pick(k) != p.Pick(k) {
			t.Errorf("Pick(%q) unstable", k)
		}
		if w := p.Pick(k); w < 0 || w >= 4 {
			t.Errorf("Pick(%q) = %d out of range", k, w)
		}
	}
}

func TestDetectorPoolEnqueueOrder(t *testing.T) {
	p := NewDetectorPool(2, 4, nil)
	var mu sync.Mutex
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		p.Enqueue(1, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	p.Close() // drains
	if len(got) != 100 {
		t.Fatalf("ran %d tasks, want 100", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("task %d ran out of order: %v...", i, got[:i+1])
		}
	}
}

// TestSnoopSlowDeliveryDoesNotBlockOtherPartitions is satellite coverage
// for the narrowed lock: the seed held the service-wide mutex across
// deliver.Deliver, so one rule's slow subscriber blocked detection of the
// NEXT event for every other rule. With partitioned fan-out, rule B's
// detection of event N+1 completes while rule A's delivery of event N is
// still in flight.
func TestSnoopSlowDeliveryDoesNotBlockOtherPartitions(t *testing.T) {
	pool := NewDetectorPool(4, 16, nil)
	defer pool.Close()
	ids := keysOnDistinctWorkers(t, pool, 2)
	slowID, fastID := ids[0], ids[1]

	slowEntered := make(chan struct{})
	release := make(chan struct{})
	fastGot := make(chan *protocol.Answer, 1)
	stream := events.NewStream()
	s := NewSnoopService(stream, &Deliverer{Local: func(a *protocol.Answer) {
		switch a.RuleID {
		case slowID:
			close(slowEntered)
			<-release // a very slow subscriber
		case fastID:
			fastGot <- a
		}
	}}, WithDetectorPool(pool))
	defer s.Close()

	reg := func(id, name string) {
		expr := xmltree.MustParse(`<snoop:event xmlns:snoop="` + snoop.NS + `"><` + name + `/></snoop:event>`).Root()
		if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: id, Component: "e", Expression: expr}); err != nil {
			t.Fatal(err)
		}
	}
	reg(slowID, "slow")
	reg(fastID, "fast")

	// Event N matches the slow rule; its delivery parks on the release
	// channel inside that rule's partition worker.
	stream.Publish(events.New(xmltree.NewElement("", "slow")))
	select {
	case <-slowEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("slow rule never detected its event")
	}
	// Event N+1 matches the fast rule on another partition; its detection
	// and delivery must complete while the slow delivery is still blocked.
	stream.Publish(events.New(xmltree.NewElement("", "fast")))
	select {
	case a := <-fastGot:
		if a.RuleID != fastID {
			t.Fatalf("unexpected answer %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast rule's detection was blocked behind the slow delivery")
	}
	close(release)
}

// TestSnoopSequenceNoMisfireUnderConcurrentPublishers is the SNOOP-level
// regression for the out-of-order Publish family: a sequence detector
// a;b (joined on p) fed from racing publishers must fire exactly once per
// pair. Before the ordered dispatch stage, a pair's b could reach the
// detector before its a, silently dropping the occurrence. Exercises both
// the inline and the partitioned fan-out.
func TestSnoopSequenceNoMisfireUnderConcurrentPublishers(t *testing.T) {
	for _, mode := range []string{"inline", "partitioned"} {
		t.Run(mode, func(t *testing.T) {
			const (
				publishers = 8
				pairsPer   = 40
			)
			var opts []DetectorOption
			if mode == "partitioned" {
				pool := NewDetectorPool(4, 32, nil)
				defer pool.Close()
				opts = append(opts, WithDetectorPool(pool))
			}
			var mu sync.Mutex
			var got []*protocol.Answer
			stream := events.NewStream()
			s := NewSnoopService(stream, &Deliverer{Local: func(a *protocol.Answer) {
				mu.Lock()
				got = append(got, a)
				mu.Unlock()
			}}, opts...)
			defer s.Close()
			expr := xmltree.MustParse(`<snoop:seq xmlns:snoop="` + snoop.NS + `" context="chronicle">
				<snoop:event><a p="$P"/></snoop:event>
				<snoop:event><b p="$P"/></snoop:event>
			</snoop:seq>`).Root()
			if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: "seq", Component: "e", Expression: expr}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < pairsPer; i++ {
						tag := fmt.Sprintf("%d-%d", p, i)
						ea := xmltree.NewElement("", "a")
						ea.SetAttr("", "p", tag)
						stream.Publish(events.New(ea)) // returns after ordered dispatch
						eb := xmltree.NewElement("", "b")
						eb.SetAttr("", "p", tag)
						stream.Publish(events.New(eb)) // so b's Seq > a's Seq, globally
					}
				}(p)
			}
			wg.Wait()
			// Partitioned detection is asynchronous past the queue; wait for
			// the full count.
			deadline := time.Now().Add(5 * time.Second)
			for {
				mu.Lock()
				n := len(got)
				mu.Unlock()
				if n >= publishers*pairsPer || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(got) != publishers*pairsPer {
				t.Fatalf("sequence fired %d times, want %d (misfire under concurrency)", len(got), publishers*pairsPer)
			}
			seen := map[string]bool{}
			for _, a := range got {
				p := a.Rows[0].Tuple["P"].AsString()
				if seen[p] {
					t.Fatalf("pair %q detected twice", p)
				}
				seen[p] = true
			}
		})
	}
}

// TestEventMatcherPartitioned: the atomic matcher shards its patterns
// across the pool and still delivers every match.
func TestEventMatcherPartitioned(t *testing.T) {
	pool := NewDetectorPool(3, 16, obs.NewHub())
	defer pool.Close()
	var mu sync.Mutex
	got := map[string]int{}
	stream := events.NewStream()
	m := NewEventMatcher(stream, &Deliverer{Local: func(a *protocol.Answer) {
		mu.Lock()
		got[a.RuleID]++
		mu.Unlock()
	}}, WithDetectorPool(pool))
	defer m.Close()
	const rules = 9
	for i := 0; i < rules; i++ {
		reg := &protocol.Request{
			Kind: protocol.RegisterEvent, RuleID: fmt.Sprintf("r%d", i), Component: "e",
			Expression: xmltree.MustParse(fmt.Sprintf(`<ev%d/>`, i)).Root(),
		}
		if _, err := m.Handle(reg); err != nil {
			t.Fatal(err)
		}
	}
	if m.Registrations() != rules {
		t.Fatalf("registrations = %d", m.Registrations())
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < rules; i++ {
			stream.Publish(events.New(xmltree.NewElement("", fmt.Sprintf("ev%d", i))))
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, n := range got {
			total += n
		}
		mu.Unlock()
		if total >= rules*5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < rules; i++ {
		if got[fmt.Sprintf("r%d", i)] != 5 {
			t.Fatalf("rule r%d matched %d times, want 5 (map: %v)", i, got[fmt.Sprintf("r%d", i)], got)
		}
	}
	// Unregister goes to the same shard the registration was pinned to.
	if _, err := m.Handle(&protocol.Request{Kind: protocol.UnregisterEvent, RuleID: "r0", Component: "e"}); err != nil {
		t.Fatal(err)
	}
	if m.Registrations() != rules-1 {
		t.Fatalf("registrations after unregister = %d", m.Registrations())
	}
}

// TestSnoopAdvanceRoutedThroughWorkers: in pool mode a clock tick
// serializes with the pinned detector's event feed and still fires
// elapsed periodic occurrences.
func TestSnoopAdvanceRoutedThroughWorkers(t *testing.T) {
	pool := NewDetectorPool(2, 8, nil)
	defer pool.Close()
	fired := make(chan *protocol.Answer, 16)
	stream := events.NewStream()
	s := NewSnoopService(stream, &Deliverer{Local: func(a *protocol.Answer) { fired <- a }},
		WithDetectorPool(pool))
	defer s.Close()
	expr := xmltree.MustParse(`<snoop:periodic interval="10s" xmlns:snoop="` + snoop.NS + `">
		<snoop:event><start/></snoop:event>
		<snoop:event><stop/></snoop:event>
	</snoop:periodic>`).Root()
	if _, err := s.Handle(&protocol.Request{Kind: protocol.RegisterEvent, RuleID: "p", Component: "e", Expression: expr}); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	stream.Publish(events.Event{Payload: xmltree.NewElement("", "start"), Time: base})
	s.Advance(base.Add(25 * time.Second))
	for i := 0; i < 2; i++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatalf("periodic occurrence %d never fired through the worker", i+1)
		}
	}
	select {
	case a := <-fired:
		t.Fatalf("unexpected extra occurrence %+v", a)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDetectorPoolMetrics: partition counters are registered and advance.
func TestDetectorPoolMetrics(t *testing.T) {
	h := obs.NewHub()
	pool := NewDetectorPool(2, 8, h)
	done := make(chan struct{})
	pool.Enqueue(0, func() { close(done) })
	<-done
	pool.Close()
	var b strings.Builder
	h.Metrics().WritePrometheus(&b)
	if !containsLine(b.String(), `snoop_partition_events_total{partition="0"} 1`) {
		t.Fatalf("missing partition counter in:\n%s", b.String())
	}
}

func containsLine(dump, want string) bool {
	for _, line := range splitLines(dump) {
		if line == want {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
