package bench

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/compilecache"
)

// ephemeralPort scrubs the only nondeterminism in figure replays: the OS
// assigns each httptest service a fresh loopback port, which leaks into the
// traced request URLs.
var ephemeralPort = regexp.MustCompile(`127\.0\.0\.1:\d+`)

func normalizePorts(s string) string {
	return ephemeralPort.ReplaceAllString(s, "127.0.0.1:0")
}

// TestCachedVsFreshFigureReplays is the compile-once property test: every
// message-flow figure (Figs. 5–11) must replay byte-identically whether the
// expressions are compiled fresh per dispatch (cache disabled) or served
// from a warm cache. Any divergence means a cached compiled form carries
// state between evaluations.
func TestCachedVsFreshFigureReplays(t *testing.T) {
	cache := compilecache.Default
	defer func() {
		cache.SetCapacity(compilecache.DefaultCapacity)
		cache.Purge()
	}()

	run := func(n int) (string, error) {
		var buf bytes.Buffer
		err := RunFigure(n, &buf)
		return normalizePorts(buf.String()), err
	}

	for _, n := range []int{5, 6, 7, 8, 9, 10, 11} {
		t.Run(fmt.Sprintf("fig%d", n), func(t *testing.T) {
			// Fresh: the cache is bypassed, every Get compiles.
			cache.SetCapacity(0)
			cache.Purge()
			fresh, err := run(n)
			if err != nil {
				t.Fatalf("fresh replay: %v", err)
			}
			// Cached: warm the cache with one full replay, then compare a
			// second replay served entirely from cached compiled forms.
			cache.SetCapacity(compilecache.DefaultCapacity)
			cache.Purge()
			if _, err := run(n); err != nil {
				t.Fatalf("warming replay: %v", err)
			}
			cached, err := run(n)
			if err != nil {
				t.Fatalf("cached replay: %v", err)
			}
			if cached != fresh {
				t.Fatalf("cached replay diverges from fresh:%s", firstDiff(fresh, cached))
			}
		})
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("\n  line %d:\n  fresh:  %q\n  cached: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("\n  lengths differ: fresh %d lines, cached %d lines", len(al), len(bl))
}

// TestHotpathSeriesGate runs the hotpath series end to end and asserts the
// warm-path speedup gate that CI enforces via BENCH_hotpath.json.
func TestHotpathSeriesGate(t *testing.T) {
	if testing.Short() {
		t.Skip("hotpath series takes ~1s of timed loops")
	}
	var buf bytes.Buffer
	stats, err := RunSeriesStats("hotpath", &buf)
	if err != nil {
		t.Fatalf("hotpath series: %v\n%s", err, buf.String())
	}
	if stats.WarmSpeedup < minWarmSpeedup {
		t.Fatalf("warm speedup %.2f× below the %.0f× gate\n%s", stats.WarmSpeedup, minWarmSpeedup, buf.String())
	}
	if stats.CompileCacheHits == 0 || stats.CompileCacheMisses == 0 {
		t.Fatalf("series recorded no cache traffic: hits=%d misses=%d", stats.CompileCacheHits, stats.CompileCacheMisses)
	}
}
