// Package bench is the experiment harness behind cmd/ecabench and the
// repository-level benchmarks: it replays every figure of the paper
// (architecture artifacts and the car-rental message flows of Figs. 4–11)
// and produces the performance series recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/domain/travel"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/system"
	"repro/internal/xmltree"
)

// Trace is one observed GRH message.
type Trace struct {
	Dir     string // "→" request, "←" answer
	Peer    string
	Payload string
}

// ScenarioRun is a fully traced execution of the running example.
type ScenarioRun struct {
	Traces    []Trace
	EngineLog []string
	Sc        *travel.Scenario
	Cleanup   func()
}

// RunScenario wires the car-rental scenario with tracing and publishes the
// paper's booking event.
func RunScenario() (*ScenarioRun, error) {
	run := &ScenarioRun{}
	var mu sync.Mutex
	cfg := system.Config{
		Logger: engine.LoggerFunc(func(format string, args ...any) {
			mu.Lock()
			run.EngineLog = append(run.EngineLog, fmt.Sprintf(format, args...))
			mu.Unlock()
		}),
		Trace: func(dir, peer string, payload *xmltree.Node) {
			mu.Lock()
			run.Traces = append(run.Traces, Trace{dir, peer, xmltree.Indent(payload).String()})
			mu.Unlock()
		},
	}
	sc, cleanup, err := travel.NewScenario(cfg)
	if err != nil {
		return nil, err
	}
	run.Sc = sc
	run.Cleanup = cleanup
	sc.Book("John Doe", "Munich", "Paris")
	return run, nil
}

// Figures returns the set of reproducible figure numbers.
func Figures() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11} }

// RunFigure reproduces one figure of the paper, writing the regenerated
// artifact or message flow to w.
func RunFigure(n int, w io.Writer) error {
	switch n {
	case 1:
		return fig1(w)
	case 2:
		return fig2(w)
	case 3:
		return fig3(w)
	case 4:
		return fig4(w)
	case 5, 6, 7, 8, 9, 10, 11:
		return figFlow(n, w)
	default:
		return fmt.Errorf("bench: no figure %d in the paper", n)
	}
}

// fig1 regenerates the rule-and-language ontology of Fig. 1: the sample
// rule and the registered languages as RDF resources, serialized as Turtle
// and validated.
func fig1(w io.Writer) error {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		return err
	}
	g := ontology.Base()
	ontology.DescribeRegistry(g, sys.GRH)
	// The framework-unaware nodes of Figs. 9/10 are languages too: the
	// registry records their endpoints and that opaque mediation applies.
	ontology.DescribeLanguage(g, grh.Descriptor{
		Language:       services.XQueryNS + "-opaque",
		Name:           "raw XQuery/XPath HTTP nodes (framework-unaware)",
		Kinds:          []ruleml.ComponentKind{ruleml.QueryComponent},
		FrameworkAware: false,
		Endpoint:       "http://example.org/opaque",
	})
	rule, err := ruleml.ParseString(travel.RuleXML("http://example.org/opaque/store", "http://example.org/opaque/xquery"))
	if err != nil {
		return err
	}
	ontology.DescribeRule(g, rule)
	fmt.Fprintln(w, "# Fig. 1 — ECA rule components and languages as Semantic-Web resources")
	fmt.Fprintln(w, "# (the sample rule of Fig. 4 plus the registered component languages)")
	fmt.Fprintln(w)
	if err := rdf.WriteTurtle(w, g.Triples(), map[string]string{
		"eca":   ontology.NS,
		"rules": ontology.RulesNS,
		"rdfs":  rdf.RDFSNS,
		"rdf":   rdf.RDFNS,
		"xsd":   rdf.XSDNS,
	}); err != nil {
		return err
	}
	if err := ontology.Validate(g, rule.ID); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n# ontology validation of rule %q: OK (every component uses a language of its family)\n", rule.ID)
	return nil
}

// fig2 regenerates the language hierarchy of Fig. 2.
func fig2(w io.Writer) error {
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		return err
	}
	g := ontology.Base()
	ontology.DescribeRegistry(g, sys.GRH)
	fmt.Fprintln(w, "# Fig. 2 — hierarchy of languages")
	fmt.Fprintln(w, "ECA Language: <event/> <query/> <test/> <action/>")
	for _, fam := range []struct {
		label string
		class rdf.Term
	}{
		{"Event languages", ontology.ClassEventLanguage},
		{"Query languages", ontology.ClassQueryLanguage},
		{"Test languages", ontology.ClassTestLanguage},
		{"Action languages", ontology.ClassActionLanguage},
	} {
		fmt.Fprintf(w, "├─ %s\n", fam.label)
		langs := ontology.LanguagesInFamily(g, fam.class)
		var names []string
		for _, l := range langs {
			names = append(names, l.Value)
		}
		sort.Strings(names)
		for _, n := range names {
			name := n
			if d, ok := sys.GRH.Lookup(n); ok && d.Name != "" {
				name = fmt.Sprintf("%s (%s)", d.Name, n)
			}
			fmt.Fprintf(w, "│   ├─ %s\n", name)
		}
	}
	fmt.Fprintln(w, "└─ Application domain: atomic events / literals / atomic actions")
	fmt.Fprintf(w, "    └─ travel domain (%s): booking, cancellation → inform\n", travel.NS)
	return nil
}

// fig3 regenerates the global service-oriented architecture: every service
// behind an HTTP endpoint, one booking routed entirely over the wire.
func fig3(w io.Writer) error {
	sc, cleanup, err := travel.NewScenario(system.Config{})
	if err != nil {
		return err
	}
	defer cleanup()
	srv, err := serveMux(sc)
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := sc.Distribute(srv.URL); err != nil {
		return err
	}
	rule, err := ruleml.ParseString(travel.RuleXML(sc.StoreURL, sc.XQueryURL))
	if err != nil {
		return err
	}
	rule.ID = "car-rental-distributed"
	if err := sc.Engine.Register(rule); err != nil {
		return err
	}
	sc.Notifier.Reset()
	sc.Book("John Doe", "Munich", "Paris")
	fmt.Fprintln(w, "# Fig. 3 — global service-oriented architecture (all services over HTTP)")
	fmt.Fprintf(w, "base URL: %s\n", srv.URL)
	for _, ep := range []string{
		"/services/matcher", "/services/snoop", "/services/xquery",
		"/services/datalog", "/services/test", "/services/action",
		"/opaque/store", "/opaque/xquery", "/engine/detect", "/engine/rules", "/events",
	} {
		fmt.Fprintf(w, "  endpoint %s\n", ep)
	}
	sent := sc.Notifier.Sent()
	fmt.Fprintf(w, "booking routed through the distributed deployment → %d notification(s)\n", len(sent))
	for _, s := range sent {
		fmt.Fprintf(w, "  %s\n", s.Message)
	}
	if len(sent) == 0 {
		return fmt.Errorf("fig3: distributed deployment produced no notifications")
	}
	return nil
}

// fig4 regenerates the sample rule document.
func fig4(w io.Writer) error {
	src := travel.RuleXML("http://example.org/opaque/store", "http://example.org/opaque/xquery")
	rule, err := ruleml.ParseString(src)
	if err != nil {
		return err
	}
	if err := ruleml.Validate(rule, nil); err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig. 4 — outline of the sample rule (parsed and validated)")
	fmt.Fprintln(w, src)
	fmt.Fprintf(w, "\n# structure: event=%s, steps=%d, actions=%d\n", rule.Event.ID, len(rule.Steps), len(rule.Actions))
	for _, c := range rule.Components() {
		varInfo := ""
		if c.Variable != "" {
			varInfo = fmt.Sprintf(" binds $%s", c.Variable)
		}
		mode := "marked-up"
		if c.Opaque {
			mode = "opaque"
		}
		fmt.Fprintf(w, "#   %-10s language=%-55s %s%s\n", c.ID, orDash(c.Language), mode, varInfo)
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "(domain-level, registry default)"
	}
	return s
}

// figFlow replays the message flows of Figs. 5–11 and prints the slice of
// the trace belonging to the requested figure.
func figFlow(n int, w io.Writer) error {
	run, err := RunScenario()
	if err != nil {
		return err
	}
	defer run.Cleanup()
	headers := map[int]string{
		5:  "# Fig. 5 — registration of the event component (engine → GRH → atomic matcher)",
		6:  "# Fig. 6 — detection of the event component (matcher → engine, instance creation)",
		7:  "# Fig. 7 — sending the first query component to the GRH (own cars)",
		8:  "# Fig. 8 — answer to the first query: two functional results → two tuples",
		9:  "# Fig. 9 — evaluation of the 2nd query against a framework-unaware service (per-tuple HTTP GET)",
		10: "# Fig. 10 — query against available cars, generating a log:answers structure",
		11: "# Fig. 11 — join semantics: only class-B tuples survive; one action per tuple",
	}
	fmt.Fprintln(w, headers[n])
	shown := 0
	switch n {
	case 5:
		shown = printTraces(w, run.Traces, func(t Trace) bool {
			return strings.Contains(t.Payload, `kind="register-event"`)
		})
	case 6:
		shown = printLog(w, run.EngineLog, "event", "instance created")
	case 7:
		shown = printTraces(w, run.Traces, func(t Trace) bool {
			return t.Dir == "→" && strings.Contains(t.Payload, `component="query[1]"`)
		})
	case 8:
		shown = printTraces(w, run.Traces, func(t Trace) bool {
			return t.Dir == "←" && t.Peer == "XQuery service"
		})
		shown += printLog(w, run.EngineLog, "after query[1]")
	case 9:
		shown = printTraces(w, run.Traces, func(t Trace) bool {
			return strings.Contains(t.Peer, run.Sc.StoreURL)
		})
		shown += printLog(w, run.EngineLog, "after query[2]")
	case 10:
		shown = printTraces(w, run.Traces, func(t Trace) bool {
			return strings.Contains(t.Peer, run.Sc.XQueryURL)
		})
	case 11:
		shown = printLog(w, run.EngineLog, "after query[3]", "action")
		for _, s := range run.Sc.Notifier.Sent() {
			fmt.Fprintf(w, "message sent: %s\n", s.Message)
		}
		if len(run.Sc.Notifier.Sent()) != 1 {
			return fmt.Errorf("fig%d: expected exactly one surviving tuple, got %d", n, len(run.Sc.Notifier.Sent()))
		}
	}
	if shown == 0 {
		return fmt.Errorf("fig%d: message flow replay produced no matching traffic", n)
	}
	return nil
}

func printTraces(w io.Writer, traces []Trace, keep func(Trace) bool) int {
	n := 0
	for _, t := range traces {
		if keep(t) {
			fmt.Fprintf(w, "%s %s\n%s\n\n", t.Dir, t.Peer, t.Payload)
			n++
		}
	}
	return n
}

func printLog(w io.Writer, lines []string, substrs ...string) int {
	n := 0
	for _, l := range lines {
		for _, s := range substrs {
			if strings.Contains(l, s) {
				fmt.Fprintln(w, l)
				n++
				break
			}
		}
	}
	return n
}

// grhComponent is re-exported for the series helpers.
type grhComponent = grh.Component
