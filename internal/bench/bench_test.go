package bench

import (
	"strings"
	"testing"
)

// TestFigureContent pins the load-bearing content of each regenerated
// figure: the reproduction is wrong if these markers disappear.
func TestFigureContent(t *testing.T) {
	wants := map[int][]string{
		1: {
			"rules:car-rental rdf:type eca:Rule",
			"eca:bindsVariable \"OwnCar\"",
			"ontology validation of rule \"car-rental\": OK",
		},
		2: {
			"SNOOP detection service",
			"Query languages",
			"Datalog service",
			"travel domain",
		},
		3: {
			"/services/matcher",
			"notification(s)",
			"Opel Astra",
		},
		4: {
			"car-rental",
			"binds $OwnCar",
			"opaque",
			"steps=3, actions=1",
		},
		5: {
			`kind="register-event"`,
			"atomic event matcher",
			"$Person",
		},
		6: {
			"instance created",
			`Person="John Doe"`,
			`Dest="Paris"`,
		},
		7: {
			`component="query[1]"`,
			"John Doe",
		},
		8: {
			"VW Golf",
			"VW Passat",
			"2 tuple(s)",
		},
		9: {
			"VW Golf",
			"VW Passat",
			"http-get",
		},
		10: {
			"log:answers",
			"Opel Astra",
			"Renault Espace",
		},
		11: {
			"after query[3]: 1 tuple(s)",
			`ownCar="VW Passat"`,
			`class="B"`,
		},
	}
	for _, n := range Figures() {
		n := n
		t.Run(figName(n), func(t *testing.T) {
			var b strings.Builder
			if err := RunFigure(n, &b); err != nil {
				t.Fatal(err)
			}
			out := b.String()
			for _, want := range wants[n] {
				if !strings.Contains(out, want) {
					t.Errorf("figure %d output lacks %q\n----\n%s", n, want, out)
				}
			}
		})
	}
}

func figName(n int) string {
	return "fig" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestUnknownFigureAndSeries(t *testing.T) {
	var b strings.Builder
	if err := RunFigure(12, &b); err == nil {
		t.Error("figure 12 should not exist")
	}
	if err := RunSeries("bogus", &b); err == nil {
		t.Error("bogus series should fail")
	}
}

func TestSeriesOutputsTables(t *testing.T) {
	// Only the cheap, local series — the HTTP ones run via cmd/ecabench.
	for _, s := range []string{"xpath", "xq", "join"} {
		var b strings.Builder
		if err := RunSeries(s, &b); err != nil {
			t.Fatalf("series %s: %v", s, err)
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		if len(lines) < 3 {
			t.Errorf("series %s produced %d lines", s, len(lines))
		}
		if !strings.Contains(lines[0], "series "+s) {
			t.Errorf("series %s header = %q", s, lines[0])
		}
	}
}
