package bench

import (
	"fmt"
	"io"

	"repro/internal/bindings"
	"repro/internal/compilecache"
	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/obs"
	"repro/internal/services"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xq"
)

// minWarmSpeedup gates the hotpath series (and so BENCH_hotpath.json in
// CI): every language's warm-path compiled-expression acquisition must be
// at least this much faster than per-dispatch recompilation.
const minWarmSpeedup = 2.0

// seriesHotpath quantifies the compile-once pipeline: acquiring a compiled
// expression through the warm cache vs. re-running the compiler on every
// dispatch, per language, plus an end-to-end EvalTest context row.
func seriesHotpath(w io.Writer, hub *obs.Hub) error {
	cache := compilecache.Default
	cache.SetObs(hub)
	defer cache.SetObs(nil)
	cache.SetCapacity(compilecache.DefaultCapacity)
	cache.Purge()

	fmt.Fprintln(w, "series hotpath — compiled-expression acquisition, warm cache vs per-dispatch recompilation")
	fmt.Fprintln(w, "language\texpr\tns/recompile\tns/warm\tspeedup")

	cases := []struct {
		lang, name string
		recompile  func() error
		warm       func() error
	}{
		{"xpath", "predicate", func() error {
			_, err := xpath.Compile(`//owner[@name='John Doe']/car[year>2004]/model`)
			return err
		}, func() error {
			_, err := xpath.CompileCached(`//owner[@name='John Doe']/car[year>2004]/model`)
			return err
		}},
		{"xq", "own-cars", func() error {
			_, err := xq.Compile(`for $c in doc('` + travel.CarsDoc + `')//owner[@name=$Person]/car return $c/model/text()`)
			return err
		}, func() error {
			_, err := xq.CompileCached(`for $c in doc('` + travel.CarsDoc + `')//owner[@name=$Person]/car return $c/model/text()`)
			return err
		}},
		{"datalog", "goal", func() error {
			_, err := datalog.ParseQuery(`reservation(Person, Car, CarClass, StartStation, DestStation, PickupDay, ReturnDay, Price)`)
			return err
		}, func() error {
			_, err := datalog.ParseQueryCached(`reservation(Person, Car, CarClass, StartStation, DestStation, PickupDay, ReturnDay, Price)`)
			return err
		}},
	}

	worst := 0.0
	for i, c := range cases {
		// One warm call outside the timers so the warm loop measures hits.
		if err := c.warm(); err != nil {
			return fmt.Errorf("hotpath %s: %w", c.lang, err)
		}
		const n = 20000
		coldNs := measure(n, func(int) {
			if err := c.recompile(); err != nil {
				panic(err)
			}
		})
		warmNs := measure(n, func(int) {
			if err := c.warm(); err != nil {
				panic(err)
			}
		})
		speedup := coldNs / warmNs
		if i == 0 || speedup < worst {
			worst = speedup
		}
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.1f×\n", c.lang, c.name, coldNs, warmNs, speedup)
	}

	// Context row: the evaluation hot path end to end (compile acquisition
	// + evaluation), the shape EvalTest actually runs per dispatch.
	fmt.Fprintln(w, "\nend-to-end evaluation (compile + eval per call):")
	fmt.Fprintln(w, "path\tns/eval(recompile)\tns/eval(warm)\tspeedup")
	rel := makeRelation(64, 8, "Class", "N")
	cond := `$Class != 'compact' and $N != 'v0'`
	freshNs := measure(2000, func(int) {
		if _, err := evalTestFresh(cond, rel); err != nil {
			panic(err)
		}
	})
	warmNs := measure(2000, func(int) {
		if _, err := services.EvalTest(cond, rel); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "test-64-tuples\t%.0f\t%.0f\t%.2f×\n", freshNs, warmNs, freshNs/warmNs)

	hub.Metrics().Gauge("bench_warm_speedup", "Worst per-language warm-path speedup of the hotpath series.").Set(worst)
	if worst < minWarmSpeedup {
		return fmt.Errorf("hotpath: warm-path speedup %.2f× below the %.0f× gate", worst, minWarmSpeedup)
	}
	return nil
}

// evalTestFresh is the pre-cache EvalTest shape — compile on every call —
// kept as the recompile baseline the series compares against.
func evalTestFresh(cond string, rel *bindings.Relation) (*bindings.Relation, error) {
	expr, err := xpath.Compile(cond)
	if err != nil {
		return nil, err
	}
	dummy := xmltree.NewDocument()
	return rel.Select(func(t bindings.Tuple) bool {
		vars := make(map[string]xpath.Object, len(t))
		for name, v := range t {
			vars[name] = v.AsString()
		}
		ok, err := expr.EvalBool(&xpath.Context{Node: dummy, Vars: vars})
		return err == nil && ok
	}), nil
}
