package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bindings"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

// SeriesStats summarizes one series run from its metrics hub: overall GRH
// dispatch percentiles plus the throughput-layer counters (cache, coalescing,
// sharding). Serialized by ecabench -json.
type SeriesStats struct {
	Series         string  `json:"series"`
	Dispatches     int64   `json:"grh_dispatches"`
	DispatchP50    float64 `json:"grh_dispatch_p50_seconds"`
	DispatchP95    float64 `json:"grh_dispatch_p95_seconds"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	Coalesced      int64   `json:"coalesced"`
	Shards         int64   `json:"shards"`
	ShardFanoutP95 float64 `json:"shard_fanout_p95"`

	// Compile-once pipeline (hotpath series; zero elsewhere unless the
	// series drove the expression cache).
	CompileCacheHits   int64   `json:"compile_cache_hits,omitempty"`
	CompileCacheMisses int64   `json:"compile_cache_misses,omitempty"`
	WarmSpeedup        float64 `json:"warm_speedup,omitempty"`
}

// statsFrom snapshots the throughput stats of a series from its hub.
func statsFrom(name string, hub *obs.Hub) SeriesStats {
	m := hub.Metrics()
	d := m.HistogramVec("grh_dispatch_seconds", "", nil, "language", "mode").Merged()
	st := SeriesStats{
		Series:      name,
		Dispatches:  d.Count(),
		DispatchP50: d.Quantile(0.5),
		DispatchP95: d.Quantile(0.95),
		CacheHits:   m.Counter("grh_cache_hits_total", "").Value(),
		CacheMisses: m.Counter("grh_cache_misses_total", "").Value(),
		Coalesced:   m.Counter("grh_coalesced_total", "").Value(),
		Shards:      m.Counter("grh_shards_total", "").Value(),
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(total)
	}
	st.ShardFanoutP95 = m.Histogram("grh_shard_fanout", "", nil).Quantile(0.95)
	st.CompileCacheHits = m.Counter("compile_cache_hits_total", "").Value()
	st.CompileCacheMisses = m.Counter("compile_cache_misses_total", "").Value()
	st.WarmSpeedup = m.Gauge("bench_warm_speedup", "").Value()
	return st
}

// echoServer is a framework-aware HTTP query service with a configurable
// evaluation cost: a fixed delay per request plus a marginal delay per
// input tuple. It echoes every input tuple back with one result, so both
// plain joins and eca:variable extensions behave as a real service's
// would.
func echoServer(delay, perTuple time.Duration, upstream *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if upstream != nil {
			upstream.Add(1)
		}
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := protocol.DecodeRequest(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		time.Sleep(delay + time.Duration(req.Bindings.Size())*perTuple)
		a := &protocol.Answer{RuleID: req.RuleID, Component: req.Component}
		for _, t := range req.Bindings.Tuples() {
			a.Rows = append(a.Rows, protocol.AnswerRow{Tuple: t, Results: []bindings.Value{bindings.Str("r")}})
		}
		fmt.Fprint(w, protocol.EncodeAnswers(a).String())
	}))
}

func benchQuery(lang string, rel *bindings.Relation) grhComponent {
	return grhComponent{
		Rule:     "bench",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: lang, Expression: xmltree.NewElement(lang, "q")},
		Bindings: rel,
	}
}

// seriesCache: dispatch cost against an HTTP query service with and
// without the answer cache, plus the coalescing effect of concurrent
// identical dispatches. Fails when the warm cache does not deliver at
// least a 5× speedup — the regression gate CI relies on.
func seriesCache(w io.Writer, hub *obs.Hub) error {
	fmt.Fprintln(w, "series cache — GRH answer cache + request coalescing (HTTP query service, ~0.5ms evaluation)")
	fmt.Fprintln(w, "segment\tns/dispatch\tdispatches/s\tupstream")
	var upstream atomic.Int64
	srv := echoServer(500*time.Microsecond, 0, &upstream)
	defer srv.Close()

	rel := makeRelation(8, 4, "K", "V")
	const n = 200

	register := func(g *grh.GRH, lang string) error {
		return g.Register(grh.Descriptor{Language: lang, Name: "echo query service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: srv.URL})
	}

	// Baseline: every dispatch pays the full round trip.
	gOff := grh.New(grh.WithObs(hub))
	const langOff = "http://bench/cache-off"
	if err := register(gOff, langOff); err != nil {
		return err
	}
	upstream.Store(0)
	cold := measure(n, func(int) {
		if _, err := gOff.Dispatch(protocol.Query, benchQuery(langOff, rel)); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "no-cache\t%.0f\t%.0f\t%d\n", cold, 1e9/cold, upstream.Load())

	// Warm cache: the first dispatch misses and fills, the rest hit.
	gOn := grh.New(grh.WithObs(hub), grh.WithCache(grh.DefaultCachePolicy))
	const langOn = "http://bench/cache-on"
	if err := register(gOn, langOn); err != nil {
		return err
	}
	upstream.Store(0)
	warm := measure(n, func(int) {
		if _, err := gOn.Dispatch(protocol.Query, benchQuery(langOn, rel)); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "warm-cache\t%.0f\t%.0f\t%d\n", warm, 1e9/warm, upstream.Load())

	// Coalescing: concurrent identical dispatches on a cold key share one
	// upstream request (stragglers may hit the freshly filled cache).
	gCo := grh.New(grh.WithObs(hub), grh.WithCache(grh.DefaultCachePolicy))
	const langCo = "http://bench/coalesce"
	if err := register(gCo, langCo); err != nil {
		return err
	}
	upstream.Store(0)
	const fanIn = 64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < fanIn; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := gCo.Dispatch(protocol.Query, benchQuery(langCo, rel)); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	per := float64(time.Since(start).Nanoseconds()) / fanIn
	fmt.Fprintf(w, "coalesce×%d\t%.0f\t%.0f\t%d\n", fanIn, per, 1e9/per, upstream.Load())

	speedup := cold / warm
	fmt.Fprintf(w, "\nwarm-cache speedup: %.1f× (threshold ≥5×)\n", speedup)
	if speedup < 5 {
		return fmt.Errorf("bench: warm cache speedup %.1f× below the 5× threshold", speedup)
	}
	return nil
}

// seriesPartition: dispatch cost of a large input relation unsharded vs.
// partitioned, against an HTTP query service whose evaluation cost is
// dominated by per-tuple work — the regime partitioning targets.
func seriesPartition(w io.Writer, hub *obs.Hub) error {
	fmt.Fprintln(w, "series partition — partitioned parallel dispatch (HTTP query service, ~200µs/tuple evaluation)")
	fmt.Fprintln(w, "config\ttuples\tshards\tns/dispatch\tspeedup")
	srv := echoServer(100*time.Microsecond, 200*time.Microsecond, nil)
	defer srv.Close()

	const tuples = 512
	rel := makeRelation(tuples, 64, "K", "V")
	const n = 5

	configs := []struct {
		name string
		p    grh.PartitionPolicy
	}{
		{"unsharded", grh.PartitionPolicy{}},
		{"shard≤128", grh.PartitionPolicy{MaxTuples: 128, MaxShards: 8}},
		{"shard≤64", grh.PartitionPolicy{MaxTuples: 64, MaxShards: 8}},
	}
	var base float64
	for i, cfg := range configs {
		g := grh.New(grh.WithObs(hub), grh.WithPartition(cfg.p))
		lang := fmt.Sprintf("http://bench/partition-%d", i)
		if err := g.Register(grh.Descriptor{Language: lang, Name: "echo query service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: srv.URL}); err != nil {
			return err
		}
		// Sanity: sharding must not change the answer.
		a, err := g.Dispatch(protocol.Query, benchQuery(lang, rel))
		if err != nil {
			return err
		}
		if len(a.Rows) != tuples {
			return fmt.Errorf("bench: partition config %s returned %d rows, want %d", cfg.name, len(a.Rows), tuples)
		}
		nsop := measure(n, func(int) {
			if _, err := g.Dispatch(protocol.Query, benchQuery(lang, rel)); err != nil {
				panic(err)
			}
		})
		shards := 1
		if cfg.p.Enabled() {
			shards = (tuples + cfg.p.MaxTuples - 1) / cfg.p.MaxTuples
			if shards > cfg.p.MaxShards {
				shards = cfg.p.MaxShards
			}
		}
		if i == 0 {
			base = nsop
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.1f×\n", cfg.name, tuples, shards, nsop, base/nsop)
	}
	return nil
}
