package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/snoop"
	"repro/internal/system"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xq"
)

func serveMux(sc *travel.Scenario) (*httptest.Server, error) {
	return httptest.NewServer(sc.Mux(xmltree.MustParse(travel.ClassesXML), travel.Namespaces())), nil
}

// Series lists the available performance series.
func Series() []string {
	return []string{"reg", "match", "snoop", "join", "grh", "e2e", "datalog", "xq", "xpath", "resilience", "cache", "partition", "hotpath"}
}

// RunSeries executes one named series, printing a table to w. Series that
// exercise the system stack run against a fresh observability hub; its
// metrics snapshot is appended after the table.
func RunSeries(name string, w io.Writer) error {
	_, err := RunSeriesStats(name, w)
	return err
}

// RunSeriesStats is RunSeries returning a stats summary (dispatch
// percentiles, cache hit rate, shard fan-out) computed from the series'
// metrics hub — the per-series record ecabench -json persists.
func RunSeriesStats(name string, w io.Writer) (SeriesStats, error) {
	hub := obs.NewHub()
	var err error
	switch name {
	case "reg":
		err = seriesReg(w, hub)
	case "match":
		err = seriesMatch(w)
	case "snoop":
		err = seriesSnoop(w, hub)
	case "join":
		err = seriesJoin(w)
	case "grh":
		err = seriesGRH(w, hub)
	case "e2e":
		err = seriesE2E(w, hub)
	case "datalog":
		err = seriesDatalog(w)
	case "xq":
		err = seriesXQ(w)
	case "xpath":
		err = seriesXPath(w)
	case "resilience":
		err = seriesResilience(w, hub)
	case "cache":
		err = seriesCache(w, hub)
	case "partition":
		err = seriesPartition(w, hub)
	case "hotpath":
		err = seriesHotpath(w, hub)
	default:
		return SeriesStats{}, fmt.Errorf("bench: unknown series %q (have %v)", name, Series())
	}
	if err != nil {
		return SeriesStats{}, err
	}
	var buf bytes.Buffer
	hub.Metrics().WriteSummary(&buf)
	if buf.Len() > 0 {
		fmt.Fprintf(w, "\nmetrics snapshot (series %s):\n", name)
		w.Write(buf.Bytes())
	}
	writeStageLatencies(w, hub, name)
	return statsFrom(name, hub), nil
}

// writeStageLatencies prints per-stage latency percentiles for the series
// from the engine_step_seconds histogram — the event/query/test/action
// breakdown of where a rule instance spends its time. Series that never
// drive the engine observe nothing and print nothing.
func writeStageLatencies(w io.Writer, hub *obs.Hub, name string) {
	vec := hub.Metrics().HistogramVec("engine_step_seconds", "Per-component evaluation latency by component kind.", nil, "kind")
	type row struct {
		kind     string
		n        int64
		p50, p95 float64
	}
	var rows []row
	for _, kind := range []string{"event", "query", "test", "action"} {
		h := vec.With(kind)
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, row{kind, h.Count(), h.Quantile(0.5), h.Quantile(0.95)})
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\nstage latencies (series %s):\nstage\tcount\tp50\tp95\n", name)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", r.kind, r.n, fmtSeconds(r.p50), fmtSeconds(r.p95))
	}
}

// fmtSeconds renders a latency estimate with a unit fitting its scale.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// measure runs f n times and returns ns/op.
func measure(n int, f func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func simpleRule(id string) *ruleml.Rule {
	return ruleml.MustParse(fmt.Sprintf(`<eca:rule xmlns:eca="%s" xmlns:t="http://t/" id="%s">
	  <eca:event><t:e%s x="$X"/></eca:event>
	  <eca:action><t:a x="$X"/></eca:action>
	</eca:rule>`, protocol.ECANS, id, id))
}

// seriesReg: rule registrations per second vs. number of rules already
// registered.
func seriesReg(w io.Writer, hub *obs.Hub) error {
	fmt.Fprintln(w, "series reg — rule registration cost vs. registered rules")
	fmt.Fprintln(w, "rules\tns/register\tregisters/s")
	for _, n := range []int{100, 1000, 5000} {
		sys, err := system.NewLocal(system.Config{Obs: hub})
		if err != nil {
			return err
		}
		nsop := measure(n, func(i int) {
			if err := sys.Engine.Register(simpleRule(fmt.Sprintf("r%d", i))); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\n", n, nsop, 1e9/nsop)
	}
	return nil
}

// seriesMatch: atomic events matched per second vs. number of registered
// patterns.
func seriesMatch(w io.Writer) error {
	fmt.Fprintln(w, "series match — atomic event matching vs. registered patterns")
	fmt.Fprintln(w, "patterns\tns/event\tevents/s")
	for _, m := range []int{1, 10, 100, 1000} {
		stream := events.NewStream()
		matcher := events.NewMatcher()
		stream.Subscribe(matcher.OnEvent)
		for i := 0; i < m; i++ {
			p := events.MustPattern(fmt.Sprintf(`<e%d x="$X"/>`, i))
			matcher.Register(fmt.Sprintf("k%d", i), p, func(events.Detection) {})
		}
		payload := xmltree.NewElement("", "e0")
		payload.SetAttr("", "x", "1")
		nsop := measure(2000, func(int) {
			stream.Publish(events.Event{Payload: payload})
		})
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\n", m, nsop, 1e9/nsop)
	}
	return nil
}

// seriesSnoop: composite detection throughput per operator and context.
func seriesSnoop(w io.Writer, hub *obs.Hub) error {
	fmt.Fprintln(w, "series snoop — composite event detection by operator × context")
	fmt.Fprintln(w, "operator\tcontext\tns/event\tevents/s")
	atomicA := &snoop.Atomic{Pattern: events.MustPattern(`<a k="$K"/>`)}
	atomicB := &snoop.Atomic{Pattern: events.MustPattern(`<b k="$K"/>`)}
	atomicC := &snoop.Atomic{Pattern: events.MustPattern(`<c k="$K"/>`)}
	exprs := map[string]snoop.Expr{
		"seq": &snoop.Seq{L: atomicA, R: atomicB},
		"and": &snoop.And{L: atomicA, R: atomicB},
		"or":  &snoop.Or{L: atomicA, R: atomicB},
		"not": &snoop.Not{Begin: atomicA, Guarded: atomicC, End: atomicB},
		"any": &snoop.Any{M: 2, Children: []snoop.Expr{atomicA, atomicB, atomicC}},
	}
	contexts := []snoop.ParamContext{snoop.Recent, snoop.Chronicle, snoop.Continuous, snoop.Cumulative}
	for _, op := range []string{"seq", "and", "or", "not", "any"} {
		for _, ctx := range contexts {
			det, err := snoop.NewDetector(exprs[op], ctx, func(snoop.Occurrence) {})
			if err != nil {
				return err
			}
			det.SetObs(hub)
			names := []string{"a", "b"}
			seq := uint64(0)
			nsop := measure(2000, func(i int) {
				seq++
				e := xmltree.NewElement("", names[i%2])
				// a and b alternate and share the join key, so initiators
				// actually pair with terminators and consuming contexts
				// keep their state bounded.
				e.SetAttr("", "k", fmt.Sprint((i/2)%8))
				det.Feed(events.Event{Payload: e, Seq: seq, Time: time.Unix(int64(seq), 0)})
			})
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\n", op, ctx, nsop, 1e9/nsop)
		}
	}
	return nil
}

// makeRelation builds a relation of n tuples over the given join-key
// cardinality.
func makeRelation(n, keys int, keyVar, payloadVar string) *bindings.Relation {
	r := bindings.NewRelation()
	for i := 0; i < n; i++ {
		r.Add(bindings.MustTuple(
			keyVar, bindings.Str(fmt.Sprintf("k%d", i%keys)),
			payloadVar, bindings.Str(fmt.Sprintf("v%d", i)),
		))
	}
	return r
}

// seriesJoin: natural-join cost vs. relation sizes. The join-key
// cardinality scales with the input (n/2 keys → ~2 matches per key per
// side), so output stays linear and the series measures the hash join, not
// a Cartesian blow-up.
func seriesJoin(w io.Writer) error {
	fmt.Fprintln(w, "series join — natural join R ⋈ S vs. input sizes (n/2 join-key values)")
	fmt.Fprintln(w, "|R|\t|S|\tout\tns/join\ttuples/s")
	for _, n := range []int{10, 100, 1000, 10000} {
		keys := n / 2
		if keys < 4 {
			keys = 4
		}
		r := makeRelation(n, keys, "K", "A")
		s := makeRelation(n, keys, "K", "B")
		var out *bindings.Relation
		reps := 5
		if n >= 10000 {
			reps = 2
		}
		nsop := measure(reps, func(int) { out = r.Join(s) })
		fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\t%.0f\n", n, n, out.Size(), nsop, float64(out.Size())*1e9/nsop)
	}
	return nil
}

// seriesGRH: dispatch overhead — in-process vs. HTTP framework-aware vs.
// opaque per-tuple mediation.
func seriesGRH(w io.Writer, hub *obs.Hub) error {
	fmt.Fprintln(w, "series grh — GRH dispatch overhead by transport (query with 2 input tuples)")
	fmt.Fprintln(w, "transport\tns/dispatch\tdispatches/s")
	sc, cleanup, err := travel.NewScenario(system.Config{Obs: hub})
	if err != nil {
		return err
	}
	defer cleanup()
	srv, err := serveMux(sc)
	if err != nil {
		return err
	}
	defer srv.Close()

	rel := bindings.NewRelation(
		bindings.MustTuple("Person", bindings.Str("John Doe")),
		bindings.MustTuple("Person", bindings.Str("Jane Roe")),
	)
	expr := xmltree.NewElement(services.XQueryNS, "query")
	expr.AppendText(`for $c in doc('` + travel.CarsDoc + `')//owner[@name=$Person]/car return $c/model/text()`)
	comp := grhComponent{
		Rule:     "bench",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: services.XQueryNS, Expression: expr},
		Bindings: rel,
	}
	// In-process.
	nsop := measure(500, func(int) {
		if _, err := sc.GRH.Dispatch(protocol.Query, comp); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "in-process\t%.0f\t%.0f\n", nsop, 1e9/nsop)
	// HTTP framework-aware.
	if err := sc.Distribute(srv.URL); err != nil {
		return err
	}
	nsop = measure(300, func(int) {
		if _, err := sc.GRH.Dispatch(protocol.Query, comp); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "http-aware\t%.0f\t%.0f\n", nsop, 1e9/nsop)
	// Opaque per-tuple mediation.
	opaque := grhComponent{
		Rule: "bench",
		Comp: ruleml.Component{
			Kind: ruleml.QueryComponent, ID: "query[2]", Opaque: true,
			Language: "raw", Service: sc.StoreURL,
			Text: `//entry[@model='VW Golf']/@class`,
		},
		Bindings: rel,
	}
	nsop = measure(300, func(int) {
		if _, err := sc.GRH.Dispatch(protocol.Query, opaque); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "http-opaque\t%.0f\t%.0f\n", nsop, 1e9/nsop)
	return nil
}

// seriesE2E: end-to-end firings of the car-rental rule per second.
func seriesE2E(w io.Writer, hub *obs.Hub) error {
	fmt.Fprintln(w, "series e2e — end-to-end car-rental rule firings (event → 3 queries → join → action)")
	fmt.Fprintln(w, "deployment\tns/firing\tfirings/s")
	for _, mode := range []string{"local", "distributed"} {
		sc, cleanup, err := travel.NewScenario(system.Config{Obs: hub})
		if err != nil {
			return err
		}
		srv, err := serveMux(sc)
		if err != nil {
			cleanup()
			return err
		}
		if mode == "distributed" {
			if err := sc.Distribute(srv.URL); err != nil {
				srv.Close()
				cleanup()
				return err
			}
		}
		nsop := measure(200, func(int) {
			sc.Book("John Doe", "Munich", "Paris")
		})
		if got := len(sc.Notifier.Sent()); got != 200 {
			srv.Close()
			cleanup()
			return fmt.Errorf("e2e %s: %d notifications, want 200", mode, got)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\n", mode, nsop, 1e9/nsop)
		srv.Close()
		cleanup()
	}
	return nil
}

// seriesDatalog: transitive closure on chain graphs.
func seriesDatalog(w io.Writer) error {
	fmt.Fprintln(w, "series datalog — transitive closure of a chain, semi-naive evaluation")
	fmt.Fprintln(w, "nodes\tderived\tns/eval\tfacts/s")
	for _, n := range []int{50, 200, 500} {
		var src string
		for i := 0; i < n-1; i++ {
			src += fmt.Sprintf("e(n%d, n%d).\n", i, i+1)
		}
		src += "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- e(X, Y), tc(Y, Z).\n"
		prog, err := datalog.Parse(src)
		if err != nil {
			return err
		}
		var db *datalog.Database
		nsop := measure(3, func(int) {
			db, err = prog.Eval()
			if err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\n", n, db.Size(), nsop, float64(db.Size())*1e9/nsop)
	}
	return nil
}

// seriesXQ: XQuery-lite evaluations per second on the cars document.
func seriesXQ(w io.Writer) error {
	fmt.Fprintln(w, "series xq — XQuery-lite FLWOR evaluation on the cars document")
	fmt.Fprintln(w, "query\tns/eval\tevals/s")
	store := services.NewDocStore()
	travel.LoadStore(store)
	ctx := &xq.Context{Docs: store.Resolver(), Vars: map[string]xq.Sequence{"Person": {"John Doe"}}}
	queries := map[string]string{
		"own-cars":  `for $c in doc('` + travel.CarsDoc + `')//owner[@name=$Person]/car return $c/model/text()`,
		"construct": `for $c in doc('` + travel.CarsDoc + `')//car order by $c/year return <r y="{$c/year}">{$c/model/text()}</r>`,
	}
	for _, name := range []string{"own-cars", "construct"} {
		q, err := xq.Compile(queries[name])
		if err != nil {
			return err
		}
		nsop := measure(3000, func(int) {
			if _, err := q.Eval(ctx); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\n", name, nsop, 1e9/nsop)
	}
	return nil
}

// seriesResilience: dispatch outcome and cost against a flaky service
// (every 3rd request answers 503) with retry off vs. on, then fast-fail
// cost of a tripped breaker against a dead endpoint vs. paying the
// transport error every time.
func seriesResilience(w io.Writer, hub *obs.Hub) error {
	fmt.Fprintln(w, "series resilience — GRH dispatch against faulty services")
	fmt.Fprintln(w, "segment\tconfig\tok/total\tns/dispatch")

	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%3 == 0 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, protocol.EncodeAnswers(protocol.NewAnswer("bench", "query[1]", bindings.Unit())).String())
	}))
	defer flaky.Close()

	comp := func(lang string) grhComponent {
		return grhComponent{
			Rule:     "bench",
			Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: lang, Expression: xmltree.NewElement(lang, "q")},
			Bindings: bindings.Unit(),
		}
	}
	const n = 300
	retryConfigs := []struct {
		name  string
		retry grh.RetryPolicy
	}{
		{"no-retry", grh.RetryPolicy{}},
		{"retry×3", grh.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond}},
	}
	for _, rc := range retryConfigs {
		g := grh.New(grh.WithObs(hub), grh.WithRetry(rc.retry))
		lang := "http://flaky/" + rc.name
		if err := g.Register(grh.Descriptor{Language: lang, FrameworkAware: true, Endpoint: flaky.URL}); err != nil {
			return err
		}
		ok := 0
		nsop := measure(n, func(int) {
			if _, err := g.Dispatch(protocol.Query, comp(lang)); err == nil {
				ok++
			}
		})
		fmt.Fprintf(w, "flaky-1/3\t%s\t%d/%d\t%.0f\n", rc.name, ok, n, nsop)
	}

	// Dead endpoint: without a breaker every dispatch pays the transport
	// error; with one, the circuit opens after the threshold and the rest
	// are shed without touching the network.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	breakerConfigs := []struct {
		name    string
		breaker grh.BreakerPolicy
	}{
		{"no-breaker", grh.BreakerPolicy{}},
		{"breaker(3)", grh.BreakerPolicy{FailureThreshold: 3, Cooldown: time.Minute}},
	}
	for _, bc := range breakerConfigs {
		g := grh.New(grh.WithObs(hub), grh.WithBreaker(bc.breaker))
		lang := "http://dead/" + bc.name
		if err := g.Register(grh.Descriptor{Language: lang, FrameworkAware: true, Endpoint: deadURL}); err != nil {
			return err
		}
		nsop := measure(200, func(int) {
			g.Dispatch(protocol.Query, comp(lang))
		})
		fmt.Fprintf(w, "dead-endpoint\t%s\t0/200\t%.0f\n", bc.name, nsop)
	}
	return nil
}

// seriesXPath: XPath evaluations per second.
func seriesXPath(w io.Writer) error {
	fmt.Fprintln(w, "series xpath — XPath evaluation on the cars document")
	fmt.Fprintln(w, "expr\tns/eval\tevals/s")
	doc := xmltree.MustParse(travel.CarsXML)
	exprs := map[string]string{
		"path":      `/owners/owner/car/model`,
		"predicate": `//owner[@name='John Doe']/car[year>2004]/model`,
		"functions": `count(//car[starts-with(model, 'VW')])`,
	}
	for _, name := range []string{"path", "predicate", "functions"} {
		e, err := xpath.Compile(exprs[name])
		if err != nil {
			return err
		}
		ctx := &xpath.Context{Node: doc}
		nsop := measure(5000, func(int) {
			if _, err := e.Eval(ctx); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\n", name, nsop, 1e9/nsop)
	}
	return nil
}
