package snoop

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/xmltree"
)

// mkEvent builds a primitive event <name k="v" …/> with explicit stream
// position and time.
func mkEvent(name string, seq uint64, attrs ...string) events.Event {
	e := xmltree.NewElement("", name)
	for i := 0; i+1 < len(attrs); i += 2 {
		e.SetAttr("", attrs[i], attrs[i+1])
	}
	return events.Event{Payload: e, Seq: seq, Time: time.Unix(int64(seq), 0)}
}

func atomic(src string) *Atomic {
	return &Atomic{Pattern: events.MustPattern(src)}
}

// collect builds a detector whose occurrences are appended to the returned
// slice pointer.
func collect(t *testing.T, e Expr, ctx ParamContext) (*Detector, *[]Occurrence) {
	t.Helper()
	var got []Occurrence
	d, err := NewDetector(e, ctx, func(o Occurrence) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	return d, &got
}

func TestAtomicDetection(t *testing.T) {
	d, got := collect(t, atomic(`<a x="$X"/>`), Unrestricted)
	d.Feed(mkEvent("a", 1, "x", "1"))
	d.Feed(mkEvent("b", 2))
	d.Feed(mkEvent("a", 3, "x", "2"))
	if len(*got) != 2 {
		t.Fatalf("occurrences = %v", *got)
	}
	if (*got)[0].Bindings["X"].AsString() != "1" || (*got)[1].Bindings["X"].AsString() != "2" {
		t.Errorf("bindings = %v", *got)
	}
}

func TestOr(t *testing.T) {
	d, got := collect(t, &Or{atomic(`<a/>`), atomic(`<b/>`)}, Unrestricted)
	d.Feed(mkEvent("a", 1))
	d.Feed(mkEvent("b", 2))
	d.Feed(mkEvent("c", 3))
	if len(*got) != 2 {
		t.Fatalf("or occurrences = %v", *got)
	}
}

func TestSeqOrdering(t *testing.T) {
	d, got := collect(t, &Seq{atomic(`<a/>`), atomic(`<b/>`)}, Unrestricted)
	d.Feed(mkEvent("b", 1)) // b before any a: no occurrence
	d.Feed(mkEvent("a", 2))
	d.Feed(mkEvent("b", 3))
	if len(*got) != 1 {
		t.Fatalf("seq = %v", *got)
	}
	o := (*got)[0]
	if o.Start != 2 || o.End != 3 {
		t.Errorf("interval = [%d,%d]", o.Start, o.End)
	}
}

func TestSeqJoinVariables(t *testing.T) {
	// booking($P) ; cancellation($P): only same-person pairs.
	e := &Seq{atomic(`<booking person="$P"/>`), atomic(`<cancellation person="$P"/>`)}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("booking", 1, "person", "john"))
	d.Feed(mkEvent("booking", 2, "person", "jane"))
	d.Feed(mkEvent("cancellation", 3, "person", "john"))
	if len(*got) != 1 {
		t.Fatalf("seq with vars = %v", *got)
	}
	if (*got)[0].Bindings["P"].AsString() != "john" {
		t.Errorf("binding = %v", (*got)[0].Bindings)
	}
}

func TestSeqContexts(t *testing.T) {
	feed := func(ctx ParamContext) []Occurrence {
		e := &Seq{atomic(`<a n="$N"/>`), atomic(`<b/>`)}
		var got []Occurrence
		d, err := NewDetector(e, ctx, func(o Occurrence) { got = append(got, o) })
		if err != nil {
			t.Fatal(err)
		}
		d.Feed(mkEvent("a", 1, "n", "1"))
		d.Feed(mkEvent("a", 2, "n", "2"))
		d.Feed(mkEvent("b", 3))
		d.Feed(mkEvent("b", 4))
		return got
	}
	// Unrestricted: both initiators pair with both terminators → 4.
	if got := feed(Unrestricted); len(got) != 4 {
		t.Errorf("unrestricted = %d, want 4: %v", len(got), got)
	}
	// Recent: only the latest initiator (n=2) survives; it pairs with both
	// terminators → 2 occurrences, both with N=2.
	got := feed(Recent)
	if len(got) != 2 || got[0].Bindings["N"].AsString() != "2" || got[1].Bindings["N"].AsString() != "2" {
		t.Errorf("recent = %v", got)
	}
	// Chronicle: first terminator consumes oldest initiator (n=1), second
	// consumes n=2.
	got = feed(Chronicle)
	if len(got) != 2 || got[0].Bindings["N"].AsString() != "1" || got[1].Bindings["N"].AsString() != "2" {
		t.Errorf("chronicle = %v", got)
	}
	// Continuous: first terminator closes both windows (2 occurrences);
	// second finds none.
	got = feed(Continuous)
	if len(got) != 2 || got[0].End != 3 || got[1].End != 3 {
		t.Errorf("continuous = %v", got)
	}
	// Cumulative accumulates all *binding-compatible* initiators per
	// terminator. N=1 and N=2 conflict, so the first terminator absorbs
	// N=1 (leaving N=2 stored) and the second absorbs N=2.
	got = feed(Cumulative)
	if len(got) != 2 || got[0].Bindings["N"].AsString() != "1" || got[1].Bindings["N"].AsString() != "2" {
		t.Errorf("cumulative = %v", got)
	}
}

func TestCumulativeMergesCompatible(t *testing.T) {
	e := &Seq{atomic(`<a/>`), atomic(`<b/>`)}
	d, got := collect(t, e, Cumulative)
	d.Feed(mkEvent("a", 1))
	d.Feed(mkEvent("a", 2))
	d.Feed(mkEvent("b", 3))
	if len(*got) != 1 {
		t.Fatalf("cumulative = %v", *got)
	}
	o := (*got)[0]
	if len(o.Constituents) != 3 || o.Start != 1 || o.End != 3 {
		t.Errorf("accumulated = %+v", o)
	}
	// Consumed: next terminator emits nothing.
	d.Feed(mkEvent("b", 4))
	if len(*got) != 1 {
		t.Errorf("initiators not consumed: %v", *got)
	}
}

func TestAndAnyOrder(t *testing.T) {
	e := &And{atomic(`<a/>`), atomic(`<b/>`)}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("b", 1))
	d.Feed(mkEvent("a", 2))
	if len(*got) != 1 {
		t.Fatalf("and = %v", *got)
	}
	if (*got)[0].Start != 1 || (*got)[0].End != 2 {
		t.Errorf("interval = %v", (*got)[0])
	}
}

func TestAndJoinVariables(t *testing.T) {
	e := &And{atomic(`<a p="$P"/>`), atomic(`<b p="$P"/>`)}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("a", 1, "p", "x"))
	d.Feed(mkEvent("b", 2, "p", "y"))
	if len(*got) != 0 {
		t.Fatalf("incompatible and = %v", *got)
	}
	d.Feed(mkEvent("b", 3, "p", "x"))
	if len(*got) != 1 {
		t.Fatalf("and = %v", *got)
	}
}

func TestAny(t *testing.T) {
	e := &Any{M: 2, Children: []Expr{atomic(`<a/>`), atomic(`<b/>`), atomic(`<c/>`)}}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("a", 1))
	if len(*got) != 0 {
		t.Fatal("any(2) should not fire after one")
	}
	d.Feed(mkEvent("c", 2))
	if len(*got) != 1 {
		t.Fatalf("any(2) = %v", *got)
	}
	if (*got)[0].Start != 1 || (*got)[0].End != 2 {
		t.Errorf("interval = %v", (*got)[0])
	}
}

func TestAnyOne(t *testing.T) {
	e := &Any{M: 1, Children: []Expr{atomic(`<a/>`), atomic(`<b/>`)}}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("b", 1))
	if len(*got) != 1 {
		t.Fatalf("any(1) = %v", *got)
	}
}

func TestNot(t *testing.T) {
	// NOT(cancel)[book, fly]: flying after booking with no cancellation in
	// between.
	e := &Not{
		Begin:   atomic(`<book p="$P"/>`),
		Guarded: atomic(`<cancel p="$P"/>`),
		End:     atomic(`<fly p="$P"/>`),
	}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("book", 1, "p", "john"))
	d.Feed(mkEvent("fly", 2, "p", "john"))
	if len(*got) != 1 {
		t.Fatalf("not (no guard) = %v", *got)
	}
	d.Feed(mkEvent("book", 3, "p", "jane"))
	d.Feed(mkEvent("cancel", 4, "p", "jane"))
	d.Feed(mkEvent("fly", 5, "p", "jane"))
	if len(*got) != 1 {
		t.Fatalf("guarded occurrence should be suppressed: %v", *got)
	}
	// A cancellation by someone else must NOT suppress (join variables).
	d.Feed(mkEvent("book", 6, "p", "ann"))
	d.Feed(mkEvent("cancel", 7, "p", "bob"))
	d.Feed(mkEvent("fly", 8, "p", "ann"))
	if len(*got) != 2 {
		t.Fatalf("unrelated cancel suppressed detection: %v", *got)
	}
}

func TestAperiodic(t *testing.T) {
	// A(open, tick, close): ticks inside the window are signalled.
	e := &Aperiodic{Begin: atomic(`<open/>`), Mid: atomic(`<tick n="$N"/>`), End: atomic(`<close/>`)}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("tick", 1, "n", "0")) // outside window
	d.Feed(mkEvent("open", 2))
	d.Feed(mkEvent("tick", 3, "n", "1"))
	d.Feed(mkEvent("tick", 4, "n", "2"))
	d.Feed(mkEvent("close", 5))
	d.Feed(mkEvent("tick", 6, "n", "3")) // window closed
	if len(*got) != 2 {
		t.Fatalf("aperiodic = %v", *got)
	}
	if (*got)[0].Bindings["N"].AsString() != "1" || (*got)[1].Bindings["N"].AsString() != "2" {
		t.Errorf("ticks = %v", *got)
	}
}

func TestAperiodicStar(t *testing.T) {
	// A*(open, tick, close): ticks are accumulated and signalled once at
	// the terminator.
	e := &AperiodicStar{Begin: atomic(`<open/>`), Mid: atomic(`<tick n="$N"/>`), End: atomic(`<close/>`)}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("open", 1))
	d.Feed(mkEvent("tick", 2, "n", "1"))
	d.Feed(mkEvent("tick", 3, "n", "1")) // same binding: accumulates
	if len(*got) != 0 {
		t.Fatal("A* must stay silent until the terminator")
	}
	d.Feed(mkEvent("close", 4))
	if len(*got) != 1 {
		t.Fatalf("A* = %v", *got)
	}
	o := (*got)[0]
	if o.Start != 1 || o.End != 4 || len(o.Constituents) != 4 {
		t.Errorf("accumulated = %+v", o)
	}
	// A window with no mids signals nothing.
	d.Feed(mkEvent("open", 5))
	d.Feed(mkEvent("close", 6))
	if len(*got) != 1 {
		t.Errorf("empty window signalled: %v", *got)
	}
}

func TestAperiodicStarParseXML(t *testing.T) {
	src := `<snoop:aperiodic-star xmlns:snoop="` + NS + `">
		<snoop:event><a/></snoop:event>
		<snoop:event><b/></snoop:event>
		<snoop:event><c/></snoop:event>
	</snoop:aperiodic-star>`
	e, err := ParseXML(xmltree.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*AperiodicStar); !ok {
		t.Fatalf("parsed %T", e)
	}
}

func TestPeriodic(t *testing.T) {
	e := &Periodic{Begin: atomic(`<start/>`), Interval: 10 * time.Second, End: atomic(`<stop/>`)}
	d, got := collect(t, e, Unrestricted)
	d.Feed(events.Event{Payload: xmltree.NewElement("", "start"), Seq: 1, Time: time.Unix(100, 0)})
	// Advance the clock 35 seconds: three periods elapse.
	d.Advance(time.Unix(135, 0), 2)
	if len(*got) != 3 {
		t.Fatalf("periodic = %v", *got)
	}
	// Stop, then advance again: no more occurrences.
	d.Feed(events.Event{Payload: xmltree.NewElement("", "stop"), Seq: 3, Time: time.Unix(140, 0)})
	d.Advance(time.Unix(200, 0), 4)
	if len(*got) != 4 {
		// One more period (t=140) fires when the stop event itself advances
		// the clock to 140, before the stop is processed.
		t.Fatalf("periodic after stop = %d occurrences: %v", len(*got), *got)
	}
}

func TestNestedComposite(t *testing.T) {
	// (a ∨ b) ; c
	e := &Seq{&Or{atomic(`<a/>`), atomic(`<b/>`)}, atomic(`<c/>`)}
	d, got := collect(t, e, Unrestricted)
	d.Feed(mkEvent("b", 1))
	d.Feed(mkEvent("c", 2))
	if len(*got) != 1 {
		t.Fatalf("nested = %v", *got)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Expr{
		&Any{M: 0, Children: []Expr{atomic(`<a/>`)}},
		&Any{M: 3, Children: []Expr{atomic(`<a/>`)}},
		&Periodic{Begin: atomic(`<a/>`), Interval: 0, End: atomic(`<b/>`)},
		&Atomic{},
	}
	for _, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("Validate(%T) should fail", e)
		}
	}
}

func TestParseXML(t *testing.T) {
	src := `<snoop:seq xmlns:snoop="` + NS + `" xmlns:travel="http://t/">
		<snoop:event><travel:booking person="$P"/></snoop:event>
		<snoop:event><travel:cancellation person="$P"/></snoop:event>
	</snoop:seq>`
	e, err := ParseXML(xmltree.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := e.(*Seq)
	if !ok {
		t.Fatalf("parsed %T", e)
	}
	if _, ok := seq.L.(*Atomic); !ok {
		t.Errorf("left = %T", seq.L)
	}
	// Run it.
	var got []Occurrence
	d, err := NewDetector(e, Chronicle, func(o Occurrence) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, seqn uint64, p string) events.Event {
		el := xmltree.NewElement("http://t/", name)
		el.SetAttr("", "person", p)
		return events.Event{Payload: el, Seq: seqn, Time: time.Unix(int64(seqn), 0)}
	}
	d.Feed(mk("booking", 1, "john"))
	d.Feed(mk("cancellation", 2, "john"))
	if len(got) != 1 {
		t.Fatalf("detections = %v", got)
	}
}

func TestParseXMLOperators(t *testing.T) {
	cases := map[string]string{
		"or":        `<snoop:or xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event><snoop:event><b/></snoop:event></snoop:or>`,
		"and":       `<snoop:and xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event><snoop:event><b/></snoop:event></snoop:and>`,
		"any":       `<snoop:any m="1" xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event></snoop:any>`,
		"not":       `<snoop:not xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event><snoop:event><b/></snoop:event><snoop:event><c/></snoop:event></snoop:not>`,
		"aperiodic": `<snoop:aperiodic xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event><snoop:event><b/></snoop:event><snoop:event><c/></snoop:event></snoop:aperiodic>`,
		"periodic":  `<snoop:periodic interval="5s" xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event><snoop:event><b/></snoop:event></snoop:periodic>`,
	}
	for op, src := range cases {
		if _, err := ParseXML(xmltree.MustParse(src)); err != nil {
			t.Errorf("parse %s: %v", op, err)
		}
	}
	bad := []string{
		`<snoop:seq xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event></snoop:seq>`, // 1 operand
		`<snoop:any m="x" xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event></snoop:any>`,
		`<snoop:periodic interval="bogus" xmlns:snoop="` + NS + `"><snoop:event><a/></snoop:event><snoop:event><b/></snoop:event></snoop:periodic>`,
		`<snoop:zap xmlns:snoop="` + NS + `"/>`,
		`<wrong/>`,
		`<snoop:event xmlns:snoop="` + NS + `"></snoop:event>`,
	}
	for _, src := range bad {
		if _, err := ParseXML(xmltree.MustParse(src)); err == nil {
			t.Errorf("ParseXML(%q) should fail", src)
		}
	}
}

func TestFoldedNarySeq(t *testing.T) {
	src := `<snoop:seq xmlns:snoop="` + NS + `">
		<snoop:event><a/></snoop:event>
		<snoop:event><b/></snoop:event>
		<snoop:event><c/></snoop:event>
	</snoop:seq>`
	e, err := ParseXML(xmltree.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	d, got := collect(t, e, Unrestricted)
	for i, name := range []string{"a", "b", "c"} {
		d.Feed(mkEvent(name, uint64(i+1)))
	}
	if len(*got) != 1 {
		t.Fatalf("a;b;c = %v", *got)
	}
	if (*got)[0].Start != 1 || (*got)[0].End != 3 {
		t.Errorf("interval = %v", (*got)[0])
	}
	// Wrong order: nothing.
	d2, got2 := collect(t, e, Unrestricted)
	for i, name := range []string{"c", "b", "a"} {
		d2.Feed(mkEvent(name, uint64(i+1)))
	}
	if len(*got2) != 0 {
		t.Errorf("reversed order fired: %v", *got2)
	}
}

func TestContextString(t *testing.T) {
	for _, c := range []ParamContext{Unrestricted, Recent, Chronicle, Continuous, Cumulative} {
		back, err := ParseContext(c.String())
		if err != nil || back != c {
			t.Errorf("context round trip %v: %v %v", c, back, err)
		}
	}
	if _, err := ParseContext("bogus"); err == nil {
		t.Error("bogus context should fail")
	}
}

func TestDetectorThroughputSanity(t *testing.T) {
	// A long stream through a two-level graph stays linear-ish (chronicle
	// consumes state).
	e := &Seq{atomic(`<a k="$K"/>`), atomic(`<b k="$K"/>`)}
	d, got := collect(t, e, Chronicle)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("%d", i%10)
		d.Feed(mkEvent("a", uint64(2*i+1), "k", k))
		d.Feed(mkEvent("b", uint64(2*i+2), "k", k))
	}
	if len(*got) != 1000 {
		t.Fatalf("pairs = %d", len(*got))
	}
}
