// Package snoop implements the SNOOP composite event algebra of
// Chakravarthy et al. (VLDB 1994) extended with logical variables, the
// composite event component language the paper plugs into the ECA framework
// (Section 4.2, [CKAK94], [Spa06]).
//
// Operators: disjunction (Or), conjunction (And), sequence (Seq), Any(m, …),
// negation Not(E2)[E1, E3], aperiodic A(E1, E2, E3) and periodic
// P(E1, t, E3). Detection follows the event-graph approach: primitive
// occurrences enter at Atomic leaves and propagate upward; operator nodes
// keep initiator state and combine occurrences under one of the SNOOP
// parameter contexts (Unrestricted, Recent, Chronicle, Continuous,
// Cumulative).
//
// The logical-variable extension: every occurrence carries a tuple of
// variable bindings; combining operators join tuples and drop incompatible
// combinations, so a variable occurring in several constituent patterns acts
// as a join variable across the composite event.
package snoop

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bindings"
	"repro/internal/events"
	"repro/internal/obs"
)

// ParamContext selects the SNOOP parameter context, which determines how
// initiator occurrences pair with terminators.
type ParamContext int

// The parameter contexts of [CKAK94].
const (
	// Unrestricted pairs every initiator with every terminator.
	Unrestricted ParamContext = iota
	// Recent pairs only the most recent initiator; older ones are dropped.
	Recent
	// Chronicle pairs the oldest initiator and consumes it (FIFO).
	Chronicle
	// Continuous lets every initiator start a window that the first
	// following terminator closes: on a terminator, all stored initiators
	// pair and are consumed.
	Continuous
	// Cumulative accumulates all initiators and emits one occurrence per
	// terminator combining them all, then resets.
	Cumulative
)

var contextNames = map[string]ParamContext{
	"unrestricted": Unrestricted,
	"recent":       Recent,
	"chronicle":    Chronicle,
	"continuous":   Continuous,
	"cumulative":   Cumulative,
}

// ParseContext resolves a context name ("recent", "chronicle", …).
func ParseContext(s string) (ParamContext, error) {
	c, ok := contextNames[strings.ToLower(s)]
	if !ok {
		return 0, fmt.Errorf("snoop: unknown parameter context %q", s)
	}
	return c, nil
}

// String returns the lower-case context name.
func (c ParamContext) String() string {
	for n, v := range contextNames {
		if v == c {
			return n
		}
	}
	return fmt.Sprintf("ParamContext(%d)", int(c))
}

// Occurrence is one (composite) event occurrence: the interval it spans in
// the stream, its variable bindings, and the primitive constituents.
type Occurrence struct {
	Start, End         uint64
	StartTime, EndTime time.Time
	Bindings           bindings.Tuple
	Constituents       []events.Event
}

func (o Occurrence) String() string {
	return fmt.Sprintf("[%d,%d]%s", o.Start, o.End, o.Bindings)
}

// merge combines two occurrences into one spanning both; the bindings must
// already be known compatible.
func merge(a, b Occurrence) Occurrence {
	out := Occurrence{
		Start:     a.Start,
		StartTime: a.StartTime,
		End:       a.End,
		EndTime:   a.EndTime,
		Bindings:  a.Bindings.Merge(b.Bindings),
	}
	if b.Start < a.Start {
		out.Start, out.StartTime = b.Start, b.StartTime
	}
	if b.End > a.End {
		out.End, out.EndTime = b.End, b.EndTime
	}
	out.Constituents = append(append([]events.Event{}, a.Constituents...), b.Constituents...)
	return out
}

// --- expression AST ----------------------------------------------------------------

// Expr is a composite event expression.
type Expr interface {
	// node builds the detector node for this expression.
	node(d *Detector) node
	// String renders the expression in algebra syntax.
	String() string
}

// Atomic matches primitive events against an atomic event pattern.
type Atomic struct{ Pattern *events.Pattern }

// Or is disjunction: E1 ∨ E2 occurs when either occurs.
type Or struct{ L, R Expr }

// And is conjunction: E1 ∧ E2 occurs when both have occurred, in any order.
type And struct{ L, R Expr }

// Seq is sequence: E1 ; E2 occurs when E2 starts after E1 has ended.
type Seq struct{ L, R Expr }

// Any occurs when M of the child expressions have occurred (each child
// counted once).
type Any struct {
	M        int
	Children []Expr
}

// Not is negation: Not(Guarded)[Begin, End] occurs at an End occurrence
// following a Begin occurrence with no compatible Guarded occurrence
// strictly inside the interval.
type Not struct{ Begin, Guarded, End Expr }

// Aperiodic is A(Begin, Mid, End): every Mid occurrence inside an open
// [Begin, End) window is signalled.
type Aperiodic struct{ Begin, Mid, End Expr }

// AperiodicStar is A*(Begin, Mid, End), the cumulative variant of the
// aperiodic operator in [CKAK94]: Mid occurrences inside an open
// [Begin, End) window are accumulated silently and signalled as ONE
// occurrence when the window's terminator arrives (windows with no Mid
// occurrence signal nothing).
type AperiodicStar struct{ Begin, Mid, End Expr }

// Periodic is P(Begin, Interval, End): after Begin, an occurrence is
// signalled every Interval until End. Time advances with the timestamps of
// fed events (and explicit Detector.Advance calls).
type Periodic struct {
	Begin    Expr
	Interval time.Duration
	End      Expr
}

func (e *Atomic) String() string { return e.Pattern.Name().String() }
func (e *Or) String() string     { return "(" + e.L.String() + " ∨ " + e.R.String() + ")" }
func (e *And) String() string    { return "(" + e.L.String() + " ∧ " + e.R.String() + ")" }
func (e *Seq) String() string    { return "(" + e.L.String() + " ; " + e.R.String() + ")" }
func (e *Any) String() string {
	parts := make([]string, len(e.Children))
	for i, c := range e.Children {
		parts[i] = c.String()
	}
	return fmt.Sprintf("ANY(%d, %s)", e.M, strings.Join(parts, ", "))
}
func (e *Not) String() string {
	return fmt.Sprintf("NOT(%s)[%s, %s]", e.Guarded.String(), e.Begin.String(), e.End.String())
}
func (e *Aperiodic) String() string {
	return fmt.Sprintf("A(%s, %s, %s)", e.Begin.String(), e.Mid.String(), e.End.String())
}
func (e *AperiodicStar) String() string {
	return fmt.Sprintf("A*(%s, %s, %s)", e.Begin.String(), e.Mid.String(), e.End.String())
}
func (e *Periodic) String() string {
	return fmt.Sprintf("P(%s, %s, %s)", e.Begin.String(), e.Interval, e.End.String())
}

// Validate checks structural well-formedness of an expression.
func Validate(e Expr) error {
	switch x := e.(type) {
	case *Atomic:
		if x.Pattern == nil {
			return fmt.Errorf("snoop: atomic expression without pattern")
		}
		return nil
	case *Or:
		return firstErr(Validate(x.L), Validate(x.R))
	case *And:
		return firstErr(Validate(x.L), Validate(x.R))
	case *Seq:
		return firstErr(Validate(x.L), Validate(x.R))
	case *Any:
		if x.M < 1 || x.M > len(x.Children) {
			return fmt.Errorf("snoop: ANY(%d) over %d children", x.M, len(x.Children))
		}
		for _, c := range x.Children {
			if err := Validate(c); err != nil {
				return err
			}
		}
		return nil
	case *Not:
		return firstErr(Validate(x.Begin), Validate(x.Guarded), Validate(x.End))
	case *Aperiodic:
		return firstErr(Validate(x.Begin), Validate(x.Mid), Validate(x.End))
	case *AperiodicStar:
		return firstErr(Validate(x.Begin), Validate(x.Mid), Validate(x.End))
	case *Periodic:
		if x.Interval <= 0 {
			return fmt.Errorf("snoop: periodic interval must be positive")
		}
		return firstErr(Validate(x.Begin), Validate(x.End))
	default:
		return fmt.Errorf("snoop: unknown expression %T", e)
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- detector ----------------------------------------------------------------------

// Detector evaluates one composite event expression against a stream of
// primitive events. Feed it events in stream order; detected composite
// occurrences are delivered synchronously to the sink. Not safe for
// concurrent use; wrap with a mutex or feed from one goroutine (the
// services layer does the former).
type Detector struct {
	root      node
	ctx       ParamContext
	sink      func(Occurrence)
	leaves    []*atomicNode
	clock     time.Time
	periodics []*periodicNode
	fed       *obs.Counter // snoop_events_total
	fired     *obs.Counter // snoop_occurrences_total
}

// NewDetector compiles the expression into a detector graph.
func NewDetector(e Expr, ctx ParamContext, sink func(Occurrence)) (*Detector, error) {
	if err := Validate(e); err != nil {
		return nil, err
	}
	d := &Detector{ctx: ctx, sink: sink}
	d.root = e.node(d)
	d.root.setParent(func(occs []Occurrence) {
		for _, o := range occs {
			d.fired.Inc()
			d.sink(o)
		}
	})
	return d, nil
}

// SetObs counts fed events (snoop_events_total) and detected composite
// occurrences (snoop_occurrences_total) on the hub's registry. Counters
// are shared by every detector instrumented with the same hub.
func (d *Detector) SetObs(h *obs.Hub) {
	r := h.Metrics()
	d.fed = r.Counter("snoop_events_total", "Primitive events fed to SNOOP detectors.")
	d.fired = r.Counter("snoop_occurrences_total", "Composite event occurrences detected by SNOOP detectors.")
}

// Feed processes one primitive event occurrence.
func (d *Detector) Feed(ev events.Event) {
	d.fed.Inc()
	if ev.Time.After(d.clock) {
		d.clock = ev.Time
	}
	// Fire periodic timers that elapsed strictly before this event.
	for _, p := range d.periodics {
		p.advance(d.clock, ev.Seq)
	}
	for _, leaf := range d.leaves {
		leaf.feed(ev)
	}
}

// Advance moves the detector clock forward (for Periodic expressions)
// without feeding an event; seq is the stream position the emitted
// occurrences are attributed to.
func (d *Detector) Advance(now time.Time, seq uint64) {
	if now.After(d.clock) {
		d.clock = now
	}
	for _, p := range d.periodics {
		p.advance(d.clock, seq)
	}
}

// node is one detector-graph node.
type node interface {
	setParent(emit func([]Occurrence))
}

// --- leaf -----------------------------------------------------------------------

type atomicNode struct {
	pattern *events.Pattern
	emit    func([]Occurrence)
}

func (e *Atomic) node(d *Detector) node {
	n := &atomicNode{pattern: e.Pattern}
	d.leaves = append(d.leaves, n)
	return n
}

func (n *atomicNode) setParent(emit func([]Occurrence)) { n.emit = emit }

func (n *atomicNode) feed(ev events.Event) {
	ts := n.pattern.Match(ev)
	if len(ts) == 0 {
		return
	}
	occs := make([]Occurrence, len(ts))
	for i, t := range ts {
		occs[i] = Occurrence{
			Start: ev.Seq, End: ev.Seq,
			StartTime: ev.Time, EndTime: ev.Time,
			Bindings:     t,
			Constituents: []events.Event{ev},
		}
	}
	n.emit(occs)
}

// --- or ------------------------------------------------------------------------

type orNode struct{ emit func([]Occurrence) }

func (e *Or) node(d *Detector) node {
	n := &orNode{}
	l := e.L.node(d)
	r := e.R.node(d)
	pass := func(occs []Occurrence) { n.emit(occs) }
	l.setParent(pass)
	r.setParent(pass)
	return n
}

func (n *orNode) setParent(emit func([]Occurrence)) { n.emit = emit }

// --- binary initiator/terminator pairing (Seq, And) --------------------------------

// pairStore keeps initiator occurrences under a parameter context.
type pairStore struct {
	ctx  ParamContext
	occs []Occurrence
}

func (s *pairStore) add(o Occurrence) {
	if s.ctx == Recent {
		s.occs = s.occs[:0]
	}
	s.occs = append(s.occs, o)
}

// pair combines a terminator occurrence with stored initiators according to
// the context, returning the emitted occurrences. ok filters admissible
// pairs (ordering for Seq, binding compatibility everywhere).
func (s *pairStore) pair(term Occurrence, ok func(init Occurrence) bool) []Occurrence {
	var out []Occurrence
	switch s.ctx {
	case Unrestricted, Recent:
		for _, init := range s.occs {
			if ok(init) {
				out = append(out, merge(init, term))
			}
		}
	case Chronicle:
		for i, init := range s.occs {
			if ok(init) {
				out = append(out, merge(init, term))
				s.occs = append(s.occs[:i], s.occs[i+1:]...)
				break
			}
		}
	case Continuous:
		var rest []Occurrence
		for _, init := range s.occs {
			if ok(init) {
				out = append(out, merge(init, term))
			} else {
				rest = append(rest, init)
			}
		}
		s.occs = rest
	case Cumulative:
		acc := term
		matched := false
		var rest []Occurrence
		for _, init := range s.occs {
			if ok(init) && init.Bindings.Compatible(acc.Bindings) {
				acc = merge(init, acc)
				matched = true
			} else {
				rest = append(rest, init)
			}
		}
		if matched {
			out = append(out, acc)
			s.occs = rest
		}
	}
	return out
}

type seqNode struct {
	emit  func([]Occurrence)
	store pairStore
}

func (e *Seq) node(d *Detector) node {
	n := &seqNode{store: pairStore{ctx: d.ctx}}
	l := e.L.node(d)
	r := e.R.node(d)
	l.setParent(func(occs []Occurrence) {
		for _, o := range occs {
			n.store.add(o)
		}
	})
	r.setParent(func(occs []Occurrence) {
		var out []Occurrence
		for _, term := range occs {
			out = append(out, n.store.pair(term, func(init Occurrence) bool {
				return init.End < term.Start && init.Bindings.Compatible(term.Bindings)
			})...)
		}
		if len(out) > 0 {
			n.emit(out)
		}
	})
	return n
}

func (n *seqNode) setParent(emit func([]Occurrence)) { n.emit = emit }

type andNode struct {
	emit func([]Occurrence)
	l, r pairStore
}

func (e *And) node(d *Detector) node {
	n := &andNode{l: pairStore{ctx: d.ctx}, r: pairStore{ctx: d.ctx}}
	l := e.L.node(d)
	r := e.R.node(d)
	l.setParent(func(occs []Occurrence) {
		var out []Occurrence
		for _, o := range occs {
			// Pair with stored right occurrences; also store as initiator.
			out = append(out, n.r.pair(o, func(other Occurrence) bool {
				return other.Bindings.Compatible(o.Bindings)
			})...)
			n.l.add(o)
		}
		if len(out) > 0 {
			n.emit(out)
		}
	})
	r.setParent(func(occs []Occurrence) {
		var out []Occurrence
		for _, o := range occs {
			out = append(out, n.l.pair(o, func(other Occurrence) bool {
				return other.Bindings.Compatible(o.Bindings)
			})...)
			n.r.add(o)
		}
		if len(out) > 0 {
			n.emit(out)
		}
	})
	return n
}

func (n *andNode) setParent(emit func([]Occurrence)) { n.emit = emit }

// --- any ----------------------------------------------------------------------

type anyNode struct {
	emit   func([]Occurrence)
	m      int
	stores []pairStore
}

func (e *Any) node(d *Detector) node {
	n := &anyNode{m: e.M, stores: make([]pairStore, len(e.Children))}
	for i := range n.stores {
		n.stores[i].ctx = d.ctx
	}
	for i, c := range e.Children {
		idx := i
		cn := c.node(d)
		cn.setParent(func(occs []Occurrence) {
			var out []Occurrence
			for _, o := range occs {
				out = append(out, n.combine(idx, o)...)
				n.stores[idx].add(o)
			}
			if len(out) > 0 {
				n.emit(out)
			}
		})
	}
	return n
}

func (n *anyNode) setParent(emit func([]Occurrence)) { n.emit = emit }

// combine builds occurrences using the new occurrence o from child idx plus
// m-1 stored occurrences from distinct other children (most recent
// compatible occurrence per child).
func (n *anyNode) combine(idx int, o Occurrence) []Occurrence {
	if n.m == 1 {
		return []Occurrence{o}
	}
	// Candidate children ordered by recency of their latest occurrence.
	type cand struct {
		child int
		occ   Occurrence
	}
	var cands []cand
	for i := range n.stores {
		if i == idx {
			continue
		}
		for j := len(n.stores[i].occs) - 1; j >= 0; j-- {
			if n.stores[i].occs[j].Bindings.Compatible(o.Bindings) {
				cands = append(cands, cand{i, n.stores[i].occs[j]})
				break
			}
		}
	}
	if len(cands) < n.m-1 {
		return nil
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].occ.End > cands[b].occ.End })
	acc := o
	for i := 0; i < n.m-1; i++ {
		if !cands[i].occ.Bindings.Compatible(acc.Bindings) {
			return nil
		}
		acc = merge(acc, cands[i].occ)
	}
	return []Occurrence{acc}
}

// --- not ---------------------------------------------------------------------

type notNode struct {
	emit    func([]Occurrence)
	inits   pairStore
	guarded []Occurrence
}

func (e *Not) node(d *Detector) node {
	n := &notNode{inits: pairStore{ctx: d.ctx}}
	b := e.Begin.node(d)
	g := e.Guarded.node(d)
	t := e.End.node(d)
	b.setParent(func(occs []Occurrence) {
		for _, o := range occs {
			n.inits.add(o)
		}
	})
	g.setParent(func(occs []Occurrence) {
		n.guarded = append(n.guarded, occs...)
	})
	t.setParent(func(occs []Occurrence) {
		var out []Occurrence
		for _, term := range occs {
			out = append(out, n.inits.pair(term, func(init Occurrence) bool {
				if init.End >= term.Start || !init.Bindings.Compatible(term.Bindings) {
					return false
				}
				joined := init.Bindings.Merge(term.Bindings)
				for _, gu := range n.guarded {
					if gu.Start > init.End && gu.End < term.Start && gu.Bindings.Compatible(joined) {
						return false
					}
				}
				return true
			})...)
		}
		if len(out) > 0 {
			n.emit(out)
		}
	})
	return n
}

func (n *notNode) setParent(emit func([]Occurrence)) { n.emit = emit }

// --- aperiodic ------------------------------------------------------------------

type aperiodicNode struct {
	emit func([]Occurrence)
	open pairStore
}

func (e *Aperiodic) node(d *Detector) node {
	n := &aperiodicNode{open: pairStore{ctx: d.ctx}}
	b := e.Begin.node(d)
	m := e.Mid.node(d)
	t := e.End.node(d)
	b.setParent(func(occs []Occurrence) {
		for _, o := range occs {
			n.open.add(o)
		}
	})
	m.setParent(func(occs []Occurrence) {
		var out []Occurrence
		for _, mid := range occs {
			// Signal mid inside every open window; windows stay open.
			for _, init := range n.open.occs {
				if init.End < mid.Start && init.Bindings.Compatible(mid.Bindings) {
					out = append(out, merge(init, mid))
				}
			}
		}
		if len(out) > 0 {
			n.emit(out)
		}
	})
	t.setParent(func(occs []Occurrence) {
		for _, term := range occs {
			// Terminators close windows per context; nothing is emitted.
			n.open.pair(term, func(init Occurrence) bool {
				return init.End < term.Start && init.Bindings.Compatible(term.Bindings)
			})
			if n.open.ctx == Unrestricted || n.open.ctx == Recent {
				// pair() does not consume in these contexts; drop closed
				// windows explicitly.
				var rest []Occurrence
				for _, init := range n.open.occs {
					if !(init.End < term.Start && init.Bindings.Compatible(term.Bindings)) {
						rest = append(rest, init)
					}
				}
				n.open.occs = rest
			}
		}
	})
	return n
}

func (n *aperiodicNode) setParent(emit func([]Occurrence)) { n.emit = emit }

// --- aperiodic* (cumulative) -----------------------------------------------------

type aperiodicStarNode struct {
	emit    func([]Occurrence)
	windows []starWindow
	ctx     ParamContext
}

type starWindow struct {
	init Occurrence
	mids []Occurrence
}

func (e *AperiodicStar) node(d *Detector) node {
	n := &aperiodicStarNode{ctx: d.ctx}
	b := e.Begin.node(d)
	m := e.Mid.node(d)
	t := e.End.node(d)
	b.setParent(func(occs []Occurrence) {
		for _, o := range occs {
			if n.ctx == Recent {
				n.windows = n.windows[:0]
			}
			n.windows = append(n.windows, starWindow{init: o})
		}
	})
	m.setParent(func(occs []Occurrence) {
		for _, mid := range occs {
			for i := range n.windows {
				w := &n.windows[i]
				if w.init.End < mid.Start && w.init.Bindings.Compatible(mid.Bindings) {
					w.mids = append(w.mids, mid)
				}
			}
		}
	})
	t.setParent(func(occs []Occurrence) {
		var out []Occurrence
		for _, term := range occs {
			var rest []starWindow
			for _, w := range n.windows {
				if !(w.init.End < term.Start && w.init.Bindings.Compatible(term.Bindings)) {
					rest = append(rest, w)
					continue
				}
				// Accumulate the binding-compatible mids into one
				// occurrence; windows with no mids signal nothing.
				if len(w.mids) > 0 {
					acc := merge(w.init, term)
					for _, mid := range w.mids {
						if mid.Bindings.Compatible(acc.Bindings) {
							acc = merge(acc, mid)
						}
					}
					out = append(out, acc)
				}
			}
			n.windows = rest
		}
		if len(out) > 0 {
			n.emit(out)
		}
	})
	return n
}

func (n *aperiodicStarNode) setParent(emit func([]Occurrence)) { n.emit = emit }

// --- periodic -------------------------------------------------------------------

type periodicNode struct {
	emit     func([]Occurrence)
	interval time.Duration
	// windows holds open periodic windows: initiator occurrence plus the
	// next due time.
	windows []periodicWindow
}

type periodicWindow struct {
	init Occurrence
	due  time.Time
}

func (e *Periodic) node(d *Detector) node {
	n := &periodicNode{interval: e.Interval}
	d.periodics = append(d.periodics, n)
	b := e.Begin.node(d)
	t := e.End.node(d)
	b.setParent(func(occs []Occurrence) {
		for _, o := range occs {
			n.windows = append(n.windows, periodicWindow{init: o, due: o.EndTime.Add(n.interval)})
		}
	})
	t.setParent(func(occs []Occurrence) {
		for _, term := range occs {
			var rest []periodicWindow
			for _, w := range n.windows {
				if !(w.init.End < term.Start && w.init.Bindings.Compatible(term.Bindings)) {
					rest = append(rest, w)
				}
			}
			n.windows = rest
		}
	})
	return n
}

func (n *periodicNode) setParent(emit func([]Occurrence)) { n.emit = emit }

// advance emits period occurrences due up to now.
func (n *periodicNode) advance(now time.Time, seq uint64) {
	var out []Occurrence
	for i := range n.windows {
		for !n.windows[i].due.After(now) {
			o := n.windows[i].init
			out = append(out, Occurrence{
				Start: o.Start, End: seq,
				StartTime: o.StartTime, EndTime: n.windows[i].due,
				Bindings:     o.Bindings.Clone(),
				Constituents: o.Constituents,
			})
			n.windows[i].due = n.windows[i].due.Add(n.interval)
		}
	}
	if len(out) > 0 && n.emit != nil {
		n.emit(out)
	}
}
