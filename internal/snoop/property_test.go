package snoop

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/xmltree"
)

// randomStream builds a deterministic pseudo-random stream of a/b/c events
// with small key alphabets.
func randomStream(seed int64, n int) []events.Event {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c"}
	out := make([]events.Event, n)
	for i := 0; i < n; i++ {
		e := xmltree.NewElement("", names[rng.Intn(len(names))])
		e.SetAttr("", "k", string(rune('0'+rng.Intn(3))))
		out[i] = events.Event{Payload: e, Seq: uint64(i + 1), Time: time.Unix(int64(i), 0)}
	}
	return out
}

func feedAll(t *testing.T, e Expr, ctx ParamContext, stream []events.Event) []Occurrence {
	t.Helper()
	var got []Occurrence
	d, err := NewDetector(e, ctx, func(o Occurrence) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range stream {
		d.Feed(ev)
	}
	return got
}

// Property: every Seq occurrence is properly ordered and its bindings are
// internally consistent (the join variable agrees across constituents).
func TestPropertySeqOrderingInvariant(t *testing.T) {
	e := &Seq{
		L: &Atomic{Pattern: events.MustPattern(`<a k="$K"/>`)},
		R: &Atomic{Pattern: events.MustPattern(`<b k="$K"/>`)},
	}
	for seed := int64(0); seed < 20; seed++ {
		for _, ctx := range []ParamContext{Unrestricted, Recent, Chronicle, Continuous, Cumulative} {
			for _, o := range feedAll(t, e, ctx, randomStream(seed, 200)) {
				if o.Start > o.End {
					t.Fatalf("seed %d ctx %v: inverted interval %v", seed, ctx, o)
				}
				if len(o.Constituents) < 2 {
					t.Fatalf("seed %d ctx %v: too few constituents %v", seed, ctx, o)
				}
				k := o.Bindings["K"]
				for _, c := range o.Constituents {
					if got := c.Payload.AttrValue("", "k"); got != k.AsString() {
						t.Fatalf("seed %d ctx %v: constituent key %q != bound %q", seed, ctx, got, k.AsString())
					}
				}
			}
		}
	}
}

// Property: Recent never yields more occurrences than Unrestricted, and
// Chronicle never more than Unrestricted (contexts restrict pairing).
func TestPropertyContextsRestrict(t *testing.T) {
	e := &Seq{
		L: &Atomic{Pattern: events.MustPattern(`<a k="$K"/>`)},
		R: &Atomic{Pattern: events.MustPattern(`<b k="$K"/>`)},
	}
	for seed := int64(0); seed < 20; seed++ {
		stream := randomStream(seed, 150)
		unrestricted := len(feedAll(t, e, Unrestricted, stream))
		for _, ctx := range []ParamContext{Recent, Chronicle, Continuous} {
			if got := len(feedAll(t, e, ctx, stream)); got > unrestricted {
				t.Fatalf("seed %d: %v yields %d > unrestricted %d", seed, ctx, got, unrestricted)
			}
		}
	}
}

// Property: Or(A, B) occurrence count equals count(A) + count(B) for
// atomic children (no state, no context interaction).
func TestPropertyOrIsUnion(t *testing.T) {
	a := &Atomic{Pattern: events.MustPattern(`<a/>`)}
	b := &Atomic{Pattern: events.MustPattern(`<b/>`)}
	or := &Or{a, b}
	for seed := int64(0); seed < 20; seed++ {
		stream := randomStream(seed, 100)
		na := len(feedAll(t, a, Unrestricted, stream))
		nb := len(feedAll(t, b, Unrestricted, stream))
		nor := len(feedAll(t, or, Unrestricted, stream))
		if nor != na+nb {
			t.Fatalf("seed %d: or=%d, a+b=%d", seed, nor, na+nb)
		}
	}
}

// Property: in Chronicle context each initiator occurrence is consumed at
// most once — the number of Seq occurrences is at most min(#a, #b).
func TestPropertyChronicleConsumption(t *testing.T) {
	e := &Seq{
		L: &Atomic{Pattern: events.MustPattern(`<a/>`)},
		R: &Atomic{Pattern: events.MustPattern(`<b/>`)},
	}
	for seed := int64(0); seed < 20; seed++ {
		stream := randomStream(seed, 100)
		na, nb := 0, 0
		for _, ev := range stream {
			switch ev.Payload.Name.Local {
			case "a":
				na++
			case "b":
				nb++
			}
		}
		limit := na
		if nb < limit {
			limit = nb
		}
		if got := len(feedAll(t, e, Chronicle, stream)); got > limit {
			t.Fatalf("seed %d: chronicle seq = %d > min(%d,%d)", seed, got, na, nb)
		}
	}
}

// Property: Not never fires when the guarded event always occurs between
// initiator and terminator.
func TestPropertyNotSuppression(t *testing.T) {
	e := &Not{
		Begin:   &Atomic{Pattern: events.MustPattern(`<a/>`)},
		Guarded: &Atomic{Pattern: events.MustPattern(`<g/>`)},
		End:     &Atomic{Pattern: events.MustPattern(`<b/>`)},
	}
	// Stream: a g b a g b … — guard always present.
	var stream []events.Event
	names := []string{"a", "g", "b"}
	for i := 0; i < 90; i++ {
		el := xmltree.NewElement("", names[i%3])
		stream = append(stream, events.Event{Payload: el, Seq: uint64(i + 1), Time: time.Unix(int64(i), 0)})
	}
	for _, ctx := range []ParamContext{Unrestricted, Recent, Chronicle} {
		if got := feedAll(t, e, ctx, stream); len(got) != 0 {
			t.Fatalf("ctx %v: suppressed NOT fired %d times", ctx, len(got))
		}
	}
}
