package snoop

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/events"
	"repro/internal/xmltree"
)

// NS is the namespace URI of the SNOOP event-language markup; a rule's
// event component using this namespace is dispatched to the SNOOP detection
// service.
const NS = "http://www.semwebtech.org/languages/2006/snoop"

// ParseXML builds a composite event expression from its XML markup:
//
//	<snoop:seq xmlns:snoop="…/snoop">
//	  <snoop:event><travel:booking person="$P"/></snoop:event>
//	  <snoop:event><travel:cancellation person="$P"/></snoop:event>
//	</snoop:seq>
//
// Operators: event (atomic pattern), or, and, seq (n-ary, folded left),
// any (attribute m), not (children: begin, guarded, end), aperiodic
// (children: begin, mid, end), periodic (attribute interval, children:
// begin, end).
func ParseXML(n *xmltree.Node) (Expr, error) {
	n = n.Root()
	if n == nil {
		return nil, fmt.Errorf("snoop: empty event expression")
	}
	if n.Name.Space != NS {
		return nil, fmt.Errorf("snoop: expected an element in namespace %s, got %s", NS, n.Name)
	}
	switch n.Name.Local {
	case "event":
		kids := n.ChildElements()
		if len(kids) != 1 {
			return nil, fmt.Errorf("snoop: <event> must contain exactly one pattern element, has %d", len(kids))
		}
		p, err := events.NewPattern(kids[0])
		if err != nil {
			return nil, err
		}
		return &Atomic{Pattern: p}, nil
	case "or", "and", "seq":
		kids, err := childExprs(n, 2, -1)
		if err != nil {
			return nil, err
		}
		return foldBinary(n.Name.Local, kids), nil
	case "any":
		mStr := n.AttrValue("", "m")
		m, err := strconv.Atoi(mStr)
		if err != nil {
			return nil, fmt.Errorf("snoop: <any> needs an integer m attribute, got %q", mStr)
		}
		kids, err := childExprs(n, 1, -1)
		if err != nil {
			return nil, err
		}
		return &Any{M: m, Children: kids}, nil
	case "not":
		kids, err := childExprs(n, 3, 3)
		if err != nil {
			return nil, err
		}
		return &Not{Begin: kids[0], Guarded: kids[1], End: kids[2]}, nil
	case "aperiodic":
		kids, err := childExprs(n, 3, 3)
		if err != nil {
			return nil, err
		}
		return &Aperiodic{Begin: kids[0], Mid: kids[1], End: kids[2]}, nil
	case "aperiodic-star":
		kids, err := childExprs(n, 3, 3)
		if err != nil {
			return nil, err
		}
		return &AperiodicStar{Begin: kids[0], Mid: kids[1], End: kids[2]}, nil
	case "periodic":
		iv, err := time.ParseDuration(n.AttrValue("", "interval"))
		if err != nil {
			return nil, fmt.Errorf("snoop: <periodic> needs a Go duration interval attribute: %w", err)
		}
		kids, err := childExprs(n, 2, 2)
		if err != nil {
			return nil, err
		}
		return &Periodic{Begin: kids[0], Interval: iv, End: kids[1]}, nil
	default:
		return nil, fmt.Errorf("snoop: unknown operator <%s>", n.Name.Local)
	}
}

func childExprs(n *xmltree.Node, min, max int) ([]Expr, error) {
	var out []Expr
	for _, c := range n.ChildElements() {
		e, err := ParseXML(c)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if len(out) < min || (max >= 0 && len(out) > max) {
		return nil, fmt.Errorf("snoop: <%s> has %d operands", n.Name.Local, len(out))
	}
	return out, nil
}

func foldBinary(op string, kids []Expr) Expr {
	acc := kids[0]
	for _, k := range kids[1:] {
		switch op {
		case "or":
			acc = &Or{acc, k}
		case "and":
			acc = &And{acc, k}
		default:
			acc = &Seq{acc, k}
		}
	}
	return acc
}
