// Package xq implements an XQuery-lite interpreter: FLWOR expressions
// (for/let/where/order by/return), direct element constructors with enclosed
// expressions, if/then/else, parenthesized sequences, and full XPath-subset
// path and operator expressions (delegated to internal/xpath), plus doc()
// for addressing named documents.
//
// In the reproduction it stands in for the Saxon XQuery processor the paper
// wraps as a framework-aware query service (Section 4.3): the engine-visible
// contract — "expression + input variable bindings → answers" — is identical.
// Coverage is the pragmatic core of XQuery 1.0; known deviations:
//   - only direct (not computed) constructors;
//   - xq-level functions (distinct-values, string-join, exists, empty) are
//     recognized at expression head position, not deep inside path steps;
//   - boundary whitespace in constructors is always stripped.
package xq

import (
	"fmt"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Item is one item of an XQuery sequence: *xmltree.Node, string, float64 or
// bool.
type Item = any

// Sequence is an ordered XQuery value.
type Sequence []Item

// Context supplies documents, variables and namespaces for evaluation.
type Context struct {
	// Docs resolves doc('uri') calls. May be nil (doc() then errors).
	Docs func(uri string) (*xmltree.Node, error)
	// Vars are the externally bound variables ($name).
	Vars map[string]Sequence
	// Namespaces maps prefixes usable in path steps and constructor names
	// to namespace URIs.
	Namespaces map[string]string
	// DefaultNS is the namespace unprefixed element name tests match
	// (see xpath.Context.DefaultNS).
	DefaultNS string
	// ContextNode is the initial context node for paths not rooted in a
	// doc() call; may be nil.
	ContextNode *xmltree.Node
}

// Query is a compiled XQuery-lite expression, immutable and safe for
// concurrent evaluation.
type Query struct {
	root qexpr
	src  string
}

// String returns the source text of the query.
func (q *Query) String() string { return q.src }

// Compile parses an XQuery-lite expression.
func Compile(src string) (*Query, error) {
	p := &parser{src: src}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("xq: %q: trailing input at offset %d", src, p.pos)
	}
	return &Query{root: root, src: src}, nil
}

// MustCompile is Compile panicking on error, for static queries.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Eval evaluates the query and returns the result sequence.
func (q *Query) Eval(ctx *Context) (Sequence, error) {
	ev := &evaluator{ctx: ctx, vars: map[string]Sequence{}}
	for k, v := range ctx.Vars {
		ev.vars[k] = v
	}
	return q.root.eval(ev)
}

// EvalString evaluates the query and atomizes the result into one string
// (items joined by a single space), the way functional results are bound to
// rule-level variables when a plain string is wanted.
func (q *Query) EvalString(ctx *Context) (string, error) {
	seq, err := q.Eval(ctx)
	if err != nil {
		return "", err
	}
	return atomizeJoin(seq), nil
}

// ItemString renders one item as a string: the string-value for nodes, the
// XPath rendering for atomics.
func ItemString(it Item) string {
	switch v := it.(type) {
	case *xmltree.Node:
		return v.TextContent()
	case string:
		return v
	case float64:
		return xpath.FormatNumber(v)
	case bool:
		if v {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%v", it)
	}
}

func atomizeJoin(seq Sequence) string {
	out := ""
	for i, it := range seq {
		if i > 0 {
			out += " "
		}
		out += ItemString(it)
	}
	return out
}
