package xq

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// carsXML is the "own cars" document of the paper's running example.
const carsXML = `<owners>
  <owner name="John Doe">
    <car><model>VW Golf</model><year>2003</year></car>
    <car><model>VW Passat</model><year>2005</year></car>
  </owner>
  <owner name="Jane Roe">
    <car><model>Twingo</model><year>2007</year></car>
  </owner>
</owners>`

const classesXML = `<classes>
  <entry model="VW Golf" class="C"/>
  <entry model="VW Passat" class="B"/>
  <entry model="Twingo" class="A"/>
</classes>`

func testCtx(vars map[string]Sequence) *Context {
	docs := map[string]*xmltree.Node{
		"cars.xml":    xmltree.MustParse(carsXML),
		"classes.xml": xmltree.MustParse(classesXML),
	}
	return &Context{
		Docs: func(uri string) (*xmltree.Node, error) {
			d, ok := docs[uri]
			if !ok {
				return nil, fmt.Errorf("no such document %q", uri)
			}
			return d, nil
		},
		Vars: vars,
	}
}

func run(t *testing.T, src string, vars map[string]Sequence) Sequence {
	t.Helper()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	seq, err := q.Eval(testCtx(vars))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return seq
}

func strs(seq Sequence) []string {
	out := make([]string, len(seq))
	for i, it := range seq {
		out[i] = ItemString(it)
	}
	return out
}

func TestPlainXPathDelegation(t *testing.T) {
	seq := run(t, `doc('cars.xml')//car/model`, nil)
	if got := strings.Join(strs(seq), "|"); got != "VW Golf|VW Passat|Twingo" {
		t.Errorf("models = %q", got)
	}
}

func TestPaperOwnCarsQuery(t *testing.T) {
	// Fig. 7: "query the person's cars" with input variable $Person.
	seq := run(t,
		`for $c in doc('cars.xml')//owner[@name=$Person]/car return $c/model/text()`,
		map[string]Sequence{"Person": {"John Doe"}})
	if got := strings.Join(strs(seq), "|"); got != "VW Golf|VW Passat" {
		t.Errorf("own cars = %q", got)
	}
	if len(seq) != 2 {
		t.Fatalf("want 2 results (two tuples after binding), got %d", len(seq))
	}
}

func TestLetAndWhere(t *testing.T) {
	seq := run(t, `
		for $c in doc('cars.xml')//car
		let $y := number($c/year)
		where $y >= 2005
		return $c/model/text()`, nil)
	if got := strings.Join(strs(seq), "|"); got != "VW Passat|Twingo" {
		t.Errorf("recent cars = %q", got)
	}
}

func TestOrderBy(t *testing.T) {
	seq := run(t, `
		for $c in doc('cars.xml')//car
		order by number($c/year) descending
		return $c/model/text()`, nil)
	if got := strings.Join(strs(seq), "|"); got != "Twingo|VW Passat|VW Golf" {
		t.Errorf("ordered = %q", got)
	}
	// String ordering.
	seq = run(t, `
		for $m in doc('cars.xml')//model
		order by $m
		return string($m)`, nil)
	if got := strings.Join(strs(seq), "|"); got != "Twingo|VW Golf|VW Passat" {
		t.Errorf("string ordered = %q", got)
	}
}

func TestMultipleForBindings(t *testing.T) {
	// Cartesian product of two clauses with a where join — the class
	// lookup of Fig. 9 expressed as a join.
	seq := run(t, `
		for $c in doc('cars.xml')//owner[@name='John Doe']/car,
		    $e in doc('classes.xml')//entry
		where $e/@model = $c/model
		return string($e/@class)`, nil)
	if got := strings.Join(strs(seq), "|"); got != "C|B" {
		t.Errorf("classes = %q", got)
	}
}

func TestConstructors(t *testing.T) {
	seq := run(t, `
		for $c in doc('cars.xml')//owner[@name=$P]/car
		return <offer to="{$P}" year="{$c/year}">{$c/model/text()}</offer>`,
		map[string]Sequence{"P": {"Jane Roe"}})
	if len(seq) != 1 {
		t.Fatalf("constructed = %d items", len(seq))
	}
	n, ok := seq[0].(*xmltree.Node)
	if !ok {
		t.Fatalf("item is %T", seq[0])
	}
	if n.Name.Local != "offer" || n.AttrValue("", "to") != "Jane Roe" || n.AttrValue("", "year") != "2007" {
		t.Errorf("element = %s", n)
	}
	if n.TextContent() != "Twingo" {
		t.Errorf("content = %q", n.TextContent())
	}
}

func TestConstructorNamespaces(t *testing.T) {
	seq := run(t, `<log:answers xmlns:log="http://log/"><log:answer n="1"/></log:answers>`, nil)
	n := seq[0].(*xmltree.Node)
	if n.Name.Space != "http://log/" || n.Name.Local != "answers" {
		t.Fatalf("name = %v", n.Name)
	}
	kids := n.ChildElements()
	if len(kids) != 1 || kids[0].Name.Space != "http://log/" {
		t.Fatalf("child = %v", kids)
	}
	// Serialization must be well-formed XML.
	if _, err := xmltree.ParseString(n.String()); err != nil {
		t.Errorf("constructed element does not serialize: %v", err)
	}
}

func TestConstructorDefaultNS(t *testing.T) {
	seq := run(t, `<root xmlns="http://d/"><inner/></root>`, nil)
	n := seq[0].(*xmltree.Node)
	if n.Name.Space != "http://d/" {
		t.Errorf("root ns = %q", n.Name.Space)
	}
}

func TestNestedConstructorWithNestedFLWOR(t *testing.T) {
	seq := run(t, `<report>{
		for $o in doc('cars.xml')//owner
		return <person name="{$o/@name}">{count($o/car)}</person>
	}</report>`, nil)
	n := seq[0].(*xmltree.Node)
	people := n.ChildElementsNamed("", "person")
	if len(people) != 2 {
		t.Fatalf("people = %d", len(people))
	}
	if people[0].AttrValue("", "name") != "John Doe" || people[0].TextContent() != "2" {
		t.Errorf("person[0] = %s", people[0])
	}
}

func TestCurlyBraceEscapes(t *testing.T) {
	seq := run(t, `<t a="{{x}}">{{literal}}</t>`, nil)
	n := seq[0].(*xmltree.Node)
	if n.AttrValue("", "a") != "{x}" {
		t.Errorf("attr = %q", n.AttrValue("", "a"))
	}
	if n.TextContent() != "{literal}" {
		t.Errorf("text = %q", n.TextContent())
	}
}

func TestIfThenElse(t *testing.T) {
	vars := map[string]Sequence{"N": {5.0}}
	seq := run(t, `if ($N > 3) then 'big' else 'small'`, vars)
	if strs(seq)[0] != "big" {
		t.Errorf("if = %v", strs(seq))
	}
	vars["N"] = Sequence{2.0}
	seq = run(t, `if ($N > 3) then 'big' else 'small'`, vars)
	if strs(seq)[0] != "small" {
		t.Errorf("if = %v", strs(seq))
	}
}

func TestSequences(t *testing.T) {
	seq := run(t, `(1, 2, 3)`, nil)
	if got := strings.Join(strs(seq), "|"); got != "1|2|3" {
		t.Errorf("seq = %q", got)
	}
	seq = run(t, `()`, nil)
	if len(seq) != 0 {
		t.Errorf("empty seq = %v", seq)
	}
	seq = run(t, `for $x in (10, 20) return $x + 1`, nil)
	if got := strings.Join(strs(seq), "|"); got != "11|21" {
		t.Errorf("iterated = %q", got)
	}
	// Parenthesized arithmetic must stay XPath.
	seq = run(t, `(1 + 2) * 3`, nil)
	if strs(seq)[0] != "9" {
		t.Errorf("(1+2)*3 = %v", strs(seq))
	}
}

func TestXQFunctions(t *testing.T) {
	if got := strs(run(t, `distinct-values(doc('classes.xml')//entry/@class)`, nil)); strings.Join(got, "|") != "C|B|A" {
		t.Errorf("distinct-values = %v", got)
	}
	if got := strs(run(t, `string-join(('a','b','c'), '-')`, nil)); got[0] != "a-b-c" {
		t.Errorf("string-join = %v", got)
	}
	if got := strs(run(t, `exists(doc('cars.xml')//car)`, nil)); got[0] != "true" {
		t.Errorf("exists = %v", got)
	}
	if got := strs(run(t, `empty(doc('cars.xml')//truck)`, nil)); got[0] != "true" {
		t.Errorf("empty = %v", got)
	}
	if got := strs(run(t, `min((3, 1, 2))`, nil)); got[0] != "1" {
		t.Errorf("min = %v", got)
	}
	if got := strs(run(t, `max((3, 1, 2))`, nil)); got[0] != "3" {
		t.Errorf("max = %v", got)
	}
	if got := strs(run(t, `avg((2, 4))`, nil)); got[0] != "3" {
		t.Errorf("avg = %v", got)
	}
	if got := strs(run(t, `reverse((1, 2, 3))`, nil)); strings.Join(got, "") != "321" {
		t.Errorf("reverse = %v", got)
	}
}

func TestKeywordsAsElementNames(t *testing.T) {
	// 'order', 'return' etc. after '/' are path steps, not keywords.
	ctx := testCtx(nil)
	ctx.Docs = func(string) (*xmltree.Node, error) {
		return xmltree.MustParse(`<po><order id="7"><return>x</return></order></po>`), nil
	}
	q := MustCompile(`doc('po')//order/return/text()`)
	seq, err := q.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || ItemString(seq[0]) != "x" {
		t.Errorf("keyword path = %v", strs(seq))
	}
}

func TestComments(t *testing.T) {
	seq := run(t, `(: pick models :) for $m in doc('cars.xml')//model return string($m)`, nil)
	if len(seq) != 3 {
		t.Errorf("with comment = %v", strs(seq))
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,
		`for $x in`,
		`for $x doc('a') return $x`,
		`let $x = 3 return $x`, // must be :=
		`if (1) then 2`,        // missing else
		`<a>`,                  // unterminated
		`<a></b>`,              // mismatched tags
		`<a b=c/>`,             // unquoted attribute
		`{1}`,                  // bare enclosed expr
		`for $x in (1,2) give $x`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	ctx := testCtx(nil)
	cases := []string{
		`doc('nope.xml')//x`,
		`$Unbound`,
		`min(('a','b'))`,
	}
	for _, src := range cases {
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, err := q.Eval(ctx); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestAtomicsInContentGetSpaceSeparated(t *testing.T) {
	seq := run(t, `<t>{(1, 2, 3)}</t>`, nil)
	n := seq[0].(*xmltree.Node)
	if n.TextContent() != "1 2 3" {
		t.Errorf("content = %q", n.TextContent())
	}
}

func TestVariablesOfAllKinds(t *testing.T) {
	node := xmltree.MustParse(`<v>7</v>`).Root()
	vars := map[string]Sequence{
		"S": {"str"},
		"N": {4.0},
		"B": {true},
		"X": {node},
	}
	if got := strs(run(t, `concat($S, '-', string($N))`, vars)); got[0] != "str-4" {
		t.Errorf("concat = %v", got)
	}
	if got := strs(run(t, `$X/text()`, vars)); got[0] != "7" {
		t.Errorf("node var = %v", got)
	}
	if got := strs(run(t, `if ($B) then 1 else 2`, vars)); got[0] != "1" {
		t.Errorf("bool var = %v", got)
	}
}

func TestEvalStringAtomizes(t *testing.T) {
	q := MustCompile(`for $m in doc('cars.xml')//owner[@name='John Doe']//model return string($m)`)
	s, err := q.EvalString(testCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s != "VW Golf VW Passat" {
		t.Errorf("EvalString = %q", s)
	}
}

func TestConcurrentEval(t *testing.T) {
	q := MustCompile(`for $c in doc('cars.xml')//car where $c/year > 2004 return $c/model/text()`)
	done := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			seq, err := q.Eval(testCtx(nil))
			if err != nil {
				done <- -1
				return
			}
			done <- len(seq)
		}()
	}
	for i := 0; i < 8; i++ {
		if n := <-done; n != 2 {
			t.Fatalf("concurrent eval = %d", n)
		}
	}
}
