package xq

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/xpath"
)

// TestNestedXPathErrorPosition pins the offset translation for errors from
// the nested xpath.Compile of a path span: the reported offset must be
// relative to the original XQuery-lite source, not to the carved-out span.
func TestNestedXPathErrorPosition(t *testing.T) {
	cases := []struct {
		src    string
		marker string // the character the inner compiler trips over
	}{
		// Error inside the `in` clause path expression.
		{`for $c in doc('cars.xml')//car[@] return $c`, "]"},
		// Error in a later clause: the span starts mid-source, so a
		// span-relative offset would point at the wrong character.
		{`for $c in doc('cars.xml')//car where $c/model[@ = 'VW Golf' return $c`, "="},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil {
			t.Fatalf("Compile(%q) succeeded, want error", tc.src)
		}
		wantPos := strings.Index(tc.src, tc.marker)
		want := fmt.Sprintf("offset %d:", wantPos)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Compile(%q):\n  error %q\n  wants absolute %q (the %q at byte %d)",
				tc.src, err, want, tc.marker, wantPos)
		}
		var se *xpath.SyntaxError
		if !errors.As(err, &se) {
			t.Fatalf("Compile(%q): error %q does not unwrap to *xpath.SyntaxError", tc.src, err)
		}
		// The structured error stays span-relative: Pos indexes se.Src.
		if se.Pos < 0 || se.Pos > len(se.Src) {
			t.Errorf("span-relative Pos %d outside span %q", se.Pos, se.Src)
		}
		if !strings.Contains(tc.src, se.Src) {
			t.Errorf("span %q is not a slice of the source %q", se.Src, tc.src)
		}
	}
}
