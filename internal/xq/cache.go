package xq

import "repro/internal/compilecache"

// Lang is the compile-cache language label for XQuery-lite queries
// (compile_seconds{language="xq"}).
const Lang = "xq"

func compileAny(src string) (any, error) {
	q, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return q, nil
}

// CompileCached is Compile memoized through the process-wide compile cache:
// the first call for a source string parses it, later calls from any
// goroutine share the same immutable *Query.
func CompileCached(src string) (*Query, error) {
	v, err := compilecache.Default.Get(Lang, src, compileAny)
	if err != nil {
		return nil, err
	}
	return v.(*Query), nil
}
