package xq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// evaluator carries the dynamic state of one query evaluation.
type evaluator struct {
	ctx  *Context
	vars map[string]Sequence
	// nsScope accumulates xmlns declarations from enclosing constructors.
	nsScope map[string]string
}

func (ev *evaluator) child() *evaluator {
	n := &evaluator{ctx: ev.ctx, vars: make(map[string]Sequence, len(ev.vars)+1), nsScope: ev.nsScope}
	for k, v := range ev.vars {
		n.vars[k] = v
	}
	return n
}

// lookupNS resolves a constructor-name prefix: constructor-local xmlns
// declarations first, then the static context.
func (ev *evaluator) lookupNS(prefix string) (string, bool) {
	if ev.nsScope != nil {
		if u, ok := ev.nsScope[prefix]; ok {
			return u, true
		}
	}
	if ev.ctx.Namespaces != nil {
		if u, ok := ev.ctx.Namespaces[prefix]; ok {
			return u, true
		}
	}
	return "", false
}

// --- sequence ↔ xpath object conversion -------------------------------------------

func seqToXPath(seq Sequence) (xpath.Object, error) {
	if len(seq) == 1 {
		switch v := seq[0].(type) {
		case *xmltree.Node:
			return xpath.NodeSet{v}, nil
		default:
			return v, nil
		}
	}
	ns := make(xpath.NodeSet, 0, len(seq))
	for _, it := range seq {
		n, ok := it.(*xmltree.Node)
		if !ok {
			if len(seq) == 0 {
				break
			}
			return nil, fmt.Errorf("xq: a sequence of multiple atomic values cannot be used inside a path expression")
		}
		ns = append(ns, n)
	}
	return ns, nil
}

func xpathToSeq(o xpath.Object) Sequence {
	switch v := o.(type) {
	case xpath.NodeSet:
		out := make(Sequence, len(v))
		for i, n := range v {
			out[i] = n
		}
		return out
	default:
		return Sequence{v}
	}
}

// effectiveBool implements the XQuery effective boolean value for the
// sequences this interpreter produces.
func effectiveBool(seq Sequence) bool {
	if len(seq) == 0 {
		return false
	}
	if len(seq) == 1 {
		switch v := seq[0].(type) {
		case bool:
			return v
		case string:
			return v != ""
		case float64:
			return v != 0 && v == v // false for NaN
		}
	}
	return true // non-empty node sequence
}

// --- AST evaluation ------------------------------------------------------------

func (e *seqExpr) eval(ev *evaluator) (Sequence, error) {
	var out Sequence
	for _, item := range e.items {
		seq, err := item.eval(ev)
		if err != nil {
			return nil, err
		}
		out = append(out, seq...)
	}
	return out, nil
}

func (e *ifExpr) eval(ev *evaluator) (Sequence, error) {
	cond, err := e.cond.eval(ev)
	if err != nil {
		return nil, err
	}
	if effectiveBool(cond) {
		return e.then.eval(ev)
	}
	return e.els.eval(ev)
}

func (e *xpathExpr) eval(ev *evaluator) (Sequence, error) {
	vars := make(map[string]xpath.Object, len(ev.vars))
	for k, v := range ev.vars {
		o, err := seqToXPath(v)
		if err != nil {
			return nil, fmt.Errorf("xq: variable $%s: %w", k, err)
		}
		vars[k] = o
	}
	node := ev.ctx.ContextNode
	if node == nil {
		node = xmltree.NewDocument()
	}
	xctx := &xpath.Context{
		Node:       node,
		Vars:       vars,
		Namespaces: ev.ctx.Namespaces,
		DefaultNS:  ev.ctx.DefaultNS,
		Functions: map[string]func(*xpath.Context, []xpath.Object) (xpath.Object, error){
			"doc": func(_ *xpath.Context, args []xpath.Object) (xpath.Object, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("xq: doc() takes exactly one argument")
				}
				uri := xpathString(args[0])
				if ev.ctx.Docs == nil {
					return nil, fmt.Errorf("xq: doc(%q): no document resolver configured", uri)
				}
				doc, err := ev.ctx.Docs(uri)
				if err != nil {
					return nil, fmt.Errorf("xq: doc(%q): %w", uri, err)
				}
				return xpath.NodeSet{doc}, nil
			},
		},
	}
	o, err := e.compiled.Eval(xctx)
	if err != nil {
		return nil, err
	}
	return xpathToSeq(o), nil
}

func xpathString(o xpath.Object) string {
	switch v := o.(type) {
	case xpath.NodeSet:
		if len(v) == 0 {
			return ""
		}
		return v[0].TextContent()
	case string:
		return v
	case float64:
		return xpath.FormatNumber(v)
	case bool:
		if v {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// --- FLWOR ----------------------------------------------------------------------

func (e *flworExpr) eval(ev *evaluator) (Sequence, error) {
	// The tuple stream is represented as a slice of evaluators, each with
	// its own variable environment.
	stream := []*evaluator{ev.child()}
	for _, cl := range e.clauses {
		var err error
		stream, err = applyClause(stream, cl)
		if err != nil {
			return nil, err
		}
	}
	var out Sequence
	for _, tupleEv := range stream {
		seq, err := e.ret.eval(tupleEv)
		if err != nil {
			return nil, err
		}
		out = append(out, seq...)
	}
	return out, nil
}

func applyClause(stream []*evaluator, cl clause) ([]*evaluator, error) {
	switch c := cl.(type) {
	case forClause:
		for _, b := range c.bindings {
			var next []*evaluator
			for _, tev := range stream {
				src, err := b.src.eval(tev)
				if err != nil {
					return nil, err
				}
				for idx, item := range src {
					n := tev.child()
					n.vars[b.name] = Sequence{item}
					if b.pos != "" {
						n.vars[b.pos] = Sequence{float64(idx + 1)}
					}
					next = append(next, n)
				}
			}
			stream = next
		}
		return stream, nil
	case letClause:
		for _, b := range c.bindings {
			for _, tev := range stream {
				v, err := b.src.eval(tev)
				if err != nil {
					return nil, err
				}
				tev.vars[b.name] = v
			}
		}
		return stream, nil
	case whereClause:
		var next []*evaluator
		for _, tev := range stream {
			v, err := c.cond.eval(tev)
			if err != nil {
				return nil, err
			}
			if effectiveBool(v) {
				next = append(next, tev)
			}
		}
		return next, nil
	case orderClause:
		type keyed struct {
			ev    *evaluator
			keys  []string
			nums  []float64
			isNum []bool
		}
		rows := make([]keyed, len(stream))
		for i, tev := range stream {
			row := keyed{ev: tev}
			for _, k := range c.keys {
				v, err := k.key.eval(tev)
				if err != nil {
					return nil, err
				}
				s := atomizeJoin(v)
				row.keys = append(row.keys, s)
				if f, ok := parseNum(s); ok {
					row.nums = append(row.nums, f)
					row.isNum = append(row.isNum, true)
				} else {
					row.nums = append(row.nums, 0)
					row.isNum = append(row.isNum, false)
				}
			}
			rows[i] = row
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range c.keys {
				var less, greater bool
				if rows[i].isNum[k] && rows[j].isNum[k] {
					less = rows[i].nums[k] < rows[j].nums[k]
					greater = rows[i].nums[k] > rows[j].nums[k]
				} else {
					less = rows[i].keys[k] < rows[j].keys[k]
					greater = rows[i].keys[k] > rows[j].keys[k]
				}
				if c.keys[k].desc {
					less, greater = greater, less
				}
				if less {
					return true
				}
				if greater {
					return false
				}
			}
			return false
		})
		out := make([]*evaluator, len(rows))
		for i, r := range rows {
			out[i] = r.ev
		}
		return out, nil
	default:
		return nil, fmt.Errorf("xq: unknown clause %T", cl)
	}
}

func parseNum(s string) (float64, bool) {
	var f float64
	var rest string
	n, err := fmt.Sscanf(strings.TrimSpace(s), "%g%s", &f, &rest)
	if err == nil && n == 2 {
		return 0, false
	}
	if n >= 1 {
		return f, true
	}
	return 0, false
}

// --- xq-level functions -------------------------------------------------------------

func (e *xqFuncExpr) eval(ev *evaluator) (Sequence, error) {
	args := make([]Sequence, len(e.args))
	for i, a := range e.args {
		v, err := a.eval(ev)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("xq: %s() takes %d argument(s), got %d", e.name, n, len(args))
		}
		return nil
	}
	switch e.name {
	case "distinct-values":
		if err := need(1); err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out Sequence
		for _, it := range args[0] {
			s := ItemString(it)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return out, nil
	case "string-join":
		if len(args) != 2 && len(args) != 1 {
			return nil, fmt.Errorf("xq: string-join() takes 1 or 2 arguments")
		}
		sep := ""
		if len(args) == 2 {
			sep = atomizeJoin(args[1])
		}
		parts := make([]string, len(args[0]))
		for i, it := range args[0] {
			parts[i] = ItemString(it)
		}
		return Sequence{strings.Join(parts, sep)}, nil
	case "count":
		if err := need(1); err != nil {
			return nil, err
		}
		return Sequence{float64(len(args[0]))}, nil
	case "sum":
		if err := need(1); err != nil {
			return nil, err
		}
		total := 0.0
		for _, it := range args[0] {
			f, ok := parseNum(ItemString(it))
			if !ok {
				return nil, fmt.Errorf("xq: sum(): non-numeric item %q", ItemString(it))
			}
			total += f
		}
		return Sequence{total}, nil
	case "exists":
		if err := need(1); err != nil {
			return nil, err
		}
		return Sequence{len(args[0]) > 0}, nil
	case "empty":
		if err := need(1); err != nil {
			return nil, err
		}
		return Sequence{len(args[0]) == 0}, nil
	case "reverse":
		if err := need(1); err != nil {
			return nil, err
		}
		out := make(Sequence, len(args[0]))
		for i, it := range args[0] {
			out[len(out)-1-i] = it
		}
		return out, nil
	case "min", "max", "avg":
		if err := need(1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return Sequence{}, nil
		}
		var acc float64
		first := true
		for _, it := range args[0] {
			f, ok := parseNum(ItemString(it))
			if !ok {
				return nil, fmt.Errorf("xq: %s(): non-numeric item %q", e.name, ItemString(it))
			}
			switch {
			case first:
				acc = f
				first = false
			case e.name == "min" && f < acc:
				acc = f
			case e.name == "max" && f > acc:
				acc = f
			case e.name == "avg":
				acc += f
			}
		}
		if e.name == "avg" {
			acc /= float64(len(args[0]))
		}
		return Sequence{acc}, nil
	default:
		return nil, fmt.Errorf("xq: unknown function %s()", e.name)
	}
}

// --- constructors ---------------------------------------------------------------

func (e *constructorExpr) eval(ev *evaluator) (Sequence, error) {
	n, err := e.build(ev)
	if err != nil {
		return nil, err
	}
	return Sequence{n}, nil
}

func (e *constructorExpr) build(ev *evaluator) (*xmltree.Node, error) {
	// First pass over attributes: xmlns declarations extend the scope used
	// to resolve this element's own name and its children.
	scope := map[string]string{}
	for k, v := range ev.nsScope {
		scope[k] = v
	}
	inner := &evaluator{ctx: ev.ctx, vars: ev.vars, nsScope: scope}
	type resolvedAttr struct {
		name  xmltree.Name
		value string
		isNS  bool
		nsFor string
	}
	var attrs []resolvedAttr
	for _, a := range e.attrs {
		val, err := evalParts(ev, a.parts)
		if err != nil {
			return nil, err
		}
		switch {
		case a.prefix == "xmlns":
			scope[a.local] = val
			attrs = append(attrs, resolvedAttr{name: xmltree.Name{Space: "xmlns", Local: a.local}, value: val, isNS: true})
		case a.prefix == "" && a.local == "xmlns":
			scope[""] = val
			attrs = append(attrs, resolvedAttr{name: xmltree.Name{Local: "xmlns"}, value: val, isNS: true})
		default:
			attrs = append(attrs, resolvedAttr{value: val, nsFor: a.prefix, name: xmltree.Name{Local: a.local}})
		}
	}
	var space string
	if e.prefix != "" {
		u, ok := inner.lookupNS(e.prefix)
		if !ok {
			return nil, fmt.Errorf("xq: undeclared namespace prefix %q in constructor", e.prefix)
		}
		space = u
	} else if u, ok := scope[""]; ok {
		space = u
	}
	el := xmltree.NewElement(space, e.local)
	for _, a := range attrs {
		if a.isNS {
			el.SetAttr(a.name.Space, a.name.Local, a.value)
			continue
		}
		aSpace := ""
		if a.nsFor != "" {
			u, ok := inner.lookupNS(a.nsFor)
			if !ok {
				return nil, fmt.Errorf("xq: undeclared namespace prefix %q in attribute", a.nsFor)
			}
			aSpace = u
		}
		el.SetAttr(aSpace, a.name.Local, a.value)
	}
	for _, c := range e.content {
		switch {
		case c.child != nil:
			n, err := c.child.build(inner)
			if err != nil {
				return nil, err
			}
			el.Append(n)
		case c.expr != nil:
			seq, err := c.expr.eval(inner)
			if err != nil {
				return nil, err
			}
			prevAtomic := false
			for _, it := range seq {
				if n, ok := it.(*xmltree.Node); ok {
					el.Append(cloneForOutput(n))
					prevAtomic = false
					continue
				}
				s := ItemString(it)
				if prevAtomic {
					s = " " + s
				}
				el.AppendText(s)
				prevAtomic = true
			}
		default:
			el.AppendText(c.text)
		}
	}
	return el, nil
}

// cloneForOutput copies a node into constructed content; attribute nodes
// become text (their value), matching XQuery's treatment of attributes in
// element content well enough for rule queries.
func cloneForOutput(n *xmltree.Node) *xmltree.Node {
	if n.Kind == xmltree.AttrNode {
		return xmltree.NewText(n.Text)
	}
	if n.Kind == xmltree.DocumentNode {
		if r := n.Root(); r != nil {
			return r.Clone()
		}
	}
	return n.Clone()
}

func evalParts(ev *evaluator, parts []part) (string, error) {
	var b strings.Builder
	for _, p := range parts {
		if p.expr == nil {
			b.WriteString(p.text)
			continue
		}
		seq, err := p.expr.eval(ev)
		if err != nil {
			return "", err
		}
		b.WriteString(atomizeJoin(seq))
	}
	return b.String(), nil
}
