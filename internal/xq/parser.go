package xq

import (
	"errors"
	"fmt"
	"strings"
	"unicode"

	"repro/internal/xpath"
)

// qexpr is a node of the XQuery-lite AST.
type qexpr interface {
	eval(ev *evaluator) (Sequence, error)
}

// parser is a character-level recursive-descent parser. Path and operator
// expressions are carved out as maximal XPath spans and compiled with the
// xpath package.
type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("xq: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipWS() {
	for p.pos < len(p.src) {
		if strings.HasPrefix(p.src[p.pos:], "(:") {
			// XQuery comment (: … :), non-nested.
			end := strings.Index(p.src[p.pos+2:], ":)")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 2 + end + 2
			continue
		}
		if unicode.IsSpace(rune(p.src[p.pos])) {
			p.pos++
			continue
		}
		return
	}
}

// peekKeyword reports whether the next token is the given word (followed by
// a non-name character).
func (p *parser) peekKeyword(w string) bool {
	if !strings.HasPrefix(p.src[p.pos:], w) {
		return false
	}
	after := p.pos + len(w)
	if after >= len(p.src) {
		return true
	}
	r := rune(p.src[after])
	return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-'
}

func (p *parser) acceptKeyword(w string) bool {
	p.skipWS()
	if p.peekKeyword(w) {
		p.pos += len(w)
		return true
	}
	return false
}

func (p *parser) expectKeyword(w string) error {
	if !p.acceptKeyword(w) {
		return p.errf("expected %q, found %q", w, snippet(p.src, p.pos))
	}
	return nil
}

func (p *parser) expectByte(c byte) error {
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q, found %q", string(c), snippet(p.src, p.pos))
	}
	p.pos++
	return nil
}

func snippet(s string, pos int) string {
	if pos >= len(s) {
		return "end of input"
	}
	end := pos + 16
	if end > len(s) {
		end = len(s)
	}
	return s[pos:end]
}

// parseExpr := ExprSingle (',' ExprSingle)*
func (p *parser) parseExpr() (qexpr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	items := []qexpr{first}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			e, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			items = append(items, e)
			continue
		}
		break
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &seqExpr{items}, nil
}

func (p *parser) parseExprSingle() (qexpr, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return nil, p.errf("expected an expression")
	}
	switch {
	case p.peekKeyword("for") || p.peekKeyword("let"):
		return p.parseFLWOR()
	case p.peekKeyword("if") && p.nextAfterKeywordIs("if", '('):
		return p.parseIf()
	case p.src[p.pos] == '<' && p.pos+1 < len(p.src) && isNameStart(rune(p.src[p.pos+1])):
		return p.parseConstructor()
	case p.src[p.pos] == '(' && p.parenIsSequence():
		return p.parseParenSequence()
	default:
		if name, ok := p.peekXQFunction(); ok {
			return p.parseXQFunction(name)
		}
		return p.parseXPathSpan()
	}
}

func (p *parser) nextAfterKeywordIs(w string, c byte) bool {
	i := p.pos + len(w)
	for i < len(p.src) && unicode.IsSpace(rune(p.src[i])) {
		i++
	}
	return i < len(p.src) && p.src[i] == c
}

// parenIsSequence decides whether a leading '(' opens an xq sequence —
// it is empty, contains a top-level comma, or immediately opens a
// constructor or FLWOR — rather than an XPath group like (1+2)*3.
func (p *parser) parenIsSequence() bool {
	// Check the first significant content after '('.
	j := p.pos + 1
	for j < len(p.src) && unicode.IsSpace(rune(p.src[j])) {
		j++
	}
	if j < len(p.src) {
		if p.src[j] == ')' {
			return true // empty sequence
		}
		if p.src[j] == '<' && j+1 < len(p.src) && isNameStart(rune(p.src[j+1])) {
			return true // constructor inside parens
		}
		rest := p.src[j:]
		for _, w := range []string{"for", "let", "if"} {
			if strings.HasPrefix(rest, w) {
				after := j + len(w)
				if after >= len(p.src) || !isNameChar(rune(p.src[after])) {
					return true
				}
			}
		}
	}
	depth := 0
	i := p.pos
	for i < len(p.src) {
		c := p.src[i]
		switch c {
		case '\'', '"':
			k := strings.IndexByte(p.src[i+1:], c)
			if k < 0 {
				return false
			}
			i += k + 1
		case '(', '[':
			depth++
		case ')', ']':
			depth--
			if depth == 0 {
				return false
			}
		case ',':
			if depth == 1 {
				return true
			}
		}
		i++
	}
	return false
}

func (p *parser) parseParenSequence() (qexpr, error) {
	if err := p.expectByte('('); err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ')' {
		p.pos++
		return &seqExpr{}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectByte(')'); err != nil {
		return nil, err
	}
	return e, nil
}

// --- FLWOR --------------------------------------------------------------------

type flworExpr struct {
	clauses []clause
	ret     qexpr
}

type clause interface{ isClause() }

type forBinding struct {
	name string
	// pos is the positional variable of "for $x at $pos in …"; empty when
	// absent.
	pos string
	src qexpr
}
type forClause struct{ bindings []forBinding }
type letClause struct{ bindings []forBinding }
type whereClause struct{ cond qexpr }
type orderKey struct {
	key  qexpr
	desc bool
}
type orderClause struct{ keys []orderKey }

func (forClause) isClause()   {}
func (letClause) isClause()   {}
func (whereClause) isClause() {}
func (orderClause) isClause() {}

func (p *parser) parseFLWOR() (qexpr, error) {
	f := &flworExpr{}
	for {
		switch {
		case p.acceptKeyword("for"):
			c := forClause{}
			for {
				b, err := p.parseBinding("in")
				if err != nil {
					return nil, err
				}
				c.bindings = append(c.bindings, b)
				p.skipWS()
				if p.pos < len(p.src) && p.src[p.pos] == ',' {
					p.pos++
					continue
				}
				break
			}
			f.clauses = append(f.clauses, c)
			continue
		case p.acceptKeyword("let"):
			c := letClause{}
			for {
				b, err := p.parseBinding(":=")
				if err != nil {
					return nil, err
				}
				c.bindings = append(c.bindings, b)
				p.skipWS()
				if p.pos < len(p.src) && p.src[p.pos] == ',' {
					p.pos++
					continue
				}
				break
			}
			f.clauses = append(f.clauses, c)
			continue
		case p.acceptKeyword("where"):
			cond, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.clauses = append(f.clauses, whereClause{cond})
			continue
		case p.acceptKeyword("order"):
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			oc := orderClause{}
			for {
				key, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				k := orderKey{key: key}
				if p.acceptKeyword("descending") {
					k.desc = true
				} else {
					p.acceptKeyword("ascending")
				}
				oc.keys = append(oc.keys, k)
				p.skipWS()
				if p.pos < len(p.src) && p.src[p.pos] == ',' {
					p.pos++
					continue
				}
				break
			}
			f.clauses = append(f.clauses, oc)
			continue
		case p.acceptKeyword("return"):
			ret, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.ret = ret
			return f, nil
		default:
			return nil, p.errf("expected for/let/where/order by/return, found %q", snippet(p.src, p.pos))
		}
	}
}

func (p *parser) parseBinding(sep string) (forBinding, error) {
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != '$' {
		return forBinding{}, p.errf("expected $variable, found %q", snippet(p.src, p.pos))
	}
	p.pos++
	name := p.parseName()
	if name == "" {
		return forBinding{}, p.errf("expected a variable name")
	}
	p.skipWS()
	pos := ""
	if sep == ":=" {
		if !strings.HasPrefix(p.src[p.pos:], ":=") {
			return forBinding{}, p.errf("expected := after $%s", name)
		}
		p.pos += 2
	} else {
		if p.acceptKeyword("at") {
			p.skipWS()
			if p.pos >= len(p.src) || p.src[p.pos] != '$' {
				return forBinding{}, p.errf("expected $variable after 'at'")
			}
			p.pos++
			pos = p.parseName()
			if pos == "" {
				return forBinding{}, p.errf("expected a positional variable name")
			}
		}
		if err := p.expectKeyword(sep); err != nil {
			return forBinding{}, err
		}
	}
	src, err := p.parseExprSingle()
	if err != nil {
		return forBinding{}, err
	}
	return forBinding{name: name, pos: pos, src: src}, nil
}

func (p *parser) parseName() string {
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

// --- if/then/else ---------------------------------------------------------------

type ifExpr struct{ cond, then, els qexpr }

func (p *parser) parseIf() (qexpr, error) {
	if err := p.expectKeyword("if"); err != nil {
		return nil, err
	}
	if err := p.expectByte('('); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectByte(')'); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &ifExpr{cond, then, els}, nil
}

// --- sequences -------------------------------------------------------------------

type seqExpr struct{ items []qexpr }

// --- xq-level function calls -------------------------------------------------------

// xqFunctions are functions whose results or arguments need full sequence
// semantics; they are recognized at expression head position.
var xqFunctions = map[string]bool{
	"distinct-values": true,
	"string-join":     true,
	"exists":          true,
	"empty":           true,
	"reverse":         true,
	"min":             true,
	"max":             true,
	"avg":             true,
	"count":           true,
	"sum":             true,
}

type xqFuncExpr struct {
	name string
	args []qexpr
}

// peekXQFunction reports whether an xq-level function call starts here AND
// the call is the whole operand — not followed by an operator or path
// continuation. In the latter case the span goes to XPath, whose core
// library handles count()/sum() inside larger expressions; the xq-level
// versions exist for sequence-typed arguments (nested FLWOR, constructors).
func (p *parser) peekXQFunction() (string, bool) {
	i := p.pos
	start := i
	for i < len(p.src) {
		r := rune(p.src[i])
		if unicode.IsLetter(r) || r == '-' {
			i++
			continue
		}
		break
	}
	name := p.src[start:i]
	if !xqFunctions[name] {
		return "", false
	}
	for i < len(p.src) && unicode.IsSpace(rune(p.src[i])) {
		i++
	}
	if i >= len(p.src) || p.src[i] != '(' {
		return "", false
	}
	// Find the matching close paren (skipping strings), then check the
	// follow set.
	depth := 0
	for ; i < len(p.src); i++ {
		c := p.src[i]
		switch c {
		case '\'', '"':
			j := strings.IndexByte(p.src[i+1:], c)
			if j < 0 {
				return "", false
			}
			i += j + 1
		case '(', '[':
			depth++
		case ')', ']':
			depth--
			if depth == 0 {
				i++
				goto after
			}
		}
	}
	return "", false
after:
	for i < len(p.src) && unicode.IsSpace(rune(p.src[i])) {
		i++
	}
	if i >= len(p.src) {
		return name, true
	}
	switch p.src[i] {
	case ',', ')', '}', ']':
		return name, true
	}
	// Stop keywords may follow (return/where/order/…); operators and path
	// continuations must not.
	rest := p.src[i:]
	for _, w := range stopWords {
		if strings.HasPrefix(rest, w) {
			after := i + len(w)
			if after >= len(p.src) || !isNameChar(rune(p.src[after])) {
				return name, true
			}
		}
	}
	return "", false
}

func (p *parser) parseXQFunction(name string) (qexpr, error) {
	p.pos += len(name)
	if err := p.expectByte('('); err != nil {
		return nil, err
	}
	var args []qexpr
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ')' {
		p.pos++
		return &xqFuncExpr{name, nil}, nil
	}
	for {
		a, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectByte(')'); err != nil {
		return nil, err
	}
	return &xqFuncExpr{name, args}, nil
}

// --- XPath spans ---------------------------------------------------------------

type xpathExpr struct{ compiled *xpath.Expr }

// stopWords terminate an XPath span when they appear as standalone words at
// nesting depth 0 immediately after the end of an operand.
var stopWords = []string{
	"return", "where", "order", "for", "let", "in", "then", "else",
	"ascending", "descending", "satisfies",
}

// endsOperand reports whether the text ends (ignoring trailing spaces) with
// a character that completes an operand, so that a following keyword is a
// clause keyword rather than an element name in a path step.
func endsOperand(s string) bool {
	i := len(s) - 1
	for i >= 0 && unicode.IsSpace(rune(s[i])) {
		i--
	}
	if i < 0 {
		return false
	}
	switch s[i] {
	case '/', '@', ':', '$', '(', '[', ',', '|', '+', '-', '*', '=', '<', '>', '!':
		return false
	}
	return true
}

func (p *parser) parseXPathSpan() (qexpr, error) {
	start := p.pos
	depth := 0
	i := p.pos
scan:
	for i < len(p.src) {
		c := p.src[i]
		switch c {
		case '\'', '"':
			j := strings.IndexByte(p.src[i+1:], c)
			if j < 0 {
				return nil, p.errf("unterminated string literal")
			}
			i += j + 2
			continue
		case '(', '[':
			depth++
		case ')', ']':
			if depth == 0 {
				break scan
			}
			depth--
		case '{', '}':
			if depth == 0 {
				break scan
			}
		case ',':
			if depth == 0 {
				break scan
			}
		default:
			if depth == 0 && (unicode.IsLetter(rune(c))) && endsOperand(p.src[start:i]) {
				rest := p.src[i:]
				for _, w := range stopWords {
					if strings.HasPrefix(rest, w) {
						after := i + len(w)
						if after >= len(p.src) || !isNameChar(rune(p.src[after])) {
							break scan
						}
					}
				}
				// Skip the whole word so we do not stop inside it.
				for i < len(p.src) && isNameChar(rune(p.src[i])) {
					i++
				}
				continue
			}
		}
		i++
	}
	span := strings.TrimSpace(p.src[start:i])
	if span == "" {
		return nil, p.errf("expected an expression, found %q", snippet(p.src, p.pos))
	}
	compiled, err := xpath.Compile(span)
	if err != nil {
		// The inner compiler reports positions relative to the span; translate
		// them into offsets in the original XQuery-lite source, accounting for
		// the leading whitespace TrimSpace removed.
		var se *xpath.SyntaxError
		if errors.As(err, &se) {
			lead := strings.Index(p.src[start:i], span)
			if lead < 0 {
				lead = 0
			}
			return nil, fmt.Errorf("xq: offset %d: in path expression: %w", start+lead+se.Pos, err)
		}
		return nil, fmt.Errorf("xq: in path expression: %w", err)
	}
	p.pos = i
	return &xpathExpr{compiled}, nil
}

func isNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// --- direct element constructors --------------------------------------------------

// attrPart and contentPart alternate literal text with enclosed expressions.
type part struct {
	text string
	expr qexpr // non-nil for enclosed expressions
}

type attrTemplate struct {
	prefix, local string
	parts         []part
}

type constructorExpr struct {
	prefix, local string
	attrs         []attrTemplate
	content       []constructorContent
}

type constructorContent struct {
	text  string           // literal text (non-boundary)
	expr  qexpr            // enclosed expression
	child *constructorExpr // nested element
}

func (p *parser) parseConstructor() (qexpr, error) {
	ce, err := p.parseConstructorInner()
	if err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseConstructorInner() (*constructorExpr, error) {
	if err := p.expectByte('<'); err != nil {
		return nil, err
	}
	prefix, local, err := p.parseQName()
	if err != nil {
		return nil, err
	}
	ce := &constructorExpr{prefix: prefix, local: local}
	// Attributes.
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated constructor <%s", local)
		}
		if strings.HasPrefix(p.src[p.pos:], "/>") {
			p.pos += 2
			return ce, nil
		}
		if p.src[p.pos] == '>' {
			p.pos++
			break
		}
		ap, al, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		if err := p.expectByte('='); err != nil {
			return nil, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
			return nil, p.errf("expected a quoted attribute value")
		}
		quote := p.src[p.pos]
		p.pos++
		parts, err := p.parseTemplateParts(string(quote))
		if err != nil {
			return nil, err
		}
		p.pos++ // closing quote
		ce.attrs = append(ce.attrs, attrTemplate{ap, al, parts})
	}
	// Content.
	var text strings.Builder
	flushText := func(boundaryStrip bool) {
		s := text.String()
		text.Reset()
		if s == "" {
			return
		}
		if boundaryStrip && strings.TrimSpace(s) == "" {
			return
		}
		ce.content = append(ce.content, constructorContent{text: s})
	}
	for {
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated content of <%s>", local)
		}
		c := p.src[p.pos]
		switch {
		case strings.HasPrefix(p.src[p.pos:], "</"):
			flushText(true)
			p.pos += 2
			cp, cl, err := p.parseQName()
			if err != nil {
				return nil, err
			}
			if cp != prefix || cl != local {
				return nil, p.errf("mismatched end tag </%s:%s> for <%s:%s>", cp, cl, prefix, local)
			}
			if err := p.expectByte('>'); err != nil {
				return nil, err
			}
			return ce, nil
		case c == '<':
			if strings.HasPrefix(p.src[p.pos:], "<!--") {
				end := strings.Index(p.src[p.pos:], "-->")
				if end < 0 {
					return nil, p.errf("unterminated comment")
				}
				p.pos += end + 3
				continue
			}
			flushText(true)
			child, err := p.parseConstructorInner()
			if err != nil {
				return nil, err
			}
			ce.content = append(ce.content, constructorContent{child: child})
		case strings.HasPrefix(p.src[p.pos:], "{{"):
			text.WriteByte('{')
			p.pos += 2
		case strings.HasPrefix(p.src[p.pos:], "}}"):
			text.WriteByte('}')
			p.pos += 2
		case c == '{':
			flushText(true)
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectByte('}'); err != nil {
				return nil, err
			}
			ce.content = append(ce.content, constructorContent{expr: e})
		default:
			text.WriteByte(c)
			p.pos++
		}
	}
}

// parseTemplateParts reads attribute value content up to (not consuming)
// the terminating quote, splitting literal text and {expr} parts.
func (p *parser) parseTemplateParts(quote string) ([]part, error) {
	var parts []part
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, part{text: text.String()})
			text.Reset()
		}
	}
	for {
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated attribute value")
		}
		if strings.HasPrefix(p.src[p.pos:], quote) {
			flush()
			return parts, nil
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "{{"):
			text.WriteByte('{')
			p.pos += 2
		case strings.HasPrefix(p.src[p.pos:], "}}"):
			text.WriteByte('}')
			p.pos += 2
		case p.src[p.pos] == '{':
			flush()
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectByte('}'); err != nil {
				return nil, err
			}
			parts = append(parts, part{expr: e})
		default:
			text.WriteByte(p.src[p.pos])
			p.pos++
		}
	}
}

func (p *parser) parseQName() (prefix, local string, err error) {
	n1 := p.parseName()
	if n1 == "" {
		return "", "", p.errf("expected a name, found %q", snippet(p.src, p.pos))
	}
	if p.pos < len(p.src) && p.src[p.pos] == ':' && p.pos+1 < len(p.src) && isNameStart(rune(p.src[p.pos+1])) {
		p.pos++
		n2 := p.parseName()
		return n1, n2, nil
	}
	return "", n1, nil
}
