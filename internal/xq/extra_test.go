package xq

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestOrderByMultipleKeys(t *testing.T) {
	ctx := testCtx(nil)
	ctx.Docs = func(string) (*xmltree.Node, error) {
		return xmltree.MustParse(`<r>
			<i g="2" n="b"/><i g="1" n="b"/><i g="2" n="a"/><i g="1" n="a"/>
		</r>`), nil
	}
	seq := run2(t, ctx, `for $i in doc('d')//i order by $i/@g, $i/@n return concat($i/@g, $i/@n)`)
	if got := strings.Join(strs(seq), "|"); got != "1a|1b|2a|2b" {
		t.Errorf("multi-key order = %q", got)
	}
	seq = run2(t, ctx, `for $i in doc('d')//i order by $i/@g descending, $i/@n return concat($i/@g, $i/@n)`)
	if got := strings.Join(strs(seq), "|"); got != "2a|2b|1a|1b" {
		t.Errorf("desc+asc order = %q", got)
	}
}

func run2(t *testing.T, ctx *Context, src string) Sequence {
	t.Helper()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	seq, err := q.Eval(ctx)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return seq
}

func TestLetBindsWholeSequence(t *testing.T) {
	seq := run(t, `let $all := doc('cars.xml')//car return count($all)`, nil)
	if strs(seq)[0] != "3" {
		t.Errorf("let = %v", strs(seq))
	}
	// Multiple lets in one clause.
	seq = run(t, `let $a := 1, $b := 2 return $a + $b`, nil)
	if strs(seq)[0] != "3" {
		t.Errorf("multi-let = %v", strs(seq))
	}
}

func TestNestedFLWOR(t *testing.T) {
	seq := run(t, `
		for $o in doc('cars.xml')//owner
		return string-join((for $c in $o/car return string($c/model)), '+')`, nil)
	if got := strings.Join(strs(seq), "|"); got != "VW Golf+VW Passat|Twingo" {
		t.Errorf("nested flwor = %q", got)
	}
}

func TestIfInsideFLWOR(t *testing.T) {
	seq := run(t, `
		for $c in doc('cars.xml')//car
		return if ($c/year > 2004) then concat('new:', $c/model) else concat('old:', $c/model)`, nil)
	if got := strings.Join(strs(seq), "|"); got != "old:VW Golf|new:VW Passat|new:Twingo" {
		t.Errorf("if in flwor = %q", got)
	}
}

func TestWhereWithXQFunction(t *testing.T) {
	seq := run(t, `
		for $o in doc('cars.xml')//owner
		where exists($o/car[year > 2004])
		return string($o/@name)`, nil)
	if got := strings.Join(strs(seq), "|"); got != "John Doe|Jane Roe" {
		t.Errorf("where exists = %q", got)
	}
}

func TestConstructorAttrMixedTemplate(t *testing.T) {
	seq := run(t, `<x label="value is {1+1} units"/>`, nil)
	n := seq[0].(*xmltree.Node)
	if got := n.AttrValue("", "label"); got != "value is 2 units" {
		t.Errorf("attr template = %q", got)
	}
}

func TestEmptySequenceInContent(t *testing.T) {
	seq := run(t, `<x>{()}</x>`, nil)
	n := seq[0].(*xmltree.Node)
	if n.TextContent() != "" || len(n.Children) != 0 {
		t.Errorf("empty enclosed = %s", n)
	}
}

func TestDocInsidePredicate(t *testing.T) {
	// doc() usable anywhere in an XPath span via the custom function hook.
	seq := run(t, `count(doc('classes.xml')//entry[@class='B'])`, nil)
	if strs(seq)[0] != "1" {
		t.Errorf("doc in predicate = %v", strs(seq))
	}
}

func TestSequenceOfConstructors(t *testing.T) {
	seq := run(t, `(<a/>, <b/>, 'text')`, nil)
	if len(seq) != 3 {
		t.Fatalf("seq = %v", strs(seq))
	}
	if seq[0].(*xmltree.Node).Name.Local != "a" || seq[1].(*xmltree.Node).Name.Local != "b" {
		t.Errorf("constructors = %v", strs(seq))
	}
}

func TestFLWORInParens(t *testing.T) {
	seq := run(t, `count((for $c in doc('cars.xml')//car return $c))`, nil)
	if strs(seq)[0] != "3" {
		t.Errorf("flwor in parens = %v", strs(seq))
	}
}

func TestDeepNestedConstructors(t *testing.T) {
	seq := run(t, `<a><b><c n="{2*3}">{'x'}</c></b></a>`, nil)
	n := seq[0].(*xmltree.Node)
	c := n.ChildElements()[0].ChildElements()[0]
	if c.AttrValue("", "n") != "6" || c.TextContent() != "x" {
		t.Errorf("nested = %s", n)
	}
}

func TestQueryStringAccessor(t *testing.T) {
	src := `for $x in (1) return $x`
	if MustCompile(src).String() != src {
		t.Error("String() should return source")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic")
		}
	}()
	MustCompile(`for $x in`)
}

func TestWhitespaceOnlyContentStripped(t *testing.T) {
	seq := run(t, `<a>
		<b/>
	</a>`, nil)
	n := seq[0].(*xmltree.Node)
	for _, c := range n.Children {
		if c.Kind == xmltree.TextNode {
			t.Errorf("boundary whitespace kept: %q", c.Text)
		}
	}
}

func TestCountFollowedByOperatorStaysXPath(t *testing.T) {
	// count(...) > 1 must be parsed as one XPath span (the xq-level count
	// only takes over when the call is the whole operand).
	seq := run(t, `count(doc('cars.xml')//car) > 2`, nil)
	if strs(seq)[0] != "true" {
		t.Errorf("count>2 = %v", strs(seq))
	}
	seq = run(t, `for $o in doc('cars.xml')//owner where count($o/car) > 1 return string($o/@name)`, nil)
	if got := strings.Join(strs(seq), "|"); got != "John Doe" {
		t.Errorf("where count = %q", got)
	}
	// sum at head position over a sequence literal.
	seq = run(t, `sum((1, 2, 3))`, nil)
	if strs(seq)[0] != "6" {
		t.Errorf("sum = %v", strs(seq))
	}
}

func TestPositionalVariable(t *testing.T) {
	seq := run(t, `for $m at $i in doc('cars.xml')//model return concat($i, ':', string($m))`, nil)
	if got := strings.Join(strs(seq), "|"); got != "1:VW Golf|2:VW Passat|3:Twingo" {
		t.Errorf("positional = %q", got)
	}
	// Positional works per for-clause binding.
	seq = run(t, `for $o at $i in doc('cars.xml')//owner, $c at $j in $o/car
		return concat($i, '.', $j)`, nil)
	if got := strings.Join(strs(seq), "|"); got != "1.1|1.2|2.1" {
		t.Errorf("nested positional = %q", got)
	}
	if _, err := Compile(`for $x at in (1) return $x`); err == nil {
		t.Error("missing positional variable should fail")
	}
}

func TestItemStringVariants(t *testing.T) {
	if ItemString(3.5) != "3.5" || ItemString(true) != "true" || ItemString("s") != "s" {
		t.Error("atomics")
	}
	if ItemString(xmltree.MustParse(`<v>7</v>`).Root()) != "7" {
		t.Error("node string-value")
	}
}
