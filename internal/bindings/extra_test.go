package bindings

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestNewTupleErrors(t *testing.T) {
	if _, err := NewTuple("X"); err == nil {
		t.Error("odd arguments should fail")
	}
	if _, err := NewTuple(1, Str("v")); err == nil {
		t.Error("non-string name should fail")
	}
	if _, err := NewTuple("X", "not-a-value"); err == nil {
		t.Error("non-Value should fail")
	}
}

func TestMustTuplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTuple should panic on bad input")
		}
	}()
	MustTuple("X")
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Str("x"), `"x"`},
		{Num(3), "3"},
		{Num(2.5), "2.5"},
		{Boolean(true), "true"},
		{Ref("http://u/"), "<http://u/>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
	frag := Fragment(xmltree.MustParse(`<a/>`).Root())
	if got := frag.String(); !strings.Contains(got, "<a/>") {
		t.Errorf("fragment String = %q", got)
	}
}

func TestValueIsZeroAndAsBool(t *testing.T) {
	var zero Value
	if !zero.IsZero() || zero.AsBool() {
		t.Error("zero value should be zero and false")
	}
	if !Str("x").AsBool() || Str("").AsBool() {
		t.Error("string AsBool by non-emptiness")
	}
	if !Num(1).AsBool() || Num(0).AsBool() {
		t.Error("number AsBool by non-zero")
	}
	if !Fragment(xmltree.MustParse(`<a>t</a>`).Root()).AsBool() {
		t.Error("fragment with text is true")
	}
}

func TestTupleAndRelationString(t *testing.T) {
	tup := MustTuple("B", Str("2"), "A", Str("1"))
	if got := tup.String(); got != `{A="1", B="2"}` {
		t.Errorf("tuple String = %q (variables must be sorted)", got)
	}
	r := NewRelation(tup, MustTuple("A", Str("9")))
	s := r.String()
	if !strings.Contains(s, "\n") || !strings.Contains(s, `{A="9"}`) {
		t.Errorf("relation String = %q", s)
	}
}

func TestRelationVarsAndClone(t *testing.T) {
	r := NewRelation(
		MustTuple("X", Str("1")),
		MustTuple("Y", Str("2")),
	)
	if got := strings.Join(r.Vars(), ","); got != "X,Y" {
		t.Errorf("vars = %q", got)
	}
	c := r.Clone()
	c.Tuples()[0]["Z"] = Str("3")
	if len(r.Tuples()[0]) != 1 {
		t.Error("clone shares tuple storage")
	}
	// Add through clone must not affect original.
	c.Add(MustTuple("W", Str("4")))
	if r.Size() != 2 {
		t.Error("clone shares relation storage")
	}
}

func TestExtendDeduplicates(t *testing.T) {
	r := NewRelation(MustTuple("X", Str("1")))
	out := r.Extend("Y", func(Tuple) []Value {
		return []Value{Str("a"), Str("a"), Num(2), Str("2")}
	})
	// "a" duplicated, and Num(2)/Str("2") are Equal → 2 distinct tuples.
	if out.Size() != 2 {
		t.Errorf("extend size = %d\n%s", out.Size(), out)
	}
}

func TestProjectToNothing(t *testing.T) {
	r := NewRelation(MustTuple("X", Str("1")), MustTuple("X", Str("2")))
	p := r.Project()
	if p.Size() != 1 || len(p.Tuples()[0]) != 0 {
		t.Errorf("empty projection = %s", p)
	}
	// Unit ⋈ anything = anything: projection to nothing then join restores.
	if !p.Join(r).Equal(r) {
		t.Error("projected-unit join should restore")
	}
}

func TestUnitVsEmpty(t *testing.T) {
	if Unit().Empty() {
		t.Error("Unit is not empty")
	}
	if Unit().Size() != 1 {
		t.Error("Unit has one (empty) tuple")
	}
	if NewRelation().Size() != 0 {
		t.Error("NewRelation() is empty")
	}
}

func TestSelectPreservesOrderIndependence(t *testing.T) {
	r := NewRelation(MustTuple("N", Num(1)), MustTuple("N", Num(2)))
	out := r.Select(func(Tuple) bool { return true })
	// Selecting everything then adding a duplicate must still dedupe.
	if out.Add(MustTuple("N", Num(1))) {
		t.Error("duplicate slipped past the rebuilt index")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		String: "string", Number: "number", Bool: "boolean", URI: "uri", XML: "xml",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String = %q", int(k), k.String())
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
}
