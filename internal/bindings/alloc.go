package bindings

import "sync"

// The relation algebra runs on every rule firing, so its per-tuple
// allocations dominate the engine's hot path (ROADMAP open item 1). This
// file holds the allocation-avoidance machinery shared by relation.go:
// a variable-name interner, pooled key-scratch buffers, and a tuple-map
// pool.
//
// Pooling invariant: a pool-obtained tuple is released back to the pool in
// exactly one place — when duplicate elimination rejects it, before it was
// ever stored in a relation or otherwise made visible to callers. Tuples
// that land in Relation.tuples are never recycled, so slices returned by
// Tuples() stay valid forever. See docs/PERFORMANCE.md.

// interned maps a variable name to its canonical instance.
var interned sync.Map // string → string

// Intern returns a canonical instance of s. Variable names and QNames
// recur across every tuple, event and answer; interning them makes the
// many map keys of a long-running engine share one backing string.
func Intern(s string) string {
	if v, ok := interned.Load(s); ok {
		return v.(string)
	}
	v, _ := interned.LoadOrStore(s, s)
	return v.(string)
}

// keyScratch is the reusable state for computing tuple and join keys: the
// key bytes themselves and the sorted-variable-name scratch slice.
type keyScratch struct {
	buf   []byte
	names []string
}

var scratchPool = sync.Pool{New: func() any { return &keyScratch{buf: make([]byte, 0, 128)} }}

func getScratch() *keyScratch { return scratchPool.Get().(*keyScratch) }

func putScratch(s *keyScratch) {
	s.buf = s.buf[:0]
	s.names = s.names[:0]
	scratchPool.Put(s)
}

// tuplePool recycles tuple maps rejected by duplicate elimination.
var tuplePool = sync.Pool{New: func() any { return make(Tuple, 8) }}

func getTuple() Tuple { return tuplePool.Get().(Tuple) }

// releaseTuple returns a pool-obtained tuple after clearing it. Callers
// must guarantee the tuple was never stored in a relation or handed out.
func releaseTuple(t Tuple) {
	clear(t)
	tuplePool.Put(t)
}
