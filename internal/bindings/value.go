// Package bindings implements the global semantics of ECA rules as described
// in Section 3 of the paper: rule evaluation state is a set of tuples of
// variable bindings, components communicate by exchanging such sets, and
// repeated variables act as join variables (natural join).
//
// Values can be literals (strings, numbers, booleans), references (URIs),
// or XML fragments (including marked-up events), mirroring the paper's
// "values/literals, references (URIs), XML or RDF fragments, or events".
package bindings

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Kind discriminates the value variants a variable may be bound to.
type Kind int

// The kinds of values.
const (
	// String is a plain literal.
	String Kind = iota
	// Number is a numeric literal (stored as float64, like XPath numbers).
	Number
	// Bool is a boolean literal.
	Bool
	// URI is a reference to a Web resource.
	URI
	// XML is an XML fragment, e.g. a query result or a marked-up event.
	XML
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Number:
		return "number"
	case Bool:
		return "boolean"
	case URI:
		return "uri"
	case XML:
		return "xml"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single binding value. The zero Value is the empty string
// literal.
type Value struct {
	kind Kind
	str  string
	num  float64
	b    bool
	node *xmltree.Node
}

// Str returns a string literal value.
func Str(s string) Value { return Value{kind: String, str: s} }

// Num returns a numeric literal value.
func Num(f float64) Value { return Value{kind: Number, num: f} }

// Boolean returns a boolean literal value.
func Boolean(b bool) Value { return Value{kind: Bool, b: b} }

// Ref returns a URI reference value.
func Ref(uri string) Value { return Value{kind: URI, str: uri} }

// Fragment returns an XML fragment value. The node is not copied; callers
// that go on to mutate the tree should pass a Clone.
func Fragment(n *xmltree.Node) Value { return Value{kind: XML, node: n} }

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// Clone returns a deep copy of the value: XML fragments copy their whole
// node tree, so mutations of the clone (or the original) never reach the
// other. Scalar kinds are immutable and copy trivially.
func (v Value) Clone() Value {
	if v.kind == XML && v.node != nil {
		return Value{kind: XML, node: v.node.Clone()}
	}
	return v
}

// IsZero reports whether v is the zero value (the empty string literal).
func (v Value) IsZero() bool { return v == Value{} }

// Node returns the XML fragment of an XML value, or nil for other kinds.
func (v Value) Node() *xmltree.Node { return v.node }

// AsString returns the natural string rendering of the value: the literal
// itself, the URI, the formatted number, "true"/"false", or the string-value
// (text content) of an XML fragment.
func (v Value) AsString() string {
	switch v.kind {
	case String, URI:
		return v.str
	case Number:
		return formatNumber(v.num)
	case Bool:
		if v.b {
			return "true"
		}
		return "false"
	case XML:
		return v.node.TextContent()
	default:
		return ""
	}
}

// AsNumber returns the numeric interpretation of the value and whether the
// conversion succeeded. Strings and XML string-values are parsed; booleans
// convert to 0/1.
func (v Value) AsNumber() (float64, bool) {
	switch v.kind {
	case Number:
		return v.num, true
	case Bool:
		if v.b {
			return 1, true
		}
		return 0, true
	default:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.AsString()), 64)
		return f, err == nil
	}
}

// AsBool returns the boolean interpretation: booleans directly, numbers by
// non-zero, everything else by non-empty string-value.
func (v Value) AsBool() bool {
	switch v.kind {
	case Bool:
		return v.b
	case Number:
		return v.num != 0
	default:
		return v.AsString() != ""
	}
}

// Equal reports whether two values are equal for join purposes. URIs only
// compare with URIs, booleans with booleans. Strings, numbers and XML
// fragments compare by their string/numeric value (a number joins with a
// numeric string, matching the convention that XML-sourced data is untyped
// text); two XML fragments must additionally be structurally equal ignoring
// whitespace-only text. Equal values always have equal Keys, so hash joins
// bucketed by Key are exact.
func (v Value) Equal(w Value) bool {
	if v.Key() != w.Key() {
		return false
	}
	if v.kind == XML && w.kind == XML {
		return xmltree.EqualIgnoringWhitespace(v.node, w.node)
	}
	return true
}

// Key returns a string that partitions values for hash joins: Equal values
// always have the same Key. Numbers and numeric strings share keys; URIs and
// booleans are segregated from textual values.
func (v Value) Key() string {
	switch v.kind {
	case URI:
		return "u:" + v.str
	case Number:
		return "n:" + formatNumber(v.num)
	case Bool:
		if v.b {
			return "b:true"
		}
		return "b:false"
	case XML:
		return textKey(v.node.TextContent())
	default:
		return textKey(v.str)
	}
}

func textKey(s string) string {
	if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		return "n:" + formatNumber(f)
	}
	return "s:" + s
}

// appendKey appends exactly what Key returns to b, reusing b's capacity so
// hot-path key construction (Relation.Add dedup, hash-join bucketing) does
// not allocate per value.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case URI:
		b = append(b, "u:"...)
		return append(b, v.str...)
	case Number:
		b = append(b, "n:"...)
		return appendNumber(b, v.num)
	case Bool:
		if v.b {
			return append(b, "b:true"...)
		}
		return append(b, "b:false"...)
	case XML:
		return appendTextKey(b, v.node.TextContent())
	default:
		return appendTextKey(b, v.str)
	}
}

func appendTextKey(b []byte, s string) []byte {
	if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		b = append(b, "n:"...)
		return appendNumber(b, f)
	}
	b = append(b, "s:"...)
	return append(b, s...)
}

func appendNumber(b []byte, f float64) []byte {
	if f == float64(int64(f)) {
		return strconv.AppendInt(b, int64(f), 10)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// String renders the value for debugging and trace output.
func (v Value) String() string {
	switch v.kind {
	case URI:
		return "<" + v.str + ">"
	case XML:
		return v.node.String()
	case String:
		return strconv.Quote(v.str)
	default:
		return v.AsString()
	}
}

func formatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
