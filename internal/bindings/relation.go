package bindings

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one tuple of variable bindings: a finite map from variable names
// to values. Tuples are treated as immutable once placed in a Relation;
// operations that extend a tuple copy it first.
type Tuple map[string]Value

// NewTuple returns a tuple binding the given alternating name/value pairs.
func NewTuple(pairs ...any) (Tuple, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("bindings: NewTuple: odd number of arguments")
	}
	t := make(Tuple, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			return nil, fmt.Errorf("bindings: NewTuple: argument %d is not a variable name", i)
		}
		v, ok := pairs[i+1].(Value)
		if !ok {
			return nil, fmt.Errorf("bindings: NewTuple: argument %d is not a Value", i+1)
		}
		t[Intern(name)] = v
	}
	return t, nil
}

// MustTuple is NewTuple panicking on error, for tests and static data.
func MustTuple(pairs ...any) Tuple {
	t, err := NewTuple(pairs...)
	if err != nil {
		panic(err)
	}
	return t
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Vars returns the sorted variable names bound in the tuple.
func (t Tuple) Vars() []string {
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compatible reports whether two tuples agree (via Value.Equal) on every
// variable they share, the precondition for merging them in a natural join.
func (t Tuple) Compatible(u Tuple) bool {
	small, large := t, u
	if len(u) < len(t) {
		small, large = u, t
	}
	for k, v := range small {
		if w, ok := large[k]; ok && !v.Equal(w) {
			return false
		}
	}
	return true
}

// Merge returns a new tuple combining the bindings of both tuples. For
// shared variables the value from t wins; callers should check Compatible
// first if exact agreement matters.
func (t Tuple) Merge(u Tuple) Tuple {
	m := make(Tuple, len(t)+len(u))
	for k, v := range u {
		m[k] = v
	}
	for k, v := range t {
		m[k] = v
	}
	return m
}

// Equal reports whether two tuples bind the same variables to Equal values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for k, v := range t {
		w, ok := u[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// key returns a canonical string for duplicate elimination.
func (t Tuple) key() string {
	buf, _ := t.appendKey(nil, nil)
	return string(buf)
}

// appendKey appends the canonical dedup key of t to buf, reusing names as
// sorting scratch, and returns both grown slices. Tuples that are Equal
// produce identical keys (variables sorted, values via Value.appendKey).
func (t Tuple) appendKey(buf []byte, names []string) ([]byte, []string) {
	names = names[:0]
	for k := range t {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		if i > 0 {
			buf = append(buf, '\x01')
		}
		buf = append(buf, k...)
		buf = append(buf, '\x00')
		buf = t[k].appendKey(buf)
	}
	return buf, names
}

// String renders the tuple as {X=v, Y=w} with variables sorted.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, k := range t.Vars() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(t[k].String())
	}
	b.WriteString("}")
	return b.String()
}

// Relation is a set of tuples of variable bindings — the evaluation state of
// an ECA rule instance as it flows through the Event, Query, Test and Action
// components. The zero Relation is empty. Relations are not safe for
// concurrent mutation.
type Relation struct {
	tuples []Tuple
	index  map[string][]int // tuple.key() → indices, for duplicate elimination
	varset map[string]bool  // union of variables bound in any tuple, kept by Add
}

// NewRelation returns a relation containing the given tuples (duplicates,
// per Tuple.Equal, are removed).
func NewRelation(tuples ...Tuple) *Relation {
	r := &Relation{}
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Unit returns the relation containing exactly the empty tuple — the
// identity of the natural join, used as the initial state before the event
// component binds anything.
func Unit() *Relation { return NewRelation(Tuple{}) }

// Add inserts a tuple unless an Equal tuple is already present.
// It reports whether the tuple was inserted.
func (r *Relation) Add(t Tuple) bool { return r.add(t, false) }

// add is Add with the pooling contract: when pooled is set, a rejected
// duplicate is returned to the tuple pool (it was never stored, so no one
// else can hold a reference). The dedup lookup itself does not allocate —
// the key is built in pooled scratch and only converted to a string when
// the tuple is actually inserted.
func (r *Relation) add(t Tuple, pooled bool) bool {
	if r.index == nil {
		r.index = map[string][]int{}
	}
	sc := getScratch()
	sc.buf, sc.names = t.appendKey(sc.buf[:0], sc.names)
	for _, i := range r.index[string(sc.buf)] {
		if r.tuples[i].Equal(t) {
			putScratch(sc)
			if pooled {
				releaseTuple(t)
			}
			return false
		}
	}
	k := string(sc.buf)
	putScratch(sc)
	r.index[k] = append(r.index[k], len(r.tuples))
	r.tuples = append(r.tuples, t)
	if len(t) > 0 {
		if r.varset == nil {
			r.varset = map[string]bool{}
		}
		for name := range t {
			r.varset[name] = true
		}
	}
	return true
}

// newSized returns an empty relation with storage preallocated for about n
// tuples, so bulk producers (Join, Select, Project) do not regrow.
func newSized(n int) *Relation {
	return &Relation{tuples: make([]Tuple, 0, n), index: make(map[string][]int, n)}
}

// mergeTuples merges two tuples into a pool-obtained map (t wins on shared
// variables, like Tuple.Merge). The result must go through add(…, true).
func mergeTuples(t, u Tuple) Tuple {
	m := getTuple()
	for k, v := range u {
		m[k] = v
	}
	for k, v := range t {
		m[k] = v
	}
	return m
}

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples. Note that Unit() is not
// empty: it holds one (empty) tuple.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Tuples returns the underlying tuples in insertion order. The slice is
// shared; callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Vars returns the sorted union of variables bound in any tuple. The set
// is maintained incrementally by Add, so this costs O(vars), not
// O(tuples×vars) — Join consults it on every call.
func (r *Relation) Vars() []string {
	out := make([]string, 0, len(r.varset))
	for k := range r.varset {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns a relation with copies of all tuples.
func (r *Relation) Clone() *Relation {
	c := &Relation{}
	for _, t := range r.tuples {
		c.Add(t.Clone())
	}
	return c
}

// Join computes the natural join r ⋈ s: for every pair of compatible tuples
// the merged tuple is emitted. Variables occurring on both sides act as join
// variables; tuples disagreeing on any shared variable are eliminated —
// this is the paper's mechanism for discarding, e.g., cars whose class is
// not available at the destination (Fig. 11).
func (r *Relation) Join(s *Relation) *Relation {
	if r.Empty() || s.Empty() {
		return &Relation{}
	}
	shared := sharedVars(r, s)
	if len(shared) == 0 {
		// Cartesian product.
		out := newSized(len(r.tuples) * len(s.tuples))
		for _, t := range r.tuples {
			for _, u := range s.tuples {
				out.add(mergeTuples(t, u), true)
			}
		}
		return out
	}
	// Hash join on the shared variables. Tuples missing one of the shared
	// variables (heterogeneous relations) fall back to pairwise checks.
	out := newSized(max(len(r.tuples), len(s.tuples)))
	idx := make(map[string][]Tuple, len(s.tuples))
	var partialS []Tuple
	sc := getScratch()
	for _, u := range s.tuples {
		var ok bool
		sc.buf, ok = appendJoinKey(sc.buf[:0], u, shared)
		if !ok {
			partialS = append(partialS, u)
			continue
		}
		idx[string(sc.buf)] = append(idx[string(sc.buf)], u)
	}
	for _, t := range r.tuples {
		var ok bool
		sc.buf, ok = appendJoinKey(sc.buf[:0], t, shared)
		if !ok {
			// t lacks a shared var: compatible with anything agreeing on
			// the vars it does have.
			for _, u := range s.tuples {
				if t.Compatible(u) {
					out.add(mergeTuples(t, u), true)
				}
			}
			continue
		}
		for _, u := range idx[string(sc.buf)] { // no-alloc probe
			if t.Compatible(u) { // exact check (keys can collide for XML)
				out.add(mergeTuples(t, u), true)
			}
		}
		for _, u := range partialS {
			if t.Compatible(u) {
				out.add(mergeTuples(t, u), true)
			}
		}
	}
	putScratch(sc)
	return out
}

func sharedVars(r, s *Relation) []string {
	small, large := r, s
	if len(s.varset) < len(r.varset) {
		small, large = s, r
	}
	var shared []string
	for v := range small.varset {
		if large.varset[v] {
			shared = append(shared, v)
		}
	}
	sort.Strings(shared)
	return shared
}

// appendJoinKey appends the hash-join key of t over vars to buf, reporting
// whether every var is bound in t.
func appendJoinKey(buf []byte, t Tuple, vars []string) ([]byte, bool) {
	for i, v := range vars {
		val, ok := t[v]
		if !ok {
			return buf, false
		}
		if i > 0 {
			buf = append(buf, '\x01')
		}
		buf = val.appendKey(buf)
	}
	return buf, true
}

// Select returns the tuples satisfying pred — the test component's
// semantics (σ): tuples failing the condition are discarded.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := newSized(len(r.tuples))
	for _, t := range r.tuples {
		if pred(t) {
			out.add(t, false)
		}
	}
	return out
}

// Project returns the relation restricted to the given variables; tuples
// that become Equal after projection are merged.
func (r *Relation) Project(vars ...string) *Relation {
	keep := map[string]bool{}
	for _, v := range vars {
		keep[v] = true
	}
	out := newSized(len(r.tuples))
	for _, t := range r.tuples {
		p := getTuple()
		for k, v := range t {
			if keep[k] {
				p[k] = v
			}
		}
		out.add(p, true)
	}
	return out
}

// Union returns the set union of two relations.
func (r *Relation) Union(s *Relation) *Relation {
	out := newSized(len(r.tuples) + len(s.tuples))
	for _, t := range r.tuples {
		out.add(t, false)
	}
	for _, t := range s.tuples {
		out.add(t, false)
	}
	return out
}

// Extend binds, in every tuple, the variable name to each of the values
// produced by f for that tuple; a tuple for which f yields n values becomes
// n tuples (and disappears when n is 0). This implements the paper's
// <eca:variable name="N"> construct: each answer of a functional expression
// yields a separate variable binding.
func (r *Relation) Extend(name string, f func(Tuple) []Value) *Relation {
	out := newSized(len(r.tuples))
	for _, t := range r.tuples {
		for _, v := range f(t) {
			n := getTuple()
			for k, w := range t {
				n[k] = w
			}
			n[name] = v
			out.add(n, true)
		}
	}
	return out
}

// Equal reports set equality of two relations (order-insensitive).
func (r *Relation) Equal(s *Relation) bool {
	if r.Size() != s.Size() {
		return false
	}
	used := make([]bool, s.Size())
outer:
	for _, t := range r.tuples {
		for i, u := range s.tuples {
			if !used[i] && t.Equal(u) {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// String renders the relation, one tuple per line, in a canonical order.
func (r *Relation) String() string {
	lines := make([]string, len(r.tuples))
	for i, t := range r.tuples {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
