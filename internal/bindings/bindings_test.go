package bindings

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Str("Golf"), String, "Golf"},
		{Num(3.5), Number, "3.5"},
		{Num(42), Number, "42"},
		{Boolean(true), Bool, "true"},
		{Boolean(false), Bool, "false"},
		{Ref("http://example.org/x"), URI, "http://example.org/x"},
		{Fragment(xmltree.MustParse("<car>Passat</car>").Root()), XML, "Passat"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.AsString() != c.str {
			t.Errorf("%v: AsString = %q, want %q", c.v, c.v.AsString(), c.str)
		}
	}
}

func TestValueAsNumber(t *testing.T) {
	if n, ok := Str("17.5").AsNumber(); !ok || n != 17.5 {
		t.Errorf("Str(17.5).AsNumber = %v, %v", n, ok)
	}
	if _, ok := Str("abc").AsNumber(); ok {
		t.Error("Str(abc).AsNumber should fail")
	}
	if n, ok := Boolean(true).AsNumber(); !ok || n != 1 {
		t.Errorf("Boolean(true).AsNumber = %v, %v", n, ok)
	}
	if n, ok := Fragment(xmltree.MustParse("<v> 7 </v>").Root()).AsNumber(); !ok || n != 7 {
		t.Errorf("XML .AsNumber = %v, %v", n, ok)
	}
}

func TestValueEqual(t *testing.T) {
	frag := func(s string) Value { return Fragment(xmltree.MustParse(s).Root()) }
	eq := []struct{ a, b Value }{
		{Str("x"), Str("x")},
		{Num(5), Str("5")},
		{Str("5"), Num(5)},
		{Num(5), Num(5)},
		{Ref("u"), Ref("u")},
		{Boolean(true), Boolean(true)},
		{frag("<c>B</c>"), frag("<c>B</c>")},
		{frag("<c>B</c>"), Str("B")},
		{frag("<c>7</c>"), Num(7)},
	}
	for _, c := range eq {
		if !c.a.Equal(c.b) {
			t.Errorf("%v should Equal %v", c.a, c.b)
		}
		if c.a.Key() != c.b.Key() {
			t.Errorf("Equal values must share keys: %v vs %v", c.a.Key(), c.b.Key())
		}
	}
	ne := []struct{ a, b Value }{
		{Str("x"), Str("y")},
		{Str("u"), Ref("u")},                 // literal vs reference
		{Boolean(true), Str("true")},         // booleans segregate
		{Boolean(true), Num(1)},              // booleans segregate
		{frag("<c>B</c>"), frag("<d>B</d>")}, // same text, different structure
		{Num(5), Str("5x")},
	}
	for _, c := range ne {
		if c.a.Equal(c.b) {
			t.Errorf("%v should not Equal %v", c.a, c.b)
		}
	}
}

func TestTupleCompatibleMerge(t *testing.T) {
	a := MustTuple("Person", Str("John Doe"), "Class", Str("B"))
	b := MustTuple("Class", Str("B"), "Car", Str("Astra"))
	c := MustTuple("Class", Str("D"), "Car", Str("Laguna"))
	if !a.Compatible(b) {
		t.Error("a and b agree on Class, should be compatible")
	}
	if a.Compatible(c) {
		t.Error("a and c disagree on Class, should be incompatible")
	}
	m := a.Merge(b)
	if len(m) != 3 || m["Car"].AsString() != "Astra" || m["Person"].AsString() != "John Doe" {
		t.Errorf("merge = %v", m)
	}
	// Merge must not mutate the inputs.
	if len(a) != 2 || len(b) != 2 {
		t.Error("merge mutated its inputs")
	}
}

func TestRelationAddDeduplicates(t *testing.T) {
	r := NewRelation()
	if !r.Add(MustTuple("X", Str("1"))) {
		t.Error("first Add should insert")
	}
	if r.Add(MustTuple("X", Num(1))) {
		t.Error("numeric-equal duplicate should not insert")
	}
	if r.Size() != 1 {
		t.Errorf("size = %d", r.Size())
	}
}

// TestFig11Join reproduces the join of the paper's running example:
// the customer's cars {Golf/C, Passat/B} joined with the cars available in
// Paris {B, D} must keep only class-B tuples.
func TestFig11Join(t *testing.T) {
	owned := NewRelation(
		MustTuple("Person", Str("John Doe"), "OwnCar", Str("Golf"), "Class", Str("C")),
		MustTuple("Person", Str("John Doe"), "OwnCar", Str("Passat"), "Class", Str("B")),
	)
	available := NewRelation(
		MustTuple("Class", Str("B"), "Avail", Str("Astra")),
		MustTuple("Class", Str("D"), "Avail", Str("Espace")),
	)
	j := owned.Join(available)
	if j.Size() != 1 {
		t.Fatalf("join size = %d, want 1\n%s", j.Size(), j)
	}
	got := j.Tuples()[0]
	if got["OwnCar"].AsString() != "Passat" || got["Avail"].AsString() != "Astra" {
		t.Errorf("surviving tuple = %v", got)
	}
}

func TestJoinCartesianWhenDisjoint(t *testing.T) {
	r := NewRelation(MustTuple("A", Str("1")), MustTuple("A", Str("2")))
	s := NewRelation(MustTuple("B", Str("x")), MustTuple("B", Str("y")), MustTuple("B", Str("z")))
	j := r.Join(s)
	if j.Size() != 6 {
		t.Errorf("cartesian size = %d, want 6", j.Size())
	}
}

func TestJoinWithUnit(t *testing.T) {
	r := NewRelation(MustTuple("A", Str("1")), MustTuple("A", Str("2")))
	if !Unit().Join(r).Equal(r) || !r.Join(Unit()).Equal(r) {
		t.Error("Unit must be the identity of join")
	}
}

func TestJoinEmpty(t *testing.T) {
	r := NewRelation(MustTuple("A", Str("1")))
	empty := NewRelation()
	if !r.Join(empty).Empty() || !empty.Join(r).Empty() {
		t.Error("join with empty relation must be empty")
	}
}

func TestJoinHeterogeneousTuples(t *testing.T) {
	// A tuple lacking the shared variable joins with everything compatible.
	r := NewRelation(
		MustTuple("X", Str("1"), "Y", Str("a")),
		MustTuple("Y", Str("b")), // no X
	)
	s := NewRelation(MustTuple("X", Str("1"), "Z", Str("q")))
	j := r.Join(s)
	if j.Size() != 2 {
		t.Fatalf("join size = %d, want 2\n%s", j.Size(), j)
	}
}

func TestSelect(t *testing.T) {
	r := NewRelation(
		MustTuple("N", Num(1)),
		MustTuple("N", Num(5)),
		MustTuple("N", Num(10)),
	)
	big := r.Select(func(t Tuple) bool {
		n, _ := t["N"].AsNumber()
		return n >= 5
	})
	if big.Size() != 2 {
		t.Errorf("selected %d, want 2", big.Size())
	}
}

func TestProject(t *testing.T) {
	r := NewRelation(
		MustTuple("Car", Str("Golf"), "Class", Str("C")),
		MustTuple("Car", Str("Polo"), "Class", Str("C")),
		MustTuple("Car", Str("Passat"), "Class", Str("B")),
	)
	p := r.Project("Class")
	if p.Size() != 2 {
		t.Errorf("projection size = %d, want 2 (duplicates merged)\n%s", p.Size(), p)
	}
}

func TestExtend(t *testing.T) {
	r := NewRelation(MustTuple("Person", Str("John Doe")))
	// The paper's <eca:variable name="OwnCar"> semantics: two functional
	// results yield two tuples.
	cars := r.Extend("OwnCar", func(t Tuple) []Value {
		return []Value{Str("Golf"), Str("Passat")}
	})
	if cars.Size() != 2 {
		t.Fatalf("extend size = %d, want 2", cars.Size())
	}
	// A tuple with zero functional results disappears.
	none := r.Extend("OwnCar", func(t Tuple) []Value { return nil })
	if !none.Empty() {
		t.Error("extend with no values should eliminate the tuple")
	}
}

func TestUnion(t *testing.T) {
	r := NewRelation(MustTuple("X", Str("1")))
	s := NewRelation(MustTuple("X", Str("1")), MustTuple("X", Str("2")))
	u := r.Union(s)
	if u.Size() != 2 {
		t.Errorf("union size = %d, want 2", u.Size())
	}
}

func TestRelationEqual(t *testing.T) {
	r := NewRelation(MustTuple("X", Str("1")), MustTuple("X", Str("2")))
	s := NewRelation(MustTuple("X", Str("2")), MustTuple("X", Str("1")))
	if !r.Equal(s) {
		t.Error("order must not matter for relation equality")
	}
	s.Add(MustTuple("X", Str("3")))
	if r.Equal(s) {
		t.Error("different sizes must not be Equal")
	}
}

// --- property-based tests -------------------------------------------------

// genRelation builds a pseudo-random relation over a small variable and
// value alphabet so joins hit both matches and mismatches.
func genRelation(rng *rand.Rand, vars []string) *Relation {
	vals := []Value{Str("a"), Str("b"), Str("c"), Num(1), Num(2)}
	r := NewRelation()
	n := rng.Intn(8)
	for i := 0; i < n; i++ {
		t := Tuple{}
		for _, v := range vars {
			if rng.Intn(3) > 0 { // sometimes leave a variable unbound
				t[v] = vals[rng.Intn(len(vals))]
			}
		}
		r.Add(t)
	}
	return r
}

type relPair struct{ R, S *Relation }

// Generate implements quick.Generator for pairs of relations with
// overlapping variable sets.
func (relPair) Generate(rng *rand.Rand, size int) reflect.Value {
	p := relPair{
		R: genRelation(rng, []string{"X", "Y"}),
		S: genRelation(rng, []string{"Y", "Z"}),
	}
	return reflect.ValueOf(p)
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(p relPair) bool {
		return p.R.Join(p.S).Equal(p.S.Join(p.R))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIdempotent(t *testing.T) {
	// R ⋈ R = R for relations of uniform schema; with partial tuples the
	// result can grow, so restrict to fully bound tuples.
	f := func(p relPair) bool {
		full := p.R.Select(func(tp Tuple) bool { return len(tp) == 2 })
		return full.Join(full).Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinUnitIdentity(t *testing.T) {
	f := func(p relPair) bool {
		return p.R.Join(Unit()).Equal(p.R) && Unit().Join(p.R).Equal(p.R)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinAssociative(t *testing.T) {
	type triple struct{ R, S, T *Relation }
	gen := func(vs [3][]string) func(*rand.Rand) triple {
		return func(rng *rand.Rand) triple {
			return triple{genRelation(rng, vs[0]), genRelation(rng, vs[1]), genRelation(rng, vs[2])}
		}
	}
	g := gen([3][]string{{"X", "Y"}, {"Y", "Z"}, {"Z", "X"}})
	rng := rand.New(rand.NewSource(7))
	full := func(r *Relation) *Relation {
		return r.Select(func(tp Tuple) bool { return len(tp) == 2 })
	}
	for i := 0; i < 200; i++ {
		tr := g(rng)
		// Associativity holds for uniform schemas; partially bound tuples
		// give outer-join-like semantics for which it does not.
		tr.R, tr.S, tr.T = full(tr.R), full(tr.S), full(tr.T)
		left := tr.R.Join(tr.S).Join(tr.T)
		right := tr.R.Join(tr.S.Join(tr.T))
		if !left.Equal(right) {
			t.Fatalf("join not associative:\nR=%s\nS=%s\nT=%s\nleft=%s\nright=%s",
				tr.R, tr.S, tr.T, left, right)
		}
	}
}

func TestQuickProjectAfterJoinShrinks(t *testing.T) {
	f := func(p relPair) bool {
		j := p.R.Join(p.S)
		return j.Project("Y").Size() <= j.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: join distributes over union, (R ∪ S) ⋈ T = (R ⋈ T) ∪ (S ⋈ T).
func TestQuickJoinDistributesOverUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		r := genRelation(rng, []string{"X", "Y"})
		s := genRelation(rng, []string{"X", "Y"})
		u := genRelation(rng, []string{"Y", "Z"})
		left := r.Union(s).Join(u)
		right := r.Join(u).Union(s.Join(u))
		if !left.Equal(right) {
			t.Fatalf("distribution failed:\nR=%s\nS=%s\nT=%s\nleft=%s\nright=%s", r, s, u, left, right)
		}
	}
}

// Property: selection commutes with join when the predicate only reads one
// side's private variable.
func TestQuickSelectionPushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pred := func(tp Tuple) bool {
		v, ok := tp["X"]
		return ok && v.AsString() != "a"
	}
	for i := 0; i < 200; i++ {
		r := genRelation(rng, []string{"X", "Y"}).Select(func(tp Tuple) bool { return len(tp) == 2 })
		s := genRelation(rng, []string{"Y", "Z"}).Select(func(tp Tuple) bool { return len(tp) == 2 })
		early := r.Select(pred).Join(s)
		late := r.Join(s).Select(pred)
		if !early.Equal(late) {
			t.Fatalf("pushdown failed:\nR=%s\nS=%s\nearly=%s\nlate=%s", r, s, early, late)
		}
	}
}

func TestQuickValueKeyConsistency(t *testing.T) {
	// Equal values must share a Key (hash-join exactness).
	vals := func(s string, f float64, b bool) []Value {
		return []Value{Str(s), Num(f), Boolean(b), Ref(s)}
	}
	f := func(s string, fl float64, b bool, s2 string, f2 float64, b2 bool) bool {
		for _, v := range vals(s, fl, b) {
			for _, w := range vals(s2, f2, b2) {
				if v.Equal(w) && v.Key() != w.Key() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
