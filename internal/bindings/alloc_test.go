package bindings

import (
	"fmt"
	"sync"
	"testing"
)

// The ReportAllocs benchmarks are the PR's allocation regression guard
// (BenchmarkJoin lives in vars_test.go):
// go test -bench 'Join|Select|Project' -benchmem ./internal/bindings

func BenchmarkJoinCartesian(b *testing.B) {
	r := benchRelation(50, 25, "K", "A")
	s := benchRelation(50, 25, "L", "B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.Join(s); out.Size() == 0 {
			b.Fatal("empty join")
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	r := benchRelation(1000, 500, "K", "A")
	pred := func(t Tuple) bool { return t["A"].AsString() != "v0" }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.Select(pred); out.Size() == 0 {
			b.Fatal("empty select")
		}
	}
}

func BenchmarkProject(b *testing.B) {
	r := benchRelation(1000, 500, "K", "A")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.Project("K"); out.Size() == 0 {
			b.Fatal("empty project")
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	tuples := make([]Tuple, 512)
	for i := range tuples {
		tuples[i] = MustTuple("K", Str(fmt.Sprintf("k%d", i)), "V", Num(float64(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRelation()
		for _, t := range tuples {
			r.Add(t)
			r.Add(t) // duplicate: the dedup lookup must not allocate
		}
	}
}

// TestPoolReuseCanary is the mutate-after-return canary: tuples stored in a
// relation returned by Join/Project/Extend must never be recycled by later
// operations. It holds references into an early result, churns the pool
// hard, and asserts the held tuples are unchanged.
func TestPoolReuseCanary(t *testing.T) {
	r := benchRelation(64, 8, "K", "A")
	s := benchRelation(64, 8, "K", "B")
	first := r.Join(s)
	if first.Empty() {
		t.Fatal("empty join")
	}
	// Snapshot the result by deep copy before churning.
	want := make([]Tuple, 0, first.Size())
	for _, tu := range first.Tuples() {
		want = append(want, tu.Clone())
	}
	// Churn: many joins/projections whose duplicate rejections and pooled
	// tuples would stomp first's tuples if any stored tuple were released.
	for i := 0; i < 50; i++ {
		x := benchRelation(64, 4, "K", "C")
		y := benchRelation(64, 4, "K", "D")
		out := x.Join(y)
		out.Project("K")
		out.Extend("E", func(Tuple) []Value { return []Value{Str("e")} })
		// Duplicate-heavy union exercises the release-on-reject path.
		x.Union(x)
	}
	got := first.Tuples()
	if len(got) != len(want) {
		t.Fatalf("result size changed under pool churn: %d → %d", len(want), len(got))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("tuple %d mutated by pool reuse:\n  was %v\n  now %v", i, want[i], got[i])
		}
	}
}

// TestConcurrentRelationOps runs the relation algebra from many goroutines
// (distinct relations, shared pools) under -race.
func TestConcurrentRelationOps(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				r := benchRelation(40, 5, "K", "A")
				s := benchRelation(40, 5, "K", "B")
				out := r.Join(s)
				if out.Empty() {
					t.Error("empty join")
					return
				}
				p := out.Project("K")
				if p.Size() != 5 {
					t.Errorf("project size %d, want 5", p.Size())
					return
				}
				sel := out.Select(func(tu Tuple) bool { return tu["K"].AsString() == "k1" })
				for _, tu := range sel.Tuples() {
					if tu["K"].AsString() != "k1" {
						t.Error("select leaked a foreign tuple")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestInternCanonicalizes pins the variable-name interner.
func TestInternCanonicalizes(t *testing.T) {
	a := Intern(string([]byte{'V', 'a', 'r'}))
	b := Intern(string([]byte{'V', 'a', 'r'}))
	if a != b {
		t.Fatal("intern returned different strings")
	}
}

// TestAppendKeyMatchesKey pins the no-alloc key builder against Value.Key.
func TestAppendKeyMatchesKey(t *testing.T) {
	vals := []Value{
		Str("hello"), Str("42"), Str(""), Str(" 7 "),
		Num(3), Num(3.25), Num(-1e21),
		Boolean(true), Boolean(false),
		Ref("http://example.org/x"),
	}
	for _, v := range vals {
		if got := string(v.appendKey(nil)); got != v.Key() {
			t.Errorf("appendKey(%v) = %q, Key = %q", v, got, v.Key())
		}
	}
	tu := MustTuple("B", Str("b"), "A", Num(1), "C", Boolean(true))
	buf, _ := tu.appendKey(nil, nil)
	if string(buf) != tu.key() {
		t.Errorf("tuple appendKey %q != key %q", buf, tu.key())
	}
}
