package bindings

import (
	"fmt"
	"reflect"
	"testing"
)

// TestVarsIncremental pins the incrementally maintained variable set:
// Vars must reflect every Add without rescanning, including heterogeneous
// tuples and the empty relation/tuple edge cases.
func TestVarsIncremental(t *testing.T) {
	r := NewRelation()
	if got := r.Vars(); len(got) != 0 {
		t.Fatalf("empty relation Vars = %v, want none", got)
	}
	r.Add(Tuple{})
	if got := r.Vars(); len(got) != 0 {
		t.Fatalf("unit relation Vars = %v, want none", got)
	}
	r.Add(MustTuple("B", Str("1")))
	r.Add(MustTuple("A", Str("2"), "C", Str("3")))
	if got, want := r.Vars(), []string{"A", "B", "C"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	// A duplicate Add must not disturb the set.
	r.Add(MustTuple("B", Str("1")))
	if got, want := r.Vars(), []string{"A", "B", "C"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars after duplicate Add = %v, want %v", got, want)
	}
}

// TestSharedVarsAgrees cross-checks the varset-based sharedVars against a
// rescan of the tuples, over joins of heterogeneous relations.
func TestSharedVarsAgrees(t *testing.T) {
	r := NewRelation(
		MustTuple("A", Str("1"), "K", Str("x")),
		MustTuple("B", Str("2")),
	)
	s := NewRelation(
		MustTuple("K", Str("x"), "C", Str("3")),
		MustTuple("B", Str("2"), "K", Str("y")),
	)
	rescan := func(r, s *Relation) []string {
		set := map[string]bool{}
		for _, t := range r.Tuples() {
			for k := range t {
				set[k] = true
			}
		}
		var shared []string
		for _, v := range s.Vars() {
			if set[v] {
				shared = append(shared, v)
			}
		}
		return shared
	}
	if got, want := sharedVars(r, s), rescan(r, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharedVars = %v, want %v", got, want)
	}
	if got, want := sharedVars(s, r), rescan(s, r); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharedVars (swapped) = %v, want %v", got, want)
	}
}

func benchRelation(n, keys int, keyVar, payloadVar string) *Relation {
	r := NewRelation()
	for i := 0; i < n; i++ {
		r.Add(MustTuple(
			keyVar, Str(fmt.Sprintf("k%d", i%keys)),
			payloadVar, Str(fmt.Sprintf("v%d", i)),
		))
	}
	return r
}

// BenchmarkJoin measures the natural join on the regime the engine hits
// per component evaluation; before var tracking, every Join paid an
// O(tuples×vars) rescan of both sides just to find the shared variables.
func BenchmarkJoin(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			keys := n / 2
			r := benchRelation(n, keys, "K", "A")
			s := benchRelation(n, keys, "K", "B")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Join(s)
			}
		})
	}
}
