package grh

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

func TestHTTPDispatchBadAnswerXML(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "this is not xml")
	}))
	defer srv.Close()
	g := New()
	g.Register(Descriptor{Language: "http://bad/", FrameworkAware: true, Endpoint: srv.URL})
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Language: "http://bad/", Expression: xmltree.NewElement("http://bad/", "q")},
		Bindings: bindings.NewRelation(),
	})
	if err == nil || !strings.Contains(err.Error(), "bad answer") {
		t.Errorf("err = %v", err)
	}
}

func TestHTTPDispatchWrongAnswerRoot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<notanswers/>")
	}))
	defer srv.Close()
	g := New()
	g.Register(Descriptor{Language: "http://bad/", FrameworkAware: true, Endpoint: srv.URL})
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Language: "http://bad/", Expression: xmltree.NewElement("http://bad/", "q")},
		Bindings: bindings.NewRelation(),
	})
	if err == nil {
		t.Error("wrong answer root should fail")
	}
}

func TestOpaqueWithoutEndpoint(t *testing.T) {
	g := New()
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Opaque: true, Language: "x", Text: "q"},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err == nil {
		t.Error("opaque without endpoint and without registered language should fail")
	}
}

// TestRegisteredUnawareService: a language registered with FrameworkAware
// false routes through opaque mediation at the descriptor's endpoint.
func TestRegisteredUnawareService(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprint(w, `<r><v>ok</v></r>`)
	}))
	defer srv.Close()
	g := New()
	g.Register(Descriptor{Language: "http://unaware/", FrameworkAware: false, Endpoint: srv.URL})
	a, err := g.Dispatch(protocol.Query, Component{
		Rule: "r",
		Comp: ruleml.Component{
			Kind: ruleml.QueryComponent, Opaque: true,
			Language: "http://unaware/", Text: "query $X", Service: srv.URL,
		},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 || len(a.Rows) != 1 {
		t.Fatalf("hits=%d rows=%d", hits, len(a.Rows))
	}
}

// TestMarkedUpComponentToUnawareService: even non-opaque components route
// through opaque mediation if the registered processor is unaware — the
// GRH "uses information about the communication protocol" (Section 4.4).
func TestMarkedUpOpaqueText(t *testing.T) {
	// An opaque component whose language IS registered (framework-aware):
	// the GRH wraps the text in an eca:opaque expression for the service.
	var gotText string
	svc := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		gotText = strings.TrimSpace(req.Expression.TextContent())
		return &protocol.Answer{}, nil
	})
	g := New()
	g.Register(Descriptor{Language: "http://aware/", FrameworkAware: true, Local: svc})
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Opaque: true, Language: "http://aware/", Text: "the query"},
		Bindings: bindings.NewRelation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotText != "the query" {
		t.Errorf("service saw %q", gotText)
	}
}

func TestOpaqueHTTPErrorPropagates(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	}))
	defer srv.Close()
	g := New()
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Opaque: true, Language: "x", Service: srv.URL, Text: "q"},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err == nil || !strings.Contains(err.Error(), "418") {
		t.Errorf("err = %v", err)
	}
}

func TestOpaqueEmptyResponseYieldsNoRows(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	g := New()
	a, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Opaque: true, Language: "x", Service: srv.URL, Text: "q"},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 0 {
		t.Errorf("rows = %+v", a.Rows)
	}
}

func TestOpaqueLogAnswersIncompatibleTuplesDropped(t *testing.T) {
	// The log:answers produced by the raw node disagrees with the input
	// tuple on a shared variable → that row is dropped during merge.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<log:answers xmlns:log="`+protocol.LogNS+`">
			<log:answer><log:variable name="Dest">Paris</log:variable><log:variable name="C">ok</log:variable></log:answer>
			<log:answer><log:variable name="Dest">Rome</log:variable><log:variable name="C">bad</log:variable></log:answer>
		</log:answers>`)
	}))
	defer srv.Close()
	g := New()
	a, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Opaque: true, Language: "x", Service: srv.URL, Text: "q"},
		Bindings: bindings.NewRelation(bindings.MustTuple("Dest", bindings.Str("Paris"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || a.Rows[0].Tuple["C"].AsString() != "ok" {
		t.Fatalf("rows = %+v", a.Rows)
	}
}
