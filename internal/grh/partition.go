// Partitioned parallel dispatch: when the input relation of an
// idempotent dispatch exceeds a configurable shard size, its tuples are
// split into K shards, dispatched concurrently through the ordinary
// retry/breaker path, and the per-shard answers merged. This is valid
// because query/test evaluation is per-tuple independent under the
// paper's semantics: <eca:variable> components produce functional
// results per input tuple (Fig. 8), so shard answers merge by result
// append; plain components produce answer tuples the engine natural-joins
// with the full relation (Fig. 11), so shard answers merge by relation
// union. Actions are never sharded — they may have side effects, and
// per-tuple independence is a property of evaluation, not execution.

package grh

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// DefaultMaxShards caps the shard fan-out when the policy does not set
// its own bound.
const DefaultMaxShards = 8

// PartitionPolicy configures partitioned parallel dispatch. The zero
// value disables partitioning.
type PartitionPolicy struct {
	// MaxTuples is the shard size: input relations with more tuples are
	// split into ⌈n/MaxTuples⌉ shards. Values ≤ 0 disable partitioning.
	MaxTuples int
	// MaxShards caps the concurrent fan-out per dispatch
	// (DefaultMaxShards when 0); shards grow beyond MaxTuples instead.
	MaxShards int
}

// DefaultPartitionPolicy shards relations beyond 64 tuples, at most 8
// ways.
var DefaultPartitionPolicy = PartitionPolicy{MaxTuples: 64, MaxShards: DefaultMaxShards}

// Enabled reports whether the policy partitions at all.
func (p PartitionPolicy) Enabled() bool { return p.MaxTuples > 0 }

func (p PartitionPolicy) maxShards() int {
	if p.MaxShards <= 0 {
		return DefaultMaxShards
	}
	return p.MaxShards
}

// WithPartition enables partitioned parallel dispatch for idempotent
// request kinds. A policy with MaxTuples ≤ 0 keeps it disabled.
func WithPartition(p PartitionPolicy) Option {
	return func(g *GRH) { g.partition = p }
}

// splitRelation slices a relation into at most maxShards balanced,
// contiguous shards of roughly the policy's shard size. The tuples are
// shared with the input (dispatch treats bindings as read-only).
func splitRelation(r *bindings.Relation, p PartitionPolicy) []*bindings.Relation {
	tuples := r.Tuples()
	n := len(tuples)
	k := (n + p.MaxTuples - 1) / p.MaxTuples
	if m := p.maxShards(); k > m {
		k = m
	}
	if k <= 1 {
		return []*bindings.Relation{r}
	}
	out := make([]*bindings.Relation, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		out = append(out, bindings.NewRelation(tuples[lo:hi]...))
	}
	return out
}

// dispatchPartitioned dispatches one idempotent request, sharding its
// input relation when the partition policy says so. Shards travel
// through dispatchDirect, so each gets the full resilience treatment
// (per-endpoint breaker admission, retry with backoff); one failed shard
// fails the whole dispatch.
func (g *GRH) dispatchPartitioned(kind protocol.RequestKind, c Component) (*protocol.Answer, error) {
	p := g.partition
	if !p.Enabled() || c.Bindings == nil || c.Bindings.Size() <= p.MaxTuples {
		return g.dispatchDirect(kind, c)
	}
	shards := splitRelation(c.Bindings, p)
	if len(shards) == 1 {
		return g.dispatchDirect(kind, c)
	}
	g.met.shards.Add(int64(len(shards)))
	g.met.shardFanout.Observe(float64(len(shards)))
	answers := make([]*protocol.Answer, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, rel := range shards {
		wg.Add(1)
		go func(i int, rel *bindings.Relation) {
			defer wg.Done()
			sc := c
			sc.Bindings = rel
			start := time.Now()
			answers[i], errs[i] = g.dispatchDirect(kind, sc)
			if c.Trace != nil {
				rows := 0
				if answers[i] != nil {
					rows = len(answers[i].Rows)
				}
				sp := traceSpan(sc, "shard", fmt.Sprintf("%d/%d", i+1, len(shards)), rel.Size(), rows, start)
				if errs[i] != nil {
					sp.Err = errs[i].Error()
				}
				c.Trace.AddSpan(sp)
			}
		}(i, rel)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("grh: shard %d/%d of %s: %w", i+1, len(shards), c.Comp.ID, err)
		}
	}
	return mergeShardAnswers(c, answers), nil
}

// mergeShardAnswers combines per-shard answers into the answer the
// unsharded dispatch would have produced. <eca:variable> components
// merge by result append — each row keeps the functional results
// produced for its tuple (Fig. 8) — while plain components merge by
// relation union, eliminating duplicate tuples before the engine's
// natural join (Fig. 11). Server-side trace spans of all shards are
// concatenated under the first shard's trace identity.
func mergeShardAnswers(c Component, parts []*protocol.Answer) *protocol.Answer {
	merged := &protocol.Answer{RuleID: c.Rule, Component: c.Comp.ID}
	if c.Comp.Variable != "" {
		for _, p := range parts {
			merged.Rows = append(merged.Rows, p.Rows...)
		}
	} else {
		seen := bindings.NewRelation()
		for _, p := range parts {
			for _, row := range p.Rows {
				if seen.Add(row.Tuple) {
					merged.Rows = append(merged.Rows, row)
				}
			}
		}
	}
	for _, p := range parts {
		if merged.TraceID == "" && p.TraceID != "" {
			merged.TraceID, merged.TraceParent = p.TraceID, p.TraceParent
		}
		merged.Trace = append(merged.Trace, p.Trace...)
	}
	return merged
}

// traceSpan builds a GRH-side span (cache verdicts, shard dispatches)
// for the component's live rule-instance trace.
func traceSpan(c Component, stage, mode string, in, out int, start time.Time) obs.Span {
	return obs.Span{
		Stage:     stage,
		Component: c.Comp.ID,
		Language:  c.Comp.Language,
		Mode:      mode,
		TuplesIn:  in,
		TuplesOut: out,
		Start:     start,
		Duration:  time.Since(start),
	}
}
