package grh

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

const partitionTestLang = "http://test/partition"

// derivingEcho echoes every input tuple with a result derived from its
// bindings, so a wrong shard/merge produces visibly wrong rows.
func derivingEcho(calls *atomic.Int64) Service {
	return ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		if calls != nil {
			calls.Add(1)
		}
		a := &protocol.Answer{RuleID: req.RuleID, Component: req.Component}
		for _, t := range req.Bindings.Tuples() {
			a.Rows = append(a.Rows, protocol.AnswerRow{
				Tuple:   t,
				Results: []bindings.Value{bindings.Str("res:" + t["V"].AsString())},
			})
		}
		return a, nil
	})
}

func partitionRelation(n int) *bindings.Relation {
	r := bindings.NewRelation()
	for i := 0; i < n; i++ {
		r.Add(bindings.MustTuple(
			"K", bindings.Str(fmt.Sprintf("k%d", i%7)),
			"V", bindings.Str(fmt.Sprintf("v%d", i)),
		))
	}
	return r
}

// canonicalRows renders an answer's rows as a sorted multiset, the
// order-insensitive form partitioned and direct dispatch must agree on.
func canonicalRows(a *protocol.Answer) []string {
	out := make([]string, 0, len(a.Rows))
	for _, row := range a.Rows {
		parts := []string{row.Tuple.String()}
		for _, r := range row.Results {
			parts = append(parts, r.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// TestPartitionEquivalence is the property test of the ISSUE's acceptance
// criteria: for shard sizes {1, 2, 7, 64} and a spread of relation sizes,
// a partitioned dispatch returns exactly the rows of the unsharded one —
// for plain components (relation-union merge) and eca:variable components
// (result-append merge) alike.
func TestPartitionEquivalence(t *testing.T) {
	for _, variable := range []string{"", "R"} {
		for _, shardSize := range []int{1, 2, 7, 64} {
			for _, n := range []int{0, 1, 2, 7, 63, 64, 65, 130} {
				name := fmt.Sprintf("var=%q/shard=%d/n=%d", variable, shardSize, n)
				t.Run(name, func(t *testing.T) {
					rel := partitionRelation(n)
					comp := Component{
						Rule: "r",
						Comp: ruleml.Component{
							Kind: ruleml.QueryComponent, ID: "query[1]",
							Language: partitionTestLang, Variable: variable,
							Expression: xmltree.NewElement(partitionTestLang, "q"),
						},
						Bindings: rel,
					}

					direct := New()
					if err := direct.Register(Descriptor{Language: partitionTestLang, FrameworkAware: true, Local: derivingEcho(nil)}); err != nil {
						t.Fatal(err)
					}
					want, err := direct.Dispatch(protocol.Query, comp)
					if err != nil {
						t.Fatal(err)
					}

					var calls atomic.Int64
					sharded := New(WithPartition(PartitionPolicy{MaxTuples: shardSize, MaxShards: 8}))
					if err := sharded.Register(Descriptor{Language: partitionTestLang, FrameworkAware: true, Local: derivingEcho(&calls)}); err != nil {
						t.Fatal(err)
					}
					got, err := sharded.Dispatch(protocol.Query, comp)
					if err != nil {
						t.Fatal(err)
					}

					w, g := canonicalRows(want), canonicalRows(got)
					if len(w) != len(g) {
						t.Fatalf("partitioned dispatch: %d rows, direct: %d", len(g), len(w))
					}
					for i := range w {
						if w[i] != g[i] {
							t.Fatalf("row %d differs:\npartitioned: %s\ndirect:      %s", i, g[i], w[i])
						}
					}
					if n > shardSize {
						if c := calls.Load(); c < 2 {
							t.Fatalf("expected a sharded dispatch (≥2 service calls), got %d", c)
						}
					}
				})
			}
		}
	}
}

// TestPartitionDeduplicatesPlainRows: two shards that produce the same
// answer tuple must merge to one row for plain components — the union the
// engine would otherwise join twice.
func TestPartitionDeduplicatesPlainRows(t *testing.T) {
	svc := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		// Same constant answer tuple regardless of input.
		return &protocol.Answer{Rows: []protocol.AnswerRow{
			{Tuple: bindings.MustTuple("C", bindings.Str("shared"))},
		}}, nil
	})
	g := New(WithPartition(PartitionPolicy{MaxTuples: 1, MaxShards: 8}))
	if err := g.Register(Descriptor{Language: partitionTestLang, FrameworkAware: true, Local: svc}); err != nil {
		t.Fatal(err)
	}
	comp := Component{
		Rule: "r",
		Comp: ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]",
			Language: partitionTestLang, Expression: xmltree.NewElement(partitionTestLang, "q")},
		Bindings: partitionRelation(6),
	}
	a, err := g.Dispatch(protocol.Query, comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 {
		t.Fatalf("merged answer has %d rows, want 1 (shard union must deduplicate)", len(a.Rows))
	}
}

// TestPartitionShardFailure: one failing shard fails the dispatch with an
// error naming the shard.
func TestPartitionShardFailure(t *testing.T) {
	svc := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		for _, tu := range req.Bindings.Tuples() {
			if tu["V"].AsString() == "v5" {
				return nil, fmt.Errorf("poisoned tuple")
			}
		}
		return &protocol.Answer{}, nil
	})
	g := New(WithPartition(PartitionPolicy{MaxTuples: 2, MaxShards: 8}))
	if err := g.Register(Descriptor{Language: partitionTestLang, FrameworkAware: true, Local: svc}); err != nil {
		t.Fatal(err)
	}
	comp := Component{
		Rule: "r",
		Comp: ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]",
			Language: partitionTestLang, Expression: xmltree.NewElement(partitionTestLang, "q")},
		Bindings: partitionRelation(10),
	}
	_, err := g.Dispatch(protocol.Query, comp)
	if err == nil {
		t.Fatal("dispatch with a failing shard should fail")
	}
	if !strings.Contains(err.Error(), "shard") || !strings.Contains(err.Error(), "poisoned tuple") {
		t.Fatalf("error %q should name the shard and wrap the cause", err)
	}
}

// TestSplitRelation checks the shard invariants directly: shards are
// non-empty, contiguous, balanced within one tuple, capped at MaxShards,
// and their concatenation is the input.
func TestSplitRelation(t *testing.T) {
	for _, shardSize := range []int{1, 2, 7, 64} {
		for _, n := range []int{1, 2, 7, 64, 65, 130, 513} {
			p := PartitionPolicy{MaxTuples: shardSize, MaxShards: 8}
			rel := partitionRelation(n)
			shards := splitRelation(rel, p)
			if len(shards) > p.MaxShards {
				t.Fatalf("n=%d shard=%d: %d shards exceed cap %d", n, shardSize, len(shards), p.MaxShards)
			}
			var total int
			var sizes []int
			var concat []bindings.Tuple
			for _, s := range shards {
				if s.Size() == 0 && n > 0 {
					t.Fatalf("n=%d shard=%d: empty shard", n, shardSize)
				}
				total += s.Size()
				sizes = append(sizes, s.Size())
				concat = append(concat, s.Tuples()...)
			}
			if total != n {
				t.Fatalf("n=%d shard=%d: shards hold %d tuples", n, shardSize, total)
			}
			for i, tu := range rel.Tuples() {
				if !tu.Equal(concat[i]) {
					t.Fatalf("n=%d shard=%d: tuple %d reordered", n, shardSize, i)
				}
			}
			min, max := sizes[0], sizes[0]
			for _, s := range sizes {
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			if max-min > 1 {
				t.Fatalf("n=%d shard=%d: unbalanced shards %v", n, shardSize, sizes)
			}
		}
	}
}

// TestPartitionShardMetrics: a sharded dispatch records its fan-out.
func TestPartitionShardMetrics(t *testing.T) {
	hub := obs.NewHub()
	g := New(WithObs(hub), WithPartition(PartitionPolicy{MaxTuples: 2, MaxShards: 8}))
	if err := g.Register(Descriptor{Language: partitionTestLang, FrameworkAware: true, Local: derivingEcho(nil)}); err != nil {
		t.Fatal(err)
	}
	comp := Component{
		Rule: "r",
		Comp: ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]",
			Language: partitionTestLang, Expression: xmltree.NewElement(partitionTestLang, "q")},
		Bindings: partitionRelation(10),
	}
	if _, err := g.Dispatch(protocol.Query, comp); err != nil {
		t.Fatal(err)
	}
	m := hub.Metrics()
	if got := m.Counter("grh_shards_total", "").Value(); got != 5 {
		t.Errorf("grh_shards_total = %d, want 5 (10 tuples / shard size 2)", got)
	}
	if got := m.Histogram("grh_shard_fanout", "", nil).Count(); got != 1 {
		t.Errorf("grh_shard_fanout observations = %d, want 1", got)
	}
}
