package grh

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

func queryComponent(lang string) Component {
	return Component{
		Rule:     "r1",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: lang, Expression: xmltree.NewElement(lang, "q")},
		Bindings: bindings.NewRelation(bindings.MustTuple("P", bindings.Str("John"))),
	}
}

// TestDispatchTimeoutCounted points the GRH at a service that never answers
// within the configured timeout: the dispatch must fail and the failure
// must be classified as grh_errors_total{reason="timeout"}.
func TestDispatchTimeoutCounted(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	// Unblock the stalled handler first so srv.Close does not wait on it
	// (deferred calls run last-in first-out).
	defer close(block)

	hub := obs.NewHub()
	g := New(WithObs(hub), WithTimeout(50*time.Millisecond))
	g.Register(Descriptor{Language: "http://slow/", FrameworkAware: true, Endpoint: srv.URL})

	start := time.Now()
	_, err := g.Dispatch(protocol.Query, queryComponent("http://slow/"))
	if err == nil {
		t.Fatal("dispatch against a stalled service should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dispatch took %v — timeout not applied", elapsed)
	}

	reg := hub.Metrics()
	if v := reg.CounterVec("grh_errors_total", "", "reason").With("timeout").Value(); v != 1 {
		t.Errorf("grh_errors_total{timeout} = %d, want 1", v)
	}
	if v := reg.CounterVec("grh_requests_total", "", "kind").With("query").Value(); v != 1 {
		t.Errorf("grh_requests_total{query} = %d, want 1", v)
	}
	// The latency histogram records failed dispatches too.
	h := reg.HistogramVec("grh_dispatch_seconds", "", nil, "language", "mode").With("http://slow/", "aware")
	if h.Count() != 1 {
		t.Errorf("grh_dispatch_seconds count = %d, want 1", h.Count())
	}
}

// TestDefaultClientIsBounded ensures the GRH never falls back to
// http.DefaultClient: a zero-option GRH gets its own client carrying
// DefaultTimeout.
func TestDefaultClientIsBounded(t *testing.T) {
	g := New()
	if g.client == http.DefaultClient {
		t.Fatal("GRH uses http.DefaultClient")
	}
	if g.client.Timeout != DefaultTimeout {
		t.Errorf("client timeout = %v, want %v", g.client.Timeout, DefaultTimeout)
	}
	if g := New(WithTimeout(3 * time.Second)); g.client.Timeout != 3*time.Second {
		t.Errorf("WithTimeout client timeout = %v", g.client.Timeout)
	}
	// A non-positive timeout keeps the default rather than unbounding it.
	if g := New(WithTimeout(0)); g.client.Timeout != DefaultTimeout {
		t.Errorf("WithTimeout(0) client timeout = %v", g.client.Timeout)
	}
}
