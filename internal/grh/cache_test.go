package grh

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

// countingEcho is a local framework-aware service that counts its calls
// and echoes every input tuple with one functional result.
func countingEcho(calls *atomic.Int64) Service {
	return ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		calls.Add(1)
		a := &protocol.Answer{RuleID: req.RuleID, Component: req.Component}
		for _, t := range req.Bindings.Tuples() {
			a.Rows = append(a.Rows, protocol.AnswerRow{Tuple: t, Results: []bindings.Value{bindings.Str("r")}})
		}
		return a, nil
	})
}

func queryComp(rule, lang string, rel *bindings.Relation) Component {
	return Component{
		Rule:     rule,
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: lang, Expression: xmltree.NewElement(lang, "q")},
		Bindings: rel,
	}
}

const cacheTestLang = "http://test/cache"

func newCachedGRH(t *testing.T, hub *obs.Hub, policy CachePolicy, svc Service) *GRH {
	t.Helper()
	g := New(WithObs(hub), WithCache(policy))
	if err := g.Register(Descriptor{Language: cacheTestLang, FrameworkAware: true, Local: svc}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCacheHitMissTTL(t *testing.T) {
	hub := obs.NewHub()
	var calls atomic.Int64
	g := newCachedGRH(t, hub, CachePolicy{MaxEntries: 8, TTL: time.Second}, countingEcho(&calls))
	clock := time.Unix(1000, 0)
	g.now = func() time.Time { return clock }

	rel := bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1")))
	for i := 0; i < 3; i++ {
		a, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, rel))
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != 1 {
			t.Fatalf("dispatch %d: %d rows, want 1", i, len(a.Rows))
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("service called %d times, want 1 (cache should absorb repeats)", got)
	}
	counter := func(name string) int64 { return hub.Metrics().Counter(name, "").Value() }
	if got := counter("grh_cache_hits_total"); got != 2 {
		t.Errorf("cache hits = %d, want 2", got)
	}
	if got := counter("grh_cache_misses_total"); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}

	// Past the TTL the entry expires: the next dispatch goes upstream again
	// and the expiry counts as an eviction.
	clock = clock.Add(2 * time.Second)
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, rel)); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("service called %d times after TTL expiry, want 2", got)
	}
	if got := counter("grh_cache_evictions_total"); got != 1 {
		t.Errorf("evictions = %d, want 1 (TTL expiry)", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	hub := obs.NewHub()
	var calls atomic.Int64
	g := newCachedGRH(t, hub, CachePolicy{MaxEntries: 2, TTL: time.Hour}, countingEcho(&calls))

	rels := []*bindings.Relation{
		bindings.NewRelation(bindings.MustTuple("X", bindings.Str("a"))),
		bindings.NewRelation(bindings.MustTuple("X", bindings.Str("b"))),
		bindings.NewRelation(bindings.MustTuple("X", bindings.Str("c"))),
	}
	for _, rel := range rels {
		if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, rel)); err != nil {
			t.Fatal(err)
		}
	}
	// The third fill evicted the least recently used entry (rels[0]), so
	// re-dispatching it misses and goes upstream again.
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, rels[0])); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("service called %d times, want 4 (LRU eviction of the oldest entry)", got)
	}
	if got := hub.Metrics().Counter("grh_cache_evictions_total", "").Value(); got < 1 {
		t.Errorf("evictions = %d, want ≥1", got)
	}
	if got := g.cache.len(); got != 2 {
		t.Errorf("cache holds %d entries, want 2 (size bound)", got)
	}
}

// TestCacheDefensiveCopy proves a cached answer is never aliased across
// rule instances: mutating a served answer (tuple XML fragments and
// result values included) must not leak into later hits, and every hit
// is re-addressed to its requester.
func TestCacheDefensiveCopy(t *testing.T) {
	var calls atomic.Int64
	svc := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		calls.Add(1)
		frag := xmltree.MustParse(`<car><model>VW Golf</model></car>`).Root()
		return &protocol.Answer{
			RuleID:    req.RuleID,
			Component: req.Component,
			Rows: []protocol.AnswerRow{{
				Tuple:   bindings.Tuple{"Car": bindings.Fragment(frag)},
				Results: []bindings.Value{bindings.Fragment(frag.Clone())},
			}},
		}, nil
	})
	g := newCachedGRH(t, nil, DefaultCachePolicy, svc)

	rel := bindings.Unit()
	first, err := g.Dispatch(protocol.Query, queryComp("rule-a", cacheTestLang, rel))
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize everything the first caller received.
	first.Rows[0].Tuple["Car"].Node().Children = nil
	first.Rows[0].Results[0].Node().Children = nil
	first.Rows[0].Tuple["Extra"] = bindings.Str("junk")

	second, err := g.Dispatch(protocol.Query, queryComp("rule-b", cacheTestLang, rel))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("service called %d times, want 1", calls.Load())
	}
	if second.RuleID != "rule-b" {
		t.Errorf("hit answer addressed to rule %q, want rule-b (re-stamped per requester)", second.RuleID)
	}
	if len(second.Rows[0].Tuple) != 1 {
		t.Errorf("hit tuple has %d vars, want 1 — first caller's mutation leaked into the cache", len(second.Rows[0].Tuple))
	}
	if got := second.Rows[0].Tuple["Car"].Node().TextContent(); got != "VW Golf" {
		t.Errorf("hit tuple fragment text = %q, want %q — XML tree aliased across instances", got, "VW Golf")
	}
	if got := second.Rows[0].Results[0].Node().TextContent(); got != "VW Golf" {
		t.Errorf("hit result fragment text = %q, want %q — XML tree aliased across instances", got, "VW Golf")
	}
}

// TestCacheKeyCanonicalization: the key must be order-insensitive over
// tuples (same relation → hit) but strictly discriminate values that are
// merely join-equal, like XML fragments with equal text content but
// different structure (Value.Key collides for those by design).
func TestCacheKeyCanonicalization(t *testing.T) {
	var calls atomic.Int64
	g := newCachedGRH(t, nil, DefaultCachePolicy, countingEcho(&calls))

	t1 := bindings.MustTuple("X", bindings.Str("1"))
	t2 := bindings.MustTuple("X", bindings.Str("2"))
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, bindings.NewRelation(t1, t2))); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, bindings.NewRelation(t2, t1))); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("service called %d times for reordered but equal relations, want 1", got)
	}

	// Same text content, different structure: join-equal (shared Value.Key)
	// but NOT the same input — a cache hit here would be a wrong answer.
	calls.Store(0)
	fragA := bindings.Fragment(xmltree.MustParse(`<m><inner/>x</m>`).Root())
	fragB := bindings.Fragment(xmltree.MustParse(`<n>x</n>`).Root())
	if fragA.Key() != fragB.Key() {
		t.Fatalf("test premise broken: fragments no longer share a join key")
	}
	relA := bindings.NewRelation(bindings.Tuple{"F": fragA})
	relB := bindings.NewRelation(bindings.Tuple{"F": fragB})
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, relA)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, relB)); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("service called %d times for structurally different inputs, want 2 (no false hit)", got)
	}
}

// TestCacheCoalescing drives N concurrent identical dispatches into a
// gated service and asserts exactly one reaches it; every caller gets an
// independent (non-aliased) copy of the answer. Run under -race.
func TestCacheCoalescing(t *testing.T) {
	hub := obs.NewHub()
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	svc := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
		}
		frag := xmltree.MustParse(`<v>ok</v>`).Root()
		return &protocol.Answer{Rows: []protocol.AnswerRow{{
			Tuple: bindings.Tuple{"V": bindings.Fragment(frag)},
		}}}, nil
	})
	g := newCachedGRH(t, hub, DefaultCachePolicy, svc)

	rel := bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1")))
	const n = 16
	answers := make([]*protocol.Answer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, rel))
		}(i)
	}
	<-entered // the leader is inside the service; everyone else must wait
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("service called %d times for %d concurrent identical dispatches, want 1", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("dispatch %d: %v", i, errs[i])
		}
		if len(answers[i].Rows) != 1 {
			t.Fatalf("dispatch %d: %d rows, want 1", i, len(answers[i].Rows))
		}
	}
	// Waiters either coalesced onto the leader's flight or hit the cache
	// the leader filled; both avoid the upstream call.
	m := hub.Metrics()
	coalesced := m.Counter("grh_coalesced_total", "").Value()
	hits := m.Counter("grh_cache_hits_total", "").Value()
	if coalesced+hits != n-1 {
		t.Errorf("coalesced=%d + hits=%d, want %d", coalesced, hits, n-1)
	}
	// Answers are independent copies: wrecking one leaves the rest intact.
	answers[0].Rows[0].Tuple["V"].Node().Children = nil
	for i := 1; i < n; i++ {
		if got := answers[i].Rows[0].Tuple["V"].Node().TextContent(); got != "ok" {
			t.Fatalf("answer %d aliased with answer 0: fragment text %q, want %q", i, got, "ok")
		}
	}
}

// TestActionsNeverCachedCoalescedOrSharded pins the idempotency rule: an
// action dispatch must reach its service every single time, with its full
// input relation, no matter how aggressive the throughput configuration —
// mirroring the retry rule of the resilience layer.
func TestActionsNeverCachedCoalescedOrSharded(t *testing.T) {
	hub := obs.NewHub()
	var calls atomic.Int64
	var sizes sync.Map
	svc := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		sizes.Store(calls.Add(1), req.Bindings.Size())
		return &protocol.Answer{}, nil
	})
	g := New(WithObs(hub),
		WithCache(CachePolicy{MaxEntries: 1024, TTL: time.Hour}),
		WithPartition(PartitionPolicy{MaxTuples: 1, MaxShards: 64}))
	const lang = "http://test/action"
	if err := g.Register(Descriptor{Language: lang, FrameworkAware: true, Local: svc}); err != nil {
		t.Fatal(err)
	}

	rel := bindings.NewRelation()
	for i := 0; i < 10; i++ {
		rel.Add(bindings.MustTuple("X", bindings.Str(fmt.Sprint(i))))
	}
	comp := Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.ActionComponent, ID: "action[1]", Language: lang, Expression: xmltree.NewElement(lang, "do")},
		Bindings: rel,
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Dispatch(protocol.Action, comp); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != n {
		t.Fatalf("service saw %d action requests for %d identical dispatches, want every one", got, n)
	}
	sizes.Range(func(_, v any) bool {
		if v.(int) != rel.Size() {
			t.Fatalf("an action dispatch was sharded: service saw %d tuples, want %d", v.(int), rel.Size())
		}
		return true
	})
	m := hub.Metrics()
	for _, name := range []string{"grh_cache_hits_total", "grh_coalesced_total", "grh_shards_total"} {
		if got := m.Counter(name, "").Value(); got != 0 {
			t.Errorf("%s = %d, want 0 for action dispatches", name, got)
		}
	}
}

// TestCacheErrorsNotCached: a failed dispatch must not populate the
// cache; the next identical dispatch tries upstream again.
func TestCacheErrorsNotCached(t *testing.T) {
	var calls atomic.Int64
	svc := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient")
		}
		return &protocol.Answer{}, nil
	})
	g := newCachedGRH(t, nil, DefaultCachePolicy, svc)
	rel := bindings.Unit()
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, rel)); err == nil {
		t.Fatal("first dispatch should fail")
	}
	if _, err := g.Dispatch(protocol.Query, queryComp("r", cacheTestLang, rel)); err != nil {
		t.Fatalf("second dispatch: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("service called %d times, want 2 (errors are never cached)", got)
	}
}
