package grh

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

func TestRegistryLookupAndDefaults(t *testing.T) {
	g := New()
	echo := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		return protocol.NewAnswer(req.RuleID, req.Component, req.Bindings), nil
	})
	if err := g.Register(Descriptor{Language: "http://l1/", Local: echo, FrameworkAware: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(Descriptor{Language: "http://l2/", Local: echo, FrameworkAware: true}); err != nil {
		t.Fatal(err)
	}
	g.SetDefault(ruleml.QueryComponent, "http://l1/")
	if got := g.Languages(); len(got) != 2 {
		t.Errorf("languages = %v", got)
	}
	if _, ok := g.Lookup("http://l1/"); !ok {
		t.Error("lookup failed")
	}
	// Dispatch with explicit language.
	a, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: "http://l2/", Expression: xmltree.NewElement("http://l2/", "q")},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 {
		t.Errorf("rows = %v", a.Rows)
	}
	// Dispatch falling back to the kind default (no language).
	if _, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[2]", Expression: xmltree.NewElement("", "bare")},
		Bindings: bindings.NewRelation(),
	}); err != nil {
		t.Fatalf("default dispatch: %v", err)
	}
	// Unknown language without default.
	if _, err := g.Dispatch(protocol.Action, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.ActionComponent, ID: "action[1]", Language: "http://nowhere/", Expression: xmltree.NewElement("http://nowhere/", "a")},
		Bindings: bindings.NewRelation(),
	}); err == nil {
		t.Error("unknown language should fail")
	}
}

func TestRegisterValidation(t *testing.T) {
	g := New()
	if err := g.Register(Descriptor{Language: ""}); err == nil {
		t.Error("missing language should fail")
	}
	if err := g.Register(Descriptor{Language: "x"}); err == nil {
		t.Error("missing service should fail")
	}
}

func TestKindRestriction(t *testing.T) {
	g := New()
	echo := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		return &protocol.Answer{}, nil
	})
	g.Register(Descriptor{
		Language:       "http://q/",
		Kinds:          []ruleml.ComponentKind{ruleml.QueryComponent},
		FrameworkAware: true,
		Local:          echo,
	})
	_, err := g.Dispatch(protocol.Action, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.ActionComponent, Language: "http://q/", Expression: xmltree.NewElement("http://q/", "a")},
		Bindings: bindings.NewRelation(),
	})
	if err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Errorf("kind restriction not enforced: %v", err)
	}
}

func TestHTTPDispatchRoundTrip(t *testing.T) {
	// A framework-aware remote service: echoes input bindings with one
	// extra variable.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		req, err := protocol.DecodeRequest(doc)
		if err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		out := bindings.NewRelation()
		for _, tup := range req.Bindings.Tuples() {
			n := tup.Clone()
			n["Extra"] = bindings.Str("yes")
			out.Add(n)
		}
		fmt.Fprint(w, protocol.EncodeAnswers(protocol.NewAnswer(req.RuleID, req.Component, out)).String())
	}))
	defer srv.Close()
	g := New()
	g.Register(Descriptor{Language: "http://remote/", FrameworkAware: true, Endpoint: srv.URL})
	a, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r7",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: "http://remote/", Expression: xmltree.NewElement("http://remote/", "q")},
		Bindings: bindings.NewRelation(bindings.MustTuple("P", bindings.Str("John"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.RuleID != "r7" || len(a.Rows) != 1 {
		t.Fatalf("answer = %+v", a)
	}
	if a.Rows[0].Tuple["Extra"].AsString() != "yes" || a.Rows[0].Tuple["P"].AsString() != "John" {
		t.Errorf("tuple = %v", a.Rows[0].Tuple)
	}
}

func TestHTTPDispatchErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	g := New()
	g.Register(Descriptor{Language: "http://broken/", FrameworkAware: true, Endpoint: srv.URL})
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Language: "http://broken/", Expression: xmltree.NewElement("http://broken/", "q")},
		Bindings: bindings.NewRelation(),
	})
	if err == nil || !strings.Contains(err.Error(), "HTTP 500") {
		t.Errorf("expected HTTP 500 error, got %v", err)
	}
}

// TestOpaqueMediation reproduces the Fig. 9 protocol: one GET per input
// tuple, variables substituted, results re-wrapped.
func TestOpaqueMediation(t *testing.T) {
	var queries []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("query")
		queries = append(queries, q)
		switch {
		case strings.Contains(q, "Golf"):
			fmt.Fprint(w, `<results><value>C</value></results>`)
		case strings.Contains(q, "Passat"):
			fmt.Fprint(w, `<results><value>B</value></results>`)
		default:
			fmt.Fprint(w, `<results/>`)
		}
	}))
	defer srv.Close()
	g := New()
	a, err := g.Dispatch(protocol.Query, Component{
		Rule: "r",
		Comp: ruleml.Component{
			Kind: ruleml.QueryComponent, ID: "query[2]",
			Opaque: true, Language: "unknown-lang", Service: srv.URL,
			Text: `//entry[@model='$OwnCar']/@class`,
		},
		Bindings: bindings.NewRelation(
			bindings.MustTuple("OwnCar", bindings.Str("VW Golf")),
			bindings.MustTuple("OwnCar", bindings.Str("VW Passat")),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 2 {
		t.Fatalf("GETs = %d, want one per tuple", len(queries))
	}
	if !strings.Contains(queries[0], "VW Golf") {
		t.Errorf("substitution missing: %q", queries[0])
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %+v", a.Rows)
	}
	got := map[string]string{}
	for _, row := range a.Rows {
		if len(row.Results) != 1 {
			t.Fatalf("row results = %v", row.Results)
		}
		got[row.Tuple["OwnCar"].AsString()] = row.Results[0].AsString()
	}
	if got["VW Golf"] != "C" || got["VW Passat"] != "B" {
		t.Errorf("classes = %v", got)
	}
}

// TestOpaqueLogAnswers reproduces Fig. 10: the raw response already is a
// log:answers document and is decoded as if the service were framework
// aware.
func TestOpaqueLogAnswers(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<log:answers xmlns:log="`+protocol.LogNS+`">
			<log:answer><log:variable name="Class">B</log:variable><log:variable name="Avail">Astra</log:variable></log:answer>
			<log:answer><log:variable name="Class">D</log:variable><log:variable name="Avail">Espace</log:variable></log:answer>
		</log:answers>`)
	}))
	defer srv.Close()
	g := New()
	a, err := g.Dispatch(protocol.Query, Component{
		Rule: "r",
		Comp: ruleml.Component{
			Kind: ruleml.QueryComponent, ID: "query[3]",
			Opaque: true, Language: "raw", Service: srv.URL,
			Text: "irrelevant",
		},
		Bindings: bindings.NewRelation(bindings.MustTuple("Dest", bindings.Str("Paris"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %+v", a.Rows)
	}
	// Tuples must be joined with the input tuple.
	for _, row := range a.Rows {
		if row.Tuple["Dest"].AsString() != "Paris" {
			t.Errorf("input tuple not merged: %v", row.Tuple)
		}
	}
}

func TestOpaquePlainTextResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "alpha\nbeta\n")
	}))
	defer srv.Close()
	g := New()
	a, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Opaque: true, Language: "txt", Service: srv.URL, Text: "q"},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || len(a.Rows[0].Results) != 2 {
		t.Fatalf("rows = %+v", a.Rows)
	}
}

func TestOpaqueEventRejected(t *testing.T) {
	g := New()
	_, err := g.Dispatch(protocol.RegisterEvent, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.EventComponent, Opaque: true, Language: "x", Service: "http://localhost:1/", Text: "e"},
		Bindings: bindings.NewRelation(),
	})
	if err == nil {
		t.Error("opaque event components must be rejected")
	}
}

func TestSubstituteVars(t *testing.T) {
	tup := bindings.MustTuple(
		"OwnCar", bindings.Str("VW Golf"),
		"OwnCarX", bindings.Str("OTHER"),
		"N", bindings.Num(5),
	)
	got := SubstituteVars(`m='$OwnCar' x='$OwnCarX' n=$N`, tup)
	want := `m='VW Golf' x='OTHER' n=5`
	if got != want {
		t.Errorf("SubstituteVars = %q, want %q", got, want)
	}
}

func TestTraceHook(t *testing.T) {
	g := New()
	var lines []string
	g.SetTrace(func(dir, peer string, payload *xmltree.Node) {
		lines = append(lines, dir+" "+peer)
	})
	echo := ServiceFunc(func(req *protocol.Request) (*protocol.Answer, error) {
		return &protocol.Answer{}, nil
	})
	g.Register(Descriptor{Language: "http://l/", Name: "echo", FrameworkAware: true, Local: echo})
	g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Language: "http://l/", Expression: xmltree.NewElement("http://l/", "q")},
		Bindings: bindings.NewRelation(),
	})
	if len(lines) != 2 || lines[0] != "→ echo" || lines[1] != "← echo" {
		t.Errorf("trace = %v", lines)
	}
}

func TestEmptyBindingsSkipOpaqueCalls(t *testing.T) {
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		fmt.Fprint(w, "<r/>")
	}))
	defer srv.Close()
	g := New()
	a, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Opaque: true, Language: "x", Service: srv.URL, Text: "q"},
		Bindings: bindings.NewRelation(),
	})
	if err != nil || calls != 0 || len(a.Rows) != 0 {
		t.Errorf("empty input should make no calls: calls=%d err=%v", calls, err)
	}
}
