package grh

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

// faulty is a scriptable component service for fault injection: it can
// be told to fail the next N requests with a 5xx, return garbage, or be
// down entirely, and it counts every request it sees by method.
type faulty struct {
	mu       sync.Mutex
	failNext int  // answer this many requests with 503 first
	garbage  int  // answer this many requests with an unparsable body
	down     bool // 503 everything
	calls    int
	posts    int
	gets     int
}

func (f *faulty) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.calls++
		if r.Method == http.MethodPost {
			f.posts++
		} else {
			f.gets++
		}
		fail := f.down
		if f.failNext > 0 {
			f.failNext--
			fail = true
		}
		garbage := false
		if !fail && f.garbage > 0 {
			f.garbage--
			garbage = true
		}
		f.mu.Unlock()
		switch {
		case fail:
			http.Error(w, "injected failure", http.StatusServiceUnavailable)
		case garbage:
			fmt.Fprint(w, "<<<this is not XML>>>")
		default:
			// A well-formed empty log:answers document with one empty
			// tuple, decodable by aware and opaque paths alike.
			fmt.Fprint(w, protocol.EncodeAnswers(protocol.NewAnswer("r", "c", bindings.Unit())).String())
		}
	})
}

func (f *faulty) counts() (calls, posts, gets int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.posts, f.gets
}

// fakeClock drives breaker cool-downs without real sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newResilientGRH wires a GRH against the faulty service with instant
// backoff sleeps and a fake clock, returning the hub for counter asserts.
func newResilientGRH(t *testing.T, f *faulty, opts ...Option) (*GRH, *httptest.Server, *obs.Hub, *fakeClock) {
	t.Helper()
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	hub := obs.NewHub()
	g := New(append([]Option{WithObs(hub)}, opts...)...)
	g.sleep = func(time.Duration) {}
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	g.now = clk.now
	if err := g.Register(Descriptor{Language: "http://svc/", FrameworkAware: true, Endpoint: srv.URL}); err != nil {
		t.Fatal(err)
	}
	return g, srv, hub, clk
}

func awareQuery() Component {
	return Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: "http://svc/", Expression: xmltree.NewElement("http://svc/", "q")},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	}
}

func awareAction() Component {
	return Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.ActionComponent, ID: "action[1]", Language: "http://svc/", Expression: xmltree.NewElement("http://svc/", "a")},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	}
}

func counter(hub *obs.Hub, name, label, value string) int64 {
	return hub.Metrics().CounterVec(name, "", label).With(value).Value()
}

// TestRetryThenSucceed scripts the service to fail twice and then
// recover: a query dispatch must complete via retry, with the retries
// visible in grh_retries_total.
func TestRetryThenSucceed(t *testing.T) {
	f := &faulty{failNext: 2}
	g, _, hub, _ := newResilientGRH(t, f,
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	a, err := g.Dispatch(protocol.Query, awareQuery())
	if err != nil {
		t.Fatalf("dispatch should succeed on the third attempt: %v", err)
	}
	if len(a.Rows) != 1 {
		t.Errorf("rows = %+v", a.Rows)
	}
	if calls, _, _ := f.counts(); calls != 3 {
		t.Errorf("service saw %d calls, want 3 (2 failures + success)", calls)
	}
	if v := counter(hub, "grh_retries_total", "kind", "query"); v != 2 {
		t.Errorf("grh_retries_total{query} = %d, want 2", v)
	}
	if v := counter(hub, "grh_errors_total", "reason", "http-status"); v != 2 {
		t.Errorf("grh_errors_total{http-status} = %d, want 2 (each failed attempt counted)", v)
	}
}

// TestRetryExhausted: when the service keeps failing, the dispatch fails
// after exactly MaxAttempts tries.
func TestRetryExhausted(t *testing.T) {
	f := &faulty{down: true}
	g, _, hub, _ := newResilientGRH(t, f,
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	if _, err := g.Dispatch(protocol.Query, awareQuery()); err == nil {
		t.Fatal("dispatch against a down service must fail")
	}
	if calls, _, _ := f.counts(); calls != 3 {
		t.Errorf("service saw %d calls, want 3", calls)
	}
	if v := counter(hub, "grh_retries_total", "kind", "query"); v != 2 {
		t.Errorf("grh_retries_total{query} = %d, want 2", v)
	}
}

// TestActionsNeverRetried: actions may have side effects, so a failing
// action dispatch must issue exactly one POST even with retry enabled.
func TestActionsNeverRetried(t *testing.T) {
	f := &faulty{down: true}
	g, _, hub, _ := newResilientGRH(t, f,
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if _, err := g.Dispatch(protocol.Action, awareAction()); err == nil {
		t.Fatal("action dispatch against a down service must fail")
	}
	if calls, posts, _ := f.counts(); calls != 1 || posts != 1 {
		t.Errorf("service saw %d calls (%d POSTs), want exactly 1 action POST", calls, posts)
	}
	if v := counter(hub, "grh_retries_total", "kind", "action"); v != 0 {
		t.Errorf("grh_retries_total{action} = %d, want 0", v)
	}
}

// TestOpaqueActionNeverRetried covers the framework-unaware path: a
// failing opaque action GET must not be replayed either.
func TestOpaqueActionNeverRetried(t *testing.T) {
	f := &faulty{down: true}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	hub := obs.NewHub()
	g := New(WithObs(hub), WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	g.sleep = func(time.Duration) {}
	_, err := g.Dispatch(protocol.Action, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.ActionComponent, ID: "action[1]", Opaque: true, Language: "raw", Service: srv.URL, Text: "do($X)"},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err == nil {
		t.Fatal("opaque action against a down service must fail")
	}
	if calls, _, gets := f.counts(); calls != 1 || gets != 1 {
		t.Errorf("service saw %d calls (%d GETs), want exactly 1", calls, gets)
	}
	if v := counter(hub, "grh_retries_total", "kind", "action"); v != 0 {
		t.Errorf("grh_retries_total{action} = %d, want 0", v)
	}
}

// TestOpaqueQueryRetries: opaque per-tuple GETs are idempotent reads and
// do retry.
func TestOpaqueQueryRetries(t *testing.T) {
	f := &faulty{failNext: 1}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	hub := obs.NewHub()
	g := New(WithObs(hub), WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	g.sleep = func(time.Duration) {}
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Opaque: true, Language: "raw", Service: srv.URL, Text: "q($X)"},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err != nil {
		t.Fatalf("opaque query should succeed via retry: %v", err)
	}
	if calls, _, _ := f.counts(); calls != 2 {
		t.Errorf("service saw %d calls, want 2", calls)
	}
	if v := counter(hub, "grh_retries_total", "kind", "query"); v != 1 {
		t.Errorf("grh_retries_total{query} = %d, want 1", v)
	}
}

// TestBreakerTripAndRecover drives the full closed → open → half-open →
// closed cycle: a persistently failing endpoint trips the breaker, load
// is shed without touching the service, and after the cool-down a probe
// closes the circuit again.
func TestBreakerTripAndRecover(t *testing.T) {
	f := &faulty{down: true}
	g, srv, hub, clk := newResilientGRH(t, f,
		WithBreaker(BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute}))
	gauge := func() float64 {
		return hub.Metrics().GaugeVec("grh_breaker_state", "", "endpoint").With(srv.URL).Value()
	}

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := g.Dispatch(protocol.Query, awareQuery()); err == nil {
			t.Fatal("dispatch against a down service must fail")
		}
	}
	if got := gauge(); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open (%d)", got, BreakerOpen)
	}
	if v := counter(hub, "grh_breaker_open_total", "endpoint", srv.URL); v != 1 {
		t.Errorf("grh_breaker_open_total = %d, want 1", v)
	}

	// While open, dispatches are shed without reaching the service.
	callsBefore, _, _ := f.counts()
	_, err := g.Dispatch(protocol.Query, awareQuery())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("shed dispatch error = %v, want ErrCircuitOpen", err)
	}
	if calls, _, _ := f.counts(); calls != callsBefore {
		t.Errorf("open breaker still reached the service (%d → %d calls)", callsBefore, calls)
	}
	if v := counter(hub, "grh_errors_total", "reason", "breaker"); v != 1 {
		t.Errorf("grh_errors_total{breaker} = %d, want 1", v)
	}

	// After the cool-down the service has recovered; the half-open probe
	// succeeds and closes the circuit.
	f.mu.Lock()
	f.down = false
	f.mu.Unlock()
	clk.advance(2 * time.Minute)
	if _, err := g.Dispatch(protocol.Query, awareQuery()); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if got := gauge(); got != BreakerClosed {
		t.Errorf("breaker state after recovery = %v, want closed", got)
	}
	if _, err := g.Dispatch(protocol.Query, awareQuery()); err != nil {
		t.Errorf("closed breaker should admit dispatches: %v", err)
	}
}

// TestBreakerHalfOpenFailureReopens: a failing half-open probe sends the
// breaker straight back to open for another cool-down.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	f := &faulty{down: true}
	g, srv, hub, clk := newResilientGRH(t, f,
		WithBreaker(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Minute}))
	if _, err := g.Dispatch(protocol.Query, awareQuery()); err == nil {
		t.Fatal("first dispatch must fail and trip the breaker")
	}
	clk.advance(2 * time.Minute)
	if _, err := g.Dispatch(protocol.Query, awareQuery()); err == nil {
		t.Fatal("half-open probe against a down service must fail")
	}
	if got := hub.Metrics().GaugeVec("grh_breaker_state", "", "endpoint").With(srv.URL).Value(); got != BreakerOpen {
		t.Errorf("breaker state after failed probe = %v, want open", got)
	}
	if v := counter(hub, "grh_breaker_open_total", "endpoint", srv.URL); v != 2 {
		t.Errorf("grh_breaker_open_total = %d, want 2 (initial trip + failed probe)", v)
	}
	// Still shedding during the second cool-down.
	if _, err := g.Dispatch(protocol.Query, awareQuery()); !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("dispatch during second cool-down = %v, want ErrCircuitOpen", err)
	}
}

// TestBreakerDoesNotRetryPastOpen: with retry and breaker combined, a
// breaker that trips mid-retry stops the retry loop instead of sleeping
// through attempts that would be shed anyway.
func TestBreakerRetryInteraction(t *testing.T) {
	f := &faulty{down: true}
	g, _, hub, _ := newResilientGRH(t, f,
		WithRetry(RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond}),
		WithBreaker(BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute}))
	_, err := g.Dispatch(protocol.Query, awareQuery())
	if err == nil {
		t.Fatal("dispatch must fail")
	}
	// The breaker tripped after 2 failed attempts; the third admission is
	// refused, so the service saw exactly the threshold number of calls.
	if calls, _, _ := f.counts(); calls != 2 {
		t.Errorf("service saw %d calls, want 2 (breaker stops the retry loop)", calls)
	}
	if v := counter(hub, "grh_errors_total", "reason", "breaker"); v != 1 {
		t.Errorf("grh_errors_total{breaker} = %d, want 1", v)
	}
}

// TestSetClientConcurrentWithDispatch: SetClient must not race with
// in-flight dispatches reading the client (run under -race).
func TestSetClientConcurrentWithDispatch(t *testing.T) {
	f := &faulty{}
	g, _, _, _ := newResilientGRH(t, f)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := g.Dispatch(protocol.Query, awareQuery()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		g.SetClient(&http.Client{Timeout: DefaultTimeout})
	}
	close(stop)
	wg.Wait()
}

// TestTruncateRuneBoundary: truncation must never slice mid-rune.
func TestTruncateRuneBoundary(t *testing.T) {
	cases := []struct {
		s    string
		n    int
		want string
	}{
		{"héllo", 2, "h…"},  // é is 2 bytes starting at index 1
		{"héllo", 3, "hé…"}, // boundary exactly after é
		{"ascii", 10, "ascii"},
		{"日本語", 4, "日…"}, // each rune is 3 bytes
		{"日本語", 3, "日…"},
		{"日本語", 2, "…"},
	}
	for _, c := range cases {
		got := truncate(c.s, c.n)
		if got != c.want {
			t.Errorf("truncate(%q, %d) = %q, want %q", c.s, c.n, got, c.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("truncate(%q, %d) = %q is not valid UTF-8", c.s, c.n, got)
		}
	}
}

// TestTruncateMultiByteHTTPBody: an error message carrying a truncated
// multi-byte HTTP body stays valid UTF-8 end to end.
func TestTruncateMultiByteHTTPBody(t *testing.T) {
	var body string
	for len(body) < 400 {
		body += "納車納車納車納車"
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, body, http.StatusInternalServerError)
	}))
	defer srv.Close()
	g := New()
	g.Register(Descriptor{Language: "http://multibyte/", FrameworkAware: true, Endpoint: srv.URL})
	_, err := g.Dispatch(protocol.Query, Component{
		Rule:     "r",
		Comp:     ruleml.Component{Kind: ruleml.QueryComponent, Language: "http://multibyte/", Expression: xmltree.NewElement("http://multibyte/", "q")},
		Bindings: bindings.NewRelation(),
	})
	if err == nil {
		t.Fatal("dispatch must fail with HTTP 500")
	}
	if !utf8.ValidString(err.Error()) {
		t.Errorf("error message is not valid UTF-8: %q", err.Error())
	}
}

// TestRetryBackoffSchedule pins the exponential backoff shape without
// jitter: base, 2×base, 4×base, capped at MaxDelay.
func TestRetryBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
	want := []time.Duration{100, 200, 300, 300}
	for i, w := range want {
		if got := p.backoff(i); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Jitter stays within ±Jitter of the nominal value.
	pj := RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := pj.backoff(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms,150ms]", d)
		}
	}
}
