// Answer cache and request coalescing for the GRH dispatch path. Under
// the paper's set-of-tuples semantics (Section 4, Figs. 8/11) a query or
// test evaluation is a pure function of (expression, input bindings), so
// identical dispatches may share one answer: a size- and TTL-bounded LRU
// cache short-circuits repeats, and a singleflight group collapses N
// concurrent identical dispatches into one upstream request. Only the
// idempotent request kinds participate (queries and tests — never
// actions, mirroring the retry idempotency rule of the resilience
// layer). Cached answers are defensively deep-copied on every hit, so a
// relation handed to one rule instance is never aliased into another.

package grh

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/protocol"
)

// DefaultCacheTTL bounds how long a cached answer may be served when the
// policy does not set its own TTL.
const DefaultCacheTTL = 30 * time.Second

// CachePolicy configures the GRH answer cache. The zero value disables
// caching (and with it request coalescing).
type CachePolicy struct {
	// MaxEntries bounds the cache size; the least recently used entry is
	// evicted beyond it. Values ≤ 0 disable the cache.
	MaxEntries int
	// TTL bounds how long an answer may be served after it was produced
	// — the staleness window for queries over data that actions may have
	// changed since. DefaultCacheTTL when 0.
	TTL time.Duration
}

// DefaultCachePolicy is a sane starting point: 4096 entries, 30s TTL.
var DefaultCachePolicy = CachePolicy{MaxEntries: 4096, TTL: DefaultCacheTTL}

// Enabled reports whether the policy caches at all.
func (p CachePolicy) Enabled() bool { return p.MaxEntries > 0 }

func (p CachePolicy) ttl() time.Duration {
	if p.TTL <= 0 {
		return DefaultCacheTTL
	}
	return p.TTL
}

// WithCache enables the answer cache (and singleflight coalescing) for
// idempotent dispatches. A policy with MaxEntries ≤ 0 keeps both
// disabled.
func WithCache(p CachePolicy) Option {
	return func(g *GRH) {
		if p.Enabled() {
			g.cache = newAnswerCache(p)
			g.flights = &flightGroup{m: map[string]*flight{}}
		} else {
			g.cache = nil
			g.flights = nil
		}
	}
}

// --- cache key ---------------------------------------------------------------

// cacheKey digests everything that determines a query/test answer under
// the set-of-tuples semantics: the tenant, the request kind, the
// component language and kind, the serialized component expression (or
// the opaque text and its pinned service), and the canonicalized input
// relation. The rule id is deliberately absent — identical components of
// different rules share answers; the requester's rule/component ids are
// stamped back onto every copy served. The tenant is deliberately
// present: tenants may back the same expression with different data, so
// an answer computed for one tenant must never be served to another.
func cacheKey(kind protocol.RequestKind, c Component) string {
	h := sha256.New()
	sep := []byte{0xff}
	h.Write([]byte(c.Tenant))
	h.Write(sep)
	h.Write([]byte(kind))
	h.Write(sep)
	h.Write([]byte(c.Comp.Language))
	h.Write(sep)
	h.Write([]byte(c.Comp.Kind))
	h.Write(sep)
	if c.Comp.Opaque {
		h.Write([]byte("opaque\x00" + c.Comp.Text + "\x00" + c.Comp.Service))
	} else if c.Comp.Expression != nil {
		h.Write([]byte(c.Comp.Expression.String()))
	}
	h.Write(sep)
	h.Write([]byte(canonicalRelation(c.Bindings)))
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalRelation renders a relation order-insensitively: the sorted
// canonical forms of its tuples. Relations already eliminate duplicates,
// so equal relations always canonicalize identically.
func canonicalRelation(r *bindings.Relation) string {
	if r == nil {
		return ""
	}
	keys := make([]string, 0, r.Size())
	for _, t := range r.Tuples() {
		keys = append(keys, canonicalTuple(t))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x02")
}

func canonicalTuple(t bindings.Tuple) string {
	vars := t.Vars()
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = v + "\x00" + canonicalValue(t[v])
	}
	return strings.Join(parts, "\x01")
}

// canonicalValue is stricter than Value.Key: values of different kinds —
// or XML fragments differing anywhere in structure, not just in text
// content — never share a canonical form, so the cache can never serve
// an answer produced for a merely join-equal input. The cost is at worst
// a spurious miss.
func canonicalValue(v bindings.Value) string {
	if v.Kind() == bindings.XML {
		return "xml\x00" + v.Node().String()
	}
	return v.Kind().String() + "\x00" + v.AsString()
}

// --- LRU + TTL store ---------------------------------------------------------

// answerCache is the size- and TTL-bounded LRU store. It holds private
// deep copies; callers clone on the way out, so nothing the cache owns
// ever escapes.
type answerCache struct {
	policy CachePolicy

	mu        sync.Mutex
	lru       *list.List // front = most recently used; values are *cacheEntry
	entries   map[string]*list.Element
	evictions int64 // guarded by mu; mirrored into the metric by the GRH
}

type cacheEntry struct {
	key     string
	answer  *protocol.Answer
	expires time.Time
}

func newAnswerCache(p CachePolicy) *answerCache {
	return &answerCache{policy: p, lru: list.New(), entries: map[string]*list.Element{}}
}

// get returns the stored answer for key, refreshing its recency, plus
// the number of evictions the lookup caused (a TTL-expired entry is
// removed and counts as one). The returned answer is the cache's private
// copy — callers must clone before use.
func (c *answerCache) get(key string, now time.Time) (*protocol.Answer, bool, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false, 0
	}
	e := el.Value.(*cacheEntry)
	if now.After(e.expires) {
		c.removeLocked(el)
		c.evictions++
		return nil, false, 1
	}
	c.lru.MoveToFront(el)
	return e.answer, true, 0
}

// put stores a (deep-copied) answer, evicting least recently used
// entries beyond the size bound. It returns the number of evictions the
// call caused.
func (c *answerCache) put(key string, a *protocol.Answer, now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).answer = a
		el.Value.(*cacheEntry).expires = now.Add(c.policy.ttl())
		c.lru.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, answer: a, expires: now.Add(c.policy.ttl())})
	evicted := 0
	for c.lru.Len() > c.policy.MaxEntries {
		c.removeLocked(c.lru.Back())
		c.evictions++
		evicted++
	}
	return evicted
}

func (c *answerCache) removeLocked(el *list.Element) {
	delete(c.entries, el.Value.(*cacheEntry).key)
	c.lru.Remove(el)
}

// len returns the number of live entries.
func (c *answerCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// --- singleflight ------------------------------------------------------------

// flight is one in-progress dispatch other identical dispatches wait on.
// The leader writes answer/err before closing done; the channel close
// publishes them to every waiter.
type flight struct {
	done   chan struct{}
	answer *protocol.Answer // sanitized deep copy, cloned per waiter
	err    error
}

// flightGroup coalesces concurrent identical dispatches onto one flight.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key and whether the caller is its leader
// (first arrival, responsible for executing and completing it).
func (fg *flightGroup) join(key string) (*flight, bool) {
	fg.mu.Lock()
	defer fg.mu.Unlock()
	if f, ok := fg.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	fg.m[key] = f
	return f, true
}

// complete publishes the leader's outcome and releases every waiter.
func (fg *flightGroup) complete(key string, f *flight, a *protocol.Answer, err error) {
	f.answer, f.err = a, err
	fg.mu.Lock()
	delete(fg.m, key)
	fg.mu.Unlock()
	close(f.done)
}

// --- dispatch integration ----------------------------------------------------

// answerFor serves one caller from a cache- or flight-owned answer: a
// deep copy (no aliasing of tuples, values or XML fragments across rule
// instances) re-addressed to the requesting rule and component.
func answerFor(stored *protocol.Answer, c Component) *protocol.Answer {
	a := stored.Clone()
	a.RuleID = c.Rule
	a.Component = c.Comp.ID
	return a
}

// sanitizeForCache deep-copies an answer for storage, stripping the
// server-side trace: replaying another instance's spans into a later
// trace would corrupt it, and a cache hit has no server side.
func sanitizeForCache(a *protocol.Answer) *protocol.Answer {
	s := a.Clone()
	s.Trace, s.TraceID, s.TraceParent = nil, "", ""
	return s
}

// dispatchCoalesced is the throughput front door for idempotent kinds
// when the cache is enabled: answer cache lookup, then singleflight
// coalescing around the (possibly partitioned) upstream dispatch.
func (g *GRH) dispatchCoalesced(kind protocol.RequestKind, c Component) (*protocol.Answer, error) {
	key := cacheKey(kind, c)
	start := time.Now()
	stored, ok, expired := g.cache.get(key, g.now())
	g.met.cacheEvictions.Add(int64(expired))
	if ok {
		g.met.requests.With(string(kind)).Inc()
		g.met.cacheHits.Inc()
		a := answerFor(stored, c)
		g.met.dispatch.With(langLabel(c.Comp.Language), "cache").Observe(time.Since(start).Seconds())
		g.addCacheSpan(c, "hit", len(a.Rows), start)
		return a, nil
	}
	f, leader := g.flights.join(key)
	if !leader {
		<-f.done
		g.met.requests.With(string(kind)).Inc()
		g.met.coalesced.Inc()
		g.met.dispatch.With(langLabel(c.Comp.Language), "coalesced").Observe(time.Since(start).Seconds())
		if f.err != nil {
			return nil, f.err
		}
		g.addCacheSpan(c, "coalesced", len(f.answer.Rows), start)
		return answerFor(f.answer, c), nil
	}
	g.met.cacheMisses.Inc()
	a, err := g.dispatchPartitioned(kind, c)
	if err == nil {
		stored = sanitizeForCache(a)
		evicted := g.cache.put(key, stored, g.now())
		g.met.cacheEvictions.Add(int64(evicted))
		g.addCacheSpan(c, "miss", len(a.Rows), start)
	}
	g.flights.complete(key, f, stored, err)
	return a, err
}

// addCacheSpan records the cache layer's verdict on a traced dispatch.
func (g *GRH) addCacheSpan(c Component, mode string, rows int, start time.Time) {
	if c.Trace == nil {
		return
	}
	in := 0
	if c.Bindings != nil {
		in = c.Bindings.Size()
	}
	c.Trace.AddSpan(traceSpan(c, "cache", mode, in, rows, start))
}
