package grh

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

// TestErrorTaxonomy exercises every grh_errors_total reason with an
// injected fault, asserting both the returned error and the counter
// increment. One subtest per reason so a regression names the exact
// classification it broke.
func TestErrorTaxonomy(t *testing.T) {
	awareComp := func(lang string) Component {
		return Component{
			Rule:     "r",
			Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "query[1]", Language: lang, Expression: xmltree.NewElement(lang, "q")},
			Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
		}
	}

	cases := []struct {
		reason  string
		wantErr string
		// setup registers endpoints/services on g and returns the
		// dispatch to run; srv may be nil when no server is needed.
		setup func(t *testing.T, g *GRH) func() error
	}{
		{
			reason:  "resolve",
			wantErr: "no processor for language",
			setup: func(t *testing.T, g *GRH) func() error {
				return func() error {
					_, err := g.Dispatch(protocol.Query, awareComp("http://nowhere/"))
					return err
				}
			},
		},
		{
			reason:  "service",
			wantErr: "boom",
			setup: func(t *testing.T, g *GRH) func() error {
				g.Register(Descriptor{Language: "http://local/", FrameworkAware: true,
					Local: ServiceFunc(func(*protocol.Request) (*protocol.Answer, error) {
						return nil, fmt.Errorf("boom")
					})})
				return func() error {
					_, err := g.Dispatch(protocol.Query, awareComp("http://local/"))
					return err
				}
			},
		},
		{
			reason:  "timeout",
			wantErr: "POST",
			setup: func(t *testing.T, g *GRH) func() error {
				block := make(chan struct{})
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					select {
					case <-block:
					case <-r.Context().Done():
					}
				}))
				t.Cleanup(func() { close(block); srv.Close() })
				g.SetClient(&http.Client{Timeout: 30 * time.Millisecond})
				g.Register(Descriptor{Language: "http://slow/", FrameworkAware: true, Endpoint: srv.URL})
				return func() error {
					_, err := g.Dispatch(protocol.Query, awareComp("http://slow/"))
					return err
				}
			},
		},
		{
			reason:  "transport",
			wantErr: "POST",
			setup: func(t *testing.T, g *GRH) func() error {
				// A server that is already gone: connection refused.
				srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
				url := srv.URL
				srv.Close()
				g.Register(Descriptor{Language: "http://gone/", FrameworkAware: true, Endpoint: url})
				return func() error {
					_, err := g.Dispatch(protocol.Query, awareComp("http://gone/"))
					return err
				}
			},
		},
		{
			reason:  "http-status",
			wantErr: "HTTP 500",
			setup: func(t *testing.T, g *GRH) func() error {
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					http.Error(w, "broken", http.StatusInternalServerError)
				}))
				t.Cleanup(srv.Close)
				g.Register(Descriptor{Language: "http://broken/", FrameworkAware: true, Endpoint: srv.URL})
				return func() error {
					_, err := g.Dispatch(protocol.Query, awareComp("http://broken/"))
					return err
				}
			},
		},
		{
			reason:  "decode",
			wantErr: "bad answer",
			setup: func(t *testing.T, g *GRH) func() error {
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					fmt.Fprint(w, "this is not an answers document")
				}))
				t.Cleanup(srv.Close)
				g.Register(Descriptor{Language: "http://garbage/", FrameworkAware: true, Endpoint: srv.URL})
				return func() error {
					_, err := g.Dispatch(protocol.Query, awareComp("http://garbage/"))
					return err
				}
			},
		},
		{
			reason:  "config",
			wantErr: "framework-unaware",
			setup: func(t *testing.T, g *GRH) func() error {
				return func() error {
					_, err := g.Dispatch(protocol.RegisterEvent, Component{
						Rule:     "r",
						Comp:     ruleml.Component{Kind: ruleml.EventComponent, Opaque: true, Language: "x", Service: "http://localhost:1/", Text: "e"},
						Bindings: bindings.NewRelation(),
					})
					return err
				}
			},
		},
		{
			reason:  "breaker",
			wantErr: "circuit open",
			setup: func(t *testing.T, g *GRH) func() error {
				srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
				url := srv.URL
				srv.Close()
				g.breakers = newBreakerSet(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
				g.Register(Descriptor{Language: "http://shed/", FrameworkAware: true, Endpoint: url})
				return func() error {
					// First dispatch trips the breaker (transport error),
					// the second is shed by it.
					g.Dispatch(protocol.Query, awareComp("http://shed/"))
					_, err := g.Dispatch(protocol.Query, awareComp("http://shed/"))
					return err
				}
			},
		},
	}

	for _, c := range cases {
		t.Run(c.reason, func(t *testing.T) {
			hub := obs.NewHub()
			g := New(WithObs(hub))
			dispatch := c.setup(t, g)
			err := dispatch()
			if err == nil {
				t.Fatalf("dispatch must fail with a %s error", c.reason)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %q, want substring %q", err, c.wantErr)
			}
			got := hub.Metrics().CounterVec("grh_errors_total", "", "reason").With(c.reason).Value()
			if got != 1 {
				t.Errorf("grh_errors_total{%s} = %d, want 1", c.reason, got)
			}
		})
	}
}

// TestKindRestrictionAppliesToOpaqueServices pins the fix for a dispatch
// ordering bug: the resolved descriptor's kind restriction used to be
// checked only after the framework-aware branch, so a framework-unaware
// (opaque) processor registered for queries could still be sent action
// dispatches. The restriction must hold on every resolution path.
func TestKindRestrictionAppliesToOpaqueServices(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprint(w, "<ok/>")
	}))
	defer srv.Close()

	hub := obs.NewHub()
	g := New(WithObs(hub))
	const lang = "http://test/opaque-query-only"
	if err := g.Register(Descriptor{
		Language:       lang,
		Name:           "query-only opaque store",
		Kinds:          []ruleml.ComponentKind{ruleml.QueryComponent},
		FrameworkAware: false,
		Endpoint:       srv.URL,
	}); err != nil {
		t.Fatal(err)
	}
	action := func(service string) Component {
		return Component{
			Rule: "r",
			Comp: ruleml.Component{
				Kind: ruleml.ActionComponent, ID: "action[1]",
				Language: lang, Opaque: true, Service: service,
				Text: "//do",
			},
			Bindings: bindings.Unit(),
		}
	}

	t.Run("resolved descriptor", func(t *testing.T) {
		_, err := g.Dispatch(protocol.Action, action(""))
		if err == nil || !strings.Contains(err.Error(), "does not accept action components") {
			t.Fatalf("err = %v, want kind rejection", err)
		}
	})
	t.Run("pinned service uri", func(t *testing.T) {
		_, err := g.Dispatch(protocol.Action, action(srv.URL))
		if err == nil || !strings.Contains(err.Error(), "does not accept action components") {
			t.Fatalf("err = %v, want kind rejection", err)
		}
	})
	t.Run("allowed kind still dispatches", func(t *testing.T) {
		q := action("")
		q.Comp.Kind = ruleml.QueryComponent
		q.Comp.ID = "query[1]"
		if _, err := g.Dispatch(protocol.Query, q); err != nil {
			t.Fatalf("query dispatch: %v", err)
		}
	})
	if hits != 1 {
		t.Fatalf("opaque endpoint saw %d requests, want 1 (only the allowed query)", hits)
	}
	if got := hub.Metrics().CounterVec("grh_errors_total", "", "reason").With("resolve").Value(); got != 2 {
		t.Errorf("grh_errors_total{reason=resolve} = %d, want 2", got)
	}
}
