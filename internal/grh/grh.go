// Package grh implements the Generic Request Handler of Section 4.4: the
// mediator between the ECA engine and the heterogeneous component language
// services. It inspects the language (namespace URI) of a component,
// resolves an appropriate processor from its registry, and forwards the
// request in the form the processor understands:
//
//   - framework-aware services receive the full eca:request envelope
//     (in-process call or HTTP POST) and answer with log:answers;
//   - framework-unaware (opaque) services receive a raw query string via
//     HTTP GET, once per input tuple, with variables substituted by their
//     values; the GRH re-wraps their raw results as functional results —
//     unless the service happens to return a log:answers document itself
//     (Fig. 10's "faked" framework awareness), which is decoded directly.
package grh

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/bindings"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

// DefaultTimeout bounds every HTTP call to a remote component service
// unless overridden with WithTimeout or SetClient.
const DefaultTimeout = 10 * time.Second

// Service is the in-process interface of a framework-aware component
// language service. Event services deliver detections asynchronously
// through the sink they were constructed with and answer registration
// requests with an empty Answer.
type Service interface {
	Handle(req *protocol.Request) (*protocol.Answer, error)
}

// ServiceFunc adapts a function to the Service interface.
type ServiceFunc func(req *protocol.Request) (*protocol.Answer, error)

// Handle calls f.
func (f ServiceFunc) Handle(req *protocol.Request) (*protocol.Answer, error) { return f(req) }

// Descriptor describes one registered language processor, mirroring the
// language resource descriptions of Fig. 1 (language → processor →
// service).
type Descriptor struct {
	// Language is the namespace URI the processor implements.
	Language string
	// Name is a human-readable label ("SNOOP detection service").
	Name string
	// Kinds lists the component kinds the processor accepts.
	Kinds []ruleml.ComponentKind
	// FrameworkAware services understand eca:request/log:answers; the
	// others get opaque mediation.
	FrameworkAware bool
	// Local is the in-process implementation; when nil, Endpoint is used.
	Local Service
	// Endpoint is the HTTP URL of a remote processor.
	Endpoint string
}

// TraceFunc observes GRH traffic for the message-flow reproductions:
// direction is "→" (request) or "←" (answer), peer names the service.
type TraceFunc func(direction, peer string, payload *xmltree.Node)

// GRH is the Generic Request Handler. Safe for concurrent use.
type GRH struct {
	mu       sync.RWMutex
	byLang   map[string]*Descriptor
	defaults map[ruleml.ComponentKind]string // kind → language URI fallback
	client   *http.Client
	timeout  time.Duration
	trace    TraceFunc
	met      metrics
	log      *obs.Logger

	retry    RetryPolicy
	breakers *breakerSet // nil: circuit breaking disabled

	// Throughput layer: answer cache + singleflight coalescing (nil:
	// disabled together) and partitioned parallel dispatch.
	cache     *answerCache
	flights   *flightGroup
	partition PartitionPolicy

	// Clock and sleep hooks, replaced in tests to make retry/breaker/
	// cache timing deterministic.
	now   func() time.Time
	sleep func(time.Duration)
}

// metrics are the GRH's observability instruments; all nil-safe, so an
// uninstrumented GRH pays only nil receiver checks.
type metrics struct {
	requests     *obs.CounterVec   // grh_requests_total{kind}
	dispatch     *obs.HistogramVec // grh_dispatch_seconds{language,mode}
	errors       *obs.CounterVec   // grh_errors_total{reason}
	services     *obs.CounterVec   // service_requests_total{kind} (in-process boundary)
	retries      *obs.CounterVec   // grh_retries_total{kind}
	breakerState *obs.GaugeVec     // grh_breaker_state{endpoint}
	breakerOpen  *obs.CounterVec   // grh_breaker_open_total{endpoint}

	cacheHits      *obs.Counter   // grh_cache_hits_total
	cacheMisses    *obs.Counter   // grh_cache_misses_total
	cacheEvictions *obs.Counter   // grh_cache_evictions_total
	coalesced      *obs.Counter   // grh_coalesced_total
	shards         *obs.Counter   // grh_shards_total
	shardFanout    *obs.Histogram // grh_shard_fanout
}

// shardFanoutBuckets are the grh_shard_fanout histogram bounds: shard
// counts, not latencies.
var shardFanoutBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

func newMetrics(h *obs.Hub) metrics {
	r := h.Metrics()
	return metrics{
		requests:     r.CounterVec("grh_requests_total", "Component requests dispatched by the Generic Request Handler, by request kind.", "kind"),
		dispatch:     r.HistogramVec("grh_dispatch_seconds", "GRH dispatch latency by component language and mediation mode (local, aware, opaque).", nil, "language", "mode"),
		errors:       r.CounterVec("grh_errors_total", "GRH dispatch failures by reason (resolve, service, timeout, transport, http-status, decode, config, breaker).", "reason"),
		services:     r.CounterVec("service_requests_total", "Requests handled by component language services, by request kind.", "kind"),
		retries:      r.CounterVec("grh_retries_total", "GRH dispatch retries by request kind (idempotent kinds only).", "kind"),
		breakerState: r.GaugeVec("grh_breaker_state", "Circuit breaker state per service endpoint (0 closed, 1 half-open, 2 open).", "endpoint"),
		breakerOpen:  r.CounterVec("grh_breaker_open_total", "Circuit breaker trips (transitions to open) per service endpoint.", "endpoint"),

		cacheHits:      r.Counter("grh_cache_hits_total", "GRH answer cache hits (idempotent dispatches served without an upstream request)."),
		cacheMisses:    r.Counter("grh_cache_misses_total", "GRH answer cache misses (idempotent dispatches that went upstream)."),
		cacheEvictions: r.Counter("grh_cache_evictions_total", "GRH answer cache entries removed by LRU pressure or TTL expiry."),
		coalesced:      r.Counter("grh_coalesced_total", "Concurrent identical dispatches coalesced onto another dispatch's upstream request."),
		shards:         r.Counter("grh_shards_total", "Shards dispatched by partitioned parallel dispatch."),
		shardFanout:    r.Histogram("grh_shard_fanout", "Shard fan-out per partitioned dispatch (number of concurrent shards).", shardFanoutBuckets),
	}
}

// Option configures a GRH at construction time.
type Option func(*GRH)

// WithTimeout bounds HTTP calls to remote services (applies to the GRH's
// own client; ignored after SetClient). d ≤ 0 keeps DefaultTimeout.
func WithTimeout(d time.Duration) Option {
	return func(g *GRH) {
		if d > 0 {
			g.timeout = d
		}
	}
}

// WithClient replaces the HTTP client used for remote services.
func WithClient(c *http.Client) Option { return func(g *GRH) { g.client = c } }

// WithObs installs the observability hub the GRH reports metrics to.
func WithObs(h *obs.Hub) Option { return func(g *GRH) { g.met = newMetrics(h) } }

// WithLog installs the structured logger dispatch failures, retries and
// breaker transitions are reported to (nil-safe: a nil logger discards).
func WithLog(l *obs.Logger) Option { return func(g *GRH) { g.log = l } }

// WithRetry enables retry with exponential backoff for idempotent
// dispatches (queries and tests). A policy with MaxAttempts ≤ 1 keeps
// retry disabled.
func WithRetry(p RetryPolicy) Option { return func(g *GRH) { g.retry = p } }

// WithBreaker enables the per-endpoint circuit breaker. A policy with
// FailureThreshold ≤ 0 keeps circuit breaking disabled.
func WithBreaker(p BreakerPolicy) Option {
	return func(g *GRH) {
		if p.Enabled() {
			g.breakers = newBreakerSet(p)
		} else {
			g.breakers = nil
		}
	}
}

// New returns an empty GRH. Remote calls use a dedicated HTTP client with
// DefaultTimeout (never http.DefaultClient, which has none).
func New(opts ...Option) *GRH {
	g := &GRH{
		byLang:   map[string]*Descriptor{},
		defaults: map[ruleml.ComponentKind]string{},
		timeout:  DefaultTimeout,
		now:      time.Now,
		sleep:    time.Sleep,
	}
	for _, o := range opts {
		o(g)
	}
	if g.client == nil {
		g.client = &http.Client{Timeout: g.timeout}
	}
	return g
}

// SetClient replaces the HTTP client used for remote services. Safe to
// call concurrently with Dispatch.
func (g *GRH) SetClient(c *http.Client) {
	g.mu.Lock()
	g.client = c
	g.mu.Unlock()
}

// httpClient returns the current HTTP client under the read lock; every
// remote call resolves the client through here so SetClient never races
// with an in-flight Dispatch.
func (g *GRH) httpClient() *http.Client {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.client
}

// SetTrace installs a traffic observer (nil disables tracing).
func (g *GRH) SetTrace(t TraceFunc) {
	g.mu.Lock()
	g.trace = t
	g.mu.Unlock()
}

func (g *GRH) emitTrace(direction, peer string, payload *xmltree.Node) {
	g.mu.RLock()
	t := g.trace
	g.mu.RUnlock()
	if t != nil {
		t(direction, peer, payload)
	}
}

// Register adds a language processor to the registry, replacing any
// previous registration for the same language.
func (g *GRH) Register(d Descriptor) error {
	if d.Language == "" {
		return fmt.Errorf("grh: descriptor without language URI")
	}
	if d.Local == nil && d.Endpoint == "" {
		return fmt.Errorf("grh: descriptor %q has neither a local service nor an endpoint", d.Language)
	}
	g.mu.Lock()
	g.byLang[d.Language] = &d
	g.mu.Unlock()
	return nil
}

// SetDefault makes the given language the fallback processor for a
// component kind, used when a component's expression is a bare
// domain-level pattern (e.g. an atomic event pattern with no event-language
// markup, which goes to the Atomic Event Matcher per Section 4.2).
func (g *GRH) SetDefault(kind ruleml.ComponentKind, language string) {
	g.mu.Lock()
	g.defaults[kind] = language
	g.mu.Unlock()
}

// Languages returns the registered language URIs, sorted.
func (g *GRH) Languages() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.byLang))
	for l := range g.byLang {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the descriptor for a language URI.
func (g *GRH) Lookup(language string) (*Descriptor, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d, ok := g.byLang[language]
	return d, ok
}

// resolve finds the processor for a request: explicit language, else the
// kind default.
func (g *GRH) resolve(kind ruleml.ComponentKind, language string) (*Descriptor, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if language != "" {
		if d, ok := g.byLang[language]; ok {
			return d, nil
		}
	}
	if def, ok := g.defaults[kind]; ok {
		if d, ok := g.byLang[def]; ok {
			return d, nil
		}
	}
	if language == "" {
		return nil, fmt.Errorf("grh: no default %s processor registered", kind)
	}
	return nil, fmt.Errorf("grh: no processor for language %s", language)
}

// Component carries what the GRH needs to evaluate one rule component: the
// parsed component plus the rule id and input bindings.
type Component struct {
	Rule     string
	Comp     ruleml.Component
	Bindings *bindings.Relation
	// Tenant is the namespace the dispatch acts within (empty = default
	// tenant). It rides on the request envelope so multi-tenant event
	// services route registrations to the right tenant's space, and it
	// partitions the answer cache.
	Tenant string
	// ReplyTo is the detection callback URL for event registrations
	// handled by remote services.
	ReplyTo string
	// Trace is the live rule-instance trace this dispatch belongs to;
	// its id travels in the X-ECA-Trace-Id header of every outbound HTTP
	// request so services can report correlated server-side spans. Nil
	// (untraced) is always valid.
	Trace *obs.Instance
}

// Dispatch evaluates a component request and returns the service's answer.
// Event registrations return an empty answer; detections arrive through the
// event service's sink (in-process) or the ReplyTo callback (remote).
//
// Idempotent request kinds (queries and tests) additionally pass through
// the throughput layer when configured: the answer cache and singleflight
// coalescing (WithCache) and partitioned parallel dispatch
// (WithPartition). Actions and event (un)registrations are never cached,
// coalesced or sharded — they may have side effects.
func (g *GRH) Dispatch(kind protocol.RequestKind, c Component) (*protocol.Answer, error) {
	if !retryableKind(kind) || (g.cache == nil && !g.partition.Enabled()) {
		return g.dispatchDirect(kind, c)
	}
	if g.cache == nil {
		return g.dispatchPartitioned(kind, c)
	}
	return g.dispatchCoalesced(kind, c)
}

// dispatchDirect performs one uncached, unsharded dispatch: resolve the
// processor and forward the request in the form it understands.
func (g *GRH) dispatchDirect(kind protocol.RequestKind, c Component) (*protocol.Answer, error) {
	g.met.requests.With(string(kind)).Inc()
	start := time.Now()
	mode := "aware"
	defer func() {
		g.met.dispatch.With(langLabel(c.Comp.Language), mode).Observe(obs.Since(start))
	}()
	req := &protocol.Request{
		Kind:      kind,
		RuleID:    c.Rule,
		Component: c.Comp.ID,
		Language:  c.Comp.Language,
		Bindings:  c.Bindings,
		ReplyTo:   c.ReplyTo,
		Tenant:    c.Tenant,
	}
	if c.Comp.Opaque {
		// Directly addressed framework-unaware service (uri attribute)?
		if c.Comp.Service != "" {
			if d, ok := g.Lookup(c.Comp.Language); !ok || !d.FrameworkAware {
				if ok && !kindAllowed(d, c.Comp.Kind) {
					return nil, g.kindRejected(d, c)
				}
				mode = "opaque"
				return g.opaqueMediate(kind, c)
			}
		}
		// Opaque text for a registered language: wrap as an expression the
		// service's own parser handles.
		expr := xmltree.NewElement(protocol.ECANS, "opaque")
		expr.SetAttr("", "language", c.Comp.Language)
		expr.AppendText(c.Comp.Text)
		req.Expression = expr
	} else {
		req.Expression = c.Comp.Expression
	}
	d, err := g.resolve(c.Comp.Kind, c.Comp.Language)
	if err != nil {
		if c.Comp.Opaque && c.Comp.Service != "" {
			// No registered processor: fall back to opaque mediation
			// against the pinned endpoint.
			mode = "opaque"
			return g.opaqueMediate(kind, c)
		}
		g.met.errors.With("resolve").Inc()
		g.log.Error("grh dispatch failed", "reason", "resolve",
			obs.FieldTraceID, c.Trace.ID(), obs.FieldRule, c.Rule,
			obs.FieldComponent, c.Comp.ID, "error", err.Error())
		return nil, err
	}
	// The kind restriction applies to every resolved descriptor —
	// framework-unaware ones included, so a query-only opaque service can
	// never be sent an action dispatch.
	if !kindAllowed(d, c.Comp.Kind) {
		return nil, g.kindRejected(d, c)
	}
	if !d.FrameworkAware {
		mode = "opaque"
		return g.opaqueMediateVia(kind, c, d.Endpoint)
	}
	if d.Local != nil {
		mode = "local"
		g.met.services.With(string(kind)).Inc()
		g.emitTrace("→", d.name(), protocol.EncodeRequest(req))
		a, err := d.Local.Handle(req)
		if err != nil {
			g.met.errors.With("service").Inc()
			g.log.Error("grh dispatch failed", "reason", "service",
				obs.FieldTraceID, c.Trace.ID(), obs.FieldRule, c.Rule,
				obs.FieldComponent, c.Comp.ID, "service", d.name(), "error", err.Error())
			return nil, fmt.Errorf("grh: %s: %w", d.name(), err)
		}
		g.emitTrace("←", d.name(), protocol.EncodeAnswers(a))
		return a, nil
	}
	return g.httpDispatch(d, req, c.Trace.ID())
}

// langLabel collapses the empty language (bare domain-level components
// handled by a kind default) into a stable metric label.
func langLabel(language string) string {
	if language == "" {
		return "domain"
	}
	return language
}

// countHTTPErr classifies a transport-level error for grh_errors_total,
// separating timeouts (the signal a scaling deployment alerts on) from
// other transport failures.
func (g *GRH) countHTTPErr(err error) {
	if isTimeout(err) {
		g.met.errors.With("timeout").Inc()
		return
	}
	g.met.errors.With("transport").Inc()
}

// isTimeout reports whether err is a client/deadline timeout anywhere in
// its chain.
func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

func (d *Descriptor) name() string {
	if d.Name != "" {
		return d.Name
	}
	return d.Language
}

// kindRejected classifies and logs a dispatch refused because the
// resolved processor does not accept the component's kind.
func (g *GRH) kindRejected(d *Descriptor, c Component) error {
	g.met.errors.With("resolve").Inc()
	g.log.Error("grh dispatch failed", "reason", "resolve",
		obs.FieldTraceID, c.Trace.ID(), obs.FieldRule, c.Rule,
		obs.FieldComponent, c.Comp.ID, "service", d.name(),
		"error", fmt.Sprintf("kind %s not accepted", c.Comp.Kind))
	return fmt.Errorf("grh: processor %q does not accept %s components", d.Language, c.Comp.Kind)
}

func kindAllowed(d *Descriptor, k ruleml.ComponentKind) bool {
	if len(d.Kinds) == 0 {
		return true
	}
	for _, kk := range d.Kinds {
		if kk == k {
			return true
		}
	}
	return false
}

// setTraceHeaders stamps the trace-context propagation headers on an
// outbound service request; an empty trace id (untraced dispatch) stamps
// nothing.
func setTraceHeaders(hr *http.Request, traceID, parentSpan string) {
	if traceID == "" {
		return
	}
	hr.Header.Set(protocol.TraceIDHeader, traceID)
	if parentSpan != "" {
		hr.Header.Set(protocol.ParentSpanHeader, parentSpan)
	}
}

// httpDispatch POSTs the request envelope to a framework-aware remote
// service and decodes the log:answers response, with breaker admission
// and retry for idempotent request kinds (see exchange). The dispatch
// carries the rule instance's trace context in the X-ECA-Trace-Id /
// X-ECA-Parent-Span headers; a trace-aware service answers with a
// log:trace element whose server-side spans are passed up to the caller
// for stitching — but only when its echoed traceId matches the id this
// dispatch propagated, so a confused or caching service can never
// pollute another instance's trace.
func (g *GRH) httpDispatch(d *Descriptor, req *protocol.Request, traceID string) (*protocol.Answer, error) {
	payload := protocol.EncodeRequest(req)
	g.emitTrace("→", d.name(), payload)
	body, err := g.exchange(req.Kind, "POST", d.Endpoint, traceID, func(c *http.Client) (*http.Response, error) {
		hr, err := http.NewRequest(http.MethodPost, d.Endpoint, strings.NewReader(payload.String()))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/xml")
		setTraceHeaders(hr, traceID, req.Component)
		return c.Do(hr)
	})
	if err != nil {
		return nil, err
	}
	doc, err := xmltree.ParseString(string(body))
	if err != nil {
		g.met.errors.With("decode").Inc()
		return nil, fmt.Errorf("grh: %s: bad answer: %w", d.Endpoint, err)
	}
	a, err := protocol.DecodeAnswers(doc)
	if err != nil {
		g.met.errors.With("decode").Inc()
		return nil, fmt.Errorf("grh: %s: %w", d.Endpoint, err)
	}
	if a.TraceID != traceID {
		a.Trace, a.TraceID, a.TraceParent = nil, "", ""
	}
	g.emitTrace("←", d.name(), doc)
	return a, nil
}

// opaqueMediate handles an opaque component pinned to a service URI.
func (g *GRH) opaqueMediate(kind protocol.RequestKind, c Component) (*protocol.Answer, error) {
	return g.opaqueMediateVia(kind, c, c.Comp.Service)
}

// opaqueMediateVia implements the framework-unaware protocol of Fig. 9:
// one HTTP GET per input tuple, variables substituted into the query
// string, raw results re-wrapped as functional results. Per-tuple GETs
// get the same breaker admission and retry treatment as aware POSTs.
func (g *GRH) opaqueMediateVia(kind protocol.RequestKind, c Component, endpoint string) (*protocol.Answer, error) {
	if endpoint == "" {
		g.met.errors.With("config").Inc()
		return nil, fmt.Errorf("grh: opaque component %s has no service endpoint", c.Comp.ID)
	}
	if c.Comp.Kind == ruleml.EventComponent {
		g.met.errors.With("config").Inc()
		return nil, fmt.Errorf("grh: event components cannot use framework-unaware services")
	}
	a := &protocol.Answer{RuleID: c.Rule, Component: c.Comp.ID}
	tuples := c.Bindings.Tuples()
	if c.Bindings.Empty() {
		return a, nil
	}
	for _, t := range tuples {
		q := SubstituteVars(c.Comp.Text, t)
		u := endpoint
		if strings.Contains(u, "?") {
			u += "&query=" + url.QueryEscape(q)
		} else {
			u += "?query=" + url.QueryEscape(q)
		}
		g.emitTrace("→", endpoint, traceGet(u, q))
		body, err := g.exchange(kind, "GET", endpoint, c.Trace.ID(), func(cl *http.Client) (*http.Response, error) {
			hr, err := http.NewRequest(http.MethodGet, u, nil)
			if err != nil {
				return nil, err
			}
			setTraceHeaders(hr, c.Trace.ID(), c.Comp.ID)
			return cl.Do(hr)
		})
		if err != nil {
			return nil, err
		}
		rows, err := decodeOpaqueResults(t, string(body))
		if err != nil {
			g.met.errors.With("decode").Inc()
			return nil, fmt.Errorf("grh: %s: %w", endpoint, err)
		}
		a.Rows = append(a.Rows, rows...)
		for _, r := range rows {
			g.emitTrace("←", endpoint, protocol.EncodeAnswers(&protocol.Answer{Rows: []protocol.AnswerRow{r}}))
		}
	}
	return a, nil
}

func traceGet(u, q string) *xmltree.Node {
	n := xmltree.NewElement(protocol.ECANS, "http-get")
	n.SetAttr("", "url", u)
	n.AppendText(q)
	return n
}

// decodeOpaqueResults turns a framework-unaware service's raw response into
// answer rows for one input tuple:
//   - a log:answers document (the Fig. 10 trick) is decoded directly, its
//     tuples joined with the input tuple;
//   - any other XML document yields one functional result per child element
//     of the root (or the root's text when it has no element children);
//   - a non-XML body yields one functional result per non-empty line.
func decodeOpaqueResults(input bindings.Tuple, body string) ([]protocol.AnswerRow, error) {
	trimmed := strings.TrimSpace(body)
	if trimmed == "" {
		return nil, nil
	}
	if strings.HasPrefix(trimmed, "<") {
		doc, err := xmltree.ParseString(trimmed)
		if err != nil {
			return nil, fmt.Errorf("unparsable XML response: %w", err)
		}
		root := doc.Root()
		if root.Name.Space == protocol.LogNS && root.Name.Local == "answers" {
			dec, err := protocol.DecodeAnswers(doc)
			if err != nil {
				return nil, err
			}
			var rows []protocol.AnswerRow
			for _, r := range dec.Rows {
				if !input.Compatible(r.Tuple) {
					continue
				}
				rows = append(rows, protocol.AnswerRow{Tuple: input.Merge(r.Tuple), Results: r.Results})
			}
			return rows, nil
		}
		var results []bindings.Value
		if kids := root.ChildElements(); len(kids) > 0 {
			for _, k := range kids {
				results = append(results, bindings.Fragment(k.Clone()))
			}
		} else {
			results = append(results, bindings.Str(strings.TrimSpace(root.TextContent())))
		}
		return []protocol.AnswerRow{{Tuple: input, Results: results}}, nil
	}
	var results []bindings.Value
	for _, line := range strings.Split(trimmed, "\n") {
		if s := strings.TrimSpace(line); s != "" {
			results = append(results, bindings.Str(s))
		}
	}
	return []protocol.AnswerRow{{Tuple: input, Results: results}}, nil
}

// SubstituteVars replaces $Name occurrences in an opaque query string with
// the values bound in the tuple, longest names first so $OwnCarX never
// hijacks $OwnCar.
func SubstituteVars(q string, t bindings.Tuple) string {
	names := t.Vars()
	sort.Slice(names, func(i, j int) bool { return len(names[i]) > len(names[j]) })
	for _, n := range names {
		q = strings.ReplaceAll(q, "$"+n, t[n].AsString())
	}
	return q
}

// truncate shortens s to at most n bytes, backing up to a rune boundary
// so multi-byte HTTP bodies never yield invalid UTF-8 in error messages.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	return s[:n] + "…"
}
