// Resilience layer of the GRH↔service dispatch path: retry with
// exponential backoff + jitter for idempotent request kinds, and a
// per-endpoint circuit breaker that sheds load while a service is down
// and probes for recovery. Remote component services are the paper's
// whole architecture (every Event/Query/Test/Action component is a
// remote call, Section 4.4), so one flaky language service must not
// stall or kill every rule instance that touches it.

package grh

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// ErrCircuitOpen is wrapped into dispatch errors rejected by an open
// circuit breaker; match with errors.Is.
var ErrCircuitOpen = errors.New("circuit open")

// maxResponseBody bounds how much of a service response the GRH reads.
const maxResponseBody = 16 << 20

// RetryPolicy configures retry with exponential backoff for idempotent
// dispatches. Only queries and tests (framework-aware POSTs and opaque
// GETs alike) are retried: actions may have side effects, and replaying
// an event (un)registration against a service that already processed it
// could duplicate remote detection state. The zero value disables retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values ≤ 1 disable retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (50ms when 0);
	// it doubles per attempt up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (2s when 0).
	MaxDelay time.Duration
	// Jitter randomizes each backoff by ±Jitter (a fraction in [0,1]),
	// decorrelating retry storms from many engine instances.
	Jitter float64
}

// DefaultRetryPolicy is a sane starting point: three total attempts,
// 50ms base backoff doubling to 2s, ±20% jitter.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// backoff returns the sleep before retry number attempt+1 (attempt is
// 0-based over failed tries so far).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > cap {
		d = cap
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*rand.Float64()-1)))
	}
	return d
}

// retryableKind reports whether a request kind is safe to replay.
func retryableKind(k protocol.RequestKind) bool {
	return k == protocol.Query || k == protocol.Test
}

// BreakerPolicy configures the per-endpoint circuit breaker. The zero
// value disables circuit breaking.
type BreakerPolicy struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker from closed to open; ≤ 0 disables the breaker.
	FailureThreshold int
	// Cooldown is how long an open breaker sheds load before admitting
	// a single half-open probe (30s when 0).
	Cooldown time.Duration
}

// DefaultBreakerPolicy trips after 5 consecutive failures and probes
// for recovery every 30 seconds.
var DefaultBreakerPolicy = BreakerPolicy{FailureThreshold: 5, Cooldown: 30 * time.Second}

// Enabled reports whether the policy breaks circuits at all.
func (p BreakerPolicy) Enabled() bool { return p.FailureThreshold > 0 }

func (p BreakerPolicy) cooldown() time.Duration {
	if p.Cooldown <= 0 {
		return 30 * time.Second
	}
	return p.Cooldown
}

// Breaker states as exposed by the grh_breaker_state{endpoint} gauge.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// breaker is one endpoint's circuit breaker: closed (normal), open
// (shedding load), half-open (admitting a single probe after cool-down).
type breaker struct {
	policy BreakerPolicy

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

// allow reports whether a request may proceed, transitioning
// open → half-open after the cool-down. It returns the state after the
// decision for the state gauge.
func (b *breaker) allow(now time.Time) (ok bool, state int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, BreakerClosed
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.policy.cooldown() {
			return false, BreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, BreakerHalfOpen
	default: // half-open: one probe at a time
		if b.probing {
			return false, BreakerHalfOpen
		}
		b.probing = true
		return true, BreakerHalfOpen
	}
}

// report records the outcome of an admitted request. It returns the
// resulting state and whether the breaker tripped open on this report.
func (b *breaker) report(success bool, now time.Time) (state int, tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		b.state = BreakerClosed
		b.fails = 0
		return BreakerClosed, false
	}
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back to open for another cool-down.
		b.state = BreakerOpen
		b.openedAt = now
		return BreakerOpen, true
	case BreakerClosed:
		b.fails++
		if b.fails >= b.policy.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = now
			return BreakerOpen, true
		}
		return BreakerClosed, false
	default:
		return b.state, false
	}
}

// breakerSet lazily creates one breaker per endpoint URL.
type breakerSet struct {
	policy BreakerPolicy
	mu     sync.Mutex
	m      map[string]*breaker
}

func newBreakerSet(p BreakerPolicy) *breakerSet {
	return &breakerSet{policy: p, m: map[string]*breaker{}}
}

func (s *breakerSet) forEndpoint(endpoint string) *breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[endpoint]
	if !ok {
		b = &breaker{policy: s.policy}
		s.m[endpoint] = b
	}
	return b
}

// admit asks the endpoint's breaker whether the request may proceed,
// updating the state gauge; a shed request counts as
// grh_errors_total{reason="breaker"}.
func (g *GRH) admit(endpoint string) error {
	b := g.breakers.forEndpoint(endpoint)
	if b == nil {
		return nil
	}
	ok, state := b.allow(g.now())
	g.met.breakerState.With(endpoint).Set(float64(state))
	if !ok {
		g.met.errors.With("breaker").Inc()
		return fmt.Errorf("grh: %s: %w", endpoint, ErrCircuitOpen)
	}
	return nil
}

// reportOutcome feeds a request outcome back to the endpoint's breaker
// and keeps the breaker instruments current.
func (g *GRH) reportOutcome(endpoint string, success bool) {
	b := g.breakers.forEndpoint(endpoint)
	if b == nil {
		return
	}
	state, tripped := b.report(success, g.now())
	g.met.breakerState.With(endpoint).Set(float64(state))
	if tripped {
		g.met.breakerOpen.With(endpoint).Inc()
		g.log.Warn("circuit breaker opened", obs.FieldEndpoint, endpoint)
	}
}

// exchange performs one resilient HTTP exchange against endpoint:
// breaker admission, the request issued by do with the current client,
// error classification, breaker feedback, and — for idempotent request
// kinds under an enabled RetryPolicy — retry with exponential backoff.
// Timeouts, transport errors and 5xx statuses are retryable and count
// against the breaker; 4xx statuses and undecodable bodies mean the
// service is up and answering, so they do neither.
func (g *GRH) exchange(kind protocol.RequestKind, verb, endpoint, traceID string, do func(c *http.Client) (*http.Response, error)) ([]byte, error) {
	attempts := 1
	if g.retry.Enabled() && retryableKind(kind) {
		attempts = g.retry.MaxAttempts
	}
	for attempt := 0; ; attempt++ {
		if err := g.admit(endpoint); err != nil {
			g.log.Warn("dispatch shed by open circuit", obs.FieldEndpoint, endpoint,
				obs.FieldTraceID, traceID, "kind", string(kind))
			return nil, err
		}
		retryAfter := func() bool {
			if attempt+1 >= attempts {
				return false
			}
			g.met.retries.With(string(kind)).Inc()
			g.log.Warn("dispatch retry", obs.FieldEndpoint, endpoint,
				obs.FieldTraceID, traceID, "kind", string(kind), "attempt", attempt+1)
			g.sleep(g.retry.backoff(attempt))
			return true
		}
		resp, err := do(g.httpClient())
		if err != nil {
			g.reportOutcome(endpoint, false)
			g.countHTTPErr(err)
			if retryAfter() {
				continue
			}
			g.log.Error("dispatch failed", obs.FieldEndpoint, endpoint,
				obs.FieldTraceID, traceID, "kind", string(kind), "error", err.Error())
			return nil, fmt.Errorf("grh: %s %s: %w", verb, endpoint, err)
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
		resp.Body.Close()
		if rerr != nil {
			g.reportOutcome(endpoint, false)
			g.countHTTPErr(rerr)
			if retryAfter() {
				continue
			}
			return nil, fmt.Errorf("grh: read %s: %w", endpoint, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			serverFault := resp.StatusCode >= 500
			g.reportOutcome(endpoint, !serverFault)
			g.met.errors.With("http-status").Inc()
			if serverFault && retryAfter() {
				continue
			}
			g.log.Error("dispatch failed", obs.FieldEndpoint, endpoint,
				obs.FieldTraceID, traceID, "kind", string(kind), "status", resp.StatusCode)
			return nil, fmt.Errorf("grh: %s: HTTP %d: %s", endpoint, resp.StatusCode, truncate(string(body), 300))
		}
		g.reportOutcome(endpoint, true)
		return body, nil
	}
}
