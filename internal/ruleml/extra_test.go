package ruleml

import (
	"strings"
	"testing"

	"repro/internal/protocol"
)

func TestVariableWrappedEvent(t *testing.T) {
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="ve">
	  <eca:variable name="Evt">
	    <eca:event><t:ping from="$F"/></eca:event>
	  </eca:variable>
	  <eca:action><t:echo f="$F">$Evt</t:echo></eca:action>
	</eca:rule>`
	r := MustParse(src)
	if r.Event.Variable != "Evt" || r.Event.Kind != EventComponent {
		t.Fatalf("event = %+v", r.Event)
	}
	if err := Validate(r, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// A second event inside eca:variable is still rejected.
	dup := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="d">
	  <eca:event><t:a/></eca:event>
	  <eca:variable name="E"><eca:event><t:b/></eca:event></eca:variable>
	  <eca:action><t:c/></eca:action>
	</eca:rule>`
	if _, err := ParseString(dup); err == nil {
		t.Error("two events (one wrapped) should be rejected")
	}
}

func TestMultipleTestsInterleaved(t *testing.T) {
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="m">
	  <eca:event><t:e a="$A" b="$B"/></eca:event>
	  <eca:test>$A > 1</eca:test>
	  <eca:query binds="C"><eca:opaque language="l">q($A, $C)</eca:opaque></eca:query>
	  <eca:test>$C != $B</eca:test>
	  <eca:action><t:act c="$C"/></eca:action>
	</eca:rule>`
	r := MustParse(src)
	if len(r.Steps) != 3 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	kinds := []ComponentKind{r.Steps[0].Kind, r.Steps[1].Kind, r.Steps[2].Kind}
	if kinds[0] != TestComponent || kinds[1] != QueryComponent || kinds[2] != TestComponent {
		t.Errorf("kinds = %v", kinds)
	}
	if r.Steps[0].ID != "test[1]" || r.Steps[2].ID != "test[2]" {
		t.Errorf("ids = %s, %s", r.Steps[0].ID, r.Steps[2].ID)
	}
	if err := Validate(r, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleActions(t *testing.T) {
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="ma">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:action><t:first x="$X"/></eca:action>
	  <eca:action><t:second x="$X"/></eca:action>
	</eca:rule>`
	r := MustParse(src)
	if len(r.Actions) != 2 || r.Actions[1].ID != "action[2]" {
		t.Fatalf("actions = %+v", r.Actions)
	}
}

func TestAnalyzerScansNestedExpression(t *testing.T) {
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="n">
	  <eca:event>
	    <t:composite>
	      <t:part a="$A"/>
	      <t:part b="$B">$C</t:part>
	    </t:composite>
	  </eca:event>
	  <eca:action><t:act a="$A" b="$B" c="$C"/></eca:action>
	</eca:rule>`
	r := MustParse(src)
	a := DefaultAnalyzer(r.Event)
	if got := strings.Join(a.Binds, ","); got != "A,B,C" {
		t.Errorf("event binds = %q", got)
	}
	if err := Validate(r, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateJoinUseInQuery(t *testing.T) {
	// A query reusing an event variable as a join variable is fine; using
	// a never-bound variable is not.
	ok := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="ok">
	  <eca:event><t:e x="$X"/></eca:event>
	  <eca:query binds="Y"><eca:opaque language="l">q($X, $Y)</eca:opaque></eca:query>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`
	if err := Validate(MustParse(ok), nil); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(ok, "q($X, $Y)", "q($Z, $Y)", 1)
	if err := Validate(MustParse(bad), nil); err == nil {
		t.Error("unbound join variable should fail")
	}
}

func TestOpaqueServiceOnlyAddressing(t *testing.T) {
	// uri without language is legal (directly addressed service).
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="svc">
	  <eca:event><t:e/></eca:event>
	  <eca:query binds="V"><eca:opaque uri="http://node/q">//v</eca:opaque></eca:query>
	  <eca:action><t:a v="$V"/></eca:action>
	</eca:rule>`
	r := MustParse(src)
	if r.Steps[0].Service != "http://node/q" || r.Steps[0].Language != "" {
		t.Fatalf("component = %+v", r.Steps[0])
	}
}
