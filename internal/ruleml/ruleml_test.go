package ruleml

import (
	"strings"
	"testing"

	"repro/internal/protocol"
)

// sampleRule is the outline of the paper's Fig. 4 car-rental rule.
const sampleRule = `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
	xmlns:travel="http://example.org/travel"
	xmlns:xq="http://www.semwebtech.org/languages/2006/xquery"
	id="car-rental">
  <eca:event>
    <travel:booking person="$Person" to="$Dest"/>
  </eca:event>
  <eca:variable name="OwnCar">
    <eca:query>
      <xq:query>for $c in doc('cars.xml')//owner[@name=$Person]/car return $c/model/text()</xq:query>
    </eca:query>
  </eca:variable>
  <eca:variable name="Class">
    <eca:query>
      <eca:opaque language="http://www.semwebtech.org/languages/2006/xquery"
                  uri="http://localhost:0/exist">//entry[@model='$OwnCar']/@class/string(.)</eca:opaque>
    </eca:query>
  </eca:variable>
  <eca:query binds="Avail Class">
    <xq:query>for $e in doc('avail.xml')//car[@city=$Dest]
      return &lt;log:answer xmlns:log="http://www.semwebtech.org/languages/2006/logic-ml"&gt;x&lt;/log:answer&gt;</xq:query>
  </eca:query>
  <eca:test>$Class != ''</eca:test>
  <eca:action>
    <travel:inform person="$Person" car="$Avail"/>
  </eca:action>
</eca:rule>`

func TestParseSampleRule(t *testing.T) {
	r := MustParse(sampleRule)
	if r.ID != "car-rental" {
		t.Errorf("id = %q", r.ID)
	}
	if r.Event.Kind != EventComponent || r.Event.Expression == nil {
		t.Fatalf("event = %+v", r.Event)
	}
	if r.Event.Language != "http://example.org/travel" {
		t.Errorf("event language = %q", r.Event.Language)
	}
	if len(r.Steps) != 4 {
		t.Fatalf("steps = %d, want 4 (3 queries + test)", len(r.Steps))
	}
	if r.Steps[0].Variable != "OwnCar" || r.Steps[0].Kind != QueryComponent {
		t.Errorf("step 0 = %+v", r.Steps[0])
	}
	if !r.Steps[1].Opaque || r.Steps[1].Variable != "Class" {
		t.Errorf("step 1 = %+v", r.Steps[1])
	}
	if r.Steps[1].Service == "" || r.Steps[1].Language == "" {
		t.Errorf("opaque addressing = %+v", r.Steps[1])
	}
	if got := strings.Join(r.Steps[2].Declares, ","); got != "Avail,Class" {
		t.Errorf("declares = %q", got)
	}
	if r.Steps[3].Kind != TestComponent || r.Steps[3].Text != "$Class != ''" {
		t.Errorf("test = %+v", r.Steps[3])
	}
	if len(r.Actions) != 1 || r.Actions[0].Kind != ActionComponent {
		t.Fatalf("actions = %+v", r.Actions)
	}
	if r.Steps[0].ID != "query[1]" || r.Steps[2].ID != "query[3]" || r.Steps[3].ID != "test[1]" {
		t.Errorf("ids = %v %v %v", r.Steps[0].ID, r.Steps[2].ID, r.Steps[3].ID)
	}
}

func TestValidateSampleRule(t *testing.T) {
	r := MustParse(sampleRule)
	if err := Validate(r, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateUseBeforeBind(t *testing.T) {
	bad := `<eca:rule xmlns:eca="` + protocol.ECANS + `" id="bad">
	  <eca:event><e x="$X"/></eca:event>
	  <eca:action><act who="$Nobody"/></eca:action>
	</eca:rule>`
	r := MustParse(bad)
	err := Validate(r, nil)
	if err == nil || !strings.Contains(err.Error(), "$Nobody") {
		t.Fatalf("expected use-before-bind error, got %v", err)
	}
}

func TestValidateSameComponentBinding(t *testing.T) {
	// A component may use a variable it declares itself.
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" id="same">
	  <eca:event><e x="$X"/></eca:event>
	  <eca:query binds="Y">
	    <eca:opaque language="lp">rel($X, $Y)</eca:opaque>
	  </eca:query>
	  <eca:action><act y="$Y"/></eca:action>
	</eca:rule>`
	if err := Validate(MustParse(src), nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFLWORInternalVariables(t *testing.T) {
	// $c is FLWOR-internal; only $Person is a free use.
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:xq="http://xq/" id="f">
	  <eca:event><e person="$Person"/></eca:event>
	  <eca:query>
	    <xq:query>for $c in doc('d')//x[@p=$Person] return $c</xq:query>
	  </eca:query>
	  <eca:action><act p="$Person"/></eca:action>
	</eca:rule>`
	if err := Validate(MustParse(src), nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	eca := protocol.ECANS
	cases := []struct{ name, src string }{
		{"wrong root", `<notarule/>`},
		{"no event", `<eca:rule xmlns:eca="` + eca + `"><eca:action><a/></eca:action></eca:rule>`},
		{"no action", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/></eca:event></eca:rule>`},
		{"two events", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/></eca:event><eca:event><e/></eca:event><eca:action><a/></eca:action></eca:rule>`},
		{"nameless variable", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/></eca:event><eca:variable><eca:query><q/></eca:query></eca:variable><eca:action><a/></eca:action></eca:rule>`},
		{"variable without query", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/></eca:event><eca:variable name="V"><eca:test>x</eca:test></eca:variable><eca:action><a/></eca:action></eca:rule>`},
		{"empty opaque", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/></eca:event><eca:query><eca:opaque language="l"></eca:opaque></eca:query><eca:action><a/></eca:action></eca:rule>`},
		{"opaque without language", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/></eca:event><eca:query><eca:opaque>q</eca:opaque></eca:query><eca:action><a/></eca:action></eca:rule>`},
		{"two expressions", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/><f/></eca:event><eca:action><a/></eca:action></eca:rule>`},
		{"unknown element", `<eca:rule xmlns:eca="` + eca + `"><eca:event><e/></eca:event><eca:frobnicate/><eca:action><a/></eca:action></eca:rule>`},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestPlainTextTestComponent(t *testing.T) {
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" id="t">
	  <eca:event><e n="$N"/></eca:event>
	  <eca:test>$N > 3</eca:test>
	  <eca:action><a n="$N"/></eca:action>
	</eca:rule>`
	r := MustParse(src)
	if len(r.Steps) != 1 || r.Steps[0].Kind != TestComponent || !r.Steps[0].Opaque {
		t.Fatalf("steps = %+v", r.Steps)
	}
	if err := Validate(r, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsOrder(t *testing.T) {
	r := MustParse(sampleRule)
	cs := r.Components()
	if len(cs) != 6 {
		t.Fatalf("components = %d", len(cs))
	}
	if cs[0].Kind != EventComponent || cs[5].Kind != ActionComponent {
		t.Errorf("order = %v … %v", cs[0].Kind, cs[5].Kind)
	}
}

func TestCustomAnalyzer(t *testing.T) {
	src := `<eca:rule xmlns:eca="` + protocol.ECANS + `" id="c">
	  <eca:event><e/></eca:event>
	  <eca:query><eca:opaque language="lp">magic()</eca:opaque></eca:query>
	  <eca:action><a x="$FromLP"/></eca:action>
	</eca:rule>`
	r := MustParse(src)
	if err := Validate(r, nil); err == nil {
		t.Fatal("default analyzer should reject $FromLP")
	}
	custom := func(c Component) VarAnalysis {
		a := DefaultAnalyzer(c)
		if c.Kind == QueryComponent && c.Language == "lp" {
			a.Binds = append(a.Binds, "FromLP")
		}
		return a
	}
	if err := Validate(r, custom); err != nil {
		t.Fatalf("custom analyzer: %v", err)
	}
}
