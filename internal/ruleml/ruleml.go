// Package ruleml parses and validates ECA rule documents in the rule markup
// language of the paper ([MAA05a], Fig. 4): an eca:rule element containing
// one event component, any number of query components (optionally wrapped in
// <eca:variable name="…"> to bind functional results), an optional test
// component, and one or more action components. Every component is either an
// expression in its own language (identified by the namespace of its child
// element) or an <eca:opaque> fragment addressed to a named language/service.
package ruleml

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/protocol"
	"repro/internal/xmltree"
)

// ComponentKind distinguishes the four rule component families.
type ComponentKind string

// The component kinds, ordered Event < Query < Test < Action.
const (
	EventComponent  ComponentKind = "event"
	QueryComponent  ComponentKind = "query"
	TestComponent   ComponentKind = "test"
	ActionComponent ComponentKind = "action"
)

// Component is one rule component.
type Component struct {
	// Kind is the component family.
	Kind ComponentKind
	// ID identifies the component within its rule, e.g. "query[2]".
	ID string
	// Language is the namespace URI of the component language. For opaque
	// components it is the value of the language attribute; for marked-up
	// components the namespace of the expression element; empty when the
	// expression is a bare domain-level pattern (the GRH then applies its
	// component-kind default, e.g. the Atomic Event Matcher).
	Language string
	// Expression is the component expression element (nil for opaque).
	Expression *xmltree.Node
	// Opaque indicates an <eca:opaque> component: the expression is the
	// raw Text, submitted to a (possibly framework-unaware) service.
	Opaque bool
	// Text is the opaque expression string.
	Text string
	// Service optionally pins the URI of the service to contact, for
	// opaque components addressed directly (Fig. 9's HTTP GET node).
	Service string
	// Variable is the name bound by a surrounding <eca:variable>; empty
	// for plain components.
	Variable string
	// Declares lists variables the component declares it binds (the
	// binds="A B" attribute) — needed for components in languages the
	// engine cannot introspect, e.g. an opaque query generating
	// log:answers with fresh variables (Fig. 10).
	Declares []string
}

// Rule is a parsed ECA rule.
type Rule struct {
	// ID is the rule identifier (the id attribute, or assigned on
	// registration).
	ID string
	// Event is the event component.
	Event Component
	// Steps are the query and test components in document order.
	Steps []Component
	// Actions are the action components.
	Actions []Component
	// Doc is the original rule document.
	Doc *xmltree.Node
}

// Components returns all components in evaluation order.
func (r *Rule) Components() []Component {
	out := make([]Component, 0, len(r.Steps)+len(r.Actions)+1)
	out = append(out, r.Event)
	out = append(out, r.Steps...)
	out = append(out, r.Actions...)
	return out
}

// Parse reads an eca:rule document.
func Parse(doc *xmltree.Node) (*Rule, error) {
	root := doc.Root()
	if root == nil || root.Name.Space != protocol.ECANS || root.Name.Local != "rule" {
		return nil, fmt.Errorf("ruleml: expected eca:rule, got %s", nameOf(root))
	}
	r := &Rule{ID: root.AttrValue("", "id"), Doc: doc}
	counts := map[ComponentKind]int{}
	mkID := func(k ComponentKind) string {
		counts[k]++
		return fmt.Sprintf("%s[%d]", k, counts[k])
	}
	sawEvent := false
	for _, el := range root.ChildElements() {
		if el.Name.Space != protocol.ECANS {
			return nil, fmt.Errorf("ruleml: unexpected element %s in rule", el.Name)
		}
		switch el.Name.Local {
		case "event":
			if sawEvent {
				return nil, fmt.Errorf("ruleml: rule has more than one event component")
			}
			c, err := parseComponent(EventComponent, el, "")
			if err != nil {
				return nil, err
			}
			c.ID = mkID(EventComponent)
			r.Event = c
			sawEvent = true
		case "variable":
			name := el.AttrValue("", "name")
			if name == "" {
				return nil, fmt.Errorf("ruleml: eca:variable without name attribute")
			}
			inner := el.ChildElements()
			if len(inner) != 1 || inner[0].Name.Space != protocol.ECANS ||
				(inner[0].Name.Local != "query" && inner[0].Name.Local != "event") {
				return nil, fmt.Errorf("ruleml: eca:variable %q must wrap exactly one eca:query or eca:event", name)
			}
			if inner[0].Name.Local == "event" {
				if sawEvent {
					return nil, fmt.Errorf("ruleml: rule has more than one event component")
				}
				c, err := parseComponent(EventComponent, inner[0], name)
				if err != nil {
					return nil, err
				}
				c.ID = mkID(EventComponent)
				r.Event = c
				sawEvent = true
				continue
			}
			c, err := parseComponent(QueryComponent, inner[0], name)
			if err != nil {
				return nil, err
			}
			c.ID = mkID(QueryComponent)
			r.Steps = append(r.Steps, c)
		case "query":
			c, err := parseComponent(QueryComponent, el, "")
			if err != nil {
				return nil, err
			}
			c.ID = mkID(QueryComponent)
			r.Steps = append(r.Steps, c)
		case "test":
			c, err := parseComponent(TestComponent, el, "")
			if err != nil {
				return nil, err
			}
			c.ID = mkID(TestComponent)
			r.Steps = append(r.Steps, c)
		case "action":
			c, err := parseComponent(ActionComponent, el, "")
			if err != nil {
				return nil, err
			}
			c.ID = mkID(ActionComponent)
			r.Actions = append(r.Actions, c)
		default:
			return nil, fmt.Errorf("ruleml: unknown rule element eca:%s", el.Name.Local)
		}
	}
	if !sawEvent {
		return nil, fmt.Errorf("ruleml: rule has no event component")
	}
	if len(r.Actions) == 0 {
		return nil, fmt.Errorf("ruleml: rule has no action component")
	}
	// Actions must come last (Event < Query < Test < Action).
	return r, nil
}

// ParseString parses a rule from XML source.
func ParseString(src string) (*Rule, error) {
	doc, err := xmltree.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("ruleml: %w", err)
	}
	return Parse(doc)
}

// MustParse parses a static rule, panicking on error.
func MustParse(src string) *Rule {
	r, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return r
}

func parseComponent(kind ComponentKind, el *xmltree.Node, variable string) (Component, error) {
	c := Component{Kind: kind, Variable: variable}
	if b := el.AttrValue("", "binds"); b != "" {
		c.Declares = strings.Fields(b)
	}
	kids := el.ChildElements()
	// Opaque component?
	if len(kids) == 1 && kids[0].Name.Space == protocol.ECANS && kids[0].Name.Local == "opaque" {
		op := kids[0]
		c.Opaque = true
		c.Language = op.AttrValue("", "language")
		c.Service = op.AttrValue("", "uri")
		c.Text = strings.TrimSpace(op.TextContent())
		if c.Text == "" {
			return c, fmt.Errorf("ruleml: empty opaque %s component", kind)
		}
		if c.Language == "" && c.Service == "" {
			return c, fmt.Errorf("ruleml: opaque %s component needs a language or uri attribute", kind)
		}
		return c, nil
	}
	if len(kids) != 1 {
		// A test component may be plain text (a local comparison over
		// bound variables, evaluated by the engine's test evaluator).
		if kind == TestComponent {
			c.Text = strings.TrimSpace(el.TextContent())
			if c.Text != "" {
				c.Opaque = true
				return c, nil
			}
		}
		return c, fmt.Errorf("ruleml: %s component must contain exactly one expression element, has %d", kind, len(kids))
	}
	c.Expression = kids[0]
	if c.Expression.Name.Space != protocol.ECANS {
		c.Language = c.Expression.Name.Space
	}
	return c, nil
}

func nameOf(n *xmltree.Node) string {
	if n == nil {
		return "nothing"
	}
	return n.Name.String()
}

// --- variable binding discipline ----------------------------------------------------

// VarAnalysis describes which variables a component binds (makes available
// to later components) and which it uses (must already be bound, or bound
// by the same component).
type VarAnalysis struct {
	Binds []string
	Uses  []string
}

// Analyzer computes the variable analysis for a component. The engine
// supplies per-language analyzers; DefaultAnalyzer covers the languages in
// this repository.
type Analyzer func(c Component) VarAnalysis

// Validate checks the rule's variable binding discipline per Section 3 of
// the paper: a variable must be bound in an earlier (Event < Query < Test <
// Action) or the same component as where it is used. Join use is legal in
// Event/Query/Test; free variables in actions are errors.
func Validate(r *Rule, analyze Analyzer) error {
	if analyze == nil {
		analyze = DefaultAnalyzer
	}
	bound := map[string]bool{}
	check := func(c Component) error {
		a := analyze(c)
		for _, u := range a.Uses {
			if !bound[u] && !contains(a.Binds, u) {
				return fmt.Errorf("ruleml: rule %q: variable $%s used in %s before being bound", r.ID, u, c.ID)
			}
		}
		for _, b := range a.Binds {
			bound[b] = true
		}
		if c.Variable != "" {
			bound[c.Variable] = true
		}
		return nil
	}
	for _, c := range r.Components() {
		if err := check(c); err != nil {
			return err
		}
	}
	return nil
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// DefaultAnalyzer extracts variables syntactically:
//   - event components bind every $Var occurring in the pattern;
//   - query components with marked-up LP-style expressions (Datalog) bind
//     their upper-case variables;
//   - functional queries (XQuery-lite, opaque) use their free $Vars
//     (variables introduced by for/let are internal);
//   - test and action components use their $Vars.
func DefaultAnalyzer(c Component) VarAnalysis {
	var a VarAnalysis
	switch c.Kind {
	case EventComponent:
		a.Binds = scanDollarVars(c)
	default:
		a.Uses = freeQueryVars(c)
	}
	a.Binds = append(a.Binds, c.Declares...)
	return a
}

// scanDollarVars collects $Name occurrences in attribute values and text of
// the expression tree (or the opaque text).
func scanDollarVars(c Component) []string {
	set := map[string]bool{}
	if c.Opaque {
		collectDollarNames(c.Text, set)
	} else if c.Expression != nil {
		var walk func(n *xmltree.Node)
		walk = func(n *xmltree.Node) {
			for _, a := range n.Attrs {
				if !a.IsNamespaceDecl() {
					collectDollarNames(a.Value, set)
				}
			}
			for _, ch := range n.Children {
				if ch.Kind == xmltree.TextNode {
					collectDollarNames(ch.Text, set)
				}
				if ch.Kind == xmltree.ElementNode {
					walk(ch)
				}
			}
		}
		walk(c.Expression)
	}
	return sortedKeys(set)
}

// freeQueryVars is scanDollarVars minus variables declared by for/let
// clauses in the component text (the XQuery-internal ones).
func freeQueryVars(c Component) []string {
	all := scanDollarVars(c)
	text := c.Text
	if !c.Opaque && c.Expression != nil {
		text = c.Expression.String()
	}
	declared := map[string]bool{}
	for _, kw := range []string{"for", "let"} {
		rest := text
		for {
			i := strings.Index(rest, kw+" $")
			if i < 0 {
				break
			}
			rest = rest[i+len(kw)+2:]
			name := leadingName(rest)
			if name != "" {
				declared[name] = true
			}
		}
	}
	// Also variables bound via ", $x in" continuation clauses.
	rest := text
	for {
		i := strings.Index(rest, ", $")
		if i < 0 {
			break
		}
		rest = rest[i+3:]
		name := leadingName(rest)
		after := strings.TrimLeft(rest[len(name):], " \t\n")
		if name != "" && (strings.HasPrefix(after, "in ") || strings.HasPrefix(after, ":=")) {
			declared[name] = true
		}
	}
	var out []string
	for _, v := range all {
		if !declared[v] {
			out = append(out, v)
		}
	}
	return out
}

func collectDollarNames(s string, set map[string]bool) {
	for i := 0; i < len(s); i++ {
		if s[i] != '$' {
			continue
		}
		name := leadingName(s[i+1:])
		if name != "" {
			set[name] = true
			i += len(name)
		}
	}
}

func leadingName(s string) string {
	end := 0
	for end < len(s) {
		c := s[end]
		if c == '_' || c == '-' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			end++
			continue
		}
		break
	}
	return s[:end]
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
