package compilecache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestGetCompilesOnceAndCachesValue(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	compile := func(src string) (any, error) {
		calls.Add(1)
		return "compiled:" + src, nil
	}
	for i := 0; i < 5; i++ {
		v, err := c.Get("l", "expr", compile)
		if err != nil {
			t.Fatal(err)
		}
		if v != "compiled:expr" {
			t.Fatalf("got %v", v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestNegativeCaching(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	bad := errors.New("syntax error")
	compile := func(string) (any, error) {
		calls.Add(1)
		return nil, bad
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Get("l", "broken", compile); !errors.Is(err, bad) {
			t.Fatalf("err = %v, want %v", err, bad)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1 (errors must be cached)", n)
	}
}

func TestLanguageSegregatesKeys(t *testing.T) {
	c := New(8)
	mk := func(lang string) func(string) (any, error) {
		return func(src string) (any, error) { return lang + ":" + src, nil }
	}
	a, _ := c.Get("xpath", "x", mk("xpath"))
	b, _ := c.Get("xq", "x", mk("xq"))
	if a == b {
		t.Fatalf("same source in different languages must not share entries")
	}
}

func TestEvictionUnderSizeBound(t *testing.T) {
	c := New(3)
	hub := obs.NewHub()
	c.SetObs(hub)
	compile := func(src string) (any, error) { return src, nil }
	for i := 0; i < 10; i++ {
		if _, err := c.Get("l", fmt.Sprintf("e%d", i), compile); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (size bound)", c.Len())
	}
	if ev := hub.Metrics().Counter("compile_cache_evictions_total", "").Value(); ev != 7 {
		t.Fatalf("evictions = %d, want 7", ev)
	}
	// LRU: the most recent entries survive.
	var recompiled atomic.Int64
	counting := func(src string) (any, error) { recompiled.Add(1); return src, nil }
	for i := 7; i < 10; i++ {
		c.Get("l", fmt.Sprintf("e%d", i), counting)
	}
	if n := recompiled.Load(); n != 0 {
		t.Fatalf("recent entries recompiled %d times, want 0", n)
	}
	c.Get("l", "e0", counting) // evicted long ago
	if n := recompiled.Load(); n != 1 {
		t.Fatalf("evicted entry recompiled %d times, want 1", n)
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := New(2)
	compile := func(src string) (any, error) { return src, nil }
	c.Get("l", "a", compile)
	c.Get("l", "b", compile)
	c.Get("l", "a", compile) // touch a → b is now LRU
	c.Get("l", "c", compile) // evicts b
	var calls atomic.Int64
	counting := func(src string) (any, error) { calls.Add(1); return src, nil }
	c.Get("l", "a", counting)
	if calls.Load() != 0 {
		t.Fatal("touched entry was evicted")
	}
	c.Get("l", "b", counting)
	if calls.Load() != 1 {
		t.Fatal("LRU entry was not evicted")
	}
}

func TestCapacityZeroBypasses(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	compile := func(src string) (any, error) { calls.Add(1); return src, nil }
	for i := 0; i < 4; i++ {
		if _, err := c.Get("l", "x", compile); err != nil {
			t.Fatal(err)
		}
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("disabled cache compiled %d times, want 4", n)
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache retained %d entries", c.Len())
	}
}

func TestSetCapacityShrinksAndDisables(t *testing.T) {
	c := New(10)
	compile := func(src string) (any, error) { return src, nil }
	for i := 0; i < 10; i++ {
		c.Get("l", fmt.Sprintf("e%d", i), compile)
	}
	c.SetCapacity(4)
	if c.Len() != 4 {
		t.Fatalf("Len after shrink = %d, want 4", c.Len())
	}
	c.SetCapacity(0)
	if c.Len() != 0 {
		t.Fatalf("Len after disable = %d, want 0", c.Len())
	}
}

// TestConcurrentWarmAndMiss hammers one cache from many goroutines over a
// small keyspace with an eviction-prone bound; run with -race -count=2.
func TestConcurrentWarmAndMiss(t *testing.T) {
	c := New(4)
	hub := obs.NewHub()
	c.SetObs(hub)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				src := fmt.Sprintf("e%d", (g+i)%6) // 6 keys, 4 slots → churn
				v, err := c.Get("l", src, func(s string) (any, error) { return "v:" + s, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v != "v:"+src {
					t.Errorf("got %v for %s", v, src)
					return
				}
				if i%100 == 0 {
					c.SetCapacity(3 + i%3) // resize under load
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 5 {
		t.Fatalf("Len = %d exceeds every capacity used", c.Len())
	}
}

// TestSingleflight: concurrent misses for one key share a single compile.
func TestSingleflight(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, err := c.Get("l", "shared", func(s string) (any, error) {
				calls.Add(1)
				return "ok", nil
			})
			if err != nil || v != "ok" {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	// The first Get to install the in-flight entry compiles; every racer
	// that arrived after it waits on done instead of compiling again.
	if n := calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	c.Get("l", "x", func(s string) (any, error) { return s, nil })
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	var calls atomic.Int64
	c.Get("l", "x", func(s string) (any, error) { calls.Add(1); return s, nil })
	if calls.Load() != 1 {
		t.Fatal("purged entry still served")
	}
}

func TestMetricsCounters(t *testing.T) {
	c := New(8)
	hub := obs.NewHub()
	c.SetObs(hub)
	compile := func(src string) (any, error) { return src, nil }
	c.Get("xpath", "a", compile)
	c.Get("xpath", "a", compile)
	c.Get("xpath", "a", compile)
	m := hub.Metrics()
	if h := m.Counter("compile_cache_hits_total", "").Value(); h != 2 {
		t.Fatalf("hits = %d, want 2", h)
	}
	if mi := m.Counter("compile_cache_misses_total", "").Value(); mi != 1 {
		t.Fatalf("misses = %d, want 1", mi)
	}
	if n := m.HistogramVec("compile_seconds", "", nil, "language").With("xpath").Count(); n != 1 {
		t.Fatalf("compile_seconds{xpath} count = %d, want 1", n)
	}
}
