// Package compilecache memoizes compiled component-language expressions.
//
// The paper's GRH mediates every rule firing through component-language
// services, so the same expression text — a rule's XPath test, XQuery-lite
// query or Datalog goal — is evaluated once per event, potentially millions
// of times over the rule's lifetime. Compiling is pure (source text in,
// immutable compiled form out), so each language package exposes a
// CompileCached entry point backed by one shared Cache here: sha256-keyed,
// size-bounded with LRU eviction, concurrency-safe, with singleflight
// behaviour on misses so a burst of identical cold dispatches compiles
// once.
//
// Compile *errors* are cached too (negative caching): a rule whose
// expression does not compile would otherwise re-run the parser on every
// event it matches. Registration-time precompilation (internal/services
// PrecompileRule) rejects such rules up front, so negative entries mainly
// guard the opaque per-tuple paths where variable substitution can yield
// fresh, possibly invalid, source text.
package compilecache

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultCapacity is the entry bound of the Default cache; override with
// SetCapacity (ecad -compile-cache-entries).
const DefaultCapacity = 4096

// Default is the process-wide cache shared by the language packages'
// CompileCached entry points.
var Default = New(DefaultCapacity)

// key identifies one (language, source) pair by digest. Hashing keeps the
// cache from retaining arbitrarily large source strings and makes every
// key the same small, comparable size.
type key [sha256.Size]byte

func keyOf(lang, src string) key {
	h := sha256.New()
	h.Write([]byte(lang))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var k key
	h.Sum(k[:0])
	return k
}

// entry is one cache slot. done is closed when the compile finished; a
// concurrent Get for the same key waits on it instead of compiling again.
type entry struct {
	done chan struct{}
	val  any
	err  error
	elem *list.Element // position in the LRU list; nil while compiling
}

// Cache is a size-bounded, concurrency-safe memo of compiled expressions.
// The zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[key]*entry
	lru     *list.List // front = most recently used; values are keys

	hits, misses, evictions *obs.Counter
	compileSec              *obs.HistogramVec // compile_seconds{language}
}

// New returns a cache bounded to capacity entries. A capacity of 0 (or
// negative) disables caching: Get then always compiles, still counting
// misses and compile latency.
func New(capacity int) *Cache {
	return &Cache{cap: capacity, entries: map[key]*entry{}, lru: list.New()}
}

// SetCapacity re-bounds the cache, evicting LRU entries if it shrank.
// A capacity ≤ 0 disables caching and drops every entry.
func (c *Cache) SetCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	if n <= 0 {
		c.entries = map[key]*entry{}
		c.lru.Init()
		return
	}
	for c.lru.Len() > c.cap {
		c.evictOldestLocked()
	}
}

// SetObs points the cache's instruments at a hub's registry:
// compile_cache_{hits,misses,evictions}_total and compile_seconds{language}.
// A nil hub detaches them (nil-safe no-ops).
func (c *Cache) SetObs(h *obs.Hub) {
	m := h.Metrics()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = m.Counter("compile_cache_hits_total", "Compiled-expression cache hits across component languages.")
	c.misses = m.Counter("compile_cache_misses_total", "Compiled-expression cache misses (fresh compilations).")
	c.evictions = m.Counter("compile_cache_evictions_total", "Compiled-expression cache entries evicted by the size bound.")
	c.compileSec = m.HistogramVec("compile_seconds", "Expression compilation latency by component language.", nil, "language")
}

// Len returns the number of resident entries (in-flight compiles included).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every entry. Tests use it to compare cold and warm paths.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[key]*entry{}
	c.lru.Init()
}

// Get returns the compiled form of src in the given language, compiling at
// most once per (language, source) while the entry stays resident.
// Concurrent Gets for the same missing key share one compile. The compiled
// value must be immutable / safe for concurrent use, as every caller
// receives the same instance.
func (c *Cache) Get(lang, src string, compile func(src string) (any, error)) (any, error) {
	c.mu.Lock()
	if c.cap <= 0 {
		misses, sec := c.misses, c.compileSec
		c.mu.Unlock()
		misses.Inc()
		return timedCompile(lang, src, compile, sec)
	}
	k := keyOf(lang, src)
	if e, ok := c.entries[k]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		hits := c.hits
		c.mu.Unlock()
		hits.Inc()
		<-e.done
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	misses, sec := c.misses, c.compileSec
	c.mu.Unlock()

	misses.Inc()
	e.val, e.err = timedCompile(lang, src, compile, sec)
	close(e.done)

	c.mu.Lock()
	// The entry may have been purged or the cache resized while compiling;
	// only link it into the LRU if it is still the resident one.
	if c.entries[k] == e && c.cap > 0 {
		e.elem = c.lru.PushFront(k)
		for c.lru.Len() > c.cap {
			c.evictOldestLocked()
		}
	}
	c.mu.Unlock()
	return e.val, e.err
}

// evictOldestLocked removes the least recently used resident entry.
// In-flight compiles (elem == nil) are never on the list and so never
// evicted mid-compile.
func (c *Cache) evictOldestLocked() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	c.lru.Remove(back)
	delete(c.entries, back.Value.(key))
	c.evictions.Inc()
}

func timedCompile(lang, src string, compile func(string) (any, error), sec *obs.HistogramVec) (any, error) {
	if sec == nil {
		return compile(src)
	}
	start := time.Now()
	v, err := compile(src)
	sec.With(lang).Observe(obs.Since(start))
	return v, err
}
