// Package tenant provides the multi-tenancy primitives for the ECA
// engine: validated tenant identifiers, per-tenant quotas (rule count,
// pending events, token-bucket event rate), and a registry that owns
// the tenant set for one System.
//
// Tenants are namespaces, not processes: every tenant shares the GRH,
// compile cache, journal file and ordered dispatch stage, but rules
// registered under one tenant only ever see events published under the
// same tenant. The default tenant (normally "public") is what every
// request without an explicit tenant resolves to, which is how a
// tenant-unaware deployment keeps its exact pre-tenancy behaviour.
package tenant

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Default is the tenant id used when a request names no tenant.
const Default = "public"

// slugRE is the tenant id grammar: DNS-label-like slugs — lowercase
// alphanumerics and single hyphens, no leading/trailing hyphen, 1..63
// characters. Uppercase is rejected rather than folded so ids are
// byte-comparable everywhere (headers, journal frames, metric labels).
var slugRE = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$`)

// ValidateID reports whether id is an acceptable tenant slug.
func ValidateID(id string) error {
	if !slugRE.MatchString(id) {
		return fmt.Errorf("invalid tenant id %q: must match %s (lowercase slug, 1-63 chars)", id, slugRE)
	}
	if strings.Contains(id, "--") {
		return fmt.Errorf("invalid tenant id %q: consecutive hyphens not allowed", id)
	}
	return nil
}

// Quotas bounds one tenant's resource use. The zero value of any field
// means "unlimited" for that dimension.
type Quotas struct {
	// MaxRules caps concurrently registered rules.
	MaxRules int
	// MaxPendingEvents caps events admitted but not yet dispatched.
	MaxPendingEvents int
	// EventRate is the sustained token-bucket refill rate in
	// events/second; EventBurst is the bucket depth. A positive rate
	// with a zero burst gets a burst of max(1, ceil(rate)).
	EventRate  float64
	EventBurst int
}

// burst returns the effective bucket depth.
func (q Quotas) burst() float64 {
	if q.EventBurst > 0 {
		return float64(q.EventBurst)
	}
	if q.EventRate <= 0 {
		return 0
	}
	b := float64(int(q.EventRate))
	if b < q.EventRate {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// QuotaError reports a quota rejection. Reason is a stable token
// ("max-rules", "max-pending-events", "rate") suitable for error
// bodies and metrics labels.
type QuotaError struct {
	Tenant string
	Reason string
	Limit  string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over quota: %s (limit %s)", e.Tenant, e.Reason, e.Limit)
}

// IsQuota reports whether err is a quota rejection, unwrapping as
// needed.
func IsQuota(err error) bool {
	var qe *QuotaError
	return errors.As(err, &qe)
}

// Tenant is one namespace's quota state. All methods are safe for
// concurrent use; counting is exact (mutex, not atomics) so racing
// admitters at a quota boundary admit exactly the configured number.
type Tenant struct {
	id     string
	quotas Quotas

	mu      sync.Mutex
	rules   int
	pending int
	tokens  float64
	last    time.Time
	now     func() time.Time
}

// ID returns the tenant's identifier.
func (t *Tenant) ID() string { return t.id }

// Quotas returns the tenant's configured limits.
func (t *Tenant) Quotas() Quotas { return t.quotas }

// Rules returns the current registered-rule count.
func (t *Tenant) Rules() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rules
}

// Pending returns the current pending-event count.
func (t *Tenant) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pending
}

// AcquireRule reserves one rule slot, failing when the tenant is at
// its MaxRules quota.
func (t *Tenant) AcquireRule() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quotas.MaxRules > 0 && t.rules >= t.quotas.MaxRules {
		return &QuotaError{Tenant: t.id, Reason: "max-rules", Limit: strconv.Itoa(t.quotas.MaxRules)}
	}
	t.rules++
	return nil
}

// ForceRule reserves a rule slot unconditionally. Recovery uses it so
// a journal that already holds more rules than a newly tightened quota
// still replays completely; the quota re-applies to new registrations.
func (t *Tenant) ForceRule() {
	t.mu.Lock()
	t.rules++
	t.mu.Unlock()
}

// ReleaseRule returns a rule slot (on unregister or failed
// registration rollback).
func (t *Tenant) ReleaseRule() {
	t.mu.Lock()
	if t.rules > 0 {
		t.rules--
	}
	t.mu.Unlock()
}

// AcquirePending reserves capacity for n in-flight events, failing
// all-or-nothing at the MaxPendingEvents quota.
func (t *Tenant) AcquirePending(n int) error {
	if n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quotas.MaxPendingEvents > 0 && t.pending+n > t.quotas.MaxPendingEvents {
		return &QuotaError{Tenant: t.id, Reason: "max-pending-events", Limit: strconv.Itoa(t.quotas.MaxPendingEvents)}
	}
	t.pending += n
	return nil
}

// ReleasePending returns capacity reserved by AcquirePending.
func (t *Tenant) ReleasePending(n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	t.pending -= n
	if t.pending < 0 {
		t.pending = 0
	}
	t.mu.Unlock()
}

// AdmitEvents takes n tokens from the tenant's rate bucket,
// all-or-nothing: either all n events are admitted or none are and a
// rate QuotaError is returned. With no rate configured it always
// succeeds.
func (t *Tenant) AdmitEvents(n int) error {
	if n <= 0 || t.quotas.EventRate <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	burst := t.quotas.burst()
	if elapsed := now.Sub(t.last).Seconds(); elapsed > 0 {
		t.tokens += elapsed * t.quotas.EventRate
		if t.tokens > burst {
			t.tokens = burst
		}
	}
	t.last = now
	if t.tokens < float64(n) {
		return &QuotaError{
			Tenant: t.id,
			Reason: "rate",
			Limit:  fmt.Sprintf("%g events/sec (burst %g)", t.quotas.EventRate, burst),
		}
	}
	t.tokens -= float64(n)
	return nil
}

// Registry owns the tenant set for one System. Tenants are created on
// first use (open registration) with the registry's default quotas
// unless quotas were declared for that id up front.
type Registry struct {
	defaultID string

	mu       sync.RWMutex
	declared map[string]Quotas // ids pre-declared via -tenant-quotas
	wildcard *Quotas           // "*" default quotas for undeclared tenants
	tenants  map[string]*Tenant
	now      func() time.Time
}

// Option configures a Registry.
type Option func(*Registry)

// WithClock injects the time source used by rate buckets — tests use
// it for deterministic refill.
func WithClock(now func() time.Time) Option {
	return func(r *Registry) { r.now = now }
}

// NewRegistry builds a registry whose default tenant is defaultID
// (Default when empty). The default tenant exists from the start.
func NewRegistry(defaultID string, opts ...Option) (*Registry, error) {
	if defaultID == "" {
		defaultID = Default
	}
	if err := ValidateID(defaultID); err != nil {
		return nil, fmt.Errorf("default tenant: %w", err)
	}
	r := &Registry{
		defaultID: defaultID,
		declared:  make(map[string]Quotas),
		tenants:   make(map[string]*Tenant),
		now:       time.Now,
	}
	for _, o := range opts {
		o(r)
	}
	r.tenants[defaultID] = r.newTenant(defaultID, Quotas{})
	return r, nil
}

func (r *Registry) newTenant(id string, q Quotas) *Tenant {
	t := &Tenant{id: id, quotas: q, now: r.now}
	t.last = r.now()
	t.tokens = q.burst()
	return t
}

// DefaultID returns the id every tenant-less request resolves to.
func (r *Registry) DefaultID() string { return r.defaultID }

// Declare registers quotas for a tenant id ("*" sets the default
// quotas applied to every tenant not declared explicitly). Declaring
// re-creates the tenant's quota state, so declare before traffic.
func (r *Registry) Declare(id string, q Quotas) error {
	if id == "*" {
		r.mu.Lock()
		defer r.mu.Unlock()
		qq := q
		r.wildcard = &qq
		return nil
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declared[id] = q
	r.tenants[id] = r.newTenant(id, q)
	return nil
}

// quotasFor picks the quotas a new tenant id gets: declared > wildcard
// > unlimited. Callers hold r.mu.
func (r *Registry) quotasFor(id string) Quotas {
	if q, ok := r.declared[id]; ok {
		return q
	}
	if r.wildcard != nil {
		return *r.wildcard
	}
	return Quotas{}
}

// Canonical maps an externally supplied tenant id to its canonical
// form: the empty string is the default tenant.
func (r *Registry) Canonical(id string) string {
	if id == "" {
		return r.defaultID
	}
	return id
}

// Resolve validates id (empty = default tenant) and returns its
// tenant, creating it on first use.
func (r *Registry) Resolve(id string) (*Tenant, error) {
	id = r.Canonical(id)
	r.mu.RLock()
	t, ok := r.tenants[id]
	r.mu.RUnlock()
	if ok {
		return t, nil
	}
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[id]; ok {
		return t, nil
	}
	t = r.newTenant(id, r.quotasFor(id))
	r.tenants[id] = t
	return t, nil
}

// Lookup returns an existing tenant without creating one. Listing
// filters use it so `?tenant=` on an id that was never declared or
// used is a client error, not a silent empty result.
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	id = r.Canonical(id)
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// IDs returns the known tenant ids, sorted.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.tenants))
	for id := range r.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ParseQuotaSpec parses one -tenant-quotas flag value of the form
//
//	tenant:max-rules=100,max-pending-events=64,rate=50,burst=100
//
// where tenant is a slug or "*" and every key is optional.
func ParseQuotaSpec(spec string) (string, Quotas, error) {
	id, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return "", Quotas{}, fmt.Errorf("quota spec %q: want tenant:key=value,...", spec)
	}
	id = strings.TrimSpace(id)
	if id != "*" {
		if err := ValidateID(id); err != nil {
			return "", Quotas{}, err
		}
	}
	var q Quotas
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return "", Quotas{}, fmt.Errorf("quota spec %q: bad pair %q", spec, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "max-rules":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return "", Quotas{}, fmt.Errorf("quota spec %q: max-rules %q", spec, val)
			}
			q.MaxRules = n
		case "max-pending-events":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return "", Quotas{}, fmt.Errorf("quota spec %q: max-pending-events %q", spec, val)
			}
			q.MaxPendingEvents = n
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return "", Quotas{}, fmt.Errorf("quota spec %q: rate %q", spec, val)
			}
			q.EventRate = f
		case "burst":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return "", Quotas{}, fmt.Errorf("quota spec %q: burst %q", spec, val)
			}
			q.EventBurst = n
		default:
			return "", Quotas{}, fmt.Errorf("quota spec %q: unknown key %q", spec, key)
		}
	}
	return id, q, nil
}
