package tenant

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestValidateID(t *testing.T) {
	ok := []string{"public", "a", "a1", "acme-corp", "t-1-2-3", "x0"}
	for _, id := range ok {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", id, err)
		}
	}
	bad := []string{"", "Public", "-acme", "acme-", "a--b", "a b", "tenant/x", "über",
		"0123456789012345678901234567890123456789012345678901234567890123"} // 64 chars
	for _, id := range bad {
		if err := ValidateID(id); err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", id)
		}
	}
}

func TestRegistryDefaultAndResolve(t *testing.T) {
	r, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if r.DefaultID() != Default {
		t.Fatalf("DefaultID() = %q, want %q", r.DefaultID(), Default)
	}
	def, err := r.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if def.ID() != Default {
		t.Fatalf("Resolve(\"\") = %q, want default", def.ID())
	}
	a1, err := r.Resolve("acme")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Resolve("acme")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("Resolve must return the same tenant for the same id")
	}
	if _, err := r.Resolve("Not A Slug"); err == nil {
		t.Fatal("Resolve of an invalid id must fail")
	}
	if _, ok := r.Lookup("never-used"); ok {
		t.Fatal("Lookup must not create tenants")
	}
	if _, ok := r.Lookup("acme"); !ok {
		t.Fatal("Lookup must find used tenants")
	}
	ids := r.IDs()
	if len(ids) != 2 || ids[0] != "acme" || ids[1] != Default {
		t.Fatalf("IDs() = %v", ids)
	}
}

func TestRegistryDeclareAndWildcard(t *testing.T) {
	r, err := NewRegistry("public")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Declare("acme", Quotas{MaxRules: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Declare("*", Quotas{MaxRules: 1}); err != nil {
		t.Fatal(err)
	}
	acme, _ := r.Resolve("acme")
	if acme.Quotas().MaxRules != 2 {
		t.Fatalf("declared quotas lost: %+v", acme.Quotas())
	}
	other, _ := r.Resolve("other")
	if other.Quotas().MaxRules != 1 {
		t.Fatalf("wildcard quotas not applied: %+v", other.Quotas())
	}
	// The default tenant pre-dates the wildcard declaration, so it keeps
	// its unlimited quotas.
	def, _ := r.Resolve("")
	if def.Quotas().MaxRules != 0 {
		t.Fatalf("default tenant quotas changed: %+v", def.Quotas())
	}
}

func TestRuleQuota(t *testing.T) {
	r, _ := NewRegistry("public")
	if err := r.Declare("acme", Quotas{MaxRules: 2}); err != nil {
		t.Fatal(err)
	}
	acme, _ := r.Resolve("acme")
	if err := acme.AcquireRule(); err != nil {
		t.Fatal(err)
	}
	if err := acme.AcquireRule(); err != nil {
		t.Fatal(err)
	}
	err := acme.AcquireRule()
	if !IsQuota(err) {
		t.Fatalf("third AcquireRule = %v, want quota error", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "max-rules" || qe.Tenant != "acme" {
		t.Fatalf("quota error = %+v", qe)
	}
	acme.ReleaseRule()
	if err := acme.AcquireRule(); err != nil {
		t.Fatalf("after release: %v", err)
	}
	// ForceRule bypasses the cap (recovery path) but still counts.
	acme.ForceRule()
	if got := acme.Rules(); got != 3 {
		t.Fatalf("Rules() = %d, want 3", got)
	}
}

func TestPendingQuota(t *testing.T) {
	r, _ := NewRegistry("public")
	r.Declare("acme", Quotas{MaxPendingEvents: 3})
	acme, _ := r.Resolve("acme")
	if err := acme.AcquirePending(2); err != nil {
		t.Fatal(err)
	}
	// All-or-nothing: 2+2 > 3 admits none.
	if err := acme.AcquirePending(2); !IsQuota(err) {
		t.Fatalf("over-quota AcquirePending = %v", err)
	}
	if got := acme.Pending(); got != 2 {
		t.Fatalf("Pending() = %d after rejected acquire, want 2", got)
	}
	if err := acme.AcquirePending(1); err != nil {
		t.Fatal(err)
	}
	acme.ReleasePending(3)
	if got := acme.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after release, want 0", got)
	}
}

func TestRateQuotaDeterministic(t *testing.T) {
	clock := time.Unix(1000, 0)
	r, _ := NewRegistry("public", WithClock(func() time.Time { return clock }))
	r.Declare("acme", Quotas{EventRate: 10, EventBurst: 5})
	acme, _ := r.Resolve("acme")

	// Bucket starts full at burst depth.
	if err := acme.AdmitEvents(5); err != nil {
		t.Fatal(err)
	}
	if err := acme.AdmitEvents(1); !IsQuota(err) {
		t.Fatalf("drained bucket admitted: %v", err)
	}
	// 300ms at 10/s refills 3 tokens.
	clock = clock.Add(300 * time.Millisecond)
	if err := acme.AdmitEvents(3); err != nil {
		t.Fatal(err)
	}
	if err := acme.AdmitEvents(1); !IsQuota(err) {
		t.Fatalf("over-refill admit: %v", err)
	}
	// A long idle period caps at burst, not rate*elapsed.
	clock = clock.Add(time.Hour)
	if err := acme.AdmitEvents(6); !IsQuota(err) {
		t.Fatalf("bucket exceeded burst after idle: %v", err)
	}
	if err := acme.AdmitEvents(5); err != nil {
		t.Fatal(err)
	}
}

func TestRateQuotaDefaultBurst(t *testing.T) {
	clock := time.Unix(0, 0)
	r, _ := NewRegistry("public", WithClock(func() time.Time { return clock }))
	r.Declare("a", Quotas{EventRate: 2.5})
	a, _ := r.Resolve("a")
	// burst defaults to ceil(rate) = 3
	if err := a.AdmitEvents(3); err != nil {
		t.Fatal(err)
	}
	if err := a.AdmitEvents(1); !IsQuota(err) {
		t.Fatalf("default burst too deep: %v", err)
	}
}

// TestConcurrentRuleQuotaExact races N goroutines against a max-rules
// quota and asserts the boundary is exact: precisely MaxRules
// acquisitions succeed, no over- or under-admission.
func TestConcurrentRuleQuotaExact(t *testing.T) {
	const limit, racers = 37, 128
	r, _ := NewRegistry("public")
	r.Declare("acme", Quotas{MaxRules: limit})
	acme, _ := r.Resolve("acme")

	var admitted, rejected atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := acme.AcquireRule(); err == nil {
				admitted.Add(1)
			} else if IsQuota(err) {
				rejected.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted.Load() != limit {
		t.Fatalf("admitted %d rule slots, want exactly %d", admitted.Load(), limit)
	}
	if rejected.Load() != racers-limit {
		t.Fatalf("rejected %d, want %d", rejected.Load(), racers-limit)
	}
	if acme.Rules() != limit {
		t.Fatalf("Rules() = %d, want %d", acme.Rules(), limit)
	}
}

// TestConcurrentRateQuotaExact races N goroutines against a frozen
// token bucket: with the clock pinned there is no refill, so exactly
// `burst` single-event admissions may succeed.
func TestConcurrentRateQuotaExact(t *testing.T) {
	const burst, racers = 50, 200
	clock := time.Unix(500, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	r, _ := NewRegistry("public", WithClock(now))
	r.Declare("acme", Quotas{EventRate: 1, EventBurst: burst})
	acme, _ := r.Resolve("acme")

	var admitted atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := acme.AdmitEvents(1); err == nil {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted.Load() != burst {
		t.Fatalf("admitted %d events from a %d-token bucket, want exactly %d", admitted.Load(), burst, burst)
	}
}

// TestConcurrentPendingQuotaExact races mixed-size acquisitions against
// a pending cap and asserts the sum of admitted sizes never exceeds the
// cap and the final count equals admitted-released.
func TestConcurrentPendingQuotaExact(t *testing.T) {
	const cap, racers = 64, 100
	r, _ := NewRegistry("public")
	r.Declare("acme", Quotas{MaxPendingEvents: cap})
	acme, _ := r.Resolve("acme")

	var admitted atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		n := 1 + i%3
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			<-start
			if err := acme.AcquirePending(n); err == nil {
				admitted.Add(int64(n))
			}
		}(n)
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got > cap {
		t.Fatalf("admitted %d pending events over the %d cap", got, cap)
	}
	if got := acme.Pending(); int64(got) != admitted.Load() {
		t.Fatalf("Pending() = %d, admitted = %d", got, admitted.Load())
	}
}

func TestParseQuotaSpec(t *testing.T) {
	id, q, err := ParseQuotaSpec("acme:max-rules=100,max-pending-events=64,rate=50,burst=100")
	if err != nil {
		t.Fatal(err)
	}
	if id != "acme" || q.MaxRules != 100 || q.MaxPendingEvents != 64 || q.EventRate != 50 || q.EventBurst != 100 {
		t.Fatalf("parsed %q %+v", id, q)
	}
	id, q, err = ParseQuotaSpec("*:rate=10")
	if err != nil {
		t.Fatal(err)
	}
	if id != "*" || q.EventRate != 10 {
		t.Fatalf("parsed %q %+v", id, q)
	}
	if _, _, err := ParseQuotaSpec("no-colon"); err == nil {
		t.Fatal("missing colon must fail")
	}
	if _, _, err := ParseQuotaSpec("acme:bogus=1"); err == nil {
		t.Fatal("unknown key must fail")
	}
	if _, _, err := ParseQuotaSpec("acme:rate=-1"); err == nil {
		t.Fatal("negative rate must fail")
	}
	if _, _, err := ParseQuotaSpec("Bad Tenant:rate=1"); err == nil {
		t.Fatal("invalid tenant must fail")
	}
}
