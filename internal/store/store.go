package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/xmltree"
)

// FsyncPolicy controls when journal appends are forced to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append: no accepted record is ever
	// lost, at the cost of one fsync per record.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a background ticker (Options.FsyncInterval):
	// at most one interval of accepted records is exposed to power loss.
	// Process crashes (SIGKILL) lose nothing under any policy — appends
	// reach the OS page cache before the call returns.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves syncing to the operating system.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy string (e.g. an -fsync flag value).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
}

// DefaultSnapshotEvery is how many journal records accumulate before the
// store snapshots and compacts.
const DefaultSnapshotEvery = 1024

// DefaultFsyncInterval is the background sync cadence under FsyncInterval.
const DefaultFsyncInterval = 100 * time.Millisecond

// Journal and snapshot file names inside the data directory.
const (
	journalFile  = "journal.eca"
	snapshotFile = "snapshot.eca"
)

// Options configures Open.
type Options struct {
	// Fsync is the journal sync policy; FsyncInterval when empty.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval;
	// DefaultFsyncInterval when zero.
	FsyncInterval time.Duration
	// SnapshotEvery triggers snapshot + compaction after this many journal
	// records; DefaultSnapshotEvery when zero, negative disables automatic
	// snapshots (graceful Close still compacts).
	SnapshotEvery int
	// Obs receives store metrics and recovery trace spans; nil runs the
	// store uninstrumented.
	Obs *obs.Hub
	// Log receives structured warnings (skipped records, torn tails); nil
	// disables logging.
	Log *obs.Logger
}

// ruleEntry is the mirrored live state of one registered rule.
type ruleEntry struct {
	ID         string    `json:"id"`
	Doc        string    `json:"doc"`
	Registered time.Time `json:"registered"`
	Tenant     string    `json:"tenant,omitempty"`
}

// eventEntry is one accepted event not yet dispatched into the engine.
type eventEntry struct {
	ID       uint64    `json:"id"`
	Doc      string    `json:"doc"`
	Accepted time.Time `json:"accepted"`
	Tenant   string    `json:"tenant,omitempty"`
}

// ruleKey is the mirror's map key for one rule: rule ids are assigned per
// tenant space (two tenants each own a "rule-1"), so the key composes the
// tenant's wire form with the id. The default tenant keys by bare id,
// matching every record a pre-tenant journal can contain. \x00 cannot
// appear in a tenant slug, so keys never collide across tenants.
func ruleKey(tenant, id string) string {
	if tenant == "" {
		return id
	}
	return tenant + "\x00" + id
}

// snapshotPayload is the snapshot file's JSON body (wrapped in one frame).
type snapshotPayload struct {
	Kind     string       `json:"kind"` // KindSnapshot
	Time     time.Time    `json:"time"`
	EventSeq uint64       `json:"event_seq"`
	Rules    []ruleEntry  `json:"rules"`
	Events   []eventEntry `json:"events"`
}

// metrics are the store's observability instruments; all nil-safe.
type metrics struct {
	records   *obs.CounterVec // store_journal_records_total{kind}
	errs      *obs.Counter    // store_journal_errors_total
	fsyncSec  *obs.Histogram  // store_fsync_seconds
	snapSec   *obs.Histogram  // store_snapshot_seconds
	recRules  *obs.Counter    // store_recovery_rules_total
	recEvents *obs.Counter    // store_recovery_events_total
	recSkip   *obs.Counter    // store_recovery_skipped_total
}

func newMetrics(h *obs.Hub) metrics {
	r := h.Metrics()
	return metrics{
		records:   r.CounterVec("store_journal_records_total", "Journal records appended, by record kind.", "kind"),
		errs:      r.Counter("store_journal_errors_total", "Journal append or sync failures."),
		fsyncSec:  r.Histogram("store_fsync_seconds", "Journal fsync latency.", nil),
		snapSec:   r.Histogram("store_snapshot_seconds", "Snapshot write + journal compaction latency.", nil),
		recRules:  r.Counter("store_recovery_rules_total", "Rules re-registered during crash recovery."),
		recEvents: r.Counter("store_recovery_events_total", "Orphaned events re-enqueued during crash recovery."),
		recSkip:   r.Counter("store_recovery_skipped_total", "Journal/snapshot records skipped during recovery (parse or re-register failure)."),
	}
}

// Store is the durable rule/event store. Safe for concurrent use. All
// write methods are no-ops on a nil *Store, so callers may hold one
// unconditionally.
type Store struct {
	dir    string
	policy FsyncPolicy
	every  int
	met    metrics
	log    *obs.Logger
	hub    *obs.Hub

	mu             sync.Mutex
	journal        *os.File
	journalRecords int   // records in the journal since the last snapshot
	journalBytes   int64 // journal file size
	needsSync      bool
	eventSeq       uint64
	rules          map[string]ruleEntry
	ruleOrder      []string // registration order of live rules
	events         map[uint64]eventEntry
	lastSnapshot   time.Time
	recovering     bool
	closed         bool

	// Replication tap (see replication.go): repSeq numbers every appended
	// record; repSink, when set, receives each framed record for shipping
	// to a follower.
	repSeq  uint64
	repSink func(RepRecord)

	// recovered* freeze what Open reconstructed, for Health and tests.
	recoveredRules   int
	recoveredEvents  int
	recoveredSkipped int
	openSkipped      int // replay records skipped during Open

	trace *obs.Instance // recovery trace instance, finished by Recover/Close

	stopSync chan struct{}
	syncDone sync.WaitGroup
}

// Open opens (creating if necessary) the durable store rooted at dir: it
// loads the latest snapshot, replays the journal tail into the in-memory
// mirror, truncates any torn final record, and leaves the journal
// positioned for appends. The reconstructed state is exposed through
// RecoveredRules/PendingEvents until Recover replays it into an engine.
func Open(dir string, o Options) (*Store, error) {
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if _, err := ParseFsyncPolicy(string(o.Fsync)); err != nil {
		return nil, err
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		policy:   o.Fsync,
		every:    o.SnapshotEvery,
		met:      newMetrics(o.Obs),
		log:      o.Log,
		hub:      o.Obs,
		rules:    map[string]ruleEntry{},
		events:   map[uint64]eventEntry{},
		stopSync: make(chan struct{}),
	}
	s.trace = o.Obs.Traces().Begin("store")

	snapStart := time.Now()
	s.loadSnapshot()
	s.trace.AddSpan(obs.Span{Stage: "store", Component: "snapshot-load", Mode: "store",
		TuplesOut: len(s.rules) + len(s.events), Start: snapStart, Duration: time.Since(snapStart)})

	replayStart := time.Now()
	replayed, err := s.openJournal()
	if err != nil {
		return nil, err
	}
	s.trace.AddSpan(obs.Span{Stage: "store", Component: "journal-replay", Mode: "store",
		TuplesIn: replayed, TuplesOut: len(s.rules) + len(s.events), Start: replayStart, Duration: time.Since(replayStart)})

	if s.policy == FsyncInterval {
		s.syncDone.Add(1)
		go s.syncLoop(o.FsyncInterval)
	}
	return s, nil
}

// loadSnapshot reads the snapshot file into the mirror. A missing file is
// a fresh store; a torn or unparsable snapshot is logged, metered and
// skipped — recovery then proceeds from the journal alone.
func (s *Store) loadSnapshot() {
	f, err := os.Open(filepath.Join(s.dir, snapshotFile))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.warn("snapshot unreadable, recovering from journal only", "error", err.Error())
			s.met.recSkip.Inc()
			s.openSkipped++
		}
		return
	}
	defer f.Close()
	payload, err := readFrame(bufio.NewReader(f))
	if err != nil {
		s.warn("snapshot torn or corrupt, recovering from journal only", "error", err.Error())
		s.met.recSkip.Inc()
		s.openSkipped++
		return
	}
	var snap snapshotPayload
	if err := json.Unmarshal(payload, &snap); err != nil || snap.Kind != KindSnapshot {
		s.warn("snapshot payload invalid, recovering from journal only", "error", fmt.Sprint(err))
		s.met.recSkip.Inc()
		s.openSkipped++
		return
	}
	s.eventSeq = snap.EventSeq
	for _, r := range snap.Rules {
		k := ruleKey(r.Tenant, r.ID)
		s.rules[k] = r
		s.ruleOrder = append(s.ruleOrder, k)
	}
	for _, e := range snap.Events {
		s.events[e.ID] = e
	}
	s.lastSnapshot = snap.Time
}

// openJournal replays the journal into the mirror, truncates any torn
// tail, and leaves the file open for appending. Returns the number of
// records replayed.
func (s *Store) openJournal() (int, error) {
	path := filepath.Join(s.dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	br := bufio.NewReader(f)
	var good int64
	replayed := 0
	for {
		payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, errTorn) {
				s.warn("torn journal tail discarded", "offset", good, "error", err.Error())
			}
			break
		}
		good += int64(frameHeaderSize + len(payload))
		replayed++
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			s.warn("unparsable journal record skipped", "error", err.Error())
			s.met.recSkip.Inc()
			s.openSkipped++
			continue
		}
		s.apply(rec)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: %w", err)
	}
	s.journal = f
	s.journalRecords = replayed
	s.journalBytes = good
	return replayed, nil
}

// apply folds one journal record into the mirror. Duplicate registers
// overwrite (last write wins), unregisters of unknown rules and acks of
// unknown events are no-ops — replay is idempotent.
func (s *Store) apply(rec record) {
	switch rec.Kind {
	case KindRegister:
		k := ruleKey(rec.Tenant, rec.Rule)
		if _, live := s.rules[k]; !live {
			s.ruleOrder = append(s.ruleOrder, k)
		}
		s.rules[k] = ruleEntry{ID: rec.Rule, Doc: rec.Doc, Registered: rec.Time, Tenant: rec.Tenant}
	case KindUnregister:
		k := ruleKey(rec.Tenant, rec.Rule)
		if _, live := s.rules[k]; live {
			delete(s.rules, k)
			s.dropOrder(k)
		}
	case KindEvent:
		if rec.Event > s.eventSeq {
			s.eventSeq = rec.Event
		}
		s.events[rec.Event] = eventEntry{ID: rec.Event, Doc: rec.Doc, Accepted: rec.Time, Tenant: rec.Tenant}
	case KindEventAck:
		delete(s.events, rec.Event)
	default:
		s.warn("unknown journal record kind skipped", "kind", rec.Kind)
		s.met.recSkip.Inc()
		s.openSkipped++
	}
}

func (s *Store) dropOrder(id string) {
	for i, r := range s.ruleOrder {
		if r == id {
			s.ruleOrder = append(s.ruleOrder[:i], s.ruleOrder[i+1:]...)
			return
		}
	}
}

// --- runtime appends ---------------------------------------------------------------

// RuleRegistered journals a successful rule registration in the default
// tenant's space. doc is the full ECA-ML rule document; a nil doc (a rule
// built programmatically rather than parsed) cannot be made durable and is
// logged and skipped. Implements the engine's Journal hook; non-default
// tenants journal through Scoped.
func (s *Store) RuleRegistered(id string, doc *xmltree.Node, at time.Time) {
	s.ruleRegistered("", id, doc, at)
}

// RuleUnregistered journals a rule withdrawal from the default tenant's
// space. Implements the engine's Journal hook.
func (s *Store) RuleUnregistered(id string) {
	s.ruleUnregistered("", id)
}

func (s *Store) ruleRegistered(tenant, id string, doc *xmltree.Node, at time.Time) {
	if s == nil {
		return
	}
	if doc == nil {
		s.warn("rule has no source document, not journaled", "rule", id)
		s.met.errs.Inc()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || s.closed {
		return
	}
	k := ruleKey(tenant, id)
	if _, live := s.rules[k]; !live {
		s.ruleOrder = append(s.ruleOrder, k)
	}
	s.rules[k] = ruleEntry{ID: id, Doc: doc.String(), Registered: at, Tenant: tenant}
	s.appendLocked(record{Kind: KindRegister, Time: at, Rule: id, Doc: doc.String(), Tenant: tenant})
}

func (s *Store) ruleUnregistered(tenant, id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || s.closed {
		return
	}
	k := ruleKey(tenant, id)
	delete(s.rules, k)
	s.dropOrder(k)
	s.appendLocked(record{Kind: KindUnregister, Time: time.Now(), Rule: id, Tenant: tenant})
}

// TenantJournal is a Store view scoped to one tenant's rule space: rule
// life-cycle records it writes carry the tenant, so recovery can rebuild
// each tenant's space separately. It implements the engine's Journal hook;
// each per-tenant engine gets its own scoped view over the shared store.
// All methods are nil-safe.
type TenantJournal struct {
	s      *Store
	tenant string
}

// Scoped returns the store's journal view for one tenant (wire form: the
// empty string is the default tenant, equivalent to the Store's own
// RuleRegistered/RuleUnregistered). A nil store yields a nil, still-safe
// view.
func (s *Store) Scoped(tenant string) *TenantJournal {
	if s == nil {
		return nil
	}
	return &TenantJournal{s: s, tenant: tenant}
}

// RuleRegistered journals a registration in the scoped tenant's space.
func (j *TenantJournal) RuleRegistered(id string, doc *xmltree.Node, at time.Time) {
	if j == nil {
		return
	}
	j.s.ruleRegistered(j.tenant, id, doc, at)
}

// RuleUnregistered journals a withdrawal from the scoped tenant's space.
func (j *TenantJournal) RuleUnregistered(id string) {
	if j == nil {
		return
	}
	j.s.ruleUnregistered(j.tenant, id)
}

// AppendEvent journals an accepted atomic event of the default tenant
// before it is dispatched into the engine, returning the store-local event
// id to acknowledge with AckEvent once dispatch completes. Events accepted
// but never acked are re-enqueued by crash recovery.
func (s *Store) AppendEvent(doc *xmltree.Node) (uint64, error) {
	if s == nil || doc == nil {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || s.closed {
		return 0, nil
	}
	s.eventSeq++
	id := s.eventSeq
	now := time.Now()
	s.events[id] = eventEntry{ID: id, Doc: doc.String(), Accepted: now}
	if err := s.appendLocked(record{Kind: KindEvent, Time: now, Event: id, Doc: doc.String()}); err != nil {
		delete(s.events, id)
		return 0, err
	}
	return id, nil
}

// AppendEventBatch journals a batch of accepted atomic events of the
// default tenant; see AppendEventBatchTenant.
func (s *Store) AppendEventBatch(docs []*xmltree.Node) ([]uint64, error) {
	return s.AppendEventBatchTenant("", docs)
}

// AppendEventBatchTenant journals a batch of accepted atomic events for
// one tenant under a single lock acquisition — and, under FsyncAlways, a
// single fsync for the whole batch — returning one store-local id per
// event, in order. This is the durability half of batched admission: N
// events cost one mutex round-trip and one disk flush instead of N.
// Batch envelopes are single-tenant, so one tenant per call suffices; the
// tenant (wire form, "" = default) rides on each event record so recovery
// republishes it into the right space. Ids are acknowledged with AckEvents
// once the batch has been dispatched.
func (s *Store) AppendEventBatchTenant(tenant string, docs []*xmltree.Node) ([]uint64, error) {
	if s == nil || len(docs) == 0 {
		return make([]uint64, len(docs)), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || s.closed {
		return make([]uint64, len(docs)), nil
	}
	ids := make([]uint64, 0, len(docs))
	now := time.Now()
	for _, doc := range docs {
		if doc == nil {
			ids = append(ids, 0)
			continue
		}
		s.eventSeq++
		id := s.eventSeq
		s.events[id] = eventEntry{ID: id, Doc: doc.String(), Accepted: now, Tenant: tenant}
		if err := s.appendRecordLocked(record{Kind: KindEvent, Time: now, Event: id, Doc: doc.String(), Tenant: tenant}, false); err != nil {
			delete(s.events, id)
			// The already-journaled prefix stays accepted; sync it so the
			// caller's view (publish the prefix, fail the rest) matches disk.
			if s.policy == FsyncAlways {
				s.syncLocked()
			}
			return ids, err
		}
		ids = append(ids, id)
	}
	if s.policy == FsyncAlways {
		s.syncLocked()
	}
	s.maybeSnapshotLocked()
	return ids, nil
}

// AckEvent journals that the event with the given id has been dispatched
// into the engine and no longer needs replay. Id 0 (from a nil store) is
// ignored.
func (s *Store) AckEvent(id uint64) {
	if s == nil || id == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || s.closed {
		return
	}
	delete(s.events, id)
	s.appendLocked(record{Kind: KindEventAck, Event: id})
}

// AckEvents journals the dispatch acknowledgement for a whole admitted
// batch under one lock acquisition. Zero ids (nil store, shed events) are
// skipped.
func (s *Store) AckEvents(ids []uint64) {
	if s == nil || len(ids) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || s.closed {
		return
	}
	for _, id := range ids {
		if id == 0 {
			continue
		}
		delete(s.events, id)
		s.appendRecordLocked(record{Kind: KindEventAck, Event: id}, false)
	}
	if s.policy == FsyncAlways {
		s.syncLocked()
	}
	s.maybeSnapshotLocked()
}

// appendLocked frames and writes one record, applies the fsync policy and
// triggers snapshot + compaction when the journal has grown past the
// configured threshold. Caller holds s.mu.
func (s *Store) appendLocked(rec record) error {
	if err := s.appendRecordLocked(rec, s.policy == FsyncAlways); err != nil {
		return err
	}
	s.maybeSnapshotLocked()
	return nil
}

// appendRecordLocked frames and writes one record, optionally fsyncing.
// Batched appenders pass sync=false and flush once at the end. Caller
// holds s.mu.
func (s *Store) appendRecordLocked(rec record, sync bool) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		s.met.errs.Inc()
		s.warn("journal encode failed", "kind", rec.Kind, "error", err.Error())
		return err
	}
	if _, err := s.journal.Write(frame); err != nil {
		s.met.errs.Inc()
		s.warn("journal append failed", "kind", rec.Kind, "error", err.Error())
		return err
	}
	s.journalRecords++
	s.journalBytes += int64(len(frame))
	s.needsSync = true
	s.met.records.With(rec.Kind).Inc()
	s.repSeq++
	if s.repSink != nil {
		s.repSink(RepRecord{Seq: s.repSeq, Frame: frame})
	}
	if sync {
		s.syncLocked()
	}
	return nil
}

// maybeSnapshotLocked snapshots + compacts when the journal has grown past
// the configured record threshold. Caller holds s.mu.
func (s *Store) maybeSnapshotLocked() {
	if s.every > 0 && s.journalRecords >= s.every {
		if err := s.snapshotLocked(); err != nil {
			s.warn("automatic snapshot failed", "error", err.Error())
		}
	}
}

// syncLocked fsyncs the journal, timing the call. Caller holds s.mu.
func (s *Store) syncLocked() {
	if !s.needsSync || s.journal == nil {
		return
	}
	start := time.Now()
	if err := s.journal.Sync(); err != nil {
		s.met.errs.Inc()
		s.warn("journal fsync failed", "error", err.Error())
		return
	}
	s.needsSync = false
	s.met.fsyncSec.Observe(obs.Since(start))
}

func (s *Store) syncLoop(interval time.Duration) {
	defer s.syncDone.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				s.syncLocked()
			}
			s.mu.Unlock()
		case <-s.stopSync:
			return
		}
	}
}

// --- snapshot + compaction ---------------------------------------------------------

// Snapshot writes the live mirror to the snapshot file and compacts the
// journal to empty, bounding the next boot's replay cost by live state.
func (s *Store) Snapshot() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	start := time.Now()
	snap := snapshotPayload{Kind: KindSnapshot, Time: start, EventSeq: s.eventSeq}
	for _, id := range s.ruleOrder {
		snap.Rules = append(snap.Rules, s.rules[id])
	}
	for _, id := range s.eventOrderLocked() {
		snap.Events = append(snap.Events, s.events[id])
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: snapshot marshal: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	final := filepath.Join(s.dir, snapshotFile)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(encodeFrame(payload)); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// The snapshot now owns everything the journal said; compact. A crash
	// between the rename and the truncate merely replays records already
	// folded into the snapshot — apply() is idempotent.
	if err := s.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: journal compaction: %w", err)
	}
	if _, err := s.journal.Seek(0, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.syncDir()
	s.journalRecords = 0
	s.journalBytes = 0
	s.needsSync = false
	s.lastSnapshot = start
	s.met.snapSec.Observe(obs.Since(start))
	s.info("snapshot written, journal compacted",
		"rules", len(snap.Rules), "pending_events", len(snap.Events), "seconds", time.Since(start).Seconds())
	return nil
}

func (s *Store) eventOrderLocked() []uint64 {
	ids := make([]uint64, 0, len(s.events))
	for id := range s.events {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// syncDir fsyncs the data directory so renames and truncates are durable.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// --- recovery ----------------------------------------------------------------------

// RecoveryStats summarizes one Recover pass.
type RecoveryStats struct {
	// Rules were re-registered into the engine.
	Rules int
	// Events were re-enqueued (orphaned: accepted but never dispatched).
	Events int
	// Skipped records failed to parse or re-register and were dropped
	// with a logged warning.
	Skipped int
}

// RecoveredRule is one live rule reconstructed by Open.
type RecoveredRule struct {
	ID         string
	Doc        string
	Registered time.Time
	// Tenant is the owning namespace in wire form ("" = default tenant).
	Tenant string
}

// RecoveredRules returns the live rules reconstructed by Open, in
// registration order.
func (s *Store) RecoveredRules() []RecoveredRule {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RecoveredRule, 0, len(s.ruleOrder))
	for _, id := range s.ruleOrder {
		r := s.rules[id]
		out = append(out, RecoveredRule{ID: r.ID, Doc: r.Doc, Registered: r.Registered, Tenant: r.Tenant})
	}
	return out
}

// PendingEvents returns the payloads of accepted-but-undispatched events,
// oldest first.
func (s *Store) PendingEvents() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.events))
	for _, id := range s.eventOrderLocked() {
		out = append(out, s.events[id].Doc)
	}
	return out
}

// Recover replays the reconstructed state into a running system through
// tenant-blind callbacks: every record replays as if it belonged to the
// default tenant. Single-tenant deployments (and tests) use it; systems
// with named tenants recover through RecoverTenants so each rule and
// event lands in its own space.
func (s *Store) Recover(
	register func(id string, doc *xmltree.Node, registered time.Time) error,
	publish func(doc *xmltree.Node) error,
) (RecoveryStats, error) {
	if s == nil {
		return RecoveryStats{}, nil
	}
	return s.RecoverTenants(
		func(_, id string, doc *xmltree.Node, registered time.Time) error {
			return register(id, doc, registered)
		},
		func(_ string, doc *xmltree.Node) error { return publish(doc) },
	)
}

// RecoverTenants replays the reconstructed state into a running system:
// every live rule document is parsed and handed to register (in
// registration order) with the tenant it was journaled under, then every
// orphaned event is parsed and handed to publish with its tenant. A
// record that fails to parse or re-register is dropped with a logged,
// metered warning — recovery never aborts on bad data. Afterwards the
// store snapshots and compacts, so the replayed events are not replayed
// again on the next boot.
//
// Journal appends are suppressed while the callbacks run (the records
// being replayed are already durable).
func (s *Store) RecoverTenants(
	register func(tenant, id string, doc *xmltree.Node, registered time.Time) error,
	publish func(tenant string, doc *xmltree.Node) error,
) (RecoveryStats, error) {
	if s == nil {
		return RecoveryStats{}, nil
	}
	s.mu.Lock()
	rules := make([]ruleEntry, 0, len(s.ruleOrder))
	for _, id := range s.ruleOrder {
		rules = append(rules, s.rules[id])
	}
	eventIDs := s.eventOrderLocked()
	events := make([]eventEntry, 0, len(eventIDs))
	for _, id := range eventIDs {
		events = append(events, s.events[id])
	}
	s.recovering = true
	stats := RecoveryStats{Skipped: s.openSkipped}
	s.mu.Unlock()

	ruleStart := time.Now()
	var dead []string
	for _, r := range rules {
		doc, err := xmltree.ParseString(r.Doc)
		if err == nil {
			err = register(r.Tenant, r.ID, doc, r.Registered)
		}
		if err != nil {
			stats.Skipped++
			s.met.recSkip.Inc()
			s.warn("recovered rule skipped", "rule", r.ID, "tenant", r.Tenant, "error", err.Error(), "doc", r.Doc)
			dead = append(dead, ruleKey(r.Tenant, r.ID))
			continue
		}
		stats.Rules++
		s.met.recRules.Inc()
	}
	s.trace.AddSpan(obs.Span{Stage: "store", Component: "recover-rules", Mode: "store",
		TuplesIn: len(rules), TuplesOut: stats.Rules, Start: ruleStart, Duration: time.Since(ruleStart)})

	evStart := time.Now()
	for _, e := range events {
		doc, err := xmltree.ParseString(e.Doc)
		if err == nil {
			err = publish(e.Tenant, doc)
		}
		if err != nil {
			stats.Skipped++
			s.met.recSkip.Inc()
			s.warn("recovered event skipped", "event", e.ID, "tenant", e.Tenant, "error", err.Error(), "doc", e.Doc)
			continue
		}
		stats.Events++
		s.met.recEvents.Inc()
	}
	s.trace.AddSpan(obs.Span{Stage: "store", Component: "recover-events", Mode: "store",
		TuplesIn: len(events), TuplesOut: stats.Events, Start: evStart, Duration: time.Since(evStart)})

	s.mu.Lock()
	for _, id := range dead {
		delete(s.rules, id)
		s.dropOrder(id)
	}
	// Every replayed event has been dispatched; nothing is pending now.
	s.events = map[uint64]eventEntry{}
	s.recovering = false
	s.recoveredRules = stats.Rules
	s.recoveredEvents = stats.Events
	s.recoveredSkipped = stats.Skipped
	err := s.snapshotLocked()
	s.mu.Unlock()
	s.trace.Finish("completed")
	s.info("recovery complete", "rules", stats.Rules, "events", stats.Events, "skipped", stats.Skipped)
	return stats, err
}

// --- life cycle / introspection ----------------------------------------------------

// Close snapshots and compacts one last time, stops the background sync
// loop, syncs and closes the journal. Safe to call more than once.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	snapErr := s.snapshotLocked()
	s.syncLocked()
	err := s.journal.Close()
	s.mu.Unlock()
	close(s.stopSync)
	s.syncDone.Wait()
	s.trace.Finish("completed")
	if snapErr != nil {
		return snapErr
	}
	return err
}

// Health is the store section of the /healthz response.
type Health struct {
	Dir              string    `json:"dir"`
	Fsync            string    `json:"fsync"`
	Rules            int       `json:"rules"`
	PendingEvents    int       `json:"pending_events"`
	JournalRecords   int       `json:"journal_records"`
	JournalBytes     int64     `json:"journal_bytes"`
	LastSnapshot     time.Time `json:"last_snapshot,omitempty"`
	RecoveredRules   int       `json:"recovered_rules"`
	RecoveredEvents  int       `json:"recovered_events"`
	RecoveredSkipped int       `json:"recovered_skipped"`
}

// Health snapshots the store's introspection counters.
func (s *Store) Health() Health {
	if s == nil {
		return Health{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Health{
		Dir:              s.dir,
		Fsync:            string(s.policy),
		Rules:            len(s.rules),
		PendingEvents:    len(s.events),
		JournalRecords:   s.journalRecords,
		JournalBytes:     s.journalBytes,
		LastSnapshot:     s.lastSnapshot,
		RecoveredRules:   s.recoveredRules,
		RecoveredEvents:  s.recoveredEvents,
		RecoveredSkipped: s.recoveredSkipped,
	}
}

func (s *Store) warn(msg string, args ...any) { s.log.Warn("store: "+msg, args...) }
func (s *Store) info(msg string, args ...any) { s.log.Info("store: "+msg, args...) }
