// Package store is the durability subsystem: an append-only, checksummed
// write-ahead journal of rule life-cycle records (register/unregister,
// carrying the full ECA-ML document verbatim) and accepted-but-not-yet-
// dispatched atomic events, plus periodic snapshots with journal
// compaction so startup cost is bounded by live state, not history, and
// crash recovery that replays snapshot + journal tail on boot.
//
// The subsystem is strictly opt-in: an engine wired without a Store keeps
// today's purely in-memory behaviour. See docs/DURABILITY.md for the
// record format, fsync policies, recovery semantics and the ops runbook.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Record kinds appearing in the journal.
const (
	KindRegister   = "register"   // rule registered: Rule id + Doc (ECA-ML verbatim)
	KindUnregister = "unregister" // rule withdrawn: Rule id
	KindEvent      = "event"      // atomic event accepted: Event id + Doc (payload XML)
	KindEventAck   = "event_ack"  // event dispatched into the engine: Event id
	KindSnapshot   = "snapshot"   // snapshot-file payload (never in the journal)
)

// record is one journal entry. Kind decides which of the other fields are
// meaningful.
type record struct {
	Kind string `json:"kind"`
	// Time stamps the record (registration time for rules, acceptance
	// time for events).
	Time time.Time `json:"time,omitempty"`
	// Rule is the rule id for register/unregister records.
	Rule string `json:"rule,omitempty"`
	// Event is the store-local event id for event/event_ack records.
	Event uint64 `json:"event,omitempty"`
	// Doc is the XML document verbatim: the full ECA-ML rule document for
	// register records, the event payload for event records.
	Doc string `json:"doc,omitempty"`
	// Tenant is the namespace the rule or event belongs to, in wire form:
	// absent (omitted) for the default tenant, so journals written by
	// single-tenant deployments — and by every pre-tenant release — are
	// byte-identical and replay into the default rule space.
	Tenant string `json:"tenant,omitempty"`
}

// Frame layout: a fixed 8-byte header — payload length then IEEE CRC32 of
// the payload, both little-endian uint32 — followed by the JSON payload.
// A torn write (crash mid-append) leaves a short or checksum-mismatching
// final frame, which recovery detects and discards.
const frameHeaderSize = 8

// maxFrameSize bounds a single record so a corrupt length field cannot
// drive recovery into a multi-gigabyte allocation.
const maxFrameSize = 64 << 20

// errTorn marks a frame that is incomplete or fails its checksum — the
// torn tail of a journal interrupted mid-write. Replay stops here.
var errTorn = errors.New("store: torn or corrupt frame")

// encodeFrame renders payload as header+payload bytes.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// readFrame reads one frame. io.EOF means a clean end; errTorn (possibly
// wrapped) means a partial or corrupt frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header: %v", errTorn, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrameSize {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit", errTorn, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", errTorn, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", errTorn)
	}
	return payload, nil
}

// encodeRecord marshals a record into a framed byte slice.
func encodeRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return encodeFrame(payload), nil
}
