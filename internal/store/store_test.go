package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/xmltree"
)

func doc(t *testing.T, src string) *xmltree.Node {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func ruleDoc(t *testing.T, marker string) *xmltree.Node {
	t.Helper()
	return doc(t, `<eca:rule xmlns:eca="http://eca/" xmlns:t="http://t/">
	  <eca:event><t:e m="`+marker+`"/></eca:event>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`)
}

func open(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Registered rules and unacked events survive a reopen; acked events and
// unregistered rules do not.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Fsync: FsyncAlways})
	s.RuleRegistered("r1", ruleDoc(t, "one"), time.Now())
	s.RuleRegistered("r2", ruleDoc(t, "two"), time.Now())
	s.RuleUnregistered("r2")
	id1, err := s.AppendEvent(doc(t, `<t:ev xmlns:t="http://t/" n="1"/>`))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.AppendEvent(doc(t, `<t:ev xmlns:t="http://t/" n="2"/>`))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("event ids = %d, %d", id1, id2)
	}
	s.AckEvent(id1)
	// No Close: simulate a crash (appends are already on disk).

	r := open(t, dir, Options{})
	defer r.Close()
	rules := r.RecoveredRules()
	if len(rules) != 1 || rules[0].ID != "r1" || !strings.Contains(rules[0].Doc, `m="one"`) {
		t.Fatalf("recovered rules = %+v", rules)
	}
	if rules[0].Registered.IsZero() {
		t.Error("registration time lost")
	}
	pending := r.PendingEvents()
	if len(pending) != 1 || !strings.Contains(pending[0], `n="2"`) {
		t.Fatalf("pending events = %v", pending)
	}
}

// A torn final record (crash mid-append) is discarded; everything before
// it is recovered, and the journal accepts appends again afterwards.
func TestTornFinalRecordDiscarded(t *testing.T) {
	for _, tear := range []struct {
		name string
		grow func([]byte) []byte
	}{
		{"partial header", func(b []byte) []byte { return append(b, 0x05, 0x00) }},
		{"partial payload", func(b []byte) []byte {
			frame := encodeFrame([]byte(`{"kind":"unregister","rule":"r1"}`))
			return append(b, frame[:len(frame)-3]...)
		}},
		{"checksum mismatch", func(b []byte) []byte {
			frame := encodeFrame([]byte(`{"kind":"unregister","rule":"r1"}`))
			frame[len(frame)-1] ^= 0xff
			return append(b, frame...)
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{})
			s.RuleRegistered("r1", ruleDoc(t, "keep"), time.Now())
			// Crash: corrupt the tail directly on disk.
			path := filepath.Join(dir, journalFile)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear.grow(data), 0o644); err != nil {
				t.Fatal(err)
			}

			r := open(t, dir, Options{})
			rules := r.RecoveredRules()
			if len(rules) != 1 || rules[0].ID != "r1" {
				t.Fatalf("recovered rules = %+v", rules)
			}
			// The torn tail was truncated: new appends must land on a
			// clean boundary and survive the next reopen.
			r.RuleRegistered("r2", ruleDoc(t, "after"), time.Now())
			r2 := open(t, dir, Options{})
			if got := len(r2.RecoveredRules()); got != 2 {
				t.Fatalf("rules after tear+append = %d, want 2", got)
			}
		})
	}
}

// A truncated snapshot is skipped with a metered warning; recovery falls
// back to the journal tail and the store keeps working.
func TestTruncatedSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	hub := obs.NewHub()
	s := open(t, dir, Options{})
	s.RuleRegistered("in-snapshot", ruleDoc(t, "s"), time.Now())
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.RuleRegistered("in-journal", ruleDoc(t, "j"), time.Now())
	// Crash, then the snapshot gets truncated (disk corruption).
	path := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{Obs: hub})
	rules := r.RecoveredRules()
	if len(rules) != 1 || rules[0].ID != "in-journal" {
		t.Fatalf("recovered rules = %+v (snapshot content is unrecoverable, journal tail must survive)", rules)
	}
	var exp strings.Builder
	hub.Metrics().WritePrometheus(&exp)
	if !strings.Contains(exp.String(), "store_recovery_skipped_total 1") {
		t.Errorf("skip not metered:\n%s", exp.String())
	}
	if h := r.Health(); h.RecoveredSkipped == 0 {
		// Health freezes the counters only after Recover; openSkipped is
		// surfaced through RecoveryStats.
		stats, err := r.Recover(
			func(string, *xmltree.Node, time.Time) error { return nil },
			func(*xmltree.Node) error { return nil },
		)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Skipped != 1 || stats.Rules != 1 {
			t.Errorf("stats = %+v", stats)
		}
	}
}

// Duplicate register/unregister sequences collapse idempotently on
// replay: last write wins, unregister of a gone rule is a no-op.
func TestDuplicateRegisterUnregisterSequences(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.RuleRegistered("r", ruleDoc(t, "v1"), time.Now())
	s.RuleRegistered("r", ruleDoc(t, "v2"), time.Now()) // overwrite
	s.RuleUnregistered("r")
	s.RuleUnregistered("r") // no-op
	s.RuleRegistered("r", ruleDoc(t, "v3"), time.Now())
	s.RuleUnregistered("ghost") // never registered

	r := open(t, dir, Options{})
	rules := r.RecoveredRules()
	if len(rules) != 1 || rules[0].ID != "r" || !strings.Contains(rules[0].Doc, `m="v3"`) {
		t.Fatalf("recovered rules = %+v, want single r at v3", rules)
	}
}

// Recovery skips records that fail to parse or re-register, keeps going,
// and compacts so replayed events are not replayed twice.
func TestRecoverSkipsBadRecordsAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.RuleRegistered("good", ruleDoc(t, "ok"), time.Now())
	s.RuleRegistered("rejected", ruleDoc(t, "rej"), time.Now())
	if _, err := s.AppendEvent(doc(t, `<t:ev xmlns:t="http://t/"/>`)); err != nil {
		t.Fatal(err)
	}
	// Inject a register record whose document is not well-formed XML, as
	// a corrupted-but-checksum-valid journal entry would carry.
	bad, err := encodeRecord(record{Kind: KindRegister, Rule: "mangled", Doc: "<not-closed", Time: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bad); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := open(t, dir, Options{})
	var registered, published []string
	stats, err := r.Recover(
		func(id string, _ *xmltree.Node, _ time.Time) error {
			if id == "rejected" {
				return errors.New("analyzer said no")
			}
			registered = append(registered, id)
			return nil
		},
		func(d *xmltree.Node) error {
			published = append(published, d.Root().Name.Local)
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rules != 1 || stats.Events != 1 || stats.Skipped != 2 {
		t.Fatalf("stats = %+v, want 1 rule, 1 event, 2 skipped", stats)
	}
	if len(registered) != 1 || registered[0] != "good" || len(published) != 1 {
		t.Fatalf("registered = %v, published = %v", registered, published)
	}
	if h := r.Health(); h.PendingEvents != 0 || h.JournalRecords != 0 {
		t.Fatalf("health after recover = %+v, want compacted", h)
	}

	// Second boot: the replayed event must not come back, the skipped
	// rules are gone for good, the good rule is still live.
	r2 := open(t, dir, Options{})
	stats2, err := r2.Recover(
		func(string, *xmltree.Node, time.Time) error { return nil },
		func(*xmltree.Node) error { t.Error("event replayed twice"); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Rules != 1 || stats2.Events != 0 || stats2.Skipped != 0 {
		t.Fatalf("second boot stats = %+v", stats2)
	}
}

// Automatic snapshots bound the journal: after many appends the journal
// holds fewer records than SnapshotEvery and the snapshot carries the
// live state.
func TestAutoSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SnapshotEvery: 4})
	for i := 0; i < 25; i++ {
		s.RuleRegistered(fmt.Sprintf("r%d", i), ruleDoc(t, "x"), time.Now())
	}
	h := s.Health()
	if h.JournalRecords >= 4 {
		t.Errorf("journal records = %d, want < 4 (compaction ran)", h.JournalRecords)
	}
	if h.Rules != 25 {
		t.Errorf("rules = %d", h.Rules)
	}
	if h.LastSnapshot.IsZero() {
		t.Error("no snapshot recorded")
	}

	r := open(t, dir, Options{})
	if got := len(r.RecoveredRules()); got != 25 {
		t.Errorf("recovered = %d, want 25", got)
	}
}

// Close snapshots, so a graceful shutdown leaves an empty journal and a
// complete snapshot; reopen recovers everything including pending events.
func TestCloseCompactsAndPersistsPending(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
	s.RuleRegistered("r", ruleDoc(t, "z"), time.Now())
	if _, err := s.AppendEvent(doc(t, `<t:orphan xmlns:t="http://t/"/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Post-close writes are silently dropped, not crashes.
	s.RuleRegistered("late", ruleDoc(t, "late"), time.Now())

	r := open(t, dir, Options{})
	if got := len(r.RecoveredRules()); got != 1 {
		t.Errorf("recovered rules = %d", got)
	}
	if got := len(r.PendingEvents()); got != 1 {
		t.Errorf("pending events = %d", got)
	}
	if h := r.Health(); h.JournalRecords != 0 {
		t.Errorf("journal not compacted on close: %+v", h)
	}
}

// Event sequence numbers stay monotonic across snapshot+reopen so old
// ack records can never acknowledge a new event.
func TestEventSeqMonotonicAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	id1, _ := s.AppendEvent(doc(t, `<e/>`))
	s.AckEvent(id1)
	s.Close()
	r := open(t, dir, Options{})
	defer r.Close()
	id2, _ := r.AppendEvent(doc(t, `<e/>`))
	if id2 <= id1 {
		t.Errorf("event ids not monotonic: %d then %d", id1, id2)
	}
}

// The journal metrics land in the hub's registry with the documented
// names and the exposition stays lint-clean.
func TestStoreMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	hub := obs.NewHub()
	s := open(t, dir, Options{Obs: hub, Fsync: FsyncAlways})
	defer s.Close()
	s.RuleRegistered("r", ruleDoc(t, "m"), time.Now())
	id, _ := s.AppendEvent(doc(t, `<e/>`))
	s.AckEvent(id)
	var exp strings.Builder
	hub.Metrics().WritePrometheus(&exp)
	out := exp.String()
	for _, want := range []string{
		`store_journal_records_total{kind="register"} 1`,
		`store_journal_records_total{kind="event"} 1`,
		`store_journal_records_total{kind="event_ack"} 1`,
		"store_fsync_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := obs.LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition lint: %v", err)
	}
}

// A nil *Store is a valid no-op for every method, the in-memory mode.
func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	s.RuleRegistered("r", nil, time.Now())
	s.RuleUnregistered("r")
	if id, err := s.AppendEvent(nil); id != 0 || err != nil {
		t.Fatalf("AppendEvent on nil = %d, %v", id, err)
	}
	s.AckEvent(0)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.Rules != 0 {
		t.Fatal("nil health")
	}
	if _, err := s.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, ok := range []string{"always", "interval", "never", ""} {
		if _, err := ParseFsyncPolicy(ok); err != nil {
			t.Errorf("ParseFsyncPolicy(%q) = %v", ok, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// The snapshot file is self-describing JSON in one checksummed frame —
// pin the format so external tooling can rely on it.
func TestSnapshotFormat(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.RuleRegistered("r", ruleDoc(t, "fmt"), time.Now())
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshotPayload
	if err := json.Unmarshal(data[frameHeaderSize:], &snap); err != nil {
		t.Fatalf("snapshot payload: %v", err)
	}
	if snap.Kind != KindSnapshot || len(snap.Rules) != 1 || snap.Rules[0].ID != "r" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// AppendEventBatch journals N events in one lock acquisition with ids
// indistinguishable from N sequential AppendEvent calls; AckEvents clears
// the acked subset and recovery re-enqueues only the orphans.
func TestAppendEventBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Fsync: FsyncAlways})
	docs := []*xmltree.Node{
		doc(t, `<t:ev xmlns:t="http://t/" n="1"/>`),
		doc(t, `<t:ev xmlns:t="http://t/" n="2"/>`),
		doc(t, `<t:ev xmlns:t="http://t/" n="3"/>`),
	}
	ids, err := s.AppendEventBatch(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("batch ids not consecutive: %v", ids)
		}
	}
	s.AckEvents(ids[:2])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, Options{})
	defer r.Close()
	pend := r.PendingEvents()
	if len(pend) != 1 || !strings.Contains(pend[0], `n="3"`) {
		t.Fatalf("pending after recovery = %v", pend)
	}
}

// A batch append under FsyncAlways flushes once for the whole batch, not
// once per record (the fsync histogram counts syncLocked calls).
func TestAppendEventBatchSingleFsync(t *testing.T) {
	dir := t.TempDir()
	hub := obs.NewHub()
	s := open(t, dir, Options{Obs: hub, Fsync: FsyncAlways})
	defer s.Close()
	var docs []*xmltree.Node
	for i := 0; i < 16; i++ {
		docs = append(docs, doc(t, fmt.Sprintf(`<e n="%d"/>`, i)))
	}
	var before strings.Builder
	hub.Metrics().WritePrometheus(&before)
	if _, err := s.AppendEventBatch(docs); err != nil {
		t.Fatal(err)
	}
	var after strings.Builder
	hub.Metrics().WritePrometheus(&after)
	delta := fsyncCount(t, after.String()) - fsyncCount(t, before.String())
	if delta != 1 {
		t.Errorf("batch of 16 cost %d fsyncs, want 1", delta)
	}
}

func fsyncCount(t *testing.T, exposition string) int {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "store_fsync_seconds_count") {
			var n int
			if _, err := fmt.Sscanf(strings.Fields(line)[1], "%d", &n); err != nil {
				t.Fatal(err)
			}
			return n
		}
	}
	return 0
}

// Nil stores and empty batches are safe no-ops, like AppendEvent/AckEvent.
func TestAppendEventBatchNilStore(t *testing.T) {
	var s *Store
	ids, err := s.AppendEventBatch([]*xmltree.Node{doc(t, `<e/>`)})
	if err != nil || len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("nil store: ids=%v err=%v", ids, err)
	}
	s.AckEvents(ids)
}
