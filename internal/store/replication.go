package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/xmltree"
)

// Journal replication: the primary side of a replicated partition taps its
// journal through a replication sink — every appended record is handed out
// as a framed byte slice with a monotonically increasing stream sequence —
// and a follower folds those frames into a Replica, an in-memory mirror of
// the primary's live state. When the primary dies, the follower replays the
// Replica through the same register/publish callbacks that crash recovery
// uses (System.Recover), taking the partition over. The wire format is the
// journal frame format itself (length+CRC32 header, JSON record payload —
// see journal.go and docs/CLUSTERING.md), so a replication stream is
// literally the journal shipped frame by frame.

// RepRecord is one journal record in the replication stream: the framed
// bytes exactly as they were appended to the journal, plus the stream
// sequence assigned at append time. Sequences are per-primary, start at 1,
// and never reset while the store is open.
type RepRecord struct {
	Seq   uint64
	Frame []byte
}

// ErrReplicaGap reports an Apply batch that starts beyond the replica's
// next expected sequence: records were lost in transit and the primary
// must rewind to LastSeq+1 or send a fresh base state.
var ErrReplicaGap = errors.New("store: replication gap")

// ErrTornBatch reports a batch whose byte stream ended mid-frame or failed
// its checksum: the good prefix was applied, the rest must be resent.
var ErrTornBatch = errors.New("store: torn replication batch")

// SetReplicationSink installs the replication tap: from now on every
// journal append is also handed to sink, in append order, with its stream
// sequence. The sink runs under the store lock and must not block; the
// cluster layer hands the record to a buffered channel and ships
// asynchronously. A nil store or nil sink is a no-op.
func (s *Store) SetReplicationSink(sink func(RepRecord)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.repSink = sink
	s.mu.Unlock()
}

// ReplicationState atomically captures the live mirror as a base batch of
// framed records — one register record per live rule, one event record per
// pending event — together with the stream sequence the batch is current
// as of. A follower that applies the batch with Replica.ApplyBase(seq, ...)
// is positioned to consume incremental records from seq+1 on.
func (s *Store) ReplicationState() (frames [][]byte, seq uint64, err error) {
	if s == nil {
		return nil, 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.ruleOrder {
		r := s.rules[id]
		f, err := encodeRecord(record{Kind: KindRegister, Time: r.Registered, Rule: r.ID, Doc: r.Doc, Tenant: r.Tenant})
		if err != nil {
			return nil, 0, fmt.Errorf("store: replication state: %w", err)
		}
		frames = append(frames, f)
	}
	for _, id := range s.eventOrderLocked() {
		e := s.events[id]
		f, err := encodeRecord(record{Kind: KindEvent, Time: e.Accepted, Event: e.ID, Doc: e.Doc, Tenant: e.Tenant})
		if err != nil {
			return nil, 0, fmt.Errorf("store: replication state: %w", err)
		}
		frames = append(frames, f)
	}
	return frames, s.repSeq, nil
}

// Replica is the follower-side mirror of one remote primary's journal.
// Frames applied in stream order reconstruct exactly the state the
// primary's own Open would: live rules and accepted-but-unacked events.
// Safe for concurrent use.
type Replica struct {
	mu        sync.Mutex
	lastSeq   uint64
	applied   int
	rules     map[string]ruleEntry
	ruleOrder []string
	events    map[uint64]eventEntry
}

// NewReplica returns an empty replica expecting sequence 1 (or a base
// batch).
func NewReplica() *Replica {
	return &Replica{rules: map[string]ruleEntry{}, events: map[uint64]eventEntry{}}
}

// LastSeq returns the stream sequence of the last applied record — the
// value the follower acknowledges, and where the primary resumes after a
// follower restart.
func (r *Replica) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastSeq
}

// Counts returns the mirrored live state: rules registered and events
// pending takeover replay.
func (r *Replica) Counts() (rules, events int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rules), len(r.events)
}

// ApplyBase resets the mirror and folds a full base batch (from
// Store.ReplicationState) into it, positioning the replica at seq.
// Incremental batches then continue from seq+1.
func (r *Replica) ApplyBase(seq uint64, frames io.Reader) (uint64, error) {
	r.mu.Lock()
	r.rules = map[string]ruleEntry{}
	r.ruleOrder = nil
	r.events = map[uint64]eventEntry{}
	r.lastSeq = 0
	r.mu.Unlock()
	// Base frames carry no individual sequences: the whole batch is the
	// state "as of seq".
	if _, err := r.fold(0, frames, false); err != nil {
		return r.LastSeq(), err
	}
	r.mu.Lock()
	r.lastSeq = seq
	r.mu.Unlock()
	return seq, nil
}

// Apply folds an incremental batch of concatenated frames into the mirror.
// first is the stream sequence of the batch's first frame; frames are
// numbered consecutively from there. Frames at or below LastSeq are
// skipped without effect (a primary resending after a lost ack is
// harmless), a batch starting beyond LastSeq+1 returns ErrReplicaGap with
// nothing applied, and a batch whose bytes end mid-frame applies its good
// prefix and returns ErrTornBatch. The returned sequence is the new
// LastSeq — the follower's acknowledgement either way.
func (r *Replica) Apply(first uint64, frames io.Reader) (uint64, error) {
	if first > r.LastSeq()+1 {
		return r.LastSeq(), fmt.Errorf("%w: batch starts at %d, expected %d", ErrReplicaGap, first, r.LastSeq()+1)
	}
	return r.fold(first, frames, true)
}

// fold reads frames and applies them. When sequenced, frame i carries
// sequence first+i and duplicates are skipped; otherwise every frame is
// applied (base batches).
func (r *Replica) fold(first uint64, frames io.Reader, sequenced bool) (uint64, error) {
	br := bufio.NewReader(frames)
	seq := first
	for i := 0; ; i++ {
		payload, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return r.LastSeq(), fmt.Errorf("%w: frame %d: %v", ErrTornBatch, i, err)
		}
		if sequenced {
			seq = first + uint64(i)
		}
		r.mu.Lock()
		if sequenced && seq <= r.lastSeq {
			r.mu.Unlock() // duplicate: already applied, skip idempotently
			continue
		}
		rec, err := decodeRecord(payload)
		if err == nil {
			r.applyLocked(rec)
			r.applied++
			if sequenced {
				r.lastSeq = seq
			}
		}
		r.mu.Unlock()
		if err != nil {
			// A frame that passed its checksum but does not decode is a
			// primary-side bug, not a transport error; skip it but keep the
			// stream position moving so replication does not wedge.
			r.mu.Lock()
			if sequenced {
				r.lastSeq = seq
			}
			r.mu.Unlock()
		}
	}
	return r.LastSeq(), nil
}

func decodeRecord(payload []byte) (record, error) {
	var rec record
	err := json.Unmarshal(payload, &rec)
	return rec, err
}

// applyLocked folds one record into the mirror with the same idempotent
// semantics as Store.apply. Caller holds r.mu.
func (r *Replica) applyLocked(rec record) {
	switch rec.Kind {
	case KindRegister:
		k := ruleKey(rec.Tenant, rec.Rule)
		if _, live := r.rules[k]; !live {
			r.ruleOrder = append(r.ruleOrder, k)
		}
		r.rules[k] = ruleEntry{ID: rec.Rule, Doc: rec.Doc, Registered: rec.Time, Tenant: rec.Tenant}
	case KindUnregister:
		k := ruleKey(rec.Tenant, rec.Rule)
		if _, live := r.rules[k]; live {
			delete(r.rules, k)
			for i, id := range r.ruleOrder {
				if id == k {
					r.ruleOrder = append(r.ruleOrder[:i], r.ruleOrder[i+1:]...)
					break
				}
			}
		}
	case KindEvent:
		r.events[rec.Event] = eventEntry{ID: rec.Event, Doc: rec.Doc, Accepted: rec.Time, Tenant: rec.Tenant}
	case KindEventAck:
		delete(r.events, rec.Event)
	}
}

// Recover replays the mirror through tenant-blind callbacks, dropping the
// tenant each record was journaled under; see RecoverTenants for the
// tenant-aware takeover path the cluster layer uses.
func (r *Replica) Recover(
	register func(id string, doc *xmltree.Node, registered time.Time) error,
	publish func(doc *xmltree.Node) error,
) (RecoveryStats, error) {
	return r.RecoverTenants(
		func(_, id string, doc *xmltree.Node, registered time.Time) error {
			return register(id, doc, registered)
		},
		func(_ string, doc *xmltree.Node) error { return publish(doc) },
	)
}

// RecoverTenants replays the mirror through the caller's registration and
// publication paths — the same two-phase shape as Store.RecoverTenants:
// rules in registration order first, then orphaned events, each with the
// tenant it was journaled under, skipping records that fail to parse or
// register. The cluster layer calls this on takeover when the replica's
// primary is declared dead, so each tenant's rules and events land in
// that tenant's space on the surviving node. The mirror is left intact so
// a status endpoint can keep reporting what was taken over.
func (r *Replica) RecoverTenants(
	register func(tenant, id string, doc *xmltree.Node, registered time.Time) error,
	publish func(tenant string, doc *xmltree.Node) error,
) (RecoveryStats, error) {
	r.mu.Lock()
	rules := make([]ruleEntry, 0, len(r.ruleOrder))
	for _, id := range r.ruleOrder {
		rules = append(rules, r.rules[id])
	}
	eventIDs := make([]uint64, 0, len(r.events))
	for id := range r.events {
		eventIDs = append(eventIDs, id)
	}
	sort.Slice(eventIDs, func(i, j int) bool { return eventIDs[i] < eventIDs[j] })
	events := make([]eventEntry, 0, len(eventIDs))
	for _, id := range eventIDs {
		events = append(events, r.events[id])
	}
	r.mu.Unlock()

	var stats RecoveryStats
	for _, e := range rules {
		doc, err := xmltree.ParseString(e.Doc)
		if err == nil {
			err = register(e.Tenant, e.ID, doc, e.Registered)
		}
		if err != nil {
			stats.Skipped++
			continue
		}
		stats.Rules++
	}
	for _, e := range events {
		doc, err := xmltree.ParseString(e.Doc)
		if err == nil {
			err = publish(e.Tenant, doc)
		}
		if err != nil {
			stats.Skipped++
			continue
		}
		stats.Events++
	}
	return stats, nil
}
