package store

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/xmltree"
)

func mustFrame(t *testing.T, rec record) []byte {
	t.Helper()
	f, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func ruleRec(t *testing.T, id string) record {
	t.Helper()
	return record{Kind: KindRegister, Time: time.Now(), Rule: id,
		Doc: `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml" id="` + id + `"><eca:event><e/></eca:event><eca:action><a/></eca:action></eca:rule>`}
}

func batch(frames ...[]byte) *bytes.Reader {
	return bytes.NewReader(bytes.Join(frames, nil))
}

// The replication stream is the journal itself: every append must reach the
// sink, in order, with consecutive sequences, and ReplicationState must be
// consistent with the sequence it reports.
func TestReplicationSinkSeesEveryAppend(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got []RepRecord
	s.SetReplicationSink(func(r RepRecord) { got = append(got, r) })

	doc := xmltree.MustParse(`<e/>`)
	s.RuleRegistered("r1", xmltree.MustParse(ruleRec(t, "r1").Doc), time.Now())
	id, err := s.AppendEvent(doc)
	if err != nil {
		t.Fatal(err)
	}
	s.AckEvent(id)
	s.RuleUnregistered("r1")

	if len(got) != 4 {
		t.Fatalf("sink saw %d records, want 4", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
	frames, seq, err := s.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Errorf("ReplicationState seq = %d, want 4", seq)
	}
	if len(frames) != 0 { // rule unregistered, event acked: nothing live
		t.Errorf("ReplicationState has %d frames, want 0", len(frames))
	}

	// A replica fed the sink's records reproduces the primary's state.
	rep := NewReplica()
	var all []byte
	for _, r := range got {
		all = append(all, r.Frame...)
	}
	last, err := rep.Apply(1, bytes.NewReader(all))
	if err != nil || last != 4 {
		t.Fatalf("Apply = %d, %v", last, err)
	}
	if rules, events := rep.Counts(); rules != 0 || events != 0 {
		t.Errorf("replica counts = %d rules, %d events, want 0, 0", rules, events)
	}
}

// A batch whose byte stream is cut mid-frame must apply its good prefix,
// acknowledge exactly that prefix, and accept the resent remainder.
func TestReplicaTornFrameMidStream(t *testing.T) {
	f1 := mustFrame(t, ruleRec(t, "a"))
	f2 := mustFrame(t, ruleRec(t, "b"))
	f3 := mustFrame(t, ruleRec(t, "c"))

	torn := append(append([]byte{}, f1...), f2[:len(f2)-3]...) // f2 loses its tail
	rep := NewReplica()
	last, err := rep.Apply(1, bytes.NewReader(torn))
	if !errors.Is(err, ErrTornBatch) {
		t.Fatalf("err = %v, want ErrTornBatch", err)
	}
	if last != 1 {
		t.Fatalf("acked %d after torn batch, want 1", last)
	}
	if rules, _ := rep.Counts(); rules != 1 {
		t.Fatalf("replica has %d rules, want 1 (good prefix only)", rules)
	}

	// The primary resends from acked+1; the stream heals.
	last, err = rep.Apply(2, batch(f2, f3))
	if err != nil || last != 3 {
		t.Fatalf("resend Apply = %d, %v", last, err)
	}
	if rules, _ := rep.Counts(); rules != 3 {
		t.Errorf("replica has %d rules, want 3", rules)
	}

	// Corruption (checksum mismatch) inside a batch behaves like a tear.
	f4 := mustFrame(t, ruleRec(t, "d"))
	bad := append([]byte{}, f4...)
	bad[len(bad)-1] ^= 0xff
	if _, err := rep.Apply(4, bytes.NewReader(bad)); !errors.Is(err, ErrTornBatch) {
		t.Errorf("corrupt frame: err = %v, want ErrTornBatch", err)
	}
	if last := rep.LastSeq(); last != 3 {
		t.Errorf("acked %d after corrupt frame, want 3", last)
	}
}

// A follower restart loses the in-memory replica; the primary detects the
// regressed acknowledgement and re-bases, after which incremental frames
// resume from the base sequence — the same dance the cluster shipper does.
func TestReplicaRestartResumesFromBase(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var stream []RepRecord
	s.SetReplicationSink(func(r RepRecord) { stream = append(stream, r) })

	s.RuleRegistered("keep", xmltree.MustParse(ruleRec(t, "keep").Doc), time.Now())
	s.RuleRegistered("drop", xmltree.MustParse(ruleRec(t, "drop").Doc), time.Now())
	s.RuleUnregistered("drop")
	if _, err := s.AppendEvent(xmltree.MustParse(`<orphan/>`)); err != nil {
		t.Fatal(err)
	}

	// "Restarted" follower: fresh replica, no history. An incremental batch
	// at the primary's current position is a gap.
	rep := NewReplica()
	if _, err := rep.Apply(5, batch(stream[4-1].Frame)); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("err = %v, want ErrReplicaGap", err)
	}

	// Re-base from the primary's live state, then resume incrementally.
	frames, seq, err := s.ReplicationState()
	if err != nil {
		t.Fatal(err)
	}
	if last, err := rep.ApplyBase(seq, batch(frames...)); err != nil || last != seq {
		t.Fatalf("ApplyBase = %d, %v (want %d)", last, err, seq)
	}
	rules, events := rep.Counts()
	if rules != 1 || events != 1 {
		t.Fatalf("rebased replica = %d rules, %d events, want 1, 1", rules, events)
	}

	s.RuleRegistered("late", xmltree.MustParse(ruleRec(t, "late").Doc), time.Now())
	inc := stream[len(stream)-1]
	if inc.Seq != seq+1 {
		t.Fatalf("incremental record seq = %d, want %d", inc.Seq, seq+1)
	}
	if last, err := rep.Apply(inc.Seq, batch(inc.Frame)); err != nil || last != inc.Seq {
		t.Fatalf("post-base Apply = %d, %v", last, err)
	}
	if rules, _ = rep.Counts(); rules != 2 {
		t.Errorf("replica has %d rules after resume, want 2", rules)
	}
}

// Re-delivered frames (a primary resending after a lost acknowledgement)
// must be skipped without effect: applying the same batch twice, or a batch
// overlapping already-applied sequences, is idempotent.
func TestReplicaDuplicateFramesIdempotent(t *testing.T) {
	f1 := mustFrame(t, ruleRec(t, "a"))
	f2 := mustFrame(t, record{Kind: KindEvent, Time: time.Now(), Event: 1, Doc: `<e/>`})
	f3 := mustFrame(t, record{Kind: KindEventAck, Event: 1})

	rep := NewReplica()
	if _, err := rep.Apply(1, batch(f1, f2)); err != nil {
		t.Fatal(err)
	}
	// Exact duplicate of the whole batch.
	if last, err := rep.Apply(1, batch(f1, f2)); err != nil || last != 2 {
		t.Fatalf("duplicate batch Apply = %d, %v", last, err)
	}
	rules, events := rep.Counts()
	if rules != 1 || events != 1 {
		t.Fatalf("after duplicate batch: %d rules, %d events, want 1, 1", rules, events)
	}
	// Overlapping batch: frame 2 is a duplicate, frame 3 is new. If the
	// duplicate ack were re-applied... there is nothing to double-apply for
	// an ack, so the sharper assertion is the event must be gone exactly
	// once and LastSeq advanced.
	if last, err := rep.Apply(2, batch(f2, f3)); err != nil || last != 3 {
		t.Fatalf("overlapping batch Apply = %d, %v", last, err)
	}
	if _, events = rep.Counts(); events != 0 {
		t.Errorf("event not acked by overlapping batch: %d pending", events)
	}
	// A duplicate register must not duplicate the rule in recovery order.
	var recovered []string
	_, err := rep.Recover(
		func(id string, doc *xmltree.Node, at time.Time) error { recovered = append(recovered, id); return nil },
		func(doc *xmltree.Node) error { return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "a" {
		t.Errorf("recovered rules = %v, want [a]", recovered)
	}
}

// Takeover replays the mirror through the two-phase recovery shape: rules
// first (in registration order), then orphaned events; records that fail to
// register are skipped, not fatal.
func TestReplicaRecoverTwoPhase(t *testing.T) {
	rep := NewReplica()
	frames := [][]byte{
		mustFrame(t, ruleRec(t, "r1")),
		mustFrame(t, ruleRec(t, "r2")),
		mustFrame(t, record{Kind: KindEvent, Time: time.Now(), Event: 7, Doc: `<ev n="7"/>`}),
		mustFrame(t, record{Kind: KindEvent, Time: time.Now(), Event: 8, Doc: `<ev n="8"/>`}),
		mustFrame(t, record{Kind: KindEventAck, Event: 7}),
	}
	if _, err := rep.Apply(1, batch(frames...)); err != nil {
		t.Fatal(err)
	}
	var order []string
	stats, err := rep.Recover(
		func(id string, doc *xmltree.Node, at time.Time) error {
			if id == "r2" {
				return errors.New("refused")
			}
			order = append(order, "rule:"+id)
			return nil
		},
		func(doc *xmltree.Node) error {
			order = append(order, "event:"+doc.Root().AttrValue("", "n"))
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rules != 1 || stats.Events != 1 || stats.Skipped != 1 {
		t.Errorf("stats = %+v, want 1 rule, 1 event, 1 skipped", stats)
	}
	want := []string{"rule:r1", "event:8"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Errorf("recovery order = %v, want %v", order, want)
	}
}
