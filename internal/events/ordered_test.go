package events

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xmltree"
)

// numbered builds a small event payload carrying a producer/index tag.
func numbered(tag string) Event {
	e := xmltree.NewElement("", "e")
	e.SetAttr("", "tag", tag)
	return New(e)
}

// TestStreamOrderedUnderConcurrentPublishers is the regression test for the
// out-of-order Publish family: the seed stamped Seq under the lock but
// invoked subscribers outside it, so two racing publishers could reach a
// subscriber out of stream order. Every subscriber must now observe
// strictly increasing sequence numbers, no matter how many goroutines
// hammer Publish. Run with -race: the per-subscriber `last` variables are
// deliberately unsynchronized, so overlapping deliveries would also be
// flagged as a data race.
func TestStreamOrderedUnderConcurrentPublishers(t *testing.T) {
	const (
		publishers = 8
		perPub     = 250
		subCount   = 3
	)
	s := NewStream()
	type subState struct {
		last  uint64
		seen  int
		viols int
	}
	states := make([]*subState, subCount)
	for i := range states {
		st := &subState{}
		states[i] = st
		s.Subscribe(func(ev Event) {
			if ev.Seq <= st.last {
				st.viols++
			}
			st.last = ev.Seq
			st.seen++
		})
	}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				s.Publish(numbered(fmt.Sprintf("%d/%d", p, i)))
			}
		}(p)
	}
	wg.Wait()
	for i, st := range states {
		if st.viols != 0 {
			t.Errorf("subscriber %d: %d out-of-order deliveries", i, st.viols)
		}
		if st.seen != publishers*perPub {
			t.Errorf("subscriber %d: saw %d events, want %d", i, st.seen, publishers*perPub)
		}
	}
}

// TestPublishReturnsAfterDelivery: the synchronous contract — once Publish
// returns, every subscriber has seen the event — must hold for concurrent
// (non-reentrant) publishers too, since POST /events acknowledges the
// journal right after Publish returns.
func TestPublishReturnsAfterDelivery(t *testing.T) {
	s := NewStream()
	var delivered sync.Map
	s.Subscribe(func(ev Event) { delivered.Store(ev.Seq, true) })
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ev := s.Publish(numbered("x"))
				if _, ok := delivered.Load(ev.Seq); !ok {
					t.Errorf("Publish returned before seq %d was delivered", ev.Seq)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPublishBatchSequencesAtomically: a batch takes consecutive sequence
// numbers even while single-event publishers race it, and the whole batch
// is delivered when PublishBatch returns.
func TestPublishBatchSequencesAtomically(t *testing.T) {
	s := NewStream()
	var seen atomic.Int64
	var last uint64
	s.Subscribe(func(ev Event) {
		if ev.Seq <= last {
			t.Errorf("out of order: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		seen.Add(1)
	})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Publish(numbered("single"))
			}
		}()
	}
	for b := 0; b < 20; b++ {
		batch := make([]Event, 7)
		for i := range batch {
			batch[i] = numbered("batch")
		}
		out := s.PublishBatch(batch)
		for i := 1; i < len(out); i++ {
			if out[i].Seq != out[i-1].Seq+1 {
				t.Fatalf("batch seqs not consecutive: %d then %d", out[i-1].Seq, out[i].Seq)
			}
		}
	}
	wg.Wait()
	if got := seen.Load(); got != 4*50+20*7 {
		t.Errorf("seen = %d, want %d", got, 4*50+20*7)
	}
}

// TestReentrantPublishIsDeferredInOrder: a subscriber publishing from
// inside its callback (act:raise on a synchronous engine) must not
// deadlock; the raised event is delivered after the current event's
// dispatch completes — so every subscriber still sees both events in Seq
// order — and before the outer Publish returns.
func TestReentrantPublishIsDeferredInOrder(t *testing.T) {
	s := NewStream()
	var order []string
	var raised Event
	s.Subscribe(func(ev Event) {
		tag, _ := ev.Payload.Attr("", "tag")
		order = append(order, "h1:"+tag)
		if tag == "outer" {
			raised = s.Publish(numbered("raised"))
		}
	})
	s.Subscribe(func(ev Event) {
		tag, _ := ev.Payload.Attr("", "tag")
		order = append(order, "h2:"+tag)
	})
	outer := s.Publish(numbered("outer"))
	want := []string{"h1:outer", "h2:outer", "h1:raised", "h2:raised"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if raised.Seq != outer.Seq+1 {
		t.Errorf("raised seq = %d, outer = %d", raised.Seq, outer.Seq)
	}
}

// TestPublishDetachedFromIdleStream delivers synchronously like Publish
// when no dispatch is running.
func TestPublishDetachedFromIdleStream(t *testing.T) {
	s := NewStream()
	var got []uint64
	s.Subscribe(func(ev Event) { got = append(got, ev.Seq) })
	ev := s.PublishDetached(numbered("d"))
	if len(got) != 1 || got[0] != ev.Seq {
		t.Fatalf("got = %v, want [%d]", got, ev.Seq)
	}
}

// TestSubscribeChurnKeepsOrder: churned subscriptions must not disturb the
// subscription-order delivery contract, and cancels must really remove.
func TestSubscribeChurnKeepsOrder(t *testing.T) {
	s := NewStream()
	var order []int
	s.Subscribe(func(Event) { order = append(order, 1) })
	cancel2 := s.Subscribe(func(Event) { order = append(order, 2) })
	s.Subscribe(func(Event) { order = append(order, 3) })
	cancel2()
	s.Subscribe(func(Event) { order = append(order, 4) })
	s.Publish(numbered("x"))
	want := []int{1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// BenchmarkPublishAfterSubscribeChurn: the seed rebuilt the handler list by
// scanning ids 0..next, so heavy subscribe/unsubscribe churn made every
// later Publish O(total-ever-subscribed). The subscriber slice keeps it
// O(live).
func BenchmarkPublishAfterSubscribeChurn(b *testing.B) {
	s := NewStream()
	// Churn: 100k subscriptions come and go; 4 stay live.
	for i := 0; i < 100_000; i++ {
		cancel := s.Subscribe(func(Event) {})
		cancel()
	}
	var sink atomic.Int64
	for i := 0; i < 4; i++ {
		s.Subscribe(func(Event) { sink.Add(1) })
	}
	ev := numbered("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish(ev)
	}
}
