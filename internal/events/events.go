// Package events defines the event model of the framework: events are XML
// fragments marked up in a domain namespace (e.g. <travel:booking
// person="John Doe" from="Munich" to="Paris"/>), carried on an event stream,
// and matched against atomic event patterns that bind logical variables —
// the Atomic Event Matcher of Section 4.2.
package events

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/xmltree"
)

// Event is one event occurrence: the marked-up event payload plus its
// position in the stream (Seq, strictly increasing per stream) and the wall
// time it was observed. AdmittedAt, when non-zero, is the monotonic
// admission timestamp stamped at the edge (POST /events accepting the
// request); it anchors the admit→action lifecycle histograms.
// Programmatic publishes (recovery replay, act:raise, tests) leave it
// zero and are excluded from lifecycle latency accounting.
type Event struct {
	Payload    *xmltree.Node
	Seq        uint64
	Time       time.Time
	AdmittedAt time.Time
	// Tenant is the namespace the event was published under. The empty
	// string means the default tenant, so every pre-tenancy construction
	// site (tests, recovery replay, act:raise on an unscoped executor)
	// keeps its behaviour. Matching services filter on it: a rule only
	// ever sees events published under its own tenant.
	Tenant string
}

// New wraps an XML payload as an event occurrence with the current time;
// Seq is assigned by the Stream on publication.
func New(payload *xmltree.Node) Event {
	return Event{Payload: payload.Root(), Time: time.Now()}
}

// NewAdmitted wraps an XML payload as an event occurrence admitted from
// the outside world at admittedAt (the instant the admission layer
// accepted it, before parsing or journaling). Time is stamped by
// Stream.Publish so that admit-stage latency (publish − admission)
// covers the parse/journal work in between.
func NewAdmitted(payload *xmltree.Node, admittedAt time.Time) Event {
	return Event{Payload: payload.Root(), AdmittedAt: admittedAt}
}

// String renders the event for traces.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s", e.Seq, e.Payload.String())
}

// Stream is a pub/sub broker for events. Subscribers are invoked
// synchronously, in subscription order, which gives rules deterministic
// detection order. Safe for concurrent use.
//
// Ordering guarantee: deliveries are totally ordered by Seq. Even under
// concurrent publishers every subscriber observes strictly increasing
// sequence numbers — sequencing and delivery are decoupled into an ordered
// dispatch stage, so two racing Publish calls can never reach a subscriber
// out of stream order (SNOOP's sequence/aperiodic/cumulative operators
// depend on this invariant).
//
// Dispatch contract: the first publisher to find the stream idle becomes
// the dispatcher and drains the delivery queue in Seq order on its own
// goroutine; concurrent publishers enqueue and block until their event has
// been delivered, so Publish still returns only after delivery. A publish
// issued from inside a subscriber (a reentrant publish, e.g. act:raise on
// a synchronous engine) cannot wait for itself — it is enqueued and
// delivered by the running dispatcher after the current event's dispatch
// completes, preserving order. Back-pressure is therefore the publisher's:
// a slow subscriber extends the time every Publish call blocks.
type Stream struct {
	mu   sync.Mutex
	cond *sync.Cond // signals delivered advancing; lazily bound to mu
	seq  uint64
	subs []subscriber // live subscribers, ascending id = subscription order
	next int

	queue         []pendingDelivery // sequenced, undelivered events (Seq order)
	dispatching   bool              // a dispatcher goroutine is draining queue
	dispatcherGID uint64            // goroutine id of the active dispatcher
	delivered     uint64            // highest Seq fully delivered to all subscribers
}

type subscriber struct {
	id int
	fn func(Event)
}

type pendingDelivery struct {
	ev       Event
	handlers []func(Event)
}

// NewStream returns an empty stream.
func NewStream() *Stream {
	s := &Stream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Subscribe registers a handler for every future event and returns a
// cancel function.
func (s *Stream) Subscribe(f func(Event)) (cancel func()) {
	s.mu.Lock()
	id := s.next
	s.next++
	s.subs = append(s.subs, subscriber{id: id, fn: f})
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		for i, sub := range s.subs {
			if sub.id == id {
				s.subs = append(s.subs[:i:i], s.subs[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
	}
}

// handlersLocked snapshots the live subscriber functions in subscription
// order. Caller holds s.mu.
func (s *Stream) handlersLocked() []func(Event) {
	handlers := make([]func(Event), len(s.subs))
	for i, sub := range s.subs {
		handlers[i] = sub.fn
	}
	return handlers
}

// Publish stamps the event with the next sequence number and delivers it to
// all subscribers through the ordered dispatch stage. It returns the
// stamped event once the event has been delivered — except for reentrant
// publishes (from inside a subscriber), which return as soon as the event
// is sequenced; the running dispatcher delivers it next, in order.
func (s *Stream) Publish(ev Event) Event {
	evs := [1]Event{ev}
	s.publish(evs[:], true)
	return evs[0]
}

// PublishBatch stamps the events with consecutive sequence numbers under a
// single lock acquisition and delivers them in order. All events share one
// observation time (unless already stamped) and one subscriber snapshot.
// Like Publish, it returns after the last event has been delivered.
func (s *Stream) PublishBatch(evs []Event) []Event {
	s.publish(evs, true)
	return evs
}

// PublishDetached stamps and enqueues the event for ordered delivery but
// never waits for it: when the stream is idle the caller dispatches (and
// the event is delivered before PublishDetached returns, matching Publish);
// when a dispatch is already running — on this goroutine or another — the
// event is left for that dispatcher. Use it where blocking on delivery
// could deadlock, e.g. raising an event from an action executed on an
// engine worker while the worker queue is full.
func (s *Stream) PublishDetached(ev Event) Event {
	evs := [1]Event{ev}
	s.publish(evs[:], false)
	return evs[0]
}

// publish sequences evs, enqueues them on the ordered dispatch queue, and
// either drains the queue (becoming the dispatcher) or, when wait is set
// and it is safe to do so, blocks until the last of evs is delivered.
func (s *Stream) publish(evs []Event, wait bool) {
	if len(evs) == 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	handlers := s.handlersLocked()
	for i := range evs {
		s.seq++
		evs[i].Seq = s.seq
		if evs[i].Time.IsZero() {
			evs[i].Time = now
		}
		s.queue = append(s.queue, pendingDelivery{ev: evs[i], handlers: handlers})
	}
	last := evs[len(evs)-1].Seq
	if s.dispatching {
		// Someone is draining the queue and will deliver our events in
		// order. A reentrant publish (same goroutine: we are inside one of
		// the dispatcher's subscriber callbacks) must not wait for itself.
		if !wait || s.dispatcherGID == gid() {
			s.mu.Unlock()
			return
		}
		for s.delivered < last {
			s.cond.Wait()
		}
		s.mu.Unlock()
		return
	}
	s.dispatching = true
	s.dispatcherGID = gid()
	s.drainLocked()
	s.dispatching = false
	s.dispatcherGID = 0
	s.mu.Unlock()
}

// drainLocked delivers queued events in Seq order until the queue is
// empty, releasing the lock around subscriber callbacks. Events enqueued
// by concurrent or reentrant publishers while draining are picked up
// before returning. Caller holds s.mu and has claimed the dispatcher role.
func (s *Stream) drainLocked() {
	for len(s.queue) > 0 {
		d := s.queue[0]
		s.queue[0] = pendingDelivery{}
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			s.queue = nil // release the drained backing array
		}
		s.mu.Unlock()
		for _, h := range d.handlers {
			h(d.ev)
		}
		s.mu.Lock()
		s.delivered = d.ev.Seq
		s.cond.Broadcast()
	}
}

// gid returns the current goroutine's id, used to detect reentrant
// publishes (a subscriber publishing from inside its callback). Parsing
// runtime.Stack is the only portable way to identity a goroutine; the
// cost is only paid when a dispatch is already in flight.
func gid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// "goroutine 123 [...": cut the prefix, parse up to the space.
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, _ := strconv.ParseUint(string(fields[1]), 10, 64)
	return id
}

// --- atomic event patterns -------------------------------------------------------

// Pattern is an atomic event pattern: an XML template whose attribute
// values and text content may be variables ($Name). Matching an event
// yields the tuples of variable bindings; a pattern with no variables
// yields one empty tuple on match.
//
// Matching rules:
//   - the pattern element matches an event element with the same name;
//   - every pattern attribute must be present on the event; a "$Var" value
//     binds the variable (joining if already bound), otherwise values must
//     be equal;
//   - every pattern child element must match some event child (each event
//     child used at most once per combination); extra event children are
//     ignored;
//   - pattern text content of the form "$Var" binds the element's text;
//     other non-whitespace text must equal the event's text.
type Pattern struct {
	root *xmltree.Node
}

// NewPattern builds a pattern from a template element (the root element is
// used if a document is given).
func NewPattern(template *xmltree.Node) (*Pattern, error) {
	r := template.Root()
	if r == nil {
		return nil, fmt.Errorf("events: pattern has no root element")
	}
	return &Pattern{root: r}, nil
}

// MustPattern parses a pattern from XML source, panicking on error.
func MustPattern(src string) *Pattern {
	p, err := NewPattern(xmltree.MustParse(src))
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the event name the pattern matches.
func (p *Pattern) Name() xmltree.Name { return p.root.Name }

// Vars returns the variable names the pattern binds, sorted.
func (p *Pattern) Vars() []string {
	set := map[string]bool{}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		for _, a := range n.Attrs {
			if v, ok := varName(a.Value); ok && !a.IsNamespaceDecl() {
				set[v] = true
			}
		}
		if v, ok := varName(ownText(n)); ok {
			set[v] = true
		}
		for _, c := range n.ChildElements() {
			walk(c)
		}
	}
	walk(p.root)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// varName reports whether s is a variable reference "$Name".
func varName(s string) (string, bool) {
	s = strings.TrimSpace(s)
	if len(s) > 1 && s[0] == '$' {
		return s[1:], true
	}
	return "", false
}

// ownText returns the concatenated direct text children of n.
func ownText(n *xmltree.Node) string {
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == xmltree.TextNode {
			b.WriteString(c.Text)
		}
	}
	return b.String()
}

// Match matches the pattern against an event and returns the resulting
// tuples of variable bindings (empty slice: no match). Multiple tuples
// arise when repeated pattern children match different event children.
func (p *Pattern) Match(ev Event) []bindings.Tuple {
	if ev.Payload == nil {
		return nil
	}
	return matchElement(p.root, ev.Payload, bindings.Tuple{})
}

func matchElement(pat, ev *xmltree.Node, t bindings.Tuple) []bindings.Tuple {
	if pat.Name != ev.Name {
		return nil
	}
	cur := t.Clone()
	for _, a := range pat.Attrs {
		if a.IsNamespaceDecl() {
			continue
		}
		got, ok := ev.Attr(a.Name.Space, a.Name.Local)
		if !ok {
			return nil
		}
		if v, isVar := varName(a.Value); isVar {
			if !bindVar(cur, v, bindings.Str(got)) {
				return nil
			}
			continue
		}
		if a.Value != got {
			return nil
		}
	}
	if txt := strings.TrimSpace(ownText(pat)); txt != "" {
		evTxt := strings.TrimSpace(ownText(ev))
		if v, isVar := varName(txt); isVar {
			if !bindVar(cur, v, bindings.Str(evTxt)) {
				return nil
			}
		} else if txt != evTxt {
			return nil
		}
	}
	patKids := pat.ChildElements()
	if len(patKids) == 0 {
		return []bindings.Tuple{cur}
	}
	evKids := ev.ChildElements()
	return matchChildren(patKids, evKids, cur)
}

// matchChildren assigns each pattern child to a distinct event child,
// collecting every consistent combination of bindings.
func matchChildren(patKids, evKids []*xmltree.Node, t bindings.Tuple) []bindings.Tuple {
	if len(patKids) == 0 {
		return []bindings.Tuple{t}
	}
	var out []bindings.Tuple
	first, rest := patKids[0], patKids[1:]
	for i, ek := range evKids {
		for _, t2 := range matchElement(first, ek, t) {
			remaining := make([]*xmltree.Node, 0, len(evKids)-1)
			remaining = append(remaining, evKids[:i]...)
			remaining = append(remaining, evKids[i+1:]...)
			out = append(out, matchChildren(rest, remaining, t2)...)
		}
	}
	return out
}

func bindVar(t bindings.Tuple, name string, v bindings.Value) bool {
	if old, ok := t[name]; ok {
		return old.Equal(v)
	}
	t[name] = v
	return true
}

// Matcher is the Atomic Event Matcher service core: a set of registered
// patterns evaluated against every published event. Safe for concurrent use.
type Matcher struct {
	mu       sync.Mutex
	patterns map[string]*registration
}

type registration struct {
	pattern *Pattern
	sink    func(Detection)
}

// Detection is delivered to a registration's sink for every event matching
// its pattern: the identifying key, the tuples of variable bindings and the
// matched event.
type Detection struct {
	Key      string
	Bindings []bindings.Tuple
	Event    Event
}

// NewMatcher returns an empty matcher.
func NewMatcher() *Matcher {
	return &Matcher{patterns: map[string]*registration{}}
}

// Register adds a pattern under a key (replacing any previous registration
// with that key); sink is called for each matching event.
func (m *Matcher) Register(key string, p *Pattern, sink func(Detection)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.patterns[key] = &registration{p, sink}
}

// Unregister removes a registration and reports whether it existed.
func (m *Matcher) Unregister(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.patterns[key]
	delete(m.patterns, key)
	return ok
}

// Len returns the number of registrations.
func (m *Matcher) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.patterns)
}

// OnEvent matches all registered patterns against the event, delivering a
// Detection per matching registration. It is the handler to subscribe to a
// Stream.
func (m *Matcher) OnEvent(ev Event) {
	m.mu.Lock()
	regs := make(map[string]*registration, len(m.patterns))
	for k, r := range m.patterns {
		regs[k] = r
	}
	m.mu.Unlock()
	for key, r := range regs {
		if ts := r.pattern.Match(ev); len(ts) > 0 {
			r.sink(Detection{Key: key, Bindings: ts, Event: ev})
		}
	}
}
