package events

import (
	"sync/atomic"
	"testing"

	"repro/internal/bindings"
	"repro/internal/xmltree"
)

const travelNS = "http://example.org/travel"

func booking(person, from, to string) Event {
	e := xmltree.NewElement(travelNS, "booking")
	e.SetAttr("xmlns", "travel", travelNS)
	e.SetAttr("", "person", person)
	e.SetAttr("", "from", from)
	e.SetAttr("", "to", to)
	return New(e)
}

func TestStreamPublishSubscribe(t *testing.T) {
	s := NewStream()
	var got []uint64
	cancel := s.Subscribe(func(ev Event) { got = append(got, ev.Seq) })
	s.Publish(booking("a", "b", "c"))
	s.Publish(booking("d", "e", "f"))
	cancel()
	s.Publish(booking("g", "h", "i"))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got = %v", got)
	}
}

func TestStreamSubscriberOrder(t *testing.T) {
	s := NewStream()
	var order []int
	s.Subscribe(func(Event) { order = append(order, 1) })
	s.Subscribe(func(Event) { order = append(order, 2) })
	s.Publish(booking("a", "b", "c"))
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

// TestFig6PatternMatch reproduces the paper's event component: a booking by
// any person binds Person and Dest.
func TestFig6PatternMatch(t *testing.T) {
	p := MustPattern(`<travel:booking xmlns:travel="http://example.org/travel" person="$Person" to="$Dest"/>`)
	ts := p.Match(booking("John Doe", "Munich", "Paris"))
	if len(ts) != 1 {
		t.Fatalf("match = %v", ts)
	}
	if ts[0]["Person"].AsString() != "John Doe" || ts[0]["Dest"].AsString() != "Paris" {
		t.Errorf("tuple = %v", ts[0])
	}
	if got := p.Vars(); len(got) != 2 || got[0] != "Dest" || got[1] != "Person" {
		t.Errorf("vars = %v", got)
	}
}

func TestPatternLiteralMismatch(t *testing.T) {
	p := MustPattern(`<travel:booking xmlns:travel="http://example.org/travel" to="Paris"/>`)
	if got := p.Match(booking("X", "Y", "Rome")); len(got) != 0 {
		t.Errorf("should not match Rome booking: %v", got)
	}
	if got := p.Match(booking("X", "Y", "Paris")); len(got) != 1 {
		t.Errorf("should match Paris booking: %v", got)
	}
}

func TestPatternWrongNameOrMissingAttr(t *testing.T) {
	p := MustPattern(`<travel:cancellation xmlns:travel="http://example.org/travel" person="$P"/>`)
	if got := p.Match(booking("X", "Y", "Z")); len(got) != 0 {
		t.Error("wrong element name must not match")
	}
	p2 := MustPattern(`<travel:booking xmlns:travel="http://example.org/travel" seat="$S"/>`)
	if got := p2.Match(booking("X", "Y", "Z")); len(got) != 0 {
		t.Error("missing attribute must not match")
	}
}

func TestPatternJoinVariable(t *testing.T) {
	// $P occurs twice: only events where both attributes agree match.
	p := MustPattern(`<m from="$P" signedby="$P"/>`)
	ok := xmltree.NewElement("", "m")
	ok.SetAttr("", "from", "alice").SetAttr("", "signedby", "alice")
	bad := xmltree.NewElement("", "m")
	bad.SetAttr("", "from", "alice").SetAttr("", "signedby", "bob")
	if got := p.Match(New(ok)); len(got) != 1 {
		t.Errorf("agreeing event should match: %v", got)
	}
	if got := p.Match(New(bad)); len(got) != 0 {
		t.Errorf("disagreeing event should not match: %v", got)
	}
}

func TestPatternChildElementsAndText(t *testing.T) {
	p := MustPattern(`<order><item sku="$Sku">$Qty</item></order>`)
	ev := xmltree.MustParse(`<order><item sku="A1">3</item><item sku="B2">5</item></order>`)
	ts := p.Match(New(ev))
	if len(ts) != 2 {
		t.Fatalf("matches = %v", ts)
	}
	seen := map[string]string{}
	for _, tp := range ts {
		seen[tp["Sku"].AsString()] = tp["Qty"].AsString()
	}
	if seen["A1"] != "3" || seen["B2"] != "5" {
		t.Errorf("bindings = %v", seen)
	}
}

func TestPatternChildrenDistinct(t *testing.T) {
	// Two pattern children must match two *different* event children.
	p := MustPattern(`<pair><v>$A</v><v>$B</v></pair>`)
	ev := xmltree.MustParse(`<pair><v>1</v></pair>`)
	if ts := p.Match(New(ev)); len(ts) != 0 {
		t.Errorf("single child cannot satisfy two pattern children: %v", ts)
	}
	ev2 := xmltree.MustParse(`<pair><v>1</v><v>2</v></pair>`)
	if ts := p.Match(New(ev2)); len(ts) != 2 { // (1,2) and (2,1)
		t.Errorf("expected two combinations, got %v", ts)
	}
}

func TestPatternFixedText(t *testing.T) {
	p := MustPattern(`<status>ready</status>`)
	if ts := p.Match(New(xmltree.MustParse(`<status>ready</status>`))); len(ts) != 1 {
		t.Error("equal text should match")
	}
	if ts := p.Match(New(xmltree.MustParse(`<status>busy</status>`))); len(ts) != 0 {
		t.Error("different text should not match")
	}
}

func TestMatcherRegisterDetect(t *testing.T) {
	m := NewMatcher()
	s := NewStream()
	s.Subscribe(m.OnEvent)
	var detected []Detection
	p := MustPattern(`<travel:booking xmlns:travel="http://example.org/travel" person="$Person" to="$Dest"/>`)
	m.Register("rule-1:event", p, func(d Detection) { detected = append(detected, d) })
	s.Publish(booking("John Doe", "Munich", "Paris"))
	s.Publish(New(xmltree.NewElement("other", "noise")))
	if len(detected) != 1 {
		t.Fatalf("detections = %d", len(detected))
	}
	d := detected[0]
	if d.Key != "rule-1:event" || len(d.Bindings) != 1 {
		t.Fatalf("detection = %+v", d)
	}
	if d.Bindings[0]["Person"].AsString() != "John Doe" {
		t.Errorf("binding = %v", d.Bindings[0])
	}
	if !m.Unregister("rule-1:event") {
		t.Error("unregister should succeed")
	}
	detected = nil
	s.Publish(booking("X", "Y", "Z"))
	if len(detected) != 0 {
		t.Error("unregistered pattern still fired")
	}
}

func TestMatcherConcurrent(t *testing.T) {
	m := NewMatcher()
	s := NewStream()
	s.Subscribe(m.OnEvent)
	var count atomic.Int64
	p := MustPattern(`<e n="$N"/>`)
	m.Register("k", p, func(Detection) { count.Add(1) })
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				e := xmltree.NewElement("", "e")
				e.SetAttr("", "n", "1")
				s.Publish(New(e))
			}
			done <- true
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if count.Load() != 200 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestBindingsAreIndependent(t *testing.T) {
	// Tuples returned by Match must not share storage.
	p := MustPattern(`<e a="$A"/>`)
	e := xmltree.NewElement("", "e")
	e.SetAttr("", "a", "v")
	ts := p.Match(New(e))
	ts[0]["A"] = bindings.Str("mutated")
	ts2 := p.Match(New(e))
	if ts2[0]["A"].AsString() != "v" {
		t.Error("pattern state leaked between matches")
	}
}
