package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		inst := r.Begin(fmt.Sprintf("r%d", i))
		inst.AddSpan(Span{Stage: "event"})
		inst.Finish("completed")
	}
	if r.Recorded() != 10 {
		t.Errorf("recorded = %d, want 10", r.Recorded())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained = %d, want 4", len(snap))
	}
	// Oldest-first: the survivors are r6..r9.
	for i, tr := range snap {
		if want := fmt.Sprintf("r%d", 6+i); tr.Rule != want {
			t.Errorf("snapshot[%d].Rule = %q, want %q", i, tr.Rule, want)
		}
		if tr.State != "completed" || len(tr.Spans) != 1 {
			t.Errorf("snapshot[%d] = %+v", i, tr)
		}
	}
}

func TestRecorderIDsUnique(t *testing.T) {
	r := NewRecorder(8)
	a := r.Begin("rule")
	b := r.Begin("rule")
	if a.ID() == b.ID() {
		t.Errorf("duplicate instance ids: %q", a.ID())
	}
	if !strings.HasPrefix(a.ID(), "rule#") {
		t.Errorf("id = %q, want rule#N", a.ID())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				inst := r.Begin("r")
				inst.AddSpan(Span{Stage: "query", TuplesIn: 1, TuplesOut: 1})
				inst.Finish("completed")
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 1600 {
		t.Errorf("recorded = %d, want 1600", r.Recorded())
	}
	if got := len(r.Snapshot()); got != 16 {
		t.Errorf("retained = %d, want 16", got)
	}
}

func TestZeroCapacityRecorder(t *testing.T) {
	r := NewRecorder(0)
	inst := r.Begin("r")
	if inst != nil {
		t.Error("zero-capacity recorder should return nil instances")
	}
	inst.AddSpan(Span{})
	inst.Finish("died")
	if len(r.Snapshot()) != 0 {
		t.Error("zero-capacity recorder retained traces")
	}
}

func TestTracesHandlerJSONAndFilters(t *testing.T) {
	h := NewHub()
	a := h.Traces().Begin("car-rental")
	a.AddSpan(Span{Stage: "event", Component: "event[1]", TuplesOut: 1})
	a.AddSpan(Span{Stage: "query", Component: "query[1]", TuplesIn: 1, TuplesOut: 2})
	a.Finish("completed")
	b := h.Traces().Begin("other")
	b.Finish("died")

	rec := httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?rule=car-rental", nil))
	var resp tracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body)
	}
	if resp.Recorded != 2 || len(resp.Instances) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	tr := resp.Instances[0]
	if tr.Rule != "car-rental" || tr.State != "completed" || len(tr.Spans) != 2 {
		t.Errorf("trace = %+v", tr)
	}
	if tr.Spans[0].Stage != "event" || tr.Spans[1].Stage != "query" || tr.Spans[1].TuplesOut != 2 {
		t.Errorf("spans = %+v", tr.Spans)
	}

	rec = httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?state=died", nil))
	resp = tracesResponse{}
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp.Instances) != 1 || resp.Instances[0].Rule != "other" {
		t.Errorf("state filter = %+v", resp.Instances)
	}
}

func TestMetricsHandler(t *testing.T) {
	h := NewHub()
	h.Metrics().Counter("x_total", "h").Add(7)
	rec := httptest.NewRecorder()
	h.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 7") {
		t.Errorf("metrics body = %q", rec.Body)
	}
}
