// Package obs is the observability subsystem: a stdlib-only metrics
// registry (atomic counters, gauges and fixed-bucket latency histograms
// with labeled families, exposed in Prometheus text format) plus a
// rule-instance trace recorder (per-instance spans following one detection
// through engine → GRH → component service, kept in a bounded ring buffer
// and dumped as JSON).
//
// Every instrument is nil-safe: a nil *Hub yields nil vecs, nil counters
// and a nil recorder, and every method on them is a no-op. Instrumented
// packages therefore resolve their instruments once at construction time
// and use them unconditionally on the hot path — no branching on "is
// observability enabled" beyond a nil receiver check.
package obs

import "time"

// DefaultTraceCapacity is the ring-buffer size of a Hub's trace recorder.
const DefaultTraceCapacity = 512

// LatencyBuckets are the default histogram bounds for request/dispatch
// durations in seconds, spanning in-process calls (~µs) to slow remote
// services (~10 s).
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Hub bundles the two halves of the subsystem: a metrics registry and a
// trace recorder. One hub is shared by the engine, the GRH and every
// component service of a deployment.
type Hub struct {
	metrics *Registry
	traces  *Recorder
}

// NewHub returns a hub with an empty registry and a recorder holding the
// last DefaultTraceCapacity rule instances.
func NewHub() *Hub {
	return &Hub{metrics: NewRegistry(), traces: NewRecorder(DefaultTraceCapacity)}
}

// Metrics returns the hub's registry; nil for a nil hub.
func (h *Hub) Metrics() *Registry {
	if h == nil {
		return nil
	}
	return h.metrics
}

// Traces returns the hub's trace recorder; nil for a nil hub.
func (h *Hub) Traces() *Recorder {
	if h == nil {
		return nil
	}
	return h.traces
}

// Since returns the elapsed time since start in seconds, the unit every
// duration histogram observes.
func Since(start time.Time) float64 {
	return time.Since(start).Seconds()
}
