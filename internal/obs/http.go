package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the registry in Prometheus text exposition format
// (the /metrics endpoint).
func (h *Hub) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Metrics().WritePrometheus(w)
	})
}

// tracesResponse is the JSON shape of the /debug/traces endpoint.
type tracesResponse struct {
	Capacity  int             `json:"capacity"`
	Recorded  uint64          `json:"recorded"`
	Instances []InstanceTrace `json:"instances"`
}

// TracesHandler dumps the retained rule-instance traces as JSON (the
// /debug/traces endpoint). Supports ?rule=<id> to filter by rule and
// ?state=<running|completed|died> to filter by life-cycle state.
func (h *Hub) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rule := r.URL.Query().Get("rule")
		state := r.URL.Query().Get("state")
		all := h.Traces().Snapshot()
		kept := make([]InstanceTrace, 0, len(all))
		for _, t := range all {
			if rule != "" && t.Rule != rule {
				continue
			}
			if state != "" && t.State != state {
				continue
			}
			kept = append(kept, t)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tracesResponse{
			Capacity:  h.Traces().Capacity(),
			Recorded:  h.Traces().Recorded(),
			Instances: kept,
		})
	})
}
