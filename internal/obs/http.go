package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry in Prometheus text exposition format
// (the /metrics endpoint).
func (h *Hub) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Metrics().WritePrometheus(w)
	})
}

// tracesResponse is the JSON shape of the /debug/traces endpoint.
type tracesResponse struct {
	Capacity  int             `json:"capacity"`
	Recorded  uint64          `json:"recorded"`
	Instances []InstanceTrace `json:"instances"`
}

// TracesHandler dumps the retained rule-instance traces as JSON (the
// /debug/traces endpoint). Query parameters:
//
//	?id=<rule#n>   single-trace lookup by instance id (404 when evicted
//	               or unknown), the stitched client+server view of one
//	               rule instance
//	?rule=<id>     filter by rule
//	?state=<s>     filter by life-cycle state (running|completed|died)
//	?tenant=<t>    filter by tenant (exact wire form: the empty value
//	               selects the default tenant's traces; the serving layer
//	               validates tenant names before delegating here)
//	?limit=<n>     return at most n instances, newest first
//	?pretty=1      indent the JSON (compact by default — trace dumps are
//	               a hot scrape path)
func (h *Hub) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		pretty := q.Get("pretty") == "1"
		if id := q.Get("id"); id != "" {
			t, ok := h.Traces().Lookup(id)
			if !ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": "trace not found"})
				return
			}
			writeJSON(w, t, pretty)
			return
		}
		rule := q.Get("rule")
		state := q.Get("state")
		tenantVals, byTenant := q["tenant"]
		tenant := ""
		if len(tenantVals) > 0 {
			tenant = tenantVals[0]
		}
		all := h.Traces().Snapshot()
		kept := make([]InstanceTrace, 0, len(all))
		for _, t := range all {
			if rule != "" && t.Rule != rule {
				continue
			}
			if state != "" && t.State != state {
				continue
			}
			if byTenant && t.Tenant != tenant {
				continue
			}
			kept = append(kept, t)
		}
		if lim := q.Get("limit"); lim != "" {
			n, err := strconv.Atoi(lim)
			if err != nil || n < 0 {
				http.Error(w, "limit wants a non-negative integer", http.StatusBadRequest)
				return
			}
			// Newest first, truncated to n.
			for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
				kept[i], kept[j] = kept[j], kept[i]
			}
			if n < len(kept) {
				kept = kept[:n]
			}
		}
		writeJSON(w, tracesResponse{
			Capacity:  h.Traces().Capacity(),
			Recorded:  h.Traces().Recorded(),
			Instances: kept,
		}, pretty)
	})
}

func writeJSON(w http.ResponseWriter, v any, pretty bool) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if pretty {
		enc.SetIndent("", "  ")
	}
	enc.Encode(v)
}
