package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text exposition (format 0.0.4)
// line by line: well-formed HELP/TYPE comments, valid metric and label
// names, properly quoted and escaped label values, parseable sample
// values, and TYPE declared before the family's samples. It returns the
// first violation found, or nil for a clean scrape. The CI integration
// test and the registry regression tests use it to prove /metrics stays
// machine-parseable even with hostile label values.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	typed := map[string]string{} // family name → declared type
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := lintSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("exposition read: %w", err)
	}
	return nil
}

func lintComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
		if len(fields) == 4 {
			if err := checkEscapes(fields[3], false); err != nil {
				return fmt.Errorf("HELP text for %s: %w", fields[2], err)
			}
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", fields[3], fields[2])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		typed[fields[2]] = fields[3]
	}
	return nil
}

func lintSample(line string, typed map[string]string) error {
	name, rest := splitName(line)
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name in %q", line)
	}
	if fam, ok := baseFamily(name, typed); ok {
		_ = fam // TYPE was declared before this sample, as required
	}
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = lintLabels(rest)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	rest = strings.TrimLeft(rest, " ")
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 {
		return fmt.Errorf("%s: expected value [timestamp], got %q", name, rest)
	}
	if !validSampleValue(parts[0]) {
		return fmt.Errorf("%s: unparseable sample value %q", name, parts[0])
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			return fmt.Errorf("%s: bad timestamp %q", name, parts[1])
		}
	}
	return nil
}

// lintLabels consumes a {name="value",...} section and returns the rest
// of the line, enforcing quoting, escape sequences and unique label names.
func lintLabels(s string) (rest string, err error) {
	s = s[1:] // consume '{'
	seen := map[string]bool{}
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", fmt.Errorf("unterminated label section")
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return "", fmt.Errorf("invalid label name %q", lname)
		}
		if seen[lname] {
			return "", fmt.Errorf("duplicate label %q", lname)
		}
		seen[lname] = true
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return "", fmt.Errorf("label %s: value not quoted", lname)
		}
		val, remainder, ok := scanQuoted(s)
		if !ok {
			return "", fmt.Errorf("label %s: unterminated quoted value", lname)
		}
		if err := checkEscapes(val, true); err != nil {
			return "", fmt.Errorf("label %s: %w", lname, err)
		}
		s = remainder
		s = strings.TrimLeft(s, " ")
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
		default:
			return "", fmt.Errorf("label %s: expected , or } after value", lname)
		}
	}
}

// scanQuoted consumes a double-quoted section honoring backslash escapes;
// it returns the raw (still-escaped) content and the remainder.
func scanQuoted(s string) (val, rest string, ok bool) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char (validity checked by checkEscapes)
		case '"':
			return s[1:i], s[i+1:], true
		case '\n':
			return "", "", false
		}
	}
	return "", "", false
}

// checkEscapes verifies that raw escaped text uses only the escape
// sequences the format allows (\\ and \n everywhere, plus \" in label
// values) and contains no raw newline or — for label values — raw quote.
func checkEscapes(s string, labelValue bool) error {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\n':
			return fmt.Errorf("raw newline in %q", s)
		case '"':
			if labelValue {
				return fmt.Errorf("unescaped quote in %q", s)
			}
		case '\\':
			if i+1 >= len(s) {
				return fmt.Errorf("trailing backslash in %q", s)
			}
			i++
			switch s[i] {
			case '\\', 'n':
			case '"':
				if !labelValue {
					return fmt.Errorf(`\" escape outside a label value in %q`, s)
				}
			default:
				return fmt.Errorf("invalid escape \\%c in %q", s[i], s)
			}
		}
	}
	return nil
}

// splitName splits a sample line at the end of the metric name.
func splitName(line string) (name, rest string) {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '{' || c == ' ' {
			return line[:i], line[i:]
		}
	}
	return line, ""
}

// baseFamily resolves a sample name to its declared family, stripping the
// histogram/summary suffixes.
func baseFamily(name string, typed map[string]string) (string, bool) {
	if _, ok := typed[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if _, ok := typed[base]; ok {
				return base, true
			}
		}
	}
	return "", false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validSampleValue(s string) bool {
	switch s {
	case "NaN", "+Inf", "-Inf", "Inf":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
