package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Canonical structured-log field names. Every log line emitted by the
// engine, the GRH and the component services uses these keys, so one
// trace_id query over the logs yields the full story of a rule instance
// across processes.
const (
	FieldTraceID   = "trace_id"  // rule-instance id, "<rule>#<n>"
	FieldRule      = "rule"      // rule id
	FieldComponent = "component" // component id within the rule, "query[2]"
	FieldEndpoint  = "endpoint"  // remote service endpoint URL
)

// Logger is the structured logger of the observability subsystem, a thin
// nil-safe wrapper around log/slog. A nil *Logger discards everything, so
// instrumented packages hold one unconditionally and never branch on
// "is logging enabled".
type Logger struct {
	s *slog.Logger
}

// ParseLevel parses a -log-level flag value (debug, info, warn, error;
// case-insensitive, slog's "INFO+2" offsets also accepted).
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: bad log level %q (want debug|info|warn|error)", s)
	}
	return l, nil
}

// NewLogger builds a leveled structured logger writing to w. Format is
// "json" for one JSON object per line or anything else (conventionally
// "text") for slog's key=value text handler.
func NewLogger(w io.Writer, format string, level slog.Level) *Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return &Logger{s: slog.New(h)}
}

// FromSlog wraps an existing slog logger; nil yields the discard logger.
func FromSlog(s *slog.Logger) *Logger {
	if s == nil {
		return nil
	}
	return &Logger{s: s}
}

// Slog returns the underlying slog logger (nil for the discard logger).
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.s
}

// With returns a logger that adds the given key/value pairs to every
// record, e.g. With(obs.FieldTraceID, id, obs.FieldRule, rule) for an
// instance-scoped logger. Nil-safe.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil {
		l.s.Debug(msg, args...)
	}
}

// Info logs at info level.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil {
		l.s.Info(msg, args...)
	}
}

// Warn logs at warn level.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil {
		l.s.Warn(msg, args...)
	}
}

// Error logs at error level.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil {
		l.s.Error(msg, args...)
	}
}
