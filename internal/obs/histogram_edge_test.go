package obs

import (
	"math"
	"testing"
)

// Edge cases for Histogram.Quantile and HistogramVec.Merged: empty
// histograms, a single observation, observations above the top bucket,
// and q clamping at 0/1.

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewRegistry().Histogram("h_empty", "", []float64{0.1, 1})
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v want 0", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewRegistry().Histogram("h_single", "", []float64{0.1, 1, 10})
	h.Observe(0.5)
	// Every quantile of a one-point distribution lands in the (0.1, 1]
	// bucket; interpolation stays within its bounds.
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 0.1 || got > 1 {
			t.Errorf("Quantile(%v) = %v, want within (0.1, 1]", q, got)
		}
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("Quantile(1) = %v want upper bound 1", got)
	}
}

func TestQuantileAboveTopBucketClamps(t *testing.T) {
	h := NewRegistry().Histogram("h_over", "", []float64{0.1, 1})
	h.Observe(50)
	h.Observe(500)
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("overflow Quantile(%v) = %v want clamp to top bound 1", q, got)
		}
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := NewRegistry().Histogram("h_clamp", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3.5} {
		h.Observe(v)
	}
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %v want Quantile(0) = %v", got, want)
	}
	if got, want := h.Quantile(42), h.Quantile(1); got != want {
		t.Errorf("Quantile(42) = %v want Quantile(1) = %v", got, want)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v want top occupied bound 4", got)
	}
}

func TestMergedEdgeCases(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("h_merge", "", []float64{0.1, 1}, "stage")

	// Merged over an empty family is an empty, detached histogram.
	m := v.Merged()
	if m.Count() != 0 || m.Sum() != 0 || m.Quantile(0.5) != 0 {
		t.Fatalf("empty Merged: count=%d sum=%v", m.Count(), m.Sum())
	}
	m.Observe(1) // must not leak back into the family
	if v.Merged().Count() != 0 {
		t.Fatalf("observing into a Merged snapshot mutated the family")
	}

	v.With("a").Observe(0.05)
	v.With("b").Observe(7) // overflow bucket
	m = v.Merged()
	if m.Count() != 2 {
		t.Fatalf("Merged count = %d want 2", m.Count())
	}
	if math.Abs(m.Sum()-7.05) > 1e-9 {
		t.Fatalf("Merged sum = %v want 7.05", m.Sum())
	}
	counts := m.BucketCounts()
	if counts[0] != 1 || counts[len(counts)-1] != 1 {
		t.Fatalf("Merged bucket counts = %v", counts)
	}
	// Overflow clamps the merged quantile to the top finite bound.
	if got := m.Quantile(1); got != 1 {
		t.Fatalf("Merged Quantile(1) = %v want 1", got)
	}
	var nilV *HistogramVec
	if nilV.Merged() != nil {
		t.Fatalf("nil vec Merged should be nil")
	}
}

func TestHistogramExemplar(t *testing.T) {
	h := NewRegistry().Histogram("h_ex", "", []float64{1})
	if _, ok := h.Exemplar(); ok {
		t.Fatalf("fresh histogram should have no exemplar")
	}
	h.ObserveExemplar(0.5, "rule#1")
	h.ObserveExemplar(0.7, "rule#2")
	h.ObserveExemplar(0.9, "") // empty trace id: observed, no exemplar stored
	ex, ok := h.Exemplar()
	if !ok || ex.TraceID != "rule#2" || ex.Value != 0.7 {
		t.Fatalf("exemplar = %+v, %v", ex, ok)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d want 3 (empty-id observation still counted)", h.Count())
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x") // nil-safe
	if _, ok := nilH.Exemplar(); ok {
		t.Fatalf("nil histogram exemplar")
	}
}
