package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTracesHandlerIDLookup(t *testing.T) {
	h := NewHub()
	a := h.Traces().Begin("chain")
	a.AddSpan(Span{Stage: "event"})
	a.AddSpan(Span{Stage: "query", Mode: "grh", Children: []Span{
		{Stage: "parse", Mode: "server"},
		{Stage: "evaluate", Mode: "server", TuplesOut: 2},
	}})
	a.Finish("completed")
	h.Traces().Begin("chain").Finish("died")

	rec := httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+a.ID(), nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var tr InstanceTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body)
	}
	if tr.ID != a.ID() || tr.State != "completed" || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if kids := tr.Spans[1].Children; len(kids) != 2 || kids[0].Mode != "server" || kids[1].TuplesOut != 2 {
		t.Errorf("stitched children = %+v", kids)
	}

	rec = httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=chain%23999", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id: status = %d, want 404", rec.Code)
	}
	// Regression: the 404 body is machine-readable JSON, not plain text.
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("unknown id: Content-Type = %q, want application/json", ct)
	}
	var errBody map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil {
		t.Fatalf("unknown id: body not JSON: %v\n%s", err, rec.Body)
	}
	if errBody["error"] != "trace not found" {
		t.Errorf("unknown id: body = %v, want {\"error\":\"trace not found\"}", errBody)
	}
}

func TestTracesHandlerLimitAndPretty(t *testing.T) {
	h := NewHub()
	for i := 0; i < 5; i++ {
		h.Traces().Begin(fmt.Sprintf("r%d", i)).Finish("completed")
	}

	rec := httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=2", nil))
	var resp tracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Instances) != 2 {
		t.Fatalf("limit=2 returned %d instances", len(resp.Instances))
	}
	// Newest first under ?limit.
	if resp.Instances[0].Rule != "r4" || resp.Instances[1].Rule != "r3" {
		t.Errorf("order = %s, %s; want r4, r3", resp.Instances[0].Rule, resp.Instances[1].Rule)
	}
	// Compact by default: no indented lines.
	if strings.Contains(rec.Body.String(), "\n  ") {
		t.Error("default output is indented; want compact")
	}

	rec = httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?pretty=1", nil))
	if !strings.Contains(rec.Body.String(), "\n  ") {
		t.Error("?pretty=1 output not indented")
	}

	rec = httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=-1", nil))
	if rec.Code != 400 {
		t.Errorf("limit=-1: status = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=soon", nil))
	if rec.Code != 400 {
		t.Errorf("limit=soon: status = %d, want 400", rec.Code)
	}
}

// TestRecorderConcurrentEviction drives Begin/Finish far past capacity
// from many goroutines and checks the ring's invariants: exactly the
// newest Capacity() instances survive (ids carry the global sequence
// number, so "newest" is checkable exactly) and Recorded() is monotonic
// under concurrent readers.
func TestRecorderConcurrentEviction(t *testing.T) {
	const workers, perWorker = 8, 100
	r := NewRecorder(16)

	stopPoll := make(chan struct{})
	pollErr := make(chan error, 1)
	go func() {
		defer close(pollErr)
		var last uint64
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			now := r.Recorded()
			if now < last {
				pollErr <- fmt.Errorf("Recorded went backwards: %d after %d", now, last)
				return
			}
			last = now
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				inst := r.Begin(fmt.Sprintf("w%d", w))
				inst.AddSpan(Span{Stage: "event"})
				inst.Finish("completed")
			}
		}(w)
	}
	wg.Wait()
	close(stopPoll)
	if err := <-pollErr; err != nil {
		t.Fatal(err)
	}

	total := workers * perWorker
	if got := r.Recorded(); got != uint64(total) {
		t.Fatalf("Recorded = %d, want %d", got, total)
	}
	snap := r.Snapshot()
	if len(snap) != r.Capacity() {
		t.Fatalf("retained %d, want capacity %d", len(snap), r.Capacity())
	}
	// Survivors must be exactly the instances with the highest sequence
	// numbers, in ascending (oldest-first) order.
	prev := 0
	for i, tr := range snap {
		_, seqStr, ok := strings.Cut(tr.ID, "#")
		if !ok {
			t.Fatalf("id %q not rule#n", tr.ID)
		}
		var seq int
		fmt.Sscanf(seqStr, "%d", &seq)
		if seq <= total-r.Capacity() {
			t.Errorf("snapshot[%d] = %s: evicted-range instance survived", i, tr.ID)
		}
		if seq <= prev {
			t.Errorf("snapshot not oldest-first: %d after %d", seq, prev)
		}
		prev = seq
		if tr.State != "completed" || len(tr.Spans) != 1 {
			t.Errorf("snapshot[%d] incomplete: %+v", i, tr)
		}
	}
}
