package obs

import (
	"runtime"
	"time"
)

// DefaultSampleInterval is how often StartRuntimeSampler reads the Go
// runtime when no interval is given.
const DefaultSampleInterval = 10 * time.Second

// StartRuntimeSampler spawns a background goroutine that periodically
// feeds Go runtime gauges into the registry:
//
//	go_goroutines              current goroutine count
//	go_heap_inuse_bytes        bytes in in-use heap spans
//	go_heap_objects            live objects on the heap
//	go_gc_pause_seconds_total  cumulative stop-the-world pause time
//	go_gcs_total               completed GC cycles
//
// One sample is taken immediately so a scrape right after startup is
// never empty. The returned stop function halts the sampler and is safe
// to call more than once; a nil registry yields a no-op stop.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	goroutines := r.Gauge("go_goroutines", "Current number of goroutines.")
	heapInuse := r.Gauge("go_heap_inuse_bytes", "Bytes in in-use heap spans.")
	heapObjects := r.Gauge("go_heap_objects", "Live objects on the heap.")
	gcPause := r.Gauge("go_gc_pause_seconds_total", "Cumulative garbage-collection stop-the-world pause time in seconds.")
	gcs := r.Gauge("go_gcs_total", "Completed garbage-collection cycles.")

	sample := func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapInuse.Set(float64(m.HeapInuse))
		heapObjects.Set(float64(m.HeapObjects))
		gcPause.Set(float64(m.PauseTotalNs) / 1e9)
		gcs.Set(float64(m.NumGC))
	}
	sample()

	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}
