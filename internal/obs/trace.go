package obs

import (
	"fmt"
	"sync"
	"time"
)

// Span is one step of a rule instance's evaluation: the event detection
// that created it, one query/test component dispatch, or one action
// execution.
type Span struct {
	// Stage is the component kind: "event", "query", "test" or "action".
	Stage string `json:"stage"`
	// Component is the component id within the rule, e.g. "query[2]".
	Component string `json:"component,omitempty"`
	// Language is the component language namespace URI ("" for
	// domain-level components handled by the registry default).
	Language string `json:"language,omitempty"`
	// Mode records how the step was evaluated: "detection" (event),
	// "grh" (dispatched through the Generic Request Handler) or "local"
	// (the engine's built-in test evaluation).
	Mode string `json:"mode,omitempty"`
	// TuplesIn / TuplesOut are the binding-relation sizes before and
	// after the step.
	TuplesIn  int `json:"tuples_in"`
	TuplesOut int `json:"tuples_out"`
	// Start / Duration time the step.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Err is the failure that aborted the instance, if any.
	Err string `json:"error,omitempty"`
	// Children are the server-side spans a framework-aware service
	// reported for this dispatch via the log:trace answer-markup
	// extension (mode "server": request parse, expression evaluation,
	// answer encoding), stitched under the GRH client span that carried
	// the X-ECA-Trace-Id header. Empty for local steps and for services
	// that do not implement the extension.
	Children []Span `json:"children,omitempty"`
}

// InstanceTrace is the recorded life cycle of one rule instance. It is a
// plain data snapshot — the live, locked object is *Instance.
type InstanceTrace struct {
	// ID is unique per recorder: "<rule>#<n>".
	ID   string `json:"id"`
	Rule string `json:"rule"`
	// State is "running", "completed" or "died".
	State    string        `json:"state"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []Span        `json:"spans"`
	// Tenant is the namespace the rule belongs to; empty (omitted) for
	// the default tenant, keeping single-tenant trace dumps unchanged.
	Tenant string `json:"tenant,omitempty"`
}

// Instance is a live rule-instance trace being appended to by the engine.
// All methods are nil-safe and safe for concurrent use.
type Instance struct {
	mu   sync.Mutex
	data InstanceTrace
}

// AddSpan appends one evaluation step.
func (i *Instance) AddSpan(s Span) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.data.Spans = append(i.data.Spans, s)
	i.mu.Unlock()
}

// Finish marks the instance terminal ("completed" or "died") and stamps
// its total duration.
func (i *Instance) Finish(state string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.data.State = state
	i.data.Duration = time.Since(i.data.Start)
	i.mu.Unlock()
}

// SetTenant stamps the namespace the instance's rule belongs to. The
// engine calls it right after Begin, before the instance is visible to
// any other goroutine's filters.
func (i *Instance) SetTenant(tenant string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.data.Tenant = tenant
	i.mu.Unlock()
}

// ID returns the instance id ("" for a nil instance).
func (i *Instance) ID() string {
	if i == nil {
		return ""
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.data.ID
}

func (i *Instance) snapshot() InstanceTrace {
	i.mu.Lock()
	defer i.mu.Unlock()
	t := i.data
	t.Spans = append([]Span(nil), i.data.Spans...)
	return t
}

// Recorder keeps the most recent rule-instance traces in a bounded ring
// buffer; when full, the oldest instance is evicted. Safe for concurrent
// use; all methods are nil-safe.
type Recorder struct {
	mu    sync.Mutex
	cap   int
	buf   []*Instance
	next  int // eviction cursor once the ring is full
	total uint64
}

// NewRecorder returns a recorder holding at most capacity instances; a
// capacity ≤ 0 records nothing.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = 0
	}
	return &Recorder{cap: capacity}
}

// Begin starts recording a new rule instance, evicting the oldest when
// the ring is full. Returns nil (a valid no-op instance) when the
// recorder is nil or has zero capacity.
func (r *Recorder) Begin(rule string) *Instance {
	if r == nil || r.cap == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	inst := &Instance{data: InstanceTrace{
		ID:    fmt.Sprintf("%s#%d", rule, r.total),
		Rule:  rule,
		State: "running",
		Start: time.Now(),
	}}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, inst)
	} else {
		r.buf[r.next] = inst
		r.next = (r.next + 1) % r.cap
	}
	return inst
}

// Recorded returns the total number of instances ever begun (including
// evicted ones).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Capacity returns the ring-buffer size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Lookup returns a deep copy of the retained trace with the given
// instance id ("<rule>#<n>"), the /debug/traces?id= fast path.
func (r *Recorder) Lookup(id string) (InstanceTrace, bool) {
	if r == nil || id == "" {
		return InstanceTrace{}, false
	}
	r.mu.Lock()
	var found *Instance
	for _, i := range r.buf {
		if i.ID() == id {
			found = i
			break
		}
	}
	r.mu.Unlock()
	if found == nil {
		return InstanceTrace{}, false
	}
	return found.snapshot(), true
}

// Snapshot returns deep copies of the retained traces, oldest first.
func (r *Recorder) Snapshot() []InstanceTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	live := make([]*Instance, 0, len(r.buf))
	// Ring order: entries from the eviction cursor onward are oldest.
	if len(r.buf) == r.cap {
		live = append(live, r.buf[r.next:]...)
		live = append(live, r.buf[:r.next]...)
	} else {
		live = append(live, r.buf...)
	}
	r.mu.Unlock()
	out := make([]InstanceTrace, 0, len(live))
	for _, i := range live {
		out = append(out, i.snapshot())
	}
	return out
}
